file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_collectives.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_collectives.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_parallelism.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_parallelism.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_traffic.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_traffic.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
