file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_anomaly.cpp.o"
  "CMakeFiles/test_core.dir/core/test_anomaly.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_blacklist.cpp.o"
  "CMakeFiles/test_core.dir/core/test_blacklist.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fidelity.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fidelity.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_harness.cpp.o"
  "CMakeFiles/test_core.dir/core/test_harness.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_localize.cpp.o"
  "CMakeFiles/test_core.dir/core/test_localize.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ping_list.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ping_list.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_skeleton_inference.cpp.o"
  "CMakeFiles/test_core.dir/core/test_skeleton_inference.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
