file(REMOVE_RECURSE
  "CMakeFiles/test_probe.dir/probe/test_agent.cpp.o"
  "CMakeFiles/test_probe.dir/probe/test_agent.cpp.o.d"
  "CMakeFiles/test_probe.dir/probe/test_engine.cpp.o"
  "CMakeFiles/test_probe.dir/probe/test_engine.cpp.o.d"
  "CMakeFiles/test_probe.dir/probe/test_overhead.cpp.o"
  "CMakeFiles/test_probe.dir/probe/test_overhead.cpp.o.d"
  "CMakeFiles/test_probe.dir/probe/test_traceroute.cpp.o"
  "CMakeFiles/test_probe.dir/probe/test_traceroute.cpp.o.d"
  "test_probe"
  "test_probe.pdb"
  "test_probe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
