
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_clustering.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_clustering.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_clustering.cpp.o.d"
  "/root/repo/tests/ml/test_lof.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_lof.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_lof.cpp.o.d"
  "/root/repo/tests/ml/test_stats_tests.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_stats_tests.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_stats_tests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/skh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/skh_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/skh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/skh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/skh_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/skh_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/skh_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/skh_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
