file(REMOVE_RECURSE
  "CMakeFiles/skh_sim.dir/event_queue.cpp.o"
  "CMakeFiles/skh_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/skh_sim.dir/fault.cpp.o"
  "CMakeFiles/skh_sim.dir/fault.cpp.o.d"
  "libskh_sim.a"
  "libskh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
