# Empty compiler generated dependencies file for skh_sim.
# This may be replaced when dependencies are built.
