file(REMOVE_RECURSE
  "libskh_sim.a"
)
