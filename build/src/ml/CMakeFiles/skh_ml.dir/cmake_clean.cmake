file(REMOVE_RECURSE
  "CMakeFiles/skh_ml.dir/clustering.cpp.o"
  "CMakeFiles/skh_ml.dir/clustering.cpp.o.d"
  "CMakeFiles/skh_ml.dir/lof.cpp.o"
  "CMakeFiles/skh_ml.dir/lof.cpp.o.d"
  "CMakeFiles/skh_ml.dir/stats_tests.cpp.o"
  "CMakeFiles/skh_ml.dir/stats_tests.cpp.o.d"
  "libskh_ml.a"
  "libskh_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
