# Empty compiler generated dependencies file for skh_ml.
# This may be replaced when dependencies are built.
