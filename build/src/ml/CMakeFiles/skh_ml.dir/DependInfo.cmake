
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/clustering.cpp" "src/ml/CMakeFiles/skh_ml.dir/clustering.cpp.o" "gcc" "src/ml/CMakeFiles/skh_ml.dir/clustering.cpp.o.d"
  "/root/repo/src/ml/lof.cpp" "src/ml/CMakeFiles/skh_ml.dir/lof.cpp.o" "gcc" "src/ml/CMakeFiles/skh_ml.dir/lof.cpp.o.d"
  "/root/repo/src/ml/stats_tests.cpp" "src/ml/CMakeFiles/skh_ml.dir/stats_tests.cpp.o" "gcc" "src/ml/CMakeFiles/skh_ml.dir/stats_tests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/skh_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
