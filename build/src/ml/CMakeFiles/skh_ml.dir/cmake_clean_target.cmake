file(REMOVE_RECURSE
  "libskh_ml.a"
)
