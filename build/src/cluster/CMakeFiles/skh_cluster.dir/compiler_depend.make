# Empty compiler generated dependencies file for skh_cluster.
# This may be replaced when dependencies are built.
