file(REMOVE_RECURSE
  "libskh_cluster.a"
)
