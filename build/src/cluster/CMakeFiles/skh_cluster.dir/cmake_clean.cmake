file(REMOVE_RECURSE
  "CMakeFiles/skh_cluster.dir/orchestrator.cpp.o"
  "CMakeFiles/skh_cluster.dir/orchestrator.cpp.o.d"
  "CMakeFiles/skh_cluster.dir/traces.cpp.o"
  "CMakeFiles/skh_cluster.dir/traces.cpp.o.d"
  "libskh_cluster.a"
  "libskh_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
