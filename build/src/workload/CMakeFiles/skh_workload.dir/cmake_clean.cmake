file(REMOVE_RECURSE
  "CMakeFiles/skh_workload.dir/collectives.cpp.o"
  "CMakeFiles/skh_workload.dir/collectives.cpp.o.d"
  "CMakeFiles/skh_workload.dir/parallelism.cpp.o"
  "CMakeFiles/skh_workload.dir/parallelism.cpp.o.d"
  "CMakeFiles/skh_workload.dir/traffic.cpp.o"
  "CMakeFiles/skh_workload.dir/traffic.cpp.o.d"
  "libskh_workload.a"
  "libskh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
