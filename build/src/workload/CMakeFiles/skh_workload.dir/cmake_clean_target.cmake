file(REMOVE_RECURSE
  "libskh_workload.a"
)
