
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/collectives.cpp" "src/workload/CMakeFiles/skh_workload.dir/collectives.cpp.o" "gcc" "src/workload/CMakeFiles/skh_workload.dir/collectives.cpp.o.d"
  "/root/repo/src/workload/parallelism.cpp" "src/workload/CMakeFiles/skh_workload.dir/parallelism.cpp.o" "gcc" "src/workload/CMakeFiles/skh_workload.dir/parallelism.cpp.o.d"
  "/root/repo/src/workload/traffic.cpp" "src/workload/CMakeFiles/skh_workload.dir/traffic.cpp.o" "gcc" "src/workload/CMakeFiles/skh_workload.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/skh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/skh_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/skh_overlay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
