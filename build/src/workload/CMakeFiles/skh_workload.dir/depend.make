# Empty dependencies file for skh_workload.
# This may be replaced when dependencies are built.
