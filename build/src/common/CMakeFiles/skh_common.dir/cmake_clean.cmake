file(REMOVE_RECURSE
  "CMakeFiles/skh_common.dir/ids.cpp.o"
  "CMakeFiles/skh_common.dir/ids.cpp.o.d"
  "CMakeFiles/skh_common.dir/logging.cpp.o"
  "CMakeFiles/skh_common.dir/logging.cpp.o.d"
  "CMakeFiles/skh_common.dir/stats.cpp.o"
  "CMakeFiles/skh_common.dir/stats.cpp.o.d"
  "CMakeFiles/skh_common.dir/table.cpp.o"
  "CMakeFiles/skh_common.dir/table.cpp.o.d"
  "libskh_common.a"
  "libskh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
