file(REMOVE_RECURSE
  "libskh_common.a"
)
