# Empty compiler generated dependencies file for skh_common.
# This may be replaced when dependencies are built.
