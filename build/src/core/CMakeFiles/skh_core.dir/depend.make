# Empty dependencies file for skh_core.
# This may be replaced when dependencies are built.
