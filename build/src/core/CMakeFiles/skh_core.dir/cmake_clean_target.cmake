file(REMOVE_RECURSE
  "libskh_core.a"
)
