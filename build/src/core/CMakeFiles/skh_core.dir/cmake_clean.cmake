file(REMOVE_RECURSE
  "CMakeFiles/skh_core.dir/anomaly.cpp.o"
  "CMakeFiles/skh_core.dir/anomaly.cpp.o.d"
  "CMakeFiles/skh_core.dir/blacklist.cpp.o"
  "CMakeFiles/skh_core.dir/blacklist.cpp.o.d"
  "CMakeFiles/skh_core.dir/diagnostics.cpp.o"
  "CMakeFiles/skh_core.dir/diagnostics.cpp.o.d"
  "CMakeFiles/skh_core.dir/fidelity.cpp.o"
  "CMakeFiles/skh_core.dir/fidelity.cpp.o.d"
  "CMakeFiles/skh_core.dir/harness.cpp.o"
  "CMakeFiles/skh_core.dir/harness.cpp.o.d"
  "CMakeFiles/skh_core.dir/localize.cpp.o"
  "CMakeFiles/skh_core.dir/localize.cpp.o.d"
  "CMakeFiles/skh_core.dir/metrics.cpp.o"
  "CMakeFiles/skh_core.dir/metrics.cpp.o.d"
  "CMakeFiles/skh_core.dir/ping_list_gen.cpp.o"
  "CMakeFiles/skh_core.dir/ping_list_gen.cpp.o.d"
  "CMakeFiles/skh_core.dir/skeleton_hunter.cpp.o"
  "CMakeFiles/skh_core.dir/skeleton_hunter.cpp.o.d"
  "CMakeFiles/skh_core.dir/skeleton_inference.cpp.o"
  "CMakeFiles/skh_core.dir/skeleton_inference.cpp.o.d"
  "libskh_core.a"
  "libskh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
