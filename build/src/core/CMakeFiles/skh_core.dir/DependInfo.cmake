
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cpp" "src/core/CMakeFiles/skh_core.dir/anomaly.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/anomaly.cpp.o.d"
  "/root/repo/src/core/blacklist.cpp" "src/core/CMakeFiles/skh_core.dir/blacklist.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/blacklist.cpp.o.d"
  "/root/repo/src/core/diagnostics.cpp" "src/core/CMakeFiles/skh_core.dir/diagnostics.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/diagnostics.cpp.o.d"
  "/root/repo/src/core/fidelity.cpp" "src/core/CMakeFiles/skh_core.dir/fidelity.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/fidelity.cpp.o.d"
  "/root/repo/src/core/harness.cpp" "src/core/CMakeFiles/skh_core.dir/harness.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/harness.cpp.o.d"
  "/root/repo/src/core/localize.cpp" "src/core/CMakeFiles/skh_core.dir/localize.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/localize.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/skh_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/ping_list_gen.cpp" "src/core/CMakeFiles/skh_core.dir/ping_list_gen.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/ping_list_gen.cpp.o.d"
  "/root/repo/src/core/skeleton_hunter.cpp" "src/core/CMakeFiles/skh_core.dir/skeleton_hunter.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/skeleton_hunter.cpp.o.d"
  "/root/repo/src/core/skeleton_inference.cpp" "src/core/CMakeFiles/skh_core.dir/skeleton_inference.cpp.o" "gcc" "src/core/CMakeFiles/skh_core.dir/skeleton_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/skh_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/skh_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/skh_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/skh_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/skh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/skh_probe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
