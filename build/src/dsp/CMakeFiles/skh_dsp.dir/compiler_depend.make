# Empty compiler generated dependencies file for skh_dsp.
# This may be replaced when dependencies are built.
