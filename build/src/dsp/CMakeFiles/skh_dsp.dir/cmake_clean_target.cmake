file(REMOVE_RECURSE
  "libskh_dsp.a"
)
