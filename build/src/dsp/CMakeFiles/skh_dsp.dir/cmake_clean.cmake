file(REMOVE_RECURSE
  "CMakeFiles/skh_dsp.dir/fft.cpp.o"
  "CMakeFiles/skh_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/skh_dsp.dir/stft.cpp.o"
  "CMakeFiles/skh_dsp.dir/stft.cpp.o.d"
  "CMakeFiles/skh_dsp.dir/wavelet.cpp.o"
  "CMakeFiles/skh_dsp.dir/wavelet.cpp.o.d"
  "CMakeFiles/skh_dsp.dir/window.cpp.o"
  "CMakeFiles/skh_dsp.dir/window.cpp.o.d"
  "libskh_dsp.a"
  "libskh_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
