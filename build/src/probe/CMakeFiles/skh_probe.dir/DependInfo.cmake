
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probe/agent.cpp" "src/probe/CMakeFiles/skh_probe.dir/agent.cpp.o" "gcc" "src/probe/CMakeFiles/skh_probe.dir/agent.cpp.o.d"
  "/root/repo/src/probe/engine.cpp" "src/probe/CMakeFiles/skh_probe.dir/engine.cpp.o" "gcc" "src/probe/CMakeFiles/skh_probe.dir/engine.cpp.o.d"
  "/root/repo/src/probe/overhead.cpp" "src/probe/CMakeFiles/skh_probe.dir/overhead.cpp.o" "gcc" "src/probe/CMakeFiles/skh_probe.dir/overhead.cpp.o.d"
  "/root/repo/src/probe/probe_types.cpp" "src/probe/CMakeFiles/skh_probe.dir/probe_types.cpp.o" "gcc" "src/probe/CMakeFiles/skh_probe.dir/probe_types.cpp.o.d"
  "/root/repo/src/probe/traceroute.cpp" "src/probe/CMakeFiles/skh_probe.dir/traceroute.cpp.o" "gcc" "src/probe/CMakeFiles/skh_probe.dir/traceroute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/skh_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/skh_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
