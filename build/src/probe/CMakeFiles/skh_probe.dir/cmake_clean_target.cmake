file(REMOVE_RECURSE
  "libskh_probe.a"
)
