# Empty dependencies file for skh_probe.
# This may be replaced when dependencies are built.
