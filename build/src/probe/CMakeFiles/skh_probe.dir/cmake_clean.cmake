file(REMOVE_RECURSE
  "CMakeFiles/skh_probe.dir/agent.cpp.o"
  "CMakeFiles/skh_probe.dir/agent.cpp.o.d"
  "CMakeFiles/skh_probe.dir/engine.cpp.o"
  "CMakeFiles/skh_probe.dir/engine.cpp.o.d"
  "CMakeFiles/skh_probe.dir/overhead.cpp.o"
  "CMakeFiles/skh_probe.dir/overhead.cpp.o.d"
  "CMakeFiles/skh_probe.dir/probe_types.cpp.o"
  "CMakeFiles/skh_probe.dir/probe_types.cpp.o.d"
  "CMakeFiles/skh_probe.dir/traceroute.cpp.o"
  "CMakeFiles/skh_probe.dir/traceroute.cpp.o.d"
  "libskh_probe.a"
  "libskh_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
