# Empty dependencies file for skh_topo.
# This may be replaced when dependencies are built.
