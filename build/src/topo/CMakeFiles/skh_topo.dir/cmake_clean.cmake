file(REMOVE_RECURSE
  "CMakeFiles/skh_topo.dir/topology.cpp.o"
  "CMakeFiles/skh_topo.dir/topology.cpp.o.d"
  "libskh_topo.a"
  "libskh_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
