file(REMOVE_RECURSE
  "libskh_topo.a"
)
