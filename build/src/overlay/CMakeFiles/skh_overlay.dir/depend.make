# Empty dependencies file for skh_overlay.
# This may be replaced when dependencies are built.
