file(REMOVE_RECURSE
  "libskh_overlay.a"
)
