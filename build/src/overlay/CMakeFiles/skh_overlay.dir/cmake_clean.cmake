file(REMOVE_RECURSE
  "CMakeFiles/skh_overlay.dir/overlay.cpp.o"
  "CMakeFiles/skh_overlay.dir/overlay.cpp.o.d"
  "libskh_overlay.a"
  "libskh_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skh_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
