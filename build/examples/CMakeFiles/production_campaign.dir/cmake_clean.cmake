file(REMOVE_RECURSE
  "CMakeFiles/production_campaign.dir/production_campaign.cpp.o"
  "CMakeFiles/production_campaign.dir/production_campaign.cpp.o.d"
  "production_campaign"
  "production_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
