# Empty dependencies file for moe_training.
# This may be replaced when dependencies are built.
