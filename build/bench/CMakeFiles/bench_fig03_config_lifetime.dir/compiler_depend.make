# Empty compiler generated dependencies file for bench_fig03_config_lifetime.
# This may be replaced when dependencies are built.
