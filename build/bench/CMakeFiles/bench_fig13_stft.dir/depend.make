# Empty dependencies file for bench_fig13_stft.
# This may be replaced when dependencies are built.
