file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_stft.dir/bench_fig13_stft.cpp.o"
  "CMakeFiles/bench_fig13_stft.dir/bench_fig13_stft.cpp.o.d"
  "bench_fig13_stft"
  "bench_fig13_stft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_stft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
