# Empty compiler generated dependencies file for bench_table1_issues.
# This may be replaced when dependencies are built.
