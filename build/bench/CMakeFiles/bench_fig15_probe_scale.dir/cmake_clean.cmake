file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_probe_scale.dir/bench_fig15_probe_scale.cpp.o"
  "CMakeFiles/bench_fig15_probe_scale.dir/bench_fig15_probe_scale.cpp.o.d"
  "bench_fig15_probe_scale"
  "bench_fig15_probe_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_probe_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
