# Empty compiler generated dependencies file for bench_fig15_probe_scale.
# This may be replaced when dependencies are built.
