file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_flowtables.dir/bench_fig06_flowtables.cpp.o"
  "CMakeFiles/bench_fig06_flowtables.dir/bench_fig06_flowtables.cpp.o.d"
  "bench_fig06_flowtables"
  "bench_fig06_flowtables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_flowtables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
