# Empty compiler generated dependencies file for bench_fig06_flowtables.
# This may be replaced when dependencies are built.
