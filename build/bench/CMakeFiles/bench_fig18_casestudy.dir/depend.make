# Empty dependencies file for bench_fig18_casestudy.
# This may be replaced when dependencies are built.
