file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_casestudy.dir/bench_fig18_casestudy.cpp.o"
  "CMakeFiles/bench_fig18_casestudy.dir/bench_fig18_casestudy.cpp.o.d"
  "bench_fig18_casestudy"
  "bench_fig18_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
