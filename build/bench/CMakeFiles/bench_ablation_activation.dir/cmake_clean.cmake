file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_activation.dir/bench_ablation_activation.cpp.o"
  "CMakeFiles/bench_ablation_activation.dir/bench_ablation_activation.cpp.o.d"
  "bench_ablation_activation"
  "bench_ablation_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
