# Empty compiler generated dependencies file for bench_fig05_rnic_alloc.
# This may be replaced when dependencies are built.
