file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_traffic_matrix.dir/bench_fig09_traffic_matrix.cpp.o"
  "CMakeFiles/bench_fig09_traffic_matrix.dir/bench_fig09_traffic_matrix.cpp.o.d"
  "bench_fig09_traffic_matrix"
  "bench_fig09_traffic_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_traffic_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
