file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_bursts.dir/bench_fig07_bursts.cpp.o"
  "CMakeFiles/bench_fig07_bursts.dir/bench_fig07_bursts.cpp.o.d"
  "bench_fig07_bursts"
  "bench_fig07_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
