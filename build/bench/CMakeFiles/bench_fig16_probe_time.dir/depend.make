# Empty dependencies file for bench_fig16_probe_time.
# This may be replaced when dependencies are built.
