# Empty dependencies file for bench_fig14_longterm.
# This may be replaced when dependencies are built.
