file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_longterm.dir/bench_fig14_longterm.cpp.o"
  "CMakeFiles/bench_fig14_longterm.dir/bench_fig14_longterm.cpp.o.d"
  "bench_fig14_longterm"
  "bench_fig14_longterm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_longterm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
