file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_startup.dir/bench_fig04_startup.cpp.o"
  "CMakeFiles/bench_fig04_startup.dir/bench_fig04_startup.cpp.o.d"
  "bench_fig04_startup"
  "bench_fig04_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
