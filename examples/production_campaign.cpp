// Production-style validation campaign, Monte-Carlo edition.
//
// The paper's §7.1 numbers come from a six-month deployment over 2M+
// tasks; a single seeded simulation is an anecdote by comparison. This
// example runs a fleet of independent campaigns — each a full simulated
// deployment with multi-tenant tasks, randomized faults over every
// component class, one intra-host (probe-invisible) fault, and one crashed
// sidecar agent — through runner::run_many, and reports precision /
// recall / localization with 95% confidence intervals instead of point
// estimates. Results are bit-identical for a given master seed at any
// thread count; see ARCHITECTURE.md's determinism section.
#include <cstdio>
#include <string>
#include <thread>

#include "common/table.h"
#include "obs/exposition.h"
#include "runner/campaign_runner.h"

using namespace skh;
using namespace skh::runner;

int main() {
  CampaignConfig cfg;
  cfg.topology.num_hosts = 32;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4, 8};
  cfg.hunter.probe_interval = SimTime::seconds(2);
  // Three tenants per deployment, three task shapes (tp = 8 throughout).
  cfg.tasks = {{8, 8, 4, 2}, {8, 8, 2, 4}, {4, 8, 2, 2}};
  cfg.visible_faults = 16;       // cycles the full issue mix twice
  cfg.invisible_faults = 1;      // §7.3 recall bound (NVLink-class)
  cfg.phantom_agents = 1;        // §7.3 precision bound (crashed agent)

  const std::uint64_t master_seed = 777;
  const std::size_t n_campaigns = 12;
  const std::size_t threads = std::thread::hardware_concurrency();

  std::printf("running %zu independent campaigns on %zu threads"
              " (master seed %llu)...\n\n",
              n_campaigns, threads,
              static_cast<unsigned long long>(master_seed));
  const CampaignSet set = run_many(cfg, master_seed, n_campaigns, threads);

  print_banner("fleet-scale campaign summary (Section 7.1 metrics)");
  const auto& s = set.summary;
  auto ci = [](const core::MetricSummary& m) {
    return TablePrinter::pct(m.mean) + " +/- " +
           TablePrinter::num(100 * m.ci95_halfwidth(), 1);
  };
  TablePrinter table({"metric", "mean (95% CI)", "paper"});
  table.add_row({"precision", ci(s.precision), "98.2%"});
  table.add_row({"recall", ci(s.recall), "99.3%"});
  table.add_row({"localization accuracy", ci(s.localization_accuracy),
                 "95.7%"});
  table.add_row({"detection latency",
                 TablePrinter::num(s.detection_latency_s.mean, 1) + " s +/- " +
                     TablePrinter::num(s.detection_latency_s.ci95_halfwidth(),
                                       1),
                 "8 s avg"});
  table.print();

  std::printf("\npooled over %zu deployments: %zu failure cases raised,"
              " %zu false positives, %zu/%zu injected faults detected\n",
              s.runs, s.total_cases, s.total_cases_false, s.total_detected,
              s.total_injected_visible + s.total_injected_invisible);

  // Per-seed spread: the anecdote a single-seed run would have reported.
  std::printf("\nper-seed precision spread:");
  for (const auto& r : set.runs) {
    std::printf(" %.0f%%", 100 * r.score.precision());
  }
  std::printf("\n(every miss is the intra-host fault; every false alarm is"
              " the crashed agent — the same §7.3 error anatomy as"
              " production)\n");

  // Ingest-to-verdict latency plane: how long a failure took to travel from
  // its first anomalous window opening to a localized verdict, fleet-wide.
  for (const auto& h : set.fleet.histograms) {
    if (h.name == "latency.ingest_to_verdict_s") {
      std::printf("\ningest-to-verdict latency: p50 %.0f s, p99 %.0f s"
                  " over %llu verdicts\n",
                  h.quantile(0.5), h.quantile(0.99),
                  static_cast<unsigned long long>(h.count));
    }
  }

  // Fleet observability snapshot: the per-seed registries merged in seed
  // order (bit-identical at any thread count). One line per metric; the
  // probe.rtt_us histogram shows where the fleet's RTTs actually sit.
  print_banner("fleet metrics snapshot (obs registry, pooled over seeds)");
  std::printf("%s", set.fleet.to_string().c_str());

  // The same snapshot as a Prometheus scraper would see it (serve it live
  // with examples/metrics_server). First lines only; the full exposition is
  // one deterministic text document.
  print_banner("prometheus exposition sample (first 12 lines)");
  {
    const std::string expo = obs::prometheus_text(set.fleet);
    std::size_t pos = 0;
    for (int line = 0; line < 12 && pos < expo.size(); ++line) {
      const std::size_t nl = expo.find('\n', pos);
      std::printf("%.*s\n", static_cast<int>(nl - pos), expo.c_str() + pos);
      pos = nl + 1;
    }
    std::printf("... (%zu bytes total)\n", expo.size());
  }
  return 0;
}
