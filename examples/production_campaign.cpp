// Production-style campaign: several tenants' tasks share the cluster,
// faults arrive randomly over simulated hours, one problematic host keeps
// failing until SkeletonHunter's verdicts "repair" it — a miniature of the
// paper's six-month deployment story, including the repair effect (the
// monthly failure rate dropped 99.1% after fixing the culprit components).
#include <cstdio>
#include <set>
#include <vector>

#include "core/harness.h"
#include "core/metrics.h"

using namespace skh;
using namespace skh::core;

int main() {
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 32;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4, 8};
  cfg.hunter.probe_interval = SimTime::seconds(2);
  cfg.seed = 777;
  Experiment exp(cfg);

  // Three tenants, three task shapes.
  std::vector<TaskId> tasks;
  for (std::uint32_t n : {8u, 8u, 4u}) {
    cluster::TaskRequest req;
    req.num_containers = n;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(12);
    const auto t = exp.launch_task(req);
    if (!t) continue;
    exp.run_to_running(*t);
    workload::ParallelismConfig par;
    par.tp = 8;
    par.pp = 2;
    par.dp = n / 2;
    (void)exp.apply_skeleton(*t, exp.layout_of(*t, par));
    tasks.push_back(*t);
  }
  std::printf("monitoring %zu tasks, %zu probes targets total\n",
              tasks.size(),
              [&] {
                std::size_t s = 0;
                for (auto t : tasks) s += exp.hunter().current_targets(t);
                return s;
              }());

  // Phase 1 ("before fixes"): a flaky host generates recurring faults.
  RngStream frng = exp.rng().fork("campaign");
  const HostId flaky{2};
  SimTime cursor = exp.events().now() + SimTime::minutes(5);
  int phase1_faults = 0;
  for (int i = 0; i < 6; ++i) {
    const auto rail = static_cast<std::uint32_t>(frng.uniform_int(0, 7));
    const RnicId rnic = exp.topology().rnic_of(flaky, rail);
    exp.faults().inject(
        i % 2 == 0 ? sim::IssueType::kRnicPortFlapping
                   : sim::IssueType::kRnicFirmwareNotResponding,
        {sim::ComponentKind::kRnic, rnic.value()}, cursor,
        cursor + SimTime::minutes(6));
    cursor += SimTime::minutes(12);
    ++phase1_faults;
  }
  const SimTime phase1_end = cursor + SimTime::minutes(5);

  // Run phase 1 and collect the verdicts.
  exp.hunter().start(phase1_end + SimTime::hours(2));
  exp.events().run_until(phase1_end);
  std::set<std::uint32_t> blamed_rnics;
  for (const auto& c : exp.hunter().failure_cases()) {
    for (const auto& culprit : c.localization.culprits) {
      if (culprit.kind == sim::ComponentKind::kRnic) {
        blamed_rnics.insert(culprit.index);
      }
    }
  }
  const std::size_t phase1_cases = exp.hunter().failure_cases().size();
  std::printf("\nphase 1 (%d injected faults on host %u): %zu failure cases,"
              " %zu RNICs blamed\n",
              phase1_faults, flaky.value(), phase1_cases,
              blamed_rnics.size());

  // The blamed components were auto-blacklisted (§8): no new task can land
  // on the flaky host until the operators repair it.
  std::printf("blacklist now holds %zu components; host %u is %s\n",
              exp.hunter().blacklist().size(), flaky.value(),
              exp.hunter().blacklist().host_schedulable(flaky, 8)
                  ? "still schedulable"
                  : "BLOCKED from new placements");

  // "Fix" phase: operators replace the blamed components; phase 2 injects
  // the same workload pressure but the flaky host is healthy.
  std::printf("operators replace blamed components on host %u\n",
              flaky.value());
  for (const auto& ref : exp.hunter().blacklist().entries()) {
    exp.hunter().mark_repaired(ref);
  }
  int phase2_faults = 1;  // background noise: one unrelated transient
  const auto eps = exp.orchestrator().endpoints_of_task(tasks[0]);
  exp.faults().inject(sim::IssueType::kSwitchPortFlapping,
                      {sim::ComponentKind::kPhysicalLink,
                       exp.topology().uplink_of(eps[3].rnic).value()},
                      phase1_end + SimTime::minutes(30),
                      phase1_end + SimTime::minutes(35));
  exp.events().run_all();
  exp.hunter().finalize();

  const std::size_t total_cases = exp.hunter().failure_cases().size();
  const std::size_t phase2_cases = total_cases - phase1_cases;
  const auto score = score_campaign(exp.hunter().failure_cases(),
                                    exp.faults(), exp.topology());

  std::printf("phase 2 (%d background fault): %zu failure cases\n",
              phase2_faults, phase2_cases);
  std::printf("\ncampaign: precision %.1f%%, recall %.1f%%, localization"
              " %.1f%%\n",
              100 * score.precision(), 100 * score.recall(),
              100 * score.localization_accuracy());
  const double drop =
      phase1_cases == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(phase2_cases) /
                               static_cast<double>(phase1_cases));
  std::printf("failure-case rate after fixes dropped %.0f%%"
              " (paper: monthly failure rate fell 99.1%% after fixing 98%%"
              " of culprit components)\n",
              drop);
  return 0;
}
