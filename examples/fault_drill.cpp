// Fault drill: sweep every Table-1 issue type against a live deployment
// and print a one-line verdict per issue — a smoke test an operator can
// run before trusting a new SkeletonHunter rollout (and the example behind
// bench_table1_issues). `--churn-gate` runs only the restart-storm drill
// (the churn.false_alarm_gate ctest entry).
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/harness.h"
#include "core/metrics.h"
#include "obs/trace.h"

using namespace skh;
using namespace skh::core;

namespace {

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const char* name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

/// Restart-storm drill: a fault-free storm over a monitored task must raise
/// ZERO non-suppressed failure cases (restarts are the control plane doing
/// its job, not network failures), and once fresh observations accumulate,
/// re-inference must bring the probing plan back to its pre-churn skeleton.
int run_restart_storm_drill() {
  std::puts("Restart-storm drill: 6 fault-free restarts on a live task\n");
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.seed = 6100;
  cfg.obs.metrics = true;
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) {
    std::puts("  FAILED: cluster rejected the task");
    return 1;
  }
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  const auto layout = exp.layout_of(*task, par);
  if (!exp.apply_skeleton(*task, layout)) {
    std::puts("  FAILED: initial skeleton inference rejected");
    return 1;
  }
  const std::size_t skeleton_targets = exp.hunter().current_targets(*task);

  // The storm: six restarts, 30 s apart, no network fault anywhere.
  RngStream storm_rng = exp.rng().fork("storm");
  const auto storm = sim::make_restart_storm(
      req.num_containers, 6, exp.events().now() + SimTime::minutes(3),
      SimTime::seconds(30), storm_rng);
  exp.schedule_churn(*task, storm);

  // Fresh observation batches once the storm has settled: the first batch
  // only accumulates (reinference_min_samples = 2), the second re-infers
  // through the fidelity gate.
  const SimTime settle = exp.events().now() + SimTime::minutes(15);
  for (int batch = 0; batch < 2; ++batch) {
    exp.events().schedule_at(
        settle + SimTime::minutes(batch), [&exp, &par, task = *task] {
          (void)exp.apply_skeleton(task, exp.layout_of(task, par));
        });
  }

  // Measure recovery while the task is still live (run_all also drains the
  // task's natural end-of-life teardown, which empties the agent set).
  std::size_t final_targets = 0;
  bool recovered = false;
  exp.events().schedule_at(settle + SimTime::minutes(5),
                           [&exp, &final_targets, &recovered, task = *task] {
                             final_targets =
                                 exp.hunter().current_targets(task);
                             recovered = !exp.hunter().task_degraded(task);
                           });

  exp.hunter().start(exp.events().now() + SimTime::minutes(25));
  exp.events().run_all();
  exp.hunter().finalize();

  const auto snap = exp.obs().registry.scrape();
  const std::size_t cases = exp.hunter().failure_cases().size();
  std::printf("  restarts delivered : %llu\n",
              static_cast<unsigned long long>(
                  counter_value(snap, "orchestrator.containers_restarted")));
  std::printf("  churn events seen  : %llu, replans: %llu\n",
              static_cast<unsigned long long>(
                  counter_value(snap, "hunter.churn_events")),
              static_cast<unsigned long long>(
                  counter_value(snap, "hunter.replans")));
  std::printf("  failure cases      : %zu (want 0)\n", cases);
  std::printf("  probing targets    : %zu pre-churn, %zu post-reinference\n",
              skeleton_targets, final_targets);
  std::printf("  degraded at end    : %s\n", recovered ? "no" : "yes");
  const bool pass =
      cases == 0 && recovered && final_targets == skeleton_targets;
  std::printf("\nchurn gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--churn-gate") == 0) {
    return run_restart_storm_drill();
  }
  std::puts("Fault drill: one injection per Table-1 issue type\n");
  int detected = 0, expected_detected = 0;
  bool trace_dumped = false;
  for (const auto& info : sim::all_issue_infos()) {
    ExperimentConfig cfg;
    cfg.topology.num_hosts = 8;
    cfg.topology.rails_per_host = 8;
    cfg.topology.hosts_per_segment = 8;
    cfg.hunter.inference.candidate_dp = {2, 4};
    cfg.seed = 7000 + static_cast<std::uint64_t>(info.type);
    cfg.obs.tracing = true;  // sim-time trace of the whole drill
    Experiment exp(cfg);

    cluster::TaskRequest req;
    req.num_containers = 4;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(6);
    const auto task = exp.launch_task(req);
    if (!task) continue;
    exp.run_to_running(*task);
    workload::ParallelismConfig par;
    par.tp = 8;
    par.pp = 2;
    par.dp = 2;
    (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

    const auto victim = exp.orchestrator().endpoints_of_task(*task)[9];
    const SimTime start = exp.events().now() + SimTime::minutes(3);
    const SimTime end = start + SimTime::minutes(8);
    sim::ComponentRef target;
    switch (info.target_kind) {
      case sim::ComponentKind::kPhysicalLink:
        target = {sim::ComponentKind::kPhysicalLink,
                  exp.topology().uplink_of(victim.rnic).value()};
        break;
      case sim::ComponentKind::kPhysicalSwitch: {
        const auto host = exp.topology().host_of(victim.rnic);
        target = {sim::ComponentKind::kPhysicalSwitch,
                  exp.topology()
                      .tor_at(exp.topology().segment_of(host),
                              exp.topology().rail_of(victim.rnic))
                      .value()};
        break;
      }
      case sim::ComponentKind::kRnic:
        target = {sim::ComponentKind::kRnic, victim.rnic.value()};
        break;
      case sim::ComponentKind::kVSwitch:
        target = {sim::ComponentKind::kVSwitch,
                  exp.topology().host_of(victim.rnic).value()};
        break;
      case sim::ComponentKind::kContainer:
        target = {sim::ComponentKind::kContainer, victim.container.value()};
        exp.events().schedule_at(start, [&exp, victim] {
          exp.orchestrator().crash_container(victim.container);
        });
        break;
      default:
        target = {sim::ComponentKind::kHost,
                  exp.topology().host_of(victim.rnic).value()};
        break;
    }
    if (info.type == sim::IssueType::kRepetitiveFlowOffloading ||
        info.type == sim::IssueType::kOffloadingFailure) {
      exp.events().schedule_at(start, [&exp, victim] {
        exp.overlay().invalidate_offload(victim.rnic);
      });
      exp.faults().inject(info.type, target, start, end, sim::FaultEffect{});
    } else if (info.type == sim::IssueType::kContainerCrash) {
      exp.faults().inject(info.type, target, start, end, sim::FaultEffect{});
    } else {
      exp.faults().inject(info.type, target, start, end);
    }

    exp.hunter().start(exp.events().now() + SimTime::minutes(20));
    exp.events().run_all();
    exp.hunter().finalize();
    const auto score = score_campaign(exp.hunter().failure_cases(),
                                      exp.faults(), exp.topology());
    const bool hit = score.detected_true > 0;
    if (info.probe_visible) {
      ++expected_detected;
      if (hit) ++detected;
    }
    // For the first detected issue, dump the artifacts an operator would
    // attach to the ticket: the failure case's causal timeline and the
    // deployment's Chrome-trace (load in chrome://tracing or Perfetto).
    if (hit && !trace_dumped) {
      trace_dumped = true;
      const auto& c = exp.hunter().failure_cases().front();
      std::printf("\n  case timeline for issue #%d:\n%s",
                  static_cast<int>(info.type), c.timeline.to_string().c_str());
      std::ofstream out("fault_drill_trace.json");
      obs::export_chrome_trace(exp.obs().tracer, out);
      std::printf("  full sim-time trace (%zu events, %llu dropped) -> "
                  "fault_drill_trace.json\n\n",
                  exp.obs().tracer.size(),
                  static_cast<unsigned long long>(exp.obs().tracer.dropped()));
    }
    std::printf("  #%-2d %-30s %-14s -> %s\n", static_cast<int>(info.type),
                std::string(sim::to_string(info.type)).c_str(),
                std::string(sim::to_string(info.symptom)).c_str(),
                hit              ? "DETECTED"
                : info.probe_visible ? "MISSED"
                                     : "invisible (expected miss, Sec 7.3)");
  }
  std::printf("\ndrill result: %d/%d probe-visible issues detected\n\n",
              detected, expected_detected);
  const int churn_rc = run_restart_storm_drill();
  return (detected == expected_detected && churn_rc == 0) ? 0 : 1;
}
