// Fault drill: sweep every Table-1 issue type against a live deployment
// and print a one-line verdict per issue — a smoke test an operator can
// run before trusting a new SkeletonHunter rollout (and the example behind
// bench_table1_issues). `--churn-gate` runs only the restart-storm drill
// (the churn.false_alarm_gate ctest entry).
#include <cstdio>
#include <fstream>

#include "drill_gates.h"

#include "core/harness.h"
#include "core/metrics.h"
#include "obs/json_lint.h"
#include "obs/trace.h"

using namespace skh;
using namespace skh::core;

namespace {

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const char* name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

/// Restart-storm drill: a fault-free storm over a monitored task must raise
/// ZERO non-suppressed failure cases (restarts are the control plane doing
/// its job, not network failures), and once fresh observations accumulate,
/// re-inference must bring the probing plan back to its pre-churn skeleton.
int run_restart_storm_drill() {
  std::puts("Restart-storm drill: 6 fault-free restarts on a live task\n");
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.seed = 6100;
  cfg.obs.metrics = true;
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) {
    std::puts("  FAILED: cluster rejected the task");
    return 1;
  }
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  const auto layout = exp.layout_of(*task, par);
  if (!exp.apply_skeleton(*task, layout)) {
    std::puts("  FAILED: initial skeleton inference rejected");
    return 1;
  }
  const std::size_t skeleton_targets = exp.hunter().current_targets(*task);

  // The storm: six restarts, 30 s apart, no network fault anywhere.
  RngStream storm_rng = exp.rng().fork("storm");
  const auto storm = sim::make_restart_storm(
      req.num_containers, 6, exp.events().now() + SimTime::minutes(3),
      SimTime::seconds(30), storm_rng);
  exp.schedule_churn(*task, storm);

  // Fresh observation batches once the storm has settled: the first batch
  // only accumulates (reinference_min_samples = 2), the second re-infers
  // through the fidelity gate.
  const SimTime settle = exp.events().now() + SimTime::minutes(15);
  for (int batch = 0; batch < 2; ++batch) {
    exp.events().schedule_at(
        settle + SimTime::minutes(batch), [&exp, &par, task = *task] {
          (void)exp.apply_skeleton(task, exp.layout_of(task, par));
        });
  }

  // Measure recovery while the task is still live (run_all also drains the
  // task's natural end-of-life teardown, which empties the agent set).
  std::size_t final_targets = 0;
  bool recovered = false;
  exp.events().schedule_at(settle + SimTime::minutes(5),
                           [&exp, &final_targets, &recovered, task = *task] {
                             final_targets =
                                 exp.hunter().current_targets(task);
                             recovered = !exp.hunter().task_degraded(task);
                           });

  exp.hunter().start(exp.events().now() + SimTime::minutes(25));
  exp.events().run_all();
  exp.hunter().finalize();

  const auto snap = exp.obs().registry.scrape();
  const std::size_t cases = exp.hunter().failure_cases().size();
  std::printf("  restarts delivered : %llu\n",
              static_cast<unsigned long long>(
                  counter_value(snap, "orchestrator.containers_restarted")));
  std::printf("  churn events seen  : %llu, replans: %llu\n",
              static_cast<unsigned long long>(
                  counter_value(snap, "hunter.churn_events")),
              static_cast<unsigned long long>(
                  counter_value(snap, "hunter.replans")));
  std::printf("  failure cases      : %zu (want 0)\n", cases);
  std::printf("  probing targets    : %zu pre-churn, %zu post-reinference\n",
              skeleton_targets, final_targets);
  std::printf("  degraded at end    : %s\n", recovered ? "no" : "yes");
  const bool pass =
      cases == 0 && recovered && final_targets == skeleton_targets;
  std::printf("\nchurn gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

/// Telemetry drill phase A: a lying measurement plane over a HEALTHY
/// network must raise ZERO failure cases. Loss bursts, duplicate storms,
/// reordering, clock skew, and RTT bit-flips are all telemetry artifacts —
/// paging an operator for any of them is a false alarm.
int run_gray_telemetry_drill() {
  std::puts(
      "Gray-telemetry drill: lying measurement plane, healthy network\n");
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.hunter.detector.window_quorum = 5;
  cfg.seed = 6200;
  cfg.obs.metrics = true;
  // The storm: overlapping gray episodes covering every non-blackout
  // telemetry fault kind, including a near-total loss burst that starves
  // windows below quorum.
  using sim::TelemetryFaultKind;
  auto episode = [](TelemetryFaultKind kind, int start_min, int dur_min,
                    double magnitude) {
    return sim::TelemetryFault{kind, SimTime::minutes(start_min),
                               SimTime::minutes(start_min + dur_min),
                               magnitude};
  };
  cfg.hunter.telemetry.faults = {
      episode(TelemetryFaultKind::kResponseLoss, 3, 4, 0.5),
      episode(TelemetryFaultKind::kDuplication, 5, 4, 0.4),
      episode(TelemetryFaultKind::kReordering, 8, 4, 0.3),
      episode(TelemetryFaultKind::kClockSkew, 11, 4, 2.0),
      episode(TelemetryFaultKind::kRttCorruption, 13, 4, 0.05),
      episode(TelemetryFaultKind::kResponseLoss, 17, 2, 0.95),
  };
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) {
    std::puts("  FAILED: cluster rejected the task");
    return 1;
  }
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

  exp.hunter().start(exp.events().now() + SimTime::minutes(25));
  exp.events().run_all();
  exp.hunter().finalize();

  const auto& ch = exp.hunter().telemetry_channel().counters();
  const auto det = exp.hunter().detector_counters();
  const std::size_t cases = exp.hunter().failure_cases().size();
  std::printf("  plane lied         : %llu dropped, %llu duplicated, "
              "%llu delayed, %llu skewed, %llu corrupted\n",
              static_cast<unsigned long long>(ch.results_dropped),
              static_cast<unsigned long long>(ch.results_duplicated),
              static_cast<unsigned long long>(ch.results_delayed),
              static_cast<unsigned long long>(ch.timestamps_skewed),
              static_cast<unsigned long long>(ch.rtt_corrupted));
  std::printf("  detector defenses  : %llu dups rejected, %llu stale "
              "rejected, %llu windows below quorum\n",
              static_cast<unsigned long long>(det.duplicates_rejected),
              static_cast<unsigned long long>(det.stale_rejected),
              static_cast<unsigned long long>(det.windows_insufficient));
  std::printf("  failure cases      : %zu (want 0)\n", cases);
  const bool pass = cases == 0 && ch.results_dropped > 0 &&
                    ch.results_duplicated > 0 && ch.results_delayed > 0 &&
                    ch.timestamps_skewed > 0 && ch.rtt_corrupted > 0 &&
                    det.duplicates_rejected > 0 && det.stale_rejected > 0 &&
                    det.windows_insufficient > 0;
  std::printf("\ngray-telemetry gate: %s\n\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

/// Telemetry drill phase B: an analyzer blackout spanning an in-flight
/// failure case must not change the outcome — the warm restart from the
/// blackout-entry checkpoint resumes the case, and its verdict (method and
/// culprit set) matches the uninterrupted run on the same seed, with no
/// extra cases.
struct BlackoutVerdict {
  std::size_t cases = 0;
  bool detected = false;
  LocalizationMethod method = LocalizationMethod::kUnlocalized;
  std::vector<sim::ComponentRef> culprits;
  std::uint64_t restores = 0;
  /// Every case timeline must stay monotone in sim time even when stages
  /// straddle an analyzer blackout + warm restore.
  bool timelines_monotone = true;
};

BlackoutVerdict run_blackout_scenario(bool with_blackout) {
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.seed = 6300;
  if (with_blackout) {
    cfg.hunter.telemetry.faults = {
        {sim::TelemetryFaultKind::kAnalyzerBlackout, SimTime::minutes(6),
         SimTime::minutes(8) + SimTime::seconds(30), 0.0}};
  }
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) return {};
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

  // A real fault whose lifetime straddles the blackout window.
  const auto victim = exp.orchestrator().endpoints_of_task(*task)[9];
  exp.faults().inject(sim::IssueType::kRnicPortDown,
                      {sim::ComponentKind::kRnic, victim.rnic.value()},
                      SimTime::minutes(3), SimTime::minutes(11));

  exp.hunter().start(exp.events().now() + SimTime::minutes(20));
  exp.events().run_all();
  exp.hunter().finalize();

  BlackoutVerdict v;
  v.cases = exp.hunter().failure_cases().size();
  const auto score =
      score_campaign(exp.hunter().failure_cases(), exp.faults(),
                     exp.topology());
  v.detected = score.detected_true > 0;
  if (!exp.hunter().failure_cases().empty()) {
    const auto& loc = exp.hunter().failure_cases().front().localization;
    v.method = loc.method;
    v.culprits = loc.culprits;
  }
  v.restores = exp.hunter().analyzer_restores();
  for (const auto& c : exp.hunter().failure_cases()) {
    for (std::size_t i = 1; i < c.timeline.entries.size(); ++i) {
      if (c.timeline.entries[i].at < c.timeline.entries[i - 1].at) {
        v.timelines_monotone = false;
      }
    }
  }
  return v;
}

int run_blackout_restore_drill() {
  std::puts("Blackout drill: analyzer dies mid-incident, restores warm\n");
  const BlackoutVerdict honest = run_blackout_scenario(false);
  const BlackoutVerdict blackout = run_blackout_scenario(true);
  std::printf("  uninterrupted run  : %zu case(s), method %s, %zu culprit(s)\n",
              honest.cases, std::string(to_string(honest.method)).c_str(),
              honest.culprits.size());
  std::printf("  blackout run       : %zu case(s), method %s, %zu "
              "culprit(s), %llu restore(s)\n",
              blackout.cases, std::string(to_string(blackout.method)).c_str(),
              blackout.culprits.size(),
              static_cast<unsigned long long>(blackout.restores));
  std::printf("  timelines monotone : %s\n",
              blackout.timelines_monotone ? "yes" : "NO");
  const bool pass = honest.detected && blackout.detected &&
                    blackout.cases == honest.cases &&
                    blackout.method == honest.method &&
                    blackout.culprits == honest.culprits &&
                    blackout.restores == 1 && honest.timelines_monotone &&
                    blackout.timelines_monotone;
  std::printf("\nblackout gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int run_telemetry_gate() {
  const int gray_rc = run_gray_telemetry_drill();
  const int blackout_rc = run_blackout_restore_drill();
  return (gray_rc == 0 && blackout_rc == 0) ? 0 : 1;
}

/// Forensic gate: a drill with a real fault must open at least one failure
/// case, and the flight recorder must hold a self-contained forensic bundle
/// for it — parseable JSON whose timeline carries every stage from
/// case.open to case.close, with non-empty window history for the
/// offending pairs.
int run_forensic_gate() {
  std::puts("Forensic gate: fault drill with flight recorder on\n");
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.seed = 6400;
  cfg.obs.metrics = true;
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) {
    std::puts("  FAILED: cluster rejected the task");
    return 1;
  }
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

  const auto victim = exp.orchestrator().endpoints_of_task(*task)[9];
  exp.faults().inject(sim::IssueType::kRnicPortDown,
                      {sim::ComponentKind::kRnic, victim.rnic.value()},
                      SimTime::minutes(3), SimTime::minutes(11));

  exp.hunter().start(exp.events().now() + SimTime::minutes(20));
  exp.events().run_all();
  exp.hunter().finalize();

  const auto& rec = exp.obs().recorder;
  const auto& cases = exp.hunter().failure_cases();
  std::printf("  failure cases      : %zu (want >= 1)\n", cases.size());
  std::printf("  bundles resident   : %zu\n", rec.bundles().size());
  if (cases.empty()) {
    std::puts("\nforensic gate: FAIL (no case opened)");
    return 1;
  }

  bool all_ok = true;
  for (const auto& c : cases) {
    const std::string* bundle = rec.bundle_of(c.id);
    if (bundle == nullptr) {
      std::printf("  case %u: NO BUNDLE\n", c.id);
      all_ok = false;
      continue;
    }
    const bool parses = obs::json_valid(*bundle);
    if (!parses) {
      // Leave the evidence on disk for whoever debugs the malformed bundle.
      char fname[64];
      std::snprintf(fname, sizeof fname, "forensic_bundle_case%u.json", c.id);
      std::ofstream(fname) << *bundle;
    }
    // Every causal stage present, and at least one recorded window (the
    // "flags" key only appears inside window objects).
    const bool stages = bundle->find("\"case.open\"") != std::string::npos &&
                        bundle->find("\"anomaly\"") != std::string::npos &&
                        bundle->find("\"localize\"") != std::string::npos &&
                        bundle->find("\"case.close\"") != std::string::npos;
    const bool windows = bundle->find("\"flags\":") != std::string::npos;
    const bool votes = bundle->find("\"source\":") != std::string::npos;
    std::printf("  case %u: %zu bytes, json %s, stages %s, windows %s, "
                "votes %s\n",
                c.id, bundle->size(), parses ? "ok" : "INVALID",
                stages ? "ok" : "MISSING", windows ? "ok" : "EMPTY",
                votes ? "ok" : "EMPTY");
    all_ok = all_ok && parses && stages && windows && votes;
  }
  const auto snap = exp.obs().registry.scrape();
  for (const auto& h : snap.histograms) {
    if (h.name == "latency.ingest_to_verdict_s") {
      std::printf("  ingest-to-verdict  : p50 %.1fs, p99 %.1fs over %llu "
                  "verdict(s)\n",
                  h.quantile(0.5), h.quantile(0.99),
                  static_cast<unsigned long long>(h.count));
    }
  }
  std::printf("\nforensic gate: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}

int run_full_drill() {
  std::puts("Fault drill: one injection per Table-1 issue type\n");
  int detected = 0, expected_detected = 0;
  bool trace_dumped = false;
  for (const auto& info : sim::all_issue_infos()) {
    ExperimentConfig cfg;
    cfg.topology.num_hosts = 8;
    cfg.topology.rails_per_host = 8;
    cfg.topology.hosts_per_segment = 8;
    cfg.hunter.inference.candidate_dp = {2, 4};
    cfg.seed = 7000 + static_cast<std::uint64_t>(info.type);
    cfg.obs.tracing = true;  // sim-time trace of the whole drill
    Experiment exp(cfg);

    cluster::TaskRequest req;
    req.num_containers = 4;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(6);
    const auto task = exp.launch_task(req);
    if (!task) continue;
    exp.run_to_running(*task);
    workload::ParallelismConfig par;
    par.tp = 8;
    par.pp = 2;
    par.dp = 2;
    (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

    const auto victim = exp.orchestrator().endpoints_of_task(*task)[9];
    const SimTime start = exp.events().now() + SimTime::minutes(3);
    const SimTime end = start + SimTime::minutes(8);
    sim::ComponentRef target;
    switch (info.target_kind) {
      case sim::ComponentKind::kPhysicalLink:
        target = {sim::ComponentKind::kPhysicalLink,
                  exp.topology().uplink_of(victim.rnic).value()};
        break;
      case sim::ComponentKind::kPhysicalSwitch: {
        const auto host = exp.topology().host_of(victim.rnic);
        target = {sim::ComponentKind::kPhysicalSwitch,
                  exp.topology()
                      .tor_at(exp.topology().segment_of(host),
                              exp.topology().rail_of(victim.rnic))
                      .value()};
        break;
      }
      case sim::ComponentKind::kRnic:
        target = {sim::ComponentKind::kRnic, victim.rnic.value()};
        break;
      case sim::ComponentKind::kVSwitch:
        target = {sim::ComponentKind::kVSwitch,
                  exp.topology().host_of(victim.rnic).value()};
        break;
      case sim::ComponentKind::kContainer:
        target = {sim::ComponentKind::kContainer, victim.container.value()};
        exp.events().schedule_at(start, [&exp, victim] {
          exp.orchestrator().crash_container(victim.container);
        });
        break;
      default:
        target = {sim::ComponentKind::kHost,
                  exp.topology().host_of(victim.rnic).value()};
        break;
    }
    if (info.type == sim::IssueType::kRepetitiveFlowOffloading ||
        info.type == sim::IssueType::kOffloadingFailure) {
      exp.events().schedule_at(start, [&exp, victim] {
        exp.overlay().invalidate_offload(victim.rnic);
      });
      exp.faults().inject(info.type, target, start, end, sim::FaultEffect{});
    } else if (info.type == sim::IssueType::kContainerCrash) {
      exp.faults().inject(info.type, target, start, end, sim::FaultEffect{});
    } else {
      exp.faults().inject(info.type, target, start, end);
    }

    exp.hunter().start(exp.events().now() + SimTime::minutes(20));
    exp.events().run_all();
    exp.hunter().finalize();
    const auto score = score_campaign(exp.hunter().failure_cases(),
                                      exp.faults(), exp.topology());
    const bool hit = score.detected_true > 0;
    if (info.probe_visible) {
      ++expected_detected;
      if (hit) ++detected;
    }
    // For the first detected issue, dump the artifacts an operator would
    // attach to the ticket: the failure case's causal timeline and the
    // deployment's Chrome-trace (load in chrome://tracing or Perfetto).
    if (hit && !trace_dumped) {
      trace_dumped = true;
      const auto& c = exp.hunter().failure_cases().front();
      std::printf("\n  case timeline for issue #%d:\n%s",
                  static_cast<int>(info.type), c.timeline.to_string().c_str());
      std::ofstream out("fault_drill_trace.json");
      obs::export_chrome_trace(exp.obs().tracer, out);
      std::printf("  full sim-time trace (%zu events, %llu dropped) -> "
                  "fault_drill_trace.json\n\n",
                  exp.obs().tracer.size(),
                  static_cast<unsigned long long>(exp.obs().tracer.dropped()));
    }
    std::printf("  #%-2d %-30s %-14s -> %s\n", static_cast<int>(info.type),
                std::string(sim::to_string(info.type)).c_str(),
                std::string(sim::to_string(info.symptom)).c_str(),
                hit              ? "DETECTED"
                : info.probe_visible ? "MISSED"
                                     : "invisible (expected miss, Sec 7.3)");
  }
  std::printf("\ndrill result: %d/%d probe-visible issues detected\n\n",
              detected, expected_detected);
  const int churn_rc = run_restart_storm_drill();
  const int telemetry_rc = run_telemetry_gate();
  return (detected == expected_detected && churn_rc == 0 &&
          telemetry_rc == 0)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  static constexpr skh::examples::Gate kGates[] = {
      {"--churn-gate", run_restart_storm_drill},
      {"--telemetry-gate", run_telemetry_gate},
      {"--forensic-gate", run_forensic_gate},
  };
  return skh::examples::dispatch_gates(argc, argv, kGates, run_full_drill);
}
