// Shard drill: byte-for-byte shard-count invariance at production scale.
//
// A 4096-host rail-optimized topology carries three 64-container tasks
// probing their rail-pruned basic lists (~97k directed pairs — the paper's
// "one analyzer per cluster" regime) through a handful of injected
// faults. The FULL verdict stream — every failure case with its window
// events, localization method, culprit set, and confidence — is serialized
// to a canonical text form and diffed across analyzer_shards = 1, 4, and
// 16, plus a 4-shard run that live-migrates a third of the pair-id space
// between shards mid-campaign. Any byte of difference fails the gate
// (ctest: shard.identity_gate).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/localize.h"
#include "core/metrics.h"

using namespace skh;
using namespace skh::core;

namespace {

struct DrillOutcome {
  std::string verdicts;    ///< canonical serialization of every case
  std::size_t pairs = 0;   ///< pairs resident in the sharded detector
  std::size_t cases = 0;   ///< non-suppressed failure cases
  std::size_t detected = 0;
  std::size_t rebalanced = 0;  ///< pairs moved by the mid-campaign migration
  DetectorCounters counters{};
};

void append_component(std::string& out, const sim::ComponentRef& ref) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "(%d:%u)", static_cast<int>(ref.kind),
                ref.index);
  out += buf;
}

/// Canonical text form of the hunter's entire output. Scores and
/// confidences print with %.17g so two streams agree only when the doubles
/// are bit-identical (modulo -0.0, which the pipeline never produces).
std::string serialize_verdicts(const SkeletonHunter& hunter) {
  std::string out;
  out.reserve(1 << 16);
  char buf[192];
  for (const FailureCase& c : hunter.failure_cases()) {
    std::snprintf(buf, sizeof buf,
                  "case id=%u task=%u first=%lld last=%lld suppressed=%d\n",
                  c.id, c.task.value(),
                  static_cast<long long>(c.first_event.raw_nanos()),
                  static_cast<long long>(c.last_event.raw_nanos()),
                  c.suppressed ? 1 : 0);
    out += buf;
    for (const AnomalyEvent& e : c.events) {
      std::snprintf(buf, sizeof buf,
                    "  event t=%lld kind=%d pair=%u/%u->%u/%u score=%.17g\n",
                    static_cast<long long>(e.detected_at.raw_nanos()),
                    static_cast<int>(e.kind), e.pair.src.container.value(),
                    e.pair.src.rnic.value(), e.pair.dst.container.value(),
                    e.pair.dst.rnic.value(), e.score);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "  verdict method=%s confidence=%.17g",
                  std::string(to_string(c.localization.method)).c_str(),
                  c.localization.confidence);
    out += buf;
    for (const auto& ref : c.localization.culprits) {
      out += ' ';
      append_component(out, ref);
    }
    out += '\n';
  }
  return out;
}

DrillOutcome run_drill(std::size_t shards, bool rebalance) {
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 4096;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 64;
  cfg.hunter.analyzer_shards = shards;
  cfg.hunter.probe_interval = SimTime::seconds(15);
  cfg.hunter.detector.expected_pairs = 100000;
  cfg.seed = 8400;  // identical across shard counts on purpose
  Experiment exp(cfg);

  // Three production-shaped tasks; no skeleton is applied, so each keeps
  // probing its rail-pruned basic list: 3 * 8 rails * 64*63 directed
  // same-rail pairs ~ 97k pairs through one sharded analyzer.
  std::vector<TaskId> tasks;
  for (int t = 0; t < 3; ++t) {
    cluster::TaskRequest req;
    req.num_containers = 64;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(6);
    const auto task = exp.launch_task(req);
    if (!task) return {};
    exp.run_to_running(*task);
    tasks.push_back(*task);
  }

  // Faults staggered across the campaign, each hitting a different task
  // and a different layer of the hierarchy.
  const SimTime t0 = exp.events().now();
  const auto ep0 = exp.orchestrator().endpoints_of_task(tasks[0])[17];
  const auto ep1 = exp.orchestrator().endpoints_of_task(tasks[1])[80];
  const auto ep2 = exp.orchestrator().endpoints_of_task(tasks[2])[200];
  exp.faults().inject(
      sim::IssueType::kRnicPortDown,
      {sim::ComponentKind::kRnic, ep0.rnic.value()},
      t0 + SimTime::minutes(2), t0 + SimTime::minutes(7));
  exp.faults().inject(
      sim::IssueType::kSwitchPortFlapping,
      {sim::ComponentKind::kPhysicalSwitch,
       exp.topology()
           .tor_at(exp.topology().segment_of(exp.topology().host_of(ep1.rnic)),
                   exp.topology().rail_of(ep1.rnic))
           .value()},
      t0 + SimTime::minutes(5), t0 + SimTime::minutes(10));
  exp.faults().inject(
      sim::IssueType::kCrcError,
      {sim::ComponentKind::kPhysicalLink,
       exp.topology().uplink_of(ep2.rnic).value()},
      t0 + SimTime::minutes(8), t0 + SimTime::minutes(13));

  DrillOutcome out;
  if (rebalance) {
    // Mid-campaign shard rebalance: move the first third of the global
    // pair-id space to the last shard while cases are in flight. Verdicts
    // must not notice.
    exp.events().schedule_at(t0 + SimTime::minutes(9), [&exp, &out, shards] {
      const auto range =
          static_cast<std::uint32_t>(exp.hunter().detector().pair_count() / 3);
      out.rebalanced = exp.hunter().rebalance_pairs(0, range, shards - 1);
    });
  }

  exp.hunter().start(t0 + SimTime::minutes(16));
  exp.events().run_all();
  exp.hunter().finalize();

  out.verdicts = serialize_verdicts(exp.hunter());
  out.pairs = exp.hunter().detector().pair_count();
  out.cases = exp.hunter().failure_cases().size();
  const auto score = score_campaign(exp.hunter().failure_cases(),
                                    exp.faults(), exp.topology());
  out.detected = score.detected_true;
  out.counters = exp.hunter().detector_counters();
  return out;
}

int run_shard_gate() {
  std::puts("Shard identity drill: 4096 hosts, ~97k pairs, 3 faults\n");
  const DrillOutcome base = run_drill(1, false);
  std::printf("  shards=1           : %zu pairs, %zu case(s), %zu detected, "
              "%llu probes ingested\n",
              base.pairs, base.cases, base.detected,
              static_cast<unsigned long long>(base.counters.probes_ingested));
  bool pass = base.pairs > 90000 && base.cases > 0 && base.detected > 0;
  if (!pass) {
    std::puts("  FAILED: baseline campaign is not a real workload");
    return 1;
  }
  for (const std::size_t shards : {4UL, 16UL}) {
    const DrillOutcome d = run_drill(shards, false);
    const bool same = d.verdicts == base.verdicts &&
                      d.counters == base.counters && d.pairs == base.pairs;
    std::printf("  shards=%-2zu          : verdict stream %s (%zu bytes)\n",
                shards, same ? "identical" : "DIVERGED",
                d.verdicts.size());
    pass = pass && same;
  }
  const DrillOutcome moved = run_drill(4, true);
  const bool same = moved.verdicts == base.verdicts &&
                    moved.counters == base.counters;
  std::printf("  shards=4 +rebalance: verdict stream %s (%zu pairs migrated "
              "mid-campaign)\n",
              same ? "identical" : "DIVERGED", moved.rebalanced);
  pass = pass && same && moved.rebalanced > 0;
  std::printf("\nshard identity gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  return run_shard_gate();
}
