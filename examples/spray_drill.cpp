// Spray drill: the path-blindness gate behind ctest's
// `spray.localization_gate`.
//
// Scenario: a gray ECMP member — one ToR-spine link dropping a quarter of
// its packets — chosen (programmatically) so that NO monitored pair's
// static five-tuple hash ever selects it. The drill then runs the same
// fault twice:
//
//   kStaticEcmp  : every probe rides its pair's single hashed member, the
//                  gray link carries no probe at all, and the campaign must
//                  end with ZERO failure cases — the member is provably
//                  invisible to path-blind probing.
//   kSpray       : successive probes of each flow fan over all equal-cost
//                  members; the per-path sub-series catch the loss on the
//                  gray member, and the path-scoped tomography vote must
//                  localize exactly the injected link.
//
// An adaptive-routing run is reported for reference (flows re-hash away
// from the degraded member, trading detection for goodput — the classic
// adaptive-routing blind spot).
#include <cstdio>
#include <vector>

#include "core/harness.h"
#include "sim/fault.h"

using namespace skh;
using namespace skh::core;

namespace {

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const char* name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

topo::TopologyConfig drill_topology() {
  topo::TopologyConfig t;
  t.num_hosts = 4;
  t.rails_per_host = 2;
  t.hosts_per_segment = 1;  // every host its own ToR: all pairs cross spines
  t.spines_per_rail = 8;    // 8-way in-rail ECMP, the spray fan-out
  t.num_cores = 2;
  return t;
}

/// The rail-pruned pair list the hunter monitors for this task (basic list,
/// no skeleton applied), rebuilt here so member selection is a pure
/// function of the topology and placement — identical across the runs.
std::vector<EndpointPair> monitored_pairs(Experiment& exp, TaskId task) {
  const auto endpoints = exp.orchestrator().endpoints_of_task(task);
  std::vector<EndpointPair> pairs;
  for (const Endpoint& s : endpoints) {
    for (const Endpoint& d : endpoints) {
      if (s.container == d.container) continue;
      if (exp.rank_of(s) != exp.rank_of(d)) continue;
      pairs.push_back(EndpointPair{s, d});
    }
  }
  return pairs;
}

/// Pick a gray member no monitored pair's static hash selects: the faulted
/// link must carry zero probes under kStaticEcmp. Returns false when every
/// member of every pair is statically covered (cannot happen at 8-way ECMP
/// with this few pairs, but the drill refuses to lie about it).
bool choose_gray_member(const topo::Topology& topo,
                        const std::vector<EndpointPair>& pairs,
                        sim::GrayMemberPlan& plan) {
  for (const auto& ref : pairs) {
    const std::uint32_t n = topo.num_paths(ref.src.rnic, ref.dst.rnic);
    if (n <= 1) continue;
    for (std::uint32_t m = 0; m < n; ++m) {
      const auto candidate =
          sim::make_gray_member_link(topo, ref.src.rnic, ref.dst.rnic, m);
      const LinkId gray{candidate.target.index};
      bool covered = false;
      for (const auto& p : pairs) {
        const auto path = topo.route(p.src.rnic, p.dst.rnic);
        for (LinkId l : path.links) {
          if (l == gray) {
            covered = true;
            break;
          }
        }
        if (covered) break;
      }
      if (!covered) {
        plan = candidate;
        return true;
      }
    }
  }
  return false;
}

struct DrillRun {
  bool launched = false;
  std::size_t cases = 0;
  bool gray_link_localized = false;
  std::size_t culprits = 0;
  std::uint64_t paths_used = 0;
  std::uint64_t path_votes = 0;
};

DrillRun run_mode(topo::RoutingMode mode) {
  ExperimentConfig cfg;
  cfg.topology = drill_topology();
  cfg.seed = 9100;
  cfg.obs.metrics = true;
  cfg.hunter.engine.routing_mode = mode;
  cfg.hunter.engine.spray_ways = 8;
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 2;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) return {};
  exp.run_to_running(*task);

  DrillRun r;
  r.launched = true;
  const auto pairs = monitored_pairs(exp, *task);
  sim::GrayMemberPlan plan;
  if (!choose_gray_member(exp.topology(), pairs, plan)) return {};
  exp.faults().inject(sim::IssueType::kCrcError, plan.target,
                      exp.events().now() + SimTime::minutes(3),
                      exp.events().now() + SimTime::minutes(11), plan.effect);

  exp.hunter().start(exp.events().now() + SimTime::minutes(20));
  exp.events().run_all();
  exp.hunter().finalize();

  r.cases = exp.hunter().failure_cases().size();
  for (const auto& c : exp.hunter().failure_cases()) {
    r.culprits += c.localization.culprits.size();
    for (const auto& culprit : c.localization.culprits) {
      if (culprit == plan.target &&
          c.localization.method == LocalizationMethod::kPhysicalIntersection) {
        r.gray_link_localized = true;
      }
    }
  }
  const auto snap = exp.obs().registry.scrape();
  r.paths_used = counter_value(snap, "probe.paths_used");
  r.path_votes = counter_value(snap, "localize.path_votes");
  return r;
}

}  // namespace

int main() {
  std::puts("Spray drill: gray ECMP member invisible to static hashing\n");
  const DrillRun fixed = run_mode(topo::RoutingMode::kStaticEcmp);
  const DrillRun spray = run_mode(topo::RoutingMode::kSpray);
  const DrillRun adaptive = run_mode(topo::RoutingMode::kAdaptive);
  if (!fixed.launched || !spray.launched || !adaptive.launched) {
    std::puts("  FAILED: drill setup (task launch or member selection)");
    return 1;
  }
  std::printf("  static-ecmp : %zu case(s), %llu flow-member(s) probed\n",
              fixed.cases,
              static_cast<unsigned long long>(fixed.paths_used));
  std::printf("  spray       : %zu case(s), gray link localized %s, "
              "%llu flow-member(s), %llu path vote(s)\n",
              spray.cases, spray.gray_link_localized ? "yes" : "NO",
              static_cast<unsigned long long>(spray.paths_used),
              static_cast<unsigned long long>(spray.path_votes));
  std::printf("  adaptive    : %zu case(s) (flows re-hash away: detection "
              "traded for goodput)\n",
              adaptive.cases);
  // Both sides of the path-blindness claim are pinned: static ECMP must
  // MISS the gray member entirely (zero probes reach it, zero cases), and
  // spray must both see it and name exactly the injected link through the
  // path-scoped vote.
  const bool pass = fixed.cases == 0 && spray.cases >= 1 &&
                    spray.gray_link_localized && spray.path_votes > 0 &&
                    spray.paths_used >= 2 * fixed.paths_used &&
                    fixed.paths_used > 0;
  std::printf("\nspray gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
