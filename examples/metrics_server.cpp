// Live exposition endpoint: run a small Monte-Carlo campaign fleet, merge
// the per-seed registries into the fleet snapshot, and serve it as
// Prometheus text exposition over HTTP.
//
//   metrics_server                 # serve http://127.0.0.1:9108/metrics
//   metrics_server --port 0        # ephemeral port (printed at startup)
//   metrics_server --once          # print the exposition to stdout and exit
//   metrics_server --serve-n 3     # answer 3 scrapes, then exit (tests/CI)
//
// The exposition is deterministic: same config + seeds produce the same
// bytes at any runner thread count (see obs/exposition.h for the format
// contract), so `curl ... | sha256sum` is a valid fleet-state fingerprint.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/exposition.h"
#include "obs/pull_server.h"
#include "runner/campaign_runner.h"

using namespace skh;

int main(int argc, char** argv) {
  bool once = false;
  long serve_n = -1;  // -1 = forever
  std::uint16_t port = 9108;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--serve-n") == 0 && i + 1 < argc) {
      serve_n = std::atol(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--once] [--port P] [--serve-n N]\n", argv[0]);
      return 2;
    }
  }

  runner::CampaignConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.tasks = {{8, 8, 4, 2}};
  cfg.visible_faults = 4;
  cfg.invisible_faults = 0;
  cfg.phantom_agents = 0;
  cfg.obs.metrics = true;

  std::fprintf(stderr, "running 4-seed campaign fleet...\n");
  const auto set = runner::run_many(cfg, /*master_seed=*/42, /*n_runs=*/4);
  const std::string body = obs::prometheus_text(set.fleet);

  if (once) {
    std::fputs(body.c_str(), stdout);
    return 0;
  }

  obs::PullServer server(port);
  server.set_body_provider([&body] { return body; });
  std::fprintf(stderr,
               "serving fleet metrics on http://127.0.0.1:%u/metrics\n",
               static_cast<unsigned>(server.port()));
  if (serve_n >= 0) {
    server.serve(static_cast<std::size_t>(serve_n));
  } else {
    while (server.serve_once()) {
    }
  }
  return 0;
}
