// Collective drill: exercise the second signal plane end to end.
//
// Scenario A (--silent-hang-gate): an NCCL-level hang on one container of
// a healthy network. The probe mesh is structurally blind to it — the
// drill requires ZERO probe-plane cases and exactly ONE network-silent
// case, localized to the hung container through its wait-for chain, with
// a parseable forensic bundle carrying the collective evidence; the
// verdict must be identical at 1 and 4 analyzer shards.
//
// Scenario B (--corroboration-gate): a real RNIC fault with the plane on
// and healthy hosts. The collective verdicts it triggers must land on the
// probe-plane case as cross-plane agreements (confidence > 1.0) and leave
// no separate network-silent ticket behind.
//
// Scenario C (--determinism-gate): a campaign with host-side fault storms
// replayed at 1, 4, and 16 runner threads must produce bit-identical
// scores, silent-case counts, and step-trace fingerprints.
#include <cstdio>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/metrics.h"
#include "drill_gates.h"
#include "obs/json_lint.h"
#include "runner/campaign_runner.h"

using namespace skh;
using namespace skh::core;

namespace {

struct SilentHangOutcome {
  std::size_t probe_cases = 0;
  std::size_t silent_cases = 0;
  std::uint64_t verdicts = 0;
  bool method_chain = false;
  bool localized_to_victim = false;
  bool waiters_nonempty = false;
  bool bundle_ok = false;
  std::vector<sim::ComponentRef> culprits;
};

SilentHangOutcome run_silent_hang_scenario(std::size_t shards) {
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.hunter.analyzer_shards = shards;
  cfg.seed = 6500;
  cfg.obs.metrics = true;
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) return {};
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  const auto layout = exp.layout_of(*task, par);
  (void)exp.apply_skeleton(*task, layout);

  // The hang: container 2 stalls mid-collective for five minutes. No
  // network component is touched — every probe keeps answering normally.
  const std::uint32_t victim_index = 2;
  sim::CollectiveFaultPlan plan;
  plan.faults = {sim::make_collective_hang(
      victim_index, exp.events().now() + SimTime::minutes(3),
      SimTime::minutes(5))};
  exp.enable_collective_plane(*task, layout, plan,
                              exp.events().now() + SimTime::minutes(18));

  exp.hunter().start(exp.events().now() + SimTime::minutes(20));
  exp.events().run_all();
  exp.hunter().finalize();

  SilentHangOutcome o;
  o.verdicts = exp.hunter().collective_verdicts();
  const ContainerId victim =
      exp.orchestrator().task(*task).containers[victim_index];
  for (const auto& c : exp.hunter().failure_cases()) {
    if (c.cls == CaseClass::kProbePlane) {
      ++o.probe_cases;
      continue;
    }
    ++o.silent_cases;
    o.method_chain =
        c.localization.method == LocalizationMethod::kCollectiveChain;
    o.culprits = c.localization.culprits;
    for (const auto& ref : c.localization.culprits) {
      if (ref.kind == sim::ComponentKind::kContainer &&
          ref.index == victim.value()) {
        o.localized_to_victim = true;
      }
    }
    for (const auto& v : c.collective_evidence) {
      if (!v.waiters.empty()) o.waiters_nonempty = true;
    }
    const std::string* bundle = exp.obs().recorder.bundle_of(c.id);
    o.bundle_ok =
        bundle != nullptr && obs::json_valid(*bundle) &&
        bundle->find("\"class\":\"network-silent\"") != std::string::npos &&
        bundle->find("\"collective\":") != std::string::npos &&
        bundle->find("\"kind\":\"hang\"") != std::string::npos;
  }
  return o;
}

int run_silent_hang_gate() {
  std::puts("Silent-hang drill: NCCL hang on a healthy network\n");
  const SilentHangOutcome a = run_silent_hang_scenario(1);
  const SilentHangOutcome b = run_silent_hang_scenario(4);
  std::printf("  collective verdicts: %llu\n",
              static_cast<unsigned long long>(a.verdicts));
  std::printf("  probe-plane cases  : %zu (want 0)\n", a.probe_cases);
  std::printf("  network-silent     : %zu (want 1)\n", a.silent_cases);
  std::printf("  method             : %s\n",
              a.method_chain ? "collective-chain" : "WRONG");
  std::printf("  victim localized   : %s, waiters %s, bundle %s\n",
              a.localized_to_victim ? "yes" : "NO",
              a.waiters_nonempty ? "recorded" : "EMPTY",
              a.bundle_ok ? "ok" : "BAD");
  const bool shard_identical =
      a.probe_cases == b.probe_cases && a.silent_cases == b.silent_cases &&
      a.verdicts == b.verdicts && a.culprits == b.culprits;
  std::printf("  shards 1 vs 4      : %s\n",
              shard_identical ? "identical" : "DIVERGED");
  const bool pass = a.probe_cases == 0 && a.silent_cases == 1 &&
                    a.verdicts > 0 && a.method_chain &&
                    a.localized_to_victim && a.waiters_nonempty &&
                    a.bundle_ok && shard_identical;
  std::printf("\nsilent-hang gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int run_corroboration_gate() {
  std::puts("Corroboration drill: real RNIC fault with the plane on\n");
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.seed = 6600;
  cfg.obs.metrics = true;
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) {
    std::puts("  FAILED: cluster rejected the task");
    return 1;
  }
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  const auto layout = exp.layout_of(*task, par);
  (void)exp.apply_skeleton(*task, layout);

  // A real network fault: the victim RNIC goes dark. Both planes see it —
  // the probe mesh directly, the collectives through the dead rank's ring.
  const auto victim = exp.orchestrator().endpoints_of_task(*task)[9];
  exp.faults().inject(sim::IssueType::kRnicPortDown,
                      {sim::ComponentKind::kRnic, victim.rnic.value()},
                      SimTime::minutes(3), SimTime::minutes(11));
  const sim::CollectiveFaultPlan healthy_hosts;  // empty: hosts are fine
  exp.enable_collective_plane(*task, layout, healthy_hosts,
                              exp.events().now() + SimTime::minutes(18));

  exp.hunter().start(exp.events().now() + SimTime::minutes(20));
  exp.events().run_all();
  exp.hunter().finalize();

  const auto score = score_campaign(exp.hunter().failure_cases(),
                                    exp.faults(), exp.topology());
  std::size_t silent = 0;
  std::uint32_t agreements = 0;
  double confidence = 0.0;
  for (const auto& c : exp.hunter().failure_cases()) {
    if (c.cls == CaseClass::kTenantVisibleNetworkSilent) {
      ++silent;
      continue;
    }
    if (c.collective_agreements > agreements) {
      agreements = c.collective_agreements;
      confidence = c.localization.confidence;
    }
  }
  std::printf("  fault detected     : %s\n",
              score.detected_true > 0 ? "yes" : "NO");
  std::printf("  silent tickets     : %zu (want 0: probe plane owns it)\n",
              silent);
  std::printf("  agreements         : %u (want >= 1)\n", agreements);
  std::printf("  confidence         : %.2f (want > 1.0)\n", confidence);
  const bool pass = score.detected_true > 0 && silent == 0 &&
                    agreements >= 1 && confidence > 1.0;
  std::printf("\ncorroboration gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int run_determinism_gate() {
  std::puts("Determinism drill: host-fault campaign at 1/4/16 threads\n");
  runner::CampaignConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.tasks = {{4, 8, 2, 2}, {4, 8, 2, 2}};
  cfg.task_lifetime = SimTime::hours(4);
  cfg.visible_faults = 2;
  cfg.invisible_faults = 0;
  cfg.phantom_agents = 0;
  cfg.collective_plane = true;
  cfg.collective_faults = 3;
  const std::vector<std::uint64_t> seeds = {101, 202};

  const auto t1 = runner::run_many(cfg, seeds, 1);
  const auto t4 = runner::run_many(cfg, seeds, 4);
  const auto t16 = runner::run_many(cfg, seeds, 16);

  bool identical = true;
  std::uint64_t steps = 0;
  std::size_t silent = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto& a = t1.runs[i];
    const auto& b = t4.runs[i];
    const auto& c = t16.runs[i];
    steps += a.collective_steps;
    silent += a.cases_network_silent;
    const bool same =
        a.score == b.score && a.score == c.score &&
        a.collective_fingerprint == b.collective_fingerprint &&
        a.collective_fingerprint == c.collective_fingerprint &&
        a.collective_steps == b.collective_steps &&
        a.collective_steps == c.collective_steps &&
        a.cases_network_silent == b.cases_network_silent &&
        a.cases_network_silent == c.cases_network_silent &&
        a.collective_events == b.collective_events &&
        a.collective_events == c.collective_events;
    std::printf("  seed %llu: fingerprint %016llx, %llu steps, %zu silent "
                "case(s) -> %s\n",
                static_cast<unsigned long long>(seeds[i]),
                static_cast<unsigned long long>(a.collective_fingerprint),
                static_cast<unsigned long long>(a.collective_steps),
                a.cases_network_silent, same ? "identical" : "DIVERGED");
    identical = identical && same;
  }
  const bool pass = identical && steps > 0;
  std::printf("\ndeterminism gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int run_full_drill() {
  const int hang_rc = run_silent_hang_gate();
  std::puts("");
  const int corr_rc = run_corroboration_gate();
  std::puts("");
  const int det_rc = run_determinism_gate();
  return (hang_rc == 0 && corr_rc == 0 && det_rc == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  static constexpr skh::examples::Gate kGates[] = {
      {"--silent-hang-gate", run_silent_hang_gate},
      {"--corroboration-gate", run_corroboration_gate},
      {"--determinism-gate", run_determinism_gate},
  };
  return skh::examples::dispatch_gates(argc, argv, kGates, run_full_drill);
}
