// Shared gate registration for the drill examples.
//
// Every drill that doubles as a ctest gate grew the same ad-hoc argv
// scan: `--churn-gate` runs only the restart-storm drill, and so on. This
// header is that pattern, once: a drill declares its gates as a static
// table of (flag, runner) and hands main() to dispatch_gates. An
// unrecognized (or absent) argument falls through to the full drill, so
// `./drill` with no flags keeps its historical behavior.
#pragma once

#include <cstring>
#include <span>

namespace skh::examples {

/// One CLI-selectable gate: the ctest entry's flag and the drill it runs.
struct Gate {
  const char* flag;  ///< e.g. "--churn-gate"
  int (*run)();      ///< returns the process exit code
};

/// Run the gate matching argv[1], or `full_drill` when no gate matches.
inline int dispatch_gates(int argc, char** argv, std::span<const Gate> gates,
                          int (*full_drill)()) {
  if (argc > 1) {
    for (const auto& g : gates) {
      if (std::strcmp(argv[1], g.flag) == 0) return g.run();
    }
  }
  return full_drill();
}

}  // namespace skh::examples
