// Quickstart: monitor one training task, break one RNIC, watch
// SkeletonHunter detect and localize it.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API: build a simulated deployment
// (Experiment), launch a containerized training task, let the traffic-
// skeleton inference shrink the probing matrix, inject an RNIC port-down
// fault, and read the resulting failure case.
#include <cstdio>

#include "core/harness.h"
#include "core/metrics.h"

using namespace skh;
using namespace skh::core;

int main() {
  // 1. A 16-host rail-optimized cluster with SkeletonHunter deployed.
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4, 8};
  Experiment exp(cfg);

  // 2. A tenant submits a 32-GPU training task (4 containers x 8 GPUs).
  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) {
    std::puts("placement failed");
    return 1;
  }
  std::printf("task %u submitted; basic (rail-pruned) ping list active\n",
              task->value());

  // 3. Containers come up in phases; registration gates probing.
  exp.run_to_running(*task);
  std::printf("all containers Running at t=%.0fs; targets per task: %zu\n",
              exp.events().now().to_seconds(),
              exp.hunter().current_targets(*task));

  // 4. Runtime phase: infer the traffic skeleton from RNIC burst cycles.
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  const auto layout = exp.layout_of(*task, par);
  const auto inferred = exp.apply_skeleton(*task, layout);
  if (inferred) {
    std::printf("skeleton inferred: DP=%u PP=%u, %u position groups, "
                "%zu pairs; targets now: %zu\n",
                inferred->dp, inferred->pp, inferred->num_groups,
                inferred->pairs.size(), exp.hunter().current_targets(*task));
  }

  // 5. Break an RNIC ten minutes in; repair it ten minutes later.
  const auto victim = exp.orchestrator().endpoints_of_task(*task)[0];
  const SimTime onset = exp.events().now() + SimTime::minutes(10);
  exp.faults().inject(sim::IssueType::kRnicPortDown,
                      {sim::ComponentKind::kRnic, victim.rnic.value()},
                      onset, onset + SimTime::minutes(10));
  std::printf("injected: RNIC port down on rnic#%u at t=%.0fs\n",
              victim.rnic.value(), onset.to_seconds());

  // 6. Run the campaign and read the verdicts.
  exp.hunter().start(exp.events().now() + SimTime::minutes(35));
  exp.events().run_all();
  exp.hunter().finalize();

  for (const auto& c : exp.hunter().failure_cases()) {
    std::printf("\nfailure case %u: %zu anomalous pairs, first event "
                "t=%.0fs, method=%s\n",
                c.id, c.pairs.size(), c.first_event.to_seconds(),
                std::string(to_string(c.localization.method)).c_str());
    for (const auto& culprit : c.localization.culprits) {
      std::printf("  culprit: %s\n", sim::to_string(culprit).c_str());
    }
  }
  const auto score = score_campaign(exp.hunter().failure_cases(),
                                    exp.faults(), exp.topology());
  std::printf("\nscore: precision %.0f%%, recall %.0f%%, localization "
              "%.0f%%, detection latency %.1fs\n",
              100 * score.precision(), 100 * score.recall(),
              100 * score.localization_accuracy(),
              score.mean_detection_latency_s);
  return score.detected_true == 1 ? 0 : 1;
}
