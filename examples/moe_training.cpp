// MoE scenario: a Mixture-of-Experts task adds expert-parallel all-to-all
// traffic (Figure 9b). This example shows that skeleton inference still
// recovers the grouping (§5.1: "new parallelism strategies ... can be
// classified using the same method") and compares the dense vs MoE probing
// matrices.
#include <cstdio>

#include "core/harness.h"
#include "core/skeleton_inference.h"
#include "workload/traffic.h"

using namespace skh;
using namespace skh::core;

namespace {

void run_variant(const char* name, bool moe) {
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4, 8};
  cfg.seed = moe ? 91 : 90;
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 16;  // 128 GPUs
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  if (!task) return;
  exp.run_to_running(*task);

  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 8;
  par.moe = moe;
  par.ep = moe ? 4 : 1;
  const auto layout = exp.layout_of(*task, par);
  const auto tm = workload::build_traffic_matrix(layout);

  const auto before = exp.hunter().current_targets(*task);
  const auto inferred = exp.apply_skeleton(*task, layout);
  const auto after = exp.hunter().current_targets(*task);

  std::printf("%-6s %s: traffic edges=%zu density=%.2f%%", name,
              par.to_string().c_str(), tm.num_edges(),
              100.0 * tm.density(layout.roles.size()));
  if (inferred) {
    std::vector<EndpointPair> truth;
    for (const auto& e : tm.edges()) truth.push_back(EndpointPair{e.a, e.b});
    const auto q = evaluate_skeleton(inferred->pairs, truth);
    std::printf("  inferred DP=%u PP=%u coverage=%.0f%% excess=%.0f%%",
                inferred->dp, inferred->pp, 100 * q.coverage,
                100 * q.excess);
  } else {
    std::printf("  (inference infeasible; basic list retained)");
  }
  std::printf("  targets %zu -> %zu\n", before, after);
}

}  // namespace

int main() {
  std::puts("Dense vs MoE traffic skeletons (Figure 9a vs 9b):\n");
  run_variant("dense", false);
  run_variant("MoE", true);
  std::puts("\nMoE adds expert-parallel all-to-all edges; the skeleton grows"
            " but remains a small fraction of the full mesh.");
  return 0;
}
