// Figure 18 case study: RNIC/OVS flow-table inconsistency.
//
// Timeline in the paper: stable ~16 us RTT; at t=90 s latency jumps to
// ~120 us with <0.1% loss; statistical testing flags the shift; overlay and
// underlay checks find nothing; the RNIC flow-table dump reveals the
// inconsistency; the RNIC is isolated and recovers within ~60 s.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/harness.h"
#include "core/metrics.h"

using namespace skh;
using namespace skh::core;

int main() {
  print_banner("Figure 18 case study: flow-table inconsistency");
  ExperimentConfig cfg;
  cfg.topology = [] {
    topo::TopologyConfig t;
    t.num_hosts = 16;
    t.rails_per_host = 8;
    // Two hosts per segment: the observed pair crosses segments, whose
    // 4-hop path yields the paper's ~16us healthy RTT.
    t.hosts_per_segment = 2;
    return t;
  }();
  cfg.hunter.inference.candidate_dp = {2, 4, 8};
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(12);
  const auto task = exp.launch_task(req);
  if (!task) return 1;
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

  const auto victim = exp.orchestrator().endpoints_of_task(*task)[0];
  // Ten minutes of healthy history (the short-term detector's look-back),
  // then the paper's timeline: inconsistency at +90 s.
  const SimTime warmup_end = exp.events().now() + SimTime::minutes(10);
  const SimTime onset = warmup_end + SimTime::seconds(90);
  const SimTime isolate_check = onset + SimTime::minutes(6);
  exp.events().schedule_at(onset, [&] {
    exp.overlay().invalidate_offload(victim.rnic);
  });
  exp.faults().inject(sim::IssueType::kRepetitiveFlowOffloading,
                      {sim::ComponentKind::kRnic, victim.rnic.value()}, onset,
                      isolate_check, sim::FaultEffect{});
  // Operator reaction: once SkeletonHunter dumps the tables and finds the
  // inconsistency, the RNIC is isolated and resynchronized ("recovers in
  // 60 seconds").
  exp.events().schedule_at(isolate_check, [&] {
    exp.overlay().resync_offload(victim.rnic);
  });

  exp.hunter().start(exp.events().now() + SimTime::minutes(25));
  exp.events().run_all();
  exp.hunter().finalize();

  // Reconstruct the latency timeline of the victim's first skeleton pair.
  const auto pairs = exp.hunter().collector().pairs();
  EndpointPair shown{};
  for (const auto& p : pairs) {
    if (p.src != victim && p.dst != victim) continue;
    shown = p;
    // Prefer a cross-segment pair: its 4-hop path has the paper's ~16us
    // healthy RTT.
    if (exp.topology().segment_of(exp.topology().host_of(p.src.rnic)) !=
        exp.topology().segment_of(exp.topology().host_of(p.dst.rnic))) {
      break;
    }
  }
  const auto& results = exp.hunter().collector().results_for(shown);
  TablePrinter table({"window(s)", "mean RTT(us)", "loss"});
  // Timeline relative to 90 s before the onset, mirroring Figure 18's axis.
  const double t0 = onset.to_seconds() - 90.0;
  double win_start = t0;
  std::vector<double> rtts;
  int sent = 0, lost = 0;
  for (const auto& r : results) {
    if (r.sent_at.to_seconds() < t0) continue;
    if (r.sent_at.to_seconds() >= win_start + 60.0) {
      table.add_row({TablePrinter::num(win_start - t0, 0),
                     rtts.empty() ? "-" : TablePrinter::num(mean_of(rtts), 1),
                     TablePrinter::pct(sent ? static_cast<double>(lost) / sent
                                            : 0.0, 2)});
      win_start += 60.0;
      rtts.clear();
      sent = 0;
      lost = 0;
    }
    ++sent;
    if (r.delivered) rtts.push_back(r.rtt_us);
    else ++lost;
  }
  table.print();

  // Detection + localization outcome.
  std::printf("\nfailure cases: %zu\n", exp.hunter().failure_cases().size());
  for (const auto& c : exp.hunter().failure_cases()) {
    std::printf("  case %u: %zu pairs, method=%s, culprits:", c.id,
                c.pairs.size(), std::string(to_string(c.localization.method)).c_str());
    for (const auto& ref : c.localization.culprits) {
      std::printf(" %s", sim::to_string(ref).c_str());
    }
    std::printf("\n");
  }
  std::printf("\npaper: 16us -> 120us with <0.1%% loss at t=90s; localized"
              " via RNIC flow-table dump; recovery ~60s after isolation\n");
  return 0;
}
