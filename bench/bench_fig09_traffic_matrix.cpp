// Figure 9: RNIC traffic matrices of a 512-GPU task — (a) dense model
// (TP8/PP8/DP8), (b) MoE with expert parallelism. Both are highly sparse.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "workload/traffic.h"

using namespace skh;
using namespace skh::workload;

namespace {

TaskLayout layout_for(const ParallelismConfig& par) {
  cluster::TaskInfo task;
  task.id = TaskId{0};
  task.request.num_containers = par.num_containers();
  task.request.gpus_per_container = par.tp;
  std::vector<cluster::ContainerInfo> containers;
  for (std::uint32_t c = 0; c < par.num_containers(); ++c) {
    cluster::ContainerInfo ci;
    ci.id = ContainerId{c};
    ci.task = task.id;
    ci.host = HostId{c};
    ci.index_in_task = c;
    for (std::uint32_t g = 0; g < par.tp; ++g) {
      ci.rnics.push_back(RnicId{c * par.tp + g});
    }
    task.containers.push_back(ci.id);
    containers.push_back(ci);
  }
  return make_layout(task, containers, par);
}

void report(const char* name, const ParallelismConfig& par) {
  const auto layout = layout_for(par);
  const auto tm = build_traffic_matrix(layout);
  const std::size_t n = layout.roles.size();
  double total_degree = 0.0;
  std::size_t max_degree = 0;
  for (const auto& r : layout.roles) {
    const auto d = tm.peers_of(r.endpoint).size();
    total_degree += static_cast<double>(d);
    max_degree = std::max(max_degree, d);
  }
  std::printf("%s (%s): %zu endpoints, %zu edges, density %.3f%%, "
              "mean degree %.1f, max degree %zu\n",
              name, par.to_string().c_str(), n, tm.num_edges(),
              100.0 * tm.density(n), total_degree / static_cast<double>(n),
              max_degree);

  // Render the 64x64 container-level matrix for rail 0 (GPU granularity
  // would be 512x512; container granularity shows the same structure).
  std::printf("  rail-0 container-level matrix (#=traffic, .=none):\n");
  const std::uint32_t nc = par.num_containers();
  for (std::uint32_t i = 0; i < nc; ++i) {
    std::printf("  ");
    for (std::uint32_t j = 0; j < nc; ++j) {
      if (i == j) {
        std::putchar('\\');
        continue;
      }
      const Endpoint a{ContainerId{i}, RnicId{i * par.tp}};
      const Endpoint b{ContainerId{j}, RnicId{j * par.tp}};
      std::putchar(tm.communicates(a, b) ? '#' : '.');
    }
    std::putchar('\n');
  }
  std::putchar('\n');
}

}  // namespace

int main() {
  print_banner("Figure 9: RNIC traffic patterns of a 512-GPU task");
  ParallelismConfig dense;  // TP8/PP8/DP8
  report("Fig 9a dense", dense);

  ParallelismConfig moe;
  moe.tp = 8;
  moe.pp = 4;
  moe.dp = 16;
  moe.moe = true;
  moe.ep = 4;
  report("Fig 9b MoE", moe);

  std::printf("paper: both matrices are sparse; a GPU in the dense task"
              " reaches ~9 of 511 possible destinations\n");
  return 0;
}
