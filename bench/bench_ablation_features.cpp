// Ablation: STFT vs plain DFT vs Haar-wavelet features for traffic-
// skeleton inference (§5.1 says STFT won on capturing time-varying
// structure at the lowest runtime cost).
//
// We score each extractor on (a) position-grouping quality — the ratio of
// cross-position to same-position feature distance (higher = easier to
// cluster) — and (b) extraction time per 900-sample series.
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/table.h"
#include "dsp/fft.h"
#include "dsp/stft.h"
#include "dsp/wavelet.h"
#include "workload/traffic.h"

using namespace skh;
using namespace skh::workload;

namespace {

using Extractor = std::function<std::vector<double>(
    const std::vector<double>&)>;

std::vector<double> dft_feature(const std::vector<double>& signal) {
  // Plain one-shot DFT magnitude over the whole (demeaned) series.
  std::vector<double> demeaned = signal;
  double mean = 0.0;
  for (double v : demeaned) mean += v;
  mean /= static_cast<double>(demeaned.size());
  for (double& v : demeaned) v -= mean;
  const auto spectrum = dsp::fft_real(demeaned);
  auto mags = dsp::magnitude_spectrum(spectrum);
  // Match the STFT feature's bin count by coarse-graining.
  std::vector<double> feat(33, 0.0);
  for (std::size_t k = 0; k < mags.size(); ++k) {
    feat[k * feat.size() / mags.size()] += mags[k];
  }
  feat[0] = 0.0;
  double norm = 0.0;
  for (double v : feat) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (double& v : feat) v /= norm;
  }
  return feat;
}

}  // namespace

int main() {
  print_banner("Ablation: feature extractor for skeleton inference");
  ParallelismConfig par;
  par.tp = 4;
  par.pp = 4;
  par.dp = 4;
  BurstConfig bcfg;
  RngStream rng{99};

  // Series for two replicas of every (stage, rail) position.
  struct Sample {
    std::uint32_t stage, rail;
    std::vector<double> series;
  };
  std::vector<Sample> samples;
  for (std::uint32_t stage = 0; stage < par.pp; ++stage) {
    for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
      for (std::uint32_t rep = 0; rep < 2; ++rep) {
        EndpointRole role;
        role.dp_rank = rep;
        role.stage = stage;
        role.rail = rail;
        RngStream sub = rng.fork(stage * 100 + rail * 10 + rep);
        samples.push_back({stage, rail, burst_series(role, par, bcfg, sub)});
      }
    }
  }

  const std::vector<std::pair<const char*, Extractor>> extractors{
      {"STFT (paper's choice)",
       [](const std::vector<double>& s) { return dsp::stft_feature(s); }},
      {"plain DFT", dft_feature},
      {"Haar wavelet",
       [](const std::vector<double>& s) { return dsp::haar_feature(s); }},
  };

  TablePrinter table({"extractor", "same-pos dist", "cross-pos dist",
                      "separation ratio", "time/series(us)"});
  for (const auto& [name, extract] : extractors) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<double>> feats;
    for (const auto& s : samples) feats.push_back(extract(s.series));
    const auto t1 = std::chrono::steady_clock::now();

    double same = 0.0, cross = 0.0;
    std::size_t n_same = 0, n_cross = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      for (std::size_t j = i + 1; j < samples.size(); ++j) {
        const double d = dsp::euclidean_distance(feats[i], feats[j]);
        if (samples[i].stage == samples[j].stage &&
            samples[i].rail == samples[j].rail) {
          same += d;
          ++n_same;
        } else {
          cross += d;
          ++n_cross;
        }
      }
    }
    same /= static_cast<double>(n_same);
    cross /= static_cast<double>(n_cross);
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(samples.size());
    table.add_row({name, TablePrinter::num(same, 4),
                   TablePrinter::num(cross, 4),
                   TablePrinter::num(cross / same, 1),
                   TablePrinter::num(us, 1)});
  }
  table.print();
  std::printf("\nhigher separation ratio = cleaner clustering; the paper"
              " picked STFT for time-varying capture at low cost\n");
  return 0;
}
