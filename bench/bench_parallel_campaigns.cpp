// Seed-parallel Monte-Carlo campaigns: wall-clock scaling of
// runner::run_many against the sequential loop, with the determinism
// guarantee checked on every row (per-seed CampaignScores must be
// bit-identical at every thread count).
//
// The paper validates SkeletonHunter against a six-month production fleet;
// the simulation equivalent is many independent seeded campaigns, which are
// embarrassingly parallel — each owns its cluster, event queue, and fault
// injector. Speedup tops out at the host's core count: on a single-core
// container the table shows ~1x everywhere (and the determinism check
// still bites); on an 8-core host the 8-thread row lands near the core
// count for this CPU-bound fan-out.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "runner/campaign_runner.h"

using namespace skh;
using namespace skh::runner;

namespace {

double wall_seconds(const CampaignConfig& cfg,
                    const std::vector<std::uint64_t>& seeds,
                    std::size_t threads, CampaignSet& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = run_many(cfg, seeds, threads);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool identical(const CampaignSet& a, const CampaignSet& b) {
  if (a.runs.size() != b.runs.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    if (!(a.runs[i].score == b.runs[i].score)) return false;
    if (a.runs[i].faults.size() != b.runs[i].faults.size()) return false;
    for (std::size_t j = 0; j < a.runs[i].faults.size(); ++j) {
      const auto& fa = a.runs[i].faults[j];
      const auto& fb = b.runs[i].faults[j];
      if (fa.type != fb.type || !(fa.target == fb.target) ||
          fa.start != fb.start || fa.end != fb.end) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  print_banner("Seed-parallel campaign fan-out (runner::run_many)");

  CampaignConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 4;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.probe_interval = SimTime::seconds(5);
  cfg.hunter.inference.candidate_dp = {2};
  cfg.tasks = {{4, 4, 2, 2}, {4, 4, 4, 1}};
  cfg.visible_faults = 6;
  cfg.invisible_faults = 0;
  cfg.phantom_agents = 0;
  cfg.fault_gap = SimTime::minutes(8);
  cfg.fault_duration = SimTime::minutes(4);
  cfg.drain = SimTime::minutes(10);

  const auto seeds = split_seeds(0x5eed, 16);
  std::printf("16-seed campaign, %u hosts x %u rails, 2 tasks/run, "
              "%zu visible faults/run (hardware threads: %u)\n\n",
              cfg.topology.num_hosts, cfg.topology.rails_per_host,
              cfg.visible_faults, std::thread::hardware_concurrency());

  CampaignSet reference;
  const double t_seq = wall_seconds(cfg, seeds, 1, reference);

  TablePrinter table({"threads", "wall s", "speedup", "bit-identical"});
  table.add_row({"1 (reference)", TablePrinter::num(t_seq, 2), "1.00x",
                 "yes"});
  for (std::size_t threads : {2u, 4u, 8u}) {
    CampaignSet set;
    const double t = wall_seconds(cfg, seeds, threads, set);
    const bool same = identical(reference, set);
    table.add_row({std::to_string(threads), TablePrinter::num(t, 2),
                   TablePrinter::num(t_seq / t, 2) + "x",
                   same ? "yes" : "NO (BUG)"});
    if (!same) {
      std::printf("FATAL: thread count changed campaign results\n");
      return 1;
    }
  }
  table.print();

  const auto& s = reference.summary;
  std::printf("\nacross %zu seeds: precision %.1f%% +/- %.1f, recall %.1f%%"
              " +/- %.1f, localization %.1f%% +/- %.1f (95%% CI)\n",
              s.runs, 100 * s.precision.mean,
              100 * s.precision.ci95_halfwidth(), 100 * s.recall.mean,
              100 * s.recall.ci95_halfwidth(),
              100 * s.localization_accuracy.mean,
              100 * s.localization_accuracy.ci95_halfwidth());
  std::printf("pooled: %zu cases, %zu false positives, %zu/%zu faults"
              " detected\n",
              s.total_cases, s.total_cases_false, s.total_detected,
              s.total_injected_visible + s.total_injected_invisible);
  return 0;
}
