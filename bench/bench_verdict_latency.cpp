// Ingest-to-verdict latency bench: run a multi-fault Monte-Carlo fleet
// with the full observability plane attached and report the sim-time
// latency of every pipeline stage (telemetry channel delay, window
// residence, detection lag, first-event-to-verdict, and the end-to-end
// ingest-to-verdict span), plus the wall-clock cost of the flight recorder
// itself (recorder on vs recorder off, same campaigns).
//
// Output is greppable: the line `P99_VERDICT_S=<x>` carries the headline
// p99 end-to-end latency (README row; consumed by scripts/bench_to_json.sh
// for BENCH_obs.json). Fails if no case reached a verdict — a latency
// plane with zero observations gates nothing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "runner/campaign_runner.h"

using namespace skh;
using namespace skh::runner;

namespace {

CampaignConfig base_config() {
  CampaignConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 4;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.probe_interval = SimTime::seconds(5);
  cfg.hunter.inference.candidate_dp = {2};
  cfg.tasks = {{4, 4, 2, 2}, {4, 4, 4, 1}};
  cfg.visible_faults = 6;
  cfg.invisible_faults = 0;
  cfg.phantom_agents = 0;
  cfg.fault_gap = SimTime::minutes(8);
  cfg.fault_duration = SimTime::minutes(4);
  cfg.drain = SimTime::minutes(10);
  // A little measurement-plane dirt so the telemetry-delay stage has
  // non-zero observations too.
  cfg.telemetry_faults = 2;
  cfg.obs.metrics = true;
  return cfg;
}

double run_once(const CampaignConfig& cfg,
                const std::vector<std::uint64_t>& seeds) {
  const auto t0 = std::chrono::steady_clock::now();
  const CampaignSet set = run_many(cfg, seeds, 1);
  const auto t1 = std::chrono::steady_clock::now();
  if (set.runs.empty()) std::abort();  // keep the work live
  return std::chrono::duration<double>(t1 - t0).count();
}

const obs::HistogramSample* find_hist(const obs::MetricsSnapshot& snap,
                                      const char* name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace

int main() {
  print_banner("ingest-to-verdict latency plane (sim-time stage quantiles)");

  const CampaignConfig cfg = base_config();
  const auto seeds = split_seeds(0x7e4d1c7, 6);
  const CampaignSet set = run_many(cfg, seeds, 1);

  struct Stage {
    const char* metric;
    const char* label;
  };
  const Stage stages[] = {
      {"latency.telemetry_delay_s", "telemetry channel delay"},
      {"latency.window_residence_s", "window residence"},
      {"latency.detect_s", "detection lag"},
      {"latency.localize_s", "first event -> verdict"},
      {"latency.ingest_to_verdict_s", "ingest -> verdict (end to end)"},
  };
  TablePrinter table({"stage", "p50 (s)", "p99 (s)", "observations"});
  double p99_verdict = -1.0;
  std::uint64_t verdicts = 0;
  for (const auto& st : stages) {
    const auto* h = find_hist(set.fleet, st.metric);
    if (h == nullptr || h->count == 0) {
      table.add_row({st.label, "-", "-", "0"});
      continue;
    }
    table.add_row({st.label, TablePrinter::num(h->quantile(0.5), 1),
                   TablePrinter::num(h->quantile(0.99), 1),
                   std::to_string(h->count)});
    if (std::string_view(st.metric) == "latency.ingest_to_verdict_s") {
      p99_verdict = h->quantile(0.99);
      verdicts = h->count;
    }
  }
  table.print();

  if (verdicts == 0) {
    std::printf("\nFATAL: no case reached a verdict; latency plane is "
                "empty\n");
    return 1;
  }

  // Recorder overhead: identical campaigns with the flight recorder on
  // (default) vs off; same interleaved best-of-N protocol as the obs
  // overhead gate. Report-only — the hard <1% gate lives in
  // bench_obs_overhead, which runs with the recorder on.
  CampaignConfig rec_off = base_config();
  rec_off.obs.recorder.enabled = false;
  constexpr int kReps = 3;
  (void)run_once(rec_off, seeds);  // warm caches / page-in
  double best_off = 1e300;
  double best_on = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::min(best_off, run_once(rec_off, seeds));
    best_on = std::min(best_on, run_once(cfg, seeds));
  }
  const double overhead_pct = 100.0 * (best_on - best_off) / best_off;

  std::printf("\nflight recorder wall cost: %.3f s off, %.3f s on "
              "(%+.2f%%)\n", best_off, best_on, overhead_pct);
  std::printf("\nP99_VERDICT_S=%.1f\n", p99_verdict);
  std::printf("VERDICTS=%llu\n", static_cast<unsigned long long>(verdicts));
  std::printf("RECORDER_OVERHEAD_PCT=%.2f\n", overhead_pct);
  return 0;
}
