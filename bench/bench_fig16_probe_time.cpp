// Figure 16: modeled wall time of one probing round over all endpoints.
//
// Paper anchors (seconds) at 512/1024/2048 RNICs:
//   full mesh  560.25 / 1123.43 / 2034.12
//   basic       64.85 /  122.54 /  240.54
//   skeleton     8.23 /   16.91 /   25.09
// Agents probe their serialized target lists in parallel across containers;
// round time = max per-agent targets x the per-probe pacing budget
// calibrated from the paper's full-mesh numbers (see probe/overhead.h).
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/harness.h"
#include "core/ping_list_gen.h"
#include "probe/overhead.h"

using namespace skh;
using namespace skh::core;

int main() {
  print_banner("Figure 16: time cost of probing all endpoints");
  struct PaperRow {
    std::uint32_t rnics;
    double full, basic, skel;
  };
  const std::vector<PaperRow> paper{
      {512, 560.25, 64.85, 8.23},
      {1024, 1123.43, 122.54, 16.91},
      {2048, 2034.12, 240.54, 25.09},
  };

  TablePrinter table({"#RNICs", "full-mesh(s)", "paper", "basic(s)", "paper",
                      "skeleton(s)", "paper"});
  for (const auto& row : paper) {
    const std::uint32_t containers = row.rnics / 8;
    ExperimentConfig cfg;
    cfg.topology.num_hosts = containers;
    cfg.topology.rails_per_host = 8;
    cfg.topology.hosts_per_segment = 16;
    Experiment exp(cfg);
    cluster::TaskRequest req;
    req.num_containers = containers;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(24);
    const auto task = exp.launch_task(req);
    if (!task) continue;
    exp.run_to_running(*task);

    const auto endpoints = exp.orchestrator().endpoints_of_task(*task);
    const auto layout = exp.layout_of(*task);
    const auto tm = workload::build_traffic_matrix(layout);
    std::vector<EndpointPair> skel;
    for (const auto& e : tm.edges()) skel.push_back(EndpointPair{e.a, e.b});

    const auto mesh = probe::full_mesh_pairs(endpoints);
    const auto basic = basic_ping_list(
        endpoints, [&](const Endpoint& ep) { return exp.rank_of(ep); });
    const auto skeleton = skeleton_ping_list(skel);

    const double t_full =
        probe::round_time_seconds(max_targets_per_agent(mesh));
    const double t_basic =
        probe::round_time_seconds(max_targets_per_agent(basic));
    const double t_skel =
        probe::round_time_seconds(max_targets_per_agent(skeleton));
    table.add_row({std::to_string(row.rnics), TablePrinter::num(t_full, 1),
                   TablePrinter::num(row.full, 1),
                   TablePrinter::num(t_basic, 1),
                   TablePrinter::num(row.basic, 1),
                   TablePrinter::num(t_skel, 1),
                   TablePrinter::num(row.skel, 1)});
  }
  table.print();
  std::printf("\npaper shape: skeleton cuts probing time ~86-90%% below the"
              " basic list, which is ~8x below full mesh\n");
  return 0;
}
