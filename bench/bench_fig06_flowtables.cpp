// Figure 6: distribution of flow-table items per host.
//
// Paper shape: strongly skewed — the *average* host holds only a few dozen
// items (most hosts run small tasks or sit idle), while hosts packed with
// endpoints of large tasks reach ~9.3K items. We provision a
// production-like tenant mix (many small debug tasks, few large training
// tasks, plenty of idle capacity) and count the per-host OVS rules.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cluster/orchestrator.h"
#include "cluster/traces.h"
#include "common/stats.h"
#include "common/table.h"

using namespace skh;

int main() {
  print_banner("Figure 6: flow-table items per host");
  topo::TopologyConfig tcfg;
  tcfg.num_hosts = 512;
  tcfg.rails_per_host = 8;
  tcfg.hosts_per_segment = 16;
  const auto topo = topo::Topology::build(tcfg);
  overlay::OverlayNetwork overlay;
  sim::EventQueue events;
  RngStream rng{6};
  cluster::Orchestrator orch(topo, overlay, events, rng.fork("orch"));

  // Tenant mix: mostly tiny debug/test tasks (1-4 containers of 4 GPUs),
  // some mid-size, and two large training tasks. Much of the cluster stays
  // idle, as in production where capacity churns.
  RngStream mix = rng.fork("mix");
  int placed = 0;
  auto submit = [&](std::uint32_t containers, std::uint32_t gpus) {
    cluster::TaskRequest req;
    req.tenant = TenantId{static_cast<std::uint32_t>(placed)};
    req.num_containers = containers;
    req.gpus_per_container = gpus;
    req.lifetime = SimTime::hours(6);
    if (orch.submit_task(req)) ++placed;
  };
  for (int i = 0; i < 60; ++i) {
    const double r = mix.uniform();
    if (r < 0.70) {
      submit(static_cast<std::uint32_t>(mix.uniform_int(1, 2)), 4);
    } else if (r < 0.95) {
      submit(static_cast<std::uint32_t>(mix.uniform_int(2, 4)), 8);
    } else {
      submit(static_cast<std::uint32_t>(mix.uniform_int(6, 8)), 8);
    }
  }
  submit(16, 8);  // the large training task driving the ~9.3K tail
  events.run_until(SimTime::minutes(15));  // all containers Running

  std::vector<double> counts;
  for (std::uint32_t h = 0; h < tcfg.num_hosts; ++h) {
    counts.push_back(static_cast<double>(overlay.flow_table_size(HostId{h})));
  }
  std::sort(counts.begin(), counts.end());

  TablePrinter table({"percentile", "flow-table items"});
  for (double q : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    table.add_row({TablePrinter::num(q, 0),
                   TablePrinter::num(percentile_sorted(counts, q), 0)});
  }
  table.print();
  std::printf("\nplaced %d tasks on %u hosts; mean items per host: %.1f"
              " (paper: mean > 40, max ~9.3K, heavily skewed)\n",
              placed, tcfg.num_hosts, mean_of(counts));
  return 0;
}
