// Collective signal plane cost: step-trace ingest throughput and the
// campaign-level overhead of running the second plane at all.
//
// Two numbers matter. The diagnoser's ingest path runs once per emitted
// iteration over every registered communicator, so its per-step cost
// bounds how large a task the plane can watch (greppable:
// COLLECTIVE_INGEST_NS_PER_STEP). And turning the plane on inside a
// full campaign must stay cheap relative to the probe mesh it rides
// along with (COLLECTIVE_OVERHEAD_PCT, interleaved best-of-3). Both are
// report-only; the hard identity check — two generators over the same
// stream must fingerprint identically — gates the exit code, because a
// nondeterministic bench measures nothing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "collective/diag.h"
#include "runner/campaign_runner.h"
#include "workload/collective_trace.h"

using namespace skh;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Synthetic full-host placement: container c on host c with `tp` RNICs.
workload::TaskLayout big_layout() {
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 4;
  par.dp = 16;
  cluster::TaskInfo task;
  task.id = TaskId{0};
  task.request.num_containers = par.num_containers();
  task.request.gpus_per_container = par.tp;
  std::vector<cluster::ContainerInfo> containers;
  for (std::uint32_t c = 0; c < par.num_containers(); ++c) {
    cluster::ContainerInfo ci;
    ci.id = ContainerId{c};
    ci.task = task.id;
    ci.host = HostId{c};
    ci.index_in_task = c;
    for (std::uint32_t g = 0; g < par.tp; ++g) {
      ci.rnics.push_back(RnicId{c * par.tp + g});
    }
    task.containers.push_back(ci.id);
    containers.push_back(ci);
  }
  return workload::make_layout(task, containers, par);
}

}  // namespace

int main() {
  std::puts("Collective signal plane: ingest throughput and campaign cost\n");

  // --- ingest microbench: a TP8/PP4/DP16 task, 40 iterations ---------------
  const auto layout = big_layout();
  const auto groups = workload::build_collective_groups(layout);
  workload::CollectiveTraceGenerator gen(groups, {}, RngStream(11));
  workload::CollectiveTraceGenerator twin(groups, {}, RngStream(11));
  collective::CollectiveDiagnoser diag;
  for (const auto& g : groups) diag.register_group(g);

  constexpr std::uint32_t kIterations = 40;
  std::vector<std::vector<workload::StepRecord>> batches;
  std::uint64_t fp_a = 0xcbf29ce484222325ull, fp_b = fp_a;
  for (std::uint32_t it = 0; it < kIterations; ++it) {
    const SimTime at = SimTime::seconds(30.0 * it);
    batches.push_back(gen.emit_iteration(it, at));
    fp_a = workload::fingerprint_records(batches.back(), fp_a);
    fp_b = workload::fingerprint_records(twin.emit_iteration(it, at), fp_b);
  }

  std::vector<collective::CollectiveVerdict> verdicts;
  const auto t0 = Clock::now();
  for (std::uint32_t it = 0; it < kIterations; ++it) {
    diag.ingest(batches[it], SimTime::seconds(30.0 * (it + 1)), verdicts);
  }
  const double ingest_s = seconds_since(t0);
  const std::uint64_t steps = diag.steps_ingested();
  const double ns_per_step = steps == 0 ? 0.0 : ingest_s * 1e9 /
                                                    static_cast<double>(steps);
  std::printf("  communicators        : %zu\n", groups.size());
  std::printf("  steps ingested       : %llu (%u iterations)\n",
              static_cast<unsigned long long>(steps), kIterations);
  std::printf("  ingest wall          : %.3f ms (%.1f ns/step)\n",
              ingest_s * 1e3, ns_per_step);
  std::printf("  verdicts on healthy  : %zu (want 0)\n", verdicts.size());

  // --- campaign overhead: plane off vs on, interleaved best-of-3 ----------
  runner::CampaignConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 4;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2};
  cfg.tasks = {{4, 4, 2, 2}};
  cfg.visible_faults = 2;
  cfg.fault_gap = SimTime::minutes(8);
  cfg.fault_duration = SimTime::minutes(4);
  cfg.drain = SimTime::minutes(10);

  double best_off = 1e300, best_on = 1e300;
  std::uint64_t on_steps = 0;
  for (int rep = 0; rep < 3; ++rep) {
    cfg.collective_plane = false;
    const auto off0 = Clock::now();
    (void)runner::run_campaign(cfg, 4242);
    best_off = std::min(best_off, seconds_since(off0));
    cfg.collective_plane = true;
    cfg.collective_faults = 2;
    const auto on0 = Clock::now();
    const auto r = runner::run_campaign(cfg, 4242);
    best_on = std::min(best_on, seconds_since(on0));
    on_steps = r.collective_steps;
  }
  const double overhead_pct = (best_on - best_off) / best_off * 100.0;
  std::printf("  campaign wall        : %.3f s off, %.3f s on (%llu steps)\n",
              best_off, best_on, static_cast<unsigned long long>(on_steps));
  std::printf("  plane overhead       : %.1f%%\n\n", overhead_pct);

  // Greppable summary (scripts/bench_to_json.sh -> BENCH_collective.json).
  std::printf("COLLECTIVE_STEPS=%llu\n",
              static_cast<unsigned long long>(steps));
  std::printf("COLLECTIVE_INGEST_NS_PER_STEP=%.1f\n", ns_per_step);
  std::printf("COLLECTIVE_OVERHEAD_PCT=%.1f\n", overhead_pct);

  if (fp_a != fp_b) {
    std::puts("FAIL: twin generators over the same stream diverged");
    return 1;
  }
  if (!verdicts.empty()) {
    std::puts("FAIL: healthy trace raised verdicts");
    return 1;
  }
  return 0;
}
