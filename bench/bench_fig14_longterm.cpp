// Figure 14: long-term latency distribution tracking.
//
// Fit a log-normal at time T; Z-test the windows at T+0.5h, T+1h, T+1.5h.
// In the paper's example the T+0.5h window still follows the baseline while
// T+1h and T+1.5h deviate (gradual degradation).
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "ml/stats_tests.h"

using namespace skh;

namespace {

std::vector<double> window(double median_us, double sigma, std::size_t n,
                           RngStream& rng) {
  std::vector<double> out(n);
  for (auto& x : out) x = rng.lognormal(std::log(median_us), sigma);
  return out;
}

}  // namespace

int main() {
  print_banner("Figure 14: long-term latency distribution tracking");
  RngStream rng{14};
  // Baseline at T: healthy 16us RTTs, 30 minutes at 1 Hz.
  const auto baseline = window(16.0, 0.12, 1800, rng);
  const auto model = ml::fit_lognormal(baseline);
  std::printf("fit at T: mu=%.4f sigma=%.4f => median %.2f us\n\n", model.mu,
              model.sigma, model.median());

  // T+0.5h healthy; T+1h and T+1.5h drift upward (firmware degradation).
  struct Case {
    const char* label;
    double median;
    const char* paper;
  };
  const std::vector<Case> cases{
      {"T+0.5h", 16.0, "follows estimated distribution"},
      {"T+1.0h", 18.5, "deviates (anomaly)"},
      {"T+1.5h", 22.0, "deviates (anomaly)"},
  };
  TablePrinter table({"window", "median(us)", "|z|", "p-value", "verdict",
                      "paper"});
  for (const auto& c : cases) {
    const auto w = window(c.median, 0.12, 1800, rng);
    const auto r = ml::z_test(model, w, 0.001);
    table.add_row({c.label, TablePrinter::num(c.median, 1),
                   TablePrinter::num(std::abs(r.z), 1),
                   r.p_value < 1e-6 ? "<1e-6" : TablePrinter::num(r.p_value, 4),
                   r.reject ? "ANOMALY" : "ok", c.paper});
  }
  table.print();
  return 0;
}
