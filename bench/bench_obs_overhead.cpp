// Observability overhead gate: metrics/tracing instrumentation is compiled
// into every pipeline stage unconditionally, so its disabled-path cost must
// stay in the noise. This bench runs the same Monte-Carlo campaign with obs
// fully detached (the pre-obs baseline: unbound handles, one null-check per
// site) and with the default production posture (metrics on, tracing
// compiled in but disabled) and fails if the gated run is more than 1%
// slower than baseline, modulo an absolute slack floor for short runs.
//
// Noise control: reps are interleaved (baseline, gated, baseline, ...) so
// slow drift (thermal, noisy neighbours) hits both sides, and each side
// scores its *minimum* wall time — the rep least disturbed by the OS.
// `SKH_OBS_OVERHEAD_TOL_PCT` overrides the relative tolerance for
// exceptionally noisy CI hosts.
//
// The second gate re-checks the runner's determinism guarantee with obs
// enabled: per-seed scores, fault schedules, and the merged fleet snapshot
// must be bit-identical at 1 and 4 worker threads.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "runner/campaign_runner.h"

using namespace skh;
using namespace skh::runner;

namespace {

CampaignConfig base_config() {
  CampaignConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 4;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.probe_interval = SimTime::seconds(5);
  cfg.hunter.inference.candidate_dp = {2};
  cfg.tasks = {{4, 4, 2, 2}, {4, 4, 4, 1}};
  cfg.visible_faults = 4;
  cfg.invisible_faults = 0;
  cfg.phantom_agents = 0;
  cfg.fault_gap = SimTime::minutes(8);
  cfg.fault_duration = SimTime::minutes(4);
  cfg.drain = SimTime::minutes(10);
  return cfg;
}

double run_once(const CampaignConfig& cfg,
                const std::vector<std::uint64_t>& seeds) {
  const auto t0 = std::chrono::steady_clock::now();
  const CampaignSet set = run_many(cfg, seeds, 1);
  const auto t1 = std::chrono::steady_clock::now();
  if (set.runs.size() != seeds.size()) std::abort();  // keep the work live
  return std::chrono::duration<double>(t1 - t0).count();
}

bool same_results(const CampaignSet& a, const CampaignSet& b) {
  if (a.runs.size() != b.runs.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    if (!(a.runs[i].score == b.runs[i].score)) return false;
    if (a.runs[i].faults.size() != b.runs[i].faults.size()) return false;
    for (std::size_t j = 0; j < a.runs[i].faults.size(); ++j) {
      const auto& fa = a.runs[i].faults[j];
      const auto& fb = b.runs[i].faults[j];
      if (fa.type != fb.type || !(fa.target == fb.target) ||
          fa.start != fb.start || fa.end != fb.end) {
        return false;
      }
    }
    if (!(a.runs[i].metrics == b.runs[i].metrics)) return false;
  }
  return a.fleet == b.fleet;
}

}  // namespace

int main() {
  print_banner("obs overhead gate: instrumented-but-idle vs detached");

  CampaignConfig baseline_cfg = base_config();
  baseline_cfg.obs.metrics = false;  // nothing attached: pre-obs hot path

  CampaignConfig gated_cfg = base_config();
  gated_cfg.obs.metrics = true;    // production posture: registry bound,
  gated_cfg.obs.tracing = false;   // tracer compiled in but disabled

  const auto seeds = split_seeds(0x0b5'0b5, 6);

  constexpr int kReps = 5;
  double warm = run_once(baseline_cfg, seeds);  // warm caches / page-in
  (void)warm;
  double best_base = 1e300;
  double best_gated = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    best_base = std::min(best_base, run_once(baseline_cfg, seeds));
    best_gated = std::min(best_gated, run_once(gated_cfg, seeds));
  }

  double tol_pct = 1.0;
  if (const char* env = std::getenv("SKH_OBS_OVERHEAD_TOL_PCT")) {
    tol_pct = std::atof(env);
  }
  // Short campaigns bottom out on scheduler jitter: allow 20 ms of absolute
  // slack so the relative gate only bites once it is measurable.
  constexpr double kAbsSlackS = 0.020;
  const double overhead_pct = 100.0 * (best_gated - best_base) / best_base;
  const bool within = best_gated <= best_base * (1.0 + tol_pct / 100.0) ||
                      best_gated - best_base <= kAbsSlackS;

  TablePrinter table({"variant", "best of " + std::to_string(kReps) + " (s)",
                      "overhead"});
  table.add_row({"obs detached (baseline)", TablePrinter::num(best_base, 3),
                 "-"});
  table.add_row({"metrics on, tracing off", TablePrinter::num(best_gated, 3),
                 TablePrinter::num(overhead_pct, 2) + "%"});
  table.print();
  std::printf("\ngate: <= %.2f%% relative or <= %.0f ms absolute -> %s\n",
              tol_pct, kAbsSlackS * 1e3, within ? "PASS" : "FAIL");
  if (!within) {
    std::printf("FATAL: idle observability costs %.2f%% of campaign wall "
                "time\n", overhead_pct);
    return 1;
  }

  // Determinism with obs enabled: thread count must not leak into scores,
  // fault schedules, per-seed scrapes, or the fleet snapshot.
  const CampaignSet one = run_many(gated_cfg, seeds, 1);
  const CampaignSet four = run_many(gated_cfg, seeds, 4);
  const bool deterministic = same_results(one, four);
  std::printf("determinism: 1-thread vs 4-thread campaign results "
              "bit-identical -> %s\n", deterministic ? "PASS" : "FAIL");
  if (!deterministic) {
    std::printf("FATAL: obs instrumentation broke thread-count "
                "invariance\n");
    return 1;
  }

  std::printf("fleet snapshot: %zu counters, %zu gauges, %zu histograms; "
              "probes issued: %llu\n",
              one.fleet.counters.size(), one.fleet.gauges.size(),
              one.fleet.histograms.size(),
              static_cast<unsigned long long>(
                  one.fleet.counter_or("probe.issued")));
  return 0;
}
