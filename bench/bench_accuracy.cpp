// Section 7.1 headline numbers: detection precision / recall and
// localization accuracy over a fault campaign.
//
// Production (6 months, 2M+ tasks): 4,816 failures found with 98.2%
// precision and 99.3% recall; 1,302 components localized at 95.7%
// accuracy. Our campaign compresses that into a multi-task simulation with
// randomized faults over every component class, a share of intra-host
// (probe-invisible) faults that bound recall, and a few crashed sidecar
// agents that bound precision — the same three error sources §7.1/§7.3
// attribute the production misses to.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/harness.h"
#include "core/metrics.h"

using namespace skh;
using namespace skh::core;

int main() {
  print_banner("Section 7.1: detection & localization accuracy campaign");
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 32;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4, 8};
  cfg.hunter.probe_interval = SimTime::seconds(2);
  cfg.seed = 20240301;
  Experiment exp(cfg);

  // Four concurrent tasks of different shapes.
  struct Shape {
    std::uint32_t containers, gpus, dp, pp;
  };
  const std::vector<Shape> shapes{{8, 8, 4, 2}, {8, 8, 2, 4},
                                  {8, 8, 8, 1}, {4, 8, 2, 2}};
  std::vector<TaskId> tasks;
  for (const auto& s : shapes) {
    cluster::TaskRequest req;
    req.num_containers = s.containers;
    req.gpus_per_container = s.gpus;
    req.lifetime = SimTime::hours(24);
    const auto task = exp.launch_task(req);
    if (!task) continue;
    exp.run_to_running(*task);
    workload::ParallelismConfig par;
    par.tp = s.gpus;
    par.pp = s.pp;
    par.dp = s.dp;
    (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));
    tasks.push_back(*task);
  }

  // Fault plan: ~48 visible faults cycling over component classes, 1
  // intra-host invisible fault (recall loss, §7.3), 1 crashed agent
  // (precision loss, §7.3). Faults are spaced so each is attributable.
  RngStream frng = exp.rng().fork("fault-plan");
  const std::vector<sim::IssueType> visible_types{
      sim::IssueType::kCrcError,
      sim::IssueType::kSwitchPortDown,
      sim::IssueType::kSwitchPortFlapping,
      sim::IssueType::kRnicHardwareFailure,
      sim::IssueType::kRnicFirmwareNotResponding,
      sim::IssueType::kRnicPortDown,
      sim::IssueType::kGidChange,
      sim::IssueType::kHugepageMisconfig,
      sim::IssueType::kNotUsingRdma,
      sim::IssueType::kSuboptimalFlowOffloading,
      sim::IssueType::kSwitchOffline,
      sim::IssueType::kPcieNicError,
  };
  SimTime cursor = exp.events().now() + SimTime::minutes(5);
  const SimTime gap = SimTime::minutes(11);
  const SimTime duration = SimTime::minutes(6);
  int injected = 0;
  for (int round = 0; round < 4; ++round) {
    for (const auto type : visible_types) {
      const TaskId task = tasks[static_cast<std::size_t>(
          frng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1))];
      const auto endpoints = exp.orchestrator().endpoints_of_task(task);
      const auto& victim = endpoints[static_cast<std::size_t>(
          frng.uniform_int(0, static_cast<std::int64_t>(endpoints.size()) - 1))];
      sim::ComponentRef target;
      switch (sim::issue_info(type).target_kind) {
        case sim::ComponentKind::kPhysicalLink:
          target = {sim::ComponentKind::kPhysicalLink,
                    exp.topology().uplink_of(victim.rnic).value()};
          break;
        case sim::ComponentKind::kPhysicalSwitch: {
          const auto host = exp.topology().host_of(victim.rnic);
          target = {sim::ComponentKind::kPhysicalSwitch,
                    exp.topology()
                        .tor_at(exp.topology().segment_of(host),
                                exp.topology().rail_of(victim.rnic))
                        .value()};
          break;
        }
        case sim::ComponentKind::kRnic:
          target = {sim::ComponentKind::kRnic, victim.rnic.value()};
          break;
        case sim::ComponentKind::kVSwitch:
          target = {sim::ComponentKind::kVSwitch,
                    exp.topology().host_of(victim.rnic).value()};
          break;
        default:
          target = {sim::ComponentKind::kHost,
                    exp.topology().host_of(victim.rnic).value()};
          break;
      }
      exp.faults().inject(type, target, cursor, cursor + duration);
      cursor += gap;
      ++injected;
    }
  }
  // Invisible intra-host fault: counted against recall, never detected.
  exp.faults().inject(sim::IssueType::kNvlinkDegradation,
                      {sim::ComponentKind::kHost, 3}, cursor,
                      cursor + duration);
  cursor += gap;
  // Crashed sidecar agent: a phantom that probes see but scoring rejects.
  // Spaced well clear of any real fault so the resulting case cannot be
  // accidentally attributed to one.
  cursor += SimTime::minutes(40);
  const auto phantom_eps = exp.orchestrator().endpoints_of_task(tasks[0]);
  exp.faults().inject_phantom(
      {sim::ComponentKind::kContainer, phantom_eps[0].container.value()},
      cursor, cursor + SimTime::minutes(3));
  cursor += gap;

  exp.hunter().start(cursor + SimTime::minutes(20));
  exp.events().run_all();
  exp.hunter().finalize();

  const auto score = score_campaign(exp.hunter().failure_cases(),
                                    exp.faults(), exp.topology());
  TablePrinter table({"metric", "measured", "paper"});
  table.add_row({"injected faults (visible)",
                 std::to_string(score.injected_visible), "-"});
  table.add_row({"injected faults (intra-host, invisible)",
                 std::to_string(score.injected_invisible), "-"});
  table.add_row({"failure cases raised",
                 std::to_string(score.cases_total), "4816 failures"});
  table.add_row({"precision", TablePrinter::pct(score.precision()), "98.2%"});
  table.add_row({"recall", TablePrinter::pct(score.recall()), "99.3%"});
  table.add_row({"localization accuracy",
                 TablePrinter::pct(score.localization_accuracy()), "95.7%"});
  table.add_row({"mean detection latency",
                 TablePrinter::num(score.mean_detection_latency_s, 1) + " s",
                 "8 s avg"});
  table.print();
  std::printf("\nerror sources mirror the paper: misses are intra-host"
              " (NVLink/PCIe) faults; false alarms come from crashed"
              " monitoring agents (Section 7.3)\n");
  return 0;
}
