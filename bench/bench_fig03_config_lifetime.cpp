// Figure 3: container lifetime CDF by hardware-configuration tier.
//
// Paper shape: higher-end configurations (more/better GPUs) live longer —
// low-end containers are debugging/testing runs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cluster/traces.h"
#include "common/stats.h"
#include "common/table.h"

using namespace skh;

int main() {
  print_banner("Figure 3: container lifetime CDF by configuration tier");
  RngStream rng{2024};
  constexpr int kSamples = 50000;
  const std::vector<cluster::ConfigTier> tiers{
      cluster::ConfigTier::kLow, cluster::ConfigTier::kMid,
      cluster::ConfigTier::kHigh};

  std::vector<std::vector<double>> lifetimes(tiers.size());
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    RngStream s = rng.fork(static_cast<std::uint64_t>(t));
    for (int i = 0; i < kSamples; ++i) {
      // Fixed representative task size so the tier effect is isolated.
      lifetimes[t].push_back(
          cluster::sample_lifetime(128, tiers[t], s).to_minutes());
    }
    std::sort(lifetimes[t].begin(), lifetimes[t].end());
  }

  TablePrinter table({"lifetime<=min", "low", "mid", "high"});
  for (double m : {10.0, 30.0, 60.0, 100.0, 180.0, 360.0, 720.0, 1440.0}) {
    std::vector<std::string> row{TablePrinter::num(m, 0)};
    for (const auto& l : lifetimes) {
      row.push_back(TablePrinter::pct(ecdf(l, m)));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nmedian lifetime (min): low=%.0f mid=%.0f high=%.0f"
              " (paper: higher-end configs live longer)\n",
              percentile_sorted(lifetimes[0], 50),
              percentile_sorted(lifetimes[1], 50),
              percentile_sorted(lifetimes[2], 50));
  return 0;
}
