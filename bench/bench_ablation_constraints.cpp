// Ablation: Eq. 1-3 constraints in the clustering step.
//
// Same-host RNICs can have near-identical burst features (they serve one
// TP group); without the host-disjointness constraint (Eq. 3) and the
// balanced/divisible size constraints (Eq. 1-2), the grouping can merge
// rails or pick a wrong DP degree. We compare constrained vs unconstrained
// grouping accuracy over noise levels.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "dsp/stft.h"
#include "ml/clustering.h"
#include "workload/traffic.h"

using namespace skh;
using namespace skh::workload;

namespace {

struct Dataset {
  ml::FeatureMatrix features;
  std::vector<std::size_t> host_of;
  std::vector<std::size_t> true_group;  // position index
  std::size_t true_k;
};

Dataset make_dataset(double noise, bool rail_signature, std::uint64_t seed) {
  ParallelismConfig par;
  par.tp = 4;
  par.pp = 2;
  par.dp = 4;
  BurstConfig bcfg;
  bcfg.noise_gbps = noise;
  // Without the rail chunk-scheduling signature, the rails of one
  // container are spectrally indistinguishable -- the degenerate case where
  // only the Eq. 3 host constraint can keep same-host RNICs apart.
  if (!rail_signature) bcfg.rail_signature_gbps = 0.0;
  RngStream rng{seed};
  Dataset d;
  d.true_k = par.pp * par.tp;
  for (std::uint32_t c = 0; c < par.num_containers(); ++c) {
    const std::uint32_t stage = c % par.pp;
    for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
      EndpointRole role;
      role.dp_rank = c / par.pp;
      role.stage = stage;
      role.rail = rail;
      RngStream sub = rng.fork(c * 16 + rail);
      d.features.push_back(
          dsp::stft_feature(burst_series(role, par, bcfg, sub)));
      d.host_of.push_back(c);  // one container per host
      d.true_group.push_back(stage * par.tp + rail);
    }
  }
  return d;
}

/// Fraction of item pairs whose same/different-group relation matches the
/// truth (Rand index).
double rand_index(const std::vector<std::size_t>& truth,
                  const std::vector<std::size_t>& assignment) {
  std::size_t agree = 0, total = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    for (std::size_t j = i + 1; j < truth.size(); ++j) {
      const bool same_true = truth[i] == truth[j];
      const bool same_got = assignment[i] == assignment[j];
      if (same_true == same_got) ++agree;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace

int main() {
  print_banner("Ablation: Eq. 1-3 clustering constraints");
  TablePrinter table({"scenario", "noise(Gbps)", "constrained RI",
                      "constrained k", "unconstrained RI",
                      "unconstrained k"});
  struct Scenario {
    const char* name;
    bool rail_signature;
    double noise;
  };
  const Scenario scenarios[] = {
      {"distinct rails", true, 0.1},  {"distinct rails", true, 0.6},
      {"distinct rails", true, 1.5},  {"identical rails", false, 0.1},
      {"identical rails", false, 0.6}, {"identical rails", false, 1.5},
  };
  for (const auto& sc : scenarios) {
    const double noise = sc.noise;
    const auto d = make_dataset(noise, sc.rail_signature,
                                42 + static_cast<std::uint64_t>(noise * 10));
    ml::ConstrainedClusterConfig cfg;
    cfg.host_of = d.host_of;
    const std::size_t n = d.features.size();
    for (std::size_t k = 2; k <= n / 2; ++k) {
      if (n % k == 0) cfg.candidate_ks.push_back(k);
    }
    const auto constrained = ml::constrained_cluster(d.features, cfg);
    // Unconstrained: plain agglomerative cut at the *tightest* feasible k
    // chosen by the same elbow rule but with no host/divisibility checks —
    // emulate by trying all k and taking min intra distance (over-splits).
    double best_intra = 1e18;
    ml::Clustering best;
    for (std::size_t k = 2; k <= n / 2; ++k) {
      auto c = ml::hierarchical_cluster(d.features, k);
      const double intra = ml::mean_intra_cluster_distance(d.features, c);
      // Penalize trivial over-splitting mildly (else k=n/2 always wins).
      const double score = intra + 0.001 * static_cast<double>(k);
      if (score < best_intra) {
        best_intra = score;
        best = std::move(c);
      }
    }
    table.add_row(
        {sc.name, TablePrinter::num(noise, 1),
         constrained ? TablePrinter::num(
                           rand_index(d.true_group, constrained->assignment), 3)
                     : "infeasible",
         constrained ? std::to_string(constrained->num_clusters()) : "-",
         TablePrinter::num(rand_index(d.true_group, best.assignment), 3),
         std::to_string(best.num_clusters())});
  }
  table.print();
  std::printf("\ntrue group count is 8 (PP2 x TP4). With identical rails"
              " only the host-disjointness constraint (Eq. 3) and the size"
              " balance (Eq. 1-2) keep the grouping usable; unconstrained"
              " clustering merges same-host RNICs.\n");
  return 0;
}
