// Figure 15: the scale of probing targets vs. #allocated RNICs, per
// strategy: full mesh >> deTector-style topology-aware >> basic (rail-
// pruned) >> SkeletonHunter's inferred skeleton.
//
// Paper anchors at 2048 RNICs: full mesh ~60,430 probings/round vs
// SkeletonHunter 2,593 (a >95% cut); deTector-like needs 15K+.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/harness.h"
#include "core/ping_list_gen.h"

using namespace skh;
using namespace skh::core;

int main() {
  print_banner("Figure 15: scale of probing targets");
  TablePrinter table({"#RNICs", "full-mesh", "deTector", "basic",
                      "skeleton", "skeleton/full-mesh"});
  for (std::uint32_t rnics : {256u, 512u, 1024u, 2048u}) {
    const std::uint32_t containers = rnics / 8;
    ExperimentConfig cfg;
    cfg.topology.num_hosts = containers;
    cfg.topology.rails_per_host = 8;
    cfg.topology.hosts_per_segment = 16;
    Experiment exp(cfg);
    cluster::TaskRequest req;
    req.num_containers = containers;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(24);
    const auto task = exp.launch_task(req);
    if (!task) continue;
    exp.run_to_running(*task);

    const auto endpoints = exp.orchestrator().endpoints_of_task(*task);
    const auto layout = exp.layout_of(*task);
    const auto tm = workload::build_traffic_matrix(layout);
    std::vector<EndpointPair> skel;
    for (const auto& e : tm.edges()) skel.push_back(EndpointPair{e.a, e.b});

    const auto s = probing_scale(
        endpoints, [&](const Endpoint& ep) { return exp.rank_of(ep); },
        exp.topology(), skel);
    table.add_row({std::to_string(rnics), std::to_string(s.full_mesh),
                   std::to_string(s.detector), std::to_string(s.basic),
                   std::to_string(s.skeleton),
                   TablePrinter::pct(static_cast<double>(s.skeleton) /
                                     static_cast<double>(s.full_mesh))});
  }
  table.print();
  std::printf("\npaper shape: basic = full-mesh/8 (87.5%% cut);"
              " skeleton cuts >95%% of full mesh; deTector in between\n");
  return 0;
}
