// Figure 4: container startup time within a task (phased waves, heavier
// tail for larger tasks, worst stragglers near 10 minutes).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cluster/traces.h"
#include "common/stats.h"
#include "common/table.h"

using namespace skh;

int main() {
  print_banner("Figure 4: startup time of containers in six training tasks");
  RngStream rng{7};
  const std::vector<std::uint32_t> task_sizes{32, 64, 128, 256, 1024, 2048};

  TablePrinter table({"task-size", "p10(s)", "p50(s)", "p90(s)", "p99(s)",
                      "max(s)", "phases"});
  for (std::uint32_t size : task_sizes) {
    RngStream s = rng.fork(size);
    std::vector<double> delays;
    for (std::uint32_t c = 0; c < size; ++c) {
      delays.push_back(cluster::sample_startup_delay(size, c, s).to_seconds());
    }
    std::sort(delays.begin(), delays.end());
    // Count distinct ~25s waves actually populated (the "phased pattern").
    std::size_t phases = 0;
    double last_wave = -1e9;
    for (double d : delays) {
      if (d - last_wave > 20.0) {
        ++phases;
        last_wave = d;
      }
    }
    table.add_row({std::to_string(size),
                   TablePrinter::num(percentile_sorted(delays, 10), 1),
                   TablePrinter::num(percentile_sorted(delays, 50), 1),
                   TablePrinter::num(percentile_sorted(delays, 90), 1),
                   TablePrinter::num(percentile_sorted(delays, 99), 1),
                   TablePrinter::num(delays.back(), 1),
                   std::to_string(phases)});
  }
  table.print();
  std::printf("\npaper: most tasks need a couple of minutes; largest tail"
              " reaches ~10 min (600 s)\n");
  return 0;
}
