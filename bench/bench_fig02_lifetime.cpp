// Figure 2: container lifetime CDF by training-task size.
//
// Paper shape: ~50% of containers of tasks sized <= 256 live under 60
// minutes; ~70% of all training containers live under 100 minutes; larger
// tasks skew longer.
#include <cstdio>
#include <vector>

#include "cluster/traces.h"
#include "common/table.h"

using namespace skh;

int main() {
  print_banner("Figure 2: container lifetime CDF by task size");
  RngStream rng{2024};
  constexpr int kSamplesPerClass = 40000;
  const std::vector<std::pair<const char*, std::uint32_t>> classes{
      {"size<=16", 16}, {"size<=64", 64}, {"size<=256", 256},
      {"size>256", 1024}};
  const std::vector<double> minutes_grid{10, 30, 60, 100, 180, 360, 720, 1440};

  std::vector<std::string> headers{"lifetime<=min"};
  for (const auto& [name, _] : classes) headers.push_back(name);
  TablePrinter table(std::move(headers));

  // Per class, collect lifetimes with the production tier mix.
  std::vector<std::vector<double>> lifetimes(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    RngStream cls = rng.fork(classes[c].first);
    for (int i = 0; i < kSamplesPerClass; ++i) {
      const auto tier = cluster::sample_config_tier(cls);
      lifetimes[c].push_back(
          cluster::sample_lifetime(classes[c].second, tier, cls).to_minutes());
    }
  }
  for (double m : minutes_grid) {
    std::vector<std::string> row{TablePrinter::num(m, 0)};
    for (const auto& l : lifetimes) {
      const auto below = static_cast<double>(
          std::count_if(l.begin(), l.end(), [&](double x) { return x <= m; }));
      row.push_back(TablePrinter::pct(below / static_cast<double>(l.size())));
    }
    table.add_row(std::move(row));
  }
  table.print();

  // The two headline claims.
  double under60_small = 0, under100_all = 0, total_all = 0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (double x : lifetimes[c]) {
      if (c <= 2 && x <= 60.0) ++under60_small;
      if (x <= 100.0) ++under100_all;
      ++total_all;
    }
  }
  std::printf("\npaper: ~50%% of containers (tasks <=256) < 60 min;"
              " measured: %.1f%%\n",
              100.0 * under60_small / (3.0 * kSamplesPerClass));
  std::printf("paper: ~70%% of all containers < 100 min;"
              " measured: %.1f%%\n",
              100.0 * under100_all / total_all);
  return 0;
}
