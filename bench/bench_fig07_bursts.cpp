// Figure 7: traffic burst cycles of the RNICs in a typical training
// container over 900 s at 1 s granularity, peaks near 15 Gbps with idle
// valleys between iterations.
#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "workload/traffic.h"

using namespace skh;
using namespace skh::workload;

int main() {
  print_banner("Figure 7: traffic burst cycles of RNICs in one container");
  ParallelismConfig par;  // TP8/PP8/DP8 (the Figure 8 task)
  BurstConfig bcfg;       // 900 s @ 1 Hz, 30 s iterations, 15 Gbps peaks
  RngStream rng{77};

  // The observed container: stage 3 of replica 0; all eight rails.
  std::printf("per-rail series stats (container at PP stage 3):\n\n");
  TablePrinter table({"rail", "mean(Gbps)", "peak(Gbps)", "idle-frac",
                      "burst-period(s)"});
  for (std::uint32_t rail = 0; rail < par.tp; ++rail) {
    EndpointRole role;
    role.endpoint = Endpoint{ContainerId{3}, RnicId{24 + rail}};
    role.dp_rank = 0;
    role.stage = 3;
    role.rail = rail;
    RngStream sub = rng.fork(rail);
    const auto s = burst_series(role, par, bcfg, sub);
    const double peak = *std::max_element(s.begin(), s.end());
    double mean = 0.0;
    int idle = 0;
    for (double v : s) {
      mean += v;
      if (v < 1.0) ++idle;
    }
    mean /= static_cast<double>(s.size());
    // Burst period: count DP bursts (samples above 60% of peak).
    int bursts = 0;
    bool in_burst = false;
    for (double v : s) {
      const bool hot = v > 0.6 * peak;
      if (hot && !in_burst) ++bursts;
      in_burst = hot;
    }
    const double period =
        bursts > 0 ? bcfg.duration_s / static_cast<double>(bursts) : 0.0;
    table.add_row({std::to_string(rail), TablePrinter::num(mean, 2),
                   TablePrinter::num(peak, 2),
                   TablePrinter::pct(static_cast<double>(idle) /
                                     static_cast<double>(s.size())),
                   TablePrinter::num(period, 1)});
  }
  table.print();

  // ASCII sparkline of rail 0's first 120 s for visual comparison.
  EndpointRole role;
  role.stage = 3;
  role.rail = 0;
  RngStream sub = rng.fork("spark");
  const auto s = burst_series(role, par, bcfg, sub);
  std::printf("\nrail 0, first 120 s (each char = 2 s, height ~ Gbps):\n");
  static const char* levels = " .:-=+*#%@";
  for (int i = 0; i < 120; i += 2) {
    const double v = (s[static_cast<std::size_t>(i)] +
                      s[static_cast<std::size_t>(i) + 1]) / 2.0;
    const int idx = std::clamp(static_cast<int>(v / 16.0 * 9.0), 0, 9);
    std::putchar(levels[idx]);
  }
  std::printf("\npaper: periodic peaks ~15 Gbps, low/idle between bursts,"
              " ~30 s iteration period\n");
  return 0;
}
