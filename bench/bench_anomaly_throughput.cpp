// Streaming anomaly hot path vs the batch reference at fleet scale.
//
// Part 1 replays pre-generated probe streams through both detector compute
// paths, at 10k pairs (the paper's single-task fleet) and at 100k pairs
// (ten concurrent tasks sharing one analyzer). The batch path goes through
// the per-call ProbeResult API it shipped with: a pair hash per probe,
// retained sample vectors copied and sorted at every window close, and the
// LOF look-back refit from scratch each time. The streaming path uses
// pre-resolved pair handles (stable FlatPairTable ids), one-cache-line
// PairHot rows, strip-arena window samples, and the resident StreamingLof
// model. The PR bar: >= 10x probe ingest throughput at 10k pairs, with
// verdicts that match event-for-event (pair, kind, timestamp). The 100k
// row is reported (and verdict-checked) but not throughput-gated: at that
// scale the working set outgrows cache on purpose, and the number documents
// how the hot path degrades, not a promise.
//
// Part 2 snapshots the streaming detector mid-stream, restores into a
// fresh instance, and replays the remaining rounds through both: events
// must be identical to the bit (scores compared as doubles, not within a
// tolerance), and pair handles must survive the round-trip unchanged.
//
// Part 3 re-runs fault-injection campaigns with each path and requires
// bit-identical CampaignScores — the end-to-end guarantee that the hot
// path changed nothing about what the system reports — and re-runs the
// streaming campaigns across 1/4/16 runner threads, which must also be
// bit-identical.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "core/anomaly.h"
#include "core/metrics.h"
#include "runner/campaign_runner.h"

using namespace skh;
using namespace skh::core;

namespace {

constexpr double kIntervalS = 5.0;  // the campaign probe interval

EndpointPair pair_of(std::size_t p, std::size_t pairs) {
  const auto i = static_cast<std::uint32_t>(p);
  const auto j = static_cast<std::uint32_t>(p + pairs);
  return {{ContainerId{i}, RnicId{i}}, {ContainerId{j}, RnicId{j}}};
}

/// rtt in microseconds, negative = probe lost. Round-major (every pair is
/// probed each round), with a latency-spike cohort and a loss cohort (each
/// active for a quarter of the run) so both window rules actually fire.
std::vector<float> make_stream(std::size_t pairs, std::size_t rounds) {
  std::vector<float> s(rounds * pairs);
  RngStream rng{99};
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t p = 0; p < pairs; ++p) {
      double rtt = 16.0 * std::exp(rng.normal(0.0, 0.05));
      if (p % 977 == 3 && r >= rounds / 2 && r < 3 * rounds / 4) rtt *= 2.5;
      const bool lost = p % 1013 == 7 && r >= rounds / 4 && r < rounds / 2 &&
                        rng.uniform() < 0.3;
      s[r * pairs + p] = lost ? -1.0F : static_cast<float>(rtt);
    }
  }
  return s;
}

double run_streaming(const std::vector<float>& stream, std::size_t pairs,
                     std::size_t rounds, std::vector<AnomalyEvent>& events,
                     DetectorCounters& counters) {
  DetectorConfig cfg;
  cfg.streaming = true;
  // Plan-time sizing, exactly as the hunter does it after list distribution:
  // the flat table and the hot/cold/strip arenas are laid out once, and the
  // timed region below performs zero rehashes and zero arena growth.
  cfg.expected_pairs = pairs;
  AnomalyDetector det(cfg);
  std::vector<AnomalyDetector::PairHandle> handles(pairs);
  for (std::size_t p = 0; p < pairs; ++p) {
    handles[p] = det.handle_of(pair_of(p, pairs));
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const SimTime t = SimTime::seconds(static_cast<double>(r) * kIntervalS);
    const float* row = stream.data() + r * pairs;
    for (std::size_t p = 0; p < pairs; ++p) {
      const float v = row[p];
      (void)det.ingest(handles[p], t, v >= 0.0F,
                       v >= 0.0F ? static_cast<double>(v) : 0.0, events);
    }
  }
  const auto tail =
      det.flush(SimTime::seconds(static_cast<double>(rounds) * kIntervalS));
  const auto t1 = std::chrono::steady_clock::now();
  events.insert(events.end(), tail.begin(), tail.end());
  counters = det.counters();
  return std::chrono::duration<double>(t1 - t0).count();
}

double run_batch(const std::vector<float>& stream, std::size_t pairs,
                 std::size_t rounds, std::vector<AnomalyEvent>& events,
                 DetectorCounters& counters) {
  DetectorConfig cfg;
  cfg.streaming = false;
  cfg.expected_pairs = pairs;
  AnomalyDetector det(cfg);
  std::vector<EndpointPair> ps(pairs);
  for (std::size_t p = 0; p < pairs; ++p) ps[p] = pair_of(p, pairs);
  const auto t0 = std::chrono::steady_clock::now();
  probe::ProbeResult pr;
  for (std::size_t r = 0; r < rounds; ++r) {
    pr.sent_at = SimTime::seconds(static_cast<double>(r) * kIntervalS);
    const float* row = stream.data() + r * pairs;
    for (std::size_t p = 0; p < pairs; ++p) {
      const float v = row[p];
      pr.pair = ps[p];
      pr.delivered = v >= 0.0F;
      pr.rtt_us = v >= 0.0F ? static_cast<double>(v) : 0.0;
      const auto fired = det.ingest(pr);
      events.insert(events.end(), fired.begin(), fired.end());
    }
  }
  const auto tail =
      det.flush(SimTime::seconds(static_cast<double>(rounds) * kIntervalS));
  const auto t1 = std::chrono::steady_clock::now();
  events.insert(events.end(), tail.begin(), tail.end());
  counters = det.counters();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool same_verdicts(const std::vector<AnomalyEvent>& a,
                   const std::vector<AnomalyEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].pair == b[i].pair) || a[i].kind != b[i].kind ||
        a[i].detected_at.raw_nanos() != b[i].detected_at.raw_nanos()) {
      return false;
    }
    const double tol = 1e-6 * std::max(1.0, std::abs(b[i].score));
    if (std::abs(a[i].score - b[i].score) > tol) return false;
  }
  return true;
}

/// Exact event identity: scores must match as bit patterns, not within a
/// tolerance. This is the snapshot/restore contract.
bool identical_events(const std::vector<AnomalyEvent>& a,
                      const std::vector<AnomalyEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].pair == b[i].pair) || a[i].kind != b[i].kind ||
        a[i].detected_at.raw_nanos() != b[i].detected_at.raw_nanos() ||
        a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

struct ScaleResult {
  double t_batch = 0.0;
  double t_streaming = 0.0;
  bool ok = false;
};

/// One Part-1 scale point: interleaved min-of-N for both paths plus the
/// verdict- and accounting-identity checks. Interleaving the reps (b, s,
/// b, s, ...) keeps a time-varying background load from biasing one path.
ScaleResult run_scale(std::size_t pairs, std::size_t rounds, int reps,
                      TablePrinter& table) {
  const auto stream = make_stream(pairs, rounds);
  const auto probes = static_cast<double>(stream.size());
  ScaleResult res;
  std::vector<AnomalyEvent> batch_events, streaming_events;
  DetectorCounters bc, sc;
  res.t_batch = run_batch(stream, pairs, rounds, batch_events, bc);
  res.t_streaming = run_streaming(stream, pairs, rounds, streaming_events, sc);
  for (int rep = 1; rep < reps; ++rep) {
    std::vector<AnomalyEvent> ev;
    DetectorCounters c;
    res.t_batch = std::min(res.t_batch, run_batch(stream, pairs, rounds, ev, c));
    ev.clear();
    res.t_streaming =
        std::min(res.t_streaming, run_streaming(stream, pairs, rounds, ev, c));
  }
  const double speedup = res.t_batch / res.t_streaming;
  const std::string scale = std::to_string(pairs / 1000) + "k pairs";
  table.add_row({scale, "batch (reference)", TablePrinter::num(res.t_batch, 3),
                 TablePrinter::num(probes / res.t_batch / 1e6, 2) + "M",
                 std::to_string(batch_events.size()), ""});
  table.add_row({scale, "streaming", TablePrinter::num(res.t_streaming, 3),
                 TablePrinter::num(probes / res.t_streaming / 1e6, 2) + "M",
                 std::to_string(streaming_events.size()),
                 TablePrinter::num(speedup, 2) + "x"});
  if (!same_verdicts(streaming_events, batch_events)) {
    std::printf("FATAL: streaming and batch verdicts differ at %zu pairs\n",
                pairs);
    return res;
  }
  if (bc.short_windows_closed != sc.short_windows_closed ||
      bc.samples_delivered != sc.samples_delivered) {
    std::printf("FATAL: window accounting differs between paths at %zu "
                "pairs\n", pairs);
    return res;
  }
  std::printf("%zu pairs x %zu rounds: verdicts identical (%zu events), "
              "lof fast-path ratio %.3f (%llu fast / %llu fallback)\n",
              pairs, rounds, streaming_events.size(), lof_fast_path_ratio(sc),
              static_cast<unsigned long long>(sc.lof_fast_path),
              static_cast<unsigned long long>(sc.lof_fallback));
  res.ok = true;
  return res;
}

}  // namespace

int main() {
  print_banner("Anomaly-detector ingest throughput: streaming vs batch");
  std::printf("interleaved min-of-N wall time per path; verdicts must match "
              "event-for-event\n\n");

  TablePrinter table({"scale", "path", "wall s", "probes/s", "events",
                      "speedup"});
  // 9 interleaved reps on the gated row: the host this runs on shares its
  // cores, and min-of-N only converges on the true (noise-free) wall time
  // for both paths once N spans a few scheduler interference periods.
  const ScaleResult r10k = run_scale(10000, 120, 9, table);
  if (!r10k.ok) return 1;
  const ScaleResult r100k = run_scale(100000, 60, 3, table);
  if (!r100k.ok) return 1;
  std::printf("\n");
  table.print();

  const double speedup = r10k.t_batch / r10k.t_streaming;
  std::printf("\n10k-pair speedup: %.2fx (gate: >= 10x)\n", speedup);
  if (speedup < 10.0) {
    std::printf("FATAL: speedup %.2fx below the 10x requirement\n", speedup);
    return 1;
  }

  // Part 2: mid-stream snapshot/restore must continue bit-identically,
  // with pair handles surviving the round-trip.
  print_banner("Snapshot round-trip identity (streaming, 10k pairs)");
  {
    constexpr std::size_t kPairs = 10000, kRounds = 120, kCut = kRounds / 2;
    const auto stream = make_stream(kPairs, kRounds);
    DetectorConfig cfg;
    cfg.streaming = true;
    cfg.expected_pairs = kPairs;
    AnomalyDetector det(cfg);
    std::vector<AnomalyDetector::PairHandle> handles(kPairs);
    for (std::size_t p = 0; p < kPairs; ++p) {
      handles[p] = det.handle_of(pair_of(p, kPairs));
    }
    std::vector<AnomalyEvent> pre;
    auto feed = [&](AnomalyDetector& d,
                    const std::vector<AnomalyDetector::PairHandle>& hs,
                    std::size_t from, std::size_t to,
                    std::vector<AnomalyEvent>& ev) {
      for (std::size_t r = from; r < to; ++r) {
        const SimTime t =
            SimTime::seconds(static_cast<double>(r) * kIntervalS);
        const float* row = stream.data() + r * kPairs;
        for (std::size_t p = 0; p < kPairs; ++p) {
          const float v = row[p];
          (void)d.ingest(hs[p], t, v >= 0.0F,
                         v >= 0.0F ? static_cast<double>(v) : 0.0, ev);
        }
      }
    };
    feed(det, handles, 0, kCut, pre);
    const auto snap = det.snapshot();

    AnomalyDetector restored(cfg);
    restored.restore(snap);
    // Handle stability across the round-trip: the restored table must map
    // every pair to the id the live detector allocated.
    for (std::size_t p = 0; p < kPairs; p += 997) {
      if (restored.handle_of(pair_of(p, kPairs)) != handles[p]) {
        std::printf("FATAL: pair %zu changed handle across restore\n", p);
        return 1;
      }
    }
    std::vector<AnomalyEvent> tail_live, tail_restored;
    feed(det, handles, kCut, kRounds, tail_live);
    feed(restored, handles, kCut, kRounds, tail_restored);
    const auto end =
        SimTime::seconds(static_cast<double>(kRounds) * kIntervalS);
    const auto fl = det.flush(end);
    const auto fr = restored.flush(end);
    tail_live.insert(tail_live.end(), fl.begin(), fl.end());
    tail_restored.insert(tail_restored.end(), fr.begin(), fr.end());
    if (!identical_events(tail_live, tail_restored)) {
      std::printf("FATAL: restored detector diverged from the live one\n");
      return 1;
    }
    std::printf("restored at round %zu: %zu post-cut events bit-identical, "
                "handles stable\n", kCut, tail_live.size());
  }

  // Part 3: end-to-end campaign verdicts must be bit-identical — across
  // detector paths, and across runner thread counts on the streaming path.
  print_banner("Campaign verdict identity (streaming vs batch)");
  runner::CampaignConfig cc;
  cc.topology.num_hosts = 16;
  cc.topology.rails_per_host = 4;
  cc.topology.hosts_per_segment = 8;
  cc.hunter.probe_interval = SimTime::seconds(5);
  cc.hunter.inference.candidate_dp = {2};
  cc.tasks = {{4, 4, 2, 2}, {4, 4, 4, 1}};
  cc.visible_faults = 4;
  cc.invisible_faults = 1;
  cc.phantom_agents = 0;
  cc.fault_gap = SimTime::minutes(8);
  cc.fault_duration = SimTime::minutes(4);
  cc.drain = SimTime::minutes(10);

  const std::vector<std::uint64_t> seeds{0x5eedULL, 0xbeefULL, 0xf00dULL};
  TablePrinter ct({"seed", "cases", "precision", "recall", "identical"});
  for (const std::uint64_t seed : seeds) {
    cc.hunter.detector.streaming = true;
    const auto s = runner::run_campaign(cc, seed);
    cc.hunter.detector.streaming = false;
    const auto b = runner::run_campaign(cc, seed);
    const bool same = s.score == b.score &&
                      s.failure_cases == b.failure_cases &&
                      s.probes_sent == b.probes_sent;
    ct.add_row({std::to_string(seed), std::to_string(s.failure_cases),
                TablePrinter::num(100 * s.score.precision(), 1) + "%",
                TablePrinter::num(100 * s.score.recall(), 1) + "%",
                same ? "yes" : "NO (BUG)"});
    if (!same) {
      std::printf("FATAL: campaign verdicts differ at seed %llu\n",
                  static_cast<unsigned long long>(seed));
      return 1;
    }
  }
  ct.print();
  std::printf("\ncampaign verdicts bit-identical across detector paths\n");

  cc.hunter.detector.streaming = true;
  const auto one = runner::run_many(cc, seeds, 1);
  for (const std::size_t n : {std::size_t{4}, std::size_t{16}}) {
    const auto many = runner::run_many(cc, seeds, n);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      if (!(one.runs[i].score == many.runs[i].score) ||
          one.runs[i].failure_cases != many.runs[i].failure_cases ||
          one.runs[i].probes_sent != many.runs[i].probes_sent) {
        std::printf("FATAL: streaming campaign differs at %zu threads, "
                    "seed %llu\n", n,
                    static_cast<unsigned long long>(seeds[i]));
        return 1;
      }
    }
  }
  std::printf("streaming campaigns bit-identical across 1/4/16 runner "
              "threads\n");
  return 0;
}
