// Streaming anomaly hot path vs the batch reference at fleet scale.
//
// Part 1 replays one pre-generated 10k-pair probe stream through both
// detector compute paths. The batch path goes through the per-call
// ProbeResult API it shipped with: a pair hash per probe, retained sample
// vectors copied and sorted at every window close, and the LOF look-back
// refit from scratch each time. The streaming path uses pre-resolved pair
// handles, incremental window summaries, and the resident StreamingLof
// model. The PR bar: >= 5x probe ingest throughput, with verdicts that
// match event-for-event (pair, kind, timestamp).
//
// Part 2 re-runs fault-injection campaigns with each path and requires
// bit-identical CampaignScores — the end-to-end guarantee that the hot
// path changed nothing about what the system reports.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "core/anomaly.h"
#include "core/metrics.h"
#include "runner/campaign_runner.h"

using namespace skh;
using namespace skh::core;

namespace {

constexpr std::size_t kPairs = 10000;
constexpr std::size_t kRounds = 120;    // 10 min of probing...
constexpr double kIntervalS = 5.0;      // ...at the campaign probe interval

EndpointPair pair_of(std::size_t p) {
  const auto i = static_cast<std::uint32_t>(p);
  const auto j = static_cast<std::uint32_t>(p + kPairs);
  return {{ContainerId{i}, RnicId{i}}, {ContainerId{j}, RnicId{j}}};
}

/// rtt in microseconds, negative = probe lost. Round-major (every pair is
/// probed each round), with a latency-spike cohort and a loss cohort (each
/// active for a quarter of the run) so both window rules actually fire.
std::vector<float> make_stream() {
  std::vector<float> s(kRounds * kPairs);
  RngStream rng{99};
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t p = 0; p < kPairs; ++p) {
      double rtt = 16.0 * std::exp(rng.normal(0.0, 0.05));
      if (p % 977 == 3 && r >= kRounds / 2 && r < 3 * kRounds / 4) rtt *= 2.5;
      const bool lost = p % 1013 == 7 && r >= kRounds / 4 &&
                        r < kRounds / 2 && rng.uniform() < 0.3;
      s[r * kPairs + p] = lost ? -1.0F : static_cast<float>(rtt);
    }
  }
  return s;
}

double run_streaming(const std::vector<float>& stream,
                     std::vector<AnomalyEvent>& events,
                     DetectorCounters& counters) {
  DetectorConfig cfg;
  cfg.streaming = true;
  AnomalyDetector det(cfg);
  std::vector<AnomalyDetector::PairHandle> handles(kPairs);
  for (std::size_t p = 0; p < kPairs; ++p) handles[p] = det.handle_of(pair_of(p));
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kRounds; ++r) {
    const SimTime t = SimTime::seconds(static_cast<double>(r) * kIntervalS);
    const float* row = stream.data() + r * kPairs;
    for (std::size_t p = 0; p < kPairs; ++p) {
      const float v = row[p];
      (void)det.ingest(handles[p], t, v >= 0.0F,
                       v >= 0.0F ? static_cast<double>(v) : 0.0, events);
    }
  }
  const auto tail =
      det.flush(SimTime::seconds(static_cast<double>(kRounds) * kIntervalS));
  const auto t1 = std::chrono::steady_clock::now();
  events.insert(events.end(), tail.begin(), tail.end());
  counters = det.counters();
  return std::chrono::duration<double>(t1 - t0).count();
}

double run_batch(const std::vector<float>& stream,
                 std::vector<AnomalyEvent>& events,
                 DetectorCounters& counters) {
  DetectorConfig cfg;
  cfg.streaming = false;
  AnomalyDetector det(cfg);
  std::vector<EndpointPair> pairs(kPairs);
  for (std::size_t p = 0; p < kPairs; ++p) pairs[p] = pair_of(p);
  const auto t0 = std::chrono::steady_clock::now();
  probe::ProbeResult pr;
  for (std::size_t r = 0; r < kRounds; ++r) {
    pr.sent_at = SimTime::seconds(static_cast<double>(r) * kIntervalS);
    const float* row = stream.data() + r * kPairs;
    for (std::size_t p = 0; p < kPairs; ++p) {
      const float v = row[p];
      pr.pair = pairs[p];
      pr.delivered = v >= 0.0F;
      pr.rtt_us = v >= 0.0F ? static_cast<double>(v) : 0.0;
      const auto fired = det.ingest(pr);
      events.insert(events.end(), fired.begin(), fired.end());
    }
  }
  const auto tail =
      det.flush(SimTime::seconds(static_cast<double>(kRounds) * kIntervalS));
  const auto t1 = std::chrono::steady_clock::now();
  events.insert(events.end(), tail.begin(), tail.end());
  counters = det.counters();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool same_verdicts(const std::vector<AnomalyEvent>& a,
                   const std::vector<AnomalyEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].pair == b[i].pair) || a[i].kind != b[i].kind ||
        a[i].detected_at.raw_nanos() != b[i].detected_at.raw_nanos()) {
      return false;
    }
    const double tol = 1e-6 * std::max(1.0, std::abs(b[i].score));
    if (std::abs(a[i].score - b[i].score) > tol) return false;
  }
  return true;
}

}  // namespace

int main() {
  print_banner("Anomaly-detector ingest throughput: streaming vs batch");

  std::printf("%zu pairs x %zu rounds (%.0f s at %.0f s interval), "
              "%zu probes per path\n\n",
              kPairs, kRounds, kRounds * kIntervalS, kIntervalS,
              kPairs * kRounds);
  const auto stream = make_stream();
  const auto probes = static_cast<double>(stream.size());

  // Each path replays the stream several times and reports its best wall
  // time: both replays are deterministic (identical events every rep), so
  // min-of-N measures the path's throughput capacity rather than whatever
  // the scheduler did to one run (observed run-to-run swing: ~20%).
  constexpr int kReps = 5;
  std::vector<AnomalyEvent> batch_events, streaming_events;
  DetectorCounters bc, sc;
  double t_batch = run_batch(stream, batch_events, bc);
  double t_streaming = run_streaming(stream, streaming_events, sc);
  for (int rep = 1; rep < kReps; ++rep) {
    std::vector<AnomalyEvent> ev;
    DetectorCounters c;
    t_batch = std::min(t_batch, run_batch(stream, ev, c));
    ev.clear();
    t_streaming = std::min(t_streaming, run_streaming(stream, ev, c));
  }
  const double speedup = t_batch / t_streaming;

  TablePrinter table({"path", "wall s", "probes/s", "events"});
  table.add_row({"batch (reference)", TablePrinter::num(t_batch, 3),
                 TablePrinter::num(probes / t_batch / 1e6, 2) + "M",
                 std::to_string(batch_events.size())});
  table.add_row({"streaming", TablePrinter::num(t_streaming, 3),
                 TablePrinter::num(probes / t_streaming / 1e6, 2) + "M",
                 std::to_string(streaming_events.size())});
  table.print();
  std::printf("\nspeedup: %.2fx   lof fast-path ratio: %.3f "
              "(%llu fast / %llu fallback)\n",
              speedup, lof_fast_path_ratio(sc),
              static_cast<unsigned long long>(sc.lof_fast_path),
              static_cast<unsigned long long>(sc.lof_fallback));

  if (!same_verdicts(streaming_events, batch_events)) {
    std::printf("FATAL: streaming and batch verdicts differ\n");
    return 1;
  }
  std::printf("verdicts: identical (%zu events, all kinds/pairs/timestamps"
              " match)\n", streaming_events.size());
  if (bc.short_windows_closed != sc.short_windows_closed ||
      bc.samples_delivered != sc.samples_delivered) {
    std::printf("FATAL: window accounting differs between paths\n");
    return 1;
  }
  if (speedup < 5.0) {
    std::printf("FATAL: speedup %.2fx below the 5x requirement\n", speedup);
    return 1;
  }

  // Part 2: end-to-end campaign verdicts must be bit-identical.
  print_banner("Campaign verdict identity (streaming vs batch)");
  runner::CampaignConfig cc;
  cc.topology.num_hosts = 16;
  cc.topology.rails_per_host = 4;
  cc.topology.hosts_per_segment = 8;
  cc.hunter.probe_interval = SimTime::seconds(5);
  cc.hunter.inference.candidate_dp = {2};
  cc.tasks = {{4, 4, 2, 2}, {4, 4, 4, 1}};
  cc.visible_faults = 4;
  cc.invisible_faults = 1;
  cc.phantom_agents = 0;
  cc.fault_gap = SimTime::minutes(8);
  cc.fault_duration = SimTime::minutes(4);
  cc.drain = SimTime::minutes(10);

  TablePrinter ct({"seed", "cases", "precision", "recall", "identical"});
  for (const std::uint64_t seed : {0x5eedULL, 0xbeefULL, 0xf00dULL}) {
    cc.hunter.detector.streaming = true;
    const auto s = runner::run_campaign(cc, seed);
    cc.hunter.detector.streaming = false;
    const auto b = runner::run_campaign(cc, seed);
    const bool same = s.score == b.score &&
                      s.failure_cases == b.failure_cases &&
                      s.probes_sent == b.probes_sent;
    ct.add_row({std::to_string(seed), std::to_string(s.failure_cases),
                TablePrinter::num(100 * s.score.precision(), 1) + "%",
                TablePrinter::num(100 * s.score.recall(), 1) + "%",
                same ? "yes" : "NO (BUG)"});
    if (!same) {
      std::printf("FATAL: campaign verdicts differ at seed %llu\n",
                  static_cast<unsigned long long>(seed));
      return 1;
    }
  }
  ct.print();
  std::printf("\ncampaign verdicts bit-identical across detector paths\n");
  return 0;
}
