// Table 1: the 19 production issue types (plus the intra-host NVLink class
// of §7.3). Each issue is injected into a fresh deployment; we report
// whether SkeletonHunter detects it, which method localizes it, and whether
// the verdict names the injected component.
#include <cstdio>
#include <string>

#include "common/table.h"
#include "core/harness.h"
#include "core/metrics.h"

using namespace skh;
using namespace skh::core;

namespace {

/// Pick the concrete component instance for an issue type and apply any
/// overlay/orchestrator side-effects its mechanism implies.
sim::ComponentRef target_for(Experiment& exp, sim::IssueType type,
                             TaskId /*task*/, const Endpoint& victim,
                             SimTime start, SimTime end) {
  auto& topo = exp.topology();
  switch (sim::issue_info(type).target_kind) {
    case sim::ComponentKind::kPhysicalLink:
      return {sim::ComponentKind::kPhysicalLink,
              topo.uplink_of(victim.rnic).value()};
    case sim::ComponentKind::kPhysicalSwitch: {
      const auto seg = topo.segment_of(topo.host_of(victim.rnic));
      return {sim::ComponentKind::kPhysicalSwitch,
              topo.tor_at(seg, topo.rail_of(victim.rnic)).value()};
    }
    case sim::ComponentKind::kRnic:
      if (type == sim::IssueType::kOffloadingFailure) {
        // Mechanism: the offloaded flow tables desynchronize (Fig. 18).
        exp.events().schedule_at(start, [&exp, victim] {
          exp.overlay().invalidate_offload(victim.rnic);
        });
        exp.events().schedule_at(end, [&exp, victim] {
          exp.overlay().resync_offload(victim.rnic);
        });
      }
      return {sim::ComponentKind::kRnic, victim.rnic.value()};
    case sim::ComponentKind::kVSwitch:
      if (type == sim::IssueType::kRepetitiveFlowOffloading) {
        // OVS keeps invalidating the offloaded flows: the observable
        // artifact is the RNIC flow-table inconsistency (Fig. 18), but the
        // culprit component is the virtual switch.
        exp.events().schedule_at(start, [&exp, victim] {
          exp.overlay().invalidate_offload(victim.rnic);
        });
        exp.events().schedule_at(end, [&exp, victim] {
          exp.overlay().resync_offload(victim.rnic);
        });
      }
      return {sim::ComponentKind::kVSwitch,
              topo.host_of(victim.rnic).value()};
    case sim::ComponentKind::kContainer:
      exp.events().schedule_at(start, [&exp, victim] {
        exp.orchestrator().crash_container(victim.container);
      });
      return {sim::ComponentKind::kContainer, victim.container.value()};
    case sim::ComponentKind::kHost:
    default:
      return {sim::ComponentKind::kHost, topo.host_of(victim.rnic).value()};
  }
}

}  // namespace

int main() {
  print_banner("Table 1: network issues detected by SkeletonHunter");
  TablePrinter table({"#", "issue", "component", "symptom", "detected",
                      "method", "verdict-correct", "latency(s)"});

  for (const auto& info : sim::all_issue_infos()) {
    ExperimentConfig cfg;
    cfg.topology.num_hosts = 16;
    cfg.topology.rails_per_host = 8;
    cfg.topology.hosts_per_segment = 8;
    cfg.hunter.inference.candidate_dp = {2, 4, 8};
    cfg.seed = 1000 + static_cast<std::uint64_t>(info.type);
    Experiment exp(cfg);

    cluster::TaskRequest req;
    req.num_containers = 4;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(12);
    const auto task = exp.launch_task(req);
    if (!task) continue;
    exp.run_to_running(*task);
    workload::ParallelismConfig par;
    par.tp = 8;
    par.pp = 2;
    par.dp = 2;
    (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

    // Victim endpoint 9: container 1, rail 1 (off the reference corner).
    const auto victim = exp.orchestrator().endpoints_of_task(*task)[9];
    const SimTime start = exp.events().now() + SimTime::minutes(3);
    const SimTime end = start + SimTime::minutes(10);
    const auto target = target_for(exp, info.type, *task, victim, start, end);
    // Container crashes get an effect-free record (the orchestrator crash
    // carries the mechanism); everything else uses the default effect.
    if (info.type == sim::IssueType::kContainerCrash ||
        info.type == sim::IssueType::kRepetitiveFlowOffloading ||
        info.type == sim::IssueType::kOffloadingFailure) {
      exp.faults().inject(info.type, target, start, end, sim::FaultEffect{});
    } else {
      exp.faults().inject(info.type, target, start, end);
    }

    exp.hunter().start(exp.events().now() + SimTime::minutes(25));
    exp.events().run_all();
    exp.hunter().finalize();

    const auto score =
        score_campaign(exp.hunter().failure_cases(), exp.faults(),
                       exp.topology());
    std::string method = "-";
    for (const auto& c : exp.hunter().failure_cases()) {
      if (c.localization.found()) {
        method = std::string(to_string(c.localization.method));
        break;
      }
    }
    const bool visible = info.probe_visible;
    table.add_row(
        {std::to_string(static_cast<int>(info.type)),
         std::string(sim::to_string(info.type)),
         std::string(sim::to_string(info.component_class)),
         std::string(sim::to_string(info.symptom)),
         score.detected_true > 0 ? "yes" : (visible ? "NO" : "no (expected)"),
         method,
         score.localized_total > 0
             ? (score.localized_correct == score.localized_total ? "yes"
                                                                 : "NO")
             : "-",
         score.detected_true > 0
             ? TablePrinter::num(score.mean_detection_latency_s, 0)
             : "-"});
  }
  table.print();
  std::printf("\npaper: all 19 production issue types are detectable;"
              " intra-host NVLink issues (row 20) are the expected"
              " false negatives of Section 7.3\n");
  return 0;
}
