// Figure 13: frequency-domain (STFT) features of burst cycles.
//
// RNICs A and B hold the same position across different DP replicas and
// share STFT features; C and D hold a different position and share a
// different feature class. Cross-class similarity is visibly lower.
#include <cstdio>

#include "common/table.h"
#include "dsp/stft.h"
#include "workload/traffic.h"

using namespace skh;
using namespace skh::workload;

int main() {
  print_banner("Figure 13: STFT features of two kinds of burst cycles");
  ParallelismConfig par;
  par.tp = 4;
  par.pp = 4;
  par.dp = 4;
  BurstConfig bcfg;
  RngStream rng{13};

  auto series_of = [&](std::uint32_t dp, std::uint32_t stage,
                       std::uint32_t rail, std::uint64_t seed) {
    EndpointRole role;
    role.dp_rank = dp;
    role.stage = stage;
    role.rail = rail;
    RngStream sub = rng.fork(seed);
    return burst_series(role, par, bcfg, sub);
  };
  // A, B: same position (stage 1, rail 0) in different DP replicas.
  // C, D: a different position (stage 3, rail 2).
  const auto a = dsp::stft_feature(series_of(0, 1, 0, 1));
  const auto b = dsp::stft_feature(series_of(1, 1, 0, 2));
  const auto c = dsp::stft_feature(series_of(0, 3, 2, 3));
  const auto d = dsp::stft_feature(series_of(2, 3, 2, 4));

  TablePrinter table({"pair", "cosine-similarity", "relationship"});
  table.add_row({"A-B", TablePrinter::num(dsp::cosine_similarity(a, b), 4),
                 "same position (expect high)"});
  table.add_row({"C-D", TablePrinter::num(dsp::cosine_similarity(c, d), 4),
                 "same position (expect high)"});
  table.add_row({"A-C", TablePrinter::num(dsp::cosine_similarity(a, c), 4),
                 "different positions (expect lower)"});
  table.add_row({"B-D", TablePrinter::num(dsp::cosine_similarity(b, d), 4),
                 "different positions (expect lower)"});
  table.print();

  // Dominant non-DC frequency bins per class.
  auto top_bins = [](const std::vector<double>& f) {
    std::size_t best = 1;
    for (std::size_t k = 2; k < f.size(); ++k) {
      if (f[k] > f[best]) best = k;
    }
    return best;
  };
  std::printf("\ndominant STFT bin: A=%zu B=%zu C=%zu D=%zu"
              " (paper: A,B share components; C,D share different ones)\n",
              top_bins(a), top_bins(b), top_bins(c), top_bins(d));
  return 0;
}
