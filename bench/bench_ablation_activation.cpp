// Ablation: registration-based incremental ping-list activation (§5.1,
// initialization phase) vs naive immediate activation.
//
// With gating off, agents probe peers that have not finished starting —
// the false alarms the paper's incremental activation exists to prevent.
#include <cstdio>

#include "common/table.h"
#include "core/harness.h"
#include "core/metrics.h"

using namespace skh;
using namespace skh::core;

namespace {

struct Outcome {
  std::size_t cases;
  std::size_t pairs;
  double precision;
};

Outcome run(bool incremental, std::uint32_t containers) {
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 64;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 16;
  cfg.hunter.incremental_activation = incremental;
  cfg.hunter.probe_interval = SimTime::seconds(3);
  cfg.seed = 555;
  Experiment exp(cfg);

  cluster::TaskRequest req;
  req.num_containers = containers;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(2);
  const auto task = exp.launch_task(req);
  if (!task) return {0, 0, 1.0};
  // Probing starts immediately — racing startup, which is the point.
  exp.hunter().start(SimTime::minutes(14));
  exp.events().run_all();
  exp.hunter().finalize();
  const auto score = score_campaign(exp.hunter().failure_cases(),
                                    exp.faults(), exp.topology());
  std::size_t pairs = 0;
  for (const auto& c : exp.hunter().failure_cases()) pairs += c.pairs.size();
  return {score.cases_total, pairs, score.precision()};
}

}  // namespace

int main() {
  print_banner("Ablation: incremental ping-list activation");
  TablePrinter table({"task size", "activation", "false cases",
                      "pairs flagged", "precision"});
  for (std::uint32_t containers : {8u, 16u, 32u, 64u}) {
    const auto gated = run(true, containers);
    const auto naive = run(false, containers);
    table.add_row({std::to_string(containers), "registration-gated",
                   std::to_string(gated.cases), std::to_string(gated.pairs),
                   TablePrinter::pct(gated.precision)});
    table.add_row({std::to_string(containers), "naive (ablation)",
                   std::to_string(naive.cases), std::to_string(naive.pairs),
                   TablePrinter::pct(naive.precision)});
  }
  table.print();
  std::printf("\nno faults are injected: every case is a startup-race false"
              " alarm; gating should keep the count at zero\n");
  return 0;
}
