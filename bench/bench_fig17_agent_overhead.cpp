// Figure 17: agent CPU and memory over a container's lifetime converge to
// ~1% of a core and ~35 MB.
#include <cstdio>

#include "common/table.h"
#include "probe/overhead.h"

using namespace skh;
using namespace skh::probe;

int main() {
  print_banner("Figure 17: resource consumption of the agent");
  AgentOverheadModel model;
  // A typical skeleton-optimized agent holds a few dozen active targets.
  constexpr std::size_t kTargets = 30;

  TablePrinter table({"t(min)", "cpu(%)", "memory(MB)"});
  for (double minutes : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 90.0}) {
    const auto s = model.sample(SimTime::minutes(minutes), kTargets);
    table.add_row({TablePrinter::num(minutes, 1),
                   TablePrinter::num(s.cpu_percent, 2),
                   TablePrinter::num(s.memory_mb, 1)});
  }
  table.print();
  const auto steady = model.sample(SimTime::hours(3), kTargets);
  std::printf("\nsteady state: %.2f%% CPU, %.1f MB"
              " (paper: converges to ~1%% and ~35 MB)\n",
              steady.cpu_percent, steady.memory_mb);
  return 0;
}
