// Figure 5: distribution of the number of RNICs allocated per container.
//
// Paper shape: the vast majority bind 8 RNICs, a nontrivial portion 4.
#include <cstdio>
#include <map>

#include "cluster/traces.h"
#include "common/table.h"

using namespace skh;

int main() {
  print_banner("Figure 5: #RNICs allocated to each container");
  RngStream rng{5};
  constexpr int kContainers = 200000;
  std::map<std::uint32_t, int> hist;
  for (int i = 0; i < kContainers; ++i) {
    ++hist[cluster::sample_rnics_per_container(rng)];
  }
  TablePrinter table({"rnics-per-container", "fraction"});
  for (const auto& [n, count] : hist) {
    table.add_row({std::to_string(n),
                   TablePrinter::pct(static_cast<double>(count) /
                                     kContainers)});
  }
  table.print();
  std::printf("\npaper: 8-RNIC containers dominate, 4-RNIC nontrivial\n");
  return 0;
}
