// Figure 12: number of GPUs requested per training job.
//
// Paper shape: confined to multiples of eight, with 128/512/1024 popular —
// users shape requests as TP x PP x DP.
#include <cstdio>
#include <map>

#include "cluster/traces.h"
#include "common/table.h"

using namespace skh;

int main() {
  print_banner("Figure 12: #GPUs per training job");
  RngStream rng{12};
  constexpr int kJobs = 200000;
  std::map<std::uint32_t, int> hist;
  for (int i = 0; i < kJobs; ++i) ++hist[cluster::sample_task_gpus(rng)];

  TablePrinter table({"gpus", "fraction", "multiple-of-8"});
  for (const auto& [n, count] : hist) {
    table.add_row({std::to_string(n),
                   TablePrinter::pct(static_cast<double>(count) / kJobs),
                   n % 8 == 0 ? "yes" : "NO"});
  }
  table.print();
  return 0;
}
