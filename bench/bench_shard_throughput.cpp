// Sharded analyzer ingest throughput at the 100k-pair analyzer scale.
//
// Replays the same synthetic probe campaign — 100k pairs, one batch per
// probing round, loss bursts and RTT shifts on a deterministic subset —
// through ShardedDetector at 1, 4, and 16 shards, and reports probes/s
// for each. Numbers are REPORT-ONLY: the speedup depends on the host's
// core count (a single-core CI box will show ~1x and that is fine). What
// is enforced is the identity contract the sharding is built on: every
// shard count must emit the bit-identical event stream, fingerprinted
// per round and checked at the end. The byte-for-byte campaign-level
// version of that check lives in ctest as shard.identity_gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/pool.h"
#include "common/rng.h"
#include "core/sharded_detector.h"

using namespace skh;
using namespace skh::core;

namespace {

constexpr std::size_t kPairs = 100000;
constexpr std::size_t kRounds = 100;
constexpr double kIntervalS = 5.0;

EndpointPair pair_of(std::size_t p) {
  const auto i = static_cast<std::uint32_t>(p);
  const auto j = static_cast<std::uint32_t>(p + kPairs);
  return {{ContainerId{i}, RnicId{i}}, {ContainerId{j}, RnicId{j}}};
}

/// Deterministic per-(pair, round) observation — a pure function, so every
/// shard configuration replays literally the same campaign.
void observe(std::size_t p, std::size_t round, bool& delivered,
             double& rtt_us) {
  const std::uint64_t h = seed_mix(p * 1315423911ULL + round, 0xB16B00B5ULL);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const bool lossy = p % 97 == 0 && round > kRounds / 2;
  const bool shifted = p % 89 == 0 && round > kRounds / 2;
  delivered = u >= (lossy ? 0.45 : 0.002);
  const double base = shifted ? 34.0 : 18.0;
  rtt_us = base + 4.0 * static_cast<double>((h >> 3) & 0xff) / 255.0;
}

struct RunStats {
  double probes_per_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
};

std::uint64_t mix_event(std::uint64_t fp, const AnomalyEvent& e) {
  fp = seed_mix(fp, static_cast<std::uint64_t>(e.detected_at.raw_nanos()));
  fp = seed_mix(fp, (static_cast<std::uint64_t>(e.pair.src.rnic.value())
                     << 32) |
                        e.pair.dst.rnic.value());
  fp = seed_mix(fp, static_cast<std::uint64_t>(e.kind));
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof e.score);
  __builtin_memcpy(&bits, &e.score, sizeof bits);
  return seed_mix(fp, bits);
}

RunStats run(std::size_t shards) {
  DetectorConfig cfg;
  cfg.expected_pairs = kPairs;
  const std::size_t workers = std::min<std::size_t>(
      shards, std::max(1u, std::thread::hardware_concurrency()));
  common::ThreadPool pool(workers);
  ShardedDetector det(cfg, shards, shards > 1 ? &pool : nullptr);
  det.reserve_pairs(kPairs);

  std::vector<ShardedDetector::BatchItem> batch(kPairs);
  for (std::size_t p = 0; p < kPairs; ++p) {
    batch[p].handle = det.handle_of(pair_of(p));
  }
  std::vector<AnomalyEvent> events;
  std::vector<std::uint32_t> fired;

  RunStats stats;
  stats.fingerprint = 0x5348415244ULL;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < kRounds; ++round) {
    const SimTime now =
        SimTime::seconds(static_cast<std::int64_t>(round * kIntervalS));
    for (std::size_t p = 0; p < kPairs; ++p) {
      batch[p].seq = round;
      batch[p].sent_at = now;
      observe(p, round, batch[p].delivered, batch[p].rtt_us);
    }
    det.ingest_batch(batch, events, fired);
    stats.events += events.size();
    for (const auto& e : events) {
      stats.fingerprint = mix_event(stats.fingerprint, e);
    }
  }
  const auto tail = det.flush(
      SimTime::seconds(static_cast<std::int64_t>(kRounds * kIntervalS)));
  for (const auto& e : tail) stats.fingerprint = mix_event(stats.fingerprint, e);
  stats.events += tail.size();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  stats.probes_per_s =
      static_cast<double>(kPairs * kRounds) / std::max(dt.count(), 1e-9);
  return stats;
}

}  // namespace

int main() {
  std::printf("Sharded detector ingest, %zu pairs x %zu rounds "
              "(%u hardware threads)\n\n",
              kPairs, kRounds, std::thread::hardware_concurrency());
  std::printf("  %-8s %14s %10s %10s  %s\n", "shards", "probes/s", "events",
              "speedup", "fingerprint");
  RunStats base{};
  bool identical = true;
  for (const std::size_t shards : {1UL, 4UL, 16UL}) {
    const RunStats s = run(shards);
    if (shards == 1) base = s;
    identical = identical && s.fingerprint == base.fingerprint &&
                s.events == base.events;
    std::printf("  %-8zu %14.0f %10llu %9.2fx  %016llx\n", shards,
                s.probes_per_s, static_cast<unsigned long long>(s.events),
                s.probes_per_s / base.probes_per_s,
                static_cast<unsigned long long>(s.fingerprint));
  }
  std::printf("\nevent streams across shard counts: %s\n",
              identical ? "identical" : "DIVERGED");
  return identical ? 0 : 1;
}
