// Kernel micro-benchmarks (google-benchmark): the hot analysis paths that
// bound SkeletonHunter's 8-second average detection time — STFT feature
// extraction, constrained clustering, LOF scoring, and the log-normal
// Z-test.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dsp/fft.h"
#include "dsp/stft.h"
#include "dsp/wavelet.h"
#include "ml/clustering.h"
#include "ml/lof.h"
#include "ml/stats_tests.h"

namespace skh {
namespace {

std::vector<double> burst_like(std::size_t n, std::uint64_t seed) {
  RngStream rng{seed};
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = ((i % 30) > 24 ? 15.0 : 2.0) + rng.normal(0, 0.3);
  }
  return s;
}

void BM_FftReal(benchmark::State& state) {
  const auto sig = burst_like(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft_real(sig));
  }
}
BENCHMARK(BM_FftReal)->Arg(256)->Arg(1024)->Arg(4096);

void BM_StftFeature(benchmark::State& state) {
  const auto sig = burst_like(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::stft_feature(sig));
  }
}
BENCHMARK(BM_StftFeature)->Arg(900)->Arg(1800)->Arg(3600);

void BM_HaarFeature(benchmark::State& state) {
  const auto sig = burst_like(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::haar_feature(sig));
  }
}
BENCHMARK(BM_HaarFeature)->Arg(900)->Arg(3600);

void BM_ConstrainedClustering(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RngStream rng{4};
  ml::FeatureMatrix features;
  std::vector<std::size_t> host_of;
  const std::size_t groups = 8;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = i % groups;
    features.push_back({static_cast<double>(g) + rng.normal(0, 0.05),
                        static_cast<double>(g % 3) + rng.normal(0, 0.05)});
    host_of.push_back(i / groups);
  }
  ml::ConstrainedClusterConfig cfg;
  cfg.host_of = host_of;
  cfg.candidate_ks = {groups};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::constrained_cluster(features, cfg));
  }
}
BENCHMARK(BM_ConstrainedClustering)->Arg(64)->Arg(128)->Arg(256);

void BM_LofScore(benchmark::State& state) {
  RngStream rng{5};
  std::vector<std::vector<double>> lookback;
  for (int i = 0; i < 10; ++i) {
    std::vector<double> w(7);
    for (auto& x : w) x = 16.0 + rng.normal(0, 0.5);
    lookback.push_back(std::move(w));
  }
  const std::vector<double> query{15, 16, 17, 14, 16, 0.8, 19};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::lof_score_of(query, lookback, {3, 1.8}));
  }
}
BENCHMARK(BM_LofScore);

void BM_ZTest(benchmark::State& state) {
  RngStream rng{6};
  std::vector<double> baseline(static_cast<std::size_t>(state.range(0)));
  for (auto& x : baseline) x = rng.lognormal(std::log(16.0), 0.1);
  const auto model = ml::fit_lognormal(baseline);
  std::vector<double> window(baseline.size() / 2);
  for (auto& x : window) x = rng.lognormal(std::log(16.5), 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::z_test(model, window));
  }
}
BENCHMARK(BM_ZTest)->Arg(1800)->Arg(7200);

void BM_BestLag(benchmark::State& state) {
  const auto a = burst_like(900, 7);
  auto b = a;
  std::rotate(b.begin(), b.begin() + 9, b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::best_lag(a, b));
  }
}
BENCHMARK(BM_BestLag);

}  // namespace
}  // namespace skh

BENCHMARK_MAIN();
