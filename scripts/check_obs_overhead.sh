#!/usr/bin/env bash
# Observability overhead gate, wired into ctest as `obs.overhead_gate`.
#
# Runs bench_obs_overhead from an existing build tree (building it first if
# needed): the bench exits nonzero when idle instrumentation costs more
# than its tolerance, or when enabling metrics breaks the runner's
# thread-count invariance. CI hosts with noisy neighbours can widen the
# relative tolerance via SKH_OBS_OVERHEAD_TOL_PCT (default 1).
set -eu

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
bdir="${2:-$root/build}"

if [ ! -f "$bdir/CMakeCache.txt" ]; then
  cmake -S "$root" -B "$bdir" >/dev/null
fi
cmake --build "$bdir" --target bench_obs_overhead -j "$(nproc)" >/dev/null

"$bdir/bench/bench_obs_overhead"
