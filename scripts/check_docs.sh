#!/usr/bin/env bash
# Documentation rot check, wired into ctest as `docs.module_map`.
#
# Fails when a src/<subsystem>/ directory is missing from ARCHITECTURE.md's
# module map, or when a bench_* target is missing from README.md's
# figure-mapping table — so adding a subsystem or bench without documenting
# it breaks the default test run.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
arch="$root/ARCHITECTURE.md"
readme="$root/README.md"
status=0

if [[ ! -f "$arch" ]]; then
  echo "FAIL: $arch does not exist"
  exit 1
fi

for dir in "$root"/src/*/; do
  name="$(basename "$dir")"
  if ! grep -q "src/$name" "$arch"; then
    echo "FAIL: src/$name/ is missing from ARCHITECTURE.md's module map"
    status=1
  fi
done

# The ingest hot path's memory layout is a documented contract, not an
# implementation detail: the flat pair table must appear in the module
# map, and the layout section itself must exist (tests and benches pin
# behavior against it).
if ! grep -q "common/flat_table" "$arch"; then
  echo "FAIL: common/flat_table is missing from ARCHITECTURE.md's module map"
  status=1
fi
if ! grep -q "^## Memory layout & hot path" "$arch"; then
  echo "FAIL: ARCHITECTURE.md is missing the 'Memory layout & hot path' section"
  status=1
fi

# Sharding's identity contract is likewise documented, not incidental:
# the sharded detector must appear in the module map and the section
# describing the invariance mechanisms must exist (shard.identity_gate
# and the unit suites pin behavior against it).
if ! grep -q "core/sharded_detector" "$arch"; then
  echo "FAIL: core/sharded_detector is missing from ARCHITECTURE.md's module map"
  status=1
fi
if ! grep -q "^## Sharded analyzer" "$arch"; then
  echo "FAIL: ARCHITECTURE.md is missing the 'Sharded analyzer' section"
  status=1
fi

# The observability plane's contracts (recorder bounds, latency-stage
# definitions, exposition format) are documented sections, not folklore:
# tests/obs and the forensic/overhead gates pin behavior against them.
if ! grep -q "^### Flight recorder" "$arch"; then
  echo "FAIL: ARCHITECTURE.md is missing the 'Flight recorder' section"
  status=1
fi
if ! grep -q "^### Ingest-to-verdict latency plane" "$arch"; then
  echo "FAIL: ARCHITECTURE.md is missing the 'Ingest-to-verdict latency plane' section"
  status=1
fi
if ! grep -q "^### Exposition format" "$arch"; then
  echo "FAIL: ARCHITECTURE.md is missing the 'Exposition format' section"
  status=1
fi
if ! grep -q "obs/pull_server\|metrics_server" "$arch" || \
   ! grep -q "latency.ingest_to_verdict_s" "$arch"; then
  echo "FAIL: ARCHITECTURE.md's Observability section lost the endpoint or latency-metric names"
  status=1
fi

# Routing and path diversity are documented contracts as well: the routing
# modes, the path-id stability rule, and the per-path detection/voting
# chain live in a section the spray suites and spray.localization_gate pin
# behavior against — as does the drill's writeup in EXPERIMENTS.md.
if ! grep -q "^## Routing & path diversity" "$arch"; then
  echo "FAIL: ARCHITECTURE.md is missing the 'Routing & path diversity' section"
  status=1
fi
experiments="$root/EXPERIMENTS.md"
if [[ ! -f "$experiments" ]]; then
  echo "FAIL: $experiments does not exist"
  status=1
else
  if ! grep -q "^## Path-blindness drill" "$experiments" || \
     ! grep -q "spray.localization_gate" "$experiments"; then
    echo "FAIL: EXPERIMENTS.md is missing the path-blindness (spray) drill section"
    status=1
  fi
  if ! grep -q "^## Network-silent hang drill" "$experiments" || \
     ! grep -q "collective.silent_hang_gate" "$experiments"; then
    echo "FAIL: EXPERIMENTS.md is missing the network-silent hang drill section"
    status=1
  fi
fi

# The second signal plane is a documented contract too: the step-trace
# generator must appear in the module map and the section covering the
# hang/slow verdicts and cross-plane corroboration must exist (the
# collective.* gates and tests/collective pin behavior against it).
if ! grep -q "workload/collective_trace" "$arch"; then
  echo "FAIL: workload/collective_trace is missing from ARCHITECTURE.md's module map"
  status=1
fi
if ! grep -q "^## Collective signal plane" "$arch"; then
  echo "FAIL: ARCHITECTURE.md is missing the 'Collective signal plane' section"
  status=1
fi

if [[ -f "$readme" ]]; then
  for src in "$root"/bench/bench_*.cpp; do
    [[ -f "$src" ]] || continue  # unexpanded glob: no bench sources
    target="$(basename "$src" .cpp)"
    if ! grep -q "$target" "$readme"; then
      echo "FAIL: bench target $target is missing from README.md"
      status=1
    fi
  done
else
  echo "FAIL: $readme does not exist"
  status=1
fi

if [[ $status -eq 0 ]]; then
  echo "OK: every src/ subsystem is in ARCHITECTURE.md and every bench is in README.md"
fi
exit $status
