#!/usr/bin/env bash
# AddressSanitizer + UBSan gate, wired into ctest as `sanitize.asan_ubsan`.
#
# Configures a separate sub-build with SKH_SANITIZE=ON and replays the
# memory-heaviest suites: common (window accumulators, the lock-protected
# log sink, and the FlatPairTable differential fuzz — 20k mixed ops
# crossing grow/purge rebuilds, tombstone probe chains, and id recycling
# under ASan), ml (the LOF point ring and the lazily materialized
# distance-matrix scratch), core (the detector hot path with its
# flattened pair storage and reused buffers,
# the churn degrade/re-infer lifecycle, the traceroute-refinement
# partial-result edge cases in test_localize, the gray-telemetry defense
# paths in test_anomaly, the pair retire/revive/recycle churn paths, and
# the detector/hunter snapshot round-trips, and the sharded-detector
# batch partition/merge, pair migration, and snapshot paths in
# test_sharded_detector),
# obs (per-thread shard cells — including the bound-cell
# pointer-stability and registration-token regression tests — the trace
# ring, the flight recorder's per-pair window rings under wrap and slot
# recycling in test_recorder, the exposition renderer plus the pull
# server's socket/buffer handling in test_exposition, and the forensic
# bundle builder's string assembly over a full drilled experiment in
# test_forensic_bundle), sim (churn plans and
# fault/telemetry episode windows), cluster (the restart/migrate/crash
# deregistration paths), and probe (per-target retry/backoff state plus
# the telemetry channel's drop/dup/reorder/skew buffer juggling in
# test_telemetry), and topo (the equal-cost path enumeration, the
# route_via/static_path_id stability contract, the dense switch-link
# adjacency map, and the 4k-pair ECMP balance sweep in test_topology —
# the routing surface the spray/path-diversity suites lean on),
# workload (the collective step-trace generator's per-iteration schedule
# buffers and the layout/traffic pair generation), and collective (the
# diagnoser's reused per-group scratch vectors — durations, ratio and
# seen arrays, the pending batch slice — exercised across hang latch,
# strike, and reset/copy paths in test_diag). Any
# sanitizer report aborts the binary (-fno-sanitize-recover=all), so a
# clean exit means clean runs.
set -eu

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
bdir="${2:-$root/build-asan}"

suites="test_common test_ml test_core test_obs test_sim test_cluster test_probe test_topo test_workload test_collective"

cmake -S "$root" -B "$bdir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSKH_SANITIZE=ON >/dev/null
# shellcheck disable=SC2086  # word-splitting the target list is the point
cmake --build "$bdir" --target $suites -j "$(nproc)" >/dev/null
for t in $suites; do
  "$bdir/tests/$t" --gtest_brief=1
done
echo "OK: ASan/UBSan clean on $suites"
