#!/usr/bin/env bash
# Package the observability plane's headline bench numbers as JSON.
#
# Runs bench_verdict_latency (build it first: `cmake --build build
# --target bench_verdict_latency`) and extracts its greppable summary
# lines into BENCH_obs.json:
#
#   p99_ingest_to_verdict_s  — end-to-end p99 sim-time latency from the
#                              first anomalous window opening to a
#                              localized verdict
#   verdicts                 — observations behind that quantile
#   recorder_overhead_pct    — wall-clock cost of the flight recorder
#                              (on vs off, interleaved best-of-3)
#
# Usage: scripts/bench_to_json.sh [build_dir] [out_json]
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$root/build}"
out="${2:-$root/BENCH_obs.json}"
bin="$bdir/bench/bench_verdict_latency"

if [[ ! -x "$bin" ]]; then
  echo "FAIL: $bin not built (cmake --build $bdir --target bench_verdict_latency)"
  exit 1
fi

log="$(mktemp)"
trap 'rm -f "$log"' EXIT
"$bin" | tee "$log"

p99="$(sed -n 's/^P99_VERDICT_S=//p' "$log")"
verdicts="$(sed -n 's/^VERDICTS=//p' "$log")"
overhead="$(sed -n 's/^RECORDER_OVERHEAD_PCT=//p' "$log")"

if [[ -z "$p99" || -z "$verdicts" || -z "$overhead" ]]; then
  echo "FAIL: bench output missing P99_VERDICT_S/VERDICTS/RECORDER_OVERHEAD_PCT"
  exit 1
fi

cat > "$out" <<EOF
{
  "bench": "bench_verdict_latency",
  "p99_ingest_to_verdict_s": $p99,
  "verdicts": $verdicts,
  "recorder_overhead_pct": $overhead
}
EOF
echo "wrote $out"
