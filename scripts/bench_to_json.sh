#!/usr/bin/env bash
# Package the observability and collective planes' headline bench numbers
# as JSON.
#
# Runs bench_verdict_latency and bench_collective (build them first:
# `cmake --build build --target bench_verdict_latency bench_collective`)
# and extracts their greppable summary lines:
#
#   BENCH_obs.json
#     p99_ingest_to_verdict_s  — end-to-end p99 sim-time latency from the
#                                first anomalous window opening to a
#                                localized verdict
#     verdicts                 — observations behind that quantile
#     recorder_overhead_pct    — wall-clock cost of the flight recorder
#                                (on vs off, interleaved best-of-3)
#
#   BENCH_collective.json
#     steps                    — step records ingested by the microbench
#     ingest_ns_per_step       — diagnoser ingest cost per step record
#     plane_overhead_pct       — campaign wall cost of the second plane
#                                (on vs off, interleaved best-of-3)
#
# Usage: scripts/bench_to_json.sh [build_dir] [out_json] [out_collective_json]
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$root/build}"
out="${2:-$root/BENCH_obs.json}"
out_coll="${3:-$root/BENCH_collective.json}"
bin="$bdir/bench/bench_verdict_latency"
coll_bin="$bdir/bench/bench_collective"

if [[ ! -x "$bin" ]]; then
  echo "FAIL: $bin not built (cmake --build $bdir --target bench_verdict_latency)"
  exit 1
fi
if [[ ! -x "$coll_bin" ]]; then
  echo "FAIL: $coll_bin not built (cmake --build $bdir --target bench_collective)"
  exit 1
fi

log="$(mktemp)"
coll_log="$(mktemp)"
trap 'rm -f "$log" "$coll_log"' EXIT
"$bin" | tee "$log"

p99="$(sed -n 's/^P99_VERDICT_S=//p' "$log")"
verdicts="$(sed -n 's/^VERDICTS=//p' "$log")"
overhead="$(sed -n 's/^RECORDER_OVERHEAD_PCT=//p' "$log")"

if [[ -z "$p99" || -z "$verdicts" || -z "$overhead" ]]; then
  echo "FAIL: bench output missing P99_VERDICT_S/VERDICTS/RECORDER_OVERHEAD_PCT"
  exit 1
fi

cat > "$out" <<EOF
{
  "bench": "bench_verdict_latency",
  "p99_ingest_to_verdict_s": $p99,
  "verdicts": $verdicts,
  "recorder_overhead_pct": $overhead
}
EOF
echo "wrote $out"

"$coll_bin" | tee "$coll_log"

steps="$(sed -n 's/^COLLECTIVE_STEPS=//p' "$coll_log")"
ns_per_step="$(sed -n 's/^COLLECTIVE_INGEST_NS_PER_STEP=//p' "$coll_log")"
plane_pct="$(sed -n 's/^COLLECTIVE_OVERHEAD_PCT=//p' "$coll_log")"

if [[ -z "$steps" || -z "$ns_per_step" || -z "$plane_pct" ]]; then
  echo "FAIL: bench output missing COLLECTIVE_STEPS/COLLECTIVE_INGEST_NS_PER_STEP/COLLECTIVE_OVERHEAD_PCT"
  exit 1
fi

cat > "$out_coll" <<EOF
{
  "bench": "bench_collective",
  "steps": $steps,
  "ingest_ns_per_step": $ns_per_step,
  "plane_overhead_pct": $plane_pct
}
EOF
echo "wrote $out_coll"
