#include "dsp/wavelet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dsp/stft.h"

namespace skh::dsp {
namespace {

TEST(Haar, ConstantSignalHasOnlyApprox) {
  const std::vector<double> sig(8, 2.0);
  const auto c = haar_dwt(sig);
  // Total energy concentrates in coefficient 0; details vanish.
  EXPECT_NEAR(c[0], 2.0 * std::sqrt(8.0), 1e-12);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_NEAR(c[i], 0.0, 1e-12);
}

TEST(Haar, EnergyIsPreserved) {
  RngStream rng{9};
  std::vector<double> sig(64);
  for (auto& x : sig) x = rng.normal(0, 1);
  const auto c = haar_dwt(sig);
  double e_time = 0.0, e_wav = 0.0;
  for (double x : sig) e_time += x * x;
  for (double x : c) e_wav += x * x;
  EXPECT_NEAR(e_time, e_wav, 1e-9);
}

TEST(Haar, PadsNonPowerOfTwo) {
  const std::vector<double> sig(10, 1.0);
  const auto c = haar_dwt(sig);
  EXPECT_EQ(c.size(), 16u);
}

TEST(Haar, FeatureIsNormalized) {
  RngStream rng{10};
  std::vector<double> sig(128);
  for (auto& x : sig) x = rng.uniform(0, 5);
  const auto f = haar_feature(sig);
  double norm = 0.0;
  for (double v : f) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-9);
  EXPECT_EQ(f.size(), 7u);  // log2(128) levels
}

TEST(Haar, SeparatesScales) {
  // A fast alternating signal concentrates energy in fine-scale details; a
  // slow square wave in coarse scales.
  std::vector<double> fast(64), slow(64);
  for (std::size_t i = 0; i < 64; ++i) {
    fast[i] = (i % 2 == 0) ? 1.0 : -1.0;
    slow[i] = (i < 32) ? 1.0 : -1.0;
  }
  const auto ff = haar_feature(fast);
  const auto fs = haar_feature(slow);
  EXPECT_NEAR(ff.back(), 1.0, 1e-9);   // finest detail band
  EXPECT_NEAR(fs.front(), 1.0, 1e-9);  // coarsest detail band
  EXPECT_LT(cosine_similarity(ff, fs), 0.1);
}

}  // namespace
}  // namespace skh::dsp
