#include "dsp/stft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "dsp/fft.h"

namespace skh::dsp {
namespace {

std::vector<double> square_wave(std::size_t n, std::size_t period,
                                double duty = 0.5, double amp = 1.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (static_cast<double>(i % period) <
            duty * static_cast<double>(period))
               ? amp
               : 0.0;
  }
  return v;
}

TEST(Window, RectIsAllOnes) {
  const auto w = make_window(WindowKind::kRect, 8);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Window, HannIsZeroAtEdgesPeakInMiddle) {
  const auto w = make_window(WindowKind::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, HammingNeverZero) {
  const auto w = make_window(WindowKind::kHamming, 64);
  for (double x : w) EXPECT_GT(x, 0.05);
}

TEST(Stft, RejectsBadConfig) {
  std::vector<double> sig(100, 1.0);
  StftConfig bad;
  bad.frame_size = 60;  // not a power of two
  EXPECT_THROW(stft(sig, bad), std::invalid_argument);
  bad.frame_size = 64;
  bad.hop = 0;
  EXPECT_THROW(stft(sig, bad), std::invalid_argument);
}

TEST(Stft, FrameAndBinCounts) {
  std::vector<double> sig(256, 0.0);
  StftConfig cfg;
  cfg.frame_size = 64;
  cfg.hop = 32;
  const auto spec = stft(sig, cfg);
  EXPECT_EQ(spec.num_bins(), 33u);
  EXPECT_GE(spec.num_frames(), 6u);
}

TEST(Stft, FeatureIsL2Normalized) {
  RngStream rng{4};
  std::vector<double> sig(512);
  for (auto& x : sig) x = rng.uniform(0, 10);
  const auto f = stft_feature(sig);
  double norm = 0.0;
  for (double v : f) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(Stft, FeatureIgnoresDcOffset) {
  // Same periodic structure, different mean throughput: features match.
  auto a = square_wave(512, 32);
  auto b = square_wave(512, 32);
  for (auto& x : b) x += 5.0;
  const auto fa = stft_feature(a);
  const auto fb = stft_feature(b);
  EXPECT_GT(cosine_similarity(fa, fb), 0.99);
}

TEST(Stft, SamePeriodicitySimilarFeatures) {
  RngStream rng{5};
  auto a = square_wave(900, 30, 0.2, 15.0);
  auto b = square_wave(900, 30, 0.2, 15.0);
  for (auto& x : a) x += rng.normal(0, 0.3);
  for (auto& x : b) x += rng.normal(0, 0.3);
  EXPECT_GT(cosine_similarity(stft_feature(a), stft_feature(b)), 0.95);
}

TEST(Stft, DifferentPeriodicityDistinctFeatures) {
  const auto a = square_wave(900, 30, 0.2, 15.0);
  const auto c = square_wave(900, 50, 0.5, 15.0);
  const double same = cosine_similarity(stft_feature(a), stft_feature(a));
  const double diff = cosine_similarity(stft_feature(a), stft_feature(c));
  EXPECT_GT(same - diff, 0.1);
}

TEST(Stft, TimeShiftedSignalKeepsFeature) {
  // Figure 13 premise: the feature captures periodicity, not phase — the
  // PP stage shift must not break position matching.
  auto a = square_wave(900, 30, 0.2, 15.0);
  std::vector<double> shifted(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    shifted[(i + 7) % a.size()] = a[i];
  }
  EXPECT_GT(cosine_similarity(stft_feature(a), stft_feature(shifted)), 0.98);
}

TEST(Similarity, CosineBounds) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  const std::vector<double> c{-1.0, 0.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, c), -1.0);
}

TEST(Similarity, EuclideanDistance) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  const std::vector<double> shorter{1.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_THROW(euclidean_distance(a, shorter), std::invalid_argument);
}

}  // namespace
}  // namespace skh::dsp
