#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace skh::dsp {
namespace {

std::vector<double> sine(std::size_t n, double cycles, double amp = 1.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = amp * std::sin(2.0 * std::numbers::pi * cycles *
                          static_cast<double>(i) / static_cast<double>(n));
  }
  return v;
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(3);
  EXPECT_THROW(fft_inplace(data), std::invalid_argument);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(900), 1024u);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> data(8, Complex{});
  data[0] = Complex{1.0, 0.0};
  fft_inplace(data);
  for (const auto& x : data) {
    EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
  }
}

TEST(Fft, InverseRecoversSignal) {
  RngStream rng{1};
  std::vector<Complex> data(64);
  std::vector<Complex> orig(64);
  for (auto i = 0u; i < 64; ++i) {
    data[i] = Complex{rng.normal(0, 1), rng.normal(0, 1)};
    orig[i] = data[i];
  }
  fft_inplace(data);
  fft_inplace(data, /*inverse=*/true);
  for (auto i = 0u; i < 64; ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, MatchesReferenceDft) {
  RngStream rng{2};
  std::vector<double> sig(32);
  for (auto& x : sig) x = rng.normal(0, 1);
  const auto fast = fft_real(sig);
  const auto slow = dft_real(sig);
  for (std::size_t k = 0; k < 32; ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-8);
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-8);
  }
}

TEST(Fft, SinePeaksAtItsFrequencyBin) {
  const auto sig = sine(128, 16.0);
  const auto spec = fft_real(sig);
  const auto mags = magnitude_spectrum(spec);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < mags.size(); ++k) {
    if (mags[k] > mags[peak]) peak = k;
  }
  EXPECT_EQ(peak, 16u);
}

TEST(Fft, ParsevalHolds) {
  RngStream rng{3};
  std::vector<double> sig(64);
  for (auto& x : sig) x = rng.uniform(-1, 1);
  const auto spec = fft_real(sig);
  double time_energy = 0.0;
  for (double x : sig) time_energy += x * x;
  double freq_energy = 0.0;
  for (const auto& X : spec) freq_energy += std::norm(X);
  EXPECT_NEAR(freq_energy / 64.0, time_energy, 1e-8);
}

TEST(Xcorr, RejectsSizeMismatch) {
  const std::vector<double> a(8, 1.0);
  const std::vector<double> b(4, 1.0);
  EXPECT_THROW(circular_xcorr(a, b), std::invalid_argument);
}

TEST(Xcorr, SelfCorrelationPeaksAtZero) {
  const auto sig = sine(64, 5.0);
  EXPECT_EQ(best_lag(sig, sig), 0);
}

class LagSweep : public ::testing::TestWithParam<int> {};

TEST_P(LagSweep, RecoverShift) {
  // b = a delayed by `shift` samples (circularly).
  const int shift = GetParam();
  const std::size_t n = 128;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    // A non-sinusoidal pulse train so the lag is unambiguous.
    a[i] = (i % 16 < 3) ? 1.0 : 0.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    b[(i + static_cast<std::size_t>(shift)) % n] = a[i];
  }
  // Pulse train period is 16, so lags are recoverable modulo 16; all tested
  // shifts stay below that.
  EXPECT_EQ(best_lag(a, b), shift);
}

INSTANTIATE_TEST_SUITE_P(Shifts, LagSweep, ::testing::Values(0, 1, 2, 5, 7));

}  // namespace
}  // namespace skh::dsp
