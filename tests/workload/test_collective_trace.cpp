// Collective step-trace generation: group construction, dependency
// structure, and the determinism discipline (a trace is a pure function
// of layout, config, and rng stream — per iteration, not per history).
#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "workload/collective_trace.h"

namespace skh::workload {
namespace {

/// Build a synthetic placed task: `containers` containers of `tp` RNICs,
/// container c on host c (full-host) with rails 0..tp-1.
struct Placed {
  cluster::TaskInfo task;
  std::vector<cluster::ContainerInfo> containers;
};

Placed place(std::uint32_t num_containers, std::uint32_t tp) {
  Placed p;
  p.task.id = TaskId{0};
  p.task.request.num_containers = num_containers;
  p.task.request.gpus_per_container = tp;
  for (std::uint32_t c = 0; c < num_containers; ++c) {
    cluster::ContainerInfo ci;
    ci.id = ContainerId{c};
    ci.task = p.task.id;
    ci.host = HostId{c};
    ci.index_in_task = c;
    for (std::uint32_t g = 0; g < tp; ++g) {
      ci.rnics.push_back(RnicId{c * tp + g});
    }
    p.task.containers.push_back(ci.id);
    p.containers.push_back(ci);
  }
  return p;
}

TaskLayout dense_layout() {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.dp = 2;
  const auto p = place(cfg.num_containers(), cfg.tp);
  return make_layout(p.task, p.containers, cfg);
}

TEST(BuildGroups, DenseLayoutRingsThenChains) {
  // TP2/PP2/DP2: DP rings per (stage, rail) then PP chains per (dp, rail)
  // — 4 + 4 groups, id-dense in that order.
  const auto layout = dense_layout();
  const auto groups = build_collective_groups(layout);
  ASSERT_EQ(groups.size(), 8u);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].id, i);
    EXPECT_EQ(groups[i].members.size(), 2u);
    EXPECT_EQ(groups[i].kind, i < 4 ? CollectiveKind::kRingAllReduce
                                    : CollectiveKind::kPipelineP2p);
  }
  // A ring's members are ordered by dp_rank and carry the PP x DP grid
  // coordinate as container_index; a chain's are ordered by stage.
  for (const auto& g : groups) {
    for (std::size_t r = 0; r < g.members.size(); ++r) {
      const auto* role = layout.role_of(g.members[r]);
      ASSERT_NE(role, nullptr);
      EXPECT_EQ(g.container_index[r],
                role->dp_rank * layout.par.pp + role->stage);
      if (g.kind == CollectiveKind::kRingAllReduce) {
        EXPECT_EQ(role->dp_rank, r);
      } else {
        EXPECT_EQ(role->stage, r);
      }
    }
  }
}

TEST(BuildGroups, MoeLayoutAddsAllToAll) {
  // TP1/PP1/DP4/EP2: one DP ring of 4 per rail, no PP chains, and two
  // expert all-to-all blocks of 2 consecutive DP replicas.
  ParallelismConfig cfg;
  cfg.tp = 1;
  cfg.pp = 1;
  cfg.dp = 4;
  cfg.moe = true;
  cfg.ep = 2;
  const auto p = place(cfg.num_containers(), cfg.tp);
  const auto layout = make_layout(p.task, p.containers, cfg);
  const auto groups = build_collective_groups(layout);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].kind, CollectiveKind::kRingAllReduce);
  EXPECT_EQ(groups[0].members.size(), 4u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(groups[i].kind, CollectiveKind::kAllToAll);
    EXPECT_EQ(groups[i].members.size(), 2u);
  }
  // Expert blocks partition DP rank space into consecutive runs of ep.
  EXPECT_EQ(groups[1].container_index,
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(groups[2].container_index,
            (std::vector<std::uint32_t>{2, 3}));
}

TEST(Schedule, StepCounts) {
  CollectiveGroup g;
  auto set_n = [&g](std::uint32_t n) {
    g.members.assign(n, Endpoint{});
  };
  set_n(4);
  g.kind = CollectiveKind::kRingAllReduce;
  EXPECT_EQ(g.num_steps(), 6u);  // reduce-scatter + all-gather
  g.kind = CollectiveKind::kPipelineP2p;
  EXPECT_EQ(g.num_steps(), 6u);  // forward + backward handoffs
  g.kind = CollectiveKind::kAllToAll;
  EXPECT_EQ(g.num_steps(), 3u);  // n-1 exchange rounds
  set_n(1);
  EXPECT_EQ(g.num_steps(), 0u);  // degenerate communicator
}

TEST(Schedule, DependencyStructure) {
  // Step 0 is ungated for every kind.
  for (const auto kind :
       {CollectiveKind::kRingAllReduce, CollectiveKind::kPipelineP2p,
        CollectiveKind::kAllToAll}) {
    EXPECT_TRUE(dep_ranks(kind, 4, 0, 2).empty());
  }
  // Ring: self + ring predecessor.
  EXPECT_EQ(dep_ranks(CollectiveKind::kRingAllReduce, 4, 2, 0),
            (std::vector<std::uint32_t>{0, 3}));
  EXPECT_EQ(dep_ranks(CollectiveKind::kRingAllReduce, 4, 2, 2),
            (std::vector<std::uint32_t>{1, 2}));
  // Pipeline: the previous handoff's participant.
  EXPECT_EQ(dep_ranks(CollectiveKind::kPipelineP2p, 4, 1, 2),
            (std::vector<std::uint32_t>{1}));
  // All-to-all: self + current exchange peer, sorted.
  EXPECT_EQ(dep_ranks(CollectiveKind::kAllToAll, 4, 1, 0),
            (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(dep_ranks(CollectiveKind::kAllToAll, 4, 1, 3),
            (std::vector<std::uint32_t>{1, 3}));
}

TEST(Schedule, PipelineParticipantWalksUpThenDown) {
  // n = 4: forward handoffs land on stages 1, 2, 3; backward walks 2, 1, 0.
  const std::uint32_t want[] = {1, 2, 3, 2, 1, 0};
  for (std::uint32_t s = 0; s < 6; ++s) {
    EXPECT_EQ(pipeline_participant(4, s), want[s]) << "step " << s;
  }
}

CollectiveTraceGenerator make_generator(std::uint64_t seed) {
  return CollectiveTraceGenerator(build_collective_groups(dense_layout()),
                                  CollectiveTraceConfig{}, RngStream(seed));
}

std::uint64_t fp(const std::vector<StepRecord>& records) {
  return fingerprint_records(records);
}

TEST(Determinism, SameSeedSameTrace) {
  auto a = make_generator(42);
  auto b = make_generator(42);
  auto c = make_generator(43);
  std::uint64_t ha = 0xcbf29ce484222325ull, hb = ha, hc = ha;
  for (std::uint32_t it = 0; it < 4; ++it) {
    const SimTime at = SimTime::seconds(30 * it);
    ha = fingerprint_records(a.emit_iteration(it, at), ha);
    hb = fingerprint_records(b.emit_iteration(it, at), hb);
    hc = fingerprint_records(c.emit_iteration(it, at), hc);
  }
  EXPECT_EQ(ha, hb);
  EXPECT_NE(ha, hc);  // a different stream is a different cluster
}

TEST(Determinism, EmitIsPurePerIteration) {
  // The jitter stream is forked per iteration index, so emitting
  // iteration 5 cold equals emitting it after 0..4 — the property that
  // lets checkpoint/restore skip re-emitting history.
  auto warm = make_generator(7);
  for (std::uint32_t it = 0; it < 5; ++it) {
    (void)warm.emit_iteration(it, SimTime::seconds(30 * it));
  }
  auto cold = make_generator(7);
  const SimTime at = SimTime::seconds(150);
  EXPECT_EQ(fp(warm.emit_iteration(5, at)), fp(cold.emit_iteration(5, at)));
}

TEST(Determinism, FaultsDoNotPerturbOtherIterations) {
  // A hang inside iteration 1 must leave iterations 0 and 2 byte-identical
  // to the healthy run: jitter is drawn for hung/blocked ranks too, so the
  // stream never skews.
  auto healthy = make_generator(11);
  auto faulty = make_generator(11);
  const SimTime t1 = SimTime::seconds(30);
  faulty.set_host_fault_fn(
      [t1](std::uint32_t container, SimTime at) {
        CollectiveTraceGenerator::HostEffect e;
        e.hang = container == 2 && at >= t1 && at < t1 + SimTime::seconds(30);
        return e;
      });
  const auto h0 = fp(healthy.emit_iteration(0, SimTime::seconds(0)));
  const auto f0 = fp(faulty.emit_iteration(0, SimTime::seconds(0)));
  const auto h1 = fp(healthy.emit_iteration(1, t1));
  const auto f1 = fp(faulty.emit_iteration(1, t1));
  const auto h2 = fp(healthy.emit_iteration(2, SimTime::seconds(60)));
  const auto f2 = fp(faulty.emit_iteration(2, SimTime::seconds(60)));
  EXPECT_EQ(h0, f0);
  EXPECT_NE(h1, f1);  // the fault is visible where it is active...
  EXPECT_EQ(h2, f2);  // ...and nowhere else
}

TEST(Faults, HangRootStartsAndNeverEndsChainBlocks) {
  // One ring of 4 (TP1/PP1/DP4): rank d lives in container d. Hanging
  // container 2 must leave (step 0, rank 2) started-but-not-done — the
  // stall root — and every later step of rank 2 blocked, with the stall
  // propagating to the rest of the ring.
  ParallelismConfig cfg;
  cfg.tp = 1;
  cfg.pp = 1;
  cfg.dp = 4;
  const auto p = place(cfg.num_containers(), cfg.tp);
  const auto layout = make_layout(p.task, p.containers, cfg);
  CollectiveTraceGenerator gen(build_collective_groups(layout),
                               CollectiveTraceConfig{}, RngStream(3));
  gen.set_host_fault_fn([](std::uint32_t container, SimTime) {
    CollectiveTraceGenerator::HostEffect e;
    e.hang = container == 2;
    return e;
  });
  const auto records = gen.emit_iteration(0, SimTime::seconds(0));
  bool root_seen = false;
  std::size_t done = 0, blocked = 0;
  for (const auto& r : records) {
    if (r.step == 0 && r.rank == 2) {
      EXPECT_TRUE(r.started);
      EXPECT_FALSE(r.done);
      root_seen = true;
    }
    if (r.step > 0 && r.rank == 2) EXPECT_FALSE(r.started);
    if (r.done) ++done;
    if (!r.started) ++blocked;
  }
  EXPECT_TRUE(root_seen);
  EXPECT_GT(blocked, 0u);
  EXPECT_LT(done, records.size());
  // Eventually the whole ring is starved: the final step completes on
  // nobody (every rank transitively waits on rank 2).
  const std::uint32_t last = 2 * (4 - 1) - 1;
  for (const auto& r : records) {
    if (r.step == last) EXPECT_FALSE(r.done);
  }
}

TEST(Faults, StragglerSlowdownScalesDurations) {
  // With jitter off, a 3x host slowdown is exactly 3x step duration for
  // the victim and 1x for its siblings — the sibling-relative signature
  // the diagnoser keys on.
  ParallelismConfig cfg;
  cfg.tp = 1;
  cfg.pp = 1;
  cfg.dp = 4;
  const auto p = place(cfg.num_containers(), cfg.tp);
  const auto layout = make_layout(p.task, p.containers, cfg);
  CollectiveTraceConfig tcfg;
  tcfg.jitter_frac = 0.0;
  CollectiveTraceGenerator gen(build_collective_groups(layout), tcfg,
                               RngStream(3));
  gen.set_host_fault_fn([](std::uint32_t container, SimTime) {
    CollectiveTraceGenerator::HostEffect e;
    if (container == 1) e.slowdown = 3.0;
    return e;
  });
  const auto records = gen.emit_iteration(0, SimTime::seconds(0));
  for (const auto& r : records) {
    ASSERT_TRUE(r.done);
    const double dur_ms = (r.end - r.start).to_seconds() * 1e3;
    EXPECT_NEAR(dur_ms, r.rank == 1 ? 12.0 : 4.0, 1e-9)
        << "step " << r.step << " rank " << r.rank;
  }
}

TEST(Faults, UnreachableNetworkHangsTheStep) {
  // nullopt from the network callback == the endpoint cannot complete its
  // transfer: same started-never-done signature as a host hang.
  auto gen = make_generator(5);
  const Endpoint victim = gen.groups()[0].members[0];
  gen.set_network_delay_fn(
      [victim](const Endpoint& e, SimTime) -> std::optional<double> {
        if (e == victim) return std::nullopt;
        return 0.0;
      });
  const auto records = gen.emit_iteration(0, SimTime::seconds(0));
  bool victim_hung = false;
  for (const auto& r : records) {
    if (r.endpoint == victim && r.started && !r.done) victim_hung = true;
  }
  EXPECT_TRUE(victim_hung);
}

TEST(Faults, NetworkDelayExtendsDurations) {
  CollectiveTraceConfig tcfg;
  tcfg.jitter_frac = 0.0;
  CollectiveTraceGenerator gen(build_collective_groups(dense_layout()), tcfg,
                               RngStream(5));
  gen.set_network_delay_fn(
      [](const Endpoint&, SimTime) -> std::optional<double> {
        return 2000.0;  // +2 ms per step on every endpoint
      });
  const auto records = gen.emit_iteration(0, SimTime::seconds(0));
  for (const auto& r : records) {
    ASSERT_TRUE(r.done);
    EXPECT_NEAR((r.end - r.start).to_seconds() * 1e3, 6.0, 1e-9);
  }
}

TEST(Fingerprint, ChainsAcrossBatches) {
  // Folding two batches through a chained hash equals fingerprinting the
  // concatenation — the property the harness relies on when it folds one
  // iteration at a time.
  auto gen = make_generator(17);
  const auto b0 = gen.emit_iteration(0, SimTime::seconds(0));
  const auto b1 = gen.emit_iteration(1, SimTime::seconds(30));
  std::vector<StepRecord> both = b0;
  both.insert(both.end(), b1.begin(), b1.end());
  EXPECT_EQ(fingerprint_records(b1, fingerprint_records(b0)),
            fingerprint_records(both));
}

TEST(Fingerprint, SensitiveToOrderAndState) {
  auto gen = make_generator(17);
  const auto batch = gen.emit_iteration(0, SimTime::seconds(0));
  ASSERT_GE(batch.size(), 2u);
  auto swapped = batch;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(fingerprint_records(batch), fingerprint_records(swapped));
  auto flipped = batch;
  flipped[0].done = !flipped[0].done;
  EXPECT_NE(fingerprint_records(batch), fingerprint_records(flipped));
}

}  // namespace
}  // namespace skh::workload
