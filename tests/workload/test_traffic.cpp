#include "workload/traffic.h"

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/stft.h"

namespace skh::workload {
namespace {

/// Synthetic placed layout: full-host containers, container c on host c.
TaskLayout layout_for(const ParallelismConfig& par) {
  cluster::TaskInfo task;
  task.id = TaskId{0};
  task.request.num_containers = par.num_containers();
  task.request.gpus_per_container = par.tp;
  std::vector<cluster::ContainerInfo> containers;
  for (std::uint32_t c = 0; c < par.num_containers(); ++c) {
    cluster::ContainerInfo ci;
    ci.id = ContainerId{c};
    ci.task = task.id;
    ci.host = HostId{c};
    ci.index_in_task = c;
    for (std::uint32_t g = 0; g < par.tp; ++g) {
      ci.rnics.push_back(RnicId{c * par.tp + g});
    }
    task.containers.push_back(ci.id);
    containers.push_back(ci);
  }
  return make_layout(task, containers, par);
}

ParallelismConfig small_dense() {
  ParallelismConfig cfg;
  cfg.tp = 4;
  cfg.pp = 2;
  cfg.dp = 4;
  return cfg;
}

TEST(TrafficMatrix, IsSparse) {
  // The Figure 9 headline: skeleton traffic is a tiny fraction of all pairs.
  ParallelismConfig cfg;  // 512 GPUs
  const auto layout = layout_for(cfg);
  const auto tm = build_traffic_matrix(layout);
  EXPECT_LT(tm.density(layout.roles.size()), 0.03);
  EXPECT_GT(tm.num_edges(), 0u);
}

TEST(TrafficMatrix, OnlySameRailPairs) {
  // Collective libraries keep inter-host traffic in-rail (§3.2).
  const auto layout = layout_for(small_dense());
  const auto tm = build_traffic_matrix(layout);
  for (const auto& e : tm.edges()) {
    EXPECT_EQ(layout.role_of(e.a)->rail, layout.role_of(e.b)->rail);
  }
}

TEST(TrafficMatrix, DpRingPartnersPresent) {
  const auto layout = layout_for(small_dense());
  const auto tm = build_traffic_matrix(layout);
  // Position (stage 0, rail 0) spans containers 0, 2, 4, 6; the DP ring
  // connects consecutive replicas.
  const auto group = layout.position_group(0, 0);
  ASSERT_EQ(group.size(), 4u);
  EXPECT_TRUE(tm.communicates(group[0], group[1]));
  EXPECT_TRUE(tm.communicates(group[1], group[2]));
}

TEST(TrafficMatrix, PipelineNeighborsPresent) {
  const auto layout = layout_for(small_dense());
  const auto tm = build_traffic_matrix(layout);
  // Containers 0 (stage 0) and 1 (stage 1) of replica 0, same rail.
  const Endpoint s0{ContainerId{0}, RnicId{0}};
  const Endpoint s1{ContainerId{1}, RnicId{4}};
  EXPECT_TRUE(tm.communicates(s0, s1));
}

TEST(TrafficMatrix, NoIntraContainerEdges) {
  const auto layout = layout_for(small_dense());
  const auto tm = build_traffic_matrix(layout);
  for (const auto& e : tm.edges()) {
    EXPECT_NE(e.a.container, e.b.container);  // TP rides NVLink
  }
}

TEST(TrafficMatrix, MoeAddsExpertEdges) {
  // With DP=8 and EP=4, expert all-to-all adds diagonals (e.g. replica 0 <->
  // replica 3) that neither the ring nor the double binary tree produce.
  ParallelismConfig dense;
  dense.tp = 2;
  dense.pp = 2;
  dense.dp = 8;
  ParallelismConfig moe = dense;
  moe.moe = true;
  moe.ep = 4;
  const auto tm_dense = build_traffic_matrix(layout_for(dense));
  const auto tm_moe = build_traffic_matrix(layout_for(moe));
  EXPECT_GT(tm_moe.num_edges(), tm_dense.num_edges());
}

TEST(TrafficMatrix, PeersOfListsNeighbors) {
  const auto layout = layout_for(small_dense());
  const auto tm = build_traffic_matrix(layout);
  const Endpoint e{ContainerId{0}, RnicId{0}};
  const auto peers = tm.peers_of(e);
  EXPECT_FALSE(peers.empty());
  for (const auto& p : peers) EXPECT_TRUE(tm.communicates(e, p));
}

TEST(TrafficMatrix, Fig9aDegreeIsAboutNine) {
  // Figure 9a: a GPU in the 512-GPU task connects to ~9 destinations.
  ParallelismConfig cfg;  // TP8/PP8/DP8
  const auto layout = layout_for(cfg);
  const auto tm = build_traffic_matrix(layout);
  double total_degree = 0.0;
  for (const auto& r : layout.roles) {
    total_degree += static_cast<double>(tm.peers_of(r.endpoint).size());
  }
  const double mean_degree = total_degree / static_cast<double>(layout.roles.size());
  EXPECT_GE(mean_degree, 4.0);
  EXPECT_LE(mean_degree, 12.0);
}

TEST(BurstSeries, LengthAndPositivity) {
  const auto layout = layout_for(small_dense());
  BurstConfig cfg;
  cfg.duration_s = 300;
  RngStream rng{1};
  const auto s = burst_series(layout.roles[0], layout.par, cfg, rng);
  EXPECT_EQ(s.size(), 300u);
  for (double v : s) EXPECT_GE(v, 0.0);
}

TEST(BurstSeries, PeaksNearConfiguredAmplitude) {
  const auto layout = layout_for(small_dense());
  BurstConfig cfg;  // 15 Gbps peaks, Fig. 7
  RngStream rng{2};
  const auto s = burst_series(layout.roles[0], layout.par, cfg, rng);
  const double peak = *std::max_element(s.begin(), s.end());
  EXPECT_GT(peak, 12.0);
  EXPECT_LT(peak, 25.0);
}

TEST(BurstSeries, IdleContainersStayQuiet) {
  const auto layout = layout_for(small_dense());
  BurstConfig cfg;
  cfg.idle = true;
  RngStream rng{3};
  const auto s = burst_series(layout.roles[0], layout.par, cfg, rng);
  const double peak = *std::max_element(s.begin(), s.end());
  EXPECT_LT(peak, 2.0);
}

TEST(BurstSeries, SamePositionSimilarFeatures) {
  // The §5.1 inference premise: same (stage, rail) across DP replicas =>
  // similar STFT features; different stages => distinguishable.
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.dp = 4;
  const auto layout = layout_for(cfg);
  BurstConfig bcfg;
  RngStream rng{4};
  const auto series = burst_series_for_layout(layout, bcfg, rng);

  auto find_role = [&](std::uint32_t d, std::uint32_t s, std::uint32_t r) {
    for (std::size_t i = 0; i < layout.roles.size(); ++i) {
      const auto& role = layout.roles[i];
      if (role.dp_rank == d && role.stage == s && role.rail == r) return i;
    }
    return std::size_t{0};
  };
  const auto f_a = dsp::stft_feature(series[find_role(0, 0, 0)]);
  const auto f_b = dsp::stft_feature(series[find_role(1, 0, 0)]);  // same pos
  const auto f_c = dsp::stft_feature(series[find_role(0, 1, 0)]);  // other stage
  const double same = dsp::cosine_similarity(f_a, f_b);
  const double diff = dsp::cosine_similarity(f_a, f_c);
  EXPECT_GT(same, 0.9);
  EXPECT_GT(same, diff + 0.02);
}

TEST(BurstSeries, LaterStageBurstsLater) {
  // §5.1: the first pipeline stage sees bursts earlier than the second.
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 2;
  const auto layout = layout_for(cfg);
  BurstConfig bcfg;
  bcfg.noise_gbps = 0.05;
  RngStream rng{5};
  const auto series = burst_series_for_layout(layout, bcfg, rng);
  std::size_t s0 = 0, s2 = 0;
  for (std::size_t i = 0; i < layout.roles.size(); ++i) {
    if (layout.roles[i].dp_rank == 0 && layout.roles[i].rail == 0) {
      if (layout.roles[i].stage == 0) s0 = i;
      if (layout.roles[i].stage == 2) s2 = i;
    }
  }
  const int lag = dsp::best_lag(series[s0], series[s2]);
  EXPECT_GT(lag, 0);  // stage 2 lags stage 0
}

TEST(BurstSeries, DeterministicPerEndpointForks) {
  const auto layout = layout_for(small_dense());
  BurstConfig cfg;
  RngStream rng1{7};
  RngStream rng2{7};
  const auto a = burst_series_for_layout(layout, cfg, rng1);
  const auto b = burst_series_for_layout(layout, cfg, rng2);
  EXPECT_EQ(a, b);
}

TEST(TrafficMatrixDensity, EdgeCases) {
  TrafficMatrix empty({});
  EXPECT_DOUBLE_EQ(empty.density(0), 0.0);
  EXPECT_DOUBLE_EQ(empty.density(1), 0.0);
  EXPECT_DOUBLE_EQ(empty.density(10), 0.0);
}

}  // namespace
}  // namespace skh::workload
