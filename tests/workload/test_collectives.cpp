#include "workload/collectives.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace skh::workload {
namespace {

std::vector<Endpoint> members(std::uint32_t n) {
  std::vector<Endpoint> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(Endpoint{ContainerId{i}, RnicId{i}});
  }
  return out;
}

std::map<Endpoint, int> degree(const std::vector<CommEdge>& edges) {
  std::map<Endpoint, int> d;
  for (const auto& e : edges) {
    ++d[e.a];
    ++d[e.b];
  }
  return d;
}

TEST(Ring, EdgeCountEqualsMembers) {
  const auto edges = ring_allreduce(members(8));
  EXPECT_EQ(edges.size(), 8u);
  for (const auto& [ep, deg] : degree(edges)) EXPECT_EQ(deg, 2);
}

TEST(Ring, TwoMembersOneEdge) {
  EXPECT_EQ(ring_allreduce(members(2)).size(), 1u);
}

TEST(Ring, DegenerateSizes) {
  EXPECT_TRUE(ring_allreduce(members(0)).empty());
  EXPECT_TRUE(ring_allreduce(members(1)).empty());
}

TEST(Ring, EdgesAreNormalized) {
  for (const auto& e : ring_allreduce(members(8))) {
    EXPECT_LT(e.a, e.b);
  }
}

TEST(Pipeline, ChainHasStagesMinusOneEdges) {
  const auto edges = pipeline_p2p(members(8));
  EXPECT_EQ(edges.size(), 7u);
  const auto d = degree(edges);
  // Interior stages touch two neighbors, the ends one.
  EXPECT_EQ(d.at(members(8).front()), 1);
  EXPECT_EQ(d.at(members(8)[3]), 2);
}

TEST(Pipeline, SingleStageNoEdges) {
  EXPECT_TRUE(pipeline_p2p(members(1)).empty());
}

TEST(AllToAll, CompleteGraph) {
  const auto edges = all_to_all(members(6));
  EXPECT_EQ(edges.size(), 15u);  // C(6,2)
  for (const auto& [ep, deg] : degree(edges)) EXPECT_EQ(deg, 5);
}

TEST(DoubleBinaryTree, CoversAllMembers) {
  const auto edges = double_binary_tree(members(8));
  const auto d = degree(edges);
  EXPECT_EQ(d.size(), 8u);  // every member participates
  for (const auto& [ep, deg] : degree(edges)) EXPECT_GE(deg, 1);
}

TEST(DoubleBinaryTree, MoreEdgesThanSingleTree) {
  // Two mirrored trees: > n-1 distinct edges for n >= 4.
  const auto edges = double_binary_tree(members(8));
  EXPECT_GT(edges.size(), 7u);
  EXPECT_LE(edges.size(), 14u);
}

TEST(DoubleBinaryTree, Degenerate) {
  EXPECT_TRUE(double_binary_tree(members(1)).empty());
  EXPECT_EQ(double_binary_tree(members(2)).size(), 1u);
}

TEST(MergeEdges, CombinesDuplicatesAndVolumes) {
  const auto m = members(3);
  std::vector<CommEdge> edges{
      {m[0], m[1], 1.0}, {m[1], m[0], 2.0}, {m[1], m[2], 1.0}};
  const auto merged = merge_edges(edges);
  EXPECT_EQ(merged.size(), 2u);
  for (const auto& e : merged) {
    if (e.a == m[0]) EXPECT_DOUBLE_EQ(e.volume, 3.0);
  }
}

TEST(MergeEdges, OutputIsSortedAndNormalized) {
  const auto m = members(4);
  std::vector<CommEdge> edges{{m[3], m[1], 1.0}, {m[2], m[0], 1.0}};
  const auto merged = merge_edges(edges);
  EXPECT_LT(merged[0].a, merged[0].b);
  EXPECT_LE(merged[0].a, merged[1].a);
}

class RingSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingSizeSweep, RingIsConnected) {
  const auto m = members(GetParam());
  const auto edges = ring_allreduce(m);
  // Union-find style reachability: walk the ring.
  std::set<Endpoint> reached{m[0]};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& e : edges) {
      if (reached.contains(e.a) && !reached.contains(e.b)) {
        reached.insert(e.b);
        grew = true;
      }
      if (reached.contains(e.b) && !reached.contains(e.a)) {
        reached.insert(e.a);
        grew = true;
      }
    }
  }
  EXPECT_EQ(reached.size(), m.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizeSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace skh::workload
