// Property tests for the container <-> (dp_rank, stage) coordinate map.
//
// Host-side fault plans address victims by container index within the
// task; the collective planes translate that back through EndpointRole.
// The round trip container -> (dp_rank, stage) -> dp_rank * pp + stage
// must be the identity on every grid shape — including the non-square
// ones where transposing pp and dp silently "works" for num_containers
// but scrambles every coordinate.
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "workload/collectives.h"
#include "workload/parallelism.h"
#include "workload/traffic.h"

namespace skh::workload {
namespace {

/// Build a synthetic placed task: `containers` containers of `tp` RNICs,
/// container c on host c (full-host) with rails 0..tp-1.
struct Placed {
  cluster::TaskInfo task;
  std::vector<cluster::ContainerInfo> containers;
};

Placed place(std::uint32_t num_containers, std::uint32_t tp) {
  Placed p;
  p.task.id = TaskId{0};
  p.task.request.num_containers = num_containers;
  p.task.request.gpus_per_container = tp;
  for (std::uint32_t c = 0; c < num_containers; ++c) {
    cluster::ContainerInfo ci;
    ci.id = ContainerId{c};
    ci.task = p.task.id;
    ci.host = HostId{c};
    ci.index_in_task = c;
    for (std::uint32_t g = 0; g < tp; ++g) {
      ci.rnics.push_back(RnicId{c * tp + g});
    }
    p.task.containers.push_back(ci.id);
    p.containers.push_back(ci);
  }
  return p;
}

void check_roundtrip(const ParallelismConfig& cfg) {
  const auto p = place(cfg.num_containers(), cfg.tp);
  const auto layout = make_layout(p.task, p.containers, cfg);
  ASSERT_EQ(layout.roles.size(), cfg.num_gpus());
  for (const auto& r : layout.roles) {
    const auto c = r.endpoint.container.value();
    // Forward: container c is stage c % pp of replica c / pp.
    EXPECT_EQ(r.stage, c % cfg.pp) << cfg.to_string();
    EXPECT_EQ(r.dp_rank, c / cfg.pp) << cfg.to_string();
    EXPECT_LT(r.rail, cfg.tp);
    // Backward: the grid coordinate reconstructs the container index.
    EXPECT_EQ(r.dp_rank * cfg.pp + r.stage, c) << cfg.to_string();
    // Rail is the RNIC offset inside the container.
    EXPECT_EQ(r.endpoint.rnic.value(), c * cfg.tp + r.rail);
    // role_of closes the loop endpoint -> role.
    const auto* back = layout.role_of(r.endpoint);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->stage, r.stage);
    EXPECT_EQ(back->dp_rank, r.dp_rank);
    EXPECT_EQ(back->rail, r.rail);
  }
  // Coordinates are unique: no two roles of a rail share a grid cell.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> cells;
  for (const auto& r : layout.roles) {
    EXPECT_TRUE(cells.insert({r.dp_rank, r.stage, r.rail}).second);
  }
}

TEST(RoleRoundTrip, NonSquareGrids) {
  // pp x dp grids where the transposed shape has the same container count
  // — exactly the shapes a pp/dp swap bug survives container counting on.
  const std::pair<std::uint32_t, std::uint32_t> grids[] = {
      {2, 8}, {8, 2}, {3, 5}, {5, 3}, {4, 4}, {1, 16}, {16, 1}};
  for (const auto& [pp, dp] : grids) {
    ParallelismConfig cfg;
    cfg.tp = 2;
    cfg.pp = pp;
    cfg.dp = dp;
    cfg.validate();
    check_roundtrip(cfg);
  }
}

TEST(RoleRoundTrip, MoeExpertGroups) {
  // EP slices DP into expert blocks but must not disturb the grid map.
  for (const std::uint32_t ep : {2u, 4u}) {
    ParallelismConfig cfg;
    cfg.tp = 2;
    cfg.pp = 2;
    cfg.dp = 8;
    cfg.moe = true;
    cfg.ep = ep;
    cfg.validate();
    check_roundtrip(cfg);
  }
}

/// Canonical unordered-pair key for volume bookkeeping.
std::pair<Endpoint, Endpoint> key(const Endpoint& a, const Endpoint& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

std::map<std::pair<Endpoint, Endpoint>, double> volumes_of(
    const std::vector<CommEdge>& edges) {
  std::map<std::pair<Endpoint, Endpoint>, double> m;
  for (const auto& e : edges) m[key(e.a, e.b)] += e.volume;
  return m;
}

std::vector<Endpoint> members(std::uint32_t n) {
  std::vector<Endpoint> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(Endpoint{ContainerId{i}, RnicId{i}});
  }
  return out;
}

TEST(MergeEdges, SumsDuplicatePairVolumes) {
  // dp = 2: the ring degenerates to the single pair the all-to-all also
  // produces — merging must leave ONE edge carrying both volumes, the
  // situation every EP-over-DP-ring layout creates.
  const auto m = members(2);
  auto edges = ring_allreduce(m, 8.0);
  const auto a2a = all_to_all(m, 4.0);
  edges.insert(edges.end(), a2a.begin(), a2a.end());
  ASSERT_EQ(edges.size(), 2u);
  const auto merged = merge_edges(edges);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].volume, 12.0);
}

TEST(MergeEdges, RingPlusAllToAllKeepsDistinctPairsApart) {
  // n = 4: ring edges coincide with four of the six all-to-all pairs; the
  // two diagonals exist only in the all-to-all. Merged volumes must be
  // ring+a2a on the shared pairs and a2a alone on the diagonals.
  const auto m = members(4);
  auto edges = ring_allreduce(m, 8.0);
  const auto a2a = all_to_all(m, 4.0);
  edges.insert(edges.end(), a2a.begin(), a2a.end());
  const auto merged = merge_edges(edges);
  EXPECT_EQ(merged.size(), 6u);
  const auto vol = volumes_of(merged);
  ASSERT_EQ(vol.size(), 6u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(vol.at(key(m[i], m[(i + 1) % 4])), 12.0);
  }
  EXPECT_DOUBLE_EQ(vol.at(key(m[0], m[2])), 4.0);
  EXPECT_DOUBLE_EQ(vol.at(key(m[1], m[3])), 4.0);
  // Total volume is conserved by the merge.
  double total = 0.0;
  for (const auto& e : merged) total += e.volume;
  EXPECT_DOUBLE_EQ(total, 4 * 8.0 + 6 * 4.0);
}

TEST(MergeEdges, MergeIsIdempotent) {
  const auto m = members(4);
  auto edges = ring_allreduce(m, 8.0);
  const auto a2a = all_to_all(m, 4.0);
  edges.insert(edges.end(), a2a.begin(), a2a.end());
  const auto once = merge_edges(edges);
  const auto twice = merge_edges(once);
  EXPECT_EQ(once, twice);
}

TEST(TrafficMatrix, MoeLayoutHasNoDuplicatePairs) {
  // EP all-to-all groups of size 2 duplicate DP ring edges pairwise; the
  // built matrix must hold each unordered pair once, volumes merged.
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.dp = 4;
  cfg.moe = true;
  cfg.ep = 2;
  cfg.validate();
  const auto p = place(cfg.num_containers(), cfg.tp);
  const auto layout = make_layout(p.task, p.containers, cfg);
  const auto matrix = build_traffic_matrix(layout);
  std::set<std::pair<Endpoint, Endpoint>> pairs;
  for (const auto& e : matrix.edges()) {
    EXPECT_TRUE(pairs.insert(key(e.a, e.b)).second)
        << "duplicate pair in built matrix";
    EXPECT_GT(e.volume, 0.0);
  }
}

}  // namespace
}  // namespace skh::workload
