#include "workload/parallelism.h"

#include <gtest/gtest.h>

namespace skh::workload {
namespace {

/// Build a synthetic placed task: `containers` containers of `tp` RNICs,
/// container c on host c (full-host) with rails 0..tp-1.
struct Placed {
  cluster::TaskInfo task;
  std::vector<cluster::ContainerInfo> containers;
};

Placed place(std::uint32_t num_containers, std::uint32_t tp) {
  Placed p;
  p.task.id = TaskId{0};
  p.task.request.num_containers = num_containers;
  p.task.request.gpus_per_container = tp;
  for (std::uint32_t c = 0; c < num_containers; ++c) {
    cluster::ContainerInfo ci;
    ci.id = ContainerId{c};
    ci.task = p.task.id;
    ci.host = HostId{c};
    ci.index_in_task = c;
    for (std::uint32_t g = 0; g < tp; ++g) {
      ci.rnics.push_back(RnicId{c * tp + g});
    }
    p.task.containers.push_back(ci.id);
    p.containers.push_back(ci);
  }
  return p;
}

TEST(ParallelismConfig, ValidatesDegrees) {
  ParallelismConfig cfg;
  cfg.tp = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ParallelismConfig{};
  cfg.moe = true;
  cfg.ep = 3;
  cfg.dp = 8;  // 8 % 3 != 0
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ParallelismConfig, CountsAndStrings) {
  ParallelismConfig cfg;  // TP8/PP8/DP8
  EXPECT_EQ(cfg.num_gpus(), 512u);
  EXPECT_EQ(cfg.num_containers(), 64u);
  EXPECT_EQ(cfg.to_string(), "TP8/PP8/DP8");
  cfg.moe = true;
  cfg.ep = 4;
  EXPECT_EQ(cfg.to_string(), "TP8/PP8/DP8/EP4");
}

TEST(MakeLayout, Figure8Coordinates) {
  // The 512-GPU dense task of Figure 8: TP=8, PP=8, DP=8, 64 containers.
  const auto p = place(64, 8);
  ParallelismConfig cfg;
  const auto layout = make_layout(p.task, p.containers, cfg);
  EXPECT_EQ(layout.roles.size(), 512u);
  // Container c is stage c%8 of replica c/8; rails are TP ranks.
  for (const auto& r : layout.roles) {
    const auto c = r.endpoint.container.value();
    EXPECT_EQ(r.stage, c % 8);
    EXPECT_EQ(r.dp_rank, c / 8);
    EXPECT_LT(r.rail, 8u);
  }
}

TEST(MakeLayout, PositionGroupsSpanDpReplicas) {
  const auto p = place(16, 4);  // PP4 x DP4 with TP4
  ParallelismConfig cfg;
  cfg.tp = 4;
  cfg.pp = 4;
  cfg.dp = 4;
  const auto layout = make_layout(p.task, p.containers, cfg);
  const auto group = layout.position_group(2, 1);
  EXPECT_EQ(group.size(), 4u);  // one per DP replica
  std::set<std::uint32_t> containers;
  for (const auto& e : group) containers.insert(e.container.value());
  // Containers 2, 6, 10, 14 hold stage 2.
  EXPECT_EQ(containers, (std::set<std::uint32_t>{2, 6, 10, 14}));
}

TEST(MakeLayout, RoleLookup) {
  const auto p = place(4, 2);
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.dp = 2;
  const auto layout = make_layout(p.task, p.containers, cfg);
  const Endpoint e{ContainerId{3}, RnicId{7}};
  const auto* role = layout.role_of(e);
  ASSERT_NE(role, nullptr);
  EXPECT_EQ(role->stage, 1u);
  EXPECT_EQ(role->dp_rank, 1u);
  EXPECT_EQ(role->rail, 1u);
  EXPECT_EQ(layout.role_of(Endpoint{ContainerId{9}, RnicId{0}}), nullptr);
}

TEST(MakeLayout, RejectsShapeMismatch) {
  const auto p = place(4, 8);
  ParallelismConfig cfg;  // needs 64 containers
  EXPECT_THROW((void)make_layout(p.task, p.containers, cfg),
               std::invalid_argument);
  ParallelismConfig cfg2;
  cfg2.tp = 4;  // containers have 8 RNICs
  cfg2.pp = 2;
  cfg2.dp = 2;
  EXPECT_THROW((void)make_layout(p.task, p.containers, cfg2),
               std::invalid_argument);
}

TEST(DefaultParallelism, NearSquareSplitPrefersDp) {
  const auto cfg = default_parallelism(512, 8);
  EXPECT_EQ(cfg.tp, 8u);
  EXPECT_EQ(cfg.pp * cfg.dp, 64u);
  EXPECT_GE(cfg.dp, cfg.pp);
  cfg.validate();
}

TEST(DefaultParallelism, MoeGetsExpertGroups) {
  const auto cfg = default_parallelism(512, 8, /*moe=*/true);
  EXPECT_TRUE(cfg.moe);
  EXPECT_GT(cfg.ep, 1u);
  EXPECT_EQ(cfg.dp % cfg.ep, 0u);
}

TEST(DefaultParallelism, RejectsIndivisible) {
  EXPECT_THROW((void)default_parallelism(100, 8), std::invalid_argument);
  EXPECT_THROW((void)default_parallelism(8, 0), std::invalid_argument);
}

class GpuCountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GpuCountSweep, FactorizationIsConsistent) {
  const auto cfg = default_parallelism(GetParam(), 8);
  EXPECT_EQ(cfg.num_gpus(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Fig12Sizes, GpuCountSweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 512, 1024,
                                           2048));

}  // namespace
}  // namespace skh::workload
