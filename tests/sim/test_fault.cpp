#include "sim/fault.h"

#include <set>

#include <gtest/gtest.h>

namespace skh::sim {
namespace {

TEST(IssueTable, AllTwentyTypesPresent) {
  EXPECT_EQ(all_issue_infos().size(), 20u);
  // Paper numbering is preserved for the 19 production issues.
  for (int i = 1; i <= 19; ++i) {
    const auto t = static_cast<IssueType>(i);
    EXPECT_EQ(static_cast<int>(issue_info(t).type), i);
  }
}

TEST(IssueTable, SymptomsMatchTable1) {
  EXPECT_EQ(issue_info(IssueType::kCrcError).symptom, Symptom::kPacketLoss);
  EXPECT_EQ(issue_info(IssueType::kSwitchPortDown).symptom,
            Symptom::kUnconnectivity);
  EXPECT_EQ(issue_info(IssueType::kRnicFirmwareNotResponding).symptom,
            Symptom::kHighLatency);
  EXPECT_EQ(issue_info(IssueType::kNotUsingRdma).symptom,
            Symptom::kHighLatency);
  EXPECT_EQ(issue_info(IssueType::kContainerCrash).symptom,
            Symptom::kUnconnectivity);
  EXPECT_EQ(issue_info(IssueType::kNvlinkDegradation).symptom, Symptom::kNone);
}

TEST(IssueTable, ComponentClassesMatchTable1) {
  EXPECT_EQ(issue_info(IssueType::kSwitchOffline).component_class,
            ComponentClass::kInterHostNetwork);
  EXPECT_EQ(issue_info(IssueType::kBondError).component_class,
            ComponentClass::kRnic);
  EXPECT_EQ(issue_info(IssueType::kGidChange).component_class,
            ComponentClass::kKernel);
  EXPECT_EQ(issue_info(IssueType::kPcieNicError).component_class,
            ComponentClass::kHostBoard);
  EXPECT_EQ(issue_info(IssueType::kSuboptimalFlowOffloading).component_class,
            ComponentClass::kVirtualSwitch);
  EXPECT_EQ(issue_info(IssueType::kHugepageMisconfig).component_class,
            ComponentClass::kConfiguration);
}

TEST(IssueTable, OnlyIntraHostIsInvisible) {
  for (const auto& info : all_issue_infos()) {
    EXPECT_EQ(info.probe_visible, info.type != IssueType::kNvlinkDegradation);
  }
}

TEST(DefaultEffect, UnconnectivityIsUnreachable) {
  const auto e = default_effect(IssueType::kRnicPortDown);
  EXPECT_TRUE(e.unreachable);
}

TEST(DefaultEffect, HighLatencyMatchesFig18) {
  const auto e = default_effect(IssueType::kRnicFirmwareNotResponding);
  EXPECT_DOUBLE_EQ(e.extra_latency_us, 104.0);  // 16us baseline -> 120us
  EXPECT_LT(e.loss_probability, 0.001);         // "<0.1% loss"
}

TEST(DefaultEffect, FlappingHasPeriod) {
  const auto e = default_effect(IssueType::kSwitchPortFlapping);
  ASSERT_TRUE(e.flap_period.has_value());
  EXPECT_GT(e.flap_period->to_seconds(), 0.0);
}

TEST(Fault, ActiveWindow) {
  Fault f;
  f.start = SimTime::seconds(10);
  f.end = SimTime::seconds(20);
  EXPECT_FALSE(f.active_at(SimTime::seconds(9)));
  EXPECT_TRUE(f.active_at(SimTime::seconds(10)));
  EXPECT_TRUE(f.active_at(SimTime::seconds(19)));
  EXPECT_FALSE(f.active_at(SimTime::seconds(20)));
}

TEST(Fault, FlappingAlternates) {
  Fault f;
  f.start = SimTime::seconds(0);
  f.end = SimTime::seconds(100);
  f.effect.flap_period = SimTime::seconds(5);
  // Phase 0 (0-5s): parity 0 -> not degrading; phase 1 (5-10s): degrading.
  EXPECT_FALSE(f.degrading_at(SimTime::seconds(2)));
  EXPECT_TRUE(f.degrading_at(SimTime::seconds(7)));
  EXPECT_FALSE(f.degrading_at(SimTime::seconds(12)));
  EXPECT_TRUE(f.degrading_at(SimTime::seconds(17)));
}

TEST(Injector, InjectAndQuery) {
  FaultInjector inj;
  const ComponentRef link{ComponentKind::kPhysicalLink, 7};
  const auto id = inj.inject(IssueType::kCrcError, link, SimTime::seconds(5),
                             SimTime::seconds(50));
  EXPECT_EQ(inj.faults().size(), 1u);
  EXPECT_EQ(inj.fault(id).type, IssueType::kCrcError);
  EXPECT_EQ(inj.active_on(link, SimTime::seconds(10)).size(), 1u);
  EXPECT_TRUE(inj.active_on(link, SimTime::seconds(1)).empty());
  const ComponentRef other{ComponentKind::kPhysicalLink, 8};
  EXPECT_TRUE(inj.active_on(other, SimTime::seconds(10)).empty());
}

TEST(Injector, RepairShortensWindow) {
  FaultInjector inj;
  const ComponentRef rnic{ComponentKind::kRnic, 3};
  const auto id = inj.inject(IssueType::kRnicPortDown, rnic,
                             SimTime::seconds(0), SimTime::hours(10));
  inj.repair(id, SimTime::seconds(60));
  EXPECT_EQ(inj.active_on(rnic, SimTime::seconds(59)).size(), 1u);
  EXPECT_TRUE(inj.active_on(rnic, SimTime::seconds(61)).empty());
}

TEST(Injector, RepairCannotExtend) {
  FaultInjector inj;
  const ComponentRef rnic{ComponentKind::kRnic, 3};
  const auto id = inj.inject(IssueType::kRnicPortDown, rnic,
                             SimTime::seconds(0), SimTime::seconds(10));
  inj.repair(id, SimTime::seconds(100));
  EXPECT_TRUE(inj.active_on(rnic, SimTime::seconds(11)).empty());
}

TEST(Injector, RepairBeforeStartClampsToZeroLengthWindow) {
  // Regression: repairing before the fault began used to leave end < start
  // (a negative-duration interval) that active_at could misinterpret.
  FaultInjector inj;
  const ComponentRef rnic{ComponentKind::kRnic, 3};
  const auto id = inj.inject(IssueType::kRnicPortDown, rnic,
                             SimTime::seconds(100), SimTime::seconds(200));
  inj.repair(id, SimTime::seconds(10));
  EXPECT_EQ(inj.fault(id).end, inj.fault(id).start);
  EXPECT_GE(inj.fault(id).end, inj.fault(id).start);
  EXPECT_TRUE(inj.active_on(rnic, SimTime::seconds(150)).empty());
  EXPECT_TRUE(inj.active_at(SimTime::seconds(150)).empty());
}

TEST(Injector, RepeatedRepairIsIdempotent) {
  FaultInjector inj;
  const ComponentRef rnic{ComponentKind::kRnic, 3};
  const auto id = inj.inject(IssueType::kRnicPortDown, rnic,
                             SimTime::seconds(0), SimTime::hours(10));
  inj.repair(id, SimTime::seconds(60));
  const SimTime after_first = inj.fault(id).end;
  // A later repair of an already repaired fault cannot re-extend it...
  inj.repair(id, SimTime::seconds(500));
  EXPECT_EQ(inj.fault(id).end, after_first);
  // ...and repeating the same repair changes nothing.
  inj.repair(id, SimTime::seconds(60));
  EXPECT_EQ(inj.fault(id).end, after_first);
}

TEST(Injector, BadIdsThrow) {
  FaultInjector inj;
  EXPECT_THROW((void)inj.fault(0), std::out_of_range);
  EXPECT_THROW(inj.repair(5, SimTime{}), std::out_of_range);
}

TEST(Injector, ActiveAtReturnsAllLive) {
  FaultInjector inj;
  inj.inject(IssueType::kCrcError, {ComponentKind::kPhysicalLink, 1},
             SimTime::seconds(0), SimTime::seconds(10));
  inj.inject(IssueType::kSwitchOffline, {ComponentKind::kPhysicalSwitch, 2},
             SimTime::seconds(5), SimTime::seconds(15));
  EXPECT_EQ(inj.active_at(SimTime::seconds(7)).size(), 2u);
  EXPECT_EQ(inj.active_at(SimTime::seconds(12)).size(), 1u);
  EXPECT_TRUE(inj.active_at(SimTime::seconds(20)).empty());
}

TEST(Churn, RestartStormIsTimeOrderedAndSeedDeterministic) {
  RngStream a(99);
  RngStream b(99);
  const auto plan1 = make_restart_storm(8, 10, SimTime::minutes(5),
                                        SimTime::seconds(30), a);
  const auto plan2 = make_restart_storm(8, 10, SimTime::minutes(5),
                                        SimTime::seconds(30), b);
  ASSERT_EQ(plan1.size(), 10u);
  for (std::size_t i = 0; i < plan1.size(); ++i) {
    EXPECT_EQ(plan1[i].kind, ChurnKind::kRestart);
    EXPECT_LT(plan1[i].container_index, 8u);
    EXPECT_EQ(plan1[i].container_index, plan2[i].container_index);
    EXPECT_EQ(plan1[i].at, plan2[i].at);
    if (i > 0) EXPECT_GT(plan1[i].at, plan1[i - 1].at);
  }
}

TEST(Churn, ReregistrationRaceHitsDistinctVictimsAtOneInstant) {
  const auto plan =
      make_reregistration_race(4, 4, SimTime::minutes(7));
  ASSERT_EQ(plan.size(), 4u);
  std::vector<bool> hit(4, false);
  for (const auto& e : plan) {
    EXPECT_EQ(e.kind, ChurnKind::kRestart);
    EXPECT_EQ(e.at, SimTime::minutes(7));
    hit[e.container_index] = true;
  }
  for (bool h : hit) EXPECT_TRUE(h);
}

TEST(Churn, MigrationWaveRewritesKind) {
  RngStream rng(7);
  const auto plan = make_migration_wave(6, 5, SimTime::minutes(1),
                                        SimTime::minutes(1), rng);
  ASSERT_EQ(plan.size(), 5u);
  for (const auto& e : plan) EXPECT_EQ(e.kind, ChurnKind::kMigrate);
}

TEST(Churn, KindStrings) {
  EXPECT_EQ(to_string(ChurnKind::kRestart), "restart");
  EXPECT_EQ(to_string(ChurnKind::kMigrate), "migrate");
  EXPECT_EQ(to_string(ChurnKind::kCrash), "crash");
  EXPECT_EQ(to_string(ChurnKind::kAgentDeath), "agent-death");
}

TEST(TelemetryPlan, StormIsSeedDeterministicAndCyclesKinds) {
  RngStream a(4242);
  RngStream b(4242);
  const auto p1 = make_telemetry_storm(14, SimTime::minutes(5),
                                       SimTime::minutes(9),
                                       SimTime::minutes(4), a);
  const auto p2 = make_telemetry_storm(14, SimTime::minutes(5),
                                       SimTime::minutes(9),
                                       SimTime::minutes(4), b);
  ASSERT_EQ(p1.faults.size(), 14u);
  std::set<TelemetryFaultKind> kinds;
  for (std::size_t i = 0; i < p1.faults.size(); ++i) {
    EXPECT_EQ(p1.faults[i].kind, p2.faults[i].kind);
    EXPECT_EQ(p1.faults[i].start, p2.faults[i].start);
    EXPECT_EQ(p1.faults[i].end, p2.faults[i].end);
    EXPECT_EQ(p1.faults[i].magnitude, p2.faults[i].magnitude);
    EXPECT_EQ(p1.faults[i].end - p1.faults[i].start, SimTime::minutes(4));
    if (i > 0) EXPECT_GT(p1.faults[i].start, p1.faults[i - 1].start);
    kinds.insert(p1.faults[i].kind);
  }
  // 14 episodes over 7 kinds: every kind appears (cycling in enum order).
  EXPECT_EQ(kinds.size(), 7u);
}

TEST(TelemetryPlan, MagnitudeAtTakesMaxOfActiveEpisodes) {
  TelemetryFaultPlan plan;
  plan.faults = {
      {TelemetryFaultKind::kResponseLoss, SimTime::seconds(10),
       SimTime::seconds(50), 0.2},
      {TelemetryFaultKind::kResponseLoss, SimTime::seconds(30),
       SimTime::seconds(40), 0.6},
      {TelemetryFaultKind::kDuplication, SimTime::seconds(0),
       SimTime::seconds(100), 0.9},
  };
  EXPECT_EQ(plan.magnitude_at(TelemetryFaultKind::kResponseLoss,
                              SimTime::seconds(5)), 0.0);
  EXPECT_EQ(plan.magnitude_at(TelemetryFaultKind::kResponseLoss,
                              SimTime::seconds(20)), 0.2);
  EXPECT_EQ(plan.magnitude_at(TelemetryFaultKind::kResponseLoss,
                              SimTime::seconds(35)), 0.6);
  // End is exclusive.
  EXPECT_EQ(plan.magnitude_at(TelemetryFaultKind::kResponseLoss,
                              SimTime::seconds(50)), 0.0);
  EXPECT_EQ(plan.magnitude_at(TelemetryFaultKind::kClockSkew,
                              SimTime::seconds(35)), 0.0);
}

TEST(TelemetryPlan, BlackoutAtOnlyMatchesBlackoutEpisodes) {
  TelemetryFaultPlan plan;
  plan.faults = {
      {TelemetryFaultKind::kResponseLoss, SimTime::seconds(0),
       SimTime::seconds(100), 1.0},
      {TelemetryFaultKind::kAnalyzerBlackout, SimTime::seconds(40),
       SimTime::seconds(60), 0.0},
  };
  EXPECT_FALSE(plan.blackout_at(SimTime::seconds(39)));
  EXPECT_TRUE(plan.blackout_at(SimTime::seconds(40)));
  EXPECT_TRUE(plan.blackout_at(SimTime::seconds(59)));
  EXPECT_FALSE(plan.blackout_at(SimTime::seconds(60)));
}

TEST(TelemetryPlan, EmptyPlanIsHonest) {
  const TelemetryFaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.blackout_at(SimTime::minutes(10)));
  for (int k = 0; k <= 6; ++k) {
    EXPECT_EQ(plan.magnitude_at(static_cast<TelemetryFaultKind>(k),
                                SimTime::minutes(10)), 0.0);
  }
}

TEST(TelemetryPlan, KindStrings) {
  EXPECT_EQ(to_string(TelemetryFaultKind::kResponseLoss), "response-loss");
  EXPECT_EQ(to_string(TelemetryFaultKind::kDuplication), "duplication");
  EXPECT_EQ(to_string(TelemetryFaultKind::kReordering), "reordering");
  EXPECT_EQ(to_string(TelemetryFaultKind::kClockSkew), "clock-skew");
  EXPECT_EQ(to_string(TelemetryFaultKind::kRttCorruption), "rtt-corruption");
  EXPECT_EQ(to_string(TelemetryFaultKind::kTracerouteHopLoss),
            "traceroute-hop-loss");
  EXPECT_EQ(to_string(TelemetryFaultKind::kAnalyzerBlackout),
            "analyzer-blackout");
}

TEST(CollectivePlan, HangAndSlowdownWindows) {
  CollectiveFaultPlan plan;
  plan.faults = {
      make_collective_hang(2, SimTime::seconds(10), SimTime::seconds(20)),
      make_straggler_rank(1, SimTime::seconds(0), SimTime::seconds(100),
                          8.0),
      make_host_slowdown(1, SimTime::seconds(50), SimTime::seconds(10),
                         3.5),
  };
  EXPECT_FALSE(plan.empty());
  // Hang windows are per-container, end-exclusive, and kind-specific.
  EXPECT_FALSE(plan.hang_at(2, SimTime::seconds(9)));
  EXPECT_TRUE(plan.hang_at(2, SimTime::seconds(10)));
  EXPECT_TRUE(plan.hang_at(2, SimTime::seconds(29)));
  EXPECT_FALSE(plan.hang_at(2, SimTime::seconds(30)));
  EXPECT_FALSE(plan.hang_at(1, SimTime::seconds(15)));
  // Slowdowns never read as hangs; overlapping episodes take the max.
  EXPECT_FALSE(plan.hang_at(1, SimTime::seconds(55)));
  EXPECT_DOUBLE_EQ(plan.slowdown_at(1, SimTime::seconds(20)), 8.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(1, SimTime::seconds(55)), 8.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(2, SimTime::seconds(15)), 1.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(1, SimTime::seconds(100)), 1.0);
}

TEST(CollectivePlan, EmptyPlanMeansHealthyHosts) {
  const CollectiveFaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.hang_at(0, SimTime::minutes(10)));
  EXPECT_DOUBLE_EQ(plan.slowdown_at(0, SimTime::minutes(10)), 1.0);
}

TEST(CollectivePlan, StormIsSeedDeterministicAndCyclesKinds) {
  RngStream a(7777);
  RngStream b(7777);
  const auto p1 = make_collective_storm(8, 9, SimTime::minutes(5),
                                        SimTime::minutes(10),
                                        SimTime::minutes(5), a);
  const auto p2 = make_collective_storm(8, 9, SimTime::minutes(5),
                                        SimTime::minutes(10),
                                        SimTime::minutes(5), b);
  ASSERT_EQ(p1.faults.size(), 9u);
  std::set<CollectiveFaultKind> kinds;
  for (std::size_t i = 0; i < p1.faults.size(); ++i) {
    EXPECT_EQ(p1.faults[i].kind, p2.faults[i].kind);
    EXPECT_EQ(p1.faults[i].container_index, p2.faults[i].container_index);
    EXPECT_EQ(p1.faults[i].start, p2.faults[i].start);
    EXPECT_EQ(p1.faults[i].end, p2.faults[i].end);
    EXPECT_EQ(p1.faults[i].magnitude, p2.faults[i].magnitude);
    EXPECT_LT(p1.faults[i].container_index, 8u);
    EXPECT_EQ(p1.faults[i].end - p1.faults[i].start, SimTime::minutes(5));
    if (i > 0) EXPECT_GT(p1.faults[i].start, p1.faults[i - 1].start);
    kinds.insert(p1.faults[i].kind);
  }
  // 9 episodes over 3 kinds: every kind appears (cycling in enum order).
  EXPECT_EQ(kinds.size(), 3u);
}

TEST(CollectivePlan, KindStrings) {
  EXPECT_EQ(to_string(CollectiveFaultKind::kHang), "collective-hang");
  EXPECT_EQ(to_string(CollectiveFaultKind::kStraggler), "straggler-rank");
  EXPECT_EQ(to_string(CollectiveFaultKind::kHostSlowdown), "host-slowdown");
}

topo::Topology gray_topology() {
  topo::TopologyConfig cfg;
  cfg.num_hosts = 8;
  cfg.rails_per_host = 2;
  cfg.hosts_per_segment = 2;
  cfg.spines_per_rail = 4;
  cfg.num_cores = 2;
  return topo::Topology::build(cfg);
}

TEST(GrayMember, TargetsTheMemberUniqueLink) {
  // The plan must aim at links[1] of exactly the requested equal-cost
  // member — the ToR->spine hop that no sibling member shares — for every
  // member of an in-rail pair.
  const auto t = gray_topology();
  const RnicId src = t.rnic_of(HostId{0}, 1);
  const RnicId dst = t.rnic_of(HostId{6}, 1);
  const std::uint32_t n = t.num_paths(src, dst);
  ASSERT_EQ(n, 4u);  // spines_per_rail-way in-rail ECMP
  std::set<std::uint32_t> targets;
  for (std::uint32_t m = 0; m < n; ++m) {
    const auto plan = make_gray_member_link(t, src, dst, m);
    const auto path = t.route_via(src, dst, m);
    ASSERT_GE(path.links.size(), 3u);
    EXPECT_EQ(plan.target.kind, ComponentKind::kPhysicalLink);
    EXPECT_EQ(plan.target.index, path.links[1].value());
    EXPECT_EQ(plan.path_id, m);
    targets.insert(plan.target.index);
  }
  // Distinct members degrade distinct links — the whole point of the plan.
  EXPECT_EQ(targets.size(), n);
}

TEST(GrayMember, EffectIsPartialLossWithNoOtherTell) {
  const auto t = gray_topology();
  const RnicId src = t.rnic_of(HostId{0}, 0);
  const RnicId dst = t.rnic_of(HostId{5}, 0);
  const auto plan = make_gray_member_link(t, src, dst, 2, 0.4, 7.0);
  EXPECT_DOUBLE_EQ(plan.effect.loss_probability, 0.4);
  EXPECT_DOUBLE_EQ(plan.effect.extra_latency_us, 7.0);
  EXPECT_FALSE(plan.effect.unreachable);
  EXPECT_FALSE(plan.effect.flap_period.has_value());
}

TEST(GrayMember, RejectsBadMemberAndPathsWithoutMemberLinks) {
  const auto t = gray_topology();
  const RnicId src = t.rnic_of(HostId{0}, 1);
  const RnicId in_rail = t.rnic_of(HostId{6}, 1);
  EXPECT_THROW((void)make_gray_member_link(t, src, in_rail,
                                           t.num_paths(src, in_rail)),
               std::out_of_range);
  // Intra-host and same-ToR pairs have no switch-switch member link.
  EXPECT_THROW(
      (void)make_gray_member_link(t, src, t.rnic_of(HostId{0}, 0), 0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_gray_member_link(t, src, t.rnic_of(HostId{1}, 1), 0),
      std::invalid_argument);
}

TEST(ComponentRef, EqualityAndStrings) {
  const ComponentRef a{ComponentKind::kRnic, 4};
  const ComponentRef b{ComponentKind::kRnic, 4};
  const ComponentRef c{ComponentKind::kHost, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(to_string(a), "rnic#4");
  EXPECT_EQ(to_string(IssueType::kGidChange), "GID change");
  EXPECT_EQ(to_string(Symptom::kHighLatency), "High Latency");
}

}  // namespace
}  // namespace skh::sim
