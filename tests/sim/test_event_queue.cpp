#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace skh::sim {
namespace {

TEST(EventQueue, StartsAtZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now().raw_nanos(), 0);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  q.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 3.0);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(SimTime::seconds(1), [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue q;
  SimTime fired;
  q.schedule_at(SimTime::seconds(5), [&] {
    q.schedule_after(SimTime::seconds(2), [&] { fired = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired.to_seconds(), 7.0);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.schedule_at(SimTime::seconds(10), [&] {
    q.schedule_at(SimTime::seconds(1), [] {});  // in the past
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 10.0);
}

// Pins the documented contract of schedule_at (see event_queue.h): an
// event scheduled in the past is clamped to now() and runs on the next
// step — it is not dropped, and the clock never moves backwards.
TEST(EventQueue, PastClampedEventRunsOnNextStepAtNow) {
  EventQueue q;
  SimTime observed = SimTime::seconds(-1);
  bool ran_inline = true;
  q.schedule_at(SimTime::seconds(10), [&] {
    q.schedule_at(SimTime::seconds(1), [&] { observed = q.now(); });
    ran_inline = (observed.to_seconds() >= 0);  // must still be pending here
  });
  ASSERT_TRUE(q.step());
  EXPECT_FALSE(ran_inline);
  EXPECT_EQ(q.pending(), 1u);
  ASSERT_TRUE(q.step());
  EXPECT_DOUBLE_EQ(observed.to_seconds(), 10.0);
}

// Pins the documented equal-time FIFO: events that land at the same
// timestamp — whether scheduled there directly or clamped from the past —
// run in scheduling order, after the equal-time events queued before them.
TEST(EventQueue, ClampedEventsKeepFifoOrderWithEqualTimeEvents) {
  EventQueue q;
  std::vector<char> order;
  q.schedule_at(SimTime::seconds(10), [&] {
    order.push_back('a');
    q.schedule_at(SimTime::seconds(2), [&] { order.push_back('c'); });
    q.schedule_at(SimTime::seconds(1), [&] { order.push_back('d'); });
  });
  q.schedule_at(SimTime::seconds(10), [&] { order.push_back('b'); });
  q.run_all();
  // 'b' was enqueued at t=10 before the clamped events existed; the
  // clamped pair then runs in the order it was scheduled, ignoring the
  // (stale) requested timestamps.
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c', 'd'}));
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 10.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  q.schedule_at(SimTime::seconds(2), [&] { ++fired; });
  q.schedule_at(SimTime::seconds(5), [&] { ++fired; });
  q.run_until(SimTime::seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.run_until(SimTime::minutes(30));
  EXPECT_DOUBLE_EQ(q.now().to_minutes(), 30.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> recur = [&] {
    if (++count < 5) q.schedule_after(SimTime::seconds(1), recur);
  };
  q.schedule_at(SimTime::seconds(0), recur);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now().to_seconds(), 4.0);
}

}  // namespace
}  // namespace skh::sim
