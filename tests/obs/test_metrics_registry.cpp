#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace skh::obs {
namespace {

TEST(MetricsRegistry, UnboundHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.bound());
  EXPECT_FALSE(g.bound());
  EXPECT_FALSE(h.bound());
  c.inc();
  c.add(5);
  g.set(3.0);
  g.add(1.0);
  h.observe(42.0);  // must not crash
}

TEST(MetricsRegistry, CounterRoundTrip) {
  MetricsRegistry r;
  const auto id = r.counter_id("a.count");
  auto c = r.bind_counter(id);
  EXPECT_TRUE(c.bound());
  c.inc();
  c.add(9);
  EXPECT_EQ(r.counter_total(id), 10u);
  // Re-registering the same name returns the same series.
  EXPECT_EQ(r.counter_id("a.count"), id);
  auto c2 = r.bind_counter(r.counter_id("a.count"));
  c2.add(5);
  EXPECT_EQ(r.counter_total(id), 15u);
}

TEST(MetricsRegistry, HistogramBucketBoundaries) {
  MetricsRegistry r;
  const std::array<double, 2> bounds{1.0, 2.0};
  auto h = r.bind_histogram(r.histogram_id("h", bounds));
  // Bucket i counts bounds[i-1] < v <= bounds[i]; overflow catches the
  // rest. Boundary values land in the bucket they close.
  for (const double v : {0.5, 1.0, 1.5, 2.0, 2.5}) h.observe(v);
  const auto snap = r.scrape();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0];
  EXPECT_EQ(hs.bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(hs.counts, (std::vector<std::uint64_t>{2, 2, 1}));
  EXPECT_EQ(hs.count, 5u);
  EXPECT_DOUBLE_EQ(hs.sum, 7.5);
}

TEST(MetricsRegistry, ScrapeIsNameSorted) {
  MetricsRegistry r;
  r.bind_counter(r.counter_id("zeta")).inc();
  r.bind_counter(r.counter_id("alpha")).inc();
  r.bind_counter(r.counter_id("mid")).inc();
  r.bind_gauge(r.gauge_id("g.z")).set(1.0);
  r.bind_gauge(r.gauge_id("g.a")).set(2.0);
  const auto snap = r.scrape();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].name, "g.a");
  EXPECT_EQ(snap.gauges[1].name, "g.z");
}

/// Shard the same logical workload over `n_threads` and scrape. Counter
/// and bucket values are u64 sums (exact, order-independent); gauge and
/// histogram-sum contributions are chosen exactly representable so FP
/// addition is associative here and scrapes are bit-identical no matter
/// how the work was split.
MetricsSnapshot record_sharded(std::size_t n_threads) {
  MetricsRegistry r;
  constexpr std::uint64_t kTotal = 9600;  // divides 1, 4, 16
  const std::array<double, 3> bounds{10.0, 20.0, 50.0};
  const std::uint64_t per = kTotal / n_threads;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < n_threads; ++t) {
    workers.emplace_back([&r, &bounds, per, t] {
      auto c = r.bind_counter(r.counter_id("work.items"));
      auto g = r.bind_gauge(r.gauge_id("work.level"));
      auto h = r.bind_histogram(r.histogram_id("work.size", bounds));
      // Iterate this thread's slice of a single global index space so the
      // observed multiset is identical however the work is sharded.
      for (std::uint64_t i = t * per; i < (t + 1) * per; ++i) {
        c.inc();
        g.add(0.25);                                   // exact in binary
        h.observe(static_cast<double>(i % 64));        // integers: exact
      }
    });
  }
  for (auto& w : workers) w.join();
  return r.scrape();
}

TEST(MetricsRegistry, ScrapeDeterministicAcrossThreadCounts) {
  const auto one = record_sharded(1);
  const auto four = record_sharded(4);
  const auto sixteen = record_sharded(16);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, sixteen);
  // Sanity: the workload actually landed.
  EXPECT_EQ(one.counter_or("work.items"), 9600u);
  ASSERT_EQ(one.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(one.gauges[0].value, 9600 * 0.25);
}

TEST(MetricsSnapshot, MergeAddsByName) {
  MetricsRegistry a;
  a.bind_counter(a.counter_id("shared")).add(3);
  a.bind_counter(a.counter_id("only_a")).add(1);
  a.bind_gauge(a.gauge_id("g")).set(2.0);
  MetricsRegistry b;
  b.bind_counter(b.counter_id("shared")).add(4);
  b.bind_counter(b.counter_id("only_b")).add(7);
  b.bind_gauge(b.gauge_id("g")).set(5.0);

  MetricsSnapshot merged = a.scrape();
  merged.merge(b.scrape());
  EXPECT_EQ(merged.counter_or("shared"), 7u);
  EXPECT_EQ(merged.counter_or("only_a"), 1u);
  EXPECT_EQ(merged.counter_or("only_b"), 7u);
  EXPECT_EQ(merged.counter_or("missing", 99), 99u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges[0].value, 7.0);  // fleet gauge = sum
}

TEST(MetricsSnapshot, MergeHistogramsRequiresMatchingBounds) {
  const std::array<double, 2> b1{1.0, 2.0};
  const std::array<double, 1> b2{5.0};
  MetricsRegistry a;
  a.bind_histogram(a.histogram_id("h", b1)).observe(1.5);
  MetricsRegistry b;
  b.bind_histogram(b.histogram_id("h", b2)).observe(1.5);
  MetricsSnapshot snap = a.scrape();
  EXPECT_THROW(snap.merge(b.scrape()), std::invalid_argument);
}

TEST(MetricsSnapshot, MergeEmptySpanYieldsEmptySnapshot) {
  const auto merged = merge_snapshots({});
  EXPECT_TRUE(merged.counters.empty());
  EXPECT_TRUE(merged.gauges.empty());
  EXPECT_TRUE(merged.histograms.empty());
}

TEST(MetricsSnapshot, MergeSnapshotsPoolsInOrder) {
  std::vector<MetricsSnapshot> snaps;
  for (int i = 1; i <= 3; ++i) {
    MetricsRegistry r;
    r.bind_counter(r.counter_id("n")).add(static_cast<std::uint64_t>(i));
    snaps.push_back(r.scrape());
  }
  const auto fleet = merge_snapshots(snaps);
  EXPECT_EQ(fleet.counter_or("n"), 6u);
}

// Regression: handles bound early must keep pointing at live cells no
// matter how much the registry grows afterwards — from this thread or any
// other. The old failure mode (reallocating cell storage) shows up under
// ASan as heap-use-after-free on the post-growth records, and as lost or
// corrupted totals without it.
TEST(MetricsRegistry, BoundCellsStableAcrossLaterRegistration) {
  MetricsRegistry r;
  const std::array<double, 2> bounds{1.0, 2.0};
  auto c = r.bind_counter(r.counter_id("stable.count"));
  auto g = r.bind_gauge(r.gauge_id("stable.level"));
  auto h = r.bind_histogram(r.histogram_id("stable.size", bounds));
  c.inc();
  g.set(1.0);
  h.observe(0.5);
  // Grow the registry far past any small-buffer capacity from another
  // thread (its own shard) ...
  std::thread grower([&r, &bounds] {
    for (int i = 0; i < 200; ++i) {
      const std::string n = "noise." + std::to_string(i);
      r.bind_counter(r.counter_id(n + ".c")).inc();
      r.bind_gauge(r.gauge_id(n + ".g")).set(1.0);
      r.bind_histogram(r.histogram_id(n + ".h", bounds)).observe(1.5);
    }
  });
  grower.join();
  // ... and from this thread, which grows the very shard the old handles
  // point into.
  for (int i = 0; i < 200; ++i) {
    const std::string n = "local." + std::to_string(i);
    (void)r.bind_counter(r.counter_id(n + ".c"));
    (void)r.bind_gauge(r.gauge_id(n + ".g"));
    (void)r.bind_histogram(r.histogram_id(n + ".h", bounds));
  }
  // Record through the pre-growth handles.
  c.add(41);
  g.add(1.5);
  h.observe(1.5);
  const auto snap = r.scrape();
  EXPECT_EQ(snap.counter_or("stable.count"), 42u);
  for (const auto& gs : snap.gauges) {
    if (gs.name == "stable.level") EXPECT_DOUBLE_EQ(gs.value, 2.5);
  }
  for (const auto& hs : snap.histograms) {
    if (hs.name != "stable.size") continue;
    EXPECT_EQ(hs.count, 2u);
    EXPECT_EQ(hs.counts, (std::vector<std::uint64_t>{1, 1, 0}));
    EXPECT_DOUBLE_EQ(hs.sum, 2.0);
  }
}

// Regression: NaN used to fall through every `v > bound` comparison into
// bucket 0 (and ±inf poisoned `sum`); non-finite observations must be
// counted in `dropped` and leave buckets/count/sum untouched.
TEST(MetricsRegistry, HistogramDropsNonFiniteObservations) {
  MetricsRegistry r;
  const std::array<double, 2> bounds{1.0, 2.0};
  auto h = r.bind_histogram(r.histogram_id("h", bounds));
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(1.5);
  const auto snap = r.scrape();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0];
  EXPECT_EQ(hs.counts, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_EQ(hs.count, 1u);
  EXPECT_EQ(hs.dropped, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 1.5);
  EXPECT_NE(snap.to_string().find("dropped=3"), std::string::npos);
  // dropped pools across snapshots like every other integer aggregate.
  MetricsSnapshot merged = snap;
  merged.merge(snap);
  EXPECT_EQ(merged.histograms[0].dropped, 6u);
}

// Regression: shards used to be keyed by std::this_thread::get_id(), which
// the OS recycles — a new worker inheriting a dead worker's id silently
// aliased the dead worker's shard. Shards are now keyed by a monotone
// registration token issued once per thread.
TEST(MetricsRegistry, ThreadIdReuseDoesNotAliasShards) {
  MetricsRegistry r;
  const auto id = r.counter_id("n");

  // Deterministic simulation of id reuse via the token seam: two distinct
  // registration tokens (two thread lifetimes that happened to share an OS
  // id) must land in two distinct shards.
  auto c1 = r.bind_counter_for_token(id, 1001);
  auto c2 = r.bind_counter_for_token(id, 1002);
  c1.add(5);
  c2.add(7);
  EXPECT_EQ(r.shard_count(), 2u);
  EXPECT_EQ(r.counter_total(id), 12u);
  // Rebinding an existing token reuses its shard.
  auto c1b = r.bind_counter_for_token(id, 1001);
  c1b.inc();
  EXPECT_EQ(r.shard_count(), 2u);
  EXPECT_EQ(r.counter_total(id), 13u);

  // The live path: sequentially spawned short-lived threads are prime
  // candidates for OS id reuse, yet each must get a fresh token and thus a
  // fresh shard.
  constexpr std::size_t kThreads = 8;
  std::vector<std::uint64_t> tokens(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    std::thread t([&r, &tokens, id, i] {
      tokens[i] = MetricsRegistry::this_thread_token();
      r.bind_counter(id).inc();
    });
    t.join();
  }
  for (std::size_t i = 0; i < kThreads; ++i) {
    for (std::size_t j = i + 1; j < kThreads; ++j) {
      EXPECT_NE(tokens[i], tokens[j]);
    }
  }
  EXPECT_EQ(r.shard_count(), 2u + kThreads);
  EXPECT_EQ(r.counter_total(id), 13u + kThreads);
}

TEST(MetricsSnapshot, ToStringListsEveryMetric) {
  MetricsRegistry r;
  r.bind_counter(r.counter_id("c.x")).add(2);
  r.bind_gauge(r.gauge_id("g.y")).set(1.5);
  const std::array<double, 1> bounds{1.0};
  r.bind_histogram(r.histogram_id("h.z", bounds)).observe(0.5);
  const auto text = r.scrape().to_string();
  EXPECT_NE(text.find("c.x"), std::string::npos);
  EXPECT_NE(text.find("g.y"), std::string::npos);
  EXPECT_NE(text.find("h.z"), std::string::npos);
}

}  // namespace
}  // namespace skh::obs
