#include "obs/exposition.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/pull_server.h"
#include "runner/campaign_runner.h"

namespace skh::obs {
namespace {

TEST(PrometheusName, SanitizesAndPrefixes) {
  EXPECT_EQ(prometheus_name("probe.rtt_us"), "skh_probe_rtt_us");
  EXPECT_EQ(prometheus_name("detector.shard0.items-routed"),
            "skh_detector_shard0_items_routed");
  EXPECT_EQ(prometheus_name("weird name/with:chars"),
            "skh_weird_name_with_chars");
  EXPECT_EQ(prometheus_name(""), "skh_");
}

TEST(PrometheusText, FormatContract) {
  MetricsRegistry reg;
  auto c = reg.bind_counter(reg.counter_id("zeta.count"));
  auto g = reg.bind_gauge(reg.gauge_id("alpha.level"));
  const std::array<double, 3> bounds{1.0, 5.0, 10.0};
  auto h = reg.bind_histogram(reg.histogram_id("mid.lat_s", bounds));
  c.add(7);
  g.set(2.5);
  h.observe(0.5);  // bucket le=1
  h.observe(3.0);  // bucket le=5
  h.observe(99.0);  // overflow
  const std::string text = prometheus_text(reg.scrape());

  // Sections in order counters -> gauges -> histograms, regardless of the
  // registration names' own alphabetical order.
  const auto counter_pos = text.find("# TYPE skh_zeta_count counter");
  const auto gauge_pos = text.find("# TYPE skh_alpha_level gauge");
  const auto hist_pos = text.find("# TYPE skh_mid_lat_s histogram");
  ASSERT_NE(counter_pos, std::string::npos) << text;
  ASSERT_NE(gauge_pos, std::string::npos) << text;
  ASSERT_NE(hist_pos, std::string::npos) << text;
  EXPECT_LT(counter_pos, gauge_pos);
  EXPECT_LT(gauge_pos, hist_pos);

  EXPECT_NE(text.find("skh_zeta_count 7\n"), std::string::npos);
  EXPECT_NE(text.find("skh_alpha_level 2.5\n"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("skh_mid_lat_s_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("skh_mid_lat_s_bucket{le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("skh_mid_lat_s_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("skh_mid_lat_s_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("skh_mid_lat_s_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("skh_mid_lat_s_sum "), std::string::npos);
  EXPECT_NE(text.find("skh_mid_lat_s_dropped 0\n"), std::string::npos);
}

TEST(PrometheusText, EqualSnapshotsRenderEqualBytes) {
  // %.17g round-trips doubles exactly, so equal snapshots must render to
  // equal bytes — the property the live endpoint's determinism rests on.
  MetricsSnapshot a;
  a.gauges.push_back({"g.one", 0.1 + 0.2});
  a.counters.push_back({"c.one", 12345678901234567ull});
  MetricsSnapshot b = a;
  EXPECT_EQ(prometheus_text(a), prometheus_text(b));
  // One ulp must show up in the rendered bytes.
  b.gauges[0].value = std::nextafter(b.gauges[0].value, 1.0);
  EXPECT_NE(prometheus_text(a), prometheus_text(b));
}

// ---------------------------------------------------------------------------

/// Dial 127.0.0.1:`port`, send `request`, return the full response.
std::string http_fetch(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, request.data(), request.size(), 0);
  std::string out;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(PullServer, ServesMetricsAndRejectsOtherPaths) {
  PullServer server(0);  // ephemeral port
  ASSERT_NE(server.port(), 0);
  server.set_body_provider([] { return std::string("skh_up 1\n"); });

  std::string ok, missing;
  std::thread client([&] {
    ok = http_fetch(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
    missing = http_fetch(server.port(), "GET /other HTTP/1.0\r\n\r\n");
  });
  server.serve(2);
  client.join();

  EXPECT_NE(ok.find("200"), std::string::npos) << ok;
  EXPECT_NE(ok.find("skh_up 1\n"), std::string::npos) << ok;
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  EXPECT_EQ(missing.find("skh_up"), std::string::npos) << missing;

  server.close();
  EXPECT_FALSE(server.serve_once());
}

// ---------------------------------------------------------------------------

runner::CampaignConfig scrape_config() {
  runner::CampaignConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 4;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.probe_interval = SimTime::seconds(5);
  cfg.hunter.inference.candidate_dp = {2};
  cfg.tasks = {{4, 4, 2, 2}};
  cfg.visible_faults = 4;
  cfg.invisible_faults = 0;
  cfg.phantom_agents = 0;
  cfg.fault_gap = SimTime::minutes(8);
  cfg.fault_duration = SimTime::minutes(4);
  cfg.drain = SimTime::minutes(10);
  cfg.obs.metrics = true;
  return cfg;
}

TEST(PrometheusText, ScrapeIsByteIdenticalAcrossThreadCounts) {
  // The live endpoint contract: the merged fleet exposition is the same
  // document no matter how run_many spread campaigns over worker threads.
  const auto cfg = scrape_config();
  const std::uint64_t master = 0x5c4a9e;
  const std::string one =
      prometheus_text(runner::run_many(cfg, master, 4, 1).fleet);
  const std::string four =
      prometheus_text(runner::run_many(cfg, master, 4, 4).fleet);
  const std::string sixteen =
      prometheus_text(runner::run_many(cfg, master, 4, 16).fleet);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, sixteen);
}

/// Split an exposition document into lines, dropping per-shard series
/// (any line whose metric name contains "shard" — the documented exemption
/// from cross-shard-count identity).
std::vector<std::string> shard_free_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("shard") == std::string::npos) lines.push_back(line);
  }
  return lines;
}

TEST(PrometheusText, ScrapeIsByteIdenticalAcrossShardCountsModuloShardSeries) {
  // Partitioning the analyzer across 1/4/16 detector shards may add
  // per-shard gauges/counters (skh_detector_shard<N>_*), but every other
  // series must stay byte-identical — sharding is a pure scale-out.
  auto cfg = scrape_config();
  const std::uint64_t master = 0x5348;
  cfg.hunter.analyzer_shards = 1;
  const std::string one =
      prometheus_text(runner::run_many(cfg, master, 2, 1).fleet);
  const auto base = shard_free_lines(one);
  EXPECT_FALSE(base.empty());
  for (const std::size_t shards : {4UL, 16UL}) {
    cfg.hunter.analyzer_shards = shards;
    const std::string text =
        prometheus_text(runner::run_many(cfg, master, 2, 1).fleet);
    EXPECT_EQ(base, shard_free_lines(text)) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace skh::obs
