#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/timeline.h"

namespace skh::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator. Checks grammar only (objects,
// arrays, strings with escapes, numbers, literals); exporters must emit
// output this accepts in full.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(JsonValidator, SelfCheck) {
  EXPECT_TRUE(JsonValidator(R"({"a":[1,-2.5,3e4,"x\n\"y"],"b":null})").valid());
  EXPECT_FALSE(JsonValidator(R"({"a":1)").valid());
  EXPECT_FALSE(JsonValidator(R"({"a":1}})").valid());
  EXPECT_FALSE(JsonValidator("{'a':1}").valid());
}

// ---------------------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t(16);
  EXPECT_FALSE(t.enabled());
  t.instant("cat", "ev", SimTime::seconds(1));
  t.span("cat", "sp", SimTime::seconds(1), SimTime::seconds(2));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingWrapEvictsOldestAndCountsDrops) {
  Tracer t(8);
  t.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    t.instant("cat", "ev", SimTime::millis(i), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 8u);
  // Oldest first: the survivors are events 12..19.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].arg_a, 12 + i);
    EXPECT_EQ(evs[i].ts, SimTime::millis(12 + static_cast<int>(i)));
  }
}

TEST(Tracer, SpanStoresIntervalAndPayload) {
  Tracer t(4);
  t.set_enabled(true);
  t.span("probe", "rtt", SimTime::micros(100), SimTime::micros(350), 7, 9,
         2.5);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].kind, TraceKind::kSpan);
  EXPECT_EQ(evs[0].ts, SimTime::micros(100));
  EXPECT_EQ(evs[0].dur, SimTime::micros(250));
  EXPECT_STREQ(evs[0].category, "probe");
  EXPECT_STREQ(evs[0].name, "rtt");
  EXPECT_EQ(evs[0].arg_a, 7u);
  EXPECT_EQ(evs[0].arg_b, 9u);
  EXPECT_DOUBLE_EQ(evs[0].value, 2.5);
}

TEST(Tracer, ClearResetsRingAndDropCount) {
  Tracer t(2);
  t.set_enabled(true);
  for (int i = 0; i < 5; ++i) t.instant("c", "e", SimTime::millis(i));
  EXPECT_EQ(t.dropped(), 3u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.instant("c", "e", SimTime::millis(9));
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].ts, SimTime::millis(9));
}

TEST(Tracer, MinimumCapacityIsOne) {
  Tracer t(0);
  t.set_enabled(true);
  EXPECT_EQ(t.capacity(), 1u);
  t.instant("c", "a", SimTime::millis(1));
  t.instant("c", "b", SimTime::millis(2));
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_STREQ(t.events()[0].name, "b");
}

TEST(TraceExport, ChromeTraceIsWellFormedJson) {
  Tracer t(64);
  t.set_enabled(true);
  t.instant("detector", "lof.score", SimTime::seconds(1), 3, 0, 1.75);
  t.span("probe", "rtt", SimTime::micros(10), SimTime::micros(42), 1, 2, 32.0);
  // Hostile name: escaping must keep the document parseable.
  t.instant("detector", "quote\"back\\slash\nnewline", SimTime::seconds(2));
  std::ostringstream os;
  export_chrome_trace(t, os);
  const std::string doc = os.str();
  EXPECT_TRUE(JsonValidator(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);  // the instants
  // One tid per category, first-seen order: detector=0, probe=1.
  EXPECT_NE(doc.find("\"cat\":\"detector\",\"ph\":\"i\",\"s\":\"t\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"tid\":1"), std::string::npos);
}

TEST(TraceExport, EmptyTracerExportsEmptyDocument) {
  Tracer t(4);
  std::ostringstream os;
  export_chrome_trace(t, os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}");
}

TEST(TraceExport, JsonlEmitsOneValidObjectPerEvent) {
  Tracer t(8);
  t.set_enabled(true);
  t.instant("hunter", "case.open", SimTime::seconds(3), 11);
  t.span("hunter", "case", SimTime::seconds(3), SimTime::seconds(8), 11);
  std::ostringstream os;
  export_jsonl(t, os);
  std::istringstream in(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& l : lines) {
    EXPECT_TRUE(JsonValidator(l).valid()) << l;
  }
  EXPECT_NE(lines[0].find("\"kind\":\"instant\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"dur_us\":5000000.000"), std::string::npos);
}

TEST(CaseTimeline, ToStringShowsRelativeOffsets) {
  CaseTimeline tl;
  EXPECT_TRUE(tl.empty());
  tl.add(SimTime::seconds(100), "case.open", "first anomalous window");
  tl.add(SimTime::seconds(130), "anomaly", "packet_loss on c1/r0 -> c2/r0",
         3.5);
  tl.add(SimTime::seconds(190), "case.close", "quiet period elapsed");
  EXPECT_FALSE(tl.empty());
  const std::string text = tl.to_string();
  EXPECT_NE(text.find("+     0.000s"), std::string::npos);
  EXPECT_NE(text.find("+    30.000s"), std::string::npos);
  EXPECT_NE(text.find("+    90.000s"), std::string::npos);
  EXPECT_NE(text.find("case.open"), std::string::npos);
  EXPECT_NE(text.find("3.5"), std::string::npos);
  EXPECT_NE(text.find("quiet period elapsed"), std::string::npos);
}

}  // namespace
}  // namespace skh::obs
