#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/json_lint.h"
#include "obs/timeline.h"

namespace skh::obs {
namespace {

TEST(JsonValid, SelfCheck) {
  EXPECT_TRUE(json_valid(R"({"a":[1,-2.5,3e4,"x\n\"y"],"b":null})"));
  EXPECT_FALSE(json_valid(R"({"a":1)"));
  EXPECT_FALSE(json_valid(R"({"a":1}})"));
  EXPECT_FALSE(json_valid("{'a':1}"));
}

// ---------------------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t(16);
  EXPECT_FALSE(t.enabled());
  t.instant("cat", "ev", SimTime::seconds(1));
  t.span("cat", "sp", SimTime::seconds(1), SimTime::seconds(2));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingWrapEvictsOldestAndCountsDrops) {
  Tracer t(8);
  t.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    t.instant("cat", "ev", SimTime::millis(i), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 8u);
  // Oldest first: the survivors are events 12..19.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].arg_a, 12 + i);
    EXPECT_EQ(evs[i].ts, SimTime::millis(12 + static_cast<int>(i)));
  }
}

TEST(Tracer, SpanStoresIntervalAndPayload) {
  Tracer t(4);
  t.set_enabled(true);
  t.span("probe", "rtt", SimTime::micros(100), SimTime::micros(350), 7, 9,
         2.5);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].kind, TraceKind::kSpan);
  EXPECT_EQ(evs[0].ts, SimTime::micros(100));
  EXPECT_EQ(evs[0].dur, SimTime::micros(250));
  EXPECT_STREQ(evs[0].category, "probe");
  EXPECT_STREQ(evs[0].name, "rtt");
  EXPECT_EQ(evs[0].arg_a, 7u);
  EXPECT_EQ(evs[0].arg_b, 9u);
  EXPECT_DOUBLE_EQ(evs[0].value, 2.5);
}

TEST(Tracer, ClearResetsRingAndDropCount) {
  Tracer t(2);
  t.set_enabled(true);
  for (int i = 0; i < 5; ++i) t.instant("c", "e", SimTime::millis(i));
  EXPECT_EQ(t.dropped(), 3u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.instant("c", "e", SimTime::millis(9));
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].ts, SimTime::millis(9));
}

TEST(Tracer, MinimumCapacityIsOne) {
  Tracer t(0);
  t.set_enabled(true);
  EXPECT_EQ(t.capacity(), 1u);
  t.instant("c", "a", SimTime::millis(1));
  t.instant("c", "b", SimTime::millis(2));
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_STREQ(t.events()[0].name, "b");
}

TEST(TraceExport, ChromeTraceIsWellFormedJson) {
  Tracer t(64);
  t.set_enabled(true);
  t.instant("detector", "lof.score", SimTime::seconds(1), 3, 0, 1.75);
  t.span("probe", "rtt", SimTime::micros(10), SimTime::micros(42), 1, 2, 32.0);
  // Hostile name: escaping must keep the document parseable.
  t.instant("detector", "quote\"back\\slash\nnewline", SimTime::seconds(2));
  std::ostringstream os;
  export_chrome_trace(t, os);
  const std::string doc = os.str();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);  // the instants
  // One tid per category, first-seen order: detector=0, probe=1.
  EXPECT_NE(doc.find("\"cat\":\"detector\",\"ph\":\"i\",\"s\":\"t\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"tid\":1"), std::string::npos);
}

TEST(TraceExport, EmptyTracerExportsEmptyDocument) {
  Tracer t(4);
  std::ostringstream os;
  export_chrome_trace(t, os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}");
}

TEST(TraceExport, JsonlEmitsOneValidObjectPerEvent) {
  Tracer t(8);
  t.set_enabled(true);
  t.instant("hunter", "case.open", SimTime::seconds(3), 11);
  t.span("hunter", "case", SimTime::seconds(3), SimTime::seconds(8), 11);
  std::ostringstream os;
  export_jsonl(t, os);
  std::istringstream in(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& l : lines) {
    EXPECT_TRUE(json_valid(l)) << l;
  }
  EXPECT_NE(lines[0].find("\"kind\":\"instant\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"dur_us\":5000000.000"), std::string::npos);
}

TEST(TraceExport, ControlCharactersInNamesAreEscaped) {
  Tracer t(8);
  t.set_enabled(true);
  // Raw control bytes (bell, unit separator) must come out as \u00XX; a
  // single raw control char in the document makes it unparseable.
  t.instant("detector", "bell\x07sep\x1f tab\t", SimTime::seconds(1));
  std::ostringstream os;
  export_chrome_trace(t, os);
  const std::string doc = os.str();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\\u0007"), std::string::npos);
  EXPECT_NE(doc.find("\\u001f"), std::string::npos);
  EXPECT_NE(doc.find("\\t"), std::string::npos);
}

TEST(TraceExport, NonFiniteValuesExportAsNull) {
  // JSON has no NaN/Infinity tokens; a corrupted-RTT value recorded into a
  // trace arg must not leak "nan"/"inf" into the document.
  Tracer t(8);
  t.set_enabled(true);
  t.instant("detector", "score", SimTime::seconds(1), 0, 0,
            std::numeric_limits<double>::quiet_NaN());
  t.span("probe", "rtt", SimTime::seconds(1), SimTime::seconds(2), 0, 0,
         std::numeric_limits<double>::infinity());
  std::ostringstream os;
  export_chrome_trace(t, os);
  const std::string doc = os.str();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.find("inf"), std::string::npos);
  std::ostringstream jl;
  export_jsonl(t, jl);
  std::istringstream in(jl.str());
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
}

TEST(CaseTimeline, ClampsNonMonotoneStagesUpward) {
  // Regression: after an analyzer warm-restore, window closes stamped at
  // their nominal in-blackout boundaries arrive with `at` earlier than the
  // already-appended "analyzer.restore" entry. Causal order is the truth;
  // the late-arriving stage is clamped up to the last entry's time.
  CaseTimeline tl;
  tl.add(SimTime::seconds(100), "case.open", "first window");
  tl.add(SimTime::seconds(400), "analyzer.restore", "warm restart");
  tl.add(SimTime::seconds(250), "anomaly", "window closed during blackout");
  ASSERT_EQ(tl.entries.size(), 3u);
  EXPECT_EQ(tl.entries[2].at, SimTime::seconds(400));
  for (std::size_t i = 1; i < tl.entries.size(); ++i) {
    EXPECT_GE(tl.entries[i].at, tl.entries[i - 1].at);
  }
  // In-order appends are untouched.
  tl.add(SimTime::seconds(500), "case.close", "quiet");
  EXPECT_EQ(tl.entries[3].at, SimTime::seconds(500));
}

TEST(CaseTimeline, ToStringShowsRelativeOffsets) {
  CaseTimeline tl;
  EXPECT_TRUE(tl.empty());
  tl.add(SimTime::seconds(100), "case.open", "first anomalous window");
  tl.add(SimTime::seconds(130), "anomaly", "packet_loss on c1/r0 -> c2/r0",
         3.5);
  tl.add(SimTime::seconds(190), "case.close", "quiet period elapsed");
  EXPECT_FALSE(tl.empty());
  const std::string text = tl.to_string();
  EXPECT_NE(text.find("+     0.000s"), std::string::npos);
  EXPECT_NE(text.find("+    30.000s"), std::string::npos);
  EXPECT_NE(text.find("+    90.000s"), std::string::npos);
  EXPECT_NE(text.find("case.open"), std::string::npos);
  EXPECT_NE(text.find("3.5"), std::string::npos);
  EXPECT_NE(text.find("quiet period elapsed"), std::string::npos);
}

}  // namespace
}  // namespace skh::obs
