// Forensic-bundle contract: every opened failure case leaves behind a
// self-contained, well-formed JSON bundle that reconstructs the verdict —
// timeline stages, the offending pair's recent windows, anomaly events,
// localization votes, and the recorder's own drop accounting.
#include <gtest/gtest.h>

#include <string>

#include "core/harness.h"
#include "obs/json_lint.h"
#include "obs/recorder.h"

namespace skh::core {
namespace {

/// The fault_drill forensic-gate scenario in miniature: one monitored task,
/// one RNIC port taken down mid-run.
ExperimentConfig drill_config() {
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  cfg.seed = 6400;
  cfg.obs.metrics = true;
  return cfg;
}

/// Launch the task, inject the RNIC fault, run to completion.
void run_drill(Experiment& exp) {
  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(6);
  const auto task = exp.launch_task(req);
  EXPECT_TRUE(task.has_value());
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

  const auto victim = exp.orchestrator().endpoints_of_task(*task)[9];
  exp.faults().inject(sim::IssueType::kRnicPortDown,
                      {sim::ComponentKind::kRnic, victim.rnic.value()},
                      SimTime::minutes(3), SimTime::minutes(11));

  exp.hunter().start(exp.events().now() + SimTime::minutes(20));
  exp.events().run_all();
  exp.hunter().finalize();
}

TEST(ForensicBundle, EveryCaseLeavesAValidSelfContainedBundle) {
  Experiment exp(drill_config());
  run_drill(exp);
  const auto& rec = exp.obs().recorder;
  const auto& cases = exp.hunter().failure_cases();
  ASSERT_GE(cases.size(), 1u);

  for (const auto& c : cases) {
    const std::string* bundle = rec.bundle_of(c.id);
    ASSERT_NE(bundle, nullptr) << "case " << c.id;
    const std::string& b = *bundle;
    EXPECT_TRUE(obs::json_valid(b)) << b;

    // All causal stages in the embedded timeline.
    EXPECT_NE(b.find("case.open"), std::string::npos);
    EXPECT_NE(b.find("anomaly"), std::string::npos);
    // Top-level sections of the bundle shape.
    for (const char* key :
         {"\"case\":", "\"timeline\":", "\"events\":", "\"windows\":",
          "\"votes\":", "\"recorder\":", "\"metrics\":"}) {
      EXPECT_NE(b.find(key), std::string::npos) << key;
    }
    if (!c.suppressed) {
      EXPECT_NE(b.find("localize"), std::string::npos);
      EXPECT_NE(b.find("case.close"), std::string::npos);
      // A closed case carries votes with their evidence source...
      EXPECT_NE(b.find("\"source\":"), std::string::npos);
      // ...and at least one recorded window (flags field only appears in
      // window objects).
      EXPECT_NE(b.find("\"flags\":"), std::string::npos);
    }
    // Dropped-record accounting is always present, so a wrapped ring is
    // visible in the evidence rather than silently truncated.
    EXPECT_NE(b.find("\"window_drops\":"), std::string::npos);
    EXPECT_NE(b.find("\"event_drops\":"), std::string::npos);
  }
}

TEST(ForensicBundle, DisabledRecorderEmitsNoBundles) {
  auto cfg = drill_config();
  cfg.obs.recorder.enabled = false;
  Experiment exp(cfg);
  run_drill(exp);

  EXPECT_GE(exp.hunter().failure_cases().size(), 1u);
  EXPECT_TRUE(exp.obs().recorder.bundles().empty());
}

}  // namespace
}  // namespace skh::core
