#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <string>

#include "common/ids.h"
#include "common/time.h"

namespace skh::obs {
namespace {

EndpointPair pair_of(std::uint32_t a, std::uint32_t b) {
  return {{ContainerId{a}, RnicId{0}}, {ContainerId{b}, RnicId{0}}};
}

WindowRecord window_at(const EndpointPair& p, double start_s) {
  WindowRecord w;
  w.pair = p;
  w.start = SimTime::seconds(start_s);
  w.end = SimTime::seconds(start_s + 30);
  w.sent = 30;
  w.lost = 1;
  w.p50_us = 40.0f;
  w.flags = kWindowScored;
  return w;
}

TEST(FlightRecorder, WindowRingKeepsNewestAndCountsDrops) {
  RecorderConfig cfg;
  cfg.window_depth = 4;
  FlightRecorder rec(cfg);
  rec.reserve_pairs(8);
  const auto p = pair_of(1, 2);
  for (int i = 0; i < 10; ++i) {
    rec.record_window(3, window_at(p, 100.0 * i));
  }
  const auto ws = rec.windows_of(3, p);
  ASSERT_EQ(ws.size(), 4u);
  // Chronological, oldest surviving first: starts 600, 700, 800, 900.
  for (std::size_t i = 0; i < ws.size(); ++i) {
    EXPECT_EQ(ws[i].start, SimTime::seconds(600.0 + 100.0 * i));
  }
  EXPECT_EQ(rec.window_drops(), 6u);
}

TEST(FlightRecorder, RecycledGidNeverMisattributesWindows) {
  FlightRecorder rec;
  rec.reserve_pairs(4);
  const auto old_pair = pair_of(1, 2);
  const auto new_pair = pair_of(7, 8);
  rec.record_window(0, window_at(old_pair, 100));
  // Churn retires the pair; the detector recycles gid 0 for a new pair.
  rec.record_window(0, window_at(new_pair, 500));
  const auto ws_new = rec.windows_of(0, new_pair);
  ASSERT_EQ(ws_new.size(), 1u);
  EXPECT_EQ(ws_new[0].start, SimTime::seconds(500));
  // The stale record is invisible to the new identity but still present
  // for the old one.
  const auto ws_old = rec.windows_of(0, old_pair);
  ASSERT_EQ(ws_old.size(), 1u);
  EXPECT_EQ(ws_old[0].start, SimTime::seconds(100));
}

TEST(FlightRecorder, RecordingPastReservationGrowsArena) {
  FlightRecorder rec;
  rec.reserve_pairs(2);
  const auto p = pair_of(3, 4);
  rec.record_window(100, window_at(p, 10));  // far beyond the reservation
  EXPECT_GE(rec.pair_capacity(), 101u);
  EXPECT_EQ(rec.windows_of(100, p).size(), 1u);
}

TEST(FlightRecorder, EventRingWrapsOldestFirst) {
  RecorderConfig cfg;
  cfg.event_capacity = 4;
  FlightRecorder rec(cfg);
  for (int i = 0; i < 7; ++i) {
    rec.record_event({pair_of(1, 2), SimTime::seconds(i), 1.0 * i, 0});
  }
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].at, SimTime::seconds(3 + static_cast<int>(i)));
  }
  EXPECT_EQ(rec.event_drops(), 3u);
  // Pair filter.
  rec.record_event({pair_of(9, 9), SimTime::seconds(50), 2.0, 1});
  const auto only = rec.events_of(pair_of(9, 9));
  ASSERT_EQ(only.size(), 1u);
  EXPECT_EQ(only[0].at, SimTime::seconds(50));
}

TEST(FlightRecorder, VotesFilterByCase) {
  RecorderConfig cfg;
  cfg.vote_capacity = 8;
  FlightRecorder rec(cfg);
  rec.record_vote({1, 0, 5, 2.0f, "intersection"});
  rec.record_vote({2, 1, 7, 1.0f, "traceroute"});
  rec.record_vote({1, 0, 6, 3.0f, "intersection"});
  const auto v1 = rec.votes_of(1);
  ASSERT_EQ(v1.size(), 2u);
  EXPECT_EQ(v1[0].component_index, 5u);
  EXPECT_EQ(v1[1].component_index, 6u);
  EXPECT_EQ(rec.votes_of(3).size(), 0u);
}

TEST(FlightRecorder, BundleStoreReplaceAndEvict) {
  RecorderConfig cfg;
  cfg.bundle_capacity = 2;
  FlightRecorder rec(cfg);
  rec.store_bundle(1, "{\"v\":1}");
  rec.store_bundle(2, "{\"v\":2}");
  // Replacement keeps the slot, no eviction.
  rec.store_bundle(1, "{\"v\":10}");
  ASSERT_NE(rec.bundle_of(1), nullptr);
  EXPECT_EQ(*rec.bundle_of(1), "{\"v\":10}");
  EXPECT_EQ(rec.bundle_drops(), 0u);
  // A third distinct case evicts the oldest (case 1, re-stored earlier
  // than case 2? eviction is FIFO by first-store order).
  rec.store_bundle(3, "{\"v\":3}");
  EXPECT_EQ(rec.bundles().size(), 2u);
  EXPECT_EQ(rec.bundle_drops(), 1u);
  EXPECT_NE(rec.bundle_of(3), nullptr);
}

TEST(FlightRecorder, ClearResetsEverything) {
  FlightRecorder rec;
  rec.reserve_pairs(2);
  const auto p = pair_of(1, 2);
  rec.record_window(0, window_at(p, 10));
  rec.record_event({p, SimTime::seconds(1), 1.0, 0});
  rec.record_vote({1, 0, 0, 1.0f, "x"});
  rec.store_bundle(1, "{}");
  rec.clear();
  EXPECT_TRUE(rec.windows_of(0, p).empty());
  EXPECT_TRUE(rec.events().empty());
  EXPECT_TRUE(rec.votes_of(1).empty());
  EXPECT_EQ(rec.bundle_of(1), nullptr);
  EXPECT_EQ(rec.window_drops(), 0u);
  EXPECT_EQ(rec.event_drops(), 0u);
}

TEST(FlightRecorder, DepthIsClampedToRingStateWidth) {
  RecorderConfig cfg;
  cfg.window_depth = 10'000;  // cursor/count are uint8: clamp to 255
  FlightRecorder rec(cfg);
  EXPECT_LE(rec.config().window_depth, 255u);
  RecorderConfig zero;
  zero.window_depth = 0;
  FlightRecorder rec0(zero);
  EXPECT_GE(rec0.config().window_depth, 1u);
}

}  // namespace
}  // namespace skh::obs
