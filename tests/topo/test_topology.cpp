#include "topo/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace skh::topo {
namespace {

TopologyConfig small_config() {
  TopologyConfig cfg;
  cfg.num_hosts = 8;
  cfg.rails_per_host = 4;
  cfg.hosts_per_segment = 4;
  cfg.spines_per_rail = 2;
  cfg.num_cores = 2;
  return cfg;
}

TEST(Topology, EntityCounts) {
  const auto t = Topology::build(small_config());
  EXPECT_EQ(t.num_hosts(), 8u);
  EXPECT_EQ(t.num_rnics(), 32u);
  EXPECT_EQ(t.num_segments(), 2u);
  // Switches: 2 segments x 4 rails ToRs + 4 rails x 2 spines + 2 cores.
  EXPECT_EQ(t.switches().size(), 8u + 8u + 2u);
  // Links: 32 uplinks + 8 ToRs x 2 spines + 8 spines x 2 cores.
  EXPECT_EQ(t.links().size(), 32u + 16u + 16u);
}

TEST(Topology, RejectsZeroCounts) {
  TopologyConfig cfg = small_config();
  cfg.rails_per_host = 0;
  EXPECT_THROW(Topology::build(cfg), std::invalid_argument);
}

TEST(Topology, RnicAddressing) {
  const auto t = Topology::build(small_config());
  const RnicId r = t.rnic_of(HostId{3}, 2);
  EXPECT_EQ(r.value(), 3u * 4 + 2);
  EXPECT_EQ(t.host_of(r), HostId{3});
  EXPECT_EQ(t.rail_of(r), 2u);
  EXPECT_THROW((void)t.rnic_of(HostId{100}, 0), std::out_of_range);
  EXPECT_THROW((void)t.rnic_of(HostId{0}, 9), std::out_of_range);
  EXPECT_THROW((void)t.host_of(RnicId{999}), std::out_of_range);
}

TEST(Topology, SegmentAssignment) {
  const auto t = Topology::build(small_config());
  EXPECT_EQ(t.segment_of(HostId{0}), 0u);
  EXPECT_EQ(t.segment_of(HostId{3}), 0u);
  EXPECT_EQ(t.segment_of(HostId{4}), 1u);
}

TEST(Topology, UplinkConnectsToRailTor) {
  const auto t = Topology::build(small_config());
  for (std::uint32_t h = 0; h < 8; ++h) {
    for (std::uint32_t rail = 0; rail < 4; ++rail) {
      const RnicId r = t.rnic_of(HostId{h}, rail);
      const auto& link = t.link_at(t.uplink_of(r));
      EXPECT_EQ(link.tier, LinkTier::kHostToTor);
      EXPECT_EQ(link.rnic, r);
      const auto& tor = t.switch_at(link.lower);
      EXPECT_EQ(tor.kind, SwitchKind::kTor);
      EXPECT_EQ(tor.rail, rail);
      EXPECT_EQ(tor.segment, t.segment_of(HostId{h}));
    }
  }
}

TEST(Route, IntraHostHasNoNetworkHops) {
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{0}, 3));
  EXPECT_TRUE(p.intra_host);
  EXPECT_TRUE(p.links.empty());
  EXPECT_TRUE(p.switches.empty());
  EXPECT_GT(p.one_way_latency_us, 0.0);
}

TEST(Route, SameSegmentSameRailIsTwoHops) {
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 1), t.rnic_of(HostId{2}, 1));
  EXPECT_FALSE(p.intra_host);
  EXPECT_EQ(p.links.size(), 2u);
  EXPECT_EQ(p.switches.size(), 1u);
  EXPECT_EQ(t.switch_at(p.switches[0]).kind, SwitchKind::kTor);
}

TEST(Route, CrossSegmentSameRailGoesViaSpine) {
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 1), t.rnic_of(HostId{5}, 1));
  EXPECT_EQ(p.links.size(), 4u);
  EXPECT_EQ(p.switches.size(), 3u);
  EXPECT_EQ(t.switch_at(p.switches[1]).kind, SwitchKind::kSpine);
  EXPECT_EQ(t.switch_at(p.switches[1]).rail, 1u);
}

TEST(Route, CrossRailGoesViaCore) {
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{5}, 3));
  EXPECT_EQ(p.links.size(), 6u);
  EXPECT_EQ(p.switches.size(), 5u);
  EXPECT_EQ(t.switch_at(p.switches[2]).kind, SwitchKind::kCore);
}

TEST(Route, InRailIsCheaperThanCrossRail) {
  const auto t = Topology::build(small_config());
  const auto in_rail = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{5}, 0));
  const auto cross = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{5}, 1));
  EXPECT_LT(in_rail.one_way_latency_us, cross.one_way_latency_us);
}

TEST(Route, DeterministicEcmp) {
  const auto t = Topology::build(small_config());
  const RnicId a = t.rnic_of(HostId{1}, 2);
  const RnicId b = t.rnic_of(HostId{6}, 2);
  const auto p1 = t.route(a, b);
  const auto p2 = t.route(a, b);
  EXPECT_EQ(p1.links, p2.links);
}

TEST(Route, EcmpSpreadsAcrossSpines) {
  TopologyConfig cfg = small_config();
  cfg.num_hosts = 16;
  cfg.spines_per_rail = 4;
  const auto t = Topology::build(cfg);
  std::set<SwitchId> spines_used;
  for (std::uint32_t h = 4; h < 16; ++h) {
    const auto p = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{h}, 0));
    if (p.switches.size() == 3) spines_used.insert(p.switches[1]);
  }
  EXPECT_GE(spines_used.size(), 2u);
}

TEST(Route, HealthyRttUnderTwentyMicroseconds) {
  // RoCE expectation from §1: healthy RTT < 20us. One-way worst case here
  // is the 6-link cross-rail path.
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{7}, 3));
  EXPECT_LT(2.0 * p.one_way_latency_us, 20.0);
}

TEST(EqualCostPaths, ContainSelectedRoute) {
  const auto t = Topology::build(small_config());
  const RnicId a = t.rnic_of(HostId{0}, 1);
  const RnicId b = t.rnic_of(HostId{6}, 1);
  const auto selected = t.route(a, b);
  const auto all = t.equal_cost_paths(a, b);
  EXPECT_EQ(all.size(), 2u);  // spines_per_rail
  bool found = false;
  for (const auto& p : all) {
    if (p.links == selected.links) found = true;
    EXPECT_DOUBLE_EQ(p.one_way_latency_us, selected.one_way_latency_us);
  }
  EXPECT_TRUE(found);
}

TEST(EqualCostPaths, CrossRailFanout) {
  const auto t = Topology::build(small_config());
  const auto all = t.equal_cost_paths(t.rnic_of(HostId{0}, 0),
                                      t.rnic_of(HostId{5}, 2));
  EXPECT_EQ(all.size(), 2u * 2u * 2u);  // s1 x cores x s2
}

TEST(EqualCostPaths, FanoutContract) {
  // The documented fan-out per routing regime: singleton intra-host,
  // spines_per_rail in-rail, spines_per_rail^2 x num_cores cross-rail —
  // all members distinct and all at the selected route's latency.
  TopologyConfig cfg = small_config();
  cfg.spines_per_rail = 3;
  cfg.num_cores = 2;
  const auto t = Topology::build(cfg);
  const RnicId a = t.rnic_of(HostId{0}, 1);

  const auto intra = t.equal_cost_paths(a, t.rnic_of(HostId{0}, 2));
  ASSERT_EQ(intra.size(), 1u);
  EXPECT_TRUE(intra[0].intra_host);
  EXPECT_EQ(t.num_paths(a, t.rnic_of(HostId{0}, 2)), 1u);

  const auto same_tor = t.equal_cost_paths(a, t.rnic_of(HostId{1}, 1));
  ASSERT_EQ(same_tor.size(), 1u);  // one ToR, no spine choice

  const struct {
    RnicId dst;
    std::size_t want;
  } regimes[] = {
      {t.rnic_of(HostId{6}, 1), 3u},           // in-rail: spines_per_rail
      {t.rnic_of(HostId{6}, 3), 3u * 2u * 3u}, // cross-rail: s1 x cores x s2
  };
  for (const auto& r : regimes) {
    const auto all = t.equal_cost_paths(a, r.dst);
    ASSERT_EQ(all.size(), r.want);
    EXPECT_EQ(t.num_paths(a, r.dst), r.want);
    std::set<std::vector<LinkId>> distinct;
    for (const auto& p : all) {
      distinct.insert(p.links);
      EXPECT_DOUBLE_EQ(p.one_way_latency_us, all[0].one_way_latency_us);
    }
    EXPECT_EQ(distinct.size(), r.want);  // every member a distinct path
  }
}

TEST(Route, PathIdStabilityContract) {
  // equal_cost_paths(src, dst)[i] == route_via(src, dst, i), the static
  // selection is a member of the set, and a bad index throws — the contract
  // the detector's per-path sub-series and the path-scoped votes key on.
  const auto t = Topology::build(small_config());
  const RnicId pairs[][2] = {
      {t.rnic_of(HostId{0}, 1), t.rnic_of(HostId{6}, 1)},  // in-rail
      {t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{5}, 3)},  // cross-rail
      {t.rnic_of(HostId{0}, 2), t.rnic_of(HostId{2}, 2)},  // same ToR
      {t.rnic_of(HostId{3}, 0), t.rnic_of(HostId{3}, 1)},  // intra-host
  };
  for (const auto& pr : pairs) {
    const std::uint32_t n = t.num_paths(pr[0], pr[1]);
    const auto all = t.equal_cost_paths(pr[0], pr[1]);
    ASSERT_EQ(all.size(), n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto via = t.route_via(pr[0], pr[1], i);
      EXPECT_EQ(all[i].links, via.links);
      EXPECT_EQ(all[i].switches, via.switches);
    }
    const std::uint32_t sel = t.static_path_id(pr[0], pr[1]);
    ASSERT_LT(sel, n);
    EXPECT_EQ(t.route(pr[0], pr[1]).links, all[sel].links);
    EXPECT_THROW((void)t.route_via(pr[0], pr[1], n), std::out_of_range);
  }
}

TEST(Route, SelectedRouteIsMemberBothArgOrders) {
  // Property: for EVERY ordered pair across all regimes, route(a, b) is a
  // member of equal_cost_paths(a, b) — in both argument orders (the ECMP
  // hash is asymmetric, so (b, a) exercises a different selection).
  TopologyConfig cfg = small_config();
  cfg.spines_per_rail = 3;
  const auto t = Topology::build(cfg);
  for (std::uint32_t i = 0; i < t.num_rnics(); i += 5) {
    for (std::uint32_t j = 0; j < t.num_rnics(); j += 7) {
      if (i == j) continue;
      for (const auto& [a, b] :
           {std::pair{RnicId{i}, RnicId{j}}, std::pair{RnicId{j}, RnicId{i}}}) {
        const auto sel = t.route(a, b);
        const auto all = t.equal_cost_paths(a, b);
        const bool member =
            std::any_of(all.begin(), all.end(), [&sel](const Path& p) {
              return p.links == sel.links && p.switches == sel.switches;
            });
        EXPECT_TRUE(member) << "route(" << a.value() << "," << b.value()
                            << ") not in its equal-cost set";
      }
    }
  }
}

TEST(Route, EcmpSpineBalanceAtFourThousandPairs) {
  // The production hash must give every spine a share: a spine with zero
  // share is dark fabric the tomography voter can never implicate (and a
  // symptom of a degenerate hash). 4k in-rail pairs over 4 spines.
  TopologyConfig cfg;
  cfg.num_hosts = 128;
  cfg.rails_per_host = 2;
  cfg.hosts_per_segment = 8;
  cfg.spines_per_rail = 4;
  const auto t = Topology::build(cfg);
  std::map<std::uint32_t, std::size_t> share;  // spine dense idx -> pairs
  std::size_t sampled = 0;
  for (std::uint32_t i = 0; i < t.num_rnics() && sampled < 4096; ++i) {
    for (std::uint32_t j = 0; j < t.num_rnics() && sampled < 4096; ++j) {
      const RnicId a{i}, b{j};
      if (i == j || t.rail_of(a) != t.rail_of(b)) continue;
      if (t.segment_of(t.host_of(a)) == t.segment_of(t.host_of(b))) continue;
      ++sampled;
      share[t.static_path_id(a, b)] += 1;
    }
  }
  ASSERT_EQ(sampled, 4096u);
  ASSERT_EQ(share.size(), 4u);  // every spine member selected
  for (const auto& [member, n] : share) {
    // Balanced within a generous band: each member carries at least half
    // its fair share of the 4k pairs.
    EXPECT_GE(n, 4096u / 4 / 2) << "spine member " << member << " starved";
  }
}

TEST(Topology, SwitchLinkAgreesWithAdjacencyScan) {
  // The dense-index lookup behind switch_link must agree with a direct
  // scan of the link table on EVERY switch-switch adjacency, both argument
  // orders, and throw on non-adjacent switches.
  TopologyConfig cfg = small_config();
  cfg.spines_per_rail = 3;
  cfg.num_cores = 2;
  const auto t = Topology::build(cfg);
  std::size_t checked = 0;
  for (const auto& link : t.links()) {
    if (link.tier == LinkTier::kHostToTor) continue;
    EXPECT_EQ(t.switch_link(link.lower, link.upper), link.id);
    EXPECT_EQ(t.switch_link(link.upper, link.lower), link.id);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
  // Two ToRs are never directly adjacent.
  const SwitchId tor_a = t.tor_at(0, 0);
  const SwitchId tor_b = t.tor_at(1, 0);
  EXPECT_THROW((void)t.switch_link(tor_a, tor_b), std::logic_error);
}

class ScaleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScaleSweep, AllPairsRoutable) {
  TopologyConfig cfg;
  cfg.num_hosts = GetParam();
  cfg.rails_per_host = 8;
  cfg.hosts_per_segment = 8;
  const auto t = Topology::build(cfg);
  // Spot-check a diagonal band of pairs.
  for (std::uint32_t i = 0; i < t.num_rnics(); i += 17) {
    const RnicId a{i};
    const RnicId b{(i * 7 + 3) % t.num_rnics()};
    const auto p = t.route(a, b);
    if (t.host_of(a) == t.host_of(b)) {
      EXPECT_TRUE(p.intra_host);
    } else {
      EXPECT_FALSE(p.links.empty());
      // Path endpoints are the two uplinks.
      EXPECT_EQ(p.links.front(), t.uplink_of(a));
      EXPECT_EQ(p.links.back(), t.uplink_of(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScaleSweep, ::testing::Values(8, 32, 64, 256));

}  // namespace
}  // namespace skh::topo
