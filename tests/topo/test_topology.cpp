#include "topo/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace skh::topo {
namespace {

TopologyConfig small_config() {
  TopologyConfig cfg;
  cfg.num_hosts = 8;
  cfg.rails_per_host = 4;
  cfg.hosts_per_segment = 4;
  cfg.spines_per_rail = 2;
  cfg.num_cores = 2;
  return cfg;
}

TEST(Topology, EntityCounts) {
  const auto t = Topology::build(small_config());
  EXPECT_EQ(t.num_hosts(), 8u);
  EXPECT_EQ(t.num_rnics(), 32u);
  EXPECT_EQ(t.num_segments(), 2u);
  // Switches: 2 segments x 4 rails ToRs + 4 rails x 2 spines + 2 cores.
  EXPECT_EQ(t.switches().size(), 8u + 8u + 2u);
  // Links: 32 uplinks + 8 ToRs x 2 spines + 8 spines x 2 cores.
  EXPECT_EQ(t.links().size(), 32u + 16u + 16u);
}

TEST(Topology, RejectsZeroCounts) {
  TopologyConfig cfg = small_config();
  cfg.rails_per_host = 0;
  EXPECT_THROW(Topology::build(cfg), std::invalid_argument);
}

TEST(Topology, RnicAddressing) {
  const auto t = Topology::build(small_config());
  const RnicId r = t.rnic_of(HostId{3}, 2);
  EXPECT_EQ(r.value(), 3u * 4 + 2);
  EXPECT_EQ(t.host_of(r), HostId{3});
  EXPECT_EQ(t.rail_of(r), 2u);
  EXPECT_THROW((void)t.rnic_of(HostId{100}, 0), std::out_of_range);
  EXPECT_THROW((void)t.rnic_of(HostId{0}, 9), std::out_of_range);
  EXPECT_THROW((void)t.host_of(RnicId{999}), std::out_of_range);
}

TEST(Topology, SegmentAssignment) {
  const auto t = Topology::build(small_config());
  EXPECT_EQ(t.segment_of(HostId{0}), 0u);
  EXPECT_EQ(t.segment_of(HostId{3}), 0u);
  EXPECT_EQ(t.segment_of(HostId{4}), 1u);
}

TEST(Topology, UplinkConnectsToRailTor) {
  const auto t = Topology::build(small_config());
  for (std::uint32_t h = 0; h < 8; ++h) {
    for (std::uint32_t rail = 0; rail < 4; ++rail) {
      const RnicId r = t.rnic_of(HostId{h}, rail);
      const auto& link = t.link_at(t.uplink_of(r));
      EXPECT_EQ(link.tier, LinkTier::kHostToTor);
      EXPECT_EQ(link.rnic, r);
      const auto& tor = t.switch_at(link.lower);
      EXPECT_EQ(tor.kind, SwitchKind::kTor);
      EXPECT_EQ(tor.rail, rail);
      EXPECT_EQ(tor.segment, t.segment_of(HostId{h}));
    }
  }
}

TEST(Route, IntraHostHasNoNetworkHops) {
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{0}, 3));
  EXPECT_TRUE(p.intra_host);
  EXPECT_TRUE(p.links.empty());
  EXPECT_TRUE(p.switches.empty());
  EXPECT_GT(p.one_way_latency_us, 0.0);
}

TEST(Route, SameSegmentSameRailIsTwoHops) {
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 1), t.rnic_of(HostId{2}, 1));
  EXPECT_FALSE(p.intra_host);
  EXPECT_EQ(p.links.size(), 2u);
  EXPECT_EQ(p.switches.size(), 1u);
  EXPECT_EQ(t.switch_at(p.switches[0]).kind, SwitchKind::kTor);
}

TEST(Route, CrossSegmentSameRailGoesViaSpine) {
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 1), t.rnic_of(HostId{5}, 1));
  EXPECT_EQ(p.links.size(), 4u);
  EXPECT_EQ(p.switches.size(), 3u);
  EXPECT_EQ(t.switch_at(p.switches[1]).kind, SwitchKind::kSpine);
  EXPECT_EQ(t.switch_at(p.switches[1]).rail, 1u);
}

TEST(Route, CrossRailGoesViaCore) {
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{5}, 3));
  EXPECT_EQ(p.links.size(), 6u);
  EXPECT_EQ(p.switches.size(), 5u);
  EXPECT_EQ(t.switch_at(p.switches[2]).kind, SwitchKind::kCore);
}

TEST(Route, InRailIsCheaperThanCrossRail) {
  const auto t = Topology::build(small_config());
  const auto in_rail = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{5}, 0));
  const auto cross = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{5}, 1));
  EXPECT_LT(in_rail.one_way_latency_us, cross.one_way_latency_us);
}

TEST(Route, DeterministicEcmp) {
  const auto t = Topology::build(small_config());
  const RnicId a = t.rnic_of(HostId{1}, 2);
  const RnicId b = t.rnic_of(HostId{6}, 2);
  const auto p1 = t.route(a, b);
  const auto p2 = t.route(a, b);
  EXPECT_EQ(p1.links, p2.links);
}

TEST(Route, EcmpSpreadsAcrossSpines) {
  TopologyConfig cfg = small_config();
  cfg.num_hosts = 16;
  cfg.spines_per_rail = 4;
  const auto t = Topology::build(cfg);
  std::set<SwitchId> spines_used;
  for (std::uint32_t h = 4; h < 16; ++h) {
    const auto p = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{h}, 0));
    if (p.switches.size() == 3) spines_used.insert(p.switches[1]);
  }
  EXPECT_GE(spines_used.size(), 2u);
}

TEST(Route, HealthyRttUnderTwentyMicroseconds) {
  // RoCE expectation from §1: healthy RTT < 20us. One-way worst case here
  // is the 6-link cross-rail path.
  const auto t = Topology::build(small_config());
  const auto p = t.route(t.rnic_of(HostId{0}, 0), t.rnic_of(HostId{7}, 3));
  EXPECT_LT(2.0 * p.one_way_latency_us, 20.0);
}

TEST(EqualCostPaths, ContainSelectedRoute) {
  const auto t = Topology::build(small_config());
  const RnicId a = t.rnic_of(HostId{0}, 1);
  const RnicId b = t.rnic_of(HostId{6}, 1);
  const auto selected = t.route(a, b);
  const auto all = t.equal_cost_paths(a, b);
  EXPECT_EQ(all.size(), 2u);  // spines_per_rail
  bool found = false;
  for (const auto& p : all) {
    if (p.links == selected.links) found = true;
    EXPECT_DOUBLE_EQ(p.one_way_latency_us, selected.one_way_latency_us);
  }
  EXPECT_TRUE(found);
}

TEST(EqualCostPaths, CrossRailFanout) {
  const auto t = Topology::build(small_config());
  const auto all = t.equal_cost_paths(t.rnic_of(HostId{0}, 0),
                                      t.rnic_of(HostId{5}, 2));
  EXPECT_EQ(all.size(), 2u * 2u * 2u);  // s1 x cores x s2
}

class ScaleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScaleSweep, AllPairsRoutable) {
  TopologyConfig cfg;
  cfg.num_hosts = GetParam();
  cfg.rails_per_host = 8;
  cfg.hosts_per_segment = 8;
  const auto t = Topology::build(cfg);
  // Spot-check a diagonal band of pairs.
  for (std::uint32_t i = 0; i < t.num_rnics(); i += 17) {
    const RnicId a{i};
    const RnicId b{(i * 7 + 3) % t.num_rnics()};
    const auto p = t.route(a, b);
    if (t.host_of(a) == t.host_of(b)) {
      EXPECT_TRUE(p.intra_host);
    } else {
      EXPECT_FALSE(p.links.empty());
      // Path endpoints are the two uplinks.
      EXPECT_EQ(p.links.front(), t.uplink_of(a));
      EXPECT_EQ(p.links.back(), t.uplink_of(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScaleSweep, ::testing::Values(8, 32, 64, 256));

}  // namespace
}  // namespace skh::topo
