#include "core/blacklist.h"

#include <gtest/gtest.h>

namespace skh::core {
namespace {

TEST(Blacklist, AddContainsClear) {
  Blacklist bl;
  const sim::ComponentRef rnic{sim::ComponentKind::kRnic, 42};
  EXPECT_FALSE(bl.contains(rnic));
  bl.add(rnic, SimTime::seconds(10));
  EXPECT_TRUE(bl.contains(rnic));
  EXPECT_EQ(bl.size(), 1u);
  bl.clear(rnic);
  EXPECT_FALSE(bl.contains(rnic));
  EXPECT_EQ(bl.size(), 0u);
}

TEST(Blacklist, AddIsIdempotent) {
  Blacklist bl;
  const sim::ComponentRef host{sim::ComponentKind::kHost, 3};
  bl.add(host, SimTime::seconds(1));
  bl.add(host, SimTime::seconds(2));
  EXPECT_EQ(bl.size(), 1u);
}

TEST(Blacklist, HostSchedulabilityByHost) {
  Blacklist bl;
  bl.add({sim::ComponentKind::kHost, 5}, SimTime{});
  EXPECT_FALSE(bl.host_schedulable(HostId{5}, 8));
  EXPECT_TRUE(bl.host_schedulable(HostId{6}, 8));
}

TEST(Blacklist, HostSchedulabilityByVSwitch) {
  Blacklist bl;
  bl.add({sim::ComponentKind::kVSwitch, 2}, SimTime{});
  EXPECT_FALSE(bl.host_schedulable(HostId{2}, 8));
}

TEST(Blacklist, HostSchedulabilityByRnic) {
  Blacklist bl;
  // RNIC 21 belongs to host 2 on 8-rail hosts (2*8+5).
  bl.add({sim::ComponentKind::kRnic, 21}, SimTime{});
  EXPECT_FALSE(bl.host_schedulable(HostId{2}, 8));
  EXPECT_TRUE(bl.host_schedulable(HostId{1}, 8));
  EXPECT_TRUE(bl.host_schedulable(HostId{3}, 8));
}

TEST(Blacklist, PhysicalComponentsDoNotBlockHosts) {
  // A blacklisted switch/link takes traffic reroutes, not host capacity.
  Blacklist bl;
  bl.add({sim::ComponentKind::kPhysicalSwitch, 0}, SimTime{});
  bl.add({sim::ComponentKind::kPhysicalLink, 0}, SimTime{});
  EXPECT_TRUE(bl.host_schedulable(HostId{0}, 8));
}

TEST(Blacklist, EntriesEnumerates) {
  Blacklist bl;
  bl.add({sim::ComponentKind::kRnic, 1}, SimTime{});
  bl.add({sim::ComponentKind::kHost, 2}, SimTime{});
  EXPECT_EQ(bl.entries().size(), 2u);
}

TEST(Blacklist, AddReportsOutcome) {
  Blacklist bl;
  const sim::ComponentRef rnic{sim::ComponentKind::kRnic, 7};
  EXPECT_EQ(bl.add(rnic, SimTime::minutes(1)), BanOutcome::kNewBan);
  EXPECT_EQ(bl.add(rnic, SimTime::minutes(2)), BanOutcome::kAlreadyBanned);
  EXPECT_EQ(bl.size(), 1u);
  EXPECT_EQ(bl.flap_rebans(), 0u);
}

TEST(Blacklist, RebanWithinHysteresisIsFlapDampened) {
  // A flapping port: banned, repaired, re-banned 10 s later. The second
  // ban must stick (component banned) but be recognized as the same
  // incident (alert dampened), with the default 30 s hysteresis.
  Blacklist bl;
  const sim::ComponentRef port{sim::ComponentKind::kPhysicalLink, 9};
  EXPECT_EQ(bl.add(port, SimTime::minutes(5)), BanOutcome::kNewBan);
  bl.clear(port, SimTime::minutes(6));
  EXPECT_FALSE(bl.contains(port));
  EXPECT_EQ(bl.add(port, SimTime::minutes(6) + SimTime::seconds(10)),
            BanOutcome::kFlapReban);
  EXPECT_TRUE(bl.contains(port));
  EXPECT_EQ(bl.size(), 1u);
  EXPECT_EQ(bl.flap_rebans(), 1u);
}

TEST(Blacklist, RebanAfterHysteresisIsAFreshAlert) {
  Blacklist bl;
  const sim::ComponentRef port{sim::ComponentKind::kPhysicalLink, 9};
  bl.add(port, SimTime::minutes(5));
  bl.clear(port, SimTime::minutes(6));
  EXPECT_EQ(bl.add(port, SimTime::minutes(6) + SimTime::seconds(31)),
            BanOutcome::kNewBan);
  EXPECT_EQ(bl.flap_rebans(), 0u);
}

TEST(Blacklist, HysteresisWindowIsConfigurable) {
  Blacklist bl;
  bl.set_flap_hysteresis(SimTime::minutes(10));
  const sim::ComponentRef sw{sim::ComponentKind::kPhysicalSwitch, 3};
  bl.add(sw, SimTime::minutes(1));
  bl.clear(sw, SimTime::minutes(2));
  EXPECT_EQ(bl.add(sw, SimTime::minutes(9)), BanOutcome::kFlapReban);
  bl.clear(sw, SimTime::minutes(10));
  EXPECT_EQ(bl.add(sw, SimTime::minutes(25)), BanOutcome::kNewBan);
  EXPECT_EQ(bl.flap_rebans(), 1u);
}

TEST(Blacklist, ClearedEntriesAreInvisibleTombstones) {
  Blacklist bl;
  const sim::ComponentRef host{sim::ComponentKind::kHost, 4};
  bl.add(host, SimTime::minutes(1));
  bl.clear(host, SimTime::minutes(2));
  EXPECT_FALSE(bl.contains(host));
  EXPECT_EQ(bl.size(), 0u);
  EXPECT_TRUE(bl.entries().empty());
  EXPECT_TRUE(bl.host_schedulable(HostId{4}, 8));
  // Clearing twice is a no-op and must not corrupt the active count.
  bl.clear(host, SimTime::minutes(3));
  EXPECT_EQ(bl.size(), 0u);
}

}  // namespace
}  // namespace skh::core
