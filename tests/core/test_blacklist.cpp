#include "core/blacklist.h"

#include <gtest/gtest.h>

namespace skh::core {
namespace {

TEST(Blacklist, AddContainsClear) {
  Blacklist bl;
  const sim::ComponentRef rnic{sim::ComponentKind::kRnic, 42};
  EXPECT_FALSE(bl.contains(rnic));
  bl.add(rnic, SimTime::seconds(10));
  EXPECT_TRUE(bl.contains(rnic));
  EXPECT_EQ(bl.size(), 1u);
  bl.clear(rnic);
  EXPECT_FALSE(bl.contains(rnic));
  EXPECT_EQ(bl.size(), 0u);
}

TEST(Blacklist, AddIsIdempotent) {
  Blacklist bl;
  const sim::ComponentRef host{sim::ComponentKind::kHost, 3};
  bl.add(host, SimTime::seconds(1));
  bl.add(host, SimTime::seconds(2));
  EXPECT_EQ(bl.size(), 1u);
}

TEST(Blacklist, HostSchedulabilityByHost) {
  Blacklist bl;
  bl.add({sim::ComponentKind::kHost, 5}, SimTime{});
  EXPECT_FALSE(bl.host_schedulable(HostId{5}, 8));
  EXPECT_TRUE(bl.host_schedulable(HostId{6}, 8));
}

TEST(Blacklist, HostSchedulabilityByVSwitch) {
  Blacklist bl;
  bl.add({sim::ComponentKind::kVSwitch, 2}, SimTime{});
  EXPECT_FALSE(bl.host_schedulable(HostId{2}, 8));
}

TEST(Blacklist, HostSchedulabilityByRnic) {
  Blacklist bl;
  // RNIC 21 belongs to host 2 on 8-rail hosts (2*8+5).
  bl.add({sim::ComponentKind::kRnic, 21}, SimTime{});
  EXPECT_FALSE(bl.host_schedulable(HostId{2}, 8));
  EXPECT_TRUE(bl.host_schedulable(HostId{1}, 8));
  EXPECT_TRUE(bl.host_schedulable(HostId{3}, 8));
}

TEST(Blacklist, PhysicalComponentsDoNotBlockHosts) {
  // A blacklisted switch/link takes traffic reroutes, not host capacity.
  Blacklist bl;
  bl.add({sim::ComponentKind::kPhysicalSwitch, 0}, SimTime{});
  bl.add({sim::ComponentKind::kPhysicalLink, 0}, SimTime{});
  EXPECT_TRUE(bl.host_schedulable(HostId{0}, 8));
}

TEST(Blacklist, EntriesEnumerates) {
  Blacklist bl;
  bl.add({sim::ComponentKind::kRnic, 1}, SimTime{});
  bl.add({sim::ComponentKind::kHost, 2}, SimTime{});
  EXPECT_EQ(bl.entries().size(), 2u);
}

}  // namespace
}  // namespace skh::core
