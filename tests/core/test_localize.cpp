#include "core/localize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <string_view>
#include <vector>

#include "../testutil.h"

namespace skh::core {
namespace {

using testutil::SimEnv;

class LocalizeTest : public ::testing::Test {
 protected:
  LocalizeTest()
      : env_([] {
          // Small segments so the task spans two of them (the spine-link
          // intersection test needs cross-segment pairs).
          auto cfg = testutil::small_topology();
          cfg.hosts_per_segment = 4;
          return cfg;
        }()),
        oracle_(env_.faults, RngStream{11}) {
    task_ = testutil::run_task_to_running(env_, 8);
    endpoints_ = env_.orch.endpoints_of_task(task_);
    localizer_.emplace(env_.topo, env_.overlay, oracle_, env_.faults);
  }

  /// All directed same-rank pairs touching `ep`.
  std::vector<EndpointPair> pairs_of(const Endpoint& ep) {
    std::vector<EndpointPair> out;
    for (const auto& other : endpoints_) {
      if (other.container == ep.container) continue;
      if (env_.topo.rail_of(other.rnic) != env_.topo.rail_of(ep.rnic)) continue;
      out.push_back({ep, other});
      out.push_back({other, ep});
    }
    return out;
  }

  SimEnv env_;
  DiagnosticsOracle oracle_;
  std::optional<Localizer> localizer_;
  TaskId task_;
  std::vector<Endpoint> endpoints_;
};

TEST_F(LocalizeTest, OverlayBrokenRuleIsVSwitchVerdict) {
  const Endpoint src = endpoints_[0];
  const Endpoint dst = endpoints_[8];
  env_.overlay.break_rule(env_.overlay.chain_of(src).ovs, dst);
  const auto v = localizer_->overlay_reachability(src, dst);
  EXPECT_FALSE(v.reachable);
  EXPECT_FALSE(v.loop);
  const auto loc = localizer_->localize({{src, dst}}, SimTime::seconds(10));
  EXPECT_EQ(loc.method, LocalizationMethod::kOverlayReachability);
  ASSERT_EQ(loc.culprits.size(), 1u);
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kVSwitch);
  EXPECT_EQ(loc.culprits[0].index,
            env_.topo.host_of(src.rnic).value());
}

TEST_F(LocalizeTest, OverlayLoopIsDetected) {
  const Endpoint src = endpoints_[0];
  const Endpoint dst = endpoints_[8];
  const auto& chain = env_.overlay.chain_of(src);
  env_.overlay.corrupt_rule_to_loop(chain.vxlan, dst, chain.veth);
  const auto v = localizer_->overlay_reachability(src, dst);
  EXPECT_FALSE(v.reachable);
  EXPECT_TRUE(v.loop);
  const auto loc = localizer_->localize({{src, dst}}, SimTime::seconds(10));
  EXPECT_EQ(loc.method, LocalizationMethod::kOverlayReachability);
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kVSwitch);
}

TEST_F(LocalizeTest, HealthyOverlayIsReachable) {
  const auto v =
      localizer_->overlay_reachability(endpoints_[0], endpoints_[8]);
  EXPECT_TRUE(v.reachable);
}

TEST_F(LocalizeTest, TorSwitchFaultWinsIntersectionVote) {
  // ToR (segment 0, rail 0) dies: every same-rail pair between hosts 0-7
  // crossing that ToR is anomalous.
  const SwitchId tor = env_.topo.tor_at(0, 0);
  env_.faults.inject(sim::IssueType::kSwitchOffline,
                     {sim::ComponentKind::kPhysicalSwitch, tor.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  // Anomalous pairs: the rail-0 pairs whose route crosses the dead ToR.
  std::vector<EndpointPair> anomalous;
  for (const auto& a : endpoints_) {
    for (const auto& b : endpoints_) {
      if (a.container == b.container) continue;
      if (env_.topo.rail_of(a.rnic) != 0 || env_.topo.rail_of(b.rnic) != 0) {
        continue;
      }
      const auto path = env_.topo.route(a.rnic, b.rnic);
      if (std::find(path.switches.begin(), path.switches.end(), tor) !=
          path.switches.end()) {
        anomalous.push_back({a, b});
      }
    }
  }
  const auto loc = localizer_->localize(anomalous, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kPhysicalIntersection);
  ASSERT_FALSE(loc.culprits.empty());
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kPhysicalSwitch);
  EXPECT_EQ(loc.culprits[0].index, tor.value());
}

TEST_F(LocalizeTest, UplinkCrcFaultBlamedOnLinkWithLogs) {
  const Endpoint victim = endpoints_[0];
  const LinkId uplink = env_.topo.uplink_of(victim.rnic);
  env_.faults.inject(sim::IssueType::kCrcError,
                     {sim::ComponentKind::kPhysicalLink, uplink.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto loc =
      localizer_->localize(pairs_of(victim), SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kPhysicalIntersection);
  ASSERT_EQ(loc.culprits.size(), 1u);
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kPhysicalLink);
  EXPECT_EQ(loc.culprits[0].index, uplink.value());
}

TEST_F(LocalizeTest, RnicFaultWithoutLinkLogsBlamesRnic) {
  // No link fault injected => no switch warning logs => the uplink verdict
  // is re-attributed; endpoint pattern then blames the RNIC.
  const Endpoint victim = endpoints_[0];
  env_.faults.inject(sim::IssueType::kRnicHardwareFailure,
                     {sim::ComponentKind::kRnic, victim.rnic.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto loc = localizer_->localize(pairs_of(victim), SimTime::minutes(1));
  ASSERT_FALSE(loc.culprits.empty());
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kRnic);
  EXPECT_EQ(loc.culprits[0].index, victim.rnic.value());
}

TEST_F(LocalizeTest, OffloadInconsistencyFoundByRnicValidation) {
  // The Figure 18 case: flow tables dumped and diffed.
  const Endpoint victim = endpoints_[3];
  env_.overlay.invalidate_offload(victim.rnic);
  const auto rnics = localizer_->validate_rnics(pairs_of(victim));
  ASSERT_EQ(rnics.size(), 1u);
  EXPECT_EQ(rnics[0].index, victim.rnic.value());
}

TEST_F(LocalizeTest, HostScopeFaultBlamesHost) {
  // GID change on host 0: every rail of host 0 degrades; the recurring
  // endpoints span >= 2 rails of one host.
  env_.faults.inject(sim::IssueType::kGidChange,
                     {sim::ComponentKind::kHost, 0},
                     SimTime::seconds(0), SimTime::hours(1));
  std::vector<EndpointPair> anomalous;
  for (const auto& ep : endpoints_) {
    if (env_.topo.host_of(ep.rnic) != HostId{0}) continue;
    const auto pairs = pairs_of(ep);
    anomalous.insert(anomalous.end(), pairs.begin(), pairs.end());
  }
  const auto loc = localizer_->localize(anomalous, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kEndpointPattern);
  ASSERT_FALSE(loc.culprits.empty());
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kHost);
  EXPECT_EQ(loc.culprits[0].index, 0u);
}

TEST_F(LocalizeTest, VSwitchFaultConfirmedByInspection) {
  env_.faults.inject(sim::IssueType::kNotUsingRdma,
                     {sim::ComponentKind::kVSwitch, 0},
                     SimTime::seconds(0), SimTime::hours(1));
  std::vector<EndpointPair> anomalous;
  for (const auto& ep : endpoints_) {
    if (env_.topo.host_of(ep.rnic) != HostId{0}) continue;
    const auto pairs = pairs_of(ep);
    anomalous.insert(anomalous.end(), pairs.begin(), pairs.end());
  }
  const auto loc = localizer_->localize(anomalous, SimTime::minutes(1));
  ASSERT_FALSE(loc.culprits.empty());
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kVSwitch);
  EXPECT_EQ(loc.culprits[0].index, 0u);
}

TEST_F(LocalizeTest, SpineLinkFaultVotedByIntersection) {
  // Pick pairs whose ECMP route crosses segment boundaries on rail 2, then
  // fault the exact tor-spine link of one of them and feed only the pairs
  // that traverse it.
  std::vector<EndpointPair> crossing;
  LinkId faulty;
  for (const auto& a : endpoints_) {
    for (const auto& b : endpoints_) {
      if (a.container == b.container) continue;
      if (env_.topo.rail_of(a.rnic) != 2 || env_.topo.rail_of(b.rnic) != 2) {
        continue;
      }
      const auto path = env_.topo.route(a.rnic, b.rnic);
      if (path.links.size() != 4) continue;  // cross-segment only
      if (!faulty.valid()) faulty = path.links[1];
      if (path.links[1] == faulty) crossing.push_back({a, b});
    }
  }
  ASSERT_TRUE(faulty.valid());
  ASSERT_GE(crossing.size(), 2u);
  env_.faults.inject(sim::IssueType::kCrcError,
                     {sim::ComponentKind::kPhysicalLink, faulty.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto loc = localizer_->localize(crossing, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kPhysicalIntersection);
  bool found = false;
  for (const auto& c : loc.culprits) {
    if (c.kind == sim::ComponentKind::kPhysicalLink &&
        c.index == faulty.value()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Pins the order-independence the sharded analyzer's merge reducer relies
// on: the intersection vote and the full localization pipeline must return
// the identical verdict (culprits, method, confidence) for any iteration
// order of the anomalous pair set. Shuffle across 10 seeds and compare
// against the unshuffled verdict.
TEST_F(LocalizeTest, VerdictInvariantUnderPairIterationOrder) {
  const SwitchId tor = env_.topo.tor_at(0, 0);
  env_.faults.inject(sim::IssueType::kSwitchOffline,
                     {sim::ComponentKind::kPhysicalSwitch, tor.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  std::vector<EndpointPair> anomalous;
  for (const auto& a : endpoints_) {
    for (const auto& b : endpoints_) {
      if (a.container == b.container) continue;
      if (env_.topo.rail_of(a.rnic) != 0 || env_.topo.rail_of(b.rnic) != 0) {
        continue;
      }
      const auto path = env_.topo.route(a.rnic, b.rnic);
      if (std::find(path.switches.begin(), path.switches.end(), tor) !=
          path.switches.end()) {
        anomalous.push_back({a, b});
      }
    }
  }
  ASSERT_GE(anomalous.size(), 4u);
  const auto want_vote = localizer_->physical_intersection(anomalous);
  const auto want = localizer_->localize(anomalous, SimTime::minutes(1));
  ASSERT_EQ(want.method, LocalizationMethod::kPhysicalIntersection);
  ASSERT_TRUE(want.found());
  for (unsigned seed = 1; seed <= 10; ++seed) {
    auto shuffled = anomalous;
    std::shuffle(shuffled.begin(), shuffled.end(), std::mt19937{seed});
    EXPECT_EQ(localizer_->physical_intersection(shuffled), want_vote)
        << "intersection vote depends on pair order (seed " << seed << ")";
    const auto loc = localizer_->localize(shuffled, SimTime::minutes(1));
    EXPECT_EQ(loc.culprits, want.culprits) << "seed " << seed;
    EXPECT_EQ(loc.method, want.method) << "seed " << seed;
    EXPECT_DOUBLE_EQ(loc.confidence, want.confidence) << "seed " << seed;
  }
}

TEST_F(LocalizeTest, EmptyInputYieldsNothing) {
  const auto loc = localizer_->localize({}, SimTime::seconds(1));
  EXPECT_FALSE(loc.found());
  EXPECT_EQ(loc.method, LocalizationMethod::kUnlocalized);
}

TEST_F(LocalizeTest, SinglePairNoIntersectionEvidence) {
  // Algorithm 1: all counters <= 1 => no underlay verdict.
  const auto voted =
      localizer_->physical_intersection({{endpoints_[0], endpoints_[8]}});
  EXPECT_TRUE(voted.empty());
}

TEST_F(LocalizeTest, SingleBidirectionalPairIsNotDroppedAsUnlocalized) {
  // Regression: one bidirectional anomalous pair puts *both* endpoints in
  // every pair, so recurrence counting (recur_floor = 3) could never
  // separate them and the case came back kUnlocalized. The degenerate
  // 1-pair/2-endpoint branch must keep it: oracle-confirmed endpoint if
  // any, otherwise both RNICs as a tied verdict.
  const Endpoint victim = endpoints_[0];
  env_.faults.inject(sim::IssueType::kRnicHardwareFailure,
                     {sim::ComponentKind::kRnic, victim.rnic.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto all = pairs_of(victim);
  ASSERT_GE(all.size(), 2u);
  // pairs_of emits {victim, peer} immediately followed by {peer, victim}.
  const std::vector<EndpointPair> one_pair{all[0], all[1]};
  const auto loc = localizer_->localize(one_pair, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kEndpointPattern);
  ASSERT_TRUE(loc.found());
  const bool victim_named = std::any_of(
      loc.culprits.begin(), loc.culprits.end(), [&](const auto& c) {
        return c.kind == sim::ComponentKind::kRnic &&
               c.index == victim.rnic.value();
      });
  EXPECT_TRUE(victim_named);
}

// --- Traceroute refinement under partial results ---------------------------
//
// These exercise refine_with_traceroute_ex against the degenerate replays a
// gray measurement plane produces: pairs with no underlay hops at all,
// paths whose every hop went silent, and deaths at the first/last hop of
// the shortest possible (two-hop) path.

class RefineTest : public LocalizeTest {
 protected:
  static sim::ComponentRef link_ref(LinkId l) {
    return {sim::ComponentKind::kPhysicalLink, l.value()};
  }
  static Endpoint fake_ep(RnicId r) {
    return Endpoint{ContainerId{500 + r.value()}, r};
  }
  static EndpointPair rnic_pair(RnicId a, RnicId b) {
    return {fake_ep(a), fake_ep(b)};
  }
};

TEST_F(RefineTest, IntraHostPairsCarryNoUnderlayEvidence) {
  // Same-host rnics route intra-host: the traceroute replay returns an
  // EMPTY hop vector. Refinement must treat that as no evidence — tie
  // kept, full coverage — not crash or cast a vote.
  const RnicId a{0}, b{1};
  ASSERT_TRUE(env_.topo.route(a, b).intra_host);
  const std::vector<sim::ComponentRef> voted{
      link_ref(env_.topo.uplink_of(RnicId{0})),
      link_ref(env_.topo.uplink_of(RnicId{8}))};
  const auto r = localizer_->refine_with_traceroute_ex(
      {rnic_pair(a, b)}, voted, SimTime::minutes(1));
  EXPECT_TRUE(r.ran);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  ASSERT_EQ(r.culprits.size(), 2u);  // the tie survives untouched
  EXPECT_EQ(r.culprits[0], voted[0]);
  EXPECT_EQ(r.culprits[1], voted[1]);
}

TEST_F(RefineTest, AllSilentHonestPathIsADeathAtTheFirstHop) {
  // Shortest inter-host path (two hops, same ToR) with the SOURCE uplink
  // down: every hop is silent. On an honest plane that can only mean the
  // trace died immediately, so the first hop's link takes the vote.
  const RnicId a{0}, b{8};
  ASSERT_EQ(env_.topo.route(a, b).links.size(), 2u);
  const LinkId ua = env_.topo.uplink_of(a);
  const LinkId ub = env_.topo.uplink_of(b);
  env_.faults.inject(sim::IssueType::kSwitchPortDown,
                     {sim::ComponentKind::kPhysicalLink, ua.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto r = localizer_->refine_with_traceroute_ex(
      {rnic_pair(a, b)}, {link_ref(ua), link_ref(ub)}, SimTime::minutes(1));
  EXPECT_TRUE(r.ran);
  ASSERT_EQ(r.culprits.size(), 1u);
  EXPECT_EQ(r.culprits[0].index, ua.value());
}

TEST_F(RefineTest, DeathAtTheFinalHopVotesTheLastLink) {
  // Same two-hop path, DESTINATION uplink down: the one-hop silent suffix
  // is the death point and the final link takes a full-weight vote (its
  // entire pre-death prefix responded).
  const RnicId a{0}, b{8};
  const LinkId ua = env_.topo.uplink_of(a);
  const LinkId ub = env_.topo.uplink_of(b);
  env_.faults.inject(sim::IssueType::kSwitchPortDown,
                     {sim::ComponentKind::kPhysicalLink, ub.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto r = localizer_->refine_with_traceroute_ex(
      {rnic_pair(a, b)}, {link_ref(ua), link_ref(ub)}, SimTime::minutes(1));
  EXPECT_TRUE(r.ran);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  ASSERT_EQ(r.culprits.size(), 1u);
  EXPECT_EQ(r.culprits[0].index, ub.value());
}

TEST_F(RefineTest, FullHopLossIsUndecidableAndKeepsTheTie) {
  // With EVERY hop response lost, a dead path and a healthy path look the
  // same. Refinement must refuse to guess: no vote, tie kept, and the
  // fully blind replays excluded from coverage rather than counted.
  const RnicId a{0}, b{8};
  const LinkId ua = env_.topo.uplink_of(a);
  const LinkId ub = env_.topo.uplink_of(b);
  env_.faults.inject(sim::IssueType::kSwitchPortDown,
                     {sim::ComponentKind::kPhysicalLink, ub.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  sim::TelemetryFaultPlan plan;
  plan.faults.push_back({sim::TelemetryFaultKind::kTracerouteHopLoss,
                         SimTime::seconds(0), SimTime::hours(1), 1.0});
  localizer_->attach_telemetry(&plan, RngStream{3});
  const auto r = localizer_->refine_with_traceroute_ex(
      {rnic_pair(a, b), rnic_pair(b, a)}, {link_ref(ua), link_ref(ub)},
      SimTime::minutes(1));
  localizer_->attach_telemetry(nullptr, RngStream{0});
  EXPECT_TRUE(r.ran);
  ASSERT_EQ(r.culprits.size(), 2u);  // no single-link indictment
  EXPECT_EQ(r.culprits[0], link_ref(ua));
  EXPECT_EQ(r.culprits[1], link_ref(ub));
}

TEST_F(RefineTest, PartialHopLossLowersCoverage) {
  // Cross-segment path (four hops) with the destination uplink down and
  // half the hop responses lost: silent gaps inside responding prefixes
  // must show up as sub-1.0 coverage.
  const RnicId a{0}, b{32};
  ASSERT_EQ(env_.topo.route(a, b).links.size(), 4u);
  const LinkId ub = env_.topo.uplink_of(b);
  env_.faults.inject(sim::IssueType::kSwitchPortDown,
                     {sim::ComponentKind::kPhysicalLink, ub.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  sim::TelemetryFaultPlan plan;
  plan.faults.push_back({sim::TelemetryFaultKind::kTracerouteHopLoss,
                         SimTime::seconds(0), SimTime::hours(1), 0.5});
  localizer_->attach_telemetry(&plan, RngStream{7});
  std::vector<EndpointPair> pairs(12, rnic_pair(a, b));
  const auto r = localizer_->refine_with_traceroute_ex(
      pairs, {link_ref(env_.topo.uplink_of(a)), link_ref(ub)},
      SimTime::minutes(1));
  localizer_->attach_telemetry(nullptr, RngStream{0});
  EXPECT_TRUE(r.ran);
  EXPECT_GT(r.coverage, 0.0);
  EXPECT_LT(r.coverage, 1.0);
  EXPECT_FALSE(r.culprits.empty());
}

TEST_F(RefineTest, NearBlindRefinementDemotesToUnlocalized) {
  // Full pipeline: when refinement ran but hop coverage lands below the
  // configured floor, the verdict is demoted to kUnlocalized and the
  // coverage is surfaced as the (low) confidence — no hardware gets
  // indicted on evidence that thin. Forced deterministically by raising
  // the floor above any achievable coverage.
  LocalizerConfig cfg;
  cfg.min_traceroute_coverage = 2.0;
  Localizer strict(env_.topo, env_.overlay, oracle_, env_.faults, cfg);

  // A same-ToR same-rail pair from the running task, both directions, so
  // physical intersection produces the two-uplink tie refinement needs.
  const Endpoint* e0 = nullptr;
  const Endpoint* e1 = nullptr;
  for (const auto& ep : endpoints_) {
    if (env_.topo.rail_of(ep.rnic) != 0) continue;
    if (env_.topo.host_of(ep.rnic) == HostId{0}) e0 = &ep;
    if (env_.topo.host_of(ep.rnic) == HostId{1}) e1 = &ep;
  }
  ASSERT_NE(e0, nullptr);
  ASSERT_NE(e1, nullptr);
  const LinkId ub = env_.topo.uplink_of(e1->rnic);
  env_.faults.inject(sim::IssueType::kSwitchPortDown,
                     {sim::ComponentKind::kPhysicalLink, ub.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto loc =
      strict.localize({{*e0, *e1}, {*e1, *e0}}, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kUnlocalized);
  EXPECT_FALSE(loc.found());
  EXPECT_LE(loc.confidence, 1.0);
}

// --- Path-aware voting: reverse routes and spray hints ----------------------

/// One RNIC per host, one host per segment: every inter-host pair crosses
/// spines, no two distinct hosts share a ToR or uplink, and 4-way ECMP
/// gives the asymmetric hash room to pick different forward/reverse spines.
class PathVoteTest : public ::testing::Test {
 protected:
  PathVoteTest()
      : env_([] {
          topo::TopologyConfig cfg;
          cfg.num_hosts = 8;
          cfg.rails_per_host = 1;
          cfg.hosts_per_segment = 1;
          cfg.spines_per_rail = 4;
          cfg.num_cores = 1;
          return cfg;
        }()),
        oracle_(env_.faults, RngStream{11}) {
    localizer_.emplace(env_.topo, env_.overlay, oracle_, env_.faults);
  }

  Endpoint attached(HostId h) {
    const Endpoint ep{ContainerId{h.value()}, env_.topo.rnic_of(h, 0)};
    env_.overlay.attach_endpoint(ep, h, /*vni=*/0);
    return ep;
  }

  SwitchId fwd_spine(const EndpointPair& p) {
    return env_.topo.route(p.src.rnic, p.dst.rnic).switches[1];
  }
  SwitchId rev_spine(const EndpointPair& p) {
    return env_.topo.route(p.dst.rnic, p.src.rnic).switches[1];
  }

  SimEnv env_;
  DiagnosticsOracle oracle_;
  std::optional<Localizer> localizer_;
};

TEST_F(PathVoteTest, ReverseOnlySpineFaultIsNoLongerUnlocalized) {
  // Regression (the reverse-path blindness bugfix): three anomalous pairs
  // whose FORWARD routes share no component — the old forward-only
  // intersection (max count 1) returned kUnlocalized — but whose REVERSE
  // routes all cross one spine. Return traffic rides route(dst, src), so a
  // fault there degrades the pairs just the same; the half-weight reverse
  // votes (3 x 0.5 = 1.5 > 1.0) must now localize the spine switch.
  const auto make_pair = [&](std::uint32_t a, std::uint32_t b) {
    return EndpointPair{{ContainerId{a}, env_.topo.rnic_of(HostId{a}, 0)},
                        {ContainerId{b}, env_.topo.rnic_of(HostId{b}, 0)}};
  };
  std::vector<EndpointPair> pairs;
  SwitchId shared_rev;
  for (std::uint32_t a0 = 0; a0 < 8 && pairs.empty(); ++a0) {
    for (std::uint32_t b0 = 0; b0 < 8 && pairs.empty(); ++b0) {
      if (a0 == b0) continue;
      const auto anchor = make_pair(a0, b0);
      const SwitchId target = rev_spine(anchor);
      if (fwd_spine(anchor) == target) continue;
      std::vector<EndpointPair> picked{anchor};
      std::set<std::uint32_t> hosts{a0, b0};
      std::set<std::uint32_t> fwds{fwd_spine(anchor).value()};
      for (std::uint32_t a = 0; a < 8 && picked.size() < 3; ++a) {
        for (std::uint32_t b = 0; b < 8 && picked.size() < 3; ++b) {
          if (a == b || hosts.contains(a) || hosts.contains(b)) continue;
          const auto p = make_pair(a, b);
          const SwitchId f = fwd_spine(p);
          if (rev_spine(p) != target || f == target ||
              fwds.contains(f.value())) {
            continue;
          }
          picked.push_back(p);
          hosts.insert(a);
          hosts.insert(b);
          fwds.insert(f.value());
        }
      }
      if (picked.size() == 3) {
        pairs = picked;
        shared_rev = target;
      }
    }
  }
  ASSERT_EQ(pairs.size(), 3u) << "no reverse-shared spine triple found";
  for (const auto& p : pairs) {
    attached(env_.topo.host_of(p.src.rnic));
    attached(env_.topo.host_of(p.dst.rnic));
    EXPECT_EQ(rev_spine(p), shared_rev);
    EXPECT_NE(fwd_spine(p), shared_rev);
  }
  env_.faults.inject(sim::IssueType::kCrcError,
                     {sim::ComponentKind::kPhysicalSwitch, shared_rev.value()},
                     SimTime::seconds(0), SimTime::hours(1));

  const auto voted = localizer_->physical_intersection(pairs);
  ASSERT_EQ(voted.size(), 1u);
  EXPECT_EQ(voted[0].kind, sim::ComponentKind::kPhysicalSwitch);
  EXPECT_EQ(voted[0].index, shared_rev.value());

  const auto loc = localizer_->localize(pairs, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kPhysicalIntersection);
  ASSERT_EQ(loc.culprits.size(), 1u);
  EXPECT_EQ(loc.culprits[0].index, shared_rev.value());

  // The vote record pins the regression: zero forward ("intersection")
  // evidence reached the threshold, and the verdict rests on reverse-path
  // votes worth 3 half-weight crossings.
  bool reverse_vote = false;
  for (const auto& v : loc.votes) {
    EXPECT_STRNE(v.source, "intersection");
    if (std::string_view(v.source) == "reverse-path" &&
        v.component.index == shared_rev.value() &&
        v.component.kind == sim::ComponentKind::kPhysicalSwitch) {
      EXPECT_DOUBLE_EQ(v.weight, 1.5);
      reverse_vote = true;
    }
  }
  EXPECT_TRUE(reverse_vote);
}

TEST_F(PathVoteTest, PathHintsVoteOnTheHintedMemberOnly) {
  // Spray-aware tomography: two hinted pairs flagged on the SAME equal-cost
  // member — one whose link the static hash never selects for either pair.
  // The hinted votes must converge on that member's ToR->spine link, not on
  // the pairs' static routes.
  SimEnv env2([] {
    topo::TopologyConfig cfg;
    cfg.num_hosts = 8;
    cfg.rails_per_host = 1;
    cfg.hosts_per_segment = 2;  // two src hosts share a ToR
    cfg.spines_per_rail = 4;
    cfg.num_cores = 1;
    return cfg;
  }());
  DiagnosticsOracle oracle2(env2.faults, RngStream{13});
  Localizer loc2(env2.topo, env2.overlay, oracle2, env2.faults);

  const auto ep = [&](std::uint32_t h) {
    const Endpoint e{ContainerId{h}, env2.topo.rnic_of(HostId{h}, 0)};
    env2.overlay.attach_endpoint(e, HostId{h}, /*vni=*/0);
    return e;
  };
  // Hosts 0 and 1 share segment 0's ToR; destinations sit in two other
  // segments so only the src-side ToR->spine hop can be shared.
  const std::vector<EndpointPair> pairs{{ep(0), ep(2)}, {ep(1), ep(4)}};

  // A member the static hash selects for NEITHER pair, so forward voting
  // could never implicate its link.
  std::uint32_t member = 4;
  for (std::uint32_t m = 0; m < 4; ++m) {
    if (m != env2.topo.static_path_id(pairs[0].src.rnic, pairs[0].dst.rnic) &&
        m != env2.topo.static_path_id(pairs[1].src.rnic, pairs[1].dst.rnic)) {
      member = m;
      break;
    }
  }
  ASSERT_LT(member, 4u);
  const auto hinted0 =
      env2.topo.route_via(pairs[0].src.rnic, pairs[0].dst.rnic, member);
  const auto hinted1 =
      env2.topo.route_via(pairs[1].src.rnic, pairs[1].dst.rnic, member);
  ASSERT_EQ(hinted0.links[1], hinted1.links[1]);  // shared ToR->spine hop
  const LinkId gray = hinted0.links[1];
  env2.faults.inject(sim::IssueType::kCrcError,
                     {sim::ComponentKind::kPhysicalLink, gray.value()},
                     SimTime::seconds(0), SimTime::hours(1));

  const std::vector<PathScopedAnomaly> hints{{pairs[0], member},
                                             {pairs[1], member}};
  const auto voted = loc2.physical_intersection(pairs, hints);
  ASSERT_EQ(voted.size(), 1u);  // links outrank the tied ToR/spine switches
  EXPECT_EQ(voted[0].kind, sim::ComponentKind::kPhysicalLink);
  EXPECT_EQ(voted[0].index, gray.value());

  const auto loc = loc2.localize(pairs, SimTime::minutes(1), hints);
  EXPECT_EQ(loc.method, LocalizationMethod::kPhysicalIntersection);
  ASSERT_EQ(loc.culprits.size(), 1u);
  EXPECT_EQ(loc.culprits[0].index, gray.value());
  bool path_vote = false;
  for (const auto& v : loc.votes) {
    if (std::string_view(v.source) == "path" &&
        v.component.index == gray.value() &&
        v.component.kind == sim::ComponentKind::kPhysicalLink) {
      EXPECT_DOUBLE_EQ(v.weight, 2.0);
      path_vote = true;
    }
  }
  EXPECT_TRUE(path_vote);

  // Without the hints the same pair set must NOT implicate the gray link:
  // static routes never crossed it.
  for (const auto& c : loc2.physical_intersection(pairs)) {
    EXPECT_FALSE(c.kind == sim::ComponentKind::kPhysicalLink &&
                 c.index == gray.value());
  }
}

TEST(DeadLinkOf, GuardsHopsWithoutAPhysicalLink) {
  // Regression: refine_with_traceroute dereferenced the dead hop's link id
  // unconditionally; a dead hop carrying no valid link (death at the
  // source/destination host or RNIC) must contribute no link vote.
  probe::TracerouteResult tr;
  tr.hops.push_back({LinkId{}, std::nullopt, false, 0.0});
  EXPECT_EQ(dead_link_of(tr), std::nullopt);

  tr.hops.clear();
  tr.hops.push_back({LinkId{3}, SwitchId{1}, true, 1.0});
  tr.hops.push_back({LinkId{7}, SwitchId{2}, false, 0.0});
  const auto link = dead_link_of(tr);
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(link->value(), 7u);

  probe::TracerouteResult healthy;
  healthy.reached_destination = true;
  healthy.hops.push_back({LinkId{3}, SwitchId{1}, true, 1.0});
  EXPECT_EQ(dead_link_of(healthy), std::nullopt);
}

TEST(LocalizeStrings, MethodsPrintable) {
  EXPECT_EQ(to_string(LocalizationMethod::kOverlayReachability),
            "overlay-reachability");
  EXPECT_EQ(to_string(LocalizationMethod::kRnicValidation),
            "rnic-validation");
}

}  // namespace
}  // namespace skh::core
