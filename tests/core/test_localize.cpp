#include "core/localize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "../testutil.h"

namespace skh::core {
namespace {

using testutil::SimEnv;

class LocalizeTest : public ::testing::Test {
 protected:
  LocalizeTest()
      : env_([] {
          // Small segments so the task spans two of them (the spine-link
          // intersection test needs cross-segment pairs).
          auto cfg = testutil::small_topology();
          cfg.hosts_per_segment = 4;
          return cfg;
        }()),
        oracle_(env_.faults, RngStream{11}) {
    task_ = testutil::run_task_to_running(env_, 8);
    endpoints_ = env_.orch.endpoints_of_task(task_);
    localizer_.emplace(env_.topo, env_.overlay, oracle_, env_.faults);
  }

  /// All directed same-rank pairs touching `ep`.
  std::vector<EndpointPair> pairs_of(const Endpoint& ep) {
    std::vector<EndpointPair> out;
    for (const auto& other : endpoints_) {
      if (other.container == ep.container) continue;
      if (env_.topo.rail_of(other.rnic) != env_.topo.rail_of(ep.rnic)) continue;
      out.push_back({ep, other});
      out.push_back({other, ep});
    }
    return out;
  }

  SimEnv env_;
  DiagnosticsOracle oracle_;
  std::optional<Localizer> localizer_;
  TaskId task_;
  std::vector<Endpoint> endpoints_;
};

TEST_F(LocalizeTest, OverlayBrokenRuleIsVSwitchVerdict) {
  const Endpoint src = endpoints_[0];
  const Endpoint dst = endpoints_[8];
  env_.overlay.break_rule(env_.overlay.chain_of(src).ovs, dst);
  const auto v = localizer_->overlay_reachability(src, dst);
  EXPECT_FALSE(v.reachable);
  EXPECT_FALSE(v.loop);
  const auto loc = localizer_->localize({{src, dst}}, SimTime::seconds(10));
  EXPECT_EQ(loc.method, LocalizationMethod::kOverlayReachability);
  ASSERT_EQ(loc.culprits.size(), 1u);
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kVSwitch);
  EXPECT_EQ(loc.culprits[0].index,
            env_.topo.host_of(src.rnic).value());
}

TEST_F(LocalizeTest, OverlayLoopIsDetected) {
  const Endpoint src = endpoints_[0];
  const Endpoint dst = endpoints_[8];
  const auto& chain = env_.overlay.chain_of(src);
  env_.overlay.corrupt_rule_to_loop(chain.vxlan, dst, chain.veth);
  const auto v = localizer_->overlay_reachability(src, dst);
  EXPECT_FALSE(v.reachable);
  EXPECT_TRUE(v.loop);
  const auto loc = localizer_->localize({{src, dst}}, SimTime::seconds(10));
  EXPECT_EQ(loc.method, LocalizationMethod::kOverlayReachability);
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kVSwitch);
}

TEST_F(LocalizeTest, HealthyOverlayIsReachable) {
  const auto v =
      localizer_->overlay_reachability(endpoints_[0], endpoints_[8]);
  EXPECT_TRUE(v.reachable);
}

TEST_F(LocalizeTest, TorSwitchFaultWinsIntersectionVote) {
  // ToR (segment 0, rail 0) dies: every same-rail pair between hosts 0-7
  // crossing that ToR is anomalous.
  const SwitchId tor = env_.topo.tor_at(0, 0);
  env_.faults.inject(sim::IssueType::kSwitchOffline,
                     {sim::ComponentKind::kPhysicalSwitch, tor.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  // Anomalous pairs: the rail-0 pairs whose route crosses the dead ToR.
  std::vector<EndpointPair> anomalous;
  for (const auto& a : endpoints_) {
    for (const auto& b : endpoints_) {
      if (a.container == b.container) continue;
      if (env_.topo.rail_of(a.rnic) != 0 || env_.topo.rail_of(b.rnic) != 0) {
        continue;
      }
      const auto path = env_.topo.route(a.rnic, b.rnic);
      if (std::find(path.switches.begin(), path.switches.end(), tor) !=
          path.switches.end()) {
        anomalous.push_back({a, b});
      }
    }
  }
  const auto loc = localizer_->localize(anomalous, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kPhysicalIntersection);
  ASSERT_FALSE(loc.culprits.empty());
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kPhysicalSwitch);
  EXPECT_EQ(loc.culprits[0].index, tor.value());
}

TEST_F(LocalizeTest, UplinkCrcFaultBlamedOnLinkWithLogs) {
  const Endpoint victim = endpoints_[0];
  const LinkId uplink = env_.topo.uplink_of(victim.rnic);
  env_.faults.inject(sim::IssueType::kCrcError,
                     {sim::ComponentKind::kPhysicalLink, uplink.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto loc =
      localizer_->localize(pairs_of(victim), SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kPhysicalIntersection);
  ASSERT_EQ(loc.culprits.size(), 1u);
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kPhysicalLink);
  EXPECT_EQ(loc.culprits[0].index, uplink.value());
}

TEST_F(LocalizeTest, RnicFaultWithoutLinkLogsBlamesRnic) {
  // No link fault injected => no switch warning logs => the uplink verdict
  // is re-attributed; endpoint pattern then blames the RNIC.
  const Endpoint victim = endpoints_[0];
  env_.faults.inject(sim::IssueType::kRnicHardwareFailure,
                     {sim::ComponentKind::kRnic, victim.rnic.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto loc = localizer_->localize(pairs_of(victim), SimTime::minutes(1));
  ASSERT_FALSE(loc.culprits.empty());
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kRnic);
  EXPECT_EQ(loc.culprits[0].index, victim.rnic.value());
}

TEST_F(LocalizeTest, OffloadInconsistencyFoundByRnicValidation) {
  // The Figure 18 case: flow tables dumped and diffed.
  const Endpoint victim = endpoints_[3];
  env_.overlay.invalidate_offload(victim.rnic);
  const auto rnics = localizer_->validate_rnics(pairs_of(victim));
  ASSERT_EQ(rnics.size(), 1u);
  EXPECT_EQ(rnics[0].index, victim.rnic.value());
}

TEST_F(LocalizeTest, HostScopeFaultBlamesHost) {
  // GID change on host 0: every rail of host 0 degrades; the recurring
  // endpoints span >= 2 rails of one host.
  env_.faults.inject(sim::IssueType::kGidChange,
                     {sim::ComponentKind::kHost, 0},
                     SimTime::seconds(0), SimTime::hours(1));
  std::vector<EndpointPair> anomalous;
  for (const auto& ep : endpoints_) {
    if (env_.topo.host_of(ep.rnic) != HostId{0}) continue;
    const auto pairs = pairs_of(ep);
    anomalous.insert(anomalous.end(), pairs.begin(), pairs.end());
  }
  const auto loc = localizer_->localize(anomalous, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kEndpointPattern);
  ASSERT_FALSE(loc.culprits.empty());
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kHost);
  EXPECT_EQ(loc.culprits[0].index, 0u);
}

TEST_F(LocalizeTest, VSwitchFaultConfirmedByInspection) {
  env_.faults.inject(sim::IssueType::kNotUsingRdma,
                     {sim::ComponentKind::kVSwitch, 0},
                     SimTime::seconds(0), SimTime::hours(1));
  std::vector<EndpointPair> anomalous;
  for (const auto& ep : endpoints_) {
    if (env_.topo.host_of(ep.rnic) != HostId{0}) continue;
    const auto pairs = pairs_of(ep);
    anomalous.insert(anomalous.end(), pairs.begin(), pairs.end());
  }
  const auto loc = localizer_->localize(anomalous, SimTime::minutes(1));
  ASSERT_FALSE(loc.culprits.empty());
  EXPECT_EQ(loc.culprits[0].kind, sim::ComponentKind::kVSwitch);
  EXPECT_EQ(loc.culprits[0].index, 0u);
}

TEST_F(LocalizeTest, SpineLinkFaultVotedByIntersection) {
  // Pick pairs whose ECMP route crosses segment boundaries on rail 2, then
  // fault the exact tor-spine link of one of them and feed only the pairs
  // that traverse it.
  std::vector<EndpointPair> crossing;
  LinkId faulty;
  for (const auto& a : endpoints_) {
    for (const auto& b : endpoints_) {
      if (a.container == b.container) continue;
      if (env_.topo.rail_of(a.rnic) != 2 || env_.topo.rail_of(b.rnic) != 2) {
        continue;
      }
      const auto path = env_.topo.route(a.rnic, b.rnic);
      if (path.links.size() != 4) continue;  // cross-segment only
      if (!faulty.valid()) faulty = path.links[1];
      if (path.links[1] == faulty) crossing.push_back({a, b});
    }
  }
  ASSERT_TRUE(faulty.valid());
  ASSERT_GE(crossing.size(), 2u);
  env_.faults.inject(sim::IssueType::kCrcError,
                     {sim::ComponentKind::kPhysicalLink, faulty.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto loc = localizer_->localize(crossing, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kPhysicalIntersection);
  bool found = false;
  for (const auto& c : loc.culprits) {
    if (c.kind == sim::ComponentKind::kPhysicalLink &&
        c.index == faulty.value()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(LocalizeTest, EmptyInputYieldsNothing) {
  const auto loc = localizer_->localize({}, SimTime::seconds(1));
  EXPECT_FALSE(loc.found());
  EXPECT_EQ(loc.method, LocalizationMethod::kUnlocalized);
}

TEST_F(LocalizeTest, SinglePairNoIntersectionEvidence) {
  // Algorithm 1: all counters <= 1 => no underlay verdict.
  const auto voted =
      localizer_->physical_intersection({{endpoints_[0], endpoints_[8]}});
  EXPECT_TRUE(voted.empty());
}

TEST_F(LocalizeTest, SingleBidirectionalPairIsNotDroppedAsUnlocalized) {
  // Regression: one bidirectional anomalous pair puts *both* endpoints in
  // every pair, so recurrence counting (recur_floor = 3) could never
  // separate them and the case came back kUnlocalized. The degenerate
  // 1-pair/2-endpoint branch must keep it: oracle-confirmed endpoint if
  // any, otherwise both RNICs as a tied verdict.
  const Endpoint victim = endpoints_[0];
  env_.faults.inject(sim::IssueType::kRnicHardwareFailure,
                     {sim::ComponentKind::kRnic, victim.rnic.value()},
                     SimTime::seconds(0), SimTime::hours(1));
  const auto all = pairs_of(victim);
  ASSERT_GE(all.size(), 2u);
  // pairs_of emits {victim, peer} immediately followed by {peer, victim}.
  const std::vector<EndpointPair> one_pair{all[0], all[1]};
  const auto loc = localizer_->localize(one_pair, SimTime::minutes(1));
  EXPECT_EQ(loc.method, LocalizationMethod::kEndpointPattern);
  ASSERT_TRUE(loc.found());
  const bool victim_named = std::any_of(
      loc.culprits.begin(), loc.culprits.end(), [&](const auto& c) {
        return c.kind == sim::ComponentKind::kRnic &&
               c.index == victim.rnic.value();
      });
  EXPECT_TRUE(victim_named);
}

TEST(DeadLinkOf, GuardsHopsWithoutAPhysicalLink) {
  // Regression: refine_with_traceroute dereferenced the dead hop's link id
  // unconditionally; a dead hop carrying no valid link (death at the
  // source/destination host or RNIC) must contribute no link vote.
  probe::TracerouteResult tr;
  tr.hops.push_back({LinkId{}, std::nullopt, false, 0.0});
  EXPECT_EQ(dead_link_of(tr), std::nullopt);

  tr.hops.clear();
  tr.hops.push_back({LinkId{3}, SwitchId{1}, true, 1.0});
  tr.hops.push_back({LinkId{7}, SwitchId{2}, false, 0.0});
  const auto link = dead_link_of(tr);
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(link->value(), 7u);

  probe::TracerouteResult healthy;
  healthy.reached_destination = true;
  healthy.hops.push_back({LinkId{3}, SwitchId{1}, true, 1.0});
  EXPECT_EQ(dead_link_of(healthy), std::nullopt);
}

TEST(LocalizeStrings, MethodsPrintable) {
  EXPECT_EQ(to_string(LocalizationMethod::kOverlayReachability),
            "overlay-reachability");
  EXPECT_EQ(to_string(LocalizationMethod::kRnicValidation),
            "rnic-validation");
}

}  // namespace
}  // namespace skh::core
