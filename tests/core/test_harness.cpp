#include "core/harness.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "core/metrics.h"

namespace skh::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.topology.num_hosts = 8;
  cfg.topology.rails_per_host = 8;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.inference.candidate_dp = {2, 4};
  return cfg;
}

TEST(Experiment, LaunchAndRunToRunning) {
  Experiment exp(small_config());
  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(2);
  const auto task = exp.launch_task(req);
  ASSERT_TRUE(task.has_value());
  exp.run_to_running(*task);
  for (ContainerId cid : exp.orchestrator().task(*task).containers) {
    EXPECT_EQ(exp.orchestrator().container(cid).state,
              cluster::ContainerState::kRunning);
  }
  // Preload happened: agents hold the basic list.
  EXPECT_GT(exp.hunter().current_targets(*task), 0u);
}

TEST(Experiment, LaunchFailsGracefullyWithoutCapacity) {
  Experiment exp(small_config());
  cluster::TaskRequest req;
  req.num_containers = 9;  // 9 > 8 hosts
  req.gpus_per_container = 8;
  EXPECT_FALSE(exp.launch_task(req).has_value());
}

TEST(Experiment, LayoutAndObservationsAreConsistent) {
  Experiment exp(small_config());
  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(2);
  const auto task = exp.launch_task(req);
  exp.run_to_running(*task);
  const auto layout = exp.layout_of(*task);
  EXPECT_EQ(layout.roles.size(), 32u);
  const auto obs = exp.observations_for(layout);
  EXPECT_EQ(obs.size(), layout.roles.size());
  for (const auto& o : obs) {
    EXPECT_FALSE(o.throughput.empty());
    EXPECT_EQ(o.host,
              exp.topology().host_of(o.endpoint.rnic).value());
    EXPECT_LT(o.rnic_rank, 8u);
  }
}

TEST(Experiment, ApplySkeletonShrinksTargets) {
  Experiment exp(small_config());
  cluster::TaskRequest req;
  req.num_containers = 8;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(2);
  const auto task = exp.launch_task(req);
  exp.run_to_running(*task);
  const auto before = exp.hunter().current_targets(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 4;
  par.dp = 2;
  const auto inferred = exp.apply_skeleton(*task, exp.layout_of(*task, par));
  ASSERT_TRUE(inferred.has_value());
  EXPECT_LT(exp.hunter().current_targets(*task), before);
}

TEST(Experiment, IdleWorkloadKeepsBasicList) {
  // Fidelity validation (§7.3) rejects a skeleton inferred from an idle
  // debug cluster; the basic list stays in force.
  Experiment exp(small_config());
  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(2);
  const auto task = exp.launch_task(req);
  exp.run_to_running(*task);
  const auto before = exp.hunter().current_targets(*task);
  workload::BurstConfig idle;
  idle.idle = true;
  const auto inferred =
      exp.apply_skeleton(*task, exp.layout_of(*task), idle);
  EXPECT_FALSE(inferred.has_value());
  EXPECT_EQ(exp.hunter().current_targets(*task), before);
}

TEST(Experiment, OptOutStopsProbing) {
  Experiment exp(small_config());
  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(2);
  const auto task = exp.launch_task(req);
  exp.run_to_running(*task);
  EXPECT_GT(exp.hunter().current_targets(*task), 0u);
  exp.hunter().opt_out(*task);
  EXPECT_EQ(exp.hunter().current_targets(*task), 0u);
  exp.hunter().start(exp.events().now() + SimTime::minutes(5));
  exp.events().run_all();
  exp.hunter().finalize();
  EXPECT_EQ(exp.hunter().total_probes(), 0u);
}

TEST(Experiment, AutoBlacklistBlocksReplacement) {
  // §8: once a host's component is localized as faulty, no new task lands
  // on that host until repair.
  ExperimentConfig cfg = small_config();
  cfg.hunter.inference.candidate_dp = {2, 3, 4};
  Experiment exp(cfg);
  cluster::TaskRequest req;
  // Three containers: the faulty host's endpoints recur across two peers,
  // which is what lets the endpoint-pattern step single it out (a
  // two-container task is perfectly symmetric and genuinely ambiguous).
  req.num_containers = 3;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::minutes(20);
  const auto task = exp.launch_task(req);
  ASSERT_TRUE(task.has_value());
  exp.run_to_running(*task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 1;
  par.dp = 3;
  (void)exp.apply_skeleton(*task, exp.layout_of(*task, par));

  const auto victim = exp.orchestrator().endpoints_of_task(*task)[0];
  const HostId bad_host = exp.topology().host_of(victim.rnic);
  const SimTime t0 = exp.events().now() + SimTime::minutes(1);
  exp.faults().inject(sim::IssueType::kGidChange,
                      {sim::ComponentKind::kHost, bad_host.value()}, t0,
                      t0 + SimTime::minutes(5));
  exp.hunter().start(exp.events().now() + SimTime::minutes(30));
  exp.events().run_all();
  exp.hunter().finalize();
  ASSERT_FALSE(exp.hunter().failure_cases().empty());
  EXPECT_TRUE(exp.hunter().blacklist().contains(
      {sim::ComponentKind::kHost, bad_host.value()}));

  // The old task is gone; capacity exists — but the bad host is skipped.
  cluster::TaskRequest again;
  again.num_containers = 8;  // needs every host including the bad one
  again.gpus_per_container = 8;
  EXPECT_FALSE(exp.launch_task(again).has_value());
  again.num_containers = 7;  // fits while avoiding the bad host
  const auto second = exp.launch_task(again);
  ASSERT_TRUE(second.has_value());
  for (ContainerId cid : exp.orchestrator().task(*second).containers) {
    EXPECT_NE(exp.orchestrator().container(cid).host, bad_host);
  }

  // Repair lifts the ban.
  exp.hunter().mark_repaired({sim::ComponentKind::kHost, bad_host.value()});
  cluster::TaskRequest third;
  third.num_containers = 1;
  third.gpus_per_container = 8;
  const auto t3 = exp.launch_task(third);
  ASSERT_TRUE(t3.has_value());
  EXPECT_EQ(exp.orchestrator()
                .container(exp.orchestrator().task(*t3).containers[0])
                .host,
            bad_host);
}

/// Churn-reconciliation fixture: a 4-container task with the runtime
/// skeleton applied, ready to be hit by restarts/migrations/crashes.
class ExperimentChurn : public ::testing::Test {
 protected:
  ExperimentChurn() : exp_(small_config()) {
    cluster::TaskRequest req;
    req.num_containers = 4;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(2);
    task_ = *exp_.launch_task(req);
    exp_.run_to_running(task_);
    par_.tp = 8;
    par_.pp = 2;
    par_.dp = 2;
    skeleton_ = exp_.apply_skeleton(task_, exp_.layout_of(task_, par_));
  }

  ContainerId victim() {
    return exp_.orchestrator().task(task_).containers[0];
  }

  Experiment exp_;
  TaskId task_;
  workload::ParallelismConfig par_;
  std::optional<InferredSkeleton> skeleton_;
};

TEST_F(ExperimentChurn, RestartDegradesAndReinfersAfterFreshThreshold) {
  ASSERT_TRUE(skeleton_.has_value());
  const auto skeleton_targets = exp_.hunter().current_targets(task_);
  EXPECT_FALSE(exp_.hunter().task_degraded(task_));

  exp_.orchestrator().restart_container(victim());
  // Degradation is synchronous with the churn callback: stale skeleton
  // targets are gone before any probe could fire at the restarting victim.
  EXPECT_TRUE(exp_.hunter().task_degraded(task_));

  // Bring the victim back and supply fresh batches: the first only
  // accumulates (below reinference_min_samples = 2), the second re-infers
  // through the fidelity gate and restores the skeleton list.
  exp_.run_to_running(task_);
  const auto layout = exp_.layout_of(task_, par_);
  EXPECT_FALSE(exp_.apply_skeleton(task_, layout).has_value());
  EXPECT_TRUE(exp_.hunter().task_degraded(task_));
  EXPECT_TRUE(exp_.apply_skeleton(task_, layout).has_value());
  EXPECT_FALSE(exp_.hunter().task_degraded(task_));
  EXPECT_EQ(exp_.hunter().current_targets(task_), skeleton_targets);
}

TEST_F(ExperimentChurn, FailedReinferenceRestartsAccumulationEpoch) {
  ASSERT_TRUE(skeleton_.has_value());
  exp_.orchestrator().restart_container(victim());
  exp_.run_to_running(task_);
  const auto layout = exp_.layout_of(task_, par_);

  // Two idle batches reach the threshold, but the re-inference they
  // trigger fails the fidelity gate: the task stays degraded and the
  // accumulation epoch restarts from zero.
  workload::BurstConfig idle;
  idle.idle = true;
  EXPECT_FALSE(exp_.apply_skeleton(task_, layout, idle).has_value());
  EXPECT_FALSE(exp_.apply_skeleton(task_, layout, idle).has_value());
  EXPECT_TRUE(exp_.hunter().task_degraded(task_));

  // One good batch is not enough after the reset...
  EXPECT_FALSE(exp_.apply_skeleton(task_, layout).has_value());
  EXPECT_TRUE(exp_.hunter().task_degraded(task_));
  // ...the second re-infers and clears degraded mode.
  EXPECT_TRUE(exp_.apply_skeleton(task_, layout).has_value());
  EXPECT_FALSE(exp_.hunter().task_degraded(task_));
}

TEST_F(ExperimentChurn, CrashDegradesOnlyAfterNotifyLag) {
  ASSERT_TRUE(skeleton_.has_value());
  exp_.orchestrator().crash_container(victim());
  // The control plane has not learned of the crash yet: the skeleton stays
  // in force and the dead container keeps being probed — that window is
  // exactly how container-runtime faults are detected (§5.1).
  EXPECT_FALSE(exp_.hunter().task_degraded(task_));

  bool degraded_at_lag = false;
  std::size_t targets_at_lag = 0;
  exp_.events().schedule_at(
      exp_.events().now() + cluster::Orchestrator::kCrashNotifyLag +
          SimTime::seconds(1),
      [&] {
        degraded_at_lag = exp_.hunter().task_degraded(task_);
        targets_at_lag = exp_.hunter().current_targets(task_);
      });
  exp_.events().run_all();
  EXPECT_TRUE(degraded_at_lag);
  // The dead container dropped out of the degraded plan; the survivors
  // still probe each other on the basic list.
  EXPECT_GT(targets_at_lag, 0u);
}

TEST_F(ExperimentChurn, MigrationReinfersOverReboundEndpoints) {
  ASSERT_TRUE(skeleton_.has_value());
  const HostId old_host = exp_.orchestrator().container(victim()).host;
  ASSERT_TRUE(exp_.orchestrator().migrate_container(victim()));
  EXPECT_NE(exp_.orchestrator().container(victim()).host, old_host);
  EXPECT_TRUE(exp_.hunter().task_degraded(task_));

  exp_.run_to_running(task_);
  const auto layout = exp_.layout_of(task_, par_);
  EXPECT_FALSE(exp_.apply_skeleton(task_, layout).has_value());
  const auto inferred = exp_.apply_skeleton(task_, layout);
  ASSERT_TRUE(inferred.has_value());
  EXPECT_FALSE(exp_.hunter().task_degraded(task_));
  // The re-inferred skeleton references only live endpoints — i.e. the
  // victim's post-migration RNICs, not the ones the churn invalidated.
  std::set<Endpoint> live;
  for (const auto& ep : exp_.orchestrator().endpoints_of_task(task_)) {
    live.insert(ep);
  }
  for (const auto& p : inferred->pairs) {
    EXPECT_TRUE(live.contains(p.src));
    EXPECT_TRUE(live.contains(p.dst));
  }
}

TEST(Experiment, CheckpointRestoreRoundTripIsBitIdentical) {
  // Analyzer warm restart (§ gray telemetry): checkpoint the hunter
  // mid-incident, restore the snapshot immediately, and keep running. The
  // run must be indistinguishable — same cases, same verdicts, same event
  // counts — from the same-seed run that was never interrupted.
  auto run = [](bool interrupt) {
    ExperimentConfig cfg = small_config();
    cfg.seed = 77;
    Experiment exp(cfg);
    cluster::TaskRequest req;
    req.num_containers = 4;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(1);
    const auto task = exp.launch_task(req);
    exp.run_to_running(*task);
    const auto victim = exp.orchestrator().endpoints_of_task(*task)[0];
    const SimTime t0 = exp.events().now();
    exp.faults().inject(sim::IssueType::kRnicPortDown,
                        {sim::ComponentKind::kRnic, victim.rnic.value()},
                        t0 + SimTime::minutes(2), t0 + SimTime::minutes(8));
    if (interrupt) {
      // Mid-incident: the case is open and half its evidence collected.
      exp.events().schedule_at(t0 + SimTime::minutes(5), [&] {
        const auto snap = exp.hunter().checkpoint();
        exp.hunter().restore(snap);
      });
    }
    exp.hunter().start(t0 + SimTime::minutes(20));
    exp.events().run_all();
    exp.hunter().finalize();

    struct CaseSummary {
      std::int64_t first, last, closed_at;
      std::size_t pairs, events;
      LocalizationMethod method;
      std::vector<sim::ComponentRef> culprits;
      double confidence;
    };
    std::vector<CaseSummary> out;
    for (const auto& c : exp.hunter().failure_cases()) {
      out.push_back({c.first_event.raw_nanos(), c.last_event.raw_nanos(),
                     c.closed_at.raw_nanos(), c.pairs.size(),
                     c.events.size(), c.localization.method,
                     c.localization.culprits, c.localization.confidence});
    }
    return std::pair{out, exp.hunter().total_probes()};
  };
  const auto [plain, plain_probes] = run(false);
  const auto [warm, warm_probes] = run(true);
  ASSERT_FALSE(plain.empty());  // the incident must have produced a case
  EXPECT_EQ(plain_probes, warm_probes);
  ASSERT_EQ(plain.size(), warm.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].first, warm[i].first);
    EXPECT_EQ(plain[i].last, warm[i].last);
    EXPECT_EQ(plain[i].closed_at, warm[i].closed_at);
    EXPECT_EQ(plain[i].pairs, warm[i].pairs);
    EXPECT_EQ(plain[i].events, warm[i].events);
    EXPECT_EQ(plain[i].method, warm[i].method);
    EXPECT_EQ(plain[i].culprits, warm[i].culprits);
    EXPECT_EQ(plain[i].confidence, warm[i].confidence);
  }
}

TEST(Experiment, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    ExperimentConfig cfg = small_config();
    cfg.seed = seed;
    Experiment exp(cfg);
    cluster::TaskRequest req;
    req.num_containers = 4;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(1);
    const auto task = exp.launch_task(req);
    exp.run_to_running(*task);
    exp.hunter().start(exp.events().now() + SimTime::minutes(5));
    exp.events().run_all();
    return exp.hunter().total_probes();
  };
  EXPECT_EQ(run(9), run(9));
}

}  // namespace
}  // namespace skh::core
