#include "core/sharded_detector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "common/pool.h"
#include "common/rng.h"

namespace skh::core {
namespace {

EndpointPair pair_n(std::uint32_t i) {
  return {{ContainerId{2 * i}, RnicId{16 * i}},
          {ContainerId{2 * i + 1}, RnicId{16 * i + 8}}};
}

/// Comparable projection of an event (AnomalyEvent has no operator==).
using EventKey = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                            std::uint32_t, std::int64_t, int, double>;

EventKey key_of(const AnomalyEvent& e) {
  return {e.pair.src.container.value(), e.pair.src.rnic.value(),
          e.pair.dst.container.value(), e.pair.dst.rnic.value(),
          e.detected_at.raw_nanos(),    static_cast<int>(e.kind),
          e.score};
}

std::vector<EventKey> keys_of(const std::vector<AnomalyEvent>& events) {
  std::vector<EventKey> out;
  out.reserve(events.size());
  for (const auto& e : events) out.push_back(key_of(e));
  return out;
}

/// One probe observation of the synthetic campaign: `n_pairs` pairs probed
/// once per second for `seconds`, with pair i%7==0 suffering a loss burst
/// and pair i%5==0 a latency regime shift mid-run — enough to exercise all
/// four anomaly rules.
struct Obs {
  std::uint32_t pair;
  std::uint64_t seq;
  double t;
  bool delivered;
  double rtt;
};

std::vector<Obs> synthetic_campaign(std::uint32_t n_pairs, double seconds) {
  RngStream rng{0xC0FFEE};
  std::vector<Obs> obs;
  obs.reserve(static_cast<std::size_t>(seconds) * n_pairs);
  std::uint64_t seq = 0;
  for (double t = 0.0; t < seconds; t += 1.0) {
    for (std::uint32_t i = 0; i < n_pairs; ++i) {
      ++seq;
      const bool lossy =
          (i % 7 == 0) && t >= seconds * 0.4 && t < seconds * 0.55;
      const bool shifted = (i % 5 == 0) && t >= seconds * 0.7;
      const bool delivered = !(lossy && rng.uniform() < 0.6);
      const double rtt =
          (shifted ? 28.0 : 16.0) * std::exp(rng.normal(0.0, 0.05));
      obs.push_back(Obs{i, seq, t, delivered, rtt});
    }
  }
  return obs;
}

/// Replay the campaign through a sharded detector round by round (one
/// batch per second, as the hunter ticks), returning every ingest event in
/// emission order followed by the canonical flush tail.
std::vector<AnomalyEvent> replay(ShardedDetector& det,
                                 const std::vector<Obs>& obs,
                                 std::uint32_t n_pairs, double seconds) {
  std::vector<AnomalyEvent> all;
  std::vector<ShardedDetector::BatchItem> batch;
  std::vector<AnomalyEvent> events;
  std::vector<std::uint32_t> fired;
  det.reserve_pairs(n_pairs);
  std::size_t next = 0;
  for (double t = 0.0; t < seconds; t += 1.0) {
    batch.clear();
    while (next < obs.size() && obs[next].t <= t) {
      const Obs& o = obs[next++];
      batch.push_back(ShardedDetector::BatchItem{
          det.handle_of(pair_n(o.pair)), o.seq, SimTime::seconds(o.t),
          o.delivered, o.rtt});
    }
    det.ingest_batch(batch, events, fired);
    all.insert(all.end(), events.begin(), events.end());
  }
  const auto tail = det.flush(SimTime::seconds(seconds));
  all.insert(all.end(), tail.begin(), tail.end());
  return all;
}

TEST(ShardRing, DeterministicAndCovering) {
  const ShardRing a(4), b(4);
  std::set<std::size_t> hit;
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const std::size_t s = a.shard_of(key);
    EXPECT_EQ(s, b.shard_of(key));  // pure function of (key, shard count)
    ASSERT_LT(s, 4u);
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 4u);  // vnodes spread keys over every shard
  const ShardRing one(1);
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(one.shard_of(key), 0u);
  }
}

// The tentpole invariant: the verdict stream is bit-identical at 1, 4, and
// 16 shards, and identical to a plain single AnomalyDetector ingesting the
// same observations sequentially (modulo the canonical flush-tail order,
// which the sharded facade pins for all shard counts).
TEST(ShardedDetector, EventStreamInvariantAcrossShardCounts) {
  constexpr std::uint32_t kPairs = 96;
  constexpr double kSeconds = 400.0;
  const auto obs = synthetic_campaign(kPairs, kSeconds);

  // Reference: plain detector, sequential, canonicalized flush tail.
  AnomalyDetector ref;
  std::vector<AnomalyEvent> ref_events;
  for (const Obs& o : obs) {
    (void)ref.ingest(ref.handle_of(pair_n(o.pair)), o.seq,
                     SimTime::seconds(o.t), o.delivered, o.rtt, ref_events);
  }
  auto ref_tail = ref.flush(SimTime::seconds(kSeconds));
  canonicalize_events(ref_tail);
  ref_events.insert(ref_events.end(), ref_tail.begin(), ref_tail.end());
  const auto want = keys_of(ref_events);
  ASSERT_FALSE(want.empty()) << "synthetic campaign fired no anomalies";

  common::ThreadPool pool(4);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    ShardedDetector det({}, shards, &pool);
    const auto events = replay(det, obs, kPairs, kSeconds);
    EXPECT_EQ(keys_of(events), want) << "at " << shards << " shards";
  }
}

// Rebalance mid-campaign: moving half the pair-id space onto one shard
// must not perturb a single verdict, and the summed counters must carry
// over with the moved state.
TEST(ShardedDetector, MigrationPreservesVerdictsAndCounters) {
  constexpr std::uint32_t kPairs = 64;
  constexpr double kSeconds = 400.0;
  const auto obs = synthetic_campaign(kPairs, kSeconds);
  common::ThreadPool pool(4);

  ShardedDetector plain({}, 4, &pool);
  const auto want = keys_of(replay(plain, obs, kPairs, kSeconds));
  const auto want_counters = plain.counters();

  ShardedDetector det({}, 4, &pool);
  std::vector<AnomalyEvent> all;
  std::vector<ShardedDetector::BatchItem> batch;
  std::vector<AnomalyEvent> events;
  std::vector<std::uint32_t> fired;
  det.reserve_pairs(kPairs);
  std::size_t next = 0;
  bool migrated = false;
  for (double t = 0.0; t < kSeconds; t += 1.0) {
    if (!migrated && t >= kSeconds / 2) {
      // Drain half the id space onto shard 3 (a failover/rebalance).
      EXPECT_GT(det.migrate_range(0, kPairs / 2, 3), 0u);
      for (std::uint32_t gid = 0; gid < kPairs / 2; ++gid) {
        EXPECT_EQ(det.shard_of(gid), 3u);
      }
      migrated = true;
    }
    batch.clear();
    while (next < obs.size() && obs[next].t <= t) {
      const Obs& o = obs[next++];
      batch.push_back(ShardedDetector::BatchItem{
          det.handle_of(pair_n(o.pair)), o.seq, SimTime::seconds(o.t),
          o.delivered, o.rtt});
    }
    det.ingest_batch(batch, events, fired);
    all.insert(all.end(), events.begin(), events.end());
  }
  const auto tail = det.flush(SimTime::seconds(kSeconds));
  all.insert(all.end(), tail.begin(), tail.end());
  EXPECT_EQ(keys_of(all), want);

  const auto got = det.counters();
  EXPECT_EQ(got.probes_ingested, want_counters.probes_ingested);
  EXPECT_EQ(got.samples_delivered, want_counters.samples_delivered);
  EXPECT_EQ(got.short_windows_closed, want_counters.short_windows_closed);
  EXPECT_EQ(got.long_windows_closed, want_counters.long_windows_closed);
  EXPECT_EQ(got.events_emitted, want_counters.events_emitted);
  // The LOF path counters live inside the per-pair models and must have
  // travelled with them.
  EXPECT_EQ(got.lof_fast_path + got.lof_fallback,
            want_counters.lof_fast_path + want_counters.lof_fallback);
}

// Snapshot/restore across shards: resuming from a mid-campaign checkpoint
// replays the identical remainder (the PR-5 contract, now sharded).
TEST(ShardedDetector, SnapshotRestoreResumesBitIdentically) {
  constexpr std::uint32_t kPairs = 48;
  constexpr double kSeconds = 300.0;
  const double kCut = 150.0;
  const auto obs = synthetic_campaign(kPairs, kSeconds);
  common::ThreadPool pool(4);

  ShardedDetector det({}, 4, &pool);
  det.reserve_pairs(kPairs);
  std::vector<ShardedDetector::BatchItem> batch;
  std::vector<AnomalyEvent> events;
  std::vector<std::uint32_t> fired;
  std::size_t next = 0;
  for (double t = 0.0; t < kCut; t += 1.0) {
    batch.clear();
    while (next < obs.size() && obs[next].t <= t) {
      const Obs& o = obs[next++];
      batch.push_back(ShardedDetector::BatchItem{
          det.handle_of(pair_n(o.pair)), o.seq, SimTime::seconds(o.t),
          o.delivered, o.rtt});
    }
    det.ingest_batch(batch, events, fired);
  }
  const auto snap = det.snapshot();
  const std::size_t mark = next;

  const auto run_tail = [&](ShardedDetector& d, std::size_t from) {
    std::vector<AnomalyEvent> all;
    std::size_t cursor = from;
    for (double t = kCut; t < kSeconds; t += 1.0) {
      batch.clear();
      while (cursor < obs.size() && obs[cursor].t <= t) {
        const Obs& o = obs[cursor++];
        batch.push_back(ShardedDetector::BatchItem{
            d.handle_of(pair_n(o.pair)), o.seq, SimTime::seconds(o.t),
            o.delivered, o.rtt});
      }
      d.ingest_batch(batch, events, fired);
      all.insert(all.end(), events.begin(), events.end());
    }
    const auto tail = d.flush(SimTime::seconds(kSeconds));
    all.insert(all.end(), tail.begin(), tail.end());
    return all;
  };

  const auto first = run_tail(det, mark);
  det.restore(snap);
  const auto second = run_tail(det, mark);
  EXPECT_EQ(keys_of(first), keys_of(second));
  ASSERT_FALSE(first.empty());

  ShardedDetector wrong({}, 2, &pool);
  EXPECT_THROW(wrong.restore(snap), std::logic_error);
}

TEST(ShardedDetector, RetireAndFlushRecycleGlobalIds) {
  common::ThreadPool pool(2);
  ShardedDetector det({}, 4, &pool);
  std::vector<AnomalyEvent> out;
  for (std::uint32_t i = 0; i < 8; ++i) {
    (void)det.ingest(det.handle_of(pair_n(i)), 1 + i, SimTime::seconds(0),
                     true, 16.0, out);
  }
  EXPECT_EQ(det.pair_count(), 8u);
  det.retire_pair(pair_n(3));
  det.retire_pair(pair_n(5));
  EXPECT_EQ(det.retired_count(), 2u);
  (void)det.flush(SimTime::seconds(120));
  EXPECT_EQ(det.pair_count(), 6u);
  EXPECT_EQ(det.pair_table().find(pair_n(3)), common::FlatPairTable::kNoSlot);
  EXPECT_EQ(det.retired_count(), 0u);
  // Recycled global ids are reissued to newly discovered pairs.
  const auto gid = det.handle_of(pair_n(100));
  EXPECT_LT(gid, 8u);
  EXPECT_EQ(det.pair_count(), 7u);
}

// for_each_pair iterates the router, so retirement sweeps (the hunter's
// churn path) see the same pair order at any shard count.
TEST(ShardedDetector, ForEachPairOrderIsShardCountInvariant) {
  std::vector<std::uint32_t> order1, order4;
  for (auto* order : {&order1, &order4}) {
    ShardedDetector det({}, order == &order1 ? 1 : 4);
    for (std::uint32_t i = 0; i < 32; ++i) (void)det.handle_of(pair_n(i));
    det.for_each_pair([order](const EndpointPair& p) {
      order->push_back(p.src.container.value());
    });
  }
  EXPECT_EQ(order1, order4);
}

}  // namespace
}  // namespace skh::core
