#include "core/anomaly.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace skh::core {
namespace {

EndpointPair pair() {
  return {{ContainerId{0}, RnicId{0}}, {ContainerId{1}, RnicId{8}}};
}

probe::ProbeResult result(double t_seconds, bool delivered, double rtt = 16.0) {
  probe::ProbeResult r;
  r.pair = pair();
  r.sent_at = SimTime::seconds(t_seconds);
  r.delivered = delivered;
  r.rtt_us = rtt;
  return r;
}

/// Feed `seconds` of healthy 1 Hz probes starting at t0; returns events.
std::vector<AnomalyEvent> feed_healthy(AnomalyDetector& det, double t0,
                                       double seconds, RngStream& rng) {
  std::vector<AnomalyEvent> all;
  for (double t = t0; t < t0 + seconds; t += 1.0) {
    const double rtt = 16.0 * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  return all;
}

TEST(Anomaly, HealthyTrafficRaisesNothing) {
  AnomalyDetector det;
  RngStream rng{1};
  const auto events = feed_healthy(det, 0, 1200, rng);
  EXPECT_TRUE(events.empty());
}

TEST(Anomaly, UnreachableStreakFiresOnce) {
  AnomalyDetector det;
  std::vector<AnomalyEvent> all;
  for (int i = 0; i < 10; ++i) {
    const auto evts = det.ingest(result(i, false));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].kind, AnomalyKind::kUnreachable);
  EXPECT_DOUBLE_EQ(all[0].detected_at.to_seconds(), 2.0);  // third failure
}

TEST(Anomaly, RecoveryRearmsUnreachable) {
  AnomalyDetector det;
  for (int i = 0; i < 5; ++i) (void)det.ingest(result(i, false));
  (void)det.ingest(result(5, true));
  std::vector<AnomalyEvent> all;
  for (int i = 6; i < 10; ++i) {
    const auto evts = det.ingest(result(i, false));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  EXPECT_EQ(all.size(), 1u);  // fires again after recovery
}

TEST(Anomaly, WindowLossRateFires) {
  AnomalyDetector det;
  RngStream rng{2};
  std::vector<AnomalyEvent> all;
  // 30s window with 20% loss; losses spread out so no streak of 3 forms.
  for (int i = 0; i < 35; ++i) {
    const bool lost = (i % 5 == 0);
    const auto evts = det.ingest(result(i, !lost, 16.0));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].kind, AnomalyKind::kPacketLoss);
  EXPECT_NEAR(all[0].score, 0.2, 0.06);
}

TEST(Anomaly, ShortTermLatencyShiftFires) {
  AnomalyDetector det;
  RngStream rng{3};
  // Build a healthy look-back (>= k+1 windows), then the Fig. 18 jump.
  auto events = feed_healthy(det, 0, 400, rng);
  ASSERT_TRUE(events.empty());
  std::vector<AnomalyEvent> all;
  for (double t = 400; t < 480; t += 1.0) {
    const double rtt = 120.0 * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].kind, AnomalyKind::kLatencyShortTerm);
  EXPECT_GT(all[0].score, det.config().lof.outlier_threshold);
}

TEST(Anomaly, TransientSpikeInOneWindowOnly) {
  // A single 30s congestion episode fires at most briefly and then the
  // detector re-converges — no alarm storm.
  AnomalyDetector det;
  RngStream rng{4};
  (void)feed_healthy(det, 0, 400, rng);
  std::size_t events_during = 0;
  for (double t = 400; t < 430; t += 1.0) {
    events_during += det.ingest(result(t, true, 40.0)).size();
  }
  // Back to healthy for 10 minutes: no further short-term alarms.
  const auto after = feed_healthy(det, 430, 600, rng);
  std::size_t later_short = 0;
  for (const auto& e : after) {
    if (e.kind == AnomalyKind::kLatencyShortTerm) ++later_short;
  }
  EXPECT_LE(later_short, 1u);
}

TEST(Anomaly, LongTermGradualDriftFires) {
  // Latency creeps up 1% per minute — each 30s step is invisible to LOF
  // (windows absorb into the look-back), but the 30-minute Z-test catches
  // the accumulated shift (Figure 14).
  DetectorConfig cfg;
  cfg.lof.outlier_threshold = 1e9;  // isolate the long-term detector
  AnomalyDetector det(cfg);
  RngStream rng{5};
  std::vector<AnomalyEvent> all;
  for (double t = 0; t < 5400; t += 1.0) {
    const double drift = 1.0 + 0.01 * (t / 60.0);
    const double rtt = 16.0 * drift * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  bool long_term = false;
  for (const auto& e : all) {
    if (e.kind == AnomalyKind::kLatencyLongTerm) long_term = true;
  }
  EXPECT_TRUE(long_term);
}

TEST(Anomaly, StableLongTermPassesZTest) {
  DetectorConfig cfg;
  cfg.lof.outlier_threshold = 1e9;
  AnomalyDetector det(cfg);
  RngStream rng{6};
  std::vector<AnomalyEvent> all;
  for (double t = 0; t < 7200; t += 1.0) {
    const double rtt = 16.0 * std::exp(rng.normal(0.0, 0.08));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  for (const auto& e : all) {
    EXPECT_NE(e.kind, AnomalyKind::kLatencyLongTerm);
  }
}

TEST(Anomaly, FlushClosesOpenWindows) {
  AnomalyDetector det;
  for (int i = 0; i < 20; ++i) {
    // 50% loss in a window that never closes on its own.
    (void)det.ingest(result(i, i % 2 == 0, 16.0));
  }
  const auto events = det.flush(SimTime::seconds(30));
  bool loss = false;
  for (const auto& e : events) {
    if (e.kind == AnomalyKind::kPacketLoss) loss = true;
  }
  EXPECT_TRUE(loss);
}

TEST(Anomaly, SparseSamplesSkipAnalysis) {
  // Fewer than min_samples_per_window: the window is not judged.
  AnomalyDetector det;
  std::vector<AnomalyEvent> all;
  for (int w = 0; w < 10; ++w) {
    // 2 probes per 30s window, one lost (50% loss but too few samples).
    auto e1 = det.ingest(result(w * 30.0, true, 16.0));
    auto e2 = det.ingest(result(w * 30.0 + 10, false));
    all.insert(all.end(), e1.begin(), e1.end());
    all.insert(all.end(), e2.begin(), e2.end());
  }
  for (const auto& e : all) {
    EXPECT_NE(e.kind, AnomalyKind::kPacketLoss);
  }
}

TEST(Anomaly, PairsAreIndependent) {
  AnomalyDetector det;
  // Pair A fails; pair B stays healthy and must not alarm.
  probe::ProbeResult healthy;
  healthy.pair = {{ContainerId{2}, RnicId{16}}, {ContainerId{3}, RnicId{24}}};
  healthy.delivered = true;
  healthy.rtt_us = 16.0;
  std::vector<AnomalyEvent> b_events;
  for (int i = 0; i < 10; ++i) {
    (void)det.ingest(result(i, false));
    healthy.sent_at = SimTime::seconds(i);
    const auto evts = det.ingest(healthy);
    b_events.insert(b_events.end(), evts.begin(), evts.end());
  }
  EXPECT_TRUE(b_events.empty());
}

TEST(AnomalyKindStrings, Printable) {
  EXPECT_EQ(to_string(AnomalyKind::kUnreachable), "unreachable");
  EXPECT_EQ(to_string(AnomalyKind::kLatencyLongTerm), "latency-long-term");
}

}  // namespace
}  // namespace skh::core
