#include "core/anomaly.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace skh::core {
namespace {

EndpointPair pair() {
  return {{ContainerId{0}, RnicId{0}}, {ContainerId{1}, RnicId{8}}};
}

EndpointPair pair_n(std::uint32_t i) {
  return {{ContainerId{2 * i}, RnicId{16 * i}},
          {ContainerId{2 * i + 1}, RnicId{16 * i + 8}}};
}

probe::ProbeResult result(double t_seconds, bool delivered, double rtt = 16.0) {
  probe::ProbeResult r;
  r.pair = pair();
  r.sent_at = SimTime::seconds(t_seconds);
  r.delivered = delivered;
  r.rtt_us = rtt;
  return r;
}

/// Feed `seconds` of healthy 1 Hz probes starting at t0; returns events.
std::vector<AnomalyEvent> feed_healthy(AnomalyDetector& det, double t0,
                                       double seconds, RngStream& rng) {
  std::vector<AnomalyEvent> all;
  for (double t = t0; t < t0 + seconds; t += 1.0) {
    const double rtt = 16.0 * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  return all;
}

TEST(Anomaly, HealthyTrafficRaisesNothing) {
  AnomalyDetector det;
  RngStream rng{1};
  const auto events = feed_healthy(det, 0, 1200, rng);
  EXPECT_TRUE(events.empty());
}

TEST(Anomaly, UnreachableStreakFiresOnce) {
  AnomalyDetector det;
  std::vector<AnomalyEvent> all;
  for (int i = 0; i < 10; ++i) {
    const auto evts = det.ingest(result(i, false));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].kind, AnomalyKind::kUnreachable);
  EXPECT_DOUBLE_EQ(all[0].detected_at.to_seconds(), 2.0);  // third failure
}

TEST(Anomaly, RecoveryRearmsUnreachable) {
  AnomalyDetector det;
  for (int i = 0; i < 5; ++i) (void)det.ingest(result(i, false));
  (void)det.ingest(result(5, true));
  std::vector<AnomalyEvent> all;
  for (int i = 6; i < 10; ++i) {
    const auto evts = det.ingest(result(i, false));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  EXPECT_EQ(all.size(), 1u);  // fires again after recovery
}

TEST(Anomaly, WindowLossRateFires) {
  AnomalyDetector det;
  RngStream rng{2};
  std::vector<AnomalyEvent> all;
  // 30s window with 20% loss; losses spread out so no streak of 3 forms.
  for (int i = 0; i < 35; ++i) {
    const bool lost = (i % 5 == 0);
    const auto evts = det.ingest(result(i, !lost, 16.0));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].kind, AnomalyKind::kPacketLoss);
  EXPECT_NEAR(all[0].score, 0.2, 0.06);
}

TEST(Anomaly, ShortTermLatencyShiftFires) {
  AnomalyDetector det;
  RngStream rng{3};
  // Build a healthy look-back (>= k+1 windows), then the Fig. 18 jump.
  auto events = feed_healthy(det, 0, 400, rng);
  ASSERT_TRUE(events.empty());
  std::vector<AnomalyEvent> all;
  for (double t = 400; t < 480; t += 1.0) {
    const double rtt = 120.0 * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].kind, AnomalyKind::kLatencyShortTerm);
  EXPECT_GT(all[0].score, det.config().lof.outlier_threshold);
}

TEST(Anomaly, TransientSpikeInOneWindowOnly) {
  // A single 30s congestion episode fires at most briefly and then the
  // detector re-converges — no alarm storm.
  AnomalyDetector det;
  RngStream rng{4};
  (void)feed_healthy(det, 0, 400, rng);
  std::size_t events_during = 0;
  for (double t = 400; t < 430; t += 1.0) {
    events_during += det.ingest(result(t, true, 40.0)).size();
  }
  // Back to healthy for 10 minutes: no further short-term alarms.
  const auto after = feed_healthy(det, 430, 600, rng);
  std::size_t later_short = 0;
  for (const auto& e : after) {
    if (e.kind == AnomalyKind::kLatencyShortTerm) ++later_short;
  }
  EXPECT_LE(later_short, 1u);
}

TEST(Anomaly, LongTermGradualDriftFires) {
  // Latency creeps up 1% per minute — each 30s step is invisible to LOF
  // (windows absorb into the look-back), but the 30-minute Z-test catches
  // the accumulated shift (Figure 14).
  DetectorConfig cfg;
  cfg.lof.outlier_threshold = 1e9;  // isolate the long-term detector
  AnomalyDetector det(cfg);
  RngStream rng{5};
  std::vector<AnomalyEvent> all;
  for (double t = 0; t < 5400; t += 1.0) {
    const double drift = 1.0 + 0.01 * (t / 60.0);
    const double rtt = 16.0 * drift * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  bool long_term = false;
  for (const auto& e : all) {
    if (e.kind == AnomalyKind::kLatencyLongTerm) long_term = true;
  }
  EXPECT_TRUE(long_term);
}

TEST(Anomaly, StableLongTermPassesZTest) {
  DetectorConfig cfg;
  cfg.lof.outlier_threshold = 1e9;
  AnomalyDetector det(cfg);
  RngStream rng{6};
  std::vector<AnomalyEvent> all;
  for (double t = 0; t < 7200; t += 1.0) {
    const double rtt = 16.0 * std::exp(rng.normal(0.0, 0.08));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  for (const auto& e : all) {
    EXPECT_NE(e.kind, AnomalyKind::kLatencyLongTerm);
  }
}

TEST(Anomaly, FlushClosesOpenWindows) {
  AnomalyDetector det;
  for (int i = 0; i < 20; ++i) {
    // 50% loss in a window that never closes on its own.
    (void)det.ingest(result(i, i % 2 == 0, 16.0));
  }
  const auto events = det.flush(SimTime::seconds(30));
  bool loss = false;
  for (const auto& e : events) {
    if (e.kind == AnomalyKind::kPacketLoss) loss = true;
  }
  EXPECT_TRUE(loss);
}

TEST(Anomaly, SparseSamplesSkipAnalysis) {
  // Fewer than min_samples_per_window: the window is not judged.
  AnomalyDetector det;
  std::vector<AnomalyEvent> all;
  for (int w = 0; w < 10; ++w) {
    // 2 probes per 30s window, one lost (50% loss but too few samples).
    auto e1 = det.ingest(result(w * 30.0, true, 16.0));
    auto e2 = det.ingest(result(w * 30.0 + 10, false));
    all.insert(all.end(), e1.begin(), e1.end());
    all.insert(all.end(), e2.begin(), e2.end());
  }
  for (const auto& e : all) {
    EXPECT_NE(e.kind, AnomalyKind::kPacketLoss);
  }
}

TEST(Anomaly, PairsAreIndependent) {
  AnomalyDetector det;
  // Pair A fails; pair B stays healthy and must not alarm.
  probe::ProbeResult healthy;
  healthy.pair = {{ContainerId{2}, RnicId{16}}, {ContainerId{3}, RnicId{24}}};
  healthy.delivered = true;
  healthy.rtt_us = 16.0;
  std::vector<AnomalyEvent> b_events;
  for (int i = 0; i < 10; ++i) {
    (void)det.ingest(result(i, false));
    healthy.sent_at = SimTime::seconds(i);
    const auto evts = det.ingest(healthy);
    b_events.insert(b_events.end(), evts.begin(), evts.end());
  }
  EXPECT_TRUE(b_events.empty());
}

TEST(Anomaly, RolloverStampsNominalBoundary) {
  // Regression (S1): the close fired by a late probe used to be stamped at
  // the probe's sent_at, dating a [0, 30) window's verdict at t=100.
  AnomalyDetector det;
  for (int i = 0; i < 20; ++i) {
    // 20% loss spread out so no unreachable streak forms.
    (void)det.ingest(result(i, i % 5 != 0, 16.0));
  }
  const auto events = det.ingest(result(100.0, true, 16.0));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AnomalyKind::kPacketLoss);
  EXPECT_DOUBLE_EQ(events[0].detected_at.to_seconds(), 30.0);
}

TEST(Anomaly, GapSpanningWindowsRealignsGrid) {
  // Regression (S1): after a gap spanning several windows the next window
  // must reopen on the nominal grid ([90, 120) here), not at the late
  // sample, so its close is stamped 120 rather than 130.
  AnomalyDetector det;
  std::vector<AnomalyEvent> all;
  for (int i = 0; i < 20; ++i) {
    const auto evts = det.ingest(result(i, i % 5 != 0, 16.0));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  for (int i = 0; i < 20; ++i) {
    const auto evts = det.ingest(result(100.0 + i, i % 5 != 0, 16.0));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  const auto evts = det.ingest(result(121.0, true, 16.0));
  all.insert(all.end(), evts.begin(), evts.end());
  std::vector<double> loss_times;
  for (const auto& e : all) {
    if (e.kind == AnomalyKind::kPacketLoss) {
      loss_times.push_back(e.detected_at.to_seconds());
    }
  }
  ASSERT_EQ(loss_times.size(), 2u);
  EXPECT_DOUBLE_EQ(loss_times[0], 30.0);
  EXPECT_DOUBLE_EQ(loss_times[1], 120.0);
}

TEST(Anomaly, FlushSkipsPartialLongWindow) {
  // Regression (S2): flush used to evaluate still-open windows regardless
  // of elapsed time, so a few seconds of post-rollover samples could fire
  // a 30-minute Z-test alarm on a 10-second window.
  for (const bool streaming : {true, false}) {
    DetectorConfig cfg;
    cfg.streaming = streaming;
    cfg.lof.outlier_threshold = 1e9;  // isolate the long-term detector
    AnomalyDetector det(cfg);
    RngStream rng{7};
    (void)feed_healthy(det, 0, 1800, rng);
    std::vector<AnomalyEvent> all;
    // The t=1800 rollover fits the baseline; then 8 s of 2.5x latency —
    // loud enough that the old flush would reject the Z-test on it.
    for (double t = 1800; t < 1808; t += 1.0) {
      const double rtt = 40.0 * std::exp(rng.normal(0.0, 0.05));
      const auto evts = det.ingest(result(t, true, rtt));
      all.insert(all.end(), evts.begin(), evts.end());
    }
    const auto flushed = det.flush(SimTime::seconds(1810));
    all.insert(all.end(), flushed.begin(), flushed.end());
    for (const auto& e : all) {
      EXPECT_NE(e.kind, AnomalyKind::kLatencyLongTerm);
    }
  }
}

TEST(Anomaly, StreamingMatchesBatchVerdicts) {
  // The streaming hot path and the batch reference must emit identical
  // verdicts — same events, kinds, pairs, and timestamps — on one shared
  // multi-pair stream covering all three window verdict kinds.
  struct Sample {
    std::uint32_t pair;
    double t;
    bool delivered;
    double rtt;
  };
  RngStream rng{17};
  std::vector<Sample> stream;
  for (double t = 0; t < 7200; t += 2.0) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      Sample s{p, t, true, 16.0 * std::exp(rng.normal(0.0, 0.05))};
      if (p == 1 && t >= 1200 && t < 1500) s.rtt *= 2.5;  // hard spike
      if (p == 2 && t >= 3000 && t < 3300 && rng.uniform() < 0.3) {
        s.delivered = false;  // loss burst
      }
      if (p == 3) s.rtt *= 1.0 + 0.01 * (t / 60.0);  // gradual drift
      stream.push_back(s);
    }
  }

  const auto run = [&stream](bool streaming) {
    DetectorConfig cfg;
    cfg.streaming = streaming;
    AnomalyDetector det(cfg);
    std::vector<AnomalyDetector::PairHandle> handles;
    for (std::uint32_t p = 0; p < 4; ++p) {
      handles.push_back(det.handle_of(pair_n(p)));
    }
    std::vector<AnomalyEvent> events;
    for (const auto& s : stream) {
      (void)det.ingest(handles[s.pair], SimTime::seconds(s.t), s.delivered,
                       s.rtt, events);
    }
    const auto tail = det.flush(SimTime::seconds(7200));
    events.insert(events.end(), tail.begin(), tail.end());
    return std::pair{events, det.counters()};
  };

  const auto [streaming_events, sc] = run(true);
  const auto [batch_events, bc] = run(false);

  ASSERT_FALSE(streaming_events.empty());
  ASSERT_EQ(streaming_events.size(), batch_events.size());
  bool saw_loss = false, saw_short = false, saw_long = false;
  for (std::size_t i = 0; i < streaming_events.size(); ++i) {
    const auto& s = streaming_events[i];
    const auto& b = batch_events[i];
    EXPECT_TRUE(s.pair == b.pair);
    EXPECT_EQ(s.kind, b.kind);
    EXPECT_EQ(s.detected_at.raw_nanos(), b.detected_at.raw_nanos());
    EXPECT_NEAR(s.score, b.score, 1e-6 * std::max(1.0, std::abs(b.score)));
    saw_loss |= s.kind == AnomalyKind::kPacketLoss;
    saw_short |= s.kind == AnomalyKind::kLatencyShortTerm;
    saw_long |= s.kind == AnomalyKind::kLatencyLongTerm;
  }
  // The stream must actually exercise every window verdict kind for the
  // equivalence to mean anything.
  EXPECT_TRUE(saw_loss);
  EXPECT_TRUE(saw_short);
  EXPECT_TRUE(saw_long);

  // Window accounting is identical; only the LOF path split is
  // streaming-specific.
  EXPECT_EQ(sc.probes_ingested, stream.size());
  EXPECT_EQ(sc.probes_ingested, bc.probes_ingested);
  EXPECT_EQ(sc.samples_delivered, bc.samples_delivered);
  EXPECT_EQ(sc.short_windows_closed, bc.short_windows_closed);
  EXPECT_EQ(sc.long_windows_closed, bc.long_windows_closed);
  EXPECT_EQ(sc.events_emitted, streaming_events.size());
  EXPECT_GT(sc.lof_fast_path + sc.lof_fallback, 0u);
  EXPECT_EQ(bc.lof_fast_path, 0u);
  EXPECT_EQ(bc.lof_fallback, 0u);
}

TEST(AnomalyDefenses, DuplicatesAndStaleReplaysDoNotChangeVerdicts) {
  // A gray measurement plane duplicating every delivery and replaying
  // stale rounds must leave the verdict stream bit-identical to the clean
  // run: rejected results may not touch window state at all.
  const auto run = [](bool inject_junk) {
    AnomalyDetector det;
    const auto h = det.handle_of(pair());
    std::vector<AnomalyEvent> events;
    RngStream rng{5};
    std::uint64_t seq = 0;
    for (double t = 0; t < 600; t += 1.0) {
      const bool lost = t >= 300 && t < 360 && rng.uniform() < 0.5;
      const double rtt = lost ? 0.0 : 16.0 * std::exp(rng.normal(0.0, 0.05));
      ++seq;
      (void)det.ingest(h, seq, SimTime::seconds(t), !lost, rtt, events);
      if (inject_junk) {
        // An exact duplicate of what was just delivered...
        (void)det.ingest(h, seq, SimTime::seconds(t), !lost, rtt, events);
        // ...and a straggler from ten rounds ago with an absurd RTT.
        if (seq > 10) {
          (void)det.ingest(h, seq - 10, SimTime::seconds(t - 10), true,
                           123.0, events);
        }
      }
    }
    const auto tail = det.flush(SimTime::seconds(600));
    events.insert(events.end(), tail.begin(), tail.end());
    return std::pair{events, det.counters()};
  };
  const auto [clean, cc] = run(false);
  const auto [noisy, nc] = run(true);
  ASSERT_FALSE(clean.empty());  // the loss burst must produce real events
  ASSERT_EQ(clean.size(), noisy.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_TRUE(clean[i].pair == noisy[i].pair);
    EXPECT_EQ(clean[i].kind, noisy[i].kind);
    EXPECT_EQ(clean[i].detected_at.raw_nanos(),
              noisy[i].detected_at.raw_nanos());
    EXPECT_EQ(clean[i].score, noisy[i].score);
  }
  EXPECT_EQ(cc.duplicates_rejected, 0u);
  EXPECT_EQ(cc.stale_rejected, 0u);
  EXPECT_EQ(nc.duplicates_rejected, 600u);
  EXPECT_EQ(nc.stale_rejected, 590u);
  EXPECT_EQ(nc.samples_delivered, cc.samples_delivered);
  EXPECT_EQ(nc.short_windows_closed, cc.short_windows_closed);
}

TEST(AnomalyDefenses, QuorumSkipsStarvedWindows) {
  // 3 samples per 30 s window, 2 of them lost: 67% loss — screams
  // packet-loss unless the quorum recognizes the window as starved by the
  // measurement plane and refuses to analyze it.
  const auto run = [](std::size_t quorum, bool streaming) {
    DetectorConfig cfg;
    cfg.streaming = streaming;
    cfg.window_quorum = quorum;
    cfg.min_samples_per_window = 2;
    AnomalyDetector det(cfg);
    const auto h = det.handle_of(pair());
    std::vector<AnomalyEvent> events;
    std::uint64_t seq = 0;
    for (int w = 0; w < 20; ++w) {
      const double base = w * 30.0;
      (void)det.ingest(h, ++seq, SimTime::seconds(base), true, 16.0, events);
      (void)det.ingest(h, ++seq, SimTime::seconds(base + 1), false, 0.0,
                       events);
      (void)det.ingest(h, ++seq, SimTime::seconds(base + 2), false, 0.0,
                       events);
    }
    const auto tail = det.flush(SimTime::seconds(620));
    events.insert(events.end(), tail.begin(), tail.end());
    return std::pair{events, det.counters()};
  };
  for (const bool streaming : {true, false}) {
    const auto [gated, gc] = run(5, streaming);
    EXPECT_TRUE(gated.empty()) << "streaming=" << streaming;
    EXPECT_GE(gc.windows_insufficient, 19u);
    const auto [open, oc] = run(0, streaming);
    EXPECT_FALSE(open.empty()) << "streaming=" << streaming;
    EXPECT_EQ(oc.windows_insufficient, 0u);
  }
}

TEST(AnomalyDefenses, CorruptedRttsRaiseNothingOnAHealthyPath) {
  // 10% of samples multiplied 50x (bit-flipped RTTs): the robust-scale
  // clamp winsorizes the moment features, so neither the short-term LOF
  // nor the long-term Z-test may page anyone for a healthy path.
  const auto run = [](bool corrupt, bool streaming) {
    DetectorConfig cfg;
    cfg.streaming = streaming;
    AnomalyDetector det(cfg);
    const auto h = det.handle_of(pair());
    std::vector<AnomalyEvent> events;
    RngStream rng{11};
    std::uint64_t seq = 0;
    for (double t = 0; t < 2400; t += 1.0) {
      double rtt = 16.0 * std::exp(rng.normal(0.0, 0.05));
      if (rng.uniform() < 0.1 && corrupt) rtt *= 50.0;
      (void)det.ingest(h, ++seq, SimTime::seconds(t), true, rtt, events);
    }
    const auto tail = det.flush(SimTime::seconds(2400));
    events.insert(events.end(), tail.begin(), tail.end());
    return events;
  };
  for (const bool streaming : {true, false}) {
    EXPECT_TRUE(run(false, streaming).empty()) << "streaming=" << streaming;
    EXPECT_TRUE(run(true, streaming).empty()) << "streaming=" << streaming;
  }
}

TEST(AnomalyDefenses, StreamingMatchesBatchUnderGrayTelemetry) {
  // The streaming/batch verdict identity must survive with every defense
  // engaged: quorum-starved windows, duplicated and stale deliveries, and
  // corrupted RTTs, on top of a real loss burst that fires events.
  struct Sample {
    std::uint32_t pair;
    std::uint64_t seq;
    double t;
    bool delivered;
    double rtt;
  };
  RngStream rng{23};
  std::vector<Sample> stream;
  std::uint64_t seqs[2] = {0, 0};
  for (double t = 0; t < 1800; t += 1.0) {
    for (std::uint32_t p = 0; p < 2; ++p) {
      // A sparse stretch for pair 1: the plane drops most of its samples.
      if (p == 1 && t >= 600 && t < 900 &&
          static_cast<int>(t) % 10 != 0) {
        continue;
      }
      Sample s{p, ++seqs[p], t, true, 16.0 * std::exp(rng.normal(0.0, 0.05))};
      if (p == 0 && t >= 300 && t < 420 && rng.uniform() < 0.4) {
        s.delivered = false;  // the real incident
        s.rtt = 0.0;
      }
      if (p == 1 && rng.uniform() < 0.05) s.rtt *= 50.0;  // corruption
      stream.push_back(s);
      if (s.seq % 7 == 0) stream.push_back(s);  // duplicate delivery
      if (s.seq % 13 == 0 && s.seq > 20) {      // stale replay
        Sample stale = s;
        stale.seq -= 15;
        stale.t -= 15.0;
        stream.push_back(stale);
      }
    }
  }

  const auto run = [&stream](bool streaming) {
    DetectorConfig cfg;
    cfg.streaming = streaming;
    cfg.window_quorum = 5;
    AnomalyDetector det(cfg);
    const AnomalyDetector::PairHandle handles[2] = {
        det.handle_of(pair_n(0)), det.handle_of(pair_n(1))};
    std::vector<AnomalyEvent> events;
    for (const auto& s : stream) {
      (void)det.ingest(handles[s.pair], s.seq, SimTime::seconds(s.t),
                       s.delivered, s.rtt, events);
    }
    const auto tail = det.flush(SimTime::seconds(1800));
    events.insert(events.end(), tail.begin(), tail.end());
    return std::pair{events, det.counters()};
  };
  const auto [se, sc] = run(true);
  const auto [be, bc] = run(false);
  ASSERT_FALSE(se.empty());
  ASSERT_EQ(se.size(), be.size());
  for (std::size_t i = 0; i < se.size(); ++i) {
    EXPECT_TRUE(se[i].pair == be[i].pair);
    EXPECT_EQ(se[i].kind, be[i].kind);
    EXPECT_EQ(se[i].detected_at.raw_nanos(), be[i].detected_at.raw_nanos());
    EXPECT_NEAR(se[i].score, be[i].score,
                1e-6 * std::max(1.0, std::abs(be[i].score)));
  }
  EXPECT_GT(sc.windows_insufficient, 0u);
  EXPECT_GT(sc.duplicates_rejected, 0u);
  EXPECT_GT(sc.stale_rejected, 0u);
  EXPECT_EQ(sc.windows_insufficient, bc.windows_insufficient);
  EXPECT_EQ(sc.duplicates_rejected, bc.duplicates_rejected);
  EXPECT_EQ(sc.stale_rejected, bc.stale_rejected);
  EXPECT_EQ(sc.samples_delivered, bc.samples_delivered);
  EXPECT_EQ(sc.short_windows_closed, bc.short_windows_closed);
  EXPECT_EQ(sc.long_windows_closed, bc.long_windows_closed);
}

TEST(AnomalyDefenses, SnapshotRestoreResumesBitIdentically) {
  // Checkpoint mid-stream, keep feeding the original, restore a second
  // detector from the snapshot and feed it the same tail: every verdict
  // and counter that depends on pair state must match bit-for-bit.
  RngStream rng{31};
  std::vector<std::tuple<std::uint64_t, double, bool, double>> head, tail;
  std::uint64_t seq = 0;
  for (double t = 0; t < 1200; t += 1.0) {
    const bool lost = t >= 700 && t < 760 && rng.uniform() < 0.5;
    const double rtt = lost ? 0.0 : 16.0 * std::exp(rng.normal(0.0, 0.05));
    (t >= 600 ? tail : head).push_back({++seq, t, !lost, rtt});
  }

  AnomalyDetector live;
  const auto h = live.handle_of(pair());
  std::vector<AnomalyEvent> live_events;
  for (const auto& [s, t, d, r] : head) {
    (void)live.ingest(h, s, SimTime::seconds(t), d, r, live_events);
  }
  const auto snap = live.snapshot();

  // The live detector continues...
  for (const auto& [s, t, d, r] : tail) {
    (void)live.ingest(h, s, SimTime::seconds(t), d, r, live_events);
  }
  const auto live_tail = live.flush(SimTime::seconds(1200));
  live_events.insert(live_events.end(), live_tail.begin(), live_tail.end());

  // ...while a cold replacement restores the checkpoint and takes over.
  AnomalyDetector restored;
  restored.restore(snap);
  const auto h2 = restored.handle_of(pair());
  EXPECT_EQ(h2, h);  // the pair index survives the snapshot
  std::vector<AnomalyEvent> restored_events;
  for (const auto& [s, t, d, r] : tail) {
    (void)restored.ingest(h2, s, SimTime::seconds(t), d, r, restored_events);
  }
  const auto rest_tail = restored.flush(SimTime::seconds(1200));
  restored_events.insert(restored_events.end(), rest_tail.begin(),
                         rest_tail.end());

  // live_events includes pre-checkpoint events; the restored run must
  // reproduce exactly the post-checkpoint suffix.
  ASSERT_FALSE(restored_events.empty());
  ASSERT_GE(live_events.size(), restored_events.size());
  const std::size_t offset = live_events.size() - restored_events.size();
  for (std::size_t i = 0; i < restored_events.size(); ++i) {
    const auto& a = live_events[offset + i];
    const auto& b = restored_events[i];
    EXPECT_TRUE(a.pair == b.pair);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.detected_at.raw_nanos(), b.detected_at.raw_nanos());
    EXPECT_EQ(a.score, b.score);
  }
}

TEST(AnomalyChurn, ReservePairsMakesIngestAllocationFree) {
  // The plan-time contract end to end: after reserve_pairs(N), mapping
  // and feeding N pairs performs zero table rebuilds.
  AnomalyDetector det;
  det.reserve_pairs(256);
  std::vector<AnomalyEvent> out;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const auto h = det.handle_of(pair_n(i));
    (void)det.ingest(h, SimTime::seconds(1.0), true, 16.0, out);
  }
  EXPECT_EQ(det.pair_count(), 256U);
  EXPECT_EQ(det.pair_table().stats().grows, 0U);
  EXPECT_EQ(det.pair_table().stats().purges, 0U);
}

TEST(AnomalyChurn, StragglerRevivesRetiredPairWithContinuity) {
  AnomalyDetector det;
  RngStream rng{7};
  const auto h = det.handle_of(pair());
  std::vector<AnomalyEvent> out;
  std::uint64_t seq = 0;
  for (double t = 0; t < 90; t += 1.0) {
    const double rtt = 16.0 * std::exp(rng.normal(0.0, 0.05));
    (void)det.ingest(h, ++seq, SimTime::seconds(t), true, rtt, out);
  }
  det.retire_pair(pair());
  EXPECT_EQ(det.retired_count(), 1U);
  EXPECT_EQ(det.pair_count(), 1U);  // parked, still mapped

  // A replayed duplicate of the last delivery must NOT revive the pair:
  // rejection runs before revival, and a lying delivery is not evidence
  // the endpoints came back.
  (void)det.ingest(h, seq, SimTime::seconds(89.0), true, 16.0, out);
  EXPECT_EQ(det.counters().duplicates_rejected, 1U);
  EXPECT_EQ(det.retired_count(), 1U);

  // A genuine straggling in-flight result revives the pair in place —
  // same handle, history intact: the duplicate above was only recognized
  // because the pre-retirement sequence state survived parking.
  EXPECT_EQ(det.handle_of(pair()), h);
  (void)det.ingest(h, ++seq, SimTime::seconds(90.0), true, 16.0, out);
  EXPECT_EQ(det.retired_count(), 0U);
}

TEST(AnomalyChurn, FlushRecyclesRetiredSlotsForReuse) {
  AnomalyDetector det;
  det.reserve_pairs(64);
  std::vector<AnomalyEvent> out;
  std::vector<AnomalyDetector::PairHandle> hs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    hs.push_back(det.handle_of(pair_n(i)));
    (void)det.ingest(hs.back(), SimTime::seconds(1.0), true, 16.0, out);
  }
  det.retire_pair(pair_n(3));
  det.retire_pair(pair_n(6));
  // Handles stay valid while parked; recycling happens only at flush.
  EXPECT_EQ(det.pair_count(), 8U);
  (void)det.flush(SimTime::seconds(120.0));
  EXPECT_EQ(det.pair_count(), 6U);
  EXPECT_EQ(det.retired_count(), 0U);
  // The recycled ids serve the next pairs instead of growing the id
  // space; the survivors keep their handles.
  const auto id_bound = det.pair_table().id_bound();
  const auto ha = det.handle_of(pair_n(100));
  const auto hb = det.handle_of(pair_n(101));
  EXPECT_LT(ha, id_bound);
  EXPECT_LT(hb, id_bound);
  EXPECT_GE(det.pair_table().stats().recycled_ids, 2U);
  for (std::uint32_t i : {0U, 1U, 2U, 4U, 5U, 7U}) {
    EXPECT_EQ(det.handle_of(pair_n(i)), hs[i]);
  }
}

TEST(AnomalyChurn, SnapshotCarriesParkedStateBitIdentically) {
  // Retirement parking is analysis state: a warm restart across a churn
  // sweep must recycle the same slots at flush and fire the same final
  // windows as the uninterrupted run.
  RngStream rng{13};
  AnomalyDetector live;
  std::vector<AnomalyEvent> live_events;
  std::vector<AnomalyDetector::PairHandle> hs;
  for (std::uint32_t i = 0; i < 4; ++i) hs.push_back(live.handle_of(pair_n(i)));
  for (double t = 0; t < 300; t += 1.0) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      const double rtt = 16.0 * std::exp(rng.normal(0.0, 0.05));
      (void)live.ingest(hs[i], SimTime::seconds(t), true, rtt, live_events);
    }
  }
  live.retire_pair(pair_n(1));
  live.retire_pair(pair_n(2));
  const auto snap = live.snapshot();

  AnomalyDetector restored;
  restored.restore(snap);
  EXPECT_EQ(restored.retired_count(), 2U);
  EXPECT_EQ(restored.pair_count(), 4U);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(restored.handle_of(pair_n(i)), hs[i]);
  }

  const auto live_tail = live.flush(SimTime::seconds(400.0));
  const auto rest_tail = restored.flush(SimTime::seconds(400.0));
  ASSERT_EQ(live_tail.size(), rest_tail.size());
  for (std::size_t i = 0; i < live_tail.size(); ++i) {
    EXPECT_TRUE(live_tail[i].pair == rest_tail[i].pair);
    EXPECT_EQ(live_tail[i].kind, rest_tail[i].kind);
    EXPECT_EQ(live_tail[i].score, rest_tail[i].score);
  }
  EXPECT_EQ(live.pair_count(), 2U);
  EXPECT_EQ(restored.pair_count(), 2U);
}

TEST(AnomalyPaths, OffByDefaultAndPairEventsStayPathAgnostic) {
  // track_paths defaults off: path ids fed through ingest are ignored, no
  // path-scoped events appear, and whole-pair verdicts carry kAnyPath.
  AnomalyDetector det;
  EXPECT_FALSE(det.config().track_paths);
  const auto h = det.handle_of(pair());
  std::vector<AnomalyEvent> all;
  std::uint64_t seq = 0;
  for (int i = 0; i < 35; ++i) {
    // 20% loss, round-robin over 4 "members" the detector must not track.
    (void)det.ingest(h, ++seq, SimTime::seconds(i), i % 5 != 0, 16.0,
                     static_cast<std::uint32_t>(i % 4), all);
  }
  ASSERT_FALSE(all.empty());
  for (const auto& e : all) {
    EXPECT_EQ(e.path_id, AnomalyEvent::kAnyPath);
  }
}

TEST(AnomalyPaths, GrayMemberFiresPathScopedLossOnly) {
  // The SprayCheck regime: one of 8 sprayed members drops 25% while the
  // pair-level rate (~3%) stays under loss_rate_threshold. Only the
  // differential per-member rule may fire, and it must name the member.
  DetectorConfig cfg;
  cfg.track_paths = true;
  AnomalyDetector det(cfg);
  const auto h = det.handle_of(pair());
  std::vector<AnomalyEvent> all;
  std::uint64_t seq = 0;
  int member2_count = 0;
  for (int i = 0; i < 480; ++i) {
    const std::uint32_t member = static_cast<std::uint32_t>(i % 8);
    bool delivered = true;
    if (member == 2 && (member2_count++ % 4) == 0) delivered = false;
    (void)det.ingest(h, ++seq, SimTime::seconds(i), delivered, 16.0, member,
                     all);
  }
  const auto tail = det.flush(SimTime::seconds(480));
  all.insert(all.end(), tail.begin(), tail.end());
  ASSERT_FALSE(all.empty());
  bool member_loss = false;
  for (const auto& e : all) {
    // No pair-level alarm: the whole point of the gray member is that the
    // aggregate stays under every whole-pair threshold.
    EXPECT_NE(e.path_id, AnomalyEvent::kAnyPath);
    if (e.kind == AnomalyKind::kPacketLoss) {
      EXPECT_EQ(e.path_id, 2u);
      EXPECT_GE(e.score, det.config().loss_rate_threshold);
      member_loss = true;
    }
  }
  EXPECT_TRUE(member_loss);
}

TEST(AnomalyPaths, SlowMemberFiresPathScopedLatencyShift) {
  DetectorConfig cfg;
  cfg.track_paths = true;
  AnomalyDetector det(cfg);
  const auto h = det.handle_of(pair());
  std::vector<AnomalyEvent> all;
  std::uint64_t seq = 0;
  for (int i = 0; i < 240; ++i) {
    const std::uint32_t member = static_cast<std::uint32_t>(i % 4);
    const double rtt = member == 1 ? 24.0 : 16.0;  // one member 1.5x slower
    (void)det.ingest(h, ++seq, SimTime::seconds(i), true, rtt, member, all);
  }
  bool member_latency = false;
  for (const auto& e : all) {
    if (e.kind == AnomalyKind::kLatencyShortTerm &&
        e.path_id != AnomalyEvent::kAnyPath) {
      EXPECT_EQ(e.path_id, 1u);
      EXPECT_NEAR(e.score, 1.5, 0.05);  // mean vs pooled-sibling mean
      member_latency = true;
    }
  }
  EXPECT_TRUE(member_latency);
}

TEST(AnomalyPaths, SnapshotAndMigrationCarryPathAccumulators) {
  // Path accumulators are analysis state: a restore (or an extract/adopt
  // shard rebalance) mid-evidence must reproduce the exact path-scoped
  // verdicts of the uninterrupted run.
  DetectorConfig cfg;
  cfg.track_paths = true;
  const auto feed = [](AnomalyDetector& det, AnomalyDetector::PairHandle h,
                       int from, int to, std::uint64_t& seq,
                       std::vector<AnomalyEvent>& out) {
    int m2 = from / 8;  // member-2 probes already seen (one per 8 steps)
    for (int i = from; i < to; ++i) {
      const std::uint32_t member = static_cast<std::uint32_t>(i % 8);
      bool delivered = true;
      if (member == 2 && (m2++ % 4) == 0) delivered = false;
      (void)det.ingest(h, ++seq, SimTime::seconds(i), delivered, 16.0, member,
                       out);
    }
  };

  AnomalyDetector live(cfg);
  const auto h = live.handle_of(pair());
  std::vector<AnomalyEvent> live_events;
  std::uint64_t seq = 0;
  feed(live, h, 0, 200, seq, live_events);
  const auto snap = live.snapshot();

  AnomalyDetector restored(cfg);
  restored.restore(snap);
  AnomalyDetector adopted(cfg);
  {
    AnomalyDetector from_snap(cfg);
    from_snap.restore(snap);
    AnomalyDetector::PairState st;
    ASSERT_TRUE(from_snap.extract_pair(pair(), st));
    (void)adopted.adopt_pair(std::move(st));
  }

  std::uint64_t seq_r = seq, seq_a = seq;
  std::vector<AnomalyEvent> restored_events, adopted_events;
  feed(live, h, 200, 480, seq, live_events);
  feed(restored, restored.handle_of(pair()), 200, 480, seq_r,
       restored_events);
  feed(adopted, adopted.handle_of(pair()), 200, 480, seq_a, adopted_events);

  ASSERT_FALSE(restored_events.empty());
  ASSERT_GE(live_events.size(), restored_events.size());
  const std::size_t offset = live_events.size() - restored_events.size();
  ASSERT_EQ(restored_events.size(), adopted_events.size());
  for (std::size_t i = 0; i < restored_events.size(); ++i) {
    const auto& a = live_events[offset + i];
    EXPECT_TRUE(a.pair == restored_events[i].pair);
    EXPECT_EQ(a.kind, restored_events[i].kind);
    EXPECT_EQ(a.path_id, restored_events[i].path_id);
    EXPECT_EQ(a.score, restored_events[i].score);
    EXPECT_EQ(a.detected_at.raw_nanos(),
              restored_events[i].detected_at.raw_nanos());
    EXPECT_EQ(restored_events[i].path_id, adopted_events[i].path_id);
    EXPECT_EQ(restored_events[i].score, adopted_events[i].score);
  }
}

TEST(AnomalyKindStrings, Printable) {
  EXPECT_EQ(to_string(AnomalyKind::kUnreachable), "unreachable");
  EXPECT_EQ(to_string(AnomalyKind::kLatencyLongTerm), "latency-long-term");
}

}  // namespace
}  // namespace skh::core
