#include "core/anomaly.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace skh::core {
namespace {

EndpointPair pair() {
  return {{ContainerId{0}, RnicId{0}}, {ContainerId{1}, RnicId{8}}};
}

EndpointPair pair_n(std::uint32_t i) {
  return {{ContainerId{2 * i}, RnicId{16 * i}},
          {ContainerId{2 * i + 1}, RnicId{16 * i + 8}}};
}

probe::ProbeResult result(double t_seconds, bool delivered, double rtt = 16.0) {
  probe::ProbeResult r;
  r.pair = pair();
  r.sent_at = SimTime::seconds(t_seconds);
  r.delivered = delivered;
  r.rtt_us = rtt;
  return r;
}

/// Feed `seconds` of healthy 1 Hz probes starting at t0; returns events.
std::vector<AnomalyEvent> feed_healthy(AnomalyDetector& det, double t0,
                                       double seconds, RngStream& rng) {
  std::vector<AnomalyEvent> all;
  for (double t = t0; t < t0 + seconds; t += 1.0) {
    const double rtt = 16.0 * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  return all;
}

TEST(Anomaly, HealthyTrafficRaisesNothing) {
  AnomalyDetector det;
  RngStream rng{1};
  const auto events = feed_healthy(det, 0, 1200, rng);
  EXPECT_TRUE(events.empty());
}

TEST(Anomaly, UnreachableStreakFiresOnce) {
  AnomalyDetector det;
  std::vector<AnomalyEvent> all;
  for (int i = 0; i < 10; ++i) {
    const auto evts = det.ingest(result(i, false));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].kind, AnomalyKind::kUnreachable);
  EXPECT_DOUBLE_EQ(all[0].detected_at.to_seconds(), 2.0);  // third failure
}

TEST(Anomaly, RecoveryRearmsUnreachable) {
  AnomalyDetector det;
  for (int i = 0; i < 5; ++i) (void)det.ingest(result(i, false));
  (void)det.ingest(result(5, true));
  std::vector<AnomalyEvent> all;
  for (int i = 6; i < 10; ++i) {
    const auto evts = det.ingest(result(i, false));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  EXPECT_EQ(all.size(), 1u);  // fires again after recovery
}

TEST(Anomaly, WindowLossRateFires) {
  AnomalyDetector det;
  RngStream rng{2};
  std::vector<AnomalyEvent> all;
  // 30s window with 20% loss; losses spread out so no streak of 3 forms.
  for (int i = 0; i < 35; ++i) {
    const bool lost = (i % 5 == 0);
    const auto evts = det.ingest(result(i, !lost, 16.0));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].kind, AnomalyKind::kPacketLoss);
  EXPECT_NEAR(all[0].score, 0.2, 0.06);
}

TEST(Anomaly, ShortTermLatencyShiftFires) {
  AnomalyDetector det;
  RngStream rng{3};
  // Build a healthy look-back (>= k+1 windows), then the Fig. 18 jump.
  auto events = feed_healthy(det, 0, 400, rng);
  ASSERT_TRUE(events.empty());
  std::vector<AnomalyEvent> all;
  for (double t = 400; t < 480; t += 1.0) {
    const double rtt = 120.0 * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].kind, AnomalyKind::kLatencyShortTerm);
  EXPECT_GT(all[0].score, det.config().lof.outlier_threshold);
}

TEST(Anomaly, TransientSpikeInOneWindowOnly) {
  // A single 30s congestion episode fires at most briefly and then the
  // detector re-converges — no alarm storm.
  AnomalyDetector det;
  RngStream rng{4};
  (void)feed_healthy(det, 0, 400, rng);
  std::size_t events_during = 0;
  for (double t = 400; t < 430; t += 1.0) {
    events_during += det.ingest(result(t, true, 40.0)).size();
  }
  // Back to healthy for 10 minutes: no further short-term alarms.
  const auto after = feed_healthy(det, 430, 600, rng);
  std::size_t later_short = 0;
  for (const auto& e : after) {
    if (e.kind == AnomalyKind::kLatencyShortTerm) ++later_short;
  }
  EXPECT_LE(later_short, 1u);
}

TEST(Anomaly, LongTermGradualDriftFires) {
  // Latency creeps up 1% per minute — each 30s step is invisible to LOF
  // (windows absorb into the look-back), but the 30-minute Z-test catches
  // the accumulated shift (Figure 14).
  DetectorConfig cfg;
  cfg.lof.outlier_threshold = 1e9;  // isolate the long-term detector
  AnomalyDetector det(cfg);
  RngStream rng{5};
  std::vector<AnomalyEvent> all;
  for (double t = 0; t < 5400; t += 1.0) {
    const double drift = 1.0 + 0.01 * (t / 60.0);
    const double rtt = 16.0 * drift * std::exp(rng.normal(0.0, 0.05));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  bool long_term = false;
  for (const auto& e : all) {
    if (e.kind == AnomalyKind::kLatencyLongTerm) long_term = true;
  }
  EXPECT_TRUE(long_term);
}

TEST(Anomaly, StableLongTermPassesZTest) {
  DetectorConfig cfg;
  cfg.lof.outlier_threshold = 1e9;
  AnomalyDetector det(cfg);
  RngStream rng{6};
  std::vector<AnomalyEvent> all;
  for (double t = 0; t < 7200; t += 1.0) {
    const double rtt = 16.0 * std::exp(rng.normal(0.0, 0.08));
    const auto evts = det.ingest(result(t, true, rtt));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  for (const auto& e : all) {
    EXPECT_NE(e.kind, AnomalyKind::kLatencyLongTerm);
  }
}

TEST(Anomaly, FlushClosesOpenWindows) {
  AnomalyDetector det;
  for (int i = 0; i < 20; ++i) {
    // 50% loss in a window that never closes on its own.
    (void)det.ingest(result(i, i % 2 == 0, 16.0));
  }
  const auto events = det.flush(SimTime::seconds(30));
  bool loss = false;
  for (const auto& e : events) {
    if (e.kind == AnomalyKind::kPacketLoss) loss = true;
  }
  EXPECT_TRUE(loss);
}

TEST(Anomaly, SparseSamplesSkipAnalysis) {
  // Fewer than min_samples_per_window: the window is not judged.
  AnomalyDetector det;
  std::vector<AnomalyEvent> all;
  for (int w = 0; w < 10; ++w) {
    // 2 probes per 30s window, one lost (50% loss but too few samples).
    auto e1 = det.ingest(result(w * 30.0, true, 16.0));
    auto e2 = det.ingest(result(w * 30.0 + 10, false));
    all.insert(all.end(), e1.begin(), e1.end());
    all.insert(all.end(), e2.begin(), e2.end());
  }
  for (const auto& e : all) {
    EXPECT_NE(e.kind, AnomalyKind::kPacketLoss);
  }
}

TEST(Anomaly, PairsAreIndependent) {
  AnomalyDetector det;
  // Pair A fails; pair B stays healthy and must not alarm.
  probe::ProbeResult healthy;
  healthy.pair = {{ContainerId{2}, RnicId{16}}, {ContainerId{3}, RnicId{24}}};
  healthy.delivered = true;
  healthy.rtt_us = 16.0;
  std::vector<AnomalyEvent> b_events;
  for (int i = 0; i < 10; ++i) {
    (void)det.ingest(result(i, false));
    healthy.sent_at = SimTime::seconds(i);
    const auto evts = det.ingest(healthy);
    b_events.insert(b_events.end(), evts.begin(), evts.end());
  }
  EXPECT_TRUE(b_events.empty());
}

TEST(Anomaly, RolloverStampsNominalBoundary) {
  // Regression (S1): the close fired by a late probe used to be stamped at
  // the probe's sent_at, dating a [0, 30) window's verdict at t=100.
  AnomalyDetector det;
  for (int i = 0; i < 20; ++i) {
    // 20% loss spread out so no unreachable streak forms.
    (void)det.ingest(result(i, i % 5 != 0, 16.0));
  }
  const auto events = det.ingest(result(100.0, true, 16.0));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AnomalyKind::kPacketLoss);
  EXPECT_DOUBLE_EQ(events[0].detected_at.to_seconds(), 30.0);
}

TEST(Anomaly, GapSpanningWindowsRealignsGrid) {
  // Regression (S1): after a gap spanning several windows the next window
  // must reopen on the nominal grid ([90, 120) here), not at the late
  // sample, so its close is stamped 120 rather than 130.
  AnomalyDetector det;
  std::vector<AnomalyEvent> all;
  for (int i = 0; i < 20; ++i) {
    const auto evts = det.ingest(result(i, i % 5 != 0, 16.0));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  for (int i = 0; i < 20; ++i) {
    const auto evts = det.ingest(result(100.0 + i, i % 5 != 0, 16.0));
    all.insert(all.end(), evts.begin(), evts.end());
  }
  const auto evts = det.ingest(result(121.0, true, 16.0));
  all.insert(all.end(), evts.begin(), evts.end());
  std::vector<double> loss_times;
  for (const auto& e : all) {
    if (e.kind == AnomalyKind::kPacketLoss) {
      loss_times.push_back(e.detected_at.to_seconds());
    }
  }
  ASSERT_EQ(loss_times.size(), 2u);
  EXPECT_DOUBLE_EQ(loss_times[0], 30.0);
  EXPECT_DOUBLE_EQ(loss_times[1], 120.0);
}

TEST(Anomaly, FlushSkipsPartialLongWindow) {
  // Regression (S2): flush used to evaluate still-open windows regardless
  // of elapsed time, so a few seconds of post-rollover samples could fire
  // a 30-minute Z-test alarm on a 10-second window.
  for (const bool streaming : {true, false}) {
    DetectorConfig cfg;
    cfg.streaming = streaming;
    cfg.lof.outlier_threshold = 1e9;  // isolate the long-term detector
    AnomalyDetector det(cfg);
    RngStream rng{7};
    (void)feed_healthy(det, 0, 1800, rng);
    std::vector<AnomalyEvent> all;
    // The t=1800 rollover fits the baseline; then 8 s of 2.5x latency —
    // loud enough that the old flush would reject the Z-test on it.
    for (double t = 1800; t < 1808; t += 1.0) {
      const double rtt = 40.0 * std::exp(rng.normal(0.0, 0.05));
      const auto evts = det.ingest(result(t, true, rtt));
      all.insert(all.end(), evts.begin(), evts.end());
    }
    const auto flushed = det.flush(SimTime::seconds(1810));
    all.insert(all.end(), flushed.begin(), flushed.end());
    for (const auto& e : all) {
      EXPECT_NE(e.kind, AnomalyKind::kLatencyLongTerm);
    }
  }
}

TEST(Anomaly, StreamingMatchesBatchVerdicts) {
  // The streaming hot path and the batch reference must emit identical
  // verdicts — same events, kinds, pairs, and timestamps — on one shared
  // multi-pair stream covering all three window verdict kinds.
  struct Sample {
    std::uint32_t pair;
    double t;
    bool delivered;
    double rtt;
  };
  RngStream rng{17};
  std::vector<Sample> stream;
  for (double t = 0; t < 7200; t += 2.0) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      Sample s{p, t, true, 16.0 * std::exp(rng.normal(0.0, 0.05))};
      if (p == 1 && t >= 1200 && t < 1500) s.rtt *= 2.5;  // hard spike
      if (p == 2 && t >= 3000 && t < 3300 && rng.uniform() < 0.3) {
        s.delivered = false;  // loss burst
      }
      if (p == 3) s.rtt *= 1.0 + 0.01 * (t / 60.0);  // gradual drift
      stream.push_back(s);
    }
  }

  const auto run = [&stream](bool streaming) {
    DetectorConfig cfg;
    cfg.streaming = streaming;
    AnomalyDetector det(cfg);
    std::vector<AnomalyDetector::PairHandle> handles;
    for (std::uint32_t p = 0; p < 4; ++p) {
      handles.push_back(det.handle_of(pair_n(p)));
    }
    std::vector<AnomalyEvent> events;
    for (const auto& s : stream) {
      (void)det.ingest(handles[s.pair], SimTime::seconds(s.t), s.delivered,
                       s.rtt, events);
    }
    const auto tail = det.flush(SimTime::seconds(7200));
    events.insert(events.end(), tail.begin(), tail.end());
    return std::pair{events, det.counters()};
  };

  const auto [streaming_events, sc] = run(true);
  const auto [batch_events, bc] = run(false);

  ASSERT_FALSE(streaming_events.empty());
  ASSERT_EQ(streaming_events.size(), batch_events.size());
  bool saw_loss = false, saw_short = false, saw_long = false;
  for (std::size_t i = 0; i < streaming_events.size(); ++i) {
    const auto& s = streaming_events[i];
    const auto& b = batch_events[i];
    EXPECT_TRUE(s.pair == b.pair);
    EXPECT_EQ(s.kind, b.kind);
    EXPECT_EQ(s.detected_at.raw_nanos(), b.detected_at.raw_nanos());
    EXPECT_NEAR(s.score, b.score, 1e-6 * std::max(1.0, std::abs(b.score)));
    saw_loss |= s.kind == AnomalyKind::kPacketLoss;
    saw_short |= s.kind == AnomalyKind::kLatencyShortTerm;
    saw_long |= s.kind == AnomalyKind::kLatencyLongTerm;
  }
  // The stream must actually exercise every window verdict kind for the
  // equivalence to mean anything.
  EXPECT_TRUE(saw_loss);
  EXPECT_TRUE(saw_short);
  EXPECT_TRUE(saw_long);

  // Window accounting is identical; only the LOF path split is
  // streaming-specific.
  EXPECT_EQ(sc.probes_ingested, stream.size());
  EXPECT_EQ(sc.probes_ingested, bc.probes_ingested);
  EXPECT_EQ(sc.samples_delivered, bc.samples_delivered);
  EXPECT_EQ(sc.short_windows_closed, bc.short_windows_closed);
  EXPECT_EQ(sc.long_windows_closed, bc.long_windows_closed);
  EXPECT_EQ(sc.events_emitted, streaming_events.size());
  EXPECT_GT(sc.lof_fast_path + sc.lof_fallback, 0u);
  EXPECT_EQ(bc.lof_fast_path, 0u);
  EXPECT_EQ(bc.lof_fallback, 0u);
}

TEST(AnomalyKindStrings, Printable) {
  EXPECT_EQ(to_string(AnomalyKind::kUnreachable), "unreachable");
  EXPECT_EQ(to_string(AnomalyKind::kLatencyLongTerm), "latency-long-term");
}

}  // namespace
}  // namespace skh::core
