#include "core/fidelity.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "workload/traffic.h"

namespace skh::core {
namespace {

using testutil::SimEnv;

TEST(Burstiness, FlatAndEmptySeriesScoreZero) {
  EXPECT_DOUBLE_EQ(burstiness({}), 0.0);
  const std::vector<double> zeros(100, 0.0);
  EXPECT_DOUBLE_EQ(burstiness(zeros), 0.0);
}

TEST(Burstiness, ConstantSeriesIsOne) {
  const std::vector<double> flat(100, 5.0);
  EXPECT_NEAR(burstiness(flat), 1.0, 1e-12);
}

TEST(Burstiness, BurstySeriesScoresHigh) {
  std::vector<double> s(100, 0.5);
  for (int i = 0; i < 100; i += 30) s[static_cast<std::size_t>(i)] = 15.0;
  EXPECT_GT(burstiness(s), 5.0);
}

TEST(BestCorrelation, IdenticalSeriesIsOne) {
  std::vector<double> s(64);
  for (std::size_t i = 0; i < 64; ++i) {
    s[i] = (i % 16 < 4) ? 10.0 : 1.0;
  }
  EXPECT_NEAR(best_correlation(s, s), 1.0, 1e-9);
}

TEST(BestCorrelation, ShiftedCopyStillCorrelates) {
  std::vector<double> a(64), b(64);
  for (std::size_t i = 0; i < 64; ++i) a[i] = (i % 16 < 4) ? 10.0 : 1.0;
  for (std::size_t i = 0; i < 64; ++i) b[(i + 5) % 64] = a[i];
  EXPECT_GT(best_correlation(a, b), 0.95);
}

TEST(BestCorrelation, ConstantSeriesIsZero) {
  const std::vector<double> flat(64, 3.0);
  const std::vector<double> other(64, 7.0);
  EXPECT_DOUBLE_EQ(best_correlation(flat, other), 0.0);
}

TEST(BestCorrelation, MismatchedSizesAreZero) {
  const std::vector<double> a(64, 1.0);
  const std::vector<double> b(32, 1.0);
  EXPECT_DOUBLE_EQ(best_correlation(a, b), 0.0);
}

class FidelityTest : public ::testing::Test {
 protected:
  FidelityTest() : env_(testutil::small_topology()) {
    task_ = testutil::run_task_to_running(env_, 4);
    workload::ParallelismConfig par;
    par.tp = 8;
    par.pp = 2;
    par.dp = 2;
    layout_ = testutil::layout_of(env_, task_, par);
  }

  std::vector<EndpointPair> true_skeleton() const {
    const auto tm = workload::build_traffic_matrix(layout_);
    std::vector<EndpointPair> out;
    for (const auto& e : tm.edges()) out.push_back(EndpointPair{e.a, e.b});
    return out;
  }

  SimEnv env_;
  TaskId task_;
  workload::TaskLayout layout_;
};

TEST_F(FidelityTest, TrueSkeletonOnRealTrafficIsAcceptable) {
  const auto obs = testutil::observations_for(env_, layout_);
  const auto rep = validate_skeleton(true_skeleton(), obs);
  EXPECT_GT(rep.pair_alignment, 0.8);
  EXPECT_GT(rep.active_coverage, 0.95);
  EXPECT_GT(rep.active_fraction, 0.9);
  EXPECT_TRUE(rep.acceptable(FidelityConfig{}));
}

TEST_F(FidelityTest, IdleWorkloadIsRejected) {
  // §7.3: a debug cluster without training traffic must not be trusted.
  workload::BurstConfig idle;
  idle.idle = true;
  const auto obs = testutil::observations_for(env_, layout_, idle);
  const auto rep = validate_skeleton(true_skeleton(), obs);
  EXPECT_LT(rep.active_fraction, 0.25);
  EXPECT_FALSE(rep.acceptable(FidelityConfig{}));
}

TEST_F(FidelityTest, EmptySkeletonOnActiveTrafficIsRejected) {
  const auto obs = testutil::observations_for(env_, layout_);
  const auto rep = validate_skeleton({}, obs);
  EXPECT_DOUBLE_EQ(rep.active_coverage, 0.0);
  EXPECT_FALSE(rep.acceptable(FidelityConfig{}));
}

TEST_F(FidelityTest, WrongPairingScoresLowAlignment) {
  // Pair endpoints that do NOT communicate (cross-stage, cross-rail): their
  // series are less correlated than true partners'.
  const auto obs = testutil::observations_for(env_, layout_);
  const auto rep_true = validate_skeleton(true_skeleton(), obs);
  std::vector<EndpointPair> wrong;
  // Pair observation i with observation i+9 (arbitrary mismatches).
  for (std::size_t i = 0; i + 9 < obs.size(); i += 4) {
    wrong.push_back(EndpointPair{obs[i].endpoint, obs[i + 9].endpoint});
  }
  const auto rep_wrong = validate_skeleton(wrong, obs);
  EXPECT_LT(rep_wrong.score, rep_true.score);
}

TEST_F(FidelityTest, EmptyObservationsScoreZero) {
  const auto rep = validate_skeleton(true_skeleton(), {});
  EXPECT_DOUBLE_EQ(rep.score, 0.0);
  EXPECT_FALSE(rep.acceptable(FidelityConfig{}));
}

}  // namespace
}  // namespace skh::core
