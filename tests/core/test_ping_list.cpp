#include "core/ping_list_gen.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "workload/traffic.h"

namespace skh::core {
namespace {

using testutil::SimEnv;

class PingListTest : public ::testing::Test {
 protected:
  PingListTest() : env_(testutil::small_topology()) {
    task_ = testutil::run_task_to_running(env_, 16);  // 128 GPUs
    endpoints_ = env_.orch.endpoints_of_task(task_);
    rank_of_ = [this](const Endpoint& ep) {
      const auto& ci = env_.orch.container(ep.container);
      for (std::uint32_t r = 0; r < ci.rnics.size(); ++r) {
        if (ci.rnics[r] == ep.rnic) return r;
      }
      return 0u;
    };
  }

  SimEnv env_;
  TaskId task_;
  std::vector<Endpoint> endpoints_;
  RankFn rank_of_;
};

TEST_F(PingListTest, BasicListIsEightfoldReduction) {
  const auto basic = basic_ping_list(endpoints_, rank_of_);
  const auto mesh = probe::full_mesh_pairs(endpoints_);
  EXPECT_EQ(basic.size() * 8, mesh.size());  // §5.1: 87.5% reduction
}

TEST_F(PingListTest, SkeletonListExpandsBothDirections) {
  const std::vector<EndpointPair> skel{{endpoints_[0], endpoints_[8]}};
  const auto list = skeleton_ping_list(skel);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].src, endpoints_[0]);
  EXPECT_EQ(list[1].src, endpoints_[8]);
}

TEST_F(PingListTest, SkeletonListDedupsBothOrientationInput) {
  // Regression: an input carrying both orientations of the same unordered
  // pair (or repeating a pair) used to emit duplicate directed targets,
  // double-probing and inflating ProbingScale::skeleton.
  const EndpointPair fwd{endpoints_[0], endpoints_[8]};
  const EndpointPair rev{endpoints_[8], endpoints_[0]};
  const auto list = skeleton_ping_list({fwd, rev, fwd});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], fwd);
  EXPECT_EQ(list[1], rev);
}

TEST_F(PingListTest, ProbingScaleCountsEachDirectedPairOnce) {
  const EndpointPair a{endpoints_[0], endpoints_[8]};
  const EndpointPair b{endpoints_[0], endpoints_[16]};
  // Unique unordered pairs -> 2 directed probes each.
  const auto clean = probing_scale(endpoints_, rank_of_, env_.topo, {a, b});
  EXPECT_EQ(clean.skeleton, 4u);
  // Redundant orientations/duplicates must not change the count.
  const auto noisy = probing_scale(
      endpoints_, rank_of_, env_.topo,
      {a, EndpointPair{a.dst, a.src}, b, a});
  EXPECT_EQ(noisy.skeleton, 4u);
}

TEST_F(PingListTest, LinkCoverListCoversAllTaskLinks) {
  const auto selected = link_cover_list(endpoints_, env_.topo, 1);
  std::set<LinkId> covered;
  for (const auto& p : selected) {
    for (LinkId l : env_.topo.route(p.src.rnic, p.dst.rnic).links) {
      covered.insert(l);
    }
  }
  // Every uplink of the task's RNICs must be probed.
  for (const auto& ep : endpoints_) {
    EXPECT_TRUE(covered.contains(env_.topo.uplink_of(ep.rnic)));
  }
}

TEST_F(PingListTest, LinkCoverRespectsRedundancy) {
  const auto selected = link_cover_list(endpoints_, env_.topo, 3);
  std::map<LinkId, std::size_t> cover;
  for (const auto& p : selected) {
    for (LinkId l : env_.topo.route(p.src.rnic, p.dst.rnic).links) {
      ++cover[l];
    }
  }
  for (const auto& ep : endpoints_) {
    EXPECT_GE(cover[env_.topo.uplink_of(ep.rnic)], 3u);
  }
}

TEST_F(PingListTest, DetectorIsQuarterOfFullMesh) {
  // The paper's deTector row: ~4x below full mesh, above the basic list.
  const auto detector = detector_baseline_list(endpoints_, env_.topo);
  const auto mesh = probe::full_mesh_pairs(endpoints_);
  const double ratio = static_cast<double>(detector.size()) /
                       static_cast<double>(mesh.size());
  EXPECT_NEAR(ratio, 0.25, 0.03);
}

TEST_F(PingListTest, Figure15Ordering) {
  // full mesh > deTector > basic > skeleton.
  const auto layout = testutil::layout_of(env_, task_);
  const auto tm = workload::build_traffic_matrix(layout);
  std::vector<EndpointPair> skel;
  for (const auto& e : tm.edges()) skel.push_back(EndpointPair{e.a, e.b});

  const auto s = probing_scale(endpoints_, rank_of_, env_.topo, skel);
  EXPECT_GT(s.full_mesh, s.detector);
  EXPECT_GT(s.detector, s.basic);
  EXPECT_GT(s.basic, s.skeleton);
  // §5.1 / §7.1: the skeleton cuts > 95% off the full mesh.
  EXPECT_LT(static_cast<double>(s.skeleton),
            0.05 * static_cast<double>(s.full_mesh));
}

TEST_F(PingListTest, MaxTargetsPerAgent) {
  const auto basic = basic_ping_list(endpoints_, rank_of_);
  // 16 containers x 8 endpoints, each endpoint pings 15 same-rank peers:
  // 120 directed targets per container agent.
  EXPECT_EQ(max_targets_per_agent(basic), 120u);
  EXPECT_EQ(max_targets_per_agent({}), 0u);
}

TEST(PingListEmpty, DegenerateInputs) {
  EXPECT_TRUE(basic_ping_list({}, [](const Endpoint&) { return 0u; }).empty());
  EXPECT_TRUE(skeleton_ping_list({}).empty());
}

}  // namespace
}  // namespace skh::core
