#include "core/skeleton_inference.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace skh::core {
namespace {

using testutil::SimEnv;

/// A 32-GPU dense task: TP8 x PP2 x DP2 over 4 full-host containers.
class InferenceTest : public ::testing::Test {
 protected:
  InferenceTest() : env_(testutil::small_topology()) {
    task_ = testutil::run_task_to_running(env_, 4);
    workload::ParallelismConfig par;
    par.tp = 8;
    par.pp = 2;
    par.dp = 2;
    layout_ = testutil::layout_of(env_, task_, par);
  }

  SimEnv env_;
  TaskId task_;
  workload::TaskLayout layout_;
};

TEST_F(InferenceTest, RecoversDpDegree) {
  const auto obs = testutil::observations_for(env_, layout_);
  InferenceConfig cfg;
  cfg.candidate_dp = {2, 4, 8};
  const auto result = infer_skeleton(obs, cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->dp, 2u);
  EXPECT_EQ(result->num_groups, 16u);  // TP8 x PP2
}

TEST_F(InferenceTest, PositionGroupsMatchGroundTruth) {
  const auto obs = testutil::observations_for(env_, layout_);
  InferenceConfig cfg;
  cfg.candidate_dp = {2, 4};
  const auto result = infer_skeleton(obs, cfg);
  ASSERT_TRUE(result.has_value());
  for (const auto& group : result->position_groups) {
    ASSERT_EQ(group.size(), 2u);
    const auto* r0 = layout_.role_of(obs[group[0]].endpoint);
    const auto* r1 = layout_.role_of(obs[group[1]].endpoint);
    ASSERT_NE(r0, nullptr);
    ASSERT_NE(r1, nullptr);
    EXPECT_EQ(r0->stage, r1->stage);
    EXPECT_EQ(r0->rail, r1->rail);
    EXPECT_NE(r0->dp_rank, r1->dp_rank);
  }
}

TEST_F(InferenceTest, PipelineDepthFromTimeShifts) {
  const auto obs = testutil::observations_for(env_, layout_);
  InferenceConfig cfg;
  cfg.candidate_dp = {2, 4};
  const auto result = infer_skeleton(obs, cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->pp, 2u);
  // Stage levels match ground truth ordering: groups holding true stage 0
  // get level 0.
  for (std::size_t g = 0; g < result->position_groups.size(); ++g) {
    const auto* role =
        layout_.role_of(obs[result->position_groups[g][0]].endpoint);
    ASSERT_NE(role, nullptr);
    EXPECT_EQ(result->stage_of_group[g], role->stage);
  }
}

TEST_F(InferenceTest, SkeletonCoversTrueTraffic) {
  const auto obs = testutil::observations_for(env_, layout_);
  const auto tm = workload::build_traffic_matrix(layout_);
  std::vector<EndpointPair> truth;
  for (const auto& e : tm.edges()) truth.push_back(EndpointPair{e.a, e.b});

  InferenceConfig cfg;
  cfg.candidate_dp = {2, 4};
  const auto result = infer_skeleton(obs, cfg);
  ASSERT_TRUE(result.has_value());
  const auto q = evaluate_skeleton(result->pairs, truth);
  EXPECT_GT(q.coverage, 0.95);
  EXPECT_LT(q.excess, 0.35);
}

TEST_F(InferenceTest, FallsBackOnIdleWorkload) {
  // §7.3: a debug cluster with no training traffic defeats inference.
  workload::BurstConfig bcfg;
  bcfg.idle = true;
  const auto obs = testutil::observations_for(env_, layout_, bcfg);
  InferenceConfig cfg;
  cfg.candidate_dp = {2, 4};
  const auto result = infer_skeleton(obs, cfg);
  // Either infeasible (nullopt) or clearly low-quality; idle traffic has no
  // structure, so a feasible-but-arbitrary grouping must not be trusted by
  // callers. We accept both outcomes but require determinism.
  const auto again = infer_skeleton(obs, cfg);
  EXPECT_EQ(result.has_value(), again.has_value());
}

TEST_F(InferenceTest, TooFewEndpointsInfeasible) {
  std::vector<EndpointObservation> obs;
  EXPECT_FALSE(infer_skeleton(obs, {}).has_value());
  obs.resize(3);
  EXPECT_FALSE(infer_skeleton(obs, {}).has_value());
}

TEST(Inference, LargerTaskDeeperPipeline) {
  // TP4 x PP4 x DP4: 16 containers of 4 GPUs on 8 hosts.
  SimEnv env(testutil::small_topology(8, 8));
  const auto task = testutil::run_task_to_running(env, 16, 4);
  workload::ParallelismConfig par;
  par.tp = 4;
  par.pp = 4;
  par.dp = 4;
  const auto layout = testutil::layout_of(env, task, par);
  const auto obs = testutil::observations_for(env, layout);
  InferenceConfig cfg;
  cfg.candidate_dp = {2, 4, 8};
  const auto result = infer_skeleton(obs, cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->dp, 4u);
  EXPECT_EQ(result->pp, 4u);
}

TEST(Inference, MoeTaskStillClusters) {
  // §5.1: "the latest new models may introduce extra parallelism strategies
  // (e.g., EP), but can be classified using the same method."
  SimEnv env(testutil::small_topology(8, 8));
  const auto task = testutil::run_task_to_running(env, 8, 8);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 4;
  par.moe = true;
  par.ep = 2;
  const auto layout = testutil::layout_of(env, task, par);
  const auto obs = testutil::observations_for(env, layout);
  InferenceConfig cfg;
  cfg.candidate_dp = {2, 4};
  const auto result = infer_skeleton(obs, cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->dp, 4u);
}

TEST(MergeLagLevels, AnchorsEachLevelAtItsFirstLag) {
  // Regression guard against transitive chaining: every adjacent step in
  // {0, 2, 4, 6} is within the tolerance (2), but the chain spans 6 — an
  // implementation comparing against the *previous* lag would collapse all
  // four into one level and undercount PP depth. Anchored merging yields
  // two levels: {0, 2} and {4, 6}.
  const auto levels = merge_lag_levels({0, 2, 4, 6}, 2);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 4);
}

TEST(MergeLagLevels, SortsInputAndHandlesExactTolerance) {
  // Unsorted input; a lag exactly `tolerance` from the anchor joins it.
  const auto levels = merge_lag_levels({10, 0, 12, 2}, 2);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 10);
  EXPECT_TRUE(merge_lag_levels({}, 2).empty());
  EXPECT_EQ(merge_lag_levels({5}, 0), (std::vector<int>{5}));
}

TEST(MergeLagLevels, ZeroToleranceSeparatesEveryDistinctLag) {
  const auto levels = merge_lag_levels({3, 1, 1, 2}, 0);
  EXPECT_EQ(levels, (std::vector<int>{1, 2, 3}));
}

TEST(MedianLag, EvenSizedGroupsTakeLowerMedian) {
  // Regression: the upper middle element biased stage assignment toward
  // later stages for even-sized groups at the tolerance boundary.
  EXPECT_EQ(median_lag({0, 4}), 0);
  EXPECT_EQ(median_lag({0, 2, 4, 6}), 2);
  EXPECT_EQ(median_lag({4, 0}), 0);  // sorts internally
}

TEST(MedianLag, OddSizedGroupsTakeTrueMiddle) {
  EXPECT_EQ(median_lag({3}), 3);
  EXPECT_EQ(median_lag({5, 1, 3}), 3);
  EXPECT_EQ(median_lag({-4, -2, 0, 2, 4}), 0);
}

TEST(EvaluateSkeleton, CoverageAndExcess) {
  const Endpoint a{ContainerId{0}, RnicId{0}};
  const Endpoint b{ContainerId{1}, RnicId{8}};
  const Endpoint c{ContainerId{2}, RnicId{16}};
  const std::vector<EndpointPair> truth{{a, b}, {b, c}};
  const std::vector<EndpointPair> inferred{{b, a}, {a, c}};  // 1 hit, 1 miss
  const auto q = evaluate_skeleton(inferred, truth);
  EXPECT_DOUBLE_EQ(q.coverage, 0.5);
  EXPECT_DOUBLE_EQ(q.excess, 0.5);
  EXPECT_EQ(q.inferred_pairs, 2u);
  EXPECT_EQ(q.true_pairs, 2u);
}

TEST(EvaluateSkeleton, EmptySets) {
  const auto q = evaluate_skeleton({}, {});
  EXPECT_DOUBLE_EQ(q.coverage, 1.0);
  EXPECT_DOUBLE_EQ(q.excess, 0.0);
}

}  // namespace
}  // namespace skh::core
