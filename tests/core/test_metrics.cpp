#include "core/metrics.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace skh::core {
namespace {

using testutil::SimEnv;

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() : env_(testutil::small_topology()) {
    task_ = testutil::run_task_to_running(env_, 4);
    endpoints_ = env_.orch.endpoints_of_task(task_);
  }

  FailureCase make_case(const std::vector<EndpointPair>& pairs, double t0,
                        double t1, Localization loc = {}) {
    FailureCase c;
    c.task = task_;
    c.first_event = SimTime::seconds(t0);
    c.last_event = SimTime::seconds(t1);
    c.pairs.insert(pairs.begin(), pairs.end());
    c.localization = std::move(loc);
    c.closed = true;
    return c;
  }

  SimEnv env_;
  TaskId task_;
  std::vector<Endpoint> endpoints_;
};

TEST_F(MetricsTest, FaultAffectsPairByComponentKind) {
  const EndpointPair p{endpoints_[0], endpoints_[8]};
  sim::Fault f;
  f.target = {sim::ComponentKind::kRnic, endpoints_[0].rnic.value()};
  EXPECT_TRUE(fault_affects_pair(f, p, env_.topo));
  f.target = {sim::ComponentKind::kRnic, endpoints_[1].rnic.value()};
  EXPECT_FALSE(fault_affects_pair(f, p, env_.topo));
  f.target = {sim::ComponentKind::kHost,
              env_.topo.host_of(endpoints_[8].rnic).value()};
  EXPECT_TRUE(fault_affects_pair(f, p, env_.topo));
  f.target = {sim::ComponentKind::kPhysicalLink,
              env_.topo.uplink_of(endpoints_[0].rnic).value()};
  EXPECT_TRUE(fault_affects_pair(f, p, env_.topo));
  f.target = {sim::ComponentKind::kContainer,
              endpoints_[8].container.value()};
  EXPECT_TRUE(fault_affects_pair(f, p, env_.topo));
}

TEST_F(MetricsTest, TruePositiveScoresFull) {
  const auto fid = env_.faults.inject(
      sim::IssueType::kRnicPortDown,
      {sim::ComponentKind::kRnic, endpoints_[0].rnic.value()},
      SimTime::seconds(100), SimTime::seconds(500));
  (void)fid;
  Localization loc;
  loc.method = LocalizationMethod::kEndpointPattern;
  loc.culprits.push_back(
      {sim::ComponentKind::kRnic, endpoints_[0].rnic.value()});
  const std::vector<FailureCase> cases{
      make_case({{endpoints_[0], endpoints_[8]}}, 130, 480, loc)};
  const auto score = score_campaign(cases, env_.faults, env_.topo);
  EXPECT_EQ(score.cases_true, 1u);
  EXPECT_EQ(score.cases_false, 0u);
  EXPECT_EQ(score.detected_true, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
  EXPECT_DOUBLE_EQ(score.localization_accuracy(), 1.0);
  EXPECT_NEAR(score.mean_detection_latency_s, 30.0, 1e-9);
}

TEST_F(MetricsTest, FalsePositiveLowersPrecision) {
  // No faults at all: any case is false.
  const std::vector<FailureCase> cases{
      make_case({{endpoints_[0], endpoints_[8]}}, 10, 20)};
  const auto score = score_campaign(cases, env_.faults, env_.topo);
  EXPECT_EQ(score.cases_false, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 0.0);
}

TEST_F(MetricsTest, MissedFaultLowersRecall) {
  env_.faults.inject(sim::IssueType::kSwitchPortDown,
                     {sim::ComponentKind::kPhysicalLink, 0},
                     SimTime::seconds(0), SimTime::seconds(100));
  const auto score = score_campaign({}, env_.faults, env_.topo);
  EXPECT_DOUBLE_EQ(score.recall(), 0.0);
  EXPECT_EQ(score.injected_visible, 1u);
}

TEST_F(MetricsTest, InvisibleFaultsCountAgainstRecallOnly) {
  // §7.3: intra-host faults are inherent false negatives.
  env_.faults.inject(sim::IssueType::kNvlinkDegradation,
                     {sim::ComponentKind::kHost, 0},
                     SimTime::seconds(0), SimTime::seconds(1000));
  const auto score = score_campaign({}, env_.faults, env_.topo);
  EXPECT_EQ(score.injected_invisible, 1u);
  EXPECT_DOUBLE_EQ(score.recall(), 0.0);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);  // no cases, no false alarms
}

TEST_F(MetricsTest, WrongCulpritLowersLocalizationAccuracy) {
  env_.faults.inject(
      sim::IssueType::kRnicPortDown,
      {sim::ComponentKind::kRnic, endpoints_[0].rnic.value()},
      SimTime::seconds(0), SimTime::seconds(1000));
  Localization wrong;
  wrong.method = LocalizationMethod::kPhysicalIntersection;
  wrong.culprits.push_back({sim::ComponentKind::kPhysicalSwitch, 0});
  const std::vector<FailureCase> cases{
      make_case({{endpoints_[0], endpoints_[8]}}, 10, 500, wrong)};
  const auto score = score_campaign(cases, env_.faults, env_.topo);
  EXPECT_EQ(score.localized_total, 1u);
  EXPECT_EQ(score.localized_correct, 0u);
  EXPECT_DOUBLE_EQ(score.localization_accuracy(), 0.0);
}

TEST_F(MetricsTest, UplinkRnicAliasingCountsAsCorrect) {
  // Blaming the uplink when the RNIC port is down (or vice versa) denotes
  // the same physical port and scores as correct.
  env_.faults.inject(
      sim::IssueType::kRnicPortDown,
      {sim::ComponentKind::kRnic, endpoints_[0].rnic.value()},
      SimTime::seconds(0), SimTime::seconds(1000));
  Localization alias;
  alias.culprits.push_back(
      {sim::ComponentKind::kPhysicalLink,
       env_.topo.uplink_of(endpoints_[0].rnic).value()});
  const std::vector<FailureCase> cases{
      make_case({{endpoints_[0], endpoints_[8]}}, 10, 500, alias)};
  const auto score = score_campaign(cases, env_.faults, env_.topo);
  EXPECT_DOUBLE_EQ(score.localization_accuracy(), 1.0);
}

TEST_F(MetricsTest, TimeWindowGatesMatching) {
  env_.faults.inject(
      sim::IssueType::kRnicPortDown,
      {sim::ComponentKind::kRnic, endpoints_[0].rnic.value()},
      SimTime::hours(5), SimTime::hours(6));
  // Case long before the fault: no match.
  const std::vector<FailureCase> cases{
      make_case({{endpoints_[0], endpoints_[8]}}, 10, 60)};
  const auto score = score_campaign(cases, env_.faults, env_.topo);
  EXPECT_EQ(score.cases_false, 1u);
  EXPECT_EQ(score.detected_true, 0u);
}

TEST_F(MetricsTest, EmptyCampaignIsPerfect) {
  const auto score = score_campaign({}, env_.faults, env_.topo);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
}

TEST(ScoreSummaryTest, AggregatesAcrossRuns) {
  // Two runs: precision 1.0 and 0.5, recall 1.0 and 1.0.
  CampaignScore a;
  a.cases_total = 4;
  a.cases_true = 4;
  a.injected_visible = 4;
  a.detected_true = 4;
  a.mean_detection_latency_s = 10.0;
  CampaignScore b;
  b.cases_total = 4;
  b.cases_true = 2;
  b.cases_false = 2;
  b.injected_visible = 2;
  b.detected_true = 2;
  b.mean_detection_latency_s = 20.0;

  const std::vector<CampaignScore> scores{a, b};
  const ScoreSummary s = summarize_scores(scores);
  EXPECT_EQ(s.runs, 2u);
  EXPECT_DOUBLE_EQ(s.precision.mean, 0.75);
  EXPECT_DOUBLE_EQ(s.recall.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.recall.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.detection_latency_s.mean, 15.0);
  EXPECT_EQ(s.total_cases, 8u);
  EXPECT_EQ(s.total_cases_false, 2u);
  EXPECT_EQ(s.total_detected, 6u);
  // CI shrinks with n and is symmetric around the mean.
  EXPECT_GT(s.precision.ci95_halfwidth(), 0.0);
  EXPECT_DOUBLE_EQ(s.precision.ci95_hi() - s.precision.mean,
                   s.precision.mean - s.precision.ci95_lo());
}

TEST(ScoreSummaryTest, LatencyOnlyCountsRunsWithDetections) {
  CampaignScore detected;
  detected.injected_visible = 1;
  detected.detected_true = 1;
  detected.mean_detection_latency_s = 12.0;
  CampaignScore missed;  // latency 0 would poison the mean
  missed.injected_visible = 1;

  const std::vector<CampaignScore> scores{detected, missed};
  const ScoreSummary s = summarize_scores(scores);
  EXPECT_EQ(s.detection_latency_s.count, 1u);
  EXPECT_DOUBLE_EQ(s.detection_latency_s.mean, 12.0);
}

TEST(DetectorCountersTest, MergeEmptySpanIsAllZero) {
  const DetectorCounters total = merge_counters({});
  EXPECT_EQ(total.probes_ingested, 0u);
  EXPECT_EQ(total.samples_delivered, 0u);
  EXPECT_EQ(total.short_windows_closed, 0u);
  EXPECT_EQ(total.long_windows_closed, 0u);
  EXPECT_EQ(total.lof_fast_path, 0u);
  EXPECT_EQ(total.lof_fallback, 0u);
  EXPECT_EQ(total.lof_kdist_rebuilds, 0u);
  EXPECT_EQ(total.lof_gate_skips, 0u);
  EXPECT_EQ(total.events_emitted, 0u);
}

TEST(DetectorCountersTest, MergeSumsEveryField) {
  DetectorCounters a;
  a.probes_ingested = 10;
  a.samples_delivered = 9;
  a.short_windows_closed = 4;
  a.long_windows_closed = 1;
  a.lof_fast_path = 3;
  a.lof_fallback = 2;
  a.lof_kdist_rebuilds = 1;
  a.lof_gate_skips = 5;
  a.events_emitted = 2;
  DetectorCounters b;
  b.probes_ingested = 100;
  b.samples_delivered = 90;
  b.short_windows_closed = 40;
  b.long_windows_closed = 10;
  b.lof_fast_path = 30;
  b.lof_fallback = 20;
  b.lof_kdist_rebuilds = 10;
  b.lof_gate_skips = 50;
  b.events_emitted = 20;

  const std::vector<DetectorCounters> per_seed{a, b};
  const DetectorCounters total = merge_counters(per_seed);
  EXPECT_EQ(total.probes_ingested, 110u);
  EXPECT_EQ(total.samples_delivered, 99u);
  EXPECT_EQ(total.short_windows_closed, 44u);
  EXPECT_EQ(total.long_windows_closed, 11u);
  EXPECT_EQ(total.lof_fast_path, 33u);
  EXPECT_EQ(total.lof_fallback, 22u);
  EXPECT_EQ(total.lof_kdist_rebuilds, 11u);
  EXPECT_EQ(total.lof_gate_skips, 55u);
  EXPECT_EQ(total.events_emitted, 22u);
}

TEST(DetectorCountersTest, FastPathRatioIsOneWithoutScoring) {
  // A campaign can ingest plenty of probes yet never score (every close
  // short-circuited by the shift gate): the ratio reports a perfect cache,
  // not 0/0.
  DetectorCounters c;
  c.probes_ingested = 5000;
  c.short_windows_closed = 100;
  c.lof_gate_skips = 100;
  EXPECT_DOUBLE_EQ(lof_fast_path_ratio(c), 1.0);
}

TEST(DetectorCountersTest, FastPathRatioCountsBothPaths) {
  DetectorCounters c;
  c.lof_fast_path = 3;
  c.lof_fallback = 1;
  EXPECT_DOUBLE_EQ(lof_fast_path_ratio(c), 0.75);
  c.lof_fast_path = 0;
  EXPECT_DOUBLE_EQ(lof_fast_path_ratio(c), 0.0);
}

TEST(ScoreSummaryTest, EmptyAndSingleRunEdgeCases) {
  const ScoreSummary empty = summarize_scores({});
  EXPECT_EQ(empty.runs, 0u);
  EXPECT_DOUBLE_EQ(empty.precision.mean, 0.0);

  CampaignScore only;
  only.cases_total = 2;
  only.cases_true = 2;
  const std::vector<CampaignScore> one{only};
  const ScoreSummary s = summarize_scores(one);
  EXPECT_DOUBLE_EQ(s.precision.mean, 1.0);
  // n = 1: no spread estimate, so the CI collapses to the mean.
  EXPECT_DOUBLE_EQ(s.precision.ci95_halfwidth(), 0.0);
}

}  // namespace
}  // namespace skh::core
