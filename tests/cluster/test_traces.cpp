#include "cluster/traces.h"

#include <gtest/gtest.h>

#include <map>

namespace skh::cluster {
namespace {

TEST(TaskGpus, AlwaysMultipleOfEight) {
  RngStream rng{1};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(sample_task_gpus(rng) % 8, 0u);
  }
}

TEST(TaskGpus, PopularSizesDominate) {
  // Fig. 12: 128/512/1024 carry the bulk.
  RngStream rng{2};
  std::map<std::uint32_t, int> hist;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) ++hist[sample_task_gpus(rng)];
  const double popular =
      static_cast<double>(hist[128] + hist[512] + hist[1024]) / kTrials;
  EXPECT_GT(popular, 0.45);
}

TEST(RnicsPerContainer, EightDominatesFourIsNontrivial) {
  // Fig. 5's shape.
  RngStream rng{3};
  std::map<std::uint32_t, int> hist;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) ++hist[sample_rnics_per_container(rng)];
  EXPECT_GT(hist[8], hist[4]);
  EXPECT_GT(static_cast<double>(hist[8]) / kTrials, 0.6);
  EXPECT_GT(static_cast<double>(hist[4]) / kTrials, 0.15);
}

TEST(Lifetime, AboutHalfUnderSixtyMinutesForSmallTasks) {
  // Fig. 2: ~50% of containers of tasks sized <= 256 live < 60 min.
  RngStream rng{4};
  int short_lived = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (sample_lifetime(128, ConfigTier::kMid, rng) <
        SimTime::minutes(60)) {
      ++short_lived;
    }
  }
  const double frac = static_cast<double>(short_lived) / kTrials;
  EXPECT_NEAR(frac, 0.50, 0.08);
}

TEST(Lifetime, HigherTierLivesLonger) {
  // Fig. 3: higher-end configs have longer lifetimes.
  RngStream rng{5};
  double low_mean = 0.0, high_mean = 0.0;
  constexpr int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    low_mean += sample_lifetime(64, ConfigTier::kLow, rng).to_minutes();
    high_mean += sample_lifetime(64, ConfigTier::kHigh, rng).to_minutes();
  }
  EXPECT_GT(high_mean, low_mean * 1.3);
}

TEST(Lifetime, LargerTasksLiveLonger) {
  RngStream rng{6};
  int small_short = 0, large_short = 0;
  constexpr int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (sample_lifetime(64, ConfigTier::kMid, rng) < SimTime::minutes(60)) {
      ++small_short;
    }
    if (sample_lifetime(512, ConfigTier::kMid, rng) < SimTime::minutes(60)) {
      ++large_short;
    }
  }
  EXPECT_GT(small_short, large_short);
}

TEST(Lifetime, AlwaysPositiveAndBounded) {
  RngStream rng{7};
  for (int i = 0; i < 2000; ++i) {
    const auto t = sample_lifetime(1024, ConfigTier::kHigh, rng);
    EXPECT_GE(t, SimTime::minutes(2));
    EXPECT_LE(t, SimTime::hours(14 * 24));
  }
}

TEST(Startup, PhasedWavesGrowWithIndex) {
  // Fig. 4: later containers start later (wave pattern).
  RngStream rng{8};
  double early = 0.0, late = 0.0;
  constexpr int kTrials = 500;
  for (int i = 0; i < kTrials; ++i) {
    early += sample_startup_delay(1024, 5, rng).to_seconds();
    late += sample_startup_delay(1024, 900, rng).to_seconds();
  }
  EXPECT_GT(late / kTrials, early / kTrials + 60.0);
}

TEST(Startup, TailBoundedByTenMinutes) {
  RngStream rng{9};
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(sample_startup_delay(2048, static_cast<std::uint32_t>(i % 256),
                                   rng),
              SimTime::minutes(10));
  }
}

TEST(Startup, LargerTasksHaveHeavierTail) {
  RngStream rng{10};
  int small_stragglers = 0, large_stragglers = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (sample_startup_delay(16, 3, rng) > SimTime::seconds(90)) {
      ++small_stragglers;
    }
    if (sample_startup_delay(2048, 3, rng) > SimTime::seconds(90)) {
      ++large_stragglers;
    }
  }
  EXPECT_GT(large_stragglers, small_stragglers);
}

TEST(Teardown, BoundedAndPositive) {
  RngStream rng{11};
  for (int i = 0; i < 2000; ++i) {
    const auto t = sample_teardown_delay(512, rng);
    EXPECT_GT(t, SimTime::seconds(0));
    EXPECT_LE(t, SimTime::minutes(8));
  }
}

TEST(ConfigTier, AllTiersAppear) {
  RngStream rng{12};
  std::map<ConfigTier, int> hist;
  for (int i = 0; i < 3000; ++i) ++hist[sample_config_tier(rng)];
  EXPECT_GT(hist[ConfigTier::kLow], 0);
  EXPECT_GT(hist[ConfigTier::kMid], 0);
  EXPECT_GT(hist[ConfigTier::kHigh], 0);
}

TEST(Strings, EnumsPrintable) {
  EXPECT_EQ(to_string(ConfigTier::kHigh), "high");
  EXPECT_EQ(to_string(ContainerState::kRunning), "running");
}

}  // namespace
}  // namespace skh::cluster
