#include "cluster/orchestrator.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace skh::cluster {
namespace {

class OrchestratorTest : public ::testing::Test {
 protected:
  OrchestratorTest()
      : topo_(topo::Topology::build(config())),
        orch_(topo_, overlay_, events_, RngStream{42}) {}

  static topo::TopologyConfig config() {
    topo::TopologyConfig cfg;
    cfg.num_hosts = 16;
    cfg.rails_per_host = 8;
    cfg.hosts_per_segment = 8;
    return cfg;
  }

  TaskRequest request(std::uint32_t containers, std::uint32_t gpus = 8,
                      SimTime lifetime = SimTime::minutes(60)) {
    TaskRequest r;
    r.tenant = TenantId{1};
    r.num_containers = containers;
    r.gpus_per_container = gpus;
    r.lifetime = lifetime;
    return r;
  }

  topo::Topology topo_;
  overlay::OverlayNetwork overlay_;
  sim::EventQueue events_;
  Orchestrator orch_;
};

TEST_F(OrchestratorTest, PlacesFullHostContainers) {
  const auto task = orch_.submit_task(request(4));
  ASSERT_TRUE(task.has_value());
  const auto& info = orch_.task(*task);
  EXPECT_EQ(info.containers.size(), 4u);
  EXPECT_EQ(info.total_gpus(), 32u);
  // Each 8-GPU container owns a distinct host with all 8 rails.
  std::set<HostId> hosts;
  for (ContainerId cid : info.containers) {
    const auto& ci = orch_.container(cid);
    hosts.insert(ci.host);
    EXPECT_EQ(ci.rnics.size(), 8u);
    EXPECT_EQ(ci.state, ContainerState::kStarting);
    for (std::uint32_t g = 0; g < 8; ++g) {
      EXPECT_EQ(topo_.rail_of(ci.rnics[g]), g);
    }
  }
  EXPECT_EQ(hosts.size(), 4u);
}

TEST_F(OrchestratorTest, TwoSmallContainersShareHost) {
  const auto task = orch_.submit_task(request(2, 4));
  ASSERT_TRUE(task.has_value());
  const auto& info = orch_.task(*task);
  const auto& a = orch_.container(info.containers[0]);
  const auto& b = orch_.container(info.containers[1]);
  EXPECT_EQ(a.host, b.host);
  // Disjoint rails.
  for (RnicId ra : a.rnics) {
    for (RnicId rb : b.rnics) EXPECT_NE(ra, rb);
  }
}

TEST_F(OrchestratorTest, RejectsOversizedTask) {
  EXPECT_FALSE(orch_.submit_task(request(17)).has_value());  // 17 > 16 hosts
  EXPECT_THROW((void)orch_.submit_task(request(1, 9)), std::invalid_argument);
  EXPECT_THROW((void)orch_.submit_task(request(0)), std::invalid_argument);
}

TEST_F(OrchestratorTest, ContainersBecomeRunningAfterDelay) {
  const auto task = orch_.submit_task(request(4));
  ASSERT_TRUE(task.has_value());
  int running_events = 0;
  orch_.on_container_running([&](const ContainerInfo&) { ++running_events; });
  // Callbacks registered after submit still fire for these containers
  // because startup is event-driven.
  events_.run_until(SimTime::minutes(15));
  EXPECT_EQ(running_events, 4);
  for (ContainerId cid : orch_.task(*task).containers) {
    EXPECT_EQ(orch_.container(cid).state, ContainerState::kRunning);
    EXPECT_GT(orch_.container(cid).running_at, SimTime::seconds(0));
  }
}

TEST_F(OrchestratorTest, RunningEndpointsAttachToOverlay) {
  const auto task = orch_.submit_task(request(2));
  events_.run_until(SimTime::minutes(15));
  for (const Endpoint& ep : orch_.endpoints_of_task(*task)) {
    EXPECT_TRUE(overlay_.attached(ep));
  }
  // Endpoints of the two containers are mutually connected.
  const auto eps = orch_.endpoints_of_task(*task);
  const auto& c0 = orch_.container(orch_.task(*task).containers[0]);
  Endpoint src{}, dst{};
  for (const auto& e : eps) {
    if (e.container == c0.id) src = e;
    else dst = e;
  }
  VPortId cur = overlay_.chain_of(src).netns;
  bool reached = false;
  for (int i = 0; i < 16; ++i) {
    const auto next = overlay_.next_hop(src, dst, cur);
    if (!next) break;
    if (*next == overlay_.chain_of(dst).netns) {
      reached = true;
      break;
    }
    cur = *next;
  }
  EXPECT_TRUE(reached);
}

TEST_F(OrchestratorTest, TaskTerminatesAfterLifetime) {
  const auto task = orch_.submit_task(request(2, 8, SimTime::minutes(30)));
  events_.run_until(SimTime::minutes(60));
  for (ContainerId cid : orch_.task(*task).containers) {
    EXPECT_EQ(orch_.container(cid).state, ContainerState::kDead);
  }
  EXPECT_TRUE(orch_.task(*task).terminated);
  // Resources freed and overlay detached.
  for (const Endpoint& ep : orch_.endpoints_of_task(*task)) {
    EXPECT_FALSE(overlay_.attached(ep));
  }
}

TEST_F(OrchestratorTest, CapacityFreedAfterTermination) {
  // Fill the cluster, let it die, then fill again.
  const auto t1 = orch_.submit_task(request(16, 8, SimTime::minutes(10)));
  ASSERT_TRUE(t1.has_value());
  EXPECT_FALSE(orch_.submit_task(request(1)).has_value());
  events_.run_until(SimTime::minutes(40));
  const auto t2 = orch_.submit_task(request(16));
  EXPECT_TRUE(t2.has_value());
}

TEST_F(OrchestratorTest, StoppedCallbackFiresOnTermination) {
  const auto task = orch_.submit_task(request(3, 8, SimTime::minutes(20)));
  ASSERT_TRUE(task.has_value());
  int stopped = 0;
  orch_.on_container_stopped([&](const ContainerInfo&) { ++stopped; });
  events_.run_until(SimTime::minutes(60));
  EXPECT_EQ(stopped, 3);
}

TEST_F(OrchestratorTest, CreatedCallbackFiresAtSubmit) {
  int created = 0;
  orch_.on_container_created([&](const ContainerInfo& ci) {
    ++created;
    EXPECT_EQ(ci.state, ContainerState::kStarting);
  });
  (void)orch_.submit_task(request(5));
  EXPECT_EQ(created, 5);
}

TEST_F(OrchestratorTest, CrashedContainerDetachesAndReportsStopped) {
  const auto task = orch_.submit_task(request(2));
  events_.run_until(SimTime::minutes(15));
  int stopped = 0;
  orch_.on_container_stopped([&](const ContainerInfo&) { ++stopped; });
  const ContainerId victim = orch_.task(*task).containers[0];
  orch_.crash_container(victim);
  EXPECT_EQ(orch_.container(victim).state, ContainerState::kDead);
  // The network detaches instantly...
  for (const Endpoint& ep : orch_.container(victim).endpoints()) {
    EXPECT_FALSE(overlay_.attached(ep));
  }
  // ...but the control plane only hears about it after the sync lag.
  EXPECT_EQ(stopped, 0);
  events_.run_until(events_.now() + Orchestrator::kCrashNotifyLag +
                    SimTime::seconds(1));
  EXPECT_EQ(stopped, 1);
  // Crash is idempotent.
  orch_.crash_container(victim);
  events_.run_until(events_.now() + SimTime::minutes(3));
  EXPECT_EQ(stopped, 1);
}

TEST_F(OrchestratorTest, RunningEndpointsQueryFiltersStates) {
  const auto task = orch_.submit_task(request(2));
  EXPECT_TRUE(orch_.running_endpoints_of_task(*task).empty());
  events_.run_until(SimTime::minutes(15));
  EXPECT_EQ(orch_.running_endpoints_of_task(*task).size(), 16u);
}

TEST_F(OrchestratorTest, StartupIsPhasedNotSimultaneous) {
  // Fig. 4's premise: grouped containers reach Running at different times.
  const auto task = orch_.submit_task(request(8));
  events_.run_until(SimTime::minutes(15));
  std::set<std::int64_t> times;
  for (ContainerId cid : orch_.task(*task).containers) {
    times.insert(orch_.container(cid).running_at.raw_nanos());
  }
  EXPECT_GT(times.size(), 1u);
}

TEST_F(OrchestratorTest, PlacementFilterSkipsHosts) {
  // Blacklist-style policy: hosts 0-2 are off limits.
  orch_.set_placement_filter(
      [](HostId host) { return host.value() > 2; });
  const auto task = orch_.submit_task(request(4));
  ASSERT_TRUE(task.has_value());
  for (ContainerId cid : orch_.task(*task).containers) {
    EXPECT_GT(orch_.container(cid).host.value(), 2u);
  }
  // The filter reduces effective capacity: 13 usable hosts < 14 containers.
  EXPECT_FALSE(orch_.submit_task(request(14)).has_value());
}

TEST_F(OrchestratorTest, PlacementFilterCanBeLifted) {
  orch_.set_placement_filter([](HostId) { return false; });
  EXPECT_FALSE(orch_.submit_task(request(1)).has_value());
  orch_.set_placement_filter(nullptr);
  EXPECT_TRUE(orch_.submit_task(request(1)).has_value());
}

TEST_F(OrchestratorTest, RestartDeliversStoppedThenChurnThenRunning) {
  const auto task = orch_.submit_task(request(2));
  events_.run_until(SimTime::minutes(15));
  const ContainerId victim = orch_.task(*task).containers[0];

  // Event order contract: stopped -> churn(kRestart), both synchronous
  // inside restart_container; running only after the startup delay.
  std::vector<std::string> order;
  orch_.on_container_stopped(
      [&](const ContainerInfo&) { order.push_back("stopped"); });
  orch_.on_container_churn(
      [&](const ContainerInfo& ci, Orchestrator::ChurnReason r) {
        EXPECT_EQ(r, Orchestrator::ChurnReason::kRestart);
        EXPECT_EQ(ci.id, victim);
        EXPECT_NE(ci.state, ContainerState::kRunning);
        order.push_back("churn");
      });
  orch_.on_container_running(
      [&](const ContainerInfo&) { order.push_back("running"); });

  orch_.restart_container(victim);
  EXPECT_EQ(order, (std::vector<std::string>{"stopped", "churn"}));
  EXPECT_EQ(orch_.container(victim).state, ContainerState::kStarting);
  // The dying network stack is already detached when churn fires.
  for (const Endpoint& ep : orch_.container(victim).endpoints()) {
    EXPECT_FALSE(overlay_.attached(ep));
  }
  events_.run_until(events_.now() + SimTime::minutes(12));
  EXPECT_EQ(order,
            (std::vector<std::string>{"stopped", "churn", "running"}));
  EXPECT_EQ(orch_.container(victim).state, ContainerState::kRunning);
  for (const Endpoint& ep : orch_.container(victim).endpoints()) {
    EXPECT_TRUE(overlay_.attached(ep));
  }
}

TEST_F(OrchestratorTest, RestartIgnoresNonRunningContainers) {
  const auto task = orch_.submit_task(request(1));
  const ContainerId victim = orch_.task(*task).containers[0];
  int stopped = 0;
  orch_.on_container_stopped([&](const ContainerInfo&) { ++stopped; });
  orch_.restart_container(victim);  // still Starting: no-op
  EXPECT_EQ(stopped, 0);
  events_.run_until(SimTime::minutes(15));
  orch_.crash_container(victim);
  orch_.restart_container(victim);  // Dead: no-op
  EXPECT_EQ(orch_.container(victim).state, ContainerState::kDead);
}

TEST_F(OrchestratorTest, MigrationRebindsRnicsBeforeChurnCallback) {
  const auto task = orch_.submit_task(request(2));
  events_.run_until(SimTime::minutes(15));
  const ContainerId victim = orch_.task(*task).containers[0];
  const HostId old_host = orch_.container(victim).host;
  const auto old_rnics = orch_.container(victim).rnics;

  bool churned = false;
  orch_.on_container_churn(
      [&](const ContainerInfo& ci, Orchestrator::ChurnReason r) {
        EXPECT_EQ(r, Orchestrator::ChurnReason::kMigration);
        // The contract: subscribers rebuilding probe plans inside this
        // callback must already see the post-migration placement.
        EXPECT_NE(ci.host, old_host);
        EXPECT_NE(ci.rnics, old_rnics);
        churned = true;
      });
  ASSERT_TRUE(orch_.migrate_container(victim));
  EXPECT_TRUE(churned);
  events_.run_until(events_.now() + SimTime::minutes(12));
  EXPECT_EQ(orch_.container(victim).state, ContainerState::kRunning);
  for (const Endpoint& ep : orch_.container(victim).endpoints()) {
    EXPECT_TRUE(overlay_.attached(ep));
  }
  // Old host's capacity was released.
  EXPECT_EQ(orch_.free_gpus(old_host), 8u);
}

TEST_F(OrchestratorTest, MigrationHonorsPlacementFilter) {
  const auto task = orch_.submit_task(request(1));
  events_.run_until(SimTime::minutes(15));
  const ContainerId victim = orch_.task(*task).containers[0];
  const HostId home = orch_.container(victim).host;
  // Only the current host is schedulable: migration re-places in situ.
  orch_.set_placement_filter([home](HostId h) { return h == home; });
  ASSERT_TRUE(orch_.migrate_container(victim));
  EXPECT_EQ(orch_.container(victim).host, home);
  events_.run_until(events_.now() + SimTime::minutes(12));
  // No schedulable host at all: refused, container untouched.
  orch_.set_placement_filter([](HostId) { return false; });
  EXPECT_FALSE(orch_.migrate_container(victim));
  EXPECT_EQ(orch_.container(victim).state, ContainerState::kRunning);
}

TEST_F(OrchestratorTest, CrashChurnArrivesAfterNotifyLag) {
  const auto task = orch_.submit_task(request(2));
  events_.run_until(SimTime::minutes(15));
  const ContainerId victim = orch_.task(*task).containers[0];
  std::vector<std::string> order;
  orch_.on_container_stopped(
      [&](const ContainerInfo&) { order.push_back("stopped"); });
  orch_.on_container_churn(
      [&](const ContainerInfo&, Orchestrator::ChurnReason r) {
        EXPECT_EQ(r, Orchestrator::ChurnReason::kCrash);
        order.push_back("churn");
      });
  orch_.crash_container(victim);
  EXPECT_TRUE(order.empty());  // control plane has not heard yet
  events_.run_until(events_.now() + Orchestrator::kCrashNotifyLag +
                    SimTime::seconds(1));
  EXPECT_EQ(order, (std::vector<std::string>{"stopped", "churn"}));
}

}  // namespace
}  // namespace skh::cluster
