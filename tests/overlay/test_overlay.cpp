#include "overlay/overlay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace skh::overlay {
namespace {

Endpoint ep(std::uint32_t c, std::uint32_t r) {
  return Endpoint{ContainerId{c}, RnicId{r}};
}

/// Fixture with two endpoints on two hosts under one VNI.
class ConnectedOverlay : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = ep(0, 0);
    b_ = ep(1, 8);
    net_.attach_endpoint(a_, HostId{0}, /*vni=*/7);
    net_.attach_endpoint(b_, HostId{1}, /*vni=*/7);
  }

  /// Walk the forwarding chain of flow (src -> dst) from src's netns;
  /// returns the visited nodes or stops at a break/loop.
  std::vector<VPortId> walk(const Endpoint& src, const Endpoint& dst) {
    std::vector<VPortId> visited;
    VPortId current = net_.chain_of(src).netns;
    for (int i = 0; i < 32; ++i) {
      const auto next = net_.next_hop(src, dst, current);
      if (!next) break;
      visited.push_back(*next);
      if (*next == net_.chain_of(dst).netns) break;
      current = *next;
    }
    return visited;
  }

  OverlayNetwork net_;
  Endpoint a_, b_;
};

TEST_F(ConnectedOverlay, ChainReachesDestination) {
  const auto visited = walk(a_, b_);
  ASSERT_FALSE(visited.empty());
  EXPECT_EQ(visited.back(), net_.chain_of(b_).netns);
  // Full chain: veth, ovs, vxlan, vf | vf, vxlan, ovs, veth, netns = 9 hops.
  EXPECT_EQ(visited.size(), 9u);
}

TEST_F(ConnectedOverlay, ChainIsSymmetric) {
  const auto visited = walk(b_, a_);
  ASSERT_FALSE(visited.empty());
  EXPECT_EQ(visited.back(), net_.chain_of(a_).netns);
}

TEST_F(ConnectedOverlay, OverlayPathListsAllTenNodes) {
  const auto path = net_.overlay_path(a_, b_);
  EXPECT_EQ(path.size(), 10u);
  EXPECT_EQ(net_.node(path[0]).kind, NodeKind::kContainerNs);
  EXPECT_EQ(net_.node(path[4]).kind, NodeKind::kRnicVf);
  EXPECT_EQ(net_.node(path[5]).kind, NodeKind::kRnicVf);
  EXPECT_EQ(net_.node(path[9]).kind, NodeKind::kContainerNs);
}

TEST_F(ConnectedOverlay, BrokenRuleStopsWalk) {
  net_.break_rule(net_.chain_of(a_).ovs, b_);
  const auto visited = walk(a_, b_);
  // Walk stops after veth -> ovs (ovs has no rule for dst anymore).
  EXPECT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited.back(), net_.chain_of(a_).ovs);
  // Reverse direction unaffected.
  EXPECT_EQ(walk(b_, a_).back(), net_.chain_of(a_).netns);
}

TEST_F(ConnectedOverlay, CorruptedRuleCreatesLoop) {
  const auto& chain = net_.chain_of(a_);
  net_.corrupt_rule_to_loop(chain.vxlan, b_, chain.veth);
  VPortId current = chain.netns;
  std::vector<VPortId> seen{current};
  bool loop = false;
  for (int i = 0; i < 32; ++i) {
    const auto next = net_.next_hop(a_, b_, current);
    ASSERT_TRUE(next.has_value());
    if (std::find(seen.begin(), seen.end(), *next) != seen.end()) {
      loop = true;
      break;
    }
    seen.push_back(*next);
    current = *next;
  }
  EXPECT_TRUE(loop);
}

TEST_F(ConnectedOverlay, FlowTableSizeCountsRules) {
  // Per directed flow: 5 send-side rules (incl. the VF tunnel entry) + 4
  // receive-side rules => 9 per host for one connected pair.
  EXPECT_EQ(net_.flow_table_size(HostId{0}), 9u);
  EXPECT_EQ(net_.flow_table_size(HostId{1}), 9u);
}

TEST_F(ConnectedOverlay, BreakingARuleShrinksTheTable) {
  net_.break_rule(net_.chain_of(a_).ovs, b_);
  EXPECT_EQ(net_.flow_table_size(HostId{0}), 8u);
}

TEST_F(ConnectedOverlay, DetachRemovesReachability) {
  net_.detach_endpoint(b_);
  EXPECT_FALSE(net_.attached(b_));
  EXPECT_EQ(net_.flow_table_size(HostId{0}), 0u);
  EXPECT_TRUE(walk(a_, b_).empty());
}

TEST_F(ConnectedOverlay, DetachDropsFaultExceptions) {
  net_.break_rule(net_.chain_of(a_).ovs, b_);
  net_.detach_endpoint(b_);
  // Re-attach a fresh endpoint of the same identity: clean slate.
  net_.attach_endpoint(b_, HostId{1}, 7);
  EXPECT_EQ(walk(a_, b_).back(), net_.chain_of(b_).netns);
}

TEST_F(ConnectedOverlay, OffloadedRulesMatchOvsWhenHealthy) {
  EXPECT_TRUE(net_.offload_inconsistencies(a_.rnic).empty());
  EXPECT_FALSE(net_.offload_desynced(a_.rnic));
  const auto ovs = net_.ovs_rules_for(a_.rnic);
  const auto off = net_.offloaded_rules_for(a_.rnic);
  EXPECT_FALSE(ovs.empty());
  EXPECT_EQ(ovs, off);
}

TEST_F(ConnectedOverlay, InvalidatedOffloadIsInconsistent) {
  net_.invalidate_offload(a_.rnic);
  EXPECT_TRUE(net_.offload_desynced(a_.rnic));
  EXPECT_FALSE(net_.offload_inconsistencies(a_.rnic).empty());
  EXPECT_TRUE(net_.offloaded_rules_for(a_.rnic).empty());
  // The other RNIC is unaffected.
  EXPECT_TRUE(net_.offload_inconsistencies(b_.rnic).empty());
  // Resync repairs it (the Fig. 18 recovery).
  net_.resync_offload(a_.rnic);
  EXPECT_TRUE(net_.offload_inconsistencies(a_.rnic).empty());
  EXPECT_FALSE(net_.offload_desynced(a_.rnic));
}

TEST(Overlay, AttachRequiresUniqueEndpoint) {
  OverlayNetwork net;
  net.attach_endpoint(ep(0, 0), HostId{0}, 1);
  EXPECT_THROW(net.attach_endpoint(ep(0, 0), HostId{0}, 1),
               std::invalid_argument);
}

TEST(Overlay, DifferentVniIsIsolated) {
  // VXLAN tenant isolation: endpoints of different tasks never reach each
  // other even on the same hosts.
  OverlayNetwork net;
  net.attach_endpoint(ep(0, 0), HostId{0}, 1);
  net.attach_endpoint(ep(1, 8), HostId{1}, 2);
  EXPECT_FALSE(net.same_vni(ep(0, 0), ep(1, 8)));
  EXPECT_FALSE(
      net.next_hop(ep(0, 0), ep(1, 8), net.chain_of(ep(0, 0)).netns)
          .has_value());
}

TEST(Overlay, SameContainerEndpointsDoNotUseOverlay) {
  // Intra-container RNIC pairs communicate over NVLink; the overlay
  // provides no chain for them.
  OverlayNetwork net;
  net.attach_endpoint(ep(0, 0), HostId{0}, 1);
  net.attach_endpoint(ep(0, 1), HostId{0}, 1);
  EXPECT_FALSE(
      net.next_hop(ep(0, 0), ep(0, 1), net.chain_of(ep(0, 0)).netns)
          .has_value());
}

TEST(Overlay, UnattachedQueriesThrow) {
  OverlayNetwork net;
  EXPECT_THROW((void)net.chain_of(ep(9, 9)), std::out_of_range);
  EXPECT_THROW((void)net.node(VPortId{42}), std::out_of_range);
}

TEST(Overlay, HostScopedNodesAreShared) {
  OverlayNetwork net;
  net.attach_endpoint(ep(0, 0), HostId{0}, 1);
  net.attach_endpoint(ep(0, 1), HostId{0}, 1);
  EXPECT_EQ(net.chain_of(ep(0, 0)).ovs, net.chain_of(ep(0, 1)).ovs);
  EXPECT_EQ(net.chain_of(ep(0, 0)).vxlan, net.chain_of(ep(0, 1)).vxlan);
  EXPECT_NE(net.chain_of(ep(0, 0)).vf, net.chain_of(ep(0, 1)).vf);
}

TEST(Overlay, OffNodeQueriesReturnNull) {
  OverlayNetwork net;
  net.attach_endpoint(ep(0, 0), HostId{0}, 1);
  net.attach_endpoint(ep(1, 8), HostId{1}, 1);
  net.attach_endpoint(ep(2, 16), HostId{2}, 1);
  // A node belonging to a third endpoint is not on the (0 -> 1) chain.
  const VPortId foreign = net.chain_of(ep(2, 16)).veth;
  EXPECT_FALSE(net.next_hop(ep(0, 0), ep(1, 8), foreign).has_value());
}

TEST(Overlay, ManyEndpointsFlowTableGrowth) {
  // Fig. 6 premise: flow tables grow with tenant endpoints on the host.
  OverlayNetwork net;
  for (std::uint32_t c = 0; c < 8; ++c) {
    net.attach_endpoint(ep(c, c), HostId{c / 2}, /*vni=*/1);
  }
  std::size_t total = 0;
  for (std::uint32_t h = 0; h < 4; ++h) {
    total += net.flow_table_size(HostId{h});
  }
  // 8 endpoints in one VNI, each with 7 peers: 8 x 7 x 9 = 504 rules.
  EXPECT_EQ(total, 504u);
}

TEST(Overlay, TableDumpReflectsCorruption) {
  OverlayNetwork net;
  net.attach_endpoint(ep(0, 0), HostId{0}, 1);
  net.attach_endpoint(ep(1, 8), HostId{1}, 1);
  const auto& chain = net.chain_of(ep(0, 0));
  net.corrupt_rule_to_loop(chain.vf, ep(1, 8), chain.veth);
  bool found = false;
  for (const auto& r : net.ovs_rules_for(RnicId{0})) {
    if (r.from == chain.vf && r.dst == ep(1, 8)) {
      EXPECT_EQ(r.to, chain.veth);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace skh::overlay
