#include "common/rng.h"

#include <gtest/gtest.h>

namespace skh {
namespace {

TEST(Rng, SameSeedSameSequence) {
  RngStream a{42};
  RngStream b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  RngStream a{1};
  RngStream b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NamedForkIsStable) {
  RngStream parent{7};
  RngStream f1 = parent.fork("workload");
  // Draw from the parent; the fork derivation must not be affected.
  for (int i = 0; i < 50; ++i) (void)parent.uniform();
  RngStream f2 = parent.fork("workload");
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(f1.uniform(), f2.uniform());
  }
}

TEST(Rng, DifferentForkNamesAreIndependent) {
  RngStream parent{7};
  RngStream a = parent.fork("a");
  RngStream b = parent.fork("b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, IndexedForkMatchesItself) {
  RngStream parent{99};
  RngStream a = parent.fork(std::uint64_t{5});
  RngStream b = parent.fork(std::uint64_t{5});
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformIntWithinBounds) {
  RngStream rng{3};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliRespectsProbability) {
  RngStream rng{11};
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  RngStream rng{13};
  const std::vector<double> w{1.0, 3.0};
  int ones = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.weighted_index(w) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.75, 0.02);
}

TEST(Rng, LognormalIsPositive) {
  RngStream rng{17};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(Rng, Fnv1aIsStable) {
  // Known FNV-1a 64-bit test vector.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

}  // namespace
}  // namespace skh
