#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace skh {
namespace {

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, EdgesAreMinMax) {
  const std::vector<double> v{4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 42.0);
}

TEST(Percentile, EmptySampleIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 10.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 7.0);
}

TEST(Percentile, OutOfRangeQClamps) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150.0), 2.0);
}

TEST(Summarize, SevenNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p75, 75.25, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.as_feature_vector().size(), 7u);
}

TEST(RunningStats, MatchesBatchComputation) {
  RngStream rng{5};
  std::vector<double> v;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(10.0, 2.0);
    v.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean_of(v), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev_of(v), 1e-9);
  EXPECT_EQ(rs.count(), 500u);
}

TEST(RunningStats, MergeEqualsSequential) {
  RngStream rng{6};
  RunningStats all, a, b;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 100);
    all.add(x);
    (i < 80 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-3.0);  // clamps to bin 0
  h.add(25.0);  // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h(0.0, 1.0, 4);
  RngStream rng{8};
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double prev = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    EXPECT_GE(h.cdf_at(b), prev);
    prev = h.cdf_at(b);
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(3), 1.0);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Ecdf, StepFunction) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ecdf(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(v, 10.0), 1.0);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, SortedAndUnsortedAgree) {
  RngStream rng{21};
  std::vector<double> v;
  for (int i = 0; i < 257; ++i) v.push_back(rng.normal(0, 1));
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(percentile(v, GetParam()),
                   percentile_sorted(sorted, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 90.0,
                                           99.0, 100.0));

TEST(RunningStats, PopulationVarianceIsBiasedForm) {
  RunningStats s;
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : v) s.add(x);
  EXPECT_NEAR(s.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(RunningStats{}.population_variance(), 0.0);
}

TEST(WindowAccumulator, EmptySummaryMatchesSummarize) {
  const WindowAccumulator acc;
  const auto batch = summarize({});
  EXPECT_EQ(acc.summary().count, batch.count);
  EXPECT_DOUBLE_EQ(acc.summary().mean, batch.mean);
}

TEST(WindowAccumulator, MatchesSummarizeOnRandomWindows) {
  // Property: streaming summaries equal the batch sort-based summary —
  // order statistics exactly (same sorted array, same interpolation),
  // mean/stddev to FP rounding (Welford vs two-pass).
  RngStream rng{31};
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform(1.0, 120.0));
    WindowAccumulator acc;
    std::vector<double> raw;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = 16.0 * std::exp(rng.normal(0.0, 0.3));
      acc.add(x);
      raw.push_back(x);
    }
    const WindowSummary s = acc.summary();
    const WindowSummary b = summarize(raw);
    ASSERT_EQ(s.count, b.count);
    EXPECT_DOUBLE_EQ(s.min, b.min);
    EXPECT_DOUBLE_EQ(s.max, b.max);
    EXPECT_DOUBLE_EQ(s.p25, b.p25);
    EXPECT_DOUBLE_EQ(s.p50, b.p50);
    EXPECT_DOUBLE_EQ(s.p75, b.p75);
    EXPECT_NEAR(s.mean, b.mean, 1e-10 * std::abs(b.mean));
    EXPECT_NEAR(s.stddev, b.stddev, 1e-8 * std::max(1e-9, b.stddev));
  }
}

TEST(WindowAccumulator, ResetReusesCleanly) {
  WindowAccumulator acc;
  for (double x : {9.0, 1.0, 5.0}) acc.add(x);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  for (double x : {2.0, 4.0, 6.0}) acc.add(x);
  const auto s = acc.summary();
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_EQ(acc.sorted().size(), 3u);
}

TEST(SortSmall, ZeroOnePrincipleExhaustive) {
  // A comparator network sorts every input iff it sorts every 0/1 input
  // (Knuth's 0/1 principle) — so 2^n vectors per size prove the network
  // for all real data. Covers the padded sub-8 sizes, not just 8.
  for (std::size_t n = 0; n <= 8; ++n) {
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
      std::vector<double> v(n);
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = (bits >> i) & 1u ? 1.0 : 0.0;
      }
      std::vector<double> want = v;
      std::sort(want.begin(), want.end());
      sort_small(v.data(), v.size());
      ASSERT_EQ(v, want) << "n=" << n << " bits=" << bits;
    }
  }
}

TEST(SortSmall, MatchesStdSortOnRandomDataAndLargeFallback) {
  RngStream rng{0x50FA};
  for (std::size_t n : {2u, 5u, 6u, 7u, 8u, 9u, 40u}) {
    for (int round = 0; round < 200; ++round) {
      std::vector<double> v(n);
      for (auto& x : v) x = rng.normal(16.0, 4.0);
      std::vector<double> want = v;
      std::sort(want.begin(), want.end());
      sort_small(v.data(), v.size());
      ASSERT_EQ(v, want);
    }
  }
}

TEST(SortSmall, InfinitiesInDataSortLikeStdSort) {
  // The network pads with +inf internally; +inf already present in the
  // data must still land in the right place.
  std::vector<double> v{3.0, std::numeric_limits<double>::infinity(), 1.0,
                        std::numeric_limits<double>::infinity(), 2.0};
  std::vector<double> want = v;
  std::sort(want.begin(), want.end());
  sort_small(v.data(), v.size());
  EXPECT_EQ(v, want);
}

}  // namespace
}  // namespace skh
