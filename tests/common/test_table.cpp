#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace skh {
namespace {

TEST(TablePrinter, AlignsColumns) {
  std::ostringstream os;
  TablePrinter t({"name", "value"}, os);
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  t.print();
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  std::ostringstream os;
  TablePrinter t({"a", "b"}, os);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TablePrinter, PctFormatsFraction) {
  EXPECT_EQ(TablePrinter::pct(0.982, 1), "98.2%");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner("Figure 15", os);
  EXPECT_NE(os.str().find("Figure 15"), std::string::npos);
}

}  // namespace
}  // namespace skh
