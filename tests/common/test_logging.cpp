#include "common/logging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace skh {
namespace {

/// Captures every accepted message; restores prior state on destruction so
/// tests cannot leak a sink or a lowered threshold into the rest of the
/// suite.
class SinkCapture {
 public:
  explicit SinkCapture(LogLevel threshold) : saved_threshold_(log_threshold()) {
    set_log_threshold(threshold);
    set_log_sink([this](LogLevel level, std::string_view component,
                        std::string_view message) {
      // Called under the sink mutex: plain vector append is safe.
      lines_.push_back(std::string("[") + name(level) + "] " +
                       std::string(component) + ": " + std::string(message));
    });
  }
  ~SinkCapture() {
    set_log_sink({});
    set_log_threshold(saved_threshold_);
  }

  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }

 private:
  static const char* name(LogLevel l) {
    switch (l) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

  LogLevel saved_threshold_;
  std::vector<std::string> lines_;
};

TEST(Logging, ThresholdFiltersBelowLevel) {
  SinkCapture cap(LogLevel::kWarn);
  SKH_LOG_DEBUG("t", "dropped");
  SKH_LOG_INFO("t", "dropped");
  SKH_LOG_WARN("t", "kept ", 1);
  SKH_LOG_ERROR("t", "kept ", 2);
  ASSERT_EQ(cap.lines().size(), 2u);
  EXPECT_EQ(cap.lines()[0], "[WARN] t: kept 1");
  EXPECT_EQ(cap.lines()[1], "[ERROR] t: kept 2");
}

TEST(Logging, OffSilencesEverything) {
  SinkCapture cap(LogLevel::kOff);
  SKH_LOG_ERROR("t", "dropped");
  EXPECT_TRUE(cap.lines().empty());
}

TEST(Logging, SetThresholdRoundTrips) {
  const LogLevel saved = log_threshold();
  set_log_threshold(LogLevel::kDebug);
  EXPECT_EQ(log_threshold(), LogLevel::kDebug);
  set_log_threshold(saved);
  EXPECT_EQ(log_threshold(), saved);
}

TEST(Logging, EmptySinkRestoresDefault) {
  {
    SinkCapture cap(LogLevel::kError);
    SKH_LOG_ERROR("t", "captured");
    EXPECT_EQ(cap.lines().size(), 1u);
  }
  // After restore, logging must not crash (goes to std::clog) and the
  // capture buffer must not grow.
  SKH_LOG_DEBUG("t", "below default threshold, discarded");
}

TEST(Logging, MessagesStayWholeUnderConcurrency) {
  SinkCapture cap(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        SKH_LOG_INFO("conc", "thread=", t, " msg=", i);
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every message arrives exactly once and unfragmented: the sink sees the
  // fully formatted payload, never an interleaved prefix of another line.
  ASSERT_EQ(cap.lines().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<std::string> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected.push_back("[INFO] conc: thread=" + std::to_string(t) +
                         " msg=" + std::to_string(i));
    }
  }
  auto got = cap.lines();
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

TEST(Logging, ConcurrentThresholdFlipsAreDataRaceFree) {
  // TSan/ASan-checked in the sanitizer replay: readers load the atomic
  // while a writer flips it; no torn reads, and the final state is one of
  // the written values.
  SinkCapture cap(LogLevel::kWarn);
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    for (int i = 0; i < 500; ++i) {
      set_log_threshold(i % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      const LogLevel l = log_threshold();
      EXPECT_TRUE(l == LogLevel::kDebug || l == LogLevel::kError ||
                  l == LogLevel::kWarn);
    }
  });
  flipper.join();
  reader.join();
}

}  // namespace
}  // namespace skh
