#include "common/time.h"

#include <gtest/gtest.h>

namespace skh {
namespace {

TEST(SimTime, UnitConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(SimTime::micros(17.5).to_micros(), 17.5);
  EXPECT_DOUBLE_EQ(SimTime::millis(3.0).to_millis(), 3.0);
  EXPECT_DOUBLE_EQ(SimTime::seconds(30.0).to_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(SimTime::minutes(5.0).to_minutes(), 5.0);
  EXPECT_DOUBLE_EQ(SimTime::hours(2.0).to_seconds(), 7200.0);
}

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.raw_nanos(), 0);
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::seconds(10);
  const auto b = SimTime::seconds(4);
  EXPECT_DOUBLE_EQ((a + b).to_seconds(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).to_seconds(), 6.0);
  EXPECT_DOUBLE_EQ((a * 2.5).to_seconds(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(SimTime, CompoundAssignment) {
  auto t = SimTime::seconds(1);
  t += SimTime::seconds(2);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 3.0);
  t -= SimTime::millis(500);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 2.5);
}

TEST(SimTime, OrderingIsTotal) {
  EXPECT_LT(SimTime::micros(1), SimTime::micros(2));
  EXPECT_LE(SimTime::seconds(1), SimTime::millis(1000));
  EXPECT_GT(SimTime::hours(1), SimTime::minutes(59));
}

TEST(SimTime, SubMicrosecondResolution) {
  const auto t = SimTime::nanos(1234);
  EXPECT_DOUBLE_EQ(t.to_micros(), 1.234);
}

TEST(SimTime, MonthScaleFitsWithoutOverflow) {
  const auto six_months = SimTime::hours(24.0 * 30 * 6);
  EXPECT_GT(six_months.raw_nanos(), 0);
  EXPECT_DOUBLE_EQ(six_months.to_seconds(), 24.0 * 3600 * 180);
}

}  // namespace
}  // namespace skh
