// Differential fuzz of FlatPairTable against std::unordered_map.
//
// The table is the ingest hot path's single source of truth for pair ->
// id mappings, so its contract is pinned here the blunt way: drive both
// containers with the same randomized insert/erase/find/iterate history
// and require identical observable state at every step — including the
// parts std::unordered_map does not have an analogue for (stable dense
// ids, tombstone reuse, fullness-triggered rebuilds), which are checked
// against the documented invariants instead.
#include "common/flat_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace skh::common {
namespace {

Endpoint ep(std::uint32_t c, std::uint32_t r) {
  return Endpoint{ContainerId{c}, RnicId{r}};
}

/// Key universe shaped like the simulator's: dense container/RNIC ids,
/// so hash quality under power-of-two masks is exercised, not dodged.
EndpointPair key_of(std::uint32_t i, std::uint32_t universe) {
  const std::uint32_t a = i % universe;
  const std::uint32_t b = (i * 7 + 3) % universe;
  return EndpointPair{ep(a, a % 4), ep(b, b % 4)};
}

TEST(FlatPairTable, EmptyTableFindsNothingAndHoldsNoSlots) {
  FlatPairTable t;
  EXPECT_EQ(t.size(), 0U);
  EXPECT_EQ(t.slot_count(), 0U);
  EXPECT_EQ(t.id_bound(), 0U);
  EXPECT_EQ(t.find(key_of(0, 8)), FlatPairTable::kNoSlot);
}

TEST(FlatPairTable, InsertFindEraseRoundTrip) {
  FlatPairTable t({.capacity = 16});
  const auto k = key_of(5, 64);
  const auto [id, inserted] = t.insert(k);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.find(k), id);
  const auto again = t.insert(k);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.id, id);
  EXPECT_EQ(t.size(), 1U);
  EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.find(k), FlatPairTable::kNoSlot);
  EXPECT_FALSE(t.erase(k));
  EXPECT_EQ(t.tombstones(), 1U);
}

TEST(FlatPairTable, PlannedCapacityNeverRebuilds) {
  // The plan-time contract: a table sized for C keys at fullness f does
  // zero rehashes and zero grows while holding <= C keys.
  constexpr std::size_t kPlanned = 500;
  FlatPairTable t({.capacity = kPlanned, .fullness = 0.5});
  const std::size_t slots_before = t.slot_count();
  EXPECT_GE(t.virtual_capacity(), kPlanned);
  for (std::uint32_t i = 0; i < kPlanned; ++i) {
    t.insert(key_of(i, 1u << 20));
  }
  EXPECT_EQ(t.size(), kPlanned);
  EXPECT_EQ(t.slot_count(), slots_before);
  EXPECT_EQ(t.stats().grows, 0U);
  EXPECT_EQ(t.stats().purges, 0U);
}

TEST(FlatPairTable, FullnessControlsSlackAndProbeLength) {
  // Same keys, looser fullness: more slots, strictly no more probe steps.
  auto probe_steps = [](double fullness) {
    FlatPairTable t({.capacity = 1000, .fullness = fullness});
    for (std::uint32_t i = 0; i < 1000; ++i) t.insert(key_of(i, 1u << 20));
    return std::pair{t.slot_count(), t.stats().probe_steps};
  };
  const auto [slots_tight, steps_tight] = probe_steps(0.9);
  const auto [slots_loose, steps_loose] = probe_steps(0.25);
  EXPECT_GT(slots_loose, slots_tight);
  EXPECT_LE(steps_loose, steps_tight);
}

TEST(FlatPairTable, FullnessBoundaryTriggersExactlyAtVirtualCapacity) {
  FlatPairTable t({.capacity = 8, .fullness = 0.5});
  const std::size_t vcap = t.virtual_capacity();
  const std::size_t slots = t.slot_count();
  std::uint32_t i = 0;
  for (; t.size() < vcap; ++i) t.insert(key_of(i, 1u << 20));
  EXPECT_EQ(t.slot_count(), slots);  // at the limit: no rebuild yet
  t.insert(key_of(i, 1u << 20));     // one past: must have rebuilt
  EXPECT_GT(t.slot_count(), slots);
  EXPECT_EQ(t.stats().grows, 1U);
}

TEST(FlatPairTable, TombstoneReuseKeepsSlotArrayStable) {
  // Churn in place: erase+free then insert a fresh key, forever. Occupancy
  // never exceeds the virtual capacity, so the slot array must never grow;
  // tombstones must be reclaimed by probe-chain reuse or purge rebuilds,
  // and freed ids must be recycled instead of growing the id space.
  FlatPairTable t({.capacity = 64, .fullness = 0.5});
  std::vector<EndpointPair> live;
  for (std::uint32_t i = 0; i < 64; ++i) {
    live.push_back(key_of(i, 1u << 20));
    t.insert(live.back());
  }
  const std::size_t slots = t.slot_count();
  RngStream rng{0xF1A7};
  for (std::uint32_t round = 0; round < 4096; ++round) {
    const std::size_t victim =
        static_cast<std::size_t>(rng.uniform_int(0, 63));
    const auto old_id = t.find(live[victim]);
    ASSERT_NE(old_id, FlatPairTable::kNoSlot);
    ASSERT_TRUE(t.erase(live[victim]));
    t.free_id(old_id);
    live[victim] = key_of(64 + round, 1u << 20);
    t.insert(live[victim]);
    ASSERT_EQ(t.size(), 64U);
  }
  EXPECT_EQ(t.slot_count(), slots);
  EXPECT_EQ(t.stats().grows, 0U);
  EXPECT_GT(t.stats().recycled_ids, 0U);
  // Ids recycled => the id space stays bounded by peak liveness, not churn.
  EXPECT_LE(t.id_bound(), 65U);
}

TEST(FlatPairTable, IdsSurviveReserveRebuild) {
  FlatPairTable t({.capacity = 8});
  std::unordered_map<EndpointPair, FlatPairTable::SlotId> want;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto k = key_of(i, 1u << 20);
    want[k] = t.insert(k).id;
  }
  const std::size_t slots_small = t.slot_count();
  t.reserve(4096);  // forces a rebuild; probe slots move, ids must not
  EXPECT_GT(t.slot_count(), slots_small);
  for (const auto& [k, id] : want) EXPECT_EQ(t.find(k), id);
  for (std::uint32_t i = 8; i < 4096; ++i) t.insert(key_of(i, 1u << 20));
  // Plan-time reserve is not an incident: it never shows up in `grows`,
  // and having reserved, the 4096 inserts trigger no rebuild either.
  EXPECT_EQ(t.stats().grows, 0U);
  for (const auto& [k, id] : want) EXPECT_EQ(t.find(k), id);
}

TEST(FlatPairTable, DifferentialFuzzAgainstUnorderedMap) {
  // Mixed workload, deliberately under-planned so the fuzz crosses grow
  // and purge rebuilds, walks probe chains over tombstones, and recycles
  // ids — every transition of the 2-bit slot state machine.
  FlatPairTable t({.capacity = 4, .fullness = 0.7});
  std::unordered_map<EndpointPair, FlatPairTable::SlotId> model;
  std::vector<FlatPairTable::SlotId> freed;
  RngStream rng{0xD1FF};
  constexpr std::uint32_t kUniverse = 300;  // small: lots of re-insertion

  for (std::uint32_t step = 0; step < 20000; ++step) {
    const auto k = key_of(
        static_cast<std::uint32_t>(rng.uniform_int(0, kUniverse - 1)),
        1u << 20);
    const auto op = rng.uniform_int(0, 9);
    if (op < 5) {  // insert
      const auto [id, inserted] = t.insert(k);
      const auto it = model.find(k);
      ASSERT_EQ(inserted, it == model.end()) << "step " << step;
      if (inserted) {
        model.emplace(k, id);
      } else {
        ASSERT_EQ(id, it->second) << "step " << step;
      }
    } else if (op < 8) {  // find
      const auto it = model.find(k);
      ASSERT_EQ(t.find(k),
                it == model.end() ? FlatPairTable::kNoSlot : it->second)
          << "step " << step;
    } else {  // erase (+ free the id half the time, like pair retirement)
      const auto it = model.find(k);
      ASSERT_EQ(t.erase(k), it != model.end()) << "step " << step;
      if (it != model.end()) {
        if (rng.uniform_int(0, 1) == 0) {
          t.free_id(it->second);
          freed.push_back(it->second);
        }
        model.erase(it);
      }
    }
    ASSERT_EQ(t.size(), model.size()) << "step " << step;
  }

  // Full-state reconciliation via iteration, both directions.
  std::unordered_map<EndpointPair, FlatPairTable::SlotId> seen;
  t.for_each([&](const EndpointPair& k, FlatPairTable::SlotId id) {
    const auto [_, fresh] = seen.emplace(k, id);
    ASSERT_TRUE(fresh) << "for_each visited a key twice";
  });
  ASSERT_EQ(seen.size(), model.size());
  for (const auto& [k, id] : model) {
    const auto it = seen.find(k);
    ASSERT_NE(it, seen.end());
    EXPECT_EQ(it->second, id);
  }

  // Id-space invariants: live ids and outstanding freed ids are disjoint,
  // and everything is below the advertised bound.
  std::unordered_set<FlatPairTable::SlotId> live_ids;
  for (const auto& [k, id] : model) {
    EXPECT_LT(id, t.id_bound());
    EXPECT_TRUE(live_ids.insert(id).second) << "duplicate live id";
  }
  EXPECT_GT(t.stats().recycled_ids, 0U);
  EXPECT_GT(t.stats().grows, 0U);  // the under-planned start had to grow
}

TEST(FlatPairTable, ForEachOrderIsDeterministicForSameHistory) {
  auto build = [] {
    FlatPairTable t({.capacity = 32});
    for (std::uint32_t i = 0; i < 100; ++i) t.insert(key_of(i, 1u << 20));
    for (std::uint32_t i = 0; i < 100; i += 3) t.erase(key_of(i, 1u << 20));
    std::vector<std::pair<EndpointPair, FlatPairTable::SlotId>> order;
    t.for_each([&](const EndpointPair& k, FlatPairTable::SlotId id) {
      order.emplace_back(k, id);
    });
    return order;
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace skh::common
