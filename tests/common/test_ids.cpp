#include "common/ids.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace skh {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  HostId h;
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(h.value(), HostId::kInvalid);
}

TEST(Ids, ExplicitValueIsValid) {
  RnicId r{7};
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.value(), 7u);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<HostId, RnicId>);
  static_assert(!std::is_convertible_v<HostId, RnicId>);
}

TEST(Ids, ComparisonIsByValue) {
  EXPECT_EQ(ContainerId{3}, ContainerId{3});
  EXPECT_LT(ContainerId{2}, ContainerId{5});
  EXPECT_NE(ContainerId{}, ContainerId{0});
}

TEST(Ids, HashDistinguishesValues) {
  std::unordered_set<HostId> set;
  for (std::uint32_t i = 0; i < 100; ++i) set.insert(HostId{i});
  EXPECT_EQ(set.size(), 100u);
}

TEST(Endpoint, OrderingIsLexicographic) {
  const Endpoint a{ContainerId{1}, RnicId{5}};
  const Endpoint b{ContainerId{1}, RnicId{6}};
  const Endpoint c{ContainerId{2}, RnicId{0}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(Endpoint, HashIsUsableInMaps) {
  std::unordered_set<Endpoint> set;
  for (std::uint32_t c = 0; c < 16; ++c) {
    for (std::uint32_t r = 0; r < 8; ++r) {
      set.insert(Endpoint{ContainerId{c}, RnicId{r}});
    }
  }
  EXPECT_EQ(set.size(), 128u);
}

TEST(EndpointPair, DirectedPairsAreDistinct) {
  const Endpoint a{ContainerId{1}, RnicId{1}};
  const Endpoint b{ContainerId{2}, RnicId{2}};
  const EndpointPair ab{a, b};
  const EndpointPair ba{b, a};
  EXPECT_NE(ab, ba);
  std::unordered_set<EndpointPair> set{ab, ba};
  EXPECT_EQ(set.size(), 2u);
}

TEST(EndpointPair, ToStringIsReadable) {
  const EndpointPair p{{ContainerId{1}, RnicId{8}}, {ContainerId{2}, RnicId{9}}};
  EXPECT_EQ(to_string(p), "ep(c1,r8)->ep(c2,r9)");
}

}  // namespace
}  // namespace skh
