// Shared test scaffolding: a fully wired simulated environment with one or
// more placed tasks, plus helpers to generate the workload observations that
// skeleton inference consumes.
#pragma once

#include <optional>
#include <vector>

#include "cluster/orchestrator.h"
#include "core/skeleton_inference.h"
#include "sim/fault.h"
#include "workload/traffic.h"

namespace skh::testutil {

struct SimEnv {
  topo::Topology topo;
  overlay::OverlayNetwork overlay;
  sim::EventQueue events;
  sim::FaultInjector faults;
  cluster::Orchestrator orch;

  explicit SimEnv(topo::TopologyConfig cfg, std::uint64_t seed = 42)
      : topo(topo::Topology::build(cfg)),
        orch(topo, overlay, events, RngStream{seed}) {}
};

inline topo::TopologyConfig small_topology(std::uint32_t hosts = 16,
                                           std::uint32_t rails = 8) {
  topo::TopologyConfig cfg;
  cfg.num_hosts = hosts;
  cfg.rails_per_host = rails;
  cfg.hosts_per_segment = std::min<std::uint32_t>(hosts, 8);
  return cfg;
}

/// Submit a task and run the event queue until all containers are Running.
inline TaskId run_task_to_running(SimEnv& env, std::uint32_t containers,
                                  std::uint32_t gpus = 8,
                                  SimTime lifetime = SimTime::hours(12)) {
  cluster::TaskRequest req;
  req.tenant = TenantId{0};
  req.num_containers = containers;
  req.gpus_per_container = gpus;
  req.lifetime = lifetime;
  const auto task = env.orch.submit_task(req);
  if (!task) throw std::runtime_error("testutil: placement failed");
  env.events.run_until(env.events.now() + SimTime::minutes(12));
  return *task;
}

/// The task's layout under the given (or default) parallelism.
inline workload::TaskLayout layout_of(
    SimEnv& env, TaskId task,
    std::optional<workload::ParallelismConfig> par = std::nullopt) {
  const auto& info = env.orch.task(task);
  std::vector<cluster::ContainerInfo> containers;
  for (ContainerId cid : info.containers) {
    containers.push_back(env.orch.container(cid));
  }
  const auto cfg = par.value_or(workload::default_parallelism(
      info.total_gpus(), info.request.gpus_per_container));
  return workload::make_layout(info, containers, cfg);
}

/// Generate the EndpointObservation vector (burst series + CSP-visible
/// facts) for a layout.
inline std::vector<core::EndpointObservation> observations_for(
    SimEnv& env, const workload::TaskLayout& layout,
    const workload::BurstConfig& bcfg = {}, std::uint64_t seed = 7) {
  RngStream rng{seed};
  const auto series = workload::burst_series_for_layout(layout, bcfg, rng);
  std::vector<core::EndpointObservation> obs;
  obs.reserve(layout.roles.size());
  for (std::size_t i = 0; i < layout.roles.size(); ++i) {
    core::EndpointObservation o;
    o.endpoint = layout.roles[i].endpoint;
    o.host = env.topo.host_of(o.endpoint.rnic).value();
    o.container_index = env.orch.container(o.endpoint.container).index_in_task;
    // RNIC rank within the container.
    const auto& ci = env.orch.container(o.endpoint.container);
    for (std::uint32_t r = 0; r < ci.rnics.size(); ++r) {
      if (ci.rnics[r] == o.endpoint.rnic) o.rnic_rank = r;
    }
    o.throughput = series[i];
    obs.push_back(std::move(o));
  }
  return obs;
}

}  // namespace skh::testutil
