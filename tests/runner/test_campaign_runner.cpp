// Determinism contract of the Monte-Carlo campaign runner: bit-identical
// per-seed results at any thread count, decorrelated schedules across
// distinct seeds. These are the guarantees ARCHITECTURE.md's determinism
// section documents.
#include "runner/campaign_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace skh::runner {
namespace {

/// A campaign small enough for test budgets: one 4-container task on a
/// 16-host cluster, four visible faults, ~45 simulated minutes.
CampaignConfig tiny_config() {
  CampaignConfig cfg;
  cfg.topology.num_hosts = 16;
  cfg.topology.rails_per_host = 4;
  cfg.topology.hosts_per_segment = 8;
  cfg.hunter.probe_interval = SimTime::seconds(5);
  cfg.hunter.inference.candidate_dp = {2};
  cfg.tasks = {{4, 4, 2, 2}};
  cfg.visible_faults = 4;
  cfg.invisible_faults = 0;
  cfg.phantom_agents = 0;
  cfg.fault_gap = SimTime::minutes(8);
  cfg.fault_duration = SimTime::minutes(4);
  cfg.drain = SimTime::minutes(10);
  return cfg;
}

/// Schedule fingerprint: what was injected, where, and when.
std::vector<std::tuple<sim::IssueType, sim::ComponentRef, std::int64_t,
                       std::int64_t>>
schedule_of(const RunResult& r) {
  std::vector<std::tuple<sim::IssueType, sim::ComponentRef, std::int64_t,
                         std::int64_t>>
      s;
  for (const auto& f : r.faults) {
    s.emplace_back(f.type, f.target, f.start.raw_nanos(),
                   f.end.raw_nanos());
  }
  return s;
}

TEST(SeedSplitting, PureFunctionOfMasterAndIndex) {
  const auto a = split_seeds(0xfeedULL, 16);
  const auto b = split_seeds(0xfeedULL, 16);
  EXPECT_EQ(a, b);
  // Prefix stability: campaign i's seed does not depend on how many
  // campaigns the sweep runs.
  const auto shorter = split_seeds(0xfeedULL, 4);
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    EXPECT_EQ(shorter[i], a[i]);
  }
  // All distinct, and a different master yields a disjoint set.
  std::set<std::uint64_t> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), a.size());
  for (const auto s : split_seeds(0xbeefULL, 16)) {
    EXPECT_FALSE(uniq.contains(s));
  }
}

TEST(CampaignRunner, RepeatedRunIsBitIdentical) {
  const auto cfg = tiny_config();
  const RunResult a = run_campaign(cfg, 1234);
  const RunResult b = run_campaign(cfg, 1234);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(schedule_of(a), schedule_of(b));
  EXPECT_EQ(a.failure_cases, b.failure_cases);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
}

TEST(CampaignRunner, ThreadCountDoesNotChangeResults) {
  const auto cfg = tiny_config();
  const auto seeds = split_seeds(99, 6);
  const CampaignSet sequential = run_many(cfg, seeds, 1);
  const CampaignSet parallel = run_many(cfg, seeds, 8);
  ASSERT_EQ(sequential.runs.size(), seeds.size());
  ASSERT_EQ(parallel.runs.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(sequential.runs[i].seed, seeds[i]);
    EXPECT_EQ(parallel.runs[i].seed, seeds[i]);
    EXPECT_EQ(sequential.runs[i].score, parallel.runs[i].score)
        << "seed " << seeds[i];
    EXPECT_EQ(schedule_of(sequential.runs[i]),
              schedule_of(parallel.runs[i]))
        << "seed " << seeds[i];
  }
  EXPECT_EQ(sequential.summary.runs, seeds.size());
  EXPECT_DOUBLE_EQ(sequential.summary.precision.mean,
                   parallel.summary.precision.mean);
  EXPECT_DOUBLE_EQ(sequential.summary.recall.mean,
                   parallel.summary.recall.mean);
}

TEST(CampaignRunner, DistinctSeedsDecorrelateFaultSchedules) {
  const auto cfg = tiny_config();
  const RunResult a = run_campaign(cfg, 7);
  const RunResult b = run_campaign(cfg, 8);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  ASSERT_GT(a.faults.size(), 0u);
  // The cadence (start times) is config-driven and shared; the victims
  // must not be: at least one fault lands on a different component.
  bool any_target_differs = false;
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    if (a.faults[i].target != b.faults[i].target) any_target_differs = true;
  }
  EXPECT_TRUE(any_target_differs);
}

TEST(CampaignRunner, EmptySeedListYieldsEmptySet) {
  const auto cfg = tiny_config();
  const std::vector<std::uint64_t> none;
  const CampaignSet set = run_many(cfg, none, 4);
  EXPECT_TRUE(set.runs.empty());
  EXPECT_EQ(set.summary.runs, 0u);
}

TEST(CampaignRunner, MasterSeedOverloadMatchesExplicitSeeds) {
  const auto cfg = tiny_config();
  const auto seeds = split_seeds(424242, 2);
  const CampaignSet via_master = run_many(cfg, 424242, 2, 1);
  const CampaignSet via_seeds = run_many(cfg, seeds, 1);
  ASSERT_EQ(via_master.runs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(via_master.runs[i].seed, via_seeds.runs[i].seed);
    EXPECT_EQ(via_master.runs[i].score, via_seeds.runs[i].score);
  }
}

TEST(CampaignRunner, ChurnPlanIsDeliveredAndDeterministic) {
  auto cfg = tiny_config();
  cfg.churn_restarts = 3;
  cfg.churn_start = SimTime::minutes(6);
  cfg.churn_spacing = SimTime::minutes(3);
  const RunResult a = run_campaign(cfg, 321);
  const RunResult b = run_campaign(cfg, 321);
  EXPECT_EQ(a.churn_events, 3u);  // one task, restarts only
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.failure_cases, b.failure_cases);
}

TEST(CampaignRunner, ChurnCampaignBitIdenticalAcross1_4_16Threads) {
  // The determinism contract must survive mid-run churn: restart storms and
  // migration waves are planned from a forked rng stream inside each
  // campaign, so runner-thread interleaving cannot perturb them.
  auto cfg = tiny_config();
  cfg.churn_restarts = 2;
  cfg.churn_migrations = 2;
  cfg.churn_start = SimTime::minutes(6);
  cfg.churn_spacing = SimTime::minutes(3);
  const auto seeds = split_seeds(777, 4);
  const CampaignSet one = run_many(cfg, seeds, 1);
  const CampaignSet four = run_many(cfg, seeds, 4);
  const CampaignSet sixteen = run_many(cfg, seeds, 16);
  ASSERT_EQ(one.runs.size(), seeds.size());
  ASSERT_EQ(four.runs.size(), seeds.size());
  ASSERT_EQ(sixteen.runs.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_GT(one.runs[i].churn_events, 0u);
    for (const CampaignSet* set : {&four, &sixteen}) {
      EXPECT_EQ(one.runs[i].score, set->runs[i].score) << "seed " << seeds[i];
      EXPECT_EQ(one.runs[i].churn_events, set->runs[i].churn_events)
          << "seed " << seeds[i];
      EXPECT_EQ(one.runs[i].probes_sent, set->runs[i].probes_sent)
          << "seed " << seeds[i];
      EXPECT_EQ(one.runs[i].failure_cases, set->runs[i].failure_cases)
          << "seed " << seeds[i];
      EXPECT_EQ(schedule_of(one.runs[i]), schedule_of(set->runs[i]))
          << "seed " << seeds[i];
    }
  }
}

TEST(CampaignRunner, TelemetryStormCampaignBitIdenticalAcross1_4_16Threads) {
  // A lying measurement plane is planned from a forked rng stream the same
  // way fault/churn schedules are: adding telemetry episodes must not cost
  // the bit-identity guarantee at any thread count.
  auto cfg = tiny_config();
  cfg.telemetry_faults = 5;
  cfg.telemetry_start = SimTime::minutes(6);
  cfg.telemetry_spacing = SimTime::minutes(7);
  cfg.telemetry_duration = SimTime::minutes(3);
  const auto seeds = split_seeds(4242, 4);
  const CampaignSet one = run_many(cfg, seeds, 1);
  const CampaignSet four = run_many(cfg, seeds, 4);
  const CampaignSet sixteen = run_many(cfg, seeds, 16);
  ASSERT_EQ(one.runs.size(), seeds.size());
  ASSERT_EQ(four.runs.size(), seeds.size());
  ASSERT_EQ(sixteen.runs.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(one.runs[i].telemetry_events, 5u);
    for (const CampaignSet* set : {&four, &sixteen}) {
      EXPECT_EQ(one.runs[i].telemetry_events, set->runs[i].telemetry_events)
          << "seed " << seeds[i];
      EXPECT_EQ(one.runs[i].score, set->runs[i].score) << "seed " << seeds[i];
      EXPECT_EQ(one.runs[i].probes_sent, set->runs[i].probes_sent)
          << "seed " << seeds[i];
      EXPECT_EQ(one.runs[i].failure_cases, set->runs[i].failure_cases)
          << "seed " << seeds[i];
      EXPECT_EQ(schedule_of(one.runs[i]), schedule_of(set->runs[i]))
          << "seed " << seeds[i];
    }
  }
}

TEST(CampaignRunner, HonestPlaneIsUnchangedByTheTelemetryKnob) {
  // telemetry_faults = 0 must be byte-for-byte the pre-knob behavior: the
  // channel early-returns without consuming randomness, so existing seeds
  // keep their results.
  const auto cfg = tiny_config();
  const RunResult r = run_campaign(cfg, 1234);
  EXPECT_EQ(r.telemetry_events, 0u);
  const RunResult again = run_campaign(cfg, 1234);
  EXPECT_EQ(r.score, again.score);
  EXPECT_EQ(r.probes_sent, again.probes_sent);
}

TEST(CampaignRunner, AnalyzerShardCountDoesNotChangeResults) {
  // The sharded analyzer is a pure scale-out: partitioning the pair space
  // across 1, 4, or 16 detector shards must leave every campaign outcome
  // bit-identical — scores, case counts, probe totals, and the fleet-summed
  // detector counters.
  auto cfg = tiny_config();
  for (const std::uint64_t seed : split_seeds(0x53484152ULL, 2)) {
    cfg.hunter.analyzer_shards = 1;
    const RunResult one = run_campaign(cfg, seed);
    for (const std::size_t shards : {4UL, 16UL}) {
      cfg.hunter.analyzer_shards = shards;
      const RunResult sharded = run_campaign(cfg, seed);
      EXPECT_EQ(one.score, sharded.score)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(one.failure_cases, sharded.failure_cases)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(one.probes_sent, sharded.probes_sent)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(one.detector, sharded.detector)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(schedule_of(one), schedule_of(sharded))
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(CampaignRunner, SprayCampaignBitIdenticalAcrossThreadsAndShards) {
  // Packet spray turns on the per-path sub-series in every detector shard
  // and path-scoped voting in the localizer. All of it is hash/state
  // driven — no RNG — so neither runner-thread interleaving nor the
  // analyzer shard count may perturb a single verdict, score, or counter.
  auto cfg = tiny_config();
  cfg.hunter.engine.routing_mode = topo::RoutingMode::kSpray;
  cfg.hunter.engine.spray_ways = 8;
  const auto seeds = split_seeds(0x53505259ULL, 2);

  const CampaignSet one = run_many(cfg, seeds, 1);
  ASSERT_EQ(one.runs.size(), seeds.size());
  for (const std::size_t threads : {4UL, 16UL}) {
    const CampaignSet multi = run_many(cfg, seeds, threads);
    ASSERT_EQ(multi.runs.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(one.runs[i].score, multi.runs[i].score)
          << "seed " << seeds[i] << " threads " << threads;
      EXPECT_EQ(one.runs[i].probes_sent, multi.runs[i].probes_sent)
          << "seed " << seeds[i] << " threads " << threads;
      EXPECT_EQ(one.runs[i].failure_cases, multi.runs[i].failure_cases)
          << "seed " << seeds[i] << " threads " << threads;
      EXPECT_EQ(schedule_of(one.runs[i]), schedule_of(multi.runs[i]))
          << "seed " << seeds[i] << " threads " << threads;
    }
  }

  for (const std::uint64_t seed : seeds) {
    cfg.hunter.analyzer_shards = 1;
    const RunResult base = run_campaign(cfg, seed);
    for (const std::size_t shards : {4UL, 16UL}) {
      cfg.hunter.analyzer_shards = shards;
      const RunResult sharded = run_campaign(cfg, seed);
      EXPECT_EQ(base.score, sharded.score)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(base.failure_cases, sharded.failure_cases)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(base.probes_sent, sharded.probes_sent)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(base.detector, sharded.detector)
          << "seed " << seed << " shards " << shards;
    }
    cfg.hunter.analyzer_shards = 1;
  }
}

TEST(CampaignRunner, StaticEcmpKnobIsByteForBytePreKnobBehavior) {
  // The routing knob's default must not move a single bit of any existing
  // seed: an explicitly-set kStaticEcmp run and a default-config run are
  // the same campaign.
  const auto base_cfg = tiny_config();
  auto knob_cfg = tiny_config();
  knob_cfg.hunter.engine.routing_mode = topo::RoutingMode::kStaticEcmp;
  const RunResult base = run_campaign(base_cfg, 1234);
  const RunResult knob = run_campaign(knob_cfg, 1234);
  EXPECT_EQ(base.score, knob.score);
  EXPECT_EQ(base.probes_sent, knob.probes_sent);
  EXPECT_EQ(base.failure_cases, knob.failure_cases);
  EXPECT_EQ(base.detector, knob.detector);
  EXPECT_EQ(schedule_of(base), schedule_of(knob));
}

TEST(CampaignRunner, CollectiveKnobOffIsByteForBytePreKnobBehavior) {
  // collective_plane = false must draw zero randomness and emit zero
  // steps: existing seeds keep their results and the fingerprint stays at
  // the FNV offset basis (nothing was ever folded in).
  const auto cfg = tiny_config();
  const RunResult r = run_campaign(cfg, 1234);
  EXPECT_EQ(r.collective_events, 0u);
  EXPECT_EQ(r.collective_steps, 0u);
  EXPECT_EQ(r.cases_network_silent, 0u);
  EXPECT_EQ(r.collective_fingerprint, 0xcbf29ce484222325ull);
  const RunResult again = run_campaign(cfg, 1234);
  EXPECT_EQ(r.score, again.score);
  EXPECT_EQ(r.probes_sent, again.probes_sent);
}

TEST(CampaignRunner, CollectivePlaneCampaignBitIdenticalAcrossThreads) {
  // Host-side fault storms are planned from a forked rng stream and the
  // step traces are pure per-iteration functions, so the second signal
  // plane must not cost the bit-identity guarantee at any thread count.
  auto cfg = tiny_config();
  cfg.collective_plane = true;
  cfg.collective_faults = 2;
  const auto seeds = split_seeds(0xC011, 2);
  const CampaignSet one = run_many(cfg, seeds, 1);
  const CampaignSet four = run_many(cfg, seeds, 4);
  ASSERT_EQ(one.runs.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_GT(one.runs[i].collective_steps, 0u);
    EXPECT_EQ(one.runs[i].collective_events, 2u);  // one task's storm
    EXPECT_EQ(one.runs[i].score, four.runs[i].score) << "seed " << seeds[i];
    EXPECT_EQ(one.runs[i].collective_fingerprint,
              four.runs[i].collective_fingerprint)
        << "seed " << seeds[i];
    EXPECT_EQ(one.runs[i].collective_steps, four.runs[i].collective_steps)
        << "seed " << seeds[i];
    EXPECT_EQ(one.runs[i].cases_network_silent,
              four.runs[i].cases_network_silent)
        << "seed " << seeds[i];
    EXPECT_EQ(schedule_of(one.runs[i]), schedule_of(four.runs[i]))
        << "seed " << seeds[i];
  }
}

TEST(CampaignRunner, CampaignDetectsInjectedFaults) {
  // Sanity that the canned campaign is a real workload, not a no-op: the
  // hunter raises cases and detects at least one injected fault.
  const auto cfg = tiny_config();
  const RunResult r = run_campaign(cfg, 2026);
  EXPECT_EQ(r.tasks_launched, 1u);
  EXPECT_EQ(r.score.injected_visible, cfg.visible_faults);
  EXPECT_GT(r.score.detected_true, 0u);
  EXPECT_GT(r.probes_sent, 0u);
}

}  // namespace
}  // namespace skh::runner
