#include "runner/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <thread>

namespace skh::runner {
namespace {

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleWorkerStillDrains) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { ++count; });
  pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SlotIndexedWritesNeedNoSynchronization) {
  // The runner's usage pattern: each job owns one result slot.
  ThreadPool pool(4);
  std::vector<int> results(64, -1);
  for (std::size_t i = 0; i < results.size(); ++i) {
    pool.submit([&results, i] { results[i] = static_cast<int>(i) * 2; });
  }
  pool.wait();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) pool.submit([&] { ++count; });
    pool.wait();
  }  // ~ThreadPool joins workers
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace skh::runner
