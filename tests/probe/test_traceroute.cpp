#include "probe/traceroute.h"

#include <gtest/gtest.h>

namespace skh::probe {
namespace {

class TracerouteTest : public ::testing::Test {
 protected:
  TracerouteTest() : topo_(topo::Topology::build(config())) {}

  static topo::TopologyConfig config() {
    topo::TopologyConfig cfg;
    cfg.num_hosts = 8;
    cfg.rails_per_host = 4;
    cfg.hosts_per_segment = 4;
    return cfg;
  }

  topo::Topology topo_;
  sim::FaultInjector faults_;
};

TEST_F(TracerouteTest, HealthyPathReachesDestination) {
  const RnicId src = topo_.rnic_of(HostId{0}, 1);
  const RnicId dst = topo_.rnic_of(HostId{5}, 1);
  const auto tr = traceroute(topo_, faults_, src, dst, SimTime::seconds(1));
  EXPECT_TRUE(tr.reached_destination);
  EXPECT_FALSE(tr.first_dead_hop().has_value());
  EXPECT_EQ(tr.hops.size(), 4u);  // cross-segment in-rail path
  for (const auto& hop : tr.hops) {
    EXPECT_TRUE(hop.responded);
    EXPECT_GT(hop.rtt_us, 0.0);
  }
  // RTT accumulates along the path.
  EXPECT_LT(tr.hops.front().rtt_us, tr.hops.back().rtt_us);
}

TEST_F(TracerouteTest, IntraHostIsTrivial) {
  const auto tr = traceroute(topo_, faults_, topo_.rnic_of(HostId{0}, 0),
                             topo_.rnic_of(HostId{0}, 1), SimTime::seconds(1));
  EXPECT_TRUE(tr.reached_destination);
  EXPECT_TRUE(tr.hops.empty());
}

TEST_F(TracerouteTest, DeadLinkStopsAtItsHop) {
  const RnicId src = topo_.rnic_of(HostId{0}, 2);
  const RnicId dst = topo_.rnic_of(HostId{6}, 2);
  const auto path = topo_.route(src, dst);
  ASSERT_EQ(path.links.size(), 4u);
  // Kill the ToR-to-spine link (hop index 1).
  faults_.inject(sim::IssueType::kSwitchPortDown,
                 {sim::ComponentKind::kPhysicalLink, path.links[1].value()},
                 SimTime::seconds(0), SimTime::hours(1));
  const auto tr = traceroute(topo_, faults_, src, dst, SimTime::minutes(1));
  EXPECT_FALSE(tr.reached_destination);
  ASSERT_TRUE(tr.first_dead_hop().has_value());
  EXPECT_EQ(*tr.first_dead_hop(), 1u);
  EXPECT_TRUE(tr.hops[0].responded);
  EXPECT_FALSE(tr.hops[1].responded);
  EXPECT_FALSE(tr.hops[3].responded);  // nothing past the break
}

TEST_F(TracerouteTest, DeadSwitchStopsAtItsHop) {
  const RnicId src = topo_.rnic_of(HostId{0}, 0);
  const RnicId dst = topo_.rnic_of(HostId{2}, 0);
  const auto path = topo_.route(src, dst);
  ASSERT_EQ(path.switches.size(), 1u);  // same-segment ToR path
  faults_.inject(sim::IssueType::kSwitchOffline,
                 {sim::ComponentKind::kPhysicalSwitch,
                  path.switches[0].value()},
                 SimTime::seconds(0), SimTime::hours(1));
  const auto tr = traceroute(topo_, faults_, src, dst, SimTime::minutes(1));
  ASSERT_TRUE(tr.first_dead_hop().has_value());
  EXPECT_EQ(*tr.first_dead_hop(), 0u);  // dies arriving at the ToR
}

TEST_F(TracerouteTest, DeadDestinationRnicFailsLastHop) {
  const RnicId src = topo_.rnic_of(HostId{0}, 3);
  const RnicId dst = topo_.rnic_of(HostId{1}, 3);
  faults_.inject(sim::IssueType::kRnicPortDown,
                 {sim::ComponentKind::kRnic, dst.value()},
                 SimTime::seconds(0), SimTime::hours(1));
  const auto tr = traceroute(topo_, faults_, src, dst, SimTime::minutes(1));
  EXPECT_FALSE(tr.reached_destination);
  ASSERT_TRUE(tr.first_dead_hop().has_value());
  EXPECT_EQ(*tr.first_dead_hop(), tr.hops.size() - 1);
  EXPECT_TRUE(tr.hops.front().responded);  // the fabric itself is fine
}

TEST_F(TracerouteTest, DeadSourceRnicSilentEverywhere) {
  const RnicId src = topo_.rnic_of(HostId{0}, 3);
  const RnicId dst = topo_.rnic_of(HostId{1}, 3);
  faults_.inject(sim::IssueType::kRnicHardwareFailure,
                 {sim::ComponentKind::kRnic, src.value()},
                 SimTime::seconds(0), SimTime::hours(1));
  const auto tr = traceroute(topo_, faults_, src, dst, SimTime::minutes(1));
  ASSERT_TRUE(tr.first_dead_hop().has_value());
  EXPECT_EQ(*tr.first_dead_hop(), 0u);
}

TEST_F(TracerouteTest, LossFaultDoesNotStopTraceroute) {
  // Traceroute retries per hop; a lossy (but connected) link still responds.
  const RnicId src = topo_.rnic_of(HostId{0}, 1);
  const RnicId dst = topo_.rnic_of(HostId{1}, 1);
  faults_.inject(sim::IssueType::kCrcError,
                 {sim::ComponentKind::kPhysicalLink,
                  topo_.uplink_of(src).value()},
                 SimTime::seconds(0), SimTime::hours(1));
  const auto tr = traceroute(topo_, faults_, src, dst, SimTime::minutes(1));
  EXPECT_TRUE(tr.reached_destination);
}

TEST_F(TracerouteTest, LatencyFaultInflatesHopRtt) {
  const RnicId src = topo_.rnic_of(HostId{0}, 1);
  const RnicId dst = topo_.rnic_of(HostId{1}, 1);
  const auto before = traceroute(topo_, faults_, src, dst, SimTime::seconds(1));
  faults_.inject(sim::IssueType::kCongestionControlIssue,
                 {sim::ComponentKind::kPhysicalLink,
                  topo_.uplink_of(src).value()},
                 SimTime::minutes(5), SimTime::hours(1));
  const auto after = traceroute(topo_, faults_, src, dst, SimTime::minutes(10));
  EXPECT_GT(after.hops.back().rtt_us, before.hops.back().rtt_us + 20.0);
}

TEST_F(TracerouteTest, FaultOutsideWindowInvisible) {
  const RnicId src = topo_.rnic_of(HostId{0}, 1);
  const RnicId dst = topo_.rnic_of(HostId{1}, 1);
  faults_.inject(sim::IssueType::kSwitchPortDown,
                 {sim::ComponentKind::kPhysicalLink,
                  topo_.uplink_of(src).value()},
                 SimTime::minutes(10), SimTime::minutes(20));
  EXPECT_TRUE(traceroute(topo_, faults_, src, dst, SimTime::minutes(5))
                  .reached_destination);
  EXPECT_FALSE(traceroute(topo_, faults_, src, dst, SimTime::minutes(15))
                   .reached_destination);
}

}  // namespace
}  // namespace skh::probe
