#include "probe/agent.h"

#include <gtest/gtest.h>

#include "probe/probe_types.h"

namespace skh::probe {
namespace {

Endpoint ep(std::uint32_t c, std::uint32_t r) {
  return Endpoint{ContainerId{c}, RnicId{r}};
}

TEST(Collector, IngestAndQuery) {
  Collector col;
  ProbeResult r;
  r.pair = EndpointPair{ep(0, 0), ep(1, 8)};
  r.sent_at = SimTime::seconds(1);
  r.delivered = true;
  r.rtt_us = 16.0;
  col.ingest(r);
  col.ingest(r);
  EXPECT_EQ(col.total_results(), 2u);
  EXPECT_EQ(col.results_for(r.pair).size(), 2u);
  EXPECT_TRUE(col.results_for(EndpointPair{ep(1, 8), ep(0, 0)}).empty());
  EXPECT_EQ(col.pairs().size(), 1u);
}

TEST(Collector, TrimDropsOldResults) {
  Collector col;
  for (int i = 0; i < 10; ++i) {
    ProbeResult r;
    r.pair = EndpointPair{ep(0, 0), ep(1, 8)};
    r.sent_at = SimTime::seconds(i);
    col.ingest(r);
  }
  col.trim_before(SimTime::seconds(5));
  EXPECT_EQ(col.total_results(), 5u);
  EXPECT_EQ(col.results_for(EndpointPair{ep(0, 0), ep(1, 8)}).front()
                .sent_at.to_seconds(),
            5.0);
}

TEST(Collector, ClearResetsEverything) {
  Collector col;
  ProbeResult r;
  r.pair = EndpointPair{ep(0, 0), ep(1, 8)};
  col.ingest(r);
  col.clear();
  EXPECT_EQ(col.total_results(), 0u);
  EXPECT_TRUE(col.pairs().empty());
}

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() : agent_(ContainerId{0}, {ep(0, 0), ep(0, 1)}) {
    pairs_ = {{ep(0, 0), ep(1, 8)},
              {ep(0, 1), ep(1, 9)},
              {ep(0, 0), ep(2, 16)}};
  }

  Agent agent_;
  std::vector<EndpointPair> pairs_;
};

TEST_F(AgentTest, ListStartsInactive) {
  agent_.set_ping_list(pairs_);
  EXPECT_EQ(agent_.total_targets(), 3u);
  EXPECT_EQ(agent_.active_targets(), 0u);
}

TEST_F(AgentTest, RejectsForeignSource) {
  std::vector<EndpointPair> bad{{ep(5, 40), ep(1, 8)}};
  EXPECT_THROW(agent_.set_ping_list(bad), std::invalid_argument);
}

TEST_F(AgentTest, RegistrationActivatesPerDestination) {
  agent_.set_ping_list(pairs_);
  agent_.activate_destination(ContainerId{1});
  EXPECT_EQ(agent_.active_targets(), 2u);
  agent_.activate_destination(ContainerId{2});
  EXPECT_EQ(agent_.active_targets(), 3u);
}

TEST_F(AgentTest, DeregistrationDeactivates) {
  agent_.set_ping_list(pairs_);
  agent_.activate_destination(ContainerId{1});
  agent_.activate_destination(ContainerId{2});
  agent_.deactivate_destination(ContainerId{1});
  EXPECT_EQ(agent_.active_targets(), 1u);
}

TEST_F(AgentTest, ReplaceListPreservesActivation) {
  // The runtime skeleton optimization swaps the list; registered peers must
  // stay active without a new registration round.
  agent_.set_ping_list(pairs_);
  agent_.activate_destination(ContainerId{1});
  agent_.replace_ping_list({{ep(0, 0), ep(1, 8)}, {ep(0, 1), ep(2, 17)}});
  EXPECT_EQ(agent_.total_targets(), 2u);
  EXPECT_EQ(agent_.active_targets(), 1u);  // dst container 1 still active
}

TEST_F(AgentTest, RegistrationBeforeListInstallStillApplies) {
  agent_.activate_destination(ContainerId{2});
  agent_.set_ping_list(pairs_);
  EXPECT_EQ(agent_.active_targets(), 1u);
}

TEST(AgentRound, ProbesOnlyActiveTargets) {
  const auto cfg = [] {
    topo::TopologyConfig c;
    c.num_hosts = 4;
    c.rails_per_host = 8;
    c.hosts_per_segment = 2;
    return c;
  }();
  const auto topo = topo::Topology::build(cfg);
  overlay::OverlayNetwork overlay;
  sim::FaultInjector faults;
  const Endpoint a{ContainerId{0}, topo.rnic_of(HostId{0}, 0)};
  const Endpoint b{ContainerId{1}, topo.rnic_of(HostId{1}, 0)};
  const Endpoint c{ContainerId{2}, topo.rnic_of(HostId{2}, 0)};
  overlay.attach_endpoint(a, HostId{0}, /*vni=*/0);
  overlay.attach_endpoint(b, HostId{1}, /*vni=*/0);
  overlay.attach_endpoint(c, HostId{2}, /*vni=*/0);
  ProbeEngine engine{topo, overlay, faults, RngStream{3}};
  Collector col;

  Agent agent{ContainerId{0}, {a}};
  agent.set_ping_list({{a, b}, {a, c}});
  agent.activate_destination(ContainerId{1});
  agent.run_round(engine, SimTime::seconds(1), col);
  EXPECT_EQ(col.total_results(), 1u);
  EXPECT_EQ(agent.probes_sent(), 1u);
  agent.activate_destination(ContainerId{2});
  agent.run_round(engine, SimTime::seconds(2), col);
  EXPECT_EQ(col.total_results(), 3u);
  EXPECT_EQ(agent.probes_sent(), 3u);
}

/// Two-endpoint world for the retry/backoff tests: agent at a (host 0)
/// probing b (host 1), with a fault injector the tests can aim at b.
class AgentRetryTest : public ::testing::Test {
 protected:
  AgentRetryTest()
      : topo_(topo::Topology::build([] {
          topo::TopologyConfig c;
          c.num_hosts = 4;
          c.rails_per_host = 8;
          c.hosts_per_segment = 2;
          return c;
        }())),
        a_{ContainerId{0}, topo_.rnic_of(HostId{0}, 0)},
        b_{ContainerId{1}, topo_.rnic_of(HostId{1}, 0)},
        agent_(ContainerId{0}, {a_}) {
    overlay_.attach_endpoint(a_, HostId{0}, /*vni=*/0);
    overlay_.attach_endpoint(b_, HostId{1}, /*vni=*/0);
    agent_.set_ping_list({{a_, b_}});
    agent_.activate_destination(ContainerId{1});
  }

  /// Engine with backoff after `threshold` consecutive failures.
  ProbeEngine engine(std::size_t threshold,
                     SimTime base = SimTime::seconds(5),
                     SimTime max = SimTime::minutes(2)) {
    EngineConfig cfg;
    cfg.retry_failure_threshold = threshold;
    cfg.retry_backoff_base = base;
    cfg.retry_backoff_max = max;
    return ProbeEngine{topo_, overlay_, faults_, RngStream{7}, cfg};
  }

  /// Hard-break container 1 for [start, end).
  void break_b(SimTime start, SimTime end) {
    sim::FaultEffect eff;
    eff.unreachable = true;
    faults_.inject(sim::IssueType::kContainerCrash,
                   {sim::ComponentKind::kContainer, 1}, start, end, eff);
  }

  topo::Topology topo_;
  overlay::OverlayNetwork overlay_;
  sim::FaultInjector faults_;
  Endpoint a_;
  Endpoint b_;
  Agent agent_;
  Collector col_;
};

TEST_F(AgentRetryTest, BacksOffAfterThresholdAndRetriesOnSchedule) {
  break_b(SimTime{}, SimTime::hours(10));
  auto eng = engine(/*threshold=*/2);
  agent_.run_round(eng, SimTime::seconds(0), col_);  // failure 1: no backoff
  agent_.run_round(eng, SimTime::seconds(1), col_);  // failure 2: backoff 5s
  EXPECT_EQ(agent_.probes_sent(), 2u);
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(2)), 1u);

  agent_.run_round(eng, SimTime::seconds(2), col_);  // inside backoff: skipped
  EXPECT_EQ(agent_.probes_sent(), 2u);

  // next_attempt = 1s + 5s: the 6s round retries (and fails again, doubling
  // the backoff to 10s from now).
  agent_.run_round(eng, SimTime::seconds(6), col_);
  EXPECT_EQ(agent_.probes_sent(), 3u);
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(15)), 1u);
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(16)), 0u);
}

TEST_F(AgentRetryTest, DeliveredProbeResetsFailureState) {
  break_b(SimTime{}, SimTime::seconds(5));
  auto eng = engine(/*threshold=*/2);
  agent_.run_round(eng, SimTime::seconds(0), col_);
  agent_.run_round(eng, SimTime::seconds(1), col_);  // backed off until 6s
  agent_.run_round(eng, SimTime::seconds(6), col_);  // fault gone: delivered
  EXPECT_EQ(agent_.probes_sent(), 3u);
  EXPECT_TRUE(col_.results_for({a_, b_}).back().delivered);
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(7)), 0u);
  agent_.run_round(eng, SimTime::seconds(7), col_);  // continuous again
  EXPECT_EQ(agent_.probes_sent(), 4u);
}

TEST_F(AgentRetryTest, ReregistrationClearsBackoffImmediately) {
  // The churn case: the peer was deregistered-then-reregistered, not
  // unreachable. Re-registration must resume probing at once rather than
  // waiting out the backoff window.
  break_b(SimTime{}, SimTime::hours(10));
  auto eng = engine(/*threshold=*/2);
  agent_.run_round(eng, SimTime::seconds(0), col_);
  agent_.run_round(eng, SimTime::seconds(1), col_);
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(2)), 1u);

  agent_.activate_destination(ContainerId{1});  // re-registration
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(2)), 0u);
  agent_.run_round(eng, SimTime::seconds(2), col_);
  EXPECT_EQ(agent_.probes_sent(), 3u);
}

TEST_F(AgentRetryTest, BackoffClampsAtConfiguredMax) {
  break_b(SimTime{}, SimTime::hours(10));
  auto eng = engine(/*threshold=*/1, SimTime::seconds(5), SimTime::seconds(12));
  agent_.run_round(eng, SimTime::seconds(0), col_);    // fail 1: backoff 5s
  agent_.run_round(eng, SimTime::seconds(5), col_);    // fail 2: backoff 10s
  agent_.run_round(eng, SimTime::seconds(15), col_);   // fail 3: clamped 12s
  EXPECT_EQ(agent_.probes_sent(), 3u);
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(26)), 1u);
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(27)), 0u);
}

TEST_F(AgentRetryTest, ThresholdZeroKeepsContinuousSampling) {
  // Default config: the anomaly detector's loss-streak and unconnectivity
  // rules need every round sampled, so failures never trigger a backoff.
  break_b(SimTime{}, SimTime::hours(10));
  auto eng = engine(/*threshold=*/0);
  for (int s = 0; s < 5; ++s) {
    agent_.run_round(eng, SimTime::seconds(s), col_);
  }
  EXPECT_EQ(agent_.probes_sent(), 5u);
  EXPECT_EQ(agent_.backed_off_targets(SimTime::seconds(5)), 0u);
}

TEST(PingLists, FullMeshExcludesOwnContainer) {
  std::vector<Endpoint> eps;
  for (std::uint32_t c = 0; c < 3; ++c) {
    for (std::uint32_t r = 0; r < 2; ++r) eps.push_back(ep(c, c * 8 + r));
  }
  const auto mesh = full_mesh_pairs(eps);
  // 6 endpoints, each pings the 4 endpoints of the other 2 containers.
  EXPECT_EQ(mesh.size(), 24u);
  for (const auto& p : mesh) EXPECT_NE(p.src.container, p.dst.container);
}

TEST(PingLists, RailPrunedKeepsSameRankOnly) {
  std::vector<Endpoint> eps;
  for (std::uint32_t c = 0; c < 4; ++c) {
    for (std::uint32_t r = 0; r < 8; ++r) eps.push_back(ep(c, c * 8 + r));
  }
  const auto rank_of = [](const Endpoint& e) { return e.rnic.value() % 8; };
  const auto basic = rail_pruned_pairs(eps, rank_of);
  const auto mesh = full_mesh_pairs(eps);
  // The paper's 8x reduction on 8-rail hosts.
  EXPECT_EQ(basic.size() * 8, mesh.size());
  for (const auto& p : basic) {
    EXPECT_EQ(rank_of(p.src), rank_of(p.dst));
  }
}

TEST(AgentSequencing, StampsMonotonicPerPairSequenceNumbers) {
  const auto cfg = [] {
    topo::TopologyConfig c;
    c.num_hosts = 4;
    c.rails_per_host = 8;
    c.hosts_per_segment = 2;
    return c;
  }();
  const auto topo = topo::Topology::build(cfg);
  overlay::OverlayNetwork overlay;
  sim::FaultInjector faults;
  const Endpoint a{ContainerId{0}, topo.rnic_of(HostId{0}, 0)};
  const Endpoint b{ContainerId{1}, topo.rnic_of(HostId{1}, 0)};
  const Endpoint c{ContainerId{2}, topo.rnic_of(HostId{2}, 0)};
  overlay.attach_endpoint(a, HostId{0}, /*vni=*/0);
  overlay.attach_endpoint(b, HostId{1}, /*vni=*/0);
  overlay.attach_endpoint(c, HostId{2}, /*vni=*/0);
  ProbeEngine engine{topo, overlay, faults, RngStream{3}};
  Collector col;

  Agent agent{ContainerId{0}, {a}};
  agent.set_ping_list({{a, b}, {a, c}});
  agent.activate_destination(ContainerId{1});
  agent.activate_destination(ContainerId{2});
  for (int t = 1; t <= 3; ++t) {
    agent.run_round(engine, SimTime::seconds(t), col);
  }
  // Each pair gets its own 1, 2, 3, ... stream, independent of the other.
  const auto& ab = col.results_for({a, b});
  const auto& ac = col.results_for({a, c});
  ASSERT_EQ(ab.size(), 3u);
  ASSERT_EQ(ac.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ab[i].seq, i + 1);
    EXPECT_EQ(ac[i].seq, i + 1);
  }

  // A skeleton replan keeps surviving pairs' sequence streams monotonic —
  // a reset to 1 would make post-replan results look like stale replays.
  agent.replace_ping_list({{a, b}});
  agent.run_round(engine, SimTime::seconds(4), col);
  ASSERT_EQ(col.results_for({a, b}).size(), 4u);
  EXPECT_EQ(col.results_for({a, b}).back().seq, 4u);
}

}  // namespace
}  // namespace skh::probe
