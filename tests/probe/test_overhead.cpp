#include "probe/overhead.h"

#include <gtest/gtest.h>

namespace skh::probe {
namespace {

TEST(Overhead, ConvergesToFigure17SteadyState) {
  AgentOverheadModel model;
  const auto steady = model.sample(SimTime::hours(2), 30);
  EXPECT_NEAR(steady.cpu_percent, 1.0, 0.3);   // "converges to 1%"
  EXPECT_NEAR(steady.memory_mb, 35.0, 12.0);   // "converges to 35 MB"
}

TEST(Overhead, StartupTransientIsHigher) {
  AgentOverheadModel model;
  const auto early = model.sample(SimTime::seconds(5), 30);
  const auto late = model.sample(SimTime::minutes(30), 30);
  EXPECT_GT(early.cpu_percent, late.cpu_percent * 1.5);
  EXPECT_GT(early.memory_mb, late.memory_mb);
}

TEST(Overhead, MonotoneDecayOverTime) {
  AgentOverheadModel model;
  double prev_cpu = 1e9;
  for (double t : {10.0, 60.0, 180.0, 600.0, 3600.0}) {
    const auto s = model.sample(SimTime::seconds(t), 20);
    EXPECT_LE(s.cpu_percent, prev_cpu);
    prev_cpu = s.cpu_percent;
  }
}

TEST(Overhead, TargetsScaleWeakly) {
  // Skeleton lists keep targets small; even 10x more targets must not blow
  // the budget (the paper's point: overhead stays ~1% because the matrix
  // is minimized).
  AgentOverheadModel model;
  const auto few = model.sample(SimTime::hours(1), 10);
  const auto many = model.sample(SimTime::hours(1), 100);
  EXPECT_LT(many.cpu_percent - few.cpu_percent, 0.1);
  EXPECT_LT(many.memory_mb - few.memory_mb, 5.0);
}

TEST(Overhead, NegativeElapsedClampsToStart) {
  AgentOverheadModel model;
  const auto s = model.sample(SimTime::seconds(-5), 10);
  EXPECT_GT(s.cpu_percent, 1.0);  // startup transient
}

TEST(RoundTime, LinearInTargets) {
  EXPECT_DOUBLE_EQ(round_time_seconds(0), 0.0);
  EXPECT_NEAR(round_time_seconds(4032), 560.4, 1.0);  // Fig.16 full mesh @512
  EXPECT_NEAR(round_time_seconds(504), 70.0, 1.0);    // basic list @512
}

TEST(RoundTime, CustomBudget) {
  EXPECT_DOUBLE_EQ(round_time_seconds(1000, 1.0), 1.0);
}

}  // namespace
}  // namespace skh::probe
