#include "probe/telemetry.h"

#include <gtest/gtest.h>

#include "probe/probe_types.h"

namespace skh::probe {
namespace {

using sim::TelemetryFault;
using sim::TelemetryFaultKind;
using sim::TelemetryFaultPlan;

Endpoint ep(std::uint32_t c, std::uint32_t r) {
  return Endpoint{ContainerId{c}, RnicId{r}};
}

std::vector<ProbeResult> round_of(std::size_t n, SimTime sent_at,
                                  std::uint64_t first_seq = 1) {
  std::vector<ProbeResult> out;
  for (std::size_t i = 0; i < n; ++i) {
    ProbeResult r;
    r.pair = EndpointPair{ep(0, 0), ep(static_cast<std::uint32_t>(i + 1), 8)};
    r.sent_at = sent_at;
    r.delivered = true;
    r.rtt_us = 16.0;
    r.seq = first_seq;
    out.push_back(r);
  }
  return out;
}

TelemetryFaultPlan one_episode(TelemetryFaultKind kind, double magnitude,
                               SimTime start = SimTime::seconds(0),
                               SimTime end = SimTime::hours(1)) {
  TelemetryFaultPlan plan;
  plan.faults.push_back(TelemetryFault{kind, start, end, magnitude});
  return plan;
}

TEST(TelemetryChannel, EmptyPlanIsStrictPassThrough) {
  TelemetryChannel ch;  // honest channel
  auto round = round_of(5, SimTime::seconds(10));
  const auto original = round;
  ch.transmit(round, SimTime::seconds(10));
  ASSERT_EQ(round.size(), original.size());
  for (std::size_t i = 0; i < round.size(); ++i) {
    EXPECT_EQ(round[i].pair, original[i].pair);
    EXPECT_EQ(round[i].sent_at, original[i].sent_at);
    EXPECT_EQ(round[i].rtt_us, original[i].rtt_us);
    EXPECT_EQ(round[i].seq, original[i].seq);
  }
  const auto& c = ch.counters();
  EXPECT_EQ(c.results_dropped + c.results_duplicated + c.results_delayed +
                c.timestamps_skewed + c.rtt_corrupted,
            0u);
}

TEST(TelemetryChannel, InactiveEpisodeDrawsNothing) {
  // Two channels with DIFFERENT rng seeds but no active episode must agree
  // bit-for-bit: an inactive plan may not consume randomness.
  const auto plan = one_episode(TelemetryFaultKind::kResponseLoss, 1.0,
                                SimTime::minutes(10), SimTime::minutes(20));
  TelemetryChannel a(plan, RngStream{1});
  TelemetryChannel b(plan, RngStream{2});
  auto ra = round_of(8, SimTime::seconds(30));
  auto rb = round_of(8, SimTime::seconds(30));
  a.transmit(ra, SimTime::seconds(30));
  b.transmit(rb, SimTime::seconds(30));
  ASSERT_EQ(ra.size(), 8u);
  ASSERT_EQ(rb.size(), 8u);
}

TEST(TelemetryChannel, ResponseLossDropsEverythingAtFullMagnitude) {
  TelemetryChannel ch(one_episode(TelemetryFaultKind::kResponseLoss, 1.0),
                      RngStream{7});
  auto round = round_of(6, SimTime::seconds(5));
  ch.transmit(round, SimTime::seconds(5));
  EXPECT_TRUE(round.empty());
  EXPECT_EQ(ch.counters().results_dropped, 6u);
}

TEST(TelemetryChannel, DuplicationAppendsTrueCopiesAfterOriginals) {
  TelemetryChannel ch(one_episode(TelemetryFaultKind::kDuplication, 1.0),
                      RngStream{7});
  auto round = round_of(3, SimTime::seconds(5));
  ch.transmit(round, SimTime::seconds(5));
  ASSERT_EQ(round.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(round[3 + i].pair, round[i].pair);
    EXPECT_EQ(round[3 + i].seq, round[i].seq);
    EXPECT_EQ(round[3 + i].sent_at, round[i].sent_at);
    EXPECT_EQ(round[3 + i].rtt_us, round[i].rtt_us);
  }
  EXPECT_EQ(ch.counters().results_duplicated, 3u);
}

TEST(TelemetryChannel, ReorderingDelaysResultsOneRoundBehindNewerSamples) {
  TelemetryChannel ch(
      one_episode(TelemetryFaultKind::kReordering, 1.0, SimTime::seconds(0),
                  SimTime::seconds(6)),
      RngStream{7});
  auto first = round_of(2, SimTime::seconds(5), /*first_seq=*/1);
  ch.transmit(first, SimTime::seconds(5));
  EXPECT_TRUE(first.empty());  // whole round held back
  EXPECT_EQ(ch.counters().results_delayed, 2u);

  // Next round: the episode is over, so the fresh results pass through and
  // the stale ones from the previous round arrive AFTER them.
  auto second = round_of(2, SimTime::seconds(6), /*first_seq=*/2);
  ch.transmit(second, SimTime::seconds(6));
  ASSERT_EQ(second.size(), 4u);
  EXPECT_EQ(second[0].seq, 2u);
  EXPECT_EQ(second[1].seq, 2u);
  EXPECT_EQ(second[2].seq, 1u);
  EXPECT_EQ(second[2].sent_at, SimTime::seconds(5));
  EXPECT_EQ(second[3].seq, 1u);
}

TEST(TelemetryChannel, ClockSkewShiftsTimestampsBackwards) {
  TelemetryChannel ch(one_episode(TelemetryFaultKind::kClockSkew, 2.0),
                      RngStream{7});
  auto round = round_of(2, SimTime::seconds(30));
  ch.transmit(round, SimTime::seconds(30));
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round[0].sent_at, SimTime::seconds(28));
  EXPECT_EQ(ch.counters().timestamps_skewed, 2u);
}

TEST(TelemetryChannel, RttCorruptionInflatesDeliveredSamplesOnly) {
  TelemetryChannel ch(one_episode(TelemetryFaultKind::kRttCorruption, 1.0),
                      RngStream{7});
  auto round = round_of(2, SimTime::seconds(5));
  round[1].delivered = false;
  round[1].rtt_us = 0.0;
  ch.transmit(round, SimTime::seconds(5));
  ASSERT_EQ(round.size(), 2u);
  EXPECT_DOUBLE_EQ(round[0].rtt_us, 16.0 * 50.0);
  EXPECT_EQ(round[1].rtt_us, 0.0);  // lost probes carry no RTT to corrupt
  EXPECT_EQ(ch.counters().rtt_corrupted, 1u);
}

TEST(TelemetryChannel, SameSeedSamePlanIsBitIdentical) {
  const auto mk = [] {
    TelemetryFaultPlan plan;
    plan.faults = {
        {TelemetryFaultKind::kResponseLoss, SimTime::seconds(0),
         SimTime::minutes(5), 0.4},
        {TelemetryFaultKind::kDuplication, SimTime::seconds(0),
         SimTime::minutes(5), 0.3},
        {TelemetryFaultKind::kReordering, SimTime::seconds(0),
         SimTime::minutes(5), 0.2},
    };
    return plan;
  };
  TelemetryChannel a(mk(), RngStream{99});
  TelemetryChannel b(mk(), RngStream{99});
  for (int t = 1; t <= 60; ++t) {
    auto ra = round_of(4, SimTime::seconds(t),
                       static_cast<std::uint64_t>(t));
    auto rb = ra;
    a.transmit(ra, SimTime::seconds(t));
    b.transmit(rb, SimTime::seconds(t));
    ASSERT_EQ(ra.size(), rb.size()) << "tick " << t;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].pair, rb[i].pair);
      EXPECT_EQ(ra[i].seq, rb[i].seq);
      EXPECT_EQ(ra[i].sent_at, rb[i].sent_at);
      EXPECT_EQ(ra[i].rtt_us, rb[i].rtt_us);
    }
  }
  EXPECT_EQ(a.counters().results_dropped, b.counters().results_dropped);
  EXPECT_EQ(a.counters().results_duplicated,
            b.counters().results_duplicated);
  EXPECT_EQ(a.counters().results_delayed, b.counters().results_delayed);
}

TEST(TelemetryChannel, BlackoutAndHopLossQueryThePlan) {
  TelemetryFaultPlan plan;
  plan.faults = {
      {TelemetryFaultKind::kAnalyzerBlackout, SimTime::minutes(1),
       SimTime::minutes(2), 0.0},
      {TelemetryFaultKind::kTracerouteHopLoss, SimTime::minutes(3),
       SimTime::minutes(4), 0.35},
  };
  TelemetryChannel ch(plan, RngStream{1});
  EXPECT_FALSE(ch.blackout_at(SimTime::seconds(59)));
  EXPECT_TRUE(ch.blackout_at(SimTime::seconds(61)));
  EXPECT_EQ(ch.hop_loss_at(SimTime::minutes(1)), 0.0);
  EXPECT_DOUBLE_EQ(ch.hop_loss_at(SimTime::minutes(3)), 0.35);
}

}  // namespace
}  // namespace skh::probe
