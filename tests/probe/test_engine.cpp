#include "probe/engine.h"

#include <set>

#include <gtest/gtest.h>

namespace skh::probe {
namespace {

/// Two full-host containers on hosts 0 and 1, all endpoints connected.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : topo_(topo::Topology::build(config())) {
    for (std::uint32_t c = 0; c < 2; ++c) {
      for (std::uint32_t r = 0; r < 8; ++r) {
        eps_.push_back(Endpoint{ContainerId{c}, topo_.rnic_of(HostId{c}, r)});
      }
    }
    for (const auto& e : eps_) {
      overlay_.attach_endpoint(e, topo_.host_of(e.rnic), /*vni=*/0);
    }
  }

  static topo::TopologyConfig config() {
    topo::TopologyConfig cfg;
    cfg.num_hosts = 4;
    cfg.rails_per_host = 8;
    cfg.hosts_per_segment = 2;
    return cfg;
  }

  ProbeEngine make_engine() {
    return ProbeEngine{topo_, overlay_, faults_, RngStream{7}};
  }

  topo::Topology topo_;
  overlay::OverlayNetwork overlay_;
  sim::FaultInjector faults_;
  std::vector<Endpoint> eps_;
};

TEST_F(EngineTest, HealthyProbeDeliversNearBaseline) {
  auto engine = make_engine();
  const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(1));
  EXPECT_TRUE(r.delivered);
  const double base = engine.baseline_rtt_us(eps_[0], eps_[8]);
  EXPECT_NEAR(r.rtt_us, base, base * 0.4);
  EXPECT_LT(base, 20.0);  // the RoCE healthy-RTT expectation of §1
}

TEST_F(EngineTest, UnattachedDestinationIsDropped) {
  auto engine = make_engine();
  const Endpoint ghost{ContainerId{9}, topo_.rnic_of(HostId{3}, 0)};
  const auto r = engine.probe(eps_[0], ghost, SimTime::seconds(1));
  EXPECT_FALSE(r.delivered);
}

TEST_F(EngineTest, UnreachableFaultDropsEverything) {
  faults_.inject(sim::IssueType::kRnicPortDown,
                 {sim::ComponentKind::kRnic, eps_[8].rnic.value()},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(engine.probe(eps_[0], eps_[8], SimTime::seconds(i)).delivered);
  }
  // Pairs not touching the broken RNIC still work.
  EXPECT_TRUE(engine.probe(eps_[1], eps_[9], SimTime::seconds(1)).delivered);
}

TEST_F(EngineTest, HighLatencyFaultInflatesRtt) {
  faults_.inject(sim::IssueType::kRnicFirmwareNotResponding,
                 {sim::ComponentKind::kRnic, eps_[0].rnic.value()},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  const double base = engine.baseline_rtt_us(eps_[0], eps_[8]);
  double total = 0.0;
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(i));
    if (r.delivered) {
      total += r.rtt_us;
      ++delivered;
    }
  }
  ASSERT_GT(delivered, 40);
  const double mean = total / delivered;
  EXPECT_NEAR(mean, base + 104.0, 15.0);  // Fig. 18's ~120us
}

TEST_F(EngineTest, LossFaultDropsFraction) {
  faults_.inject(sim::IssueType::kCrcError,
                 {sim::ComponentKind::kPhysicalLink,
                  topo_.uplink_of(eps_[0].rnic).value()},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  int lost = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    if (!engine.probe(eps_[0], eps_[8], SimTime::millis(i)).delivered) ++lost;
  }
  const double rate = static_cast<double>(lost) / kProbes;
  EXPECT_NEAR(rate, 0.08, 0.03);  // CRC default effect
}

TEST_F(EngineTest, FlappingFaultAlternates) {
  faults_.inject(sim::IssueType::kSwitchPortFlapping,
                 {sim::ComponentKind::kPhysicalLink,
                  topo_.uplink_of(eps_[8].rnic).value()},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  // Flap period 5 s: [0,5) healthy phase, [5,10) drop phase.
  EXPECT_TRUE(engine.probe(eps_[0], eps_[8], SimTime::seconds(2)).delivered);
  EXPECT_FALSE(engine.probe(eps_[0], eps_[8], SimTime::seconds(7)).delivered);
  EXPECT_TRUE(engine.probe(eps_[0], eps_[8], SimTime::seconds(12)).delivered);
}

TEST_F(EngineTest, FaultOutsideWindowHasNoEffect) {
  faults_.inject(sim::IssueType::kRnicPortDown,
                 {sim::ComponentKind::kRnic, eps_[8].rnic.value()},
                 SimTime::minutes(10), SimTime::minutes(20));
  auto engine = make_engine();
  EXPECT_TRUE(engine.probe(eps_[0], eps_[8], SimTime::minutes(5)).delivered);
  EXPECT_FALSE(engine.probe(eps_[0], eps_[8], SimTime::minutes(15)).delivered);
  EXPECT_TRUE(engine.probe(eps_[0], eps_[8], SimTime::minutes(25)).delivered);
}

TEST_F(EngineTest, HostFaultAffectsAllItsEndpoints) {
  faults_.inject(sim::IssueType::kGidChange,
                 {sim::ComponentKind::kHost, 0},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  // Every rail of host 0 is unreachable; host 1 to host 1... only two
  // containers here, so check both directions of several rails.
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_FALSE(
        engine.probe(eps_[r], eps_[8 + r], SimTime::seconds(1)).delivered);
    EXPECT_FALSE(
        engine.probe(eps_[8 + r], eps_[r], SimTime::seconds(1)).delivered);
  }
}

TEST_F(EngineTest, OffloadInconsistencySlowPath) {
  auto engine = make_engine();
  const double base = engine.baseline_rtt_us(eps_[0], eps_[8]);
  overlay_.invalidate_offload(eps_[0].rnic);
  double total = 0.0;
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(i));
    if (r.delivered) {
      total += r.rtt_us;
      ++delivered;
    }
  }
  ASSERT_GT(delivered, 0);
  EXPECT_GT(total / delivered, base + 80.0);
  overlay_.resync_offload(eps_[0].rnic);
  const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(100));
  ASSERT_TRUE(r.delivered);
  EXPECT_LT(r.rtt_us, base * 1.5);
}

TEST_F(EngineTest, BrokenOverlayRuleDropsProbe) {
  overlay_.break_rule(overlay_.chain_of(eps_[0]).ovs, eps_[8]);
  auto engine = make_engine();
  EXPECT_FALSE(engine.probe(eps_[0], eps_[8], SimTime::seconds(1)).delivered);
  // Reverse direction still works.
  EXPECT_TRUE(engine.probe(eps_[8], eps_[0], SimTime::seconds(1)).delivered);
}

TEST_F(EngineTest, InvisibleIntraHostFaultDoesNotAffectProbes) {
  // §7.3: NVLink degradation cannot be seen by end-to-end probing.
  faults_.inject(sim::IssueType::kNvlinkDegradation,
                 {sim::ComponentKind::kHost, 0},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    if (engine.probe(eps_[0], eps_[8], SimTime::seconds(i)).delivered) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 20);
}

TEST_F(EngineTest, StaticEcmpStampsTheStaticPathId) {
  // The default mode must stamp exactly the member the five-tuple hash
  // selects — the contract that lets the localizer treat un-hinted pairs
  // as riding route().
  auto engine = make_engine();
  for (int i = 0; i < 10; ++i) {
    const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(i));
    ASSERT_TRUE(r.delivered);
    EXPECT_EQ(r.path_id, topo_.static_path_id(eps_[0].rnic, eps_[8].rnic));
  }
}

TEST_F(EngineTest, SprayFansOverEveryMemberDeterministically) {
  // Cross-segment in-rail pair: two equal-cost members. Spray must visit
  // both, stamp only valid member ids, and replay the identical path_id
  // sequence from an identical engine (hash-driven, no RNG).
  const Endpoint far{ContainerId{2}, topo_.rnic_of(HostId{2}, 0)};
  overlay_.attach_endpoint(far, topo_.host_of(far.rnic), /*vni=*/0);
  EngineConfig cfg;
  cfg.routing_mode = topo::RoutingMode::kSpray;
  cfg.spray_ways = 8;
  ProbeEngine a{topo_, overlay_, faults_, RngStream{7}, cfg};
  ProbeEngine b{topo_, overlay_, faults_, RngStream{7}, cfg};
  const std::uint32_t n = topo_.num_paths(eps_[0].rnic, far.rnic);
  ASSERT_EQ(n, 2u);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 64; ++i) {
    const auto ra = a.probe(eps_[0], far, SimTime::millis(100 * i));
    const auto rb = b.probe(eps_[0], far, SimTime::millis(100 * i));
    EXPECT_EQ(ra.path_id, rb.path_id);
    ASSERT_LT(ra.path_id, n);
    seen.insert(ra.path_id);
  }
  EXPECT_EQ(seen.size(), n);  // every member carried probes
}

TEST_F(EngineTest, SprayLeavesHealthyDeliveryAndRttUntouched) {
  // Equal-cost members share one latency and spray selection draws no RNG,
  // so on a healthy fabric the delivered/RTT stream must be bit-identical
  // to static routing — only the path stamps differ.
  const Endpoint far{ContainerId{2}, topo_.rnic_of(HostId{2}, 3)};
  overlay_.attach_endpoint(far, topo_.host_of(far.rnic), /*vni=*/0);
  EngineConfig spray_cfg;
  spray_cfg.routing_mode = topo::RoutingMode::kSpray;
  ProbeEngine fixed{topo_, overlay_, faults_, RngStream{7}};
  ProbeEngine spray{topo_, overlay_, faults_, RngStream{7}, spray_cfg};
  for (int i = 0; i < 100; ++i) {
    const auto rf = fixed.probe(eps_[3], far, SimTime::millis(100 * i));
    const auto rs = spray.probe(eps_[3], far, SimTime::millis(100 * i));
    ASSERT_EQ(rf.delivered, rs.delivered);
    EXPECT_DOUBLE_EQ(rf.rtt_us, rs.rtt_us);
  }
}

TEST_F(EngineTest, AdaptiveRehashesAwayFromFaultedMemberAndStaysPut) {
  const Endpoint far{ContainerId{2}, topo_.rnic_of(HostId{2}, 0)};
  overlay_.attach_endpoint(far, topo_.host_of(far.rnic), /*vni=*/0);
  EngineConfig cfg;
  cfg.routing_mode = topo::RoutingMode::kAdaptive;
  ProbeEngine engine{topo_, overlay_, faults_, RngStream{7}, cfg};
  const std::uint32_t n = topo_.num_paths(eps_[0].rnic, far.rnic);
  ASSERT_EQ(n, 2u);

  const auto first = engine.probe(eps_[0], far, SimTime::seconds(1));
  const std::uint32_t m0 = first.path_id;
  ASSERT_LT(m0, n);
  // Healthy fabric: the flow stays pinned.
  EXPECT_EQ(engine.probe(eps_[0], far, SimTime::seconds(2)).path_id, m0);

  // Degrade the pinned member's unique ToR->spine hop: the flow must walk
  // to the sibling member and stay there.
  const auto sick = topo_.route_via(eps_[0].rnic, far.rnic, m0);
  ASSERT_GE(sick.links.size(), 3u);
  faults_.inject(sim::IssueType::kCrcError,
                 {sim::ComponentKind::kPhysicalLink, sick.links[1].value()},
                 SimTime::seconds(10), SimTime::hours(1));
  const std::uint32_t m1 =
      engine.probe(eps_[0], far, SimTime::seconds(20)).path_id;
  EXPECT_NE(m1, m0);
  ASSERT_LT(m1, n);
  EXPECT_EQ(engine.probe(eps_[0], far, SimTime::seconds(21)).path_id, m1);

  // Degrade the sibling too: with no clean member left the flow must keep a
  // valid (if sick) member rather than oscillate.
  const auto sibling = topo_.route_via(eps_[0].rnic, far.rnic, m1);
  faults_.inject(sim::IssueType::kCrcError,
                 {sim::ComponentKind::kPhysicalLink, sibling.links[1].value()},
                 SimTime::seconds(30), SimTime::hours(1));
  const std::uint32_t m2 =
      engine.probe(eps_[0], far, SimTime::seconds(40)).path_id;
  ASSERT_LT(m2, n);
  EXPECT_EQ(engine.probe(eps_[0], far, SimTime::seconds(41)).path_id, m2);
}

}  // namespace
}  // namespace skh::probe
