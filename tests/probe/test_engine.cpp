#include "probe/engine.h"

#include <gtest/gtest.h>

namespace skh::probe {
namespace {

/// Two full-host containers on hosts 0 and 1, all endpoints connected.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : topo_(topo::Topology::build(config())) {
    for (std::uint32_t c = 0; c < 2; ++c) {
      for (std::uint32_t r = 0; r < 8; ++r) {
        eps_.push_back(Endpoint{ContainerId{c}, topo_.rnic_of(HostId{c}, r)});
      }
    }
    for (const auto& e : eps_) {
      overlay_.attach_endpoint(e, topo_.host_of(e.rnic), /*vni=*/0);
    }
  }

  static topo::TopologyConfig config() {
    topo::TopologyConfig cfg;
    cfg.num_hosts = 4;
    cfg.rails_per_host = 8;
    cfg.hosts_per_segment = 2;
    return cfg;
  }

  ProbeEngine make_engine() {
    return ProbeEngine{topo_, overlay_, faults_, RngStream{7}};
  }

  topo::Topology topo_;
  overlay::OverlayNetwork overlay_;
  sim::FaultInjector faults_;
  std::vector<Endpoint> eps_;
};

TEST_F(EngineTest, HealthyProbeDeliversNearBaseline) {
  auto engine = make_engine();
  const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(1));
  EXPECT_TRUE(r.delivered);
  const double base = engine.baseline_rtt_us(eps_[0], eps_[8]);
  EXPECT_NEAR(r.rtt_us, base, base * 0.4);
  EXPECT_LT(base, 20.0);  // the RoCE healthy-RTT expectation of §1
}

TEST_F(EngineTest, UnattachedDestinationIsDropped) {
  auto engine = make_engine();
  const Endpoint ghost{ContainerId{9}, topo_.rnic_of(HostId{3}, 0)};
  const auto r = engine.probe(eps_[0], ghost, SimTime::seconds(1));
  EXPECT_FALSE(r.delivered);
}

TEST_F(EngineTest, UnreachableFaultDropsEverything) {
  faults_.inject(sim::IssueType::kRnicPortDown,
                 {sim::ComponentKind::kRnic, eps_[8].rnic.value()},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(engine.probe(eps_[0], eps_[8], SimTime::seconds(i)).delivered);
  }
  // Pairs not touching the broken RNIC still work.
  EXPECT_TRUE(engine.probe(eps_[1], eps_[9], SimTime::seconds(1)).delivered);
}

TEST_F(EngineTest, HighLatencyFaultInflatesRtt) {
  faults_.inject(sim::IssueType::kRnicFirmwareNotResponding,
                 {sim::ComponentKind::kRnic, eps_[0].rnic.value()},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  const double base = engine.baseline_rtt_us(eps_[0], eps_[8]);
  double total = 0.0;
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(i));
    if (r.delivered) {
      total += r.rtt_us;
      ++delivered;
    }
  }
  ASSERT_GT(delivered, 40);
  const double mean = total / delivered;
  EXPECT_NEAR(mean, base + 104.0, 15.0);  // Fig. 18's ~120us
}

TEST_F(EngineTest, LossFaultDropsFraction) {
  faults_.inject(sim::IssueType::kCrcError,
                 {sim::ComponentKind::kPhysicalLink,
                  topo_.uplink_of(eps_[0].rnic).value()},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  int lost = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    if (!engine.probe(eps_[0], eps_[8], SimTime::millis(i)).delivered) ++lost;
  }
  const double rate = static_cast<double>(lost) / kProbes;
  EXPECT_NEAR(rate, 0.08, 0.03);  // CRC default effect
}

TEST_F(EngineTest, FlappingFaultAlternates) {
  faults_.inject(sim::IssueType::kSwitchPortFlapping,
                 {sim::ComponentKind::kPhysicalLink,
                  topo_.uplink_of(eps_[8].rnic).value()},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  // Flap period 5 s: [0,5) healthy phase, [5,10) drop phase.
  EXPECT_TRUE(engine.probe(eps_[0], eps_[8], SimTime::seconds(2)).delivered);
  EXPECT_FALSE(engine.probe(eps_[0], eps_[8], SimTime::seconds(7)).delivered);
  EXPECT_TRUE(engine.probe(eps_[0], eps_[8], SimTime::seconds(12)).delivered);
}

TEST_F(EngineTest, FaultOutsideWindowHasNoEffect) {
  faults_.inject(sim::IssueType::kRnicPortDown,
                 {sim::ComponentKind::kRnic, eps_[8].rnic.value()},
                 SimTime::minutes(10), SimTime::minutes(20));
  auto engine = make_engine();
  EXPECT_TRUE(engine.probe(eps_[0], eps_[8], SimTime::minutes(5)).delivered);
  EXPECT_FALSE(engine.probe(eps_[0], eps_[8], SimTime::minutes(15)).delivered);
  EXPECT_TRUE(engine.probe(eps_[0], eps_[8], SimTime::minutes(25)).delivered);
}

TEST_F(EngineTest, HostFaultAffectsAllItsEndpoints) {
  faults_.inject(sim::IssueType::kGidChange,
                 {sim::ComponentKind::kHost, 0},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  // Every rail of host 0 is unreachable; host 1 to host 1... only two
  // containers here, so check both directions of several rails.
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_FALSE(
        engine.probe(eps_[r], eps_[8 + r], SimTime::seconds(1)).delivered);
    EXPECT_FALSE(
        engine.probe(eps_[8 + r], eps_[r], SimTime::seconds(1)).delivered);
  }
}

TEST_F(EngineTest, OffloadInconsistencySlowPath) {
  auto engine = make_engine();
  const double base = engine.baseline_rtt_us(eps_[0], eps_[8]);
  overlay_.invalidate_offload(eps_[0].rnic);
  double total = 0.0;
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(i));
    if (r.delivered) {
      total += r.rtt_us;
      ++delivered;
    }
  }
  ASSERT_GT(delivered, 0);
  EXPECT_GT(total / delivered, base + 80.0);
  overlay_.resync_offload(eps_[0].rnic);
  const auto r = engine.probe(eps_[0], eps_[8], SimTime::seconds(100));
  ASSERT_TRUE(r.delivered);
  EXPECT_LT(r.rtt_us, base * 1.5);
}

TEST_F(EngineTest, BrokenOverlayRuleDropsProbe) {
  overlay_.break_rule(overlay_.chain_of(eps_[0]).ovs, eps_[8]);
  auto engine = make_engine();
  EXPECT_FALSE(engine.probe(eps_[0], eps_[8], SimTime::seconds(1)).delivered);
  // Reverse direction still works.
  EXPECT_TRUE(engine.probe(eps_[8], eps_[0], SimTime::seconds(1)).delivered);
}

TEST_F(EngineTest, InvisibleIntraHostFaultDoesNotAffectProbes) {
  // §7.3: NVLink degradation cannot be seen by end-to-end probing.
  faults_.inject(sim::IssueType::kNvlinkDegradation,
                 {sim::ComponentKind::kHost, 0},
                 SimTime::seconds(0), SimTime::hours(1));
  auto engine = make_engine();
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    if (engine.probe(eps_[0], eps_[8], SimTime::seconds(i)).delivered) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 20);
}

}  // namespace
}  // namespace skh::probe
