#include "ml/stats_tests.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace skh::ml {
namespace {

std::vector<double> lognormal_sample(double mu, double sigma, std::size_t n,
                                     RngStream& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.lognormal(mu, sigma);
  return v;
}

TEST(FitLognormal, RecoverParameters) {
  RngStream rng{1};
  const auto sample = lognormal_sample(std::log(16.0), 0.1, 20000, rng);
  const auto m = fit_lognormal(sample);
  EXPECT_NEAR(m.mu, std::log(16.0), 0.01);
  EXPECT_NEAR(m.sigma, 0.1, 0.01);
  EXPECT_EQ(m.n, 20000u);
}

TEST(FitLognormal, MedianAndMean) {
  LogNormalModel m;
  m.mu = std::log(16.0);
  m.sigma = 0.5;
  EXPECT_NEAR(m.median(), 16.0, 1e-9);
  EXPECT_NEAR(m.mean(), 16.0 * std::exp(0.125), 1e-9);
}

TEST(FitLognormal, SkipsNonPositive) {
  const std::vector<double> v{-1.0, 0.0, 2.0, 8.0};
  const auto m = fit_lognormal(v);
  EXPECT_EQ(m.n, 2u);
  EXPECT_NEAR(m.mu, (std::log(2.0) + std::log(8.0)) / 2.0, 1e-12);
}

TEST(FitLognormal, ThrowsOnTooFew) {
  EXPECT_THROW(fit_lognormal(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(fit_lognormal(std::vector<double>{-1.0, -2.0}),
               std::invalid_argument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(LogNormalCdf, MonotoneAndBounded) {
  LogNormalModel m;
  m.mu = std::log(10.0);
  m.sigma = 0.3;
  EXPECT_DOUBLE_EQ(m.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.cdf(-5.0), 0.0);
  EXPECT_NEAR(m.cdf(10.0), 0.5, 1e-12);
  EXPECT_LT(m.cdf(8.0), m.cdf(12.0));
}

TEST(ZTest, AcceptsSameDistribution) {
  RngStream rng{2};
  const auto baseline = lognormal_sample(std::log(16.0), 0.1, 5000, rng);
  const auto model = fit_lognormal(baseline);
  const auto window = lognormal_sample(std::log(16.0), 0.1, 500, rng);
  const auto r = z_test(model, window, 0.001);
  EXPECT_FALSE(r.reject);
}

TEST(ZTest, RejectsShiftedDistribution) {
  RngStream rng{3};
  const auto baseline = lognormal_sample(std::log(16.0), 0.1, 5000, rng);
  const auto model = fit_lognormal(baseline);
  // 25% latency degradation (far below the Fig. 18 7.5x case, still caught).
  const auto window = lognormal_sample(std::log(20.0), 0.1, 500, rng);
  const auto r = z_test(model, window, 0.001);
  EXPECT_TRUE(r.reject);
  EXPECT_GT(r.z, 0.0);
}

TEST(ZTest, RejectsGradualDriftAtScale) {
  // The long-term detector's reason to exist: a 3% shift is invisible to
  // per-window outlier logic but significant over 30 minutes of samples.
  RngStream rng{4};
  const auto model = fit_lognormal(lognormal_sample(std::log(16), 0.1, 10000, rng));
  const auto drifted = lognormal_sample(std::log(16.5), 0.1, 5000, rng);
  EXPECT_TRUE(z_test(model, drifted, 0.001).reject);
}

TEST(ZTest, EmptyWindowAcceptsH0) {
  LogNormalModel m;
  m.mu = 1.0;
  m.sigma = 0.5;
  const auto r = z_test(m, std::span<const double>{}, 0.01);
  EXPECT_FALSE(r.reject);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(ZTest, TwoSidedDetectsImprovementToo) {
  // A latency *drop* also shifts the distribution (e.g. route change) and
  // is worth flagging for inspection.
  RngStream rng{5};
  const auto model = fit_lognormal(lognormal_sample(std::log(16), 0.1, 5000, rng));
  const auto faster = lognormal_sample(std::log(12.0), 0.1, 500, rng);
  const auto r = z_test(model, faster, 0.001);
  EXPECT_TRUE(r.reject);
  EXPECT_LT(r.z, 0.0);
}

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, FalsePositiveRateBelowAlpha) {
  RngStream rng{6};
  const auto model = fit_lognormal(lognormal_sample(std::log(16), 0.2, 20000, rng));
  int rejects = 0;
  constexpr int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    const auto window = lognormal_sample(std::log(16), 0.2, 200, rng);
    if (z_test(model, window, GetParam()).reject) ++rejects;
  }
  const double rate = static_cast<double>(rejects) / kTrials;
  EXPECT_LE(rate, GetParam() * 5 + 0.01);  // generous bound, still tight
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.001, 0.01, 0.05));

}  // namespace
}  // namespace skh::ml
