#include "ml/streaming_lof.h"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "ml/lof.h"

namespace skh::ml {
namespace {

std::vector<std::vector<double>> as_batch(
    const std::deque<std::vector<double>>& mirror) {
  return {mirror.begin(), mirror.end()};
}

/// The streaming scorer's contract is *equality* with the batch scorer; the
/// tolerance only absorbs platform FP quirks, not algorithmic drift.
void expect_matches_batch(StreamingLof& slof,
                          const std::deque<std::vector<double>>& mirror,
                          std::span<const double> query,
                          const LofConfig& cfg) {
  const double streaming = slof.score(query);
  const double batch = lof_score_of(query, as_batch(mirror), cfg);
  EXPECT_NEAR(streaming, batch, 1e-9 * std::max(1.0, std::abs(batch)));
}

TEST(StreamingLof, SmallReferenceIsNeutralLikeBatch) {
  const LofConfig cfg{3, 1.5};
  StreamingLof slof(cfg);
  std::deque<std::vector<double>> mirror;
  const std::vector<double> q{1.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(slof.score(q), 1.0);
    EXPECT_DOUBLE_EQ(lof_score_of(q, as_batch(mirror), cfg), 1.0);
    const std::vector<double> p{static_cast<double>(i), 0.0};
    slof.push(p);
    mirror.push_back(p);
  }
  EXPECT_EQ(slof.size(), 3u);
}

TEST(StreamingLof, ThrowsOnZeroK) {
  EXPECT_THROW(StreamingLof(LofConfig{0, 1.5}), std::invalid_argument);
}

TEST(StreamingLof, FastPathForClearOutlier) {
  const LofConfig cfg{3, 1.5};
  StreamingLof slof(cfg);
  std::deque<std::vector<double>> mirror;
  RngStream rng{7};
  for (int i = 0; i < 8; ++i) {
    std::vector<double> p{rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)};
    slof.push(p);
    mirror.push_back(p);
  }
  const std::vector<double> far{50.0, -30.0};
  expect_matches_batch(slof, mirror, far, cfg);
  EXPECT_EQ(slof.fast_path_scores(), 1u);
  EXPECT_EQ(slof.fallback_scores(), 0u);
}

TEST(StreamingLof, FallbackForInlierQuery) {
  const LofConfig cfg{3, 1.5};
  StreamingLof slof(cfg);
  std::deque<std::vector<double>> mirror;
  RngStream rng{8};
  for (int i = 0; i < 8; ++i) {
    std::vector<double> p{rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    slof.push(p);
    mirror.push_back(p);
  }
  const std::vector<double> inlier{0.05, -0.02};
  expect_matches_batch(slof, mirror, inlier, cfg);
  EXPECT_EQ(slof.fast_path_scores(), 0u);
  EXPECT_EQ(slof.fallback_scores(), 1u);
}

TEST(StreamingLof, FallbackRepairIsUndone) {
  // A fallback score temporarily mutates the cached model; scoring must be
  // idempotent and later maintenance must still match batch.
  const LofConfig cfg{2, 1.5};
  StreamingLof slof(cfg);
  std::deque<std::vector<double>> mirror;
  RngStream rng{9};
  for (int i = 0; i < 6; ++i) {
    std::vector<double> p{rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    slof.push(p);
    mirror.push_back(p);
  }
  const std::vector<double> inlier{0.1, 0.1};
  const double first = slof.score(inlier);
  const double second = slof.score(inlier);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_GE(slof.fallback_scores(), 2u);
  // Model still evolves correctly after the undo.
  std::vector<double> p{3.0, -2.0};
  slof.push(p);
  mirror.push_back(p);
  slof.pop_front();
  mirror.pop_front();
  expect_matches_batch(slof, mirror, inlier, cfg);
}

TEST(StreamingLof, DuplicatePointsUseDistanceFloor) {
  const LofConfig cfg{3, 1.5};
  StreamingLof slof(cfg);
  std::deque<std::vector<double>> mirror;
  const std::vector<double> p{2.0, 2.0};
  for (int i = 0; i < 6; ++i) {
    slof.push(p);
    mirror.push_back(p);
  }
  expect_matches_batch(slof, mirror, p, cfg);           // duplicate query
  const std::vector<double> off{2.0, 2.5};
  expect_matches_batch(slof, mirror, off, cfg);
}

TEST(StreamingLof, MatchesBatchAcrossRandomizedSlidingWindow) {
  // Property test: a detector-shaped stream — 7-dim window features, a
  // look-back capacity of 10, one push + (when full) one pop per step —
  // with healthy / shifted / spiky queries mixed in. Every score must match
  // the batch scorer on the equivalent reference snapshot.
  for (const std::size_t k : {1u, 3u}) {
    const LofConfig cfg{k, 1.8};
    StreamingLof slof(cfg, 11);
    std::deque<std::vector<double>> mirror;
    RngStream rng{42 + k};
    const std::size_t dim = 7;
    for (int step = 0; step < 400; ++step) {
      std::vector<double> q(dim);
      const double regime = rng.uniform();
      const double base = regime < 0.7 ? 16.0    // healthy
                          : regime < 0.9 ? 24.0  // shifted
                                         : 90.0; // hard spike
      for (auto& x : q) x = base * std::exp(rng.normal(0.0, 0.08));
      expect_matches_batch(slof, mirror, q, cfg);
      slof.push(q);
      mirror.push_back(q);
      if (mirror.size() > 10) {
        slof.pop_front();
        mirror.pop_front();
        EXPECT_EQ(slof.size(), mirror.size());
      }
    }
    // Both paths must actually be exercised for the property to mean much.
    EXPECT_GT(slof.fast_path_scores(), 0u);
    EXPECT_GT(slof.fallback_scores(), 0u);
  }
}

TEST(StreamingLof, MatchesBatchWhileDrainingToEmpty) {
  const LofConfig cfg{2, 1.5};
  StreamingLof slof(cfg);
  std::deque<std::vector<double>> mirror;
  RngStream rng{11};
  for (int i = 0; i < 7; ++i) {
    std::vector<double> p{rng.normal(5.0, 1.0)};
    slof.push(p);
    mirror.push_back(p);
  }
  const std::vector<double> q{5.5};
  while (!mirror.empty()) {
    expect_matches_batch(slof, mirror, q, cfg);
    slof.pop_front();
    mirror.pop_front();
  }
  EXPECT_EQ(slof.size(), 0u);
  EXPECT_DOUBLE_EQ(slof.score(q), 1.0);
}

}  // namespace
}  // namespace skh::ml
