#include "ml/clustering.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace skh::ml {
namespace {

/// Synthetic features: `groups` well-separated centroids, `per_group` items
/// each, with optional noise.
FeatureMatrix make_features(std::size_t groups, std::size_t per_group,
                            double noise, RngStream& rng) {
  FeatureMatrix f;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < per_group; ++i) {
      f.push_back({static_cast<double>(g) * 10.0 + rng.normal(0, noise),
                   static_cast<double>(g % 3) * 5.0 + rng.normal(0, noise)});
    }
  }
  return f;
}

TEST(Hierarchical, RecoversCleanGroups) {
  RngStream rng{1};
  const auto f = make_features(4, 5, 0.1, rng);
  const auto c = hierarchical_cluster(f, 4);
  EXPECT_EQ(c.num_clusters(), 4u);
  // All items of one true group share a cluster.
  for (std::size_t g = 0; g < 4; ++g) {
    const auto first = c.assignment[g * 5];
    for (std::size_t i = 1; i < 5; ++i) {
      EXPECT_EQ(c.assignment[g * 5 + i], first);
    }
  }
}

TEST(Hierarchical, KEqualsNIsSingletons) {
  RngStream rng{2};
  const auto f = make_features(2, 3, 0.1, rng);
  const auto c = hierarchical_cluster(f, 6);
  EXPECT_EQ(c.num_clusters(), 6u);
  for (const auto& cl : c.clusters) EXPECT_EQ(cl.size(), 1u);
}

TEST(Hierarchical, KOneIsEverything) {
  RngStream rng{3};
  const auto f = make_features(3, 2, 0.1, rng);
  const auto c = hierarchical_cluster(f, 1);
  EXPECT_EQ(c.num_clusters(), 1u);
  EXPECT_EQ(c.clusters[0].size(), 6u);
}

TEST(Hierarchical, RejectsBadK) {
  RngStream rng{4};
  const auto f = make_features(2, 2, 0.1, rng);
  EXPECT_THROW(hierarchical_cluster(f, 0), std::invalid_argument);
  EXPECT_THROW(hierarchical_cluster(f, 5), std::invalid_argument);
}

TEST(Clustering, SizeVariance) {
  Clustering c;
  c.clusters = {{0, 1}, {2, 3}};
  EXPECT_DOUBLE_EQ(c.size_variance(), 0.0);
  c.clusters = {{0}, {1, 2, 3}};
  EXPECT_DOUBLE_EQ(c.size_variance(), 1.0);
}

TEST(Constrained, HostConstraintSeparatesIdenticalFeatures) {
  // Two hosts, two items each, all features identical: Eq. 3 forbids
  // same-host grouping, so groups must pair across hosts.
  FeatureMatrix f{{0.0}, {0.0}, {0.0}, {0.0}};
  ConstrainedClusterConfig cfg;
  cfg.host_of = {0, 0, 1, 1};
  cfg.candidate_ks = {2};
  const auto c = constrained_cluster(f, cfg);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->num_clusters(), 2u);
  for (const auto& cluster : c->clusters) {
    ASSERT_EQ(cluster.size(), 2u);
    EXPECT_NE(cfg.host_of[cluster[0]], cfg.host_of[cluster[1]]);
  }
}

TEST(Constrained, InfeasibleWhenHostsForbidK) {
  // Four items on ONE host can never form 2 host-disjoint clusters of 2.
  FeatureMatrix f{{0.0}, {1.0}, {2.0}, {3.0}};
  ConstrainedClusterConfig cfg;
  cfg.host_of = {0, 0, 0, 0};
  cfg.candidate_ks = {2};
  EXPECT_FALSE(constrained_cluster(f, cfg).has_value());
}

TEST(Constrained, PicksTrueGroupCountAmongCandidates) {
  // 4 position groups x 4 DP replicas, well separated; hosts arranged so
  // each replica is one host (groups must cross hosts).
  RngStream rng{5};
  FeatureMatrix f;
  std::vector<std::size_t> host_of;
  for (std::size_t host = 0; host < 4; ++host) {    // 4 hosts = 4 DP ranks
    for (std::size_t pos = 0; pos < 4; ++pos) {     // 4 positions
      f.push_back({static_cast<double>(pos) * 8.0 + rng.normal(0, 0.2),
                   static_cast<double>(pos % 2) * 4.0 + rng.normal(0, 0.2)});
      host_of.push_back(host);
    }
  }
  ConstrainedClusterConfig cfg;
  cfg.host_of = host_of;
  cfg.candidate_ks = {2, 4, 8};
  const auto c = constrained_cluster(f, cfg);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->num_clusters(), 4u);
  // Each cluster holds the 4 same-position items.
  for (const auto& cluster : c->clusters) {
    EXPECT_EQ(cluster.size(), 4u);
  }
}

TEST(Constrained, EmptyInputIsInfeasible) {
  EXPECT_FALSE(constrained_cluster({}, {}).has_value());
}

TEST(Constrained, BalancedSizesPreferred) {
  // Candidates 2 and 3 over 6 items: k=3 balanced (2+2+2) is feasible,
  // k=2 would be 3+3 also balanced; true structure has 3 groups.
  RngStream rng{6};
  FeatureMatrix f;
  for (std::size_t g = 0; g < 3; ++g) {
    for (int i = 0; i < 2; ++i) {
      f.push_back({static_cast<double>(g) * 10.0 + rng.normal(0, 0.1)});
    }
  }
  ConstrainedClusterConfig cfg;
  cfg.candidate_ks = {2, 3};
  const auto c = constrained_cluster(f, cfg);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->num_clusters(), 3u);
}

TEST(MeanIntraDistance, ZeroForSingletons) {
  FeatureMatrix f{{0.0}, {5.0}};
  Clustering c;
  c.assignment = {0, 1};
  c.clusters = {{0}, {1}};
  EXPECT_DOUBLE_EQ(mean_intra_cluster_distance(f, c), 0.0);
}

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, RobustToFeatureNoise) {
  RngStream rng{7};
  const double noise = GetParam();
  FeatureMatrix f;
  std::vector<std::size_t> host_of;
  // 8 DP ranks (hosts) x 2 positions.
  for (std::size_t host = 0; host < 8; ++host) {
    for (std::size_t pos = 0; pos < 2; ++pos) {
      f.push_back({static_cast<double>(pos) * 10.0 + rng.normal(0, noise)});
      host_of.push_back(host);
    }
  }
  ConstrainedClusterConfig cfg;
  cfg.host_of = host_of;
  cfg.candidate_ks = {2, 4, 8};
  const auto c = constrained_cluster(f, cfg);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->num_clusters(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Noise, NoiseSweep,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace skh::ml
