#include "ml/lof.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace skh::ml {
namespace {

std::vector<std::vector<double>> gaussian_cloud(std::size_t n, double cx,
                                                double cy, double spread,
                                                RngStream& rng) {
  std::vector<std::vector<double>> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({cx + rng.normal(0, spread), cy + rng.normal(0, spread)});
  }
  return pts;
}

TEST(Lof, InliersScoreNearOne) {
  RngStream rng{1};
  const auto pts = gaussian_cloud(50, 0, 0, 1.0, rng);
  const auto scores = lof_scores(pts, {5, 1.5});
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  EXPECT_NEAR(mean, 1.0, 0.15);
}

TEST(Lof, OutlierScoresHigh) {
  RngStream rng{2};
  auto pts = gaussian_cloud(40, 0, 0, 0.5, rng);
  pts.push_back({20.0, 20.0});  // far outlier
  const auto scores = lof_scores(pts, {5, 1.5});
  const double outlier = scores.back();
  for (std::size_t i = 0; i + 1 < scores.size(); ++i) {
    EXPECT_GT(outlier, scores[i]);
  }
  EXPECT_GT(outlier, 2.0);
}

TEST(Lof, DuplicatePointsDoNotDivideByZero) {
  std::vector<std::vector<double>> pts(10, {1.0, 1.0});
  const auto scores = lof_scores(pts, {3, 1.5});
  for (double s : scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_NEAR(s, 1.0, 0.01);
  }
}

TEST(Lof, TooFewPointsAllOnes) {
  const std::vector<std::vector<double>> pts{{0.0}, {1.0}};
  const auto scores = lof_scores(pts, {3, 1.5});
  EXPECT_EQ(scores.size(), 2u);
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Lof, RejectsZeroK) {
  std::vector<std::vector<double>> pts(5, {0.0});
  EXPECT_THROW(lof_scores(pts, {0, 1.5}), std::invalid_argument);
}

TEST(LofScoreOf, QueryAgainstReference) {
  RngStream rng{3};
  const auto reference = gaussian_cloud(30, 10, 10, 0.5, rng);
  const std::vector<double> inlier{10.1, 9.9};
  const std::vector<double> outlier{50.0, -30.0};
  EXPECT_LT(lof_score_of(inlier, reference, {5, 1.5}), 1.5);
  EXPECT_GT(lof_score_of(outlier, reference, {5, 1.5}), 3.0);
}

TEST(LofScoreOf, SmallReferenceIsNeutral) {
  const std::vector<std::vector<double>> reference{{0.0}, {1.0}};
  EXPECT_DOUBLE_EQ(lof_score_of(std::vector<double>{100.0}, reference, {3, 1.5}),
                   1.0);
}

TEST(Lof, LatencyWindowScenario) {
  // Seven-dimensional window summaries as the analyzer produces: ten
  // healthy windows around 16us, one shifted to 120us (the Fig. 18 case).
  std::vector<std::vector<double>> windows;
  RngStream rng{4};
  for (int i = 0; i < 10; ++i) {
    const double m = 16.0 + rng.normal(0, 0.3);
    windows.push_back({m - 1, m, m + 1, m - 2, m, 0.8, m + 3});
  }
  const std::vector<double> anomalous{119, 120, 121, 118, 120, 0.9, 123};
  EXPECT_GT(lof_score_of(anomalous, windows, {3, 1.8}), 1.8);
  const std::vector<double> healthy{15, 16, 17, 14, 16, 0.8, 19};
  EXPECT_LT(lof_score_of(healthy, windows, {3, 1.8}), 1.8);
}

class LofKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LofKSweep, OutlierDetectedAcrossK) {
  RngStream rng{5};
  auto pts = gaussian_cloud(60, 0, 0, 1.0, rng);
  pts.push_back({30.0, 30.0});
  const auto scores = lof_scores(pts, {GetParam(), 1.5});
  EXPECT_GT(scores.back(), 1.5);
}

INSTANTIATE_TEST_SUITE_P(Ks, LofKSweep, ::testing::Values(2, 3, 5, 10));

}  // namespace
}  // namespace skh::ml
