// CollectiveDiagnoser unit semantics: dependency-aware hang timeouts,
// sibling-relative straggler strikes, per-episode latching, and the
// copyability the hunter's blackout checkpoint depends on.
#include <vector>

#include <gtest/gtest.h>

#include "collective/diag.h"

namespace skh::collective {
namespace {

using workload::CollectiveGroup;
using workload::CollectiveKind;
using workload::StepRecord;

CollectiveGroup ring(std::uint32_t id, std::uint32_t n) {
  CollectiveGroup g;
  g.id = id;
  g.kind = CollectiveKind::kRingAllReduce;
  for (std::uint32_t i = 0; i < n; ++i) {
    g.members.push_back(Endpoint{ContainerId{i}, RnicId{i}});
    g.container_index.push_back(i);
  }
  return g;
}

StepRecord rec(std::uint32_t group, std::uint32_t step, std::uint32_t rank,
               SimTime start, SimTime end, bool started, bool done) {
  StepRecord r;
  r.group = group;
  r.iteration = 0;
  r.step = step;
  r.rank = rank;
  r.endpoint = Endpoint{ContainerId{rank}, RnicId{rank}};
  r.start = start;
  r.end = end;
  r.started = started;
  r.done = done;
  return r;
}

StepRecord ok(std::uint32_t group, std::uint32_t step, std::uint32_t rank,
              double start_s, double dur_s) {
  return rec(group, step, rank, SimTime::seconds(start_s),
             SimTime::seconds(start_s) + SimTime::micros(dur_s * 1e6),
             true, true);
}

/// A healthy full iteration of a ring of `n`: every (step, rank) done in
/// `dur_s` seconds.
std::vector<StepRecord> healthy_iteration(std::uint32_t group,
                                          std::uint32_t n,
                                          double dur_s = 0.004) {
  std::vector<StepRecord> out;
  for (std::uint32_t step = 0; step < 2 * (n - 1); ++step) {
    for (std::uint32_t rank = 0; rank < n; ++rank) {
      out.push_back(ok(group, step, rank, step * dur_s, dur_s));
    }
  }
  return out;
}

/// One iteration where `victim` straggles: its steps take `factor` times
/// the sibling duration, but everything completes.
std::vector<StepRecord> straggler_iteration(std::uint32_t group,
                                            std::uint32_t n,
                                            std::uint32_t victim,
                                            double factor) {
  std::vector<StepRecord> out;
  for (std::uint32_t step = 0; step < 2 * (n - 1); ++step) {
    for (std::uint32_t rank = 0; rank < n; ++rank) {
      const double dur = rank == victim ? 0.004 * factor : 0.004;
      out.push_back(ok(group, step, rank, step * 0.004, dur));
    }
  }
  return out;
}

/// A stalled iteration: `root` started step 0 at t=0 and never finished;
/// every other rank of steps >= 1 is blocked behind it.
std::vector<StepRecord> stalled_iteration(std::uint32_t group,
                                          std::uint32_t n,
                                          std::uint32_t root) {
  std::vector<StepRecord> out;
  for (std::uint32_t rank = 0; rank < n; ++rank) {
    if (rank == root) {
      out.push_back(rec(group, 0, rank, SimTime::seconds(0),
                        SimTime::seconds(0), true, false));
    } else {
      out.push_back(ok(group, 0, rank, 0.0, 0.004));
    }
  }
  for (std::uint32_t step = 1; step < 2 * (n - 1); ++step) {
    for (std::uint32_t rank = 0; rank < n; ++rank) {
      out.push_back(rec(group, step, rank, SimTime::seconds(0),
                        SimTime::seconds(0), false, false));
    }
  }
  return out;
}

TEST(Diagnoser, HealthyIterationRaisesNothing) {
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 4));
  EXPECT_EQ(diag.num_groups(), 1u);
  std::vector<CollectiveVerdict> out;
  const auto batch = healthy_iteration(0, 4);
  diag.ingest(batch, SimTime::seconds(30), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(diag.steps_ingested(), batch.size());
  EXPECT_EQ(diag.hang_verdicts(), 0u);
  EXPECT_EQ(diag.slow_verdicts(), 0u);
}

TEST(Diagnoser, HangNamesTheRootNotTheChain) {
  CollectiveDiagnoser diag;  // hang_timeout 25 s
  diag.register_group(ring(0, 4));
  std::vector<CollectiveVerdict> out;
  const auto batch = stalled_iteration(0, 4, /*root=*/2);
  diag.ingest(batch, SimTime::seconds(30), out);
  ASSERT_EQ(out.size(), 1u);
  const auto& v = out[0];
  EXPECT_EQ(v.kind, VerdictKind::kHang);
  EXPECT_EQ(v.group, 0u);
  EXPECT_EQ(v.step, 0u);
  EXPECT_EQ(v.root_rank, 2u);
  EXPECT_EQ(v.root.container.value(), 2u);
  EXPECT_EQ(v.root_container, 2u);
  EXPECT_DOUBLE_EQ(v.severity, 30.0);  // stalled since t=0, seen at t=30
  // The wait-for chain holds each blocked rank once, not once per step.
  ASSERT_EQ(v.waiters.size(), 3u);
  std::vector<std::uint32_t> waiter_ranks;
  for (const auto& w : v.waiters) waiter_ranks.push_back(w.container.value());
  EXPECT_EQ(waiter_ranks, (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_EQ(diag.hang_verdicts(), 1u);
}

TEST(Diagnoser, NoHangBeforeTimeout) {
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 4));
  std::vector<CollectiveVerdict> out;
  const auto batch = stalled_iteration(0, 4, 2);
  diag.ingest(batch, SimTime::seconds(10), out);  // 10 s < 25 s timeout
  EXPECT_TRUE(out.empty());
}

TEST(Diagnoser, HangLatchesUntilTheGroupCompletesAgain) {
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 4));
  std::vector<CollectiveVerdict> out;
  const auto stalled = stalled_iteration(0, 4, 2);
  diag.ingest(stalled, SimTime::seconds(30), out);
  diag.ingest(stalled, SimTime::seconds(60), out);
  EXPECT_EQ(out.size(), 1u);  // same episode, one verdict
  // A fully-done iteration clears the latch; a relapse is a new episode.
  diag.ingest(healthy_iteration(0, 4), SimTime::seconds(90), out);
  diag.ingest(stalled, SimTime::seconds(120), out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(diag.hang_verdicts(), 2u);
}

TEST(Diagnoser, WaitChainIsBounded) {
  CollectiveDiagConfig cfg;
  cfg.max_waiters = 2;
  CollectiveDiagnoser diag(cfg);
  diag.register_group(ring(0, 8));
  std::vector<CollectiveVerdict> out;
  diag.ingest(stalled_iteration(0, 8, 5), SimTime::seconds(30), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].waiters.size(), 2u);
}

TEST(Diagnoser, StragglerNeedsThreeConsecutiveStrikes) {
  CollectiveDiagnoser diag;  // ratio 3.0, strikes 3
  diag.register_group(ring(0, 4));
  std::vector<CollectiveVerdict> out;
  diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(30), out);
  diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(60), out);
  EXPECT_TRUE(out.empty());  // two strikes: still could be transient
  diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(90), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, VerdictKind::kSlow);
  EXPECT_EQ(out[0].root_rank, 3u);
  EXPECT_TRUE(out[0].waiters.empty());
  EXPECT_NEAR(out[0].severity, 10.0, 1e-9);  // duration / sibling median
  EXPECT_EQ(diag.slow_verdicts(), 1u);
  // The latch holds while the rank keeps straggling: no duplicate pages.
  diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(120), out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Diagnoser, RecoveryResetsStrikesAndLatch) {
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 4));
  std::vector<CollectiveVerdict> out;
  // Two strikes, a recovery, two more: never enough consecutively.
  for (const double f : {10.0, 10.0, 1.0, 10.0, 10.0}) {
    diag.ingest(straggler_iteration(0, 4, 3, f), SimTime::seconds(30), out);
  }
  EXPECT_TRUE(out.empty());
  // Third consecutive strike finally pages...
  diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(30), out);
  EXPECT_EQ(out.size(), 1u);
  // ...and after a recovery clears the latch, a relapse pages again.
  diag.ingest(straggler_iteration(0, 4, 3, 1.0), SimTime::seconds(30), out);
  for (int i = 0; i < 3; ++i) {
    diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(30),
                out);
  }
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(diag.slow_verdicts(), 2u);
}

TEST(Diagnoser, TwoSiblingsAreNoControlGroup) {
  // A pair has no meaningful median: with fewer than three completed
  // siblings per step the straggler test must stay silent rather than
  // compare a rank against itself.
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 2));
  std::vector<CollectiveVerdict> out;
  for (int i = 0; i < 5; ++i) {
    std::vector<StepRecord> batch;
    for (std::uint32_t step = 0; step < 2; ++step) {
      batch.push_back(ok(0, step, 0, step * 0.004, 0.004));
      batch.push_back(ok(0, step, 1, step * 0.004, 0.4));  // 100x slower
    }
    diag.ingest(batch, SimTime::seconds(30 * (i + 1)), out);
  }
  EXPECT_TRUE(out.empty());
}

TEST(Diagnoser, UnregisteredGroupsAreSkippedSafely) {
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 4));
  std::vector<CollectiveVerdict> out;
  diag.ingest(stalled_iteration(7, 4, 2), SimTime::seconds(30), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(diag.hang_verdicts(), 0u);
}

TEST(Diagnoser, VerdictOrderIsGroupAscending) {
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 4));
  diag.register_group(ring(1, 4));
  std::vector<CollectiveVerdict> out;
  auto batch = stalled_iteration(0, 4, 2);
  const auto second = stalled_iteration(1, 4, 1);
  batch.insert(batch.end(), second.begin(), second.end());
  diag.ingest(batch, SimTime::seconds(30), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].group, 0u);
  EXPECT_EQ(out[1].group, 1u);
  EXPECT_EQ(out[0].root_rank, 2u);
  EXPECT_EQ(out[1].root_rank, 1u);
}

TEST(Diagnoser, ResetKeepsRegistrationsDropsEpisodeState) {
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 4));
  std::vector<CollectiveVerdict> out;
  const auto stalled = stalled_iteration(0, 4, 2);
  diag.ingest(stalled, SimTime::seconds(30), out);
  EXPECT_EQ(out.size(), 1u);
  diag.reset_state();
  EXPECT_EQ(diag.num_groups(), 1u);
  // The cold restart forgot the latch: the still-live stall re-pages
  // (better a duplicate page than a swallowed hang).
  diag.ingest(stalled, SimTime::seconds(60), out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Diagnoser, CopyCheckpointsStrikeState) {
  CollectiveDiagnoser diag;
  diag.register_group(ring(0, 4));
  std::vector<CollectiveVerdict> out;
  diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(30), out);
  diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(60), out);
  const CollectiveDiagnoser snapshot = diag;  // blackout checkpoint
  // The live object pages on strike three; the snapshot, restored later,
  // replays the same third strike to the same verdict.
  diag.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(90), out);
  ASSERT_EQ(out.size(), 1u);
  CollectiveDiagnoser restored = snapshot;
  std::vector<CollectiveVerdict> replay;
  restored.ingest(straggler_iteration(0, 4, 3, 10.0), SimTime::seconds(90),
                  replay);
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].kind, out[0].kind);
  EXPECT_EQ(replay[0].root_rank, out[0].root_rank);
  EXPECT_EQ(restored.slow_verdicts(), diag.slow_verdicts());
}

TEST(Verdict, KindStrings) {
  EXPECT_EQ(to_string(VerdictKind::kHang), "hang");
  EXPECT_EQ(to_string(VerdictKind::kSlow), "slow");
}

}  // namespace
}  // namespace skh::collective
