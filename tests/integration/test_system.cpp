// End-to-end tests of the full SkeletonHunter loop: orchestrated tasks,
// registration-gated probing, runtime skeleton optimization, anomaly
// detection, Algorithm-1 localization, and campaign scoring.
#include <gtest/gtest.h>

#include "../testutil.h"
#include "core/metrics.h"
#include "core/skeleton_hunter.h"

namespace skh::core {
namespace {

using testutil::SimEnv;

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : env_(testutil::small_topology()) {}

  /// Launch a task, monitor it, run to Running, apply the inferred
  /// skeleton, and return the task id.
  TaskId launch_monitored(SkeletonHunter& hunter, std::uint32_t containers,
                          std::uint32_t gpus = 8) {
    cluster::TaskRequest req;
    req.num_containers = containers;
    req.gpus_per_container = gpus;
    req.lifetime = SimTime::hours(12);
    const auto task = env_.orch.submit_task(req);
    EXPECT_TRUE(task.has_value());
    hunter.monitor_task(*task);
    env_.events.run_until(env_.events.now() + SimTime::minutes(12));
    return *task;
  }

  void apply_skeleton(SkeletonHunter& hunter, TaskId task,
                      const workload::ParallelismConfig& par) {
    const auto layout = testutil::layout_of(env_, task, par);
    const auto obs = testutil::observations_for(env_, layout);
    InferenceConfig icfg;
    icfg.candidate_dp = {2, 4, 8};
    SkeletonHunterConfig dummy;  // only to reuse inference defaults
    (void)dummy;
    const auto inferred = hunter.supply_observations(task, obs);
    EXPECT_TRUE(inferred.has_value());
  }

  SkeletonHunterConfig fast_config() {
    SkeletonHunterConfig cfg;
    cfg.inference.candidate_dp = {2, 4, 8};
    return cfg;
  }

  SimEnv env_;
};

TEST_F(SystemTest, HealthyCampaignHasNoFalsePositives) {
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{1}, fast_config());
  const auto task = launch_monitored(hunter, 4);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  apply_skeleton(hunter, task, par);
  hunter.start(env_.events.now() + SimTime::minutes(40));
  env_.events.run_all();
  hunter.finalize();
  EXPECT_TRUE(hunter.failure_cases().empty());
  EXPECT_GT(hunter.total_probes(), 0u);
}

TEST_F(SystemTest, PhasedStartupRaisesNoAlarmsWithActivationGating) {
  // The §5.1 initialization claim: registration-based activation prevents
  // false positives while containers come up at different times. Probing
  // starts immediately, well before the stragglers are Running.
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{2}, fast_config());
  cluster::TaskRequest req;
  req.num_containers = 8;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(12);
  const auto task = env_.orch.submit_task(req);
  ASSERT_TRUE(task.has_value());
  hunter.monitor_task(*task);
  hunter.start(env_.events.now() + SimTime::minutes(30));
  env_.events.run_all();
  hunter.finalize();
  EXPECT_TRUE(hunter.failure_cases().empty());
}

TEST_F(SystemTest, AblationNaiveActivationRaisesStartupFalseAlarms) {
  SkeletonHunterConfig cfg = fast_config();
  cfg.incremental_activation = false;
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{3}, cfg);
  cluster::TaskRequest req;
  req.num_containers = 8;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(12);
  const auto task = env_.orch.submit_task(req);
  ASSERT_TRUE(task.has_value());
  hunter.monitor_task(*task);
  hunter.start(env_.events.now() + SimTime::minutes(30));
  env_.events.run_all();
  hunter.finalize();
  // Probes raced container startup: false cases appear.
  EXPECT_FALSE(hunter.failure_cases().empty());
  const auto score = score_campaign(hunter.failure_cases(), env_.faults,
                                    env_.topo);
  EXPECT_LT(score.precision(), 1.0);
}

TEST_F(SystemTest, SkeletonOptimizationShrinksTargets) {
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{4}, fast_config());
  const auto task = launch_monitored(hunter, 8);
  const auto before = hunter.current_targets(task);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 4;
  par.dp = 2;
  apply_skeleton(hunter, task, par);
  const auto after = hunter.current_targets(task);
  EXPECT_LT(after, before / 2);
  EXPECT_GT(after, 0u);
}

TEST_F(SystemTest, RnicDownDetectedAndLocalized) {
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{5}, fast_config());
  const auto task = launch_monitored(hunter, 4);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  apply_skeleton(hunter, task, par);

  const auto victim = env_.orch.endpoints_of_task(task)[0];
  const SimTime t0 = env_.events.now() + SimTime::minutes(2);
  env_.faults.inject(sim::IssueType::kRnicPortDown,
                     {sim::ComponentKind::kRnic, victim.rnic.value()},
                     t0, t0 + SimTime::minutes(10));
  hunter.start(env_.events.now() + SimTime::minutes(30));
  env_.events.run_all();
  hunter.finalize();

  const auto score = score_campaign(hunter.failure_cases(), env_.faults,
                                    env_.topo);
  EXPECT_EQ(score.detected_true, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.localization_accuracy(), 1.0);
  // Detection latency: a handful of probe intervals, far below the 30 s
  // training-iteration bound the paper cares about (8 s in production).
  EXPECT_LT(score.mean_detection_latency_s, 30.0);
}

TEST_F(SystemTest, Figure18FlowTableInconsistencyEndToEnd) {
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{6}, fast_config());
  const auto task = launch_monitored(hunter, 4);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  apply_skeleton(hunter, task, par);

  // Warm up healthy baselines, then desynchronize one RNIC's offload table.
  hunter.start(env_.events.now() + SimTime::minutes(40));
  const auto victim = env_.orch.endpoints_of_task(task)[2];
  const SimTime onset = env_.events.now() + SimTime::minutes(10);
  env_.events.schedule_at(onset, [&] {
    env_.overlay.invalidate_offload(victim.rnic);
  });
  // Register the ground truth for scoring (the slow path is a vswitch/RNIC
  // interaction; Table 1 #15).
  env_.faults.inject(sim::IssueType::kRepetitiveFlowOffloading,
                     {sim::ComponentKind::kRnic, victim.rnic.value()}, onset,
                     onset + SimTime::minutes(25),
                     sim::FaultEffect{});  // overlay carries the effect
  env_.events.run_all();
  hunter.finalize();

  ASSERT_FALSE(hunter.failure_cases().empty());
  bool rnic_blamed = false;
  for (const auto& c : hunter.failure_cases()) {
    for (const auto& culprit : c.localization.culprits) {
      if (culprit.kind == sim::ComponentKind::kRnic &&
          culprit.index == victim.rnic.value()) {
        rnic_blamed = true;
      }
    }
  }
  EXPECT_TRUE(rnic_blamed);
}

TEST_F(SystemTest, ContainerCrashDetectedBeforeControlPlane) {
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{7}, fast_config());
  const auto task = launch_monitored(hunter, 4);
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  apply_skeleton(hunter, task, par);

  const auto victim_container = env_.orch.task(task).containers[1];
  const SimTime t0 = env_.events.now() + SimTime::minutes(2);
  env_.events.schedule_at(t0, [&] {
    env_.orch.crash_container(victim_container);
  });
  env_.faults.inject(sim::IssueType::kContainerCrash,
                     {sim::ComponentKind::kContainer,
                      victim_container.value()},
                     t0, t0 + SimTime::minutes(5), sim::FaultEffect{});
  hunter.start(env_.events.now() + SimTime::minutes(20));
  env_.events.run_all();
  hunter.finalize();

  ASSERT_FALSE(hunter.failure_cases().empty());
  bool container_blamed = false;
  for (const auto& c : hunter.failure_cases()) {
    for (const auto& culprit : c.localization.culprits) {
      if (culprit.kind == sim::ComponentKind::kContainer &&
          culprit.index == victim_container.value()) {
        container_blamed = true;
      }
    }
  }
  EXPECT_TRUE(container_blamed);
}

TEST_F(SystemTest, TaskTeardownRaisesNoAlarms) {
  SkeletonHunterConfig cfg = fast_config();
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{8}, cfg);
  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::minutes(20);  // dies mid-campaign
  const auto task = env_.orch.submit_task(req);
  ASSERT_TRUE(task.has_value());
  hunter.monitor_task(*task);
  hunter.start(env_.events.now() + SimTime::minutes(45));
  env_.events.run_all();
  hunter.finalize();
  EXPECT_TRUE(hunter.failure_cases().empty());
}

TEST_F(SystemTest, TwoConcurrentTasksIsolated) {
  // A fault in task A must not generate cases attributed to task B's pairs.
  SkeletonHunter hunter(env_.topo, env_.overlay, env_.orch, env_.events,
                        env_.faults, RngStream{9}, fast_config());
  const auto task_a = launch_monitored(hunter, 4);
  const auto task_b = launch_monitored(hunter, 4);
  (void)task_b;
  const auto victim = env_.orch.endpoints_of_task(task_a)[0];
  const SimTime t0 = env_.events.now() + SimTime::minutes(1);
  env_.faults.inject(sim::IssueType::kRnicPortDown,
                     {sim::ComponentKind::kRnic, victim.rnic.value()}, t0,
                     t0 + SimTime::minutes(8));
  hunter.start(env_.events.now() + SimTime::minutes(25));
  env_.events.run_all();
  hunter.finalize();

  ASSERT_FALSE(hunter.failure_cases().empty());
  for (const auto& c : hunter.failure_cases()) {
    EXPECT_EQ(c.task, task_a);
  }
}

TEST_F(SystemTest, DeterministicAcrossRuns) {
  auto run_once = [&](std::uint64_t seed) {
    SimEnv env(testutil::small_topology());
    SkeletonHunter hunter(env.topo, env.overlay, env.orch, env.events,
                          env.faults, RngStream{seed}, fast_config());
    cluster::TaskRequest req;
    req.num_containers = 4;
    req.gpus_per_container = 8;
    req.lifetime = SimTime::hours(2);
    const auto task = env.orch.submit_task(req);
    hunter.monitor_task(*task);
    env.events.run_until(SimTime::minutes(12));
    const auto victim = env.orch.endpoints_of_task(*task)[0];
    env.faults.inject(sim::IssueType::kRnicPortDown,
                      {sim::ComponentKind::kRnic, victim.rnic.value()},
                      SimTime::minutes(14), SimTime::minutes(20));
    hunter.start(SimTime::minutes(30));
    env.events.run_all();
    hunter.finalize();
    return hunter.failure_cases().size();
  };
  EXPECT_EQ(run_once(123), run_once(123));
}

/// Parameterized end-to-end sweep over representative issue types: the
/// injected component class changes, the pipeline (probe -> detect ->
/// localize -> score) must land a correct verdict every time.
class IssueSweep : public ::testing::TestWithParam<sim::IssueType> {};

TEST_P(IssueSweep, DetectedAndLocalizedEndToEnd) {
  SimEnv env(testutil::small_topology());
  SkeletonHunterConfig cfg;
  cfg.inference.candidate_dp = {2, 4};
  SkeletonHunter hunter(env.topo, env.overlay, env.orch, env.events,
                        env.faults, RngStream{77}, cfg);
  cluster::TaskRequest req;
  req.num_containers = 4;
  req.gpus_per_container = 8;
  req.lifetime = SimTime::hours(12);
  const auto task = env.orch.submit_task(req);
  ASSERT_TRUE(task.has_value());
  hunter.monitor_task(*task);
  env.events.run_until(env.events.now() + SimTime::minutes(12));
  workload::ParallelismConfig par;
  par.tp = 8;
  par.pp = 2;
  par.dp = 2;
  const auto layout = testutil::layout_of(env, *task, par);
  (void)hunter.supply_observations(*task,
                                   testutil::observations_for(env, layout));

  const auto type = GetParam();
  const auto victim = env.orch.endpoints_of_task(*task)[9];
  const SimTime t0 = env.events.now() + SimTime::minutes(3);
  sim::ComponentRef target;
  switch (sim::issue_info(type).target_kind) {
    case sim::ComponentKind::kPhysicalLink:
      target = {sim::ComponentKind::kPhysicalLink,
                env.topo.uplink_of(victim.rnic).value()};
      break;
    case sim::ComponentKind::kRnic:
      target = {sim::ComponentKind::kRnic, victim.rnic.value()};
      break;
    case sim::ComponentKind::kVSwitch:
      target = {sim::ComponentKind::kVSwitch,
                env.topo.host_of(victim.rnic).value()};
      break;
    default:
      target = {sim::ComponentKind::kHost,
                env.topo.host_of(victim.rnic).value()};
      break;
  }
  env.faults.inject(type, target, t0, t0 + SimTime::minutes(8));
  hunter.start(env.events.now() + SimTime::minutes(20));
  env.events.run_all();
  hunter.finalize();

  const auto score = score_campaign(hunter.failure_cases(), env.faults,
                                    env.topo);
  EXPECT_EQ(score.detected_true, 1u) << sim::to_string(type);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0) << sim::to_string(type);
  EXPECT_DOUBLE_EQ(score.localization_accuracy(), 1.0)
      << sim::to_string(type);
}

INSTANTIATE_TEST_SUITE_P(
    IssueTypes, IssueSweep,
    ::testing::Values(sim::IssueType::kCrcError,
                      sim::IssueType::kSwitchPortDown,
                      sim::IssueType::kRnicPortDown,
                      sim::IssueType::kRnicFirmwareNotResponding,
                      sim::IssueType::kGidChange,
                      sim::IssueType::kNotUsingRdma,
                      sim::IssueType::kHugepageMisconfig),
    [](const ::testing::TestParamInfo<sim::IssueType>& info) {
      std::string name{sim::to_string(info.param)};
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace skh::core
