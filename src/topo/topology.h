// Rail-optimized data-center topology (Figure 10) and ECMP routing.
//
// Hosts carry `rails_per_host` RNICs; RNIC r of every host in a segment
// connects to that segment's rail-r ToR switch. ToRs of the same rail across
// segments are joined by a per-rail spine plane; spine planes are joined by a
// core layer so that (rare, suboptimal) cross-rail paths exist too — the
// full-mesh probing baseline exercises them even though collective libraries
// keep training traffic in-rail.
//
// Routing is deterministic ECMP: among equal-cost candidates, the spine/core
// is picked by a hash of the (src, dst) RNIC pair, mirroring five-tuple ECMP.
// The underlay localizer both replays the selected path (traceroute) and
// enumerates all equal-cost candidates (tomography coverage).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"

namespace skh::topo {

struct TopologyConfig {
  std::uint32_t num_hosts = 64;
  std::uint32_t rails_per_host = 8;   ///< RNICs (and GPUs) per host
  std::uint32_t hosts_per_segment = 16;
  std::uint32_t spines_per_rail = 2;  ///< ECMP width within a rail plane
  std::uint32_t num_cores = 4;        ///< ECMP width across rail planes
  double link_latency_us = 1.2;       ///< one-way propagation+serialization
  double switch_latency_us = 0.4;     ///< per-switch forwarding delay
  double intra_host_latency_us = 1.0; ///< NVLink/PCIe hop
};

/// How a flow maps probes onto its equal-cost path set.
///
///  - kStaticEcmp: the classic five-tuple hash — every probe of a pair rides
///    the single `route()` member forever (production default, and the mode
///    all pre-existing seeds replay under).
///  - kAdaptive: per-flow re-hash on fault signals — a flow sticks to its
///    current member until that member crosses a degraded link/switch, then
///    deterministically walks to the next clean member.
///  - kSpray: per-packet spray — successive probes of a flow fan over up to
///    `spray_ways` members of `equal_cost_paths()`, chosen by a deterministic
///    per-packet hash (no RNG draws, so the delivery/jitter streams are
///    unchanged versus static routing).
enum class RoutingMode : std::uint8_t { kStaticEcmp, kAdaptive, kSpray };

[[nodiscard]] const char* to_string(RoutingMode m) noexcept;

/// Deterministic pair hash used for ECMP member selection (splitmix-style
/// avalanche; asymmetric in (a, b), mirroring five-tuple ECMP). Exposed so
/// the probe engine's spray/adaptive selectors and the routing property
/// tests share the exact production hash.
[[nodiscard]] std::uint64_t ecmp_hash(std::uint32_t a, std::uint32_t b,
                                      std::uint32_t salt) noexcept;

enum class SwitchKind : std::uint8_t { kTor, kSpine, kCore };

struct Switch {
  SwitchId id;
  SwitchKind kind = SwitchKind::kTor;
  std::uint32_t rail = 0;     ///< rail plane (ToR, Spine); unused for core
  std::uint32_t segment = 0;  ///< segment (ToR only)
};

enum class LinkTier : std::uint8_t { kHostToTor, kTorToSpine, kSpineToCore };

/// An undirected physical link. For kHostToTor, `rnic` is set; otherwise the
/// two switch endpoints are `lower` (closer to hosts) and `upper`.
struct Link {
  LinkId id;
  LinkTier tier = LinkTier::kHostToTor;
  RnicId rnic;      ///< valid iff tier == kHostToTor
  SwitchId lower;   ///< ToR for host links; ToR/Spine otherwise
  SwitchId upper;   ///< unused for kHostToTor
};

/// A routed path between two RNICs.
struct Path {
  bool intra_host = false;
  std::vector<LinkId> links;        ///< in traversal order
  std::vector<SwitchId> switches;   ///< in traversal order
  double one_way_latency_us = 0.0;  ///< healthy baseline latency
};

class Topology {
 public:
  [[nodiscard]] static Topology build(const TopologyConfig& cfg);

  [[nodiscard]] const TopologyConfig& config() const noexcept { return cfg_; }

  // --- entity enumeration -------------------------------------------------
  [[nodiscard]] std::uint32_t num_hosts() const noexcept {
    return cfg_.num_hosts;
  }
  [[nodiscard]] std::uint32_t num_rnics() const noexcept {
    return cfg_.num_hosts * cfg_.rails_per_host;
  }
  [[nodiscard]] std::uint32_t num_segments() const noexcept;
  [[nodiscard]] std::span<const Switch> switches() const noexcept {
    return switches_;
  }
  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }
  [[nodiscard]] const Switch& switch_at(SwitchId id) const;
  [[nodiscard]] const Link& link_at(LinkId id) const;

  // --- RNIC addressing ----------------------------------------------------
  [[nodiscard]] RnicId rnic_of(HostId host, std::uint32_t rail) const;
  [[nodiscard]] HostId host_of(RnicId rnic) const;
  [[nodiscard]] std::uint32_t rail_of(RnicId rnic) const;
  [[nodiscard]] std::uint32_t segment_of(HostId host) const;

  /// The ToR switch serving (segment, rail).
  [[nodiscard]] SwitchId tor_at(std::uint32_t segment,
                                std::uint32_t rail) const;
  /// The uplink (host-to-ToR) link of an RNIC.
  [[nodiscard]] LinkId uplink_of(RnicId rnic) const;

  /// The physical link joining two directly adjacent switches (ToR-spine or
  /// spine-core). Throws std::logic_error when no such adjacency exists.
  [[nodiscard]] LinkId switch_link(SwitchId a, SwitchId b) const;

  // --- routing ------------------------------------------------------------
  // Path-id stability contract: for a given (src, dst) ordered pair,
  // `equal_cost_paths(src, dst)[i] == route_via(src, dst, i)` for every
  // i < num_paths(src, dst), and the index layout is fixed by construction:
  // in-rail paths are indexed by spine member s, cross-rail paths by
  // (s1 * num_cores + c) * spines_per_rail + s2. Path ids are therefore
  // stable across runs, shards, and threads — the detector's per-path
  // sub-series and the localizer's path-scoped votes key on them directly.

  /// Deterministic ECMP-selected path from src to dst (the "traceroute").
  /// Identical to `route_via(src, dst, static_path_id(src, dst))`.
  [[nodiscard]] Path route(RnicId src, RnicId dst) const;

  /// Number of equal-cost members between the pair: 1 (intra-host and
  /// same-ToR), spines_per_rail (in-rail), spines_per_rail^2 * num_cores
  /// (cross-rail).
  [[nodiscard]] std::uint32_t num_paths(RnicId src, RnicId dst) const;

  /// The equal-cost member the static five-tuple hash selects — the index of
  /// `route(src, dst)` within `equal_cost_paths(src, dst)`.
  [[nodiscard]] std::uint32_t static_path_id(RnicId src, RnicId dst) const;

  /// Materialize the path at `path_id` in equal_cost_paths order without
  /// enumerating the whole set. Throws std::out_of_range on a bad index.
  [[nodiscard]] Path route_via(RnicId src, RnicId dst,
                               std::uint32_t path_id) const;

  /// All equal-cost paths between the pair (bounded fan-out; used by the
  /// tomography analysis to reason about ECMP coverage).
  [[nodiscard]] std::vector<Path> equal_cost_paths(RnicId src,
                                                   RnicId dst) const;

 private:
  Topology() = default;

  [[nodiscard]] Path make_path(RnicId src, RnicId dst,
                               std::span<const SwitchId> via) const;

  TopologyConfig cfg_;
  std::vector<Switch> switches_;
  std::vector<Link> links_;
  // Lookup tables (built once): tor_index_[segment][rail], uplink of rnic,
  // tor-spine link index, spine-core link index.
  std::vector<std::vector<SwitchId>> tor_index_;
  std::vector<LinkId> uplink_index_;
  std::vector<std::vector<LinkId>> tor_spine_links_;  // [tor dense idx][spine]
  std::vector<std::vector<LinkId>> spine_core_links_; // [spine dense idx][core]
  std::vector<SwitchId> spines_;  // [rail * spines_per_rail + s]
  std::vector<SwitchId> cores_;
  // SwitchId -> dense spine index (index into spines_/spine_core_links_),
  // built once so switch_link resolves spine adjacencies without the old
  // O(spines) scan. kNoDense for non-spine switches.
  static constexpr std::uint32_t kNoDense = 0xFFFFFFFFu;
  std::vector<std::uint32_t> spine_dense_;  // [SwitchId.value()]
};

}  // namespace skh::topo
