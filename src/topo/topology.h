// Rail-optimized data-center topology (Figure 10) and ECMP routing.
//
// Hosts carry `rails_per_host` RNICs; RNIC r of every host in a segment
// connects to that segment's rail-r ToR switch. ToRs of the same rail across
// segments are joined by a per-rail spine plane; spine planes are joined by a
// core layer so that (rare, suboptimal) cross-rail paths exist too — the
// full-mesh probing baseline exercises them even though collective libraries
// keep training traffic in-rail.
//
// Routing is deterministic ECMP: among equal-cost candidates, the spine/core
// is picked by a hash of the (src, dst) RNIC pair, mirroring five-tuple ECMP.
// The underlay localizer both replays the selected path (traceroute) and
// enumerates all equal-cost candidates (tomography coverage).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"

namespace skh::topo {

struct TopologyConfig {
  std::uint32_t num_hosts = 64;
  std::uint32_t rails_per_host = 8;   ///< RNICs (and GPUs) per host
  std::uint32_t hosts_per_segment = 16;
  std::uint32_t spines_per_rail = 2;  ///< ECMP width within a rail plane
  std::uint32_t num_cores = 4;        ///< ECMP width across rail planes
  double link_latency_us = 1.2;       ///< one-way propagation+serialization
  double switch_latency_us = 0.4;     ///< per-switch forwarding delay
  double intra_host_latency_us = 1.0; ///< NVLink/PCIe hop
};

enum class SwitchKind : std::uint8_t { kTor, kSpine, kCore };

struct Switch {
  SwitchId id;
  SwitchKind kind = SwitchKind::kTor;
  std::uint32_t rail = 0;     ///< rail plane (ToR, Spine); unused for core
  std::uint32_t segment = 0;  ///< segment (ToR only)
};

enum class LinkTier : std::uint8_t { kHostToTor, kTorToSpine, kSpineToCore };

/// An undirected physical link. For kHostToTor, `rnic` is set; otherwise the
/// two switch endpoints are `lower` (closer to hosts) and `upper`.
struct Link {
  LinkId id;
  LinkTier tier = LinkTier::kHostToTor;
  RnicId rnic;      ///< valid iff tier == kHostToTor
  SwitchId lower;   ///< ToR for host links; ToR/Spine otherwise
  SwitchId upper;   ///< unused for kHostToTor
};

/// A routed path between two RNICs.
struct Path {
  bool intra_host = false;
  std::vector<LinkId> links;        ///< in traversal order
  std::vector<SwitchId> switches;   ///< in traversal order
  double one_way_latency_us = 0.0;  ///< healthy baseline latency
};

class Topology {
 public:
  [[nodiscard]] static Topology build(const TopologyConfig& cfg);

  [[nodiscard]] const TopologyConfig& config() const noexcept { return cfg_; }

  // --- entity enumeration -------------------------------------------------
  [[nodiscard]] std::uint32_t num_hosts() const noexcept {
    return cfg_.num_hosts;
  }
  [[nodiscard]] std::uint32_t num_rnics() const noexcept {
    return cfg_.num_hosts * cfg_.rails_per_host;
  }
  [[nodiscard]] std::uint32_t num_segments() const noexcept;
  [[nodiscard]] std::span<const Switch> switches() const noexcept {
    return switches_;
  }
  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }
  [[nodiscard]] const Switch& switch_at(SwitchId id) const;
  [[nodiscard]] const Link& link_at(LinkId id) const;

  // --- RNIC addressing ----------------------------------------------------
  [[nodiscard]] RnicId rnic_of(HostId host, std::uint32_t rail) const;
  [[nodiscard]] HostId host_of(RnicId rnic) const;
  [[nodiscard]] std::uint32_t rail_of(RnicId rnic) const;
  [[nodiscard]] std::uint32_t segment_of(HostId host) const;

  /// The ToR switch serving (segment, rail).
  [[nodiscard]] SwitchId tor_at(std::uint32_t segment,
                                std::uint32_t rail) const;
  /// The uplink (host-to-ToR) link of an RNIC.
  [[nodiscard]] LinkId uplink_of(RnicId rnic) const;

  // --- routing ------------------------------------------------------------
  /// Deterministic ECMP-selected path from src to dst (the "traceroute").
  [[nodiscard]] Path route(RnicId src, RnicId dst) const;

  /// All equal-cost paths between the pair (bounded fan-out; used by the
  /// tomography analysis to reason about ECMP coverage).
  [[nodiscard]] std::vector<Path> equal_cost_paths(RnicId src,
                                                   RnicId dst) const;

 private:
  Topology() = default;

  [[nodiscard]] Path make_path(RnicId src, RnicId dst,
                               std::span<const SwitchId> via) const;
  [[nodiscard]] LinkId find_switch_link(SwitchId a, SwitchId b) const;

  TopologyConfig cfg_;
  std::vector<Switch> switches_;
  std::vector<Link> links_;
  // Lookup tables (built once): tor_index_[segment][rail], uplink of rnic,
  // tor-spine link index, spine-core link index.
  std::vector<std::vector<SwitchId>> tor_index_;
  std::vector<LinkId> uplink_index_;
  std::vector<std::vector<LinkId>> tor_spine_links_;  // [tor dense idx][spine]
  std::vector<std::vector<LinkId>> spine_core_links_; // [spine dense idx][core]
  std::vector<SwitchId> spines_;  // [rail * spines_per_rail + s]
  std::vector<SwitchId> cores_;
};

}  // namespace skh::topo
