#include "topo/topology.h"

#include <stdexcept>

#include "common/rng.h"

namespace skh::topo {

const char* to_string(RoutingMode m) noexcept {
  switch (m) {
    case RoutingMode::kStaticEcmp: return "static-ecmp";
    case RoutingMode::kAdaptive: return "adaptive";
    case RoutingMode::kSpray: return "spray";
  }
  return "?";
}

std::uint64_t ecmp_hash(std::uint32_t a, std::uint32_t b,
                        std::uint32_t salt) noexcept {
  std::uint64_t z = (static_cast<std::uint64_t>(a) << 32) | b;
  z ^= static_cast<std::uint64_t>(salt) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Topology Topology::build(const TopologyConfig& cfg) {
  if (cfg.num_hosts == 0 || cfg.rails_per_host == 0 ||
      cfg.hosts_per_segment == 0 || cfg.spines_per_rail == 0 ||
      cfg.num_cores == 0) {
    throw std::invalid_argument("Topology::build: all counts must be > 0");
  }
  Topology t;
  t.cfg_ = cfg;
  const std::uint32_t segments =
      (cfg.num_hosts + cfg.hosts_per_segment - 1) / cfg.hosts_per_segment;

  // ToR switches: one per (segment, rail).
  t.tor_index_.assign(segments, std::vector<SwitchId>(cfg.rails_per_host));
  for (std::uint32_t seg = 0; seg < segments; ++seg) {
    for (std::uint32_t rail = 0; rail < cfg.rails_per_host; ++rail) {
      const SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
      t.switches_.push_back(Switch{id, SwitchKind::kTor, rail, seg});
      t.tor_index_[seg][rail] = id;
    }
  }
  // Spine switches: spines_per_rail per rail plane.
  for (std::uint32_t rail = 0; rail < cfg.rails_per_host; ++rail) {
    for (std::uint32_t s = 0; s < cfg.spines_per_rail; ++s) {
      const SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
      t.switches_.push_back(Switch{id, SwitchKind::kSpine, rail, 0});
      t.spines_.push_back(id);
    }
  }
  // Core switches.
  for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
    const SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
    t.switches_.push_back(Switch{id, SwitchKind::kCore, 0, 0});
    t.cores_.push_back(id);
  }

  // Host-to-ToR links: one per RNIC.
  t.uplink_index_.resize(static_cast<std::size_t>(cfg.num_hosts) *
                         cfg.rails_per_host);
  for (std::uint32_t h = 0; h < cfg.num_hosts; ++h) {
    const std::uint32_t seg = h / cfg.hosts_per_segment;
    for (std::uint32_t rail = 0; rail < cfg.rails_per_host; ++rail) {
      const RnicId rnic{h * cfg.rails_per_host + rail};
      const LinkId id{static_cast<std::uint32_t>(t.links_.size())};
      t.links_.push_back(Link{id, LinkTier::kHostToTor, rnic,
                              t.tor_index_[seg][rail], SwitchId{}});
      t.uplink_index_[rnic.value()] = id;
    }
  }
  // ToR-to-spine links: every ToR connects to all spines of its rail.
  t.tor_spine_links_.assign(static_cast<std::size_t>(segments) *
                                cfg.rails_per_host,
                            std::vector<LinkId>(cfg.spines_per_rail));
  for (std::uint32_t seg = 0; seg < segments; ++seg) {
    for (std::uint32_t rail = 0; rail < cfg.rails_per_host; ++rail) {
      const std::size_t tor_dense = static_cast<std::size_t>(seg) *
                                        cfg.rails_per_host + rail;
      for (std::uint32_t s = 0; s < cfg.spines_per_rail; ++s) {
        const SwitchId spine = t.spines_[rail * cfg.spines_per_rail + s];
        const LinkId id{static_cast<std::uint32_t>(t.links_.size())};
        t.links_.push_back(Link{id, LinkTier::kTorToSpine, RnicId{},
                                t.tor_index_[seg][rail], spine});
        t.tor_spine_links_[tor_dense][s] = id;
      }
    }
  }
  // Spine-to-core links: every spine connects to all cores.
  t.spine_core_links_.assign(t.spines_.size(),
                             std::vector<LinkId>(cfg.num_cores));
  for (std::size_t sp = 0; sp < t.spines_.size(); ++sp) {
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
      const LinkId id{static_cast<std::uint32_t>(t.links_.size())};
      t.links_.push_back(Link{id, LinkTier::kSpineToCore, RnicId{},
                              t.spines_[sp], t.cores_[c]});
      t.spine_core_links_[sp][c] = id;
    }
  }
  // Dense spine-index map: O(1) adjacency resolution in switch_link.
  t.spine_dense_.assign(t.switches_.size(), kNoDense);
  for (std::size_t sp = 0; sp < t.spines_.size(); ++sp) {
    t.spine_dense_[t.spines_[sp].value()] = static_cast<std::uint32_t>(sp);
  }
  return t;
}

std::uint32_t Topology::num_segments() const noexcept {
  return static_cast<std::uint32_t>(tor_index_.size());
}

const Switch& Topology::switch_at(SwitchId id) const {
  if (!id.valid() || id.value() >= switches_.size()) {
    throw std::out_of_range("Topology::switch_at: bad id");
  }
  return switches_[id.value()];
}

const Link& Topology::link_at(LinkId id) const {
  if (!id.valid() || id.value() >= links_.size()) {
    throw std::out_of_range("Topology::link_at: bad id");
  }
  return links_[id.value()];
}

RnicId Topology::rnic_of(HostId host, std::uint32_t rail) const {
  if (!host.valid() || host.value() >= cfg_.num_hosts ||
      rail >= cfg_.rails_per_host) {
    throw std::out_of_range("Topology::rnic_of: bad host/rail");
  }
  return RnicId{host.value() * cfg_.rails_per_host + rail};
}

HostId Topology::host_of(RnicId rnic) const {
  if (!rnic.valid() || rnic.value() >= num_rnics()) {
    throw std::out_of_range("Topology::host_of: bad rnic");
  }
  return HostId{rnic.value() / cfg_.rails_per_host};
}

std::uint32_t Topology::rail_of(RnicId rnic) const {
  if (!rnic.valid() || rnic.value() >= num_rnics()) {
    throw std::out_of_range("Topology::rail_of: bad rnic");
  }
  return rnic.value() % cfg_.rails_per_host;
}

std::uint32_t Topology::segment_of(HostId host) const {
  if (!host.valid() || host.value() >= cfg_.num_hosts) {
    throw std::out_of_range("Topology::segment_of: bad host");
  }
  return host.value() / cfg_.hosts_per_segment;
}

SwitchId Topology::tor_at(std::uint32_t segment, std::uint32_t rail) const {
  if (segment >= tor_index_.size() || rail >= cfg_.rails_per_host) {
    throw std::out_of_range("Topology::tor_at: bad segment/rail");
  }
  return tor_index_[segment][rail];
}

LinkId Topology::uplink_of(RnicId rnic) const {
  if (!rnic.valid() || rnic.value() >= uplink_index_.size()) {
    throw std::out_of_range("Topology::uplink_of: bad rnic");
  }
  return uplink_index_[rnic.value()];
}

Path Topology::make_path(RnicId src, RnicId dst,
                         std::span<const SwitchId> via) const {
  Path p;
  p.switches.assign(via.begin(), via.end());
  p.links.push_back(uplink_of(src));
  for (std::size_t i = 0; i + 1 < via.size(); ++i) {
    p.links.push_back(switch_link(via[i], via[i + 1]));
  }
  p.links.push_back(uplink_of(dst));
  p.one_way_latency_us =
      static_cast<double>(p.links.size()) * cfg_.link_latency_us +
      static_cast<double>(p.switches.size()) * cfg_.switch_latency_us;
  return p;
}

LinkId Topology::switch_link(SwitchId a, SwitchId b) const {
  // Normalize to (lower tier first).
  const auto& sa = switch_at(a);
  const auto& sb = switch_at(b);
  SwitchId lower = a, upper = b;
  if (static_cast<int>(sa.kind) > static_cast<int>(sb.kind)) {
    lower = b;
    upper = a;
  }
  const auto& sl = switch_at(lower);
  if (sl.kind == SwitchKind::kTor) {
    const std::size_t tor_dense =
        static_cast<std::size_t>(sl.segment) * cfg_.rails_per_host + sl.rail;
    for (LinkId l : tor_spine_links_[tor_dense]) {
      if (link_at(l).upper == upper) return l;
    }
  } else if (sl.kind == SwitchKind::kSpine) {
    const std::uint32_t sp = spine_dense_[lower.value()];
    if (sp != kNoDense) {
      for (LinkId l : spine_core_links_[sp]) {
        if (link_at(l).upper == upper) return l;
      }
    }
  }
  throw std::logic_error("Topology::switch_link: no such adjacency");
}

std::uint32_t Topology::num_paths(RnicId src, RnicId dst) const {
  const HostId hs = host_of(src);
  const HostId hd = host_of(dst);
  if (hs == hd) return 1;
  const std::uint32_t rs = rail_of(src);
  const std::uint32_t rd = rail_of(dst);
  if (rs == rd) {
    return segment_of(hs) == segment_of(hd) ? 1 : cfg_.spines_per_rail;
  }
  return cfg_.spines_per_rail * cfg_.spines_per_rail * cfg_.num_cores;
}

std::uint32_t Topology::static_path_id(RnicId src, RnicId dst) const {
  const HostId hs = host_of(src);
  const HostId hd = host_of(dst);
  if (hs == hd) return 0;
  const std::uint32_t rs = rail_of(src);
  const std::uint32_t rd = rail_of(dst);
  if (rs == rd) {
    if (segment_of(hs) == segment_of(hd)) return 0;
    return static_cast<std::uint32_t>(
        ecmp_hash(src.value(), dst.value(), 1) % cfg_.spines_per_rail);
  }
  const std::uint32_t s1 = static_cast<std::uint32_t>(
      ecmp_hash(src.value(), dst.value(), 2) % cfg_.spines_per_rail);
  const std::uint32_t s2 = static_cast<std::uint32_t>(
      ecmp_hash(src.value(), dst.value(), 3) % cfg_.spines_per_rail);
  const std::uint32_t c = static_cast<std::uint32_t>(
      ecmp_hash(src.value(), dst.value(), 4) % cfg_.num_cores);
  return (s1 * cfg_.num_cores + c) * cfg_.spines_per_rail + s2;
}

Path Topology::route_via(RnicId src, RnicId dst,
                         std::uint32_t path_id) const {
  const HostId hs = host_of(src);
  const HostId hd = host_of(dst);
  if (path_id >= num_paths(src, dst)) {
    throw std::out_of_range("Topology::route_via: bad path id");
  }
  if (hs == hd) {
    Path p;
    p.intra_host = true;
    p.one_way_latency_us = cfg_.intra_host_latency_us;
    return p;
  }
  const std::uint32_t rs = rail_of(src);
  const std::uint32_t rd = rail_of(dst);
  const std::uint32_t ss = segment_of(hs);
  const std::uint32_t sd = segment_of(hd);

  if (rs == rd && ss == sd) {
    // Same ToR: two hops.
    const SwitchId tor = tor_at(ss, rs);
    const SwitchId via[] = {tor};
    return make_path(src, dst, via);
  }
  if (rs == rd) {
    // In-rail across segments: ToR -> spine member `path_id` -> ToR.
    const SwitchId via[] = {tor_at(ss, rs),
                            spines_[rs * cfg_.spines_per_rail + path_id],
                            tor_at(sd, rd)};
    return make_path(src, dst, via);
  }
  // Cross-rail: decompose (s1 * num_cores + c) * spines_per_rail + s2.
  const std::uint32_t s2 = path_id % cfg_.spines_per_rail;
  const std::uint32_t c = (path_id / cfg_.spines_per_rail) % cfg_.num_cores;
  const std::uint32_t s1 = path_id / (cfg_.spines_per_rail * cfg_.num_cores);
  const SwitchId via[] = {tor_at(ss, rs),
                          spines_[rs * cfg_.spines_per_rail + s1], cores_[c],
                          spines_[rd * cfg_.spines_per_rail + s2],
                          tor_at(sd, rd)};
  return make_path(src, dst, via);
}

Path Topology::route(RnicId src, RnicId dst) const {
  return route_via(src, dst, static_path_id(src, dst));
}

std::vector<Path> Topology::equal_cost_paths(RnicId src, RnicId dst) const {
  // Enumerated strictly in path-id order, so index i here IS path id i —
  // the stability contract the detector and localizer rely on.
  const std::uint32_t n = num_paths(src, dst);
  std::vector<Path> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(route_via(src, dst, i));
  }
  return out;
}

}  // namespace skh::topo
