#include "topo/topology.h"

#include <stdexcept>

#include "common/rng.h"

namespace skh::topo {

namespace {

/// Deterministic pair hash for ECMP selection.
std::uint64_t ecmp_hash(std::uint32_t a, std::uint32_t b,
                        std::uint32_t salt) noexcept {
  std::uint64_t z = (static_cast<std::uint64_t>(a) << 32) | b;
  z ^= static_cast<std::uint64_t>(salt) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Topology Topology::build(const TopologyConfig& cfg) {
  if (cfg.num_hosts == 0 || cfg.rails_per_host == 0 ||
      cfg.hosts_per_segment == 0 || cfg.spines_per_rail == 0 ||
      cfg.num_cores == 0) {
    throw std::invalid_argument("Topology::build: all counts must be > 0");
  }
  Topology t;
  t.cfg_ = cfg;
  const std::uint32_t segments =
      (cfg.num_hosts + cfg.hosts_per_segment - 1) / cfg.hosts_per_segment;

  // ToR switches: one per (segment, rail).
  t.tor_index_.assign(segments, std::vector<SwitchId>(cfg.rails_per_host));
  for (std::uint32_t seg = 0; seg < segments; ++seg) {
    for (std::uint32_t rail = 0; rail < cfg.rails_per_host; ++rail) {
      const SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
      t.switches_.push_back(Switch{id, SwitchKind::kTor, rail, seg});
      t.tor_index_[seg][rail] = id;
    }
  }
  // Spine switches: spines_per_rail per rail plane.
  for (std::uint32_t rail = 0; rail < cfg.rails_per_host; ++rail) {
    for (std::uint32_t s = 0; s < cfg.spines_per_rail; ++s) {
      const SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
      t.switches_.push_back(Switch{id, SwitchKind::kSpine, rail, 0});
      t.spines_.push_back(id);
    }
  }
  // Core switches.
  for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
    const SwitchId id{static_cast<std::uint32_t>(t.switches_.size())};
    t.switches_.push_back(Switch{id, SwitchKind::kCore, 0, 0});
    t.cores_.push_back(id);
  }

  // Host-to-ToR links: one per RNIC.
  t.uplink_index_.resize(static_cast<std::size_t>(cfg.num_hosts) *
                         cfg.rails_per_host);
  for (std::uint32_t h = 0; h < cfg.num_hosts; ++h) {
    const std::uint32_t seg = h / cfg.hosts_per_segment;
    for (std::uint32_t rail = 0; rail < cfg.rails_per_host; ++rail) {
      const RnicId rnic{h * cfg.rails_per_host + rail};
      const LinkId id{static_cast<std::uint32_t>(t.links_.size())};
      t.links_.push_back(Link{id, LinkTier::kHostToTor, rnic,
                              t.tor_index_[seg][rail], SwitchId{}});
      t.uplink_index_[rnic.value()] = id;
    }
  }
  // ToR-to-spine links: every ToR connects to all spines of its rail.
  t.tor_spine_links_.assign(static_cast<std::size_t>(segments) *
                                cfg.rails_per_host,
                            std::vector<LinkId>(cfg.spines_per_rail));
  for (std::uint32_t seg = 0; seg < segments; ++seg) {
    for (std::uint32_t rail = 0; rail < cfg.rails_per_host; ++rail) {
      const std::size_t tor_dense = static_cast<std::size_t>(seg) *
                                        cfg.rails_per_host + rail;
      for (std::uint32_t s = 0; s < cfg.spines_per_rail; ++s) {
        const SwitchId spine = t.spines_[rail * cfg.spines_per_rail + s];
        const LinkId id{static_cast<std::uint32_t>(t.links_.size())};
        t.links_.push_back(Link{id, LinkTier::kTorToSpine, RnicId{},
                                t.tor_index_[seg][rail], spine});
        t.tor_spine_links_[tor_dense][s] = id;
      }
    }
  }
  // Spine-to-core links: every spine connects to all cores.
  t.spine_core_links_.assign(t.spines_.size(),
                             std::vector<LinkId>(cfg.num_cores));
  for (std::size_t sp = 0; sp < t.spines_.size(); ++sp) {
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
      const LinkId id{static_cast<std::uint32_t>(t.links_.size())};
      t.links_.push_back(Link{id, LinkTier::kSpineToCore, RnicId{},
                              t.spines_[sp], t.cores_[c]});
      t.spine_core_links_[sp][c] = id;
    }
  }
  return t;
}

std::uint32_t Topology::num_segments() const noexcept {
  return static_cast<std::uint32_t>(tor_index_.size());
}

const Switch& Topology::switch_at(SwitchId id) const {
  if (!id.valid() || id.value() >= switches_.size()) {
    throw std::out_of_range("Topology::switch_at: bad id");
  }
  return switches_[id.value()];
}

const Link& Topology::link_at(LinkId id) const {
  if (!id.valid() || id.value() >= links_.size()) {
    throw std::out_of_range("Topology::link_at: bad id");
  }
  return links_[id.value()];
}

RnicId Topology::rnic_of(HostId host, std::uint32_t rail) const {
  if (!host.valid() || host.value() >= cfg_.num_hosts ||
      rail >= cfg_.rails_per_host) {
    throw std::out_of_range("Topology::rnic_of: bad host/rail");
  }
  return RnicId{host.value() * cfg_.rails_per_host + rail};
}

HostId Topology::host_of(RnicId rnic) const {
  if (!rnic.valid() || rnic.value() >= num_rnics()) {
    throw std::out_of_range("Topology::host_of: bad rnic");
  }
  return HostId{rnic.value() / cfg_.rails_per_host};
}

std::uint32_t Topology::rail_of(RnicId rnic) const {
  if (!rnic.valid() || rnic.value() >= num_rnics()) {
    throw std::out_of_range("Topology::rail_of: bad rnic");
  }
  return rnic.value() % cfg_.rails_per_host;
}

std::uint32_t Topology::segment_of(HostId host) const {
  if (!host.valid() || host.value() >= cfg_.num_hosts) {
    throw std::out_of_range("Topology::segment_of: bad host");
  }
  return host.value() / cfg_.hosts_per_segment;
}

SwitchId Topology::tor_at(std::uint32_t segment, std::uint32_t rail) const {
  if (segment >= tor_index_.size() || rail >= cfg_.rails_per_host) {
    throw std::out_of_range("Topology::tor_at: bad segment/rail");
  }
  return tor_index_[segment][rail];
}

LinkId Topology::uplink_of(RnicId rnic) const {
  if (!rnic.valid() || rnic.value() >= uplink_index_.size()) {
    throw std::out_of_range("Topology::uplink_of: bad rnic");
  }
  return uplink_index_[rnic.value()];
}

Path Topology::make_path(RnicId src, RnicId dst,
                         std::span<const SwitchId> via) const {
  Path p;
  p.switches.assign(via.begin(), via.end());
  p.links.push_back(uplink_of(src));
  for (std::size_t i = 0; i + 1 < via.size(); ++i) {
    p.links.push_back(find_switch_link(via[i], via[i + 1]));
  }
  p.links.push_back(uplink_of(dst));
  p.one_way_latency_us =
      static_cast<double>(p.links.size()) * cfg_.link_latency_us +
      static_cast<double>(p.switches.size()) * cfg_.switch_latency_us;
  return p;
}

LinkId Topology::find_switch_link(SwitchId a, SwitchId b) const {
  // Normalize to (lower tier first).
  const auto& sa = switch_at(a);
  const auto& sb = switch_at(b);
  SwitchId lower = a, upper = b;
  if (static_cast<int>(sa.kind) > static_cast<int>(sb.kind)) {
    lower = b;
    upper = a;
  }
  const auto& sl = switch_at(lower);
  if (sl.kind == SwitchKind::kTor) {
    const std::size_t tor_dense =
        static_cast<std::size_t>(sl.segment) * cfg_.rails_per_host + sl.rail;
    for (LinkId l : tor_spine_links_[tor_dense]) {
      if (link_at(l).upper == upper) return l;
    }
  } else if (sl.kind == SwitchKind::kSpine) {
    for (std::size_t sp = 0; sp < spines_.size(); ++sp) {
      if (spines_[sp] != lower) continue;
      for (LinkId l : spine_core_links_[sp]) {
        if (link_at(l).upper == upper) return l;
      }
    }
  }
  throw std::logic_error("Topology::find_switch_link: no such adjacency");
}

Path Topology::route(RnicId src, RnicId dst) const {
  const HostId hs = host_of(src);
  const HostId hd = host_of(dst);
  if (hs == hd) {
    Path p;
    p.intra_host = true;
    p.one_way_latency_us = cfg_.intra_host_latency_us;
    return p;
  }
  const std::uint32_t rs = rail_of(src);
  const std::uint32_t rd = rail_of(dst);
  const std::uint32_t ss = segment_of(hs);
  const std::uint32_t sd = segment_of(hd);

  if (rs == rd && ss == sd) {
    // Same ToR: two hops.
    const SwitchId tor = tor_at(ss, rs);
    const SwitchId via[] = {tor};
    return make_path(src, dst, via);
  }
  if (rs == rd) {
    // In-rail across segments: ToR -> spine (ECMP) -> ToR.
    const std::uint32_t s = static_cast<std::uint32_t>(
        ecmp_hash(src.value(), dst.value(), 1) % cfg_.spines_per_rail);
    const SwitchId via[] = {tor_at(ss, rs),
                            spines_[rs * cfg_.spines_per_rail + s],
                            tor_at(sd, rd)};
    return make_path(src, dst, via);
  }
  // Cross-rail: ToR -> spine(rail_s) -> core (ECMP) -> spine(rail_d) -> ToR.
  const std::uint32_t s1 = static_cast<std::uint32_t>(
      ecmp_hash(src.value(), dst.value(), 2) % cfg_.spines_per_rail);
  const std::uint32_t s2 = static_cast<std::uint32_t>(
      ecmp_hash(src.value(), dst.value(), 3) % cfg_.spines_per_rail);
  const std::uint32_t c = static_cast<std::uint32_t>(
      ecmp_hash(src.value(), dst.value(), 4) % cfg_.num_cores);
  const SwitchId via[] = {tor_at(ss, rs),
                          spines_[rs * cfg_.spines_per_rail + s1], cores_[c],
                          spines_[rd * cfg_.spines_per_rail + s2],
                          tor_at(sd, rd)};
  return make_path(src, dst, via);
}

std::vector<Path> Topology::equal_cost_paths(RnicId src, RnicId dst) const {
  const HostId hs = host_of(src);
  const HostId hd = host_of(dst);
  std::vector<Path> out;
  if (hs == hd) {
    out.push_back(route(src, dst));
    return out;
  }
  const std::uint32_t rs = rail_of(src);
  const std::uint32_t rd = rail_of(dst);
  const std::uint32_t ss = segment_of(hs);
  const std::uint32_t sd = segment_of(hd);

  if (rs == rd && ss == sd) {
    const SwitchId via[] = {tor_at(ss, rs)};
    out.push_back(make_path(src, dst, via));
    return out;
  }
  if (rs == rd) {
    for (std::uint32_t s = 0; s < cfg_.spines_per_rail; ++s) {
      const SwitchId via[] = {tor_at(ss, rs),
                              spines_[rs * cfg_.spines_per_rail + s],
                              tor_at(sd, rd)};
      out.push_back(make_path(src, dst, via));
    }
    return out;
  }
  for (std::uint32_t s1 = 0; s1 < cfg_.spines_per_rail; ++s1) {
    for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
      for (std::uint32_t s2 = 0; s2 < cfg_.spines_per_rail; ++s2) {
        const SwitchId via[] = {tor_at(ss, rs),
                                spines_[rs * cfg_.spines_per_rail + s1],
                                cores_[c],
                                spines_[rd * cfg_.spines_per_rail + s2],
                                tor_at(sd, rd)};
        out.push_back(make_path(src, dst, via));
      }
    }
  }
  return out;
}

}  // namespace skh::topo
