#include "probe/traceroute.h"

namespace skh::probe {

std::optional<std::size_t> TracerouteResult::first_dead_hop() const {
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (!hops[i].responded) return i;
  }
  return std::nullopt;
}

namespace {

bool component_blocked(const sim::FaultInjector& faults,
                       sim::ComponentRef ref, SimTime t) {
  for (const sim::Fault* f : faults.active_on(ref, t)) {
    if (!sim::issue_info(f->type).probe_visible) continue;
    if (f->effect.unreachable) return true;
  }
  return false;
}

double component_extra_latency(const sim::FaultInjector& faults,
                               sim::ComponentRef ref, SimTime t) {
  double extra = 0.0;
  for (const sim::Fault* f : faults.active_on(ref, t)) {
    if (!sim::issue_info(f->type).probe_visible) continue;
    extra += f->effect.extra_latency_us;
  }
  return extra;
}

}  // namespace

TracerouteResult traceroute(const topo::Topology& topo,
                            const sim::FaultInjector& faults, RnicId src,
                            RnicId dst, SimTime t) {
  TracerouteResult res;
  res.src = src;
  res.dst = dst;
  const auto path = topo.route(src, dst);
  if (path.intra_host) {
    res.reached_destination = true;
    return res;
  }
  // Source-side NIC faults block everything.
  const bool src_blocked =
      component_blocked(faults, {sim::ComponentKind::kRnic, src.value()}, t) ||
      component_blocked(faults,
                        {sim::ComponentKind::kHost,
                         topo.host_of(src).value()}, t);

  bool alive = !src_blocked;
  double rtt = 2.0;  // host stack
  // Hop k: traverse link k, arrive at switch k (or the destination NIC for
  // the final link).
  for (std::size_t k = 0; k < path.links.size(); ++k) {
    TracerouteHop hop;
    hop.link = path.links[k];
    const bool last = k + 1 == path.links.size();
    if (!last) hop.sw = path.switches[k];

    if (alive) {
      alive = !component_blocked(
          faults, {sim::ComponentKind::kPhysicalLink, hop.link.value()}, t);
      rtt += 2.0 * topo.config().link_latency_us;
      rtt += component_extra_latency(
          faults, {sim::ComponentKind::kPhysicalLink, hop.link.value()}, t);
    }
    if (alive && hop.sw) {
      alive = !component_blocked(
          faults, {sim::ComponentKind::kPhysicalSwitch, hop.sw->value()}, t);
      rtt += 2.0 * topo.config().switch_latency_us;
    }
    if (alive && last) {
      alive = !component_blocked(
                  faults, {sim::ComponentKind::kRnic, dst.value()}, t) &&
              !component_blocked(faults,
                                 {sim::ComponentKind::kHost,
                                  topo.host_of(dst).value()}, t);
    }
    hop.responded = alive;
    hop.rtt_us = alive ? rtt : 0.0;
    res.hops.push_back(hop);
  }
  res.reached_destination = alive;
  return res;
}

TracerouteResult traceroute(const topo::Topology& topo,
                            const sim::FaultInjector& faults, RnicId src,
                            RnicId dst, SimTime t,
                            double hop_loss_probability, RngStream* rng) {
  TracerouteResult res = traceroute(topo, faults, src, dst, t);
  if (hop_loss_probability <= 0.0 || rng == nullptr) return res;
  for (std::size_t k = 0; k < res.hops.size(); ++k) {
    if (!res.hops[k].responded) continue;
    if (rng->uniform() < hop_loss_probability) {
      res.hops[k].responded = false;
      res.hops[k].rtt_us = 0.0;
      if (k + 1 == res.hops.size()) res.reached_destination = false;
    }
  }
  return res;
}

}  // namespace skh::probe
