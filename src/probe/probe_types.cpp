#include "probe/probe_types.h"

namespace skh::probe {

std::vector<EndpointPair> full_mesh_pairs(
    const std::vector<Endpoint>& endpoints) {
  std::vector<EndpointPair> out;
  for (const Endpoint& s : endpoints) {
    for (const Endpoint& d : endpoints) {
      if (s.container == d.container) continue;  // intra-host rides NVLink
      out.push_back(EndpointPair{s, d});
    }
  }
  return out;
}

}  // namespace skh::probe
