// The gray measurement plane: a lossy, lying channel between the sidecar
// agents and the analyzer.
//
// Production telemetry pipelines fail in ways indistinguishable from the
// network faults they are supposed to surface (SprayCheck): collector
// backpressure drops responses, retransmissions duplicate them, queueing
// delays reorder them, NTP drift skews timestamps, and bit flips corrupt
// RTT samples. The channel applies a seed-deterministic
// sim::TelemetryFaultPlan to every probe round BEFORE the analyzer sees
// it, so the detector's defenses (sequence-number rejection, window
// quorum, robust-scale clamp) are exercised against realistic lies. With
// an empty plan the channel is a strict pass-through that draws zero
// random numbers — existing seeds replay bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "obs/context.h"
#include "probe/probe_types.h"
#include "sim/fault.h"

namespace skh::probe {

/// What the channel did to the rounds that crossed it.
struct TelemetryChannelCounters {
  std::uint64_t results_dropped = 0;     ///< responses lost in the plane
  std::uint64_t results_duplicated = 0;  ///< extra copies delivered
  std::uint64_t results_delayed = 0;     ///< held a round, delivered late
  std::uint64_t timestamps_skewed = 0;   ///< sent_at shifted backwards
  std::uint64_t rtt_corrupted = 0;       ///< RTT multiplied into an outlier
};

class TelemetryChannel {
 public:
  /// Honest channel: pure pass-through, no RNG draws.
  TelemetryChannel() : rng_(0) {}
  TelemetryChannel(sim::TelemetryFaultPlan plan, RngStream rng)
      : plan_(std::move(plan)), rng_(rng) {}

  void attach_obs(obs::Context* ctx);

  /// Apply the plan to one probe round in place: drop, corrupt, skew,
  /// duplicate, and delay results according to the episodes active at
  /// `now`. Results delayed by an earlier round are appended at the end
  /// (i.e. they arrive after newer samples for the same pair).
  void transmit(std::vector<ProbeResult>& round, SimTime now);

  [[nodiscard]] bool blackout_at(SimTime t) const noexcept {
    return plan_.blackout_at(t);
  }
  [[nodiscard]] double hop_loss_at(SimTime t) const noexcept {
    return plan_.magnitude_at(sim::TelemetryFaultKind::kTracerouteHopLoss, t);
  }
  [[nodiscard]] const sim::TelemetryFaultPlan& plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] const TelemetryChannelCounters& counters() const noexcept {
    return counters_;
  }

 private:
  struct Held {
    ProbeResult result;
    SimTime held_at;
  };

  sim::TelemetryFaultPlan plan_;
  RngStream rng_;
  /// Results held back by an active reordering episode, delivered on the
  /// next transmit. Persists across an analyzer blackout: the late
  /// responses greet the restored analyzer, which must stale-reject them.
  std::vector<Held> held_;
  TelemetryChannelCounters counters_;
  obs::Counter m_dropped_;
  obs::Counter m_duplicated_;
  obs::Counter m_delayed_;
  obs::Counter m_skewed_;
  obs::Counter m_corrupted_;
  /// Stage 1 of the ingest-to-verdict latency plane: how long the channel
  /// sat on each result before the analyzer saw it (0 for pass-through,
  /// the hold time for reordering-delayed results). Sim-time seconds.
  obs::Histogram h_delay_s_;
};

}  // namespace skh::probe
