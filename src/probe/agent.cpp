#include "probe/agent.h"

#include <algorithm>
#include <stdexcept>

namespace skh::probe {

void Collector::ingest(const ProbeResult& r) {
  by_pair_[r.pair].push_back(r);
  ++total_;
}

const std::vector<ProbeResult>& Collector::results_for(
    const EndpointPair& pair) const {
  static const std::vector<ProbeResult> kEmpty;
  const auto it = by_pair_.find(pair);
  return it == by_pair_.end() ? kEmpty : it->second;
}

std::vector<EndpointPair> Collector::pairs() const {
  std::vector<EndpointPair> out;
  out.reserve(by_pair_.size());
  for (const auto& [pair, _] : by_pair_) out.push_back(pair);
  std::sort(out.begin(), out.end());
  return out;
}

void Collector::trim_before(SimTime cutoff) {
  for (auto& [pair, results] : by_pair_) {
    const auto it = std::find_if(
        results.begin(), results.end(),
        [&](const ProbeResult& r) { return r.sent_at >= cutoff; });
    total_ -= static_cast<std::size_t>(it - results.begin());
    results.erase(results.begin(), it);
  }
}

void Collector::clear() {
  by_pair_.clear();
  total_ = 0;
}

Agent::Agent(ContainerId owner, std::vector<Endpoint> own_endpoints)
    : owner_(owner), own_endpoints_(std::move(own_endpoints)) {}

void Agent::set_ping_list(std::vector<EndpointPair> pairs) {
  // Sequence numbers survive replans: a pair that persists across a new
  // ping list keeps counting, so the analyzer's duplicate/stale rejection
  // never sees a spurious reset for a live target.
  std::unordered_map<EndpointPair, std::uint64_t> carried_seq;
  carried_seq.reserve(targets_.size());
  for (const auto& t : targets_) carried_seq.emplace(t.pair, t.next_seq);
  targets_.clear();
  for (auto& p : pairs) {
    const bool mine = std::any_of(
        own_endpoints_.begin(), own_endpoints_.end(),
        [&](const Endpoint& e) { return e == p.src; });
    if (!mine) {
      throw std::invalid_argument("set_ping_list: pair source is not ours");
    }
    const auto reg = peer_registered_.find(p.dst.container);
    Target t;
    t.pair = p;
    t.active = reg != peer_registered_.end() && reg->second;
    const auto seq = carried_seq.find(p);
    if (seq != carried_seq.end()) t.next_seq = seq->second;
    targets_.push_back(t);
  }
}

void Agent::activate_destination(ContainerId peer) {
  peer_registered_[peer] = true;
  for (auto& t : targets_) {
    if (t.pair.dst.container != peer) continue;
    t.active = true;
    t.consecutive_failures = 0;
    t.next_attempt = SimTime{};
  }
}

void Agent::deactivate_destination(ContainerId peer) {
  peer_registered_[peer] = false;
  for (auto& t : targets_) {
    if (t.pair.dst.container == peer) t.active = false;
  }
}

void Agent::replace_ping_list(std::vector<EndpointPair> pairs) {
  set_ping_list(std::move(pairs));
}

std::vector<ProbeResult> Agent::run_round(ProbeEngine& engine, SimTime now,
                                          Collector& sink) {
  const EngineConfig& cfg = engine.config();
  const std::size_t threshold = cfg.retry_failure_threshold;
  std::vector<ProbeResult> out;
  out.reserve(targets_.size());
  for (auto& t : targets_) {
    if (!t.active) continue;
    if (threshold > 0 && t.consecutive_failures >= threshold &&
        now < t.next_attempt) {
      continue;  // backed off; retry once next_attempt arrives
    }
    out.push_back(engine.probe(t.pair.src, t.pair.dst, now));
    out.back().seq = t.next_seq++;
    sink.ingest(out.back());
    ++probes_sent_;
    if (out.back().delivered) {
      t.consecutive_failures = 0;
      t.next_attempt = SimTime{};
    } else {
      ++t.consecutive_failures;
      if (threshold > 0 && t.consecutive_failures >= threshold) {
        // Exponential: base * 2^(failures - threshold), clamped to the max.
        SimTime backoff = cfg.retry_backoff_base;
        for (std::size_t k = threshold; k < t.consecutive_failures &&
                                        backoff < cfg.retry_backoff_max;
             ++k) {
          backoff += backoff;
        }
        if (backoff > cfg.retry_backoff_max) backoff = cfg.retry_backoff_max;
        t.next_attempt = now + backoff;
      }
    }
  }
  return out;
}

std::size_t Agent::active_targets() const {
  return static_cast<std::size_t>(
      std::count_if(targets_.begin(), targets_.end(),
                    [](const Target& t) { return t.active; }));
}

std::size_t Agent::backed_off_targets(SimTime now) const {
  return static_cast<std::size_t>(std::count_if(
      targets_.begin(), targets_.end(), [&](const Target& t) {
        return t.active && now < t.next_attempt;
      }));
}

}  // namespace skh::probe
