#include "probe/telemetry.h"

#include <utility>

namespace skh::probe {

namespace {
// Corrupted samples model a bit-flipped or unit-confused RTT: far outside
// any plausible fabric latency, exactly the outlier class the detector's
// robust-scale clamp has to neutralize.
constexpr double kRttCorruptionFactor = 50.0;
}  // namespace

void TelemetryChannel::attach_obs(obs::Context* ctx) {
  if (ctx == nullptr) {
    m_dropped_ = {};
    m_duplicated_ = {};
    m_delayed_ = {};
    m_skewed_ = {};
    m_corrupted_ = {};
    h_delay_s_ = {};
    return;
  }
  auto& r = ctx->registry;
  m_dropped_ = r.bind_counter(r.counter_id("telemetry.results_dropped"));
  m_duplicated_ = r.bind_counter(r.counter_id("telemetry.results_duplicated"));
  m_delayed_ = r.bind_counter(r.counter_id("telemetry.results_delayed"));
  m_skewed_ = r.bind_counter(r.counter_id("telemetry.timestamps_skewed"));
  m_corrupted_ = r.bind_counter(r.counter_id("telemetry.rtt_corrupted"));
  static constexpr double kDelayBounds[] = {1.0, 2.0, 5.0, 10.0,
                                            30.0, 60.0, 120.0};
  h_delay_s_ = r.bind_histogram(
      r.histogram_id("latency.telemetry_delay_s", kDelayBounds));
}

void TelemetryChannel::transmit(std::vector<ProbeResult>& round, SimTime now) {
  if (plan_.empty()) return;
  using K = sim::TelemetryFaultKind;
  const double p_loss = plan_.magnitude_at(K::kResponseLoss, now);
  const double p_dup = plan_.magnitude_at(K::kDuplication, now);
  const double p_delay = plan_.magnitude_at(K::kReordering, now);
  const double skew_s = plan_.magnitude_at(K::kClockSkew, now);
  const double p_corrupt = plan_.magnitude_at(K::kRttCorruption, now);
  const bool any_active =
      p_loss > 0 || p_dup > 0 || p_delay > 0 || skew_s > 0 || p_corrupt > 0;
  if (!any_active && held_.empty()) return;  // honest right now: zero draws

  std::vector<ProbeResult> out;
  std::vector<ProbeResult> dup;
  out.reserve(round.size() + held_.size());
  for (auto& r : round) {
    if (p_loss > 0 && rng_.uniform() < p_loss) {
      ++counters_.results_dropped;
      m_dropped_.inc();
      continue;
    }
    if (p_corrupt > 0 && r.delivered && rng_.uniform() < p_corrupt) {
      r.rtt_us *= kRttCorruptionFactor;
      ++counters_.rtt_corrupted;
      m_corrupted_.inc();
    }
    if (skew_s > 0) {
      r.sent_at -= SimTime::seconds(skew_s);
      ++counters_.timestamps_skewed;
      m_skewed_.inc();
    }
    const bool duplicate = p_dup > 0 && rng_.uniform() < p_dup;
    if (p_delay > 0 && rng_.uniform() < p_delay) {
      held_.push_back(Held{r, now});
      ++counters_.results_delayed;
      m_delayed_.inc();
    } else {
      out.push_back(r);
      h_delay_s_.observe(0.0);
    }
    if (duplicate) {
      dup.push_back(r);  // same seq, sent_at, rtt: a true duplicate
      ++counters_.results_duplicated;
      m_duplicated_.inc();
    }
  }
  // Duplicates land after the originals; results delayed by a PREVIOUS
  // round land last of all, behind newer samples for their pairs. held_
  // is ordered by held_at, so the releasable entries form a prefix.
  out.insert(out.end(), dup.begin(), dup.end());
  std::size_t n_release = 0;
  while (n_release < held_.size() && held_[n_release].held_at < now) {
    out.push_back(held_[n_release].result);
    h_delay_s_.observe((now - held_[n_release].held_at).to_seconds());
    ++n_release;
  }
  held_.erase(held_.begin(),
              held_.begin() + static_cast<std::ptrdiff_t>(n_release));
  round = std::move(out);
}

}  // namespace skh::probe
