// Agent resource-overhead model (Figure 17).
//
// The production agent's CPU and memory converge to ~1% of a core and
// ~35 MB over a container's lifetime: a short startup transient (ping-list
// fetch, registration traffic) decays into a steady state whose level
// scales weakly with the number of active probe targets. The probing-round
// *time* model (Figure 16) charges a fixed per-probe budget on each agent's
// serialized probe loop.
#pragma once

#include <cstddef>

#include "common/time.h"

namespace skh::probe {

struct OverheadSample {
  double cpu_percent = 0.0;
  double memory_mb = 0.0;
};

struct OverheadModelConfig {
  double steady_cpu_percent = 0.85;
  double startup_cpu_percent = 3.5;
  double cpu_per_100_targets = 0.05;
  double base_memory_mb = 33.0;
  double startup_extra_mb = 10.0;
  double memory_per_target_kb = 40.0;
  double startup_tau_s = 120.0;  ///< transient decay constant
};

class AgentOverheadModel {
 public:
  explicit AgentOverheadModel(OverheadModelConfig cfg = {}) : cfg_(cfg) {}

  /// Resource usage `elapsed` after agent start with `active_targets`
  /// concurrently probed destinations.
  [[nodiscard]] OverheadSample sample(SimTime elapsed,
                                      std::size_t active_targets) const;

 private:
  OverheadModelConfig cfg_;
};

/// Per-probe serialized budget on an agent (used by the Fig. 16 round-time
/// model): probe pacing at the production probing frequency, not raw RTT.
/// Calibrated from the paper's full-mesh numbers: 560.25 s for a 512-RNIC
/// task = 8 own endpoints x 504 destinations = 4032 probes per agent
/// => ~139 ms per probe (the same budget reproduces the 1024- and
/// 2048-RNIC full-mesh and basic-list times within ~10%).
inline constexpr double kProbeCostMs = 139.0;

/// Modeled wall time of one probing round for a task: agents probe their
/// target lists in parallel across containers but serially within an agent,
/// so the round time is max over agents of (targets x per-probe cost).
[[nodiscard]] double round_time_seconds(std::size_t max_targets_per_agent,
                                        double probe_cost_ms = kProbeCostMs);

}  // namespace skh::probe
