#include "probe/overhead.h"

#include <cmath>

namespace skh::probe {

OverheadSample AgentOverheadModel::sample(SimTime elapsed,
                                          std::size_t active_targets) const {
  OverheadSample s;
  const double t = std::max(0.0, elapsed.to_seconds());
  const double transient = std::exp(-t / cfg_.startup_tau_s);
  const double target_load =
      static_cast<double>(active_targets) / 100.0;
  s.cpu_percent = cfg_.steady_cpu_percent +
                  cfg_.cpu_per_100_targets * target_load +
                  (cfg_.startup_cpu_percent - cfg_.steady_cpu_percent) *
                      transient;
  s.memory_mb = cfg_.base_memory_mb +
                cfg_.memory_per_target_kb * static_cast<double>(active_targets) /
                    1024.0 +
                cfg_.startup_extra_mb * transient;
  return s;
}

double round_time_seconds(std::size_t max_targets_per_agent,
                          double probe_cost_ms) {
  return static_cast<double>(max_targets_per_agent) * probe_cost_ms / 1e3;
}

}  // namespace skh::probe
