// The per-container probing agent (§6: sidecar container sharing the
// training container's network namespace).
//
// An agent receives its basic ping list from the controller at container
// start but keeps every target *inactive* until the destination container
// registers itself as ready — the incremental activation that prevents
// startup-phase false positives (§5.1). Registration and deregistration are
// driven by the orchestrator's running/stopped callbacks, i.e. by the data
// plane, not the controller.
#pragma once

#include <unordered_map>
#include <vector>

#include "probe/engine.h"
#include "probe/probe_types.h"

namespace skh::probe {

/// Sink receiving probe results (the analyzer's ingestion path).
class Collector {
 public:
  void ingest(const ProbeResult& r);

  [[nodiscard]] const std::vector<ProbeResult>& results_for(
      const EndpointPair& pair) const;
  [[nodiscard]] std::size_t total_results() const noexcept { return total_; }
  [[nodiscard]] std::vector<EndpointPair> pairs() const;
  /// Drop results older than `horizon` before `now` (bounded memory).
  void trim_before(SimTime cutoff);
  void clear();

 private:
  std::unordered_map<EndpointPair, std::vector<ProbeResult>> by_pair_;
  std::size_t total_ = 0;
};

class Agent {
 public:
  Agent(ContainerId owner, std::vector<Endpoint> own_endpoints);

  /// Install the (inactive) ping list; pairs whose source is not one of this
  /// agent's endpoints are rejected with std::invalid_argument.
  void set_ping_list(std::vector<EndpointPair> pairs);

  /// Registration: activate all targets destined to `peer`'s endpoints.
  /// Also clears any retry backoff toward the peer — a reregistered target
  /// gets a fresh start, unlike a still-unreachable one.
  void activate_destination(ContainerId peer);
  /// Deregistration (peer stopping/crashed): deactivate its targets.
  void deactivate_destination(ContainerId peer);

  /// Replace the target set with `pairs` (runtime skeleton optimization);
  /// activation states of known destinations are preserved.
  void replace_ping_list(std::vector<EndpointPair> pairs);

  /// Probe every active target once; results go to `sink` and are also
  /// returned for immediate analysis (saves the analyzer a rescan). When the
  /// engine's retry backoff is enabled, targets past the consecutive-failure
  /// threshold are skipped until their next scheduled attempt.
  std::vector<ProbeResult> run_round(ProbeEngine& engine, SimTime now,
                                     Collector& sink);

  [[nodiscard]] ContainerId owner() const noexcept { return owner_; }
  [[nodiscard]] std::size_t total_targets() const noexcept {
    return targets_.size();
  }
  [[nodiscard]] std::size_t active_targets() const;
  /// Active targets currently held in retry backoff (waiting, not probing).
  [[nodiscard]] std::size_t backed_off_targets(SimTime now) const;
  [[nodiscard]] std::size_t probes_sent() const noexcept {
    return probes_sent_;
  }

 private:
  struct Target {
    EndpointPair pair;
    bool active = false;
    std::size_t consecutive_failures = 0;
    SimTime next_attempt;  ///< probing allowed once now >= next_attempt
    std::uint64_t next_seq = 1;  ///< next ProbeResult.seq for this pair
  };

  ContainerId owner_;
  std::vector<Endpoint> own_endpoints_;
  std::vector<Target> targets_;
  std::unordered_map<ContainerId, bool> peer_registered_;
  std::size_t probes_sent_ = 0;
};

}  // namespace skh::probe
