// Traceroute probing (§5.3): the underlay host agent replays a pair's ECMP
// path hop by hop, reporting how far probes get. SkeletonHunter uses this
// to disambiguate which hop of an unreachable path is dead when tomography
// voting ties (the scheme shared with R-Pingmesh and 007).
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "sim/fault.h"
#include "topo/topology.h"

namespace skh::probe {

struct TracerouteHop {
  LinkId link;            ///< link traversed to reach this hop
  std::optional<SwitchId> sw;  ///< switch reached (nullopt = destination NIC)
  bool responded = false;
  double rtt_us = 0.0;    ///< cumulative RTT to this hop when it responded
};

struct TracerouteResult {
  RnicId src;
  RnicId dst;
  std::vector<TracerouteHop> hops;
  bool reached_destination = false;

  /// Index of the first silent hop, or nullopt if all responded.
  [[nodiscard]] std::optional<std::size_t> first_dead_hop() const;
};

/// Replay the ECMP path of (src, dst) hop by hop at time `t`, accumulating
/// per-hop fault state: a hop responds iff every link/switch up to it is
/// passable (hard unreachability blocks; loss/latency effects do not stop
/// a traceroute, which retries per hop).
[[nodiscard]] TracerouteResult traceroute(const topo::Topology& topo,
                                          const sim::FaultInjector& faults,
                                          RnicId src, RnicId dst, SimTime t);

/// Gray-telemetry variant: each hop that WOULD respond loses its reply
/// independently with `hop_loss_probability` (the hop still forwards
/// transit traffic — only the per-hop response vanishes). A lost reply on
/// the final hop also clears reached_destination: the tracer cannot
/// confirm arrival it never heard about. With probability 0 this draws
/// nothing and matches the honest overload exactly.
[[nodiscard]] TracerouteResult traceroute(const topo::Topology& topo,
                                          const sim::FaultInjector& faults,
                                          RnicId src, RnicId dst, SimTime t,
                                          double hop_loss_probability,
                                          RngStream* rng);

}  // namespace skh::probe
