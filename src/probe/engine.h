// The probe engine: simulates one RDMA ping through overlay and underlay.
//
// A probe from endpoint S to endpoint D
//   1. walks S's and D's logical overlay chains (flow-table rules; a missing
//      rule or loop drops the probe),
//   2. rides the ECMP-selected underlay path of (S.rnic, D.rnic),
//   3. accumulates per-component degradation from the fault injector —
//      extra latency, loss probability, hard unreachability — for every
//      physical link/switch, the two RNICs, the two hosts (kernel/board/
//      config scope), the two virtual switches, and the two containers,
//   4. adds the RNIC-offload slow-path penalty when the offloaded flow
//      tables have been invalidated (the Figure 18 case), and
//   5. returns an RTT with multiplicative log-normal jitter, or a drop.
#pragma once

#include <unordered_map>

#include "common/rng.h"
#include "obs/context.h"
#include "overlay/overlay.h"
#include "probe/probe_types.h"
#include "sim/fault.h"
#include "topo/topology.h"

namespace skh::probe {

struct EngineConfig {
  double host_stack_us = 2.0;      ///< per-end software/NIC processing
  double jitter_sigma = 0.06;      ///< log-normal RTT jitter
  double slow_path_extra_us = 104.0;  ///< RTT penalty, offload invalidated
                                      ///< (Fig. 18: 16us -> 120us)
  std::size_t max_overlay_steps = 32;  ///< loop guard for the chain walk

  // --- per-target retry/backoff (churn reconciliation) ---------------------
  // A target that keeps failing is either genuinely unreachable (a fault the
  // detector must keep sampling to confirm) or deregistered-then-reregistered
  // churn the control plane will resolve. With backoff enabled, an agent
  // stops hammering a target after `retry_failure_threshold` consecutive
  // failures and retries on an exponential schedule instead; a
  // re-registration (activate_destination) clears the backoff immediately,
  // which is what distinguishes the two. 0 disables backoff (default): the
  // anomaly detector's loss-streak and unconnectivity rules assume
  // continuous per-round sampling.
  std::size_t retry_failure_threshold = 0;
  SimTime retry_backoff_base = SimTime::seconds(5);  ///< first backoff delay
  SimTime retry_backoff_max = SimTime::minutes(2);   ///< backoff ceiling

  // --- routing mode (path diversity) ---------------------------------------
  // How a flow maps probes onto its equal-cost members (see
  // topo::RoutingMode). kStaticEcmp keeps the historical single-path
  // behavior and draws the exact same RNG stream as before the knob
  // existed, so pre-existing seeds replay bit-identically. Spray and
  // adaptive selection are hash-driven and consume no RNG either.
  topo::RoutingMode routing_mode = topo::RoutingMode::kStaticEcmp;
  std::uint32_t spray_ways = 8;  ///< max members a sprayed flow fans over
};

class ProbeEngine {
 public:
  ProbeEngine(const topo::Topology& topo,
              const overlay::OverlayNetwork& overlay,
              const sim::FaultInjector& faults, RngStream rng,
              EngineConfig cfg = {});

  /// Attach the observability context (nullptr detaches). Binds this
  /// engine's metric handles on the calling thread — the thread that will
  /// drive `probe()`.
  void attach_obs(obs::Context* ctx);

  /// Send one probe at simulated time `t`.
  [[nodiscard]] ProbeResult probe(Endpoint src, Endpoint dst, SimTime t);

  /// Healthy-baseline RTT of the pair (no faults, no jitter); used by tests
  /// and the case-study bench.
  [[nodiscard]] double baseline_rtt_us(Endpoint src, Endpoint dst) const;

  [[nodiscard]] const EngineConfig& config() const noexcept { return cfg_; }

 private:
  struct PathDegradation {
    bool unreachable = false;
    double extra_latency_us = 0.0;
    double delivery_probability = 1.0;
  };

  /// True iff the overlay forwarding chain from src to dst completes.
  [[nodiscard]] bool overlay_reachable(Endpoint src, Endpoint dst) const;
  [[nodiscard]] PathDegradation degradation(Endpoint src, Endpoint dst,
                                            const topo::Path& path,
                                            SimTime t) const;
  void accumulate(sim::ComponentRef ref, SimTime t, PathDegradation& d) const;

  /// Pick the equal-cost member this probe rides, per cfg_.routing_mode.
  /// Hash/state driven — never draws from rng_.
  [[nodiscard]] std::uint32_t select_path(RnicId src, RnicId dst, SimTime t);
  /// Any active probe-visible fault on the path's links or switches?
  [[nodiscard]] bool path_faulted(const topo::Path& path, SimTime t) const;
  void note_path_used(std::uint64_t flow_key, std::uint32_t path_id);

  const topo::Topology& topo_;
  const overlay::OverlayNetwork& overlay_;
  const sim::FaultInjector& faults_;
  RngStream rng_;
  EngineConfig cfg_;

  // Per-flow routing state, keyed by packed (src rnic, dst rnic). Spray
  // keeps a packet counter, adaptive the currently pinned member. Neither
  // is part of checkpoints (the engine is a sidecar that keeps running
  // through analyzer blackouts), and neither affects the RNG stream.
  std::unordered_map<std::uint64_t, std::uint32_t> spray_counter_;
  std::unordered_map<std::uint64_t, std::uint32_t> adaptive_path_;
  std::unordered_map<std::uint64_t, std::uint64_t> paths_seen_;

  obs::Context* obs_ = nullptr;
  obs::Counter m_issued_;
  obs::Counter m_delivered_;
  obs::Counter m_drop_overlay_;
  obs::Counter m_drop_unreachable_;
  obs::Counter m_drop_loss_;
  obs::Counter m_paths_used_;
  obs::Histogram m_rtt_us_;
};

}  // namespace skh::probe
