// Probe primitives shared by the engine, agents, and analyzer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace skh::probe {

/// Outcome of one RDMA ping.
struct ProbeResult {
  EndpointPair pair;
  SimTime sent_at;
  bool delivered = false;
  double rtt_us = 0.0;  ///< valid iff delivered
  /// Monotonic per-(agent, pair) sequence number stamped by the sending
  /// agent; lets the analyzer reject duplicated and reordered deliveries
  /// from a gray measurement plane. 0 = unsequenced (raw engine probes).
  std::uint64_t seq = 0;
  /// Which equal-cost member the probe rode: an index into the pair's
  /// `topo::Topology::equal_cost_paths(src, dst)` set (stable by the path-id
  /// contract). Single-path regimes and static ECMP stamp the selected
  /// member; spray/adaptive vary it per packet/flow.
  std::uint32_t path_id = 0;
};

/// Full-mesh ping list: every ordered (src, dst) pair of distinct
/// containers' endpoints within one task — the Pingmesh baseline.
[[nodiscard]] std::vector<EndpointPair> full_mesh_pairs(
    const std::vector<Endpoint>& endpoints);

/// Rail-pruned "basic" ping list (§5.1 preload phase): full mesh restricted
/// to pairs whose RNICs hold the same rank within their containers — the
/// 1/R scale reduction on R-rail hosts. `rank_of` must return the RNIC's
/// rank (rail) within its container.
template <typename RankFn>
[[nodiscard]] std::vector<EndpointPair> rail_pruned_pairs(
    const std::vector<Endpoint>& endpoints, RankFn&& rank_of) {
  std::vector<EndpointPair> out;
  for (const Endpoint& s : endpoints) {
    for (const Endpoint& d : endpoints) {
      if (s.container == d.container) continue;
      if (rank_of(s) != rank_of(d)) continue;
      out.push_back(EndpointPair{s, d});
    }
  }
  return out;
}

}  // namespace skh::probe
