#include "probe/engine.h"

#include <cmath>
#include <unordered_set>

namespace skh::probe {

ProbeEngine::ProbeEngine(const topo::Topology& topo,
                         const overlay::OverlayNetwork& overlay,
                         const sim::FaultInjector& faults, RngStream rng,
                         EngineConfig cfg)
    : topo_(topo), overlay_(overlay), faults_(faults), rng_(std::move(rng)),
      cfg_(cfg) {}

bool ProbeEngine::overlay_reachable(Endpoint src, Endpoint dst) const {
  if (!overlay_.attached(src) || !overlay_.attached(dst)) return false;
  const VPortId goal = overlay_.chain_of(dst).netns;
  VPortId current = overlay_.chain_of(src).netns;
  std::unordered_set<VPortId> visited{current};
  for (std::size_t step = 0; step < cfg_.max_overlay_steps; ++step) {
    const auto next = overlay_.next_hop(src, dst, current);
    if (!next) return false;  // broken chain
    if (*next == goal) return true;
    if (visited.contains(*next)) return false;  // loop
    visited.insert(*next);
    current = *next;
  }
  return false;  // runaway chain counts as unreachable
}

void ProbeEngine::accumulate(sim::ComponentRef ref, SimTime t,
                             PathDegradation& d) const {
  for (const sim::Fault* f : faults_.active_on(ref, t)) {
    if (!sim::issue_info(f->type).probe_visible) continue;
    if (f->effect.unreachable) d.unreachable = true;
    d.extra_latency_us += f->effect.extra_latency_us;
    d.delivery_probability *= 1.0 - f->effect.loss_probability;
  }
}

ProbeEngine::PathDegradation ProbeEngine::degradation(Endpoint src,
                                                      Endpoint dst,
                                                      SimTime t) const {
  PathDegradation d;
  const HostId src_host = topo_.host_of(src.rnic);
  const HostId dst_host = topo_.host_of(dst.rnic);
  const auto path = topo_.route(src.rnic, dst.rnic);
  for (LinkId l : path.links) {
    accumulate({sim::ComponentKind::kPhysicalLink, l.value()}, t, d);
  }
  for (SwitchId s : path.switches) {
    accumulate({sim::ComponentKind::kPhysicalSwitch, s.value()}, t, d);
  }
  for (RnicId r : {src.rnic, dst.rnic}) {
    accumulate({sim::ComponentKind::kRnic, r.value()}, t, d);
  }
  for (HostId h : {src_host, dst_host}) {
    accumulate({sim::ComponentKind::kHost, h.value()}, t, d);
    accumulate({sim::ComponentKind::kVSwitch, h.value()}, t, d);
  }
  for (ContainerId c : {src.container, dst.container}) {
    accumulate({sim::ComponentKind::kContainer, c.value()}, t, d);
  }
  // RNIC offload desynchronized from OVS: packets take the software slow
  // path on that side (Figure 18).
  for (RnicId r : {src.rnic, dst.rnic}) {
    if (overlay_.offload_desynced(r)) {
      d.extra_latency_us += cfg_.slow_path_extra_us;
      d.delivery_probability *= 1.0 - 0.0008;  // the "<0.1% loss" of Fig. 18
    }
  }
  // All extra-latency figures are RTT-level penalties applied once per
  // degraded component (the probe crosses each faulty component on both
  // directions, and the published symptom numbers are RTT observations).
  return d;
}

double ProbeEngine::baseline_rtt_us(Endpoint src, Endpoint dst) const {
  const auto path = topo_.route(src.rnic, dst.rnic);
  return 2.0 * (path.one_way_latency_us + cfg_.host_stack_us);
}

ProbeResult ProbeEngine::probe(Endpoint src, Endpoint dst, SimTime t) {
  ProbeResult res;
  res.pair = EndpointPair{src, dst};
  res.sent_at = t;

  if (!overlay_reachable(src, dst)) return res;  // dropped in the overlay

  const PathDegradation d = degradation(src, dst, t);
  if (d.unreachable) return res;
  if (!rng_.bernoulli(d.delivery_probability)) return res;

  const double base = baseline_rtt_us(src, dst) + d.extra_latency_us;
  res.rtt_us = base * std::exp(rng_.normal(0.0, cfg_.jitter_sigma));
  res.delivered = true;
  return res;
}

}  // namespace skh::probe
