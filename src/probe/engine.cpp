#include "probe/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace skh::probe {

ProbeEngine::ProbeEngine(const topo::Topology& topo,
                         const overlay::OverlayNetwork& overlay,
                         const sim::FaultInjector& faults, RngStream rng,
                         EngineConfig cfg)
    : topo_(topo), overlay_(overlay), faults_(faults), rng_(std::move(rng)),
      cfg_(cfg) {}

void ProbeEngine::attach_obs(obs::Context* ctx) {
  obs_ = ctx;
  if (ctx == nullptr) {
    m_issued_ = {};
    m_delivered_ = {};
    m_drop_overlay_ = {};
    m_drop_unreachable_ = {};
    m_drop_loss_ = {};
    m_paths_used_ = {};
    m_rtt_us_ = {};
    return;
  }
  auto& r = ctx->registry;
  m_issued_ = r.bind_counter(r.counter_id("probe.issued"));
  m_delivered_ = r.bind_counter(r.counter_id("probe.delivered"));
  m_drop_overlay_ = r.bind_counter(r.counter_id("probe.dropped.overlay"));
  m_drop_unreachable_ =
      r.bind_counter(r.counter_id("probe.dropped.unreachable"));
  m_drop_loss_ = r.bind_counter(r.counter_id("probe.dropped.loss"));
  m_paths_used_ = r.bind_counter(r.counter_id("probe.paths_used"));
  static constexpr double kRttBoundsUs[] = {10.0,  20.0,  50.0, 100.0,
                                            200.0, 500.0, 1000.0};
  m_rtt_us_ = r.bind_histogram(r.histogram_id("probe.rtt_us", kRttBoundsUs));
}

bool ProbeEngine::overlay_reachable(Endpoint src, Endpoint dst) const {
  if (!overlay_.attached(src) || !overlay_.attached(dst)) return false;
  const VPortId goal = overlay_.chain_of(dst).netns;
  VPortId current = overlay_.chain_of(src).netns;
  std::unordered_set<VPortId> visited{current};
  for (std::size_t step = 0; step < cfg_.max_overlay_steps; ++step) {
    const auto next = overlay_.next_hop(src, dst, current);
    if (!next) return false;  // broken chain
    if (*next == goal) return true;
    if (visited.contains(*next)) return false;  // loop
    visited.insert(*next);
    current = *next;
  }
  return false;  // runaway chain counts as unreachable
}

void ProbeEngine::accumulate(sim::ComponentRef ref, SimTime t,
                             PathDegradation& d) const {
  for (const sim::Fault* f : faults_.active_on(ref, t)) {
    if (!sim::issue_info(f->type).probe_visible) continue;
    if (f->effect.unreachable) d.unreachable = true;
    d.extra_latency_us += f->effect.extra_latency_us;
    d.delivery_probability *= 1.0 - f->effect.loss_probability;
  }
}

ProbeEngine::PathDegradation ProbeEngine::degradation(
    Endpoint src, Endpoint dst, const topo::Path& path, SimTime t) const {
  PathDegradation d;
  const HostId src_host = topo_.host_of(src.rnic);
  const HostId dst_host = topo_.host_of(dst.rnic);
  for (LinkId l : path.links) {
    accumulate({sim::ComponentKind::kPhysicalLink, l.value()}, t, d);
  }
  for (SwitchId s : path.switches) {
    accumulate({sim::ComponentKind::kPhysicalSwitch, s.value()}, t, d);
  }
  for (RnicId r : {src.rnic, dst.rnic}) {
    accumulate({sim::ComponentKind::kRnic, r.value()}, t, d);
  }
  for (HostId h : {src_host, dst_host}) {
    accumulate({sim::ComponentKind::kHost, h.value()}, t, d);
    accumulate({sim::ComponentKind::kVSwitch, h.value()}, t, d);
  }
  for (ContainerId c : {src.container, dst.container}) {
    accumulate({sim::ComponentKind::kContainer, c.value()}, t, d);
  }
  // RNIC offload desynchronized from OVS: packets take the software slow
  // path on that side (Figure 18).
  for (RnicId r : {src.rnic, dst.rnic}) {
    if (overlay_.offload_desynced(r)) {
      d.extra_latency_us += cfg_.slow_path_extra_us;
      d.delivery_probability *= 1.0 - 0.0008;  // the "<0.1% loss" of Fig. 18
    }
  }
  // All extra-latency figures are RTT-level penalties applied once per
  // degraded component (the probe crosses each faulty component on both
  // directions, and the published symptom numbers are RTT observations).
  return d;
}

double ProbeEngine::baseline_rtt_us(Endpoint src, Endpoint dst) const {
  const auto path = topo_.route(src.rnic, dst.rnic);
  return 2.0 * (path.one_way_latency_us + cfg_.host_stack_us);
}

bool ProbeEngine::path_faulted(const topo::Path& path, SimTime t) const {
  const auto hit = [&](sim::ComponentRef ref) {
    for (const sim::Fault* f : faults_.active_on(ref, t)) {
      if (sim::issue_info(f->type).probe_visible) return true;
    }
    return false;
  };
  for (LinkId l : path.links) {
    if (hit({sim::ComponentKind::kPhysicalLink, l.value()})) return true;
  }
  for (SwitchId s : path.switches) {
    if (hit({sim::ComponentKind::kPhysicalSwitch, s.value()})) return true;
  }
  return false;
}

std::uint32_t ProbeEngine::select_path(RnicId src, RnicId dst, SimTime t) {
  switch (cfg_.routing_mode) {
    case topo::RoutingMode::kStaticEcmp:
      return topo_.static_path_id(src, dst);
    case topo::RoutingMode::kSpray: {
      const std::uint32_t n = topo_.num_paths(src, dst);
      if (n <= 1) return 0;
      const std::uint32_t ways =
          std::min(std::max<std::uint32_t>(cfg_.spray_ways, 1), n);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
      // Per-packet member choice: the production ECMP hash re-salted by a
      // per-flow packet counter. Deterministic, and spread evenly over an
      // evenly-subsampled `ways` of the n members.
      const std::uint32_t pkt = spray_counter_[key]++;
      const std::uint32_t member = static_cast<std::uint32_t>(
          topo::ecmp_hash(src.value(), dst.value(), 0x53505259u + pkt) %
          ways);
      return member * n / ways;
    }
    case topo::RoutingMode::kAdaptive: {
      const std::uint32_t n = topo_.num_paths(src, dst);
      if (n <= 1) return 0;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
      auto [it, fresh] =
          adaptive_path_.try_emplace(key, topo_.static_path_id(src, dst));
      std::uint32_t cur = it->second;
      // Re-hash on a fault signal: walk to the next clean member. When every
      // member is degraded the flow stays put (moving cannot help).
      if (path_faulted(topo_.route_via(src, dst, cur), t)) {
        for (std::uint32_t step = 1; step < n; ++step) {
          const std::uint32_t cand = (cur + step) % n;
          if (!path_faulted(topo_.route_via(src, dst, cand), t)) {
            cur = cand;
            break;
          }
        }
        it->second = cur;
      }
      return cur;
    }
  }
  return 0;
}

void ProbeEngine::note_path_used(std::uint64_t flow_key,
                                 std::uint32_t path_id) {
  // "probe.paths_used" counts distinct (flow, member) combinations — 1x the
  // flow count under static routing, up to spray_ways-x under spray.
  std::uint64_t& mask = paths_seen_[flow_key];
  const std::uint64_t bit = 1ull << (path_id & 63u);
  if ((mask & bit) == 0) {
    mask |= bit;
    m_paths_used_.inc();
  }
}

ProbeResult ProbeEngine::probe(Endpoint src, Endpoint dst, SimTime t) {
  ProbeResult res;
  res.pair = EndpointPair{src, dst};
  res.sent_at = t;
  res.path_id = select_path(src.rnic, dst.rnic, t);
  m_issued_.inc();
  if (obs_ != nullptr) {
    note_path_used(
        (static_cast<std::uint64_t>(src.rnic.value()) << 32) |
            dst.rnic.value(),
        res.path_id);
  }

  if (!overlay_reachable(src, dst)) {  // dropped in the overlay
    m_drop_overlay_.inc();
    if (obs_ != nullptr) {
      obs_->tracer.instant("probe", "drop.overlay", t, src.container.value(),
                           dst.container.value());
    }
    return res;
  }

  const topo::Path path = topo_.route_via(src.rnic, dst.rnic, res.path_id);
  const PathDegradation d = degradation(src, dst, path, t);
  if (d.unreachable) {
    m_drop_unreachable_.inc();
    if (obs_ != nullptr) {
      obs_->tracer.instant("probe", "drop.unreachable", t,
                           src.container.value(), dst.container.value());
    }
    return res;
  }
  if (!rng_.bernoulli(d.delivery_probability)) {
    m_drop_loss_.inc();
    if (obs_ != nullptr) {
      obs_->tracer.instant("probe", "drop.loss", t, src.container.value(),
                           dst.container.value(), d.delivery_probability);
    }
    return res;
  }

  // All equal-cost members share the same hop counts, so the healthy
  // baseline is mode-independent; only the degradation differs per member.
  const double base =
      2.0 * (path.one_way_latency_us + cfg_.host_stack_us) +
      d.extra_latency_us;
  res.rtt_us = base * std::exp(rng_.normal(0.0, cfg_.jitter_sigma));
  res.delivered = true;
  m_delivered_.inc();
  m_rtt_us_.observe(res.rtt_us);
  if (obs_ != nullptr && obs_->tracer.enabled()) {
    // Probe flight rendered as a span from send to ack, sized by the RTT.
    obs_->tracer.span("probe", "rtt", t, t + SimTime::micros(res.rtt_us),
                      src.container.value(), dst.container.value(),
                      res.rtt_us);
  }
  return res;
}

}  // namespace skh::probe
