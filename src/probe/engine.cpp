#include "probe/engine.h"

#include <cmath>
#include <unordered_set>

namespace skh::probe {

ProbeEngine::ProbeEngine(const topo::Topology& topo,
                         const overlay::OverlayNetwork& overlay,
                         const sim::FaultInjector& faults, RngStream rng,
                         EngineConfig cfg)
    : topo_(topo), overlay_(overlay), faults_(faults), rng_(std::move(rng)),
      cfg_(cfg) {}

void ProbeEngine::attach_obs(obs::Context* ctx) {
  obs_ = ctx;
  if (ctx == nullptr) {
    m_issued_ = {};
    m_delivered_ = {};
    m_drop_overlay_ = {};
    m_drop_unreachable_ = {};
    m_drop_loss_ = {};
    m_rtt_us_ = {};
    return;
  }
  auto& r = ctx->registry;
  m_issued_ = r.bind_counter(r.counter_id("probe.issued"));
  m_delivered_ = r.bind_counter(r.counter_id("probe.delivered"));
  m_drop_overlay_ = r.bind_counter(r.counter_id("probe.dropped.overlay"));
  m_drop_unreachable_ =
      r.bind_counter(r.counter_id("probe.dropped.unreachable"));
  m_drop_loss_ = r.bind_counter(r.counter_id("probe.dropped.loss"));
  static constexpr double kRttBoundsUs[] = {10.0,  20.0,  50.0, 100.0,
                                            200.0, 500.0, 1000.0};
  m_rtt_us_ = r.bind_histogram(r.histogram_id("probe.rtt_us", kRttBoundsUs));
}

bool ProbeEngine::overlay_reachable(Endpoint src, Endpoint dst) const {
  if (!overlay_.attached(src) || !overlay_.attached(dst)) return false;
  const VPortId goal = overlay_.chain_of(dst).netns;
  VPortId current = overlay_.chain_of(src).netns;
  std::unordered_set<VPortId> visited{current};
  for (std::size_t step = 0; step < cfg_.max_overlay_steps; ++step) {
    const auto next = overlay_.next_hop(src, dst, current);
    if (!next) return false;  // broken chain
    if (*next == goal) return true;
    if (visited.contains(*next)) return false;  // loop
    visited.insert(*next);
    current = *next;
  }
  return false;  // runaway chain counts as unreachable
}

void ProbeEngine::accumulate(sim::ComponentRef ref, SimTime t,
                             PathDegradation& d) const {
  for (const sim::Fault* f : faults_.active_on(ref, t)) {
    if (!sim::issue_info(f->type).probe_visible) continue;
    if (f->effect.unreachable) d.unreachable = true;
    d.extra_latency_us += f->effect.extra_latency_us;
    d.delivery_probability *= 1.0 - f->effect.loss_probability;
  }
}

ProbeEngine::PathDegradation ProbeEngine::degradation(Endpoint src,
                                                      Endpoint dst,
                                                      SimTime t) const {
  PathDegradation d;
  const HostId src_host = topo_.host_of(src.rnic);
  const HostId dst_host = topo_.host_of(dst.rnic);
  const auto path = topo_.route(src.rnic, dst.rnic);
  for (LinkId l : path.links) {
    accumulate({sim::ComponentKind::kPhysicalLink, l.value()}, t, d);
  }
  for (SwitchId s : path.switches) {
    accumulate({sim::ComponentKind::kPhysicalSwitch, s.value()}, t, d);
  }
  for (RnicId r : {src.rnic, dst.rnic}) {
    accumulate({sim::ComponentKind::kRnic, r.value()}, t, d);
  }
  for (HostId h : {src_host, dst_host}) {
    accumulate({sim::ComponentKind::kHost, h.value()}, t, d);
    accumulate({sim::ComponentKind::kVSwitch, h.value()}, t, d);
  }
  for (ContainerId c : {src.container, dst.container}) {
    accumulate({sim::ComponentKind::kContainer, c.value()}, t, d);
  }
  // RNIC offload desynchronized from OVS: packets take the software slow
  // path on that side (Figure 18).
  for (RnicId r : {src.rnic, dst.rnic}) {
    if (overlay_.offload_desynced(r)) {
      d.extra_latency_us += cfg_.slow_path_extra_us;
      d.delivery_probability *= 1.0 - 0.0008;  // the "<0.1% loss" of Fig. 18
    }
  }
  // All extra-latency figures are RTT-level penalties applied once per
  // degraded component (the probe crosses each faulty component on both
  // directions, and the published symptom numbers are RTT observations).
  return d;
}

double ProbeEngine::baseline_rtt_us(Endpoint src, Endpoint dst) const {
  const auto path = topo_.route(src.rnic, dst.rnic);
  return 2.0 * (path.one_way_latency_us + cfg_.host_stack_us);
}

ProbeResult ProbeEngine::probe(Endpoint src, Endpoint dst, SimTime t) {
  ProbeResult res;
  res.pair = EndpointPair{src, dst};
  res.sent_at = t;
  m_issued_.inc();

  if (!overlay_reachable(src, dst)) {  // dropped in the overlay
    m_drop_overlay_.inc();
    if (obs_ != nullptr) {
      obs_->tracer.instant("probe", "drop.overlay", t, src.container.value(),
                           dst.container.value());
    }
    return res;
  }

  const PathDegradation d = degradation(src, dst, t);
  if (d.unreachable) {
    m_drop_unreachable_.inc();
    if (obs_ != nullptr) {
      obs_->tracer.instant("probe", "drop.unreachable", t,
                           src.container.value(), dst.container.value());
    }
    return res;
  }
  if (!rng_.bernoulli(d.delivery_probability)) {
    m_drop_loss_.inc();
    if (obs_ != nullptr) {
      obs_->tracer.instant("probe", "drop.loss", t, src.container.value(),
                           dst.container.value(), d.delivery_probability);
    }
    return res;
  }

  const double base = baseline_rtt_us(src, dst) + d.extra_latency_us;
  res.rtt_us = base * std::exp(rng_.normal(0.0, cfg_.jitter_sigma));
  res.delivered = true;
  m_delivered_.inc();
  m_rtt_us_.observe(res.rtt_us);
  if (obs_ != nullptr && obs_->tracer.enabled()) {
    // Probe flight rendered as a span from send to ack, sized by the RTT.
    obs_->tracer.span("probe", "rtt", t, t + SimTime::micros(res.rtt_us),
                      src.container.value(), dst.container.value(),
                      res.rtt_us);
  }
  return res;
}

}  // namespace skh::probe
