// Deterministic random-number streams.
//
// Every stochastic element of the simulation (container lifetimes, probe
// jitter, fault arrival, ...) draws from a named RngStream derived from a
// single campaign seed, so experiments reproduce bit-identically across runs
// and the per-subsystem draws are independent of each other's call order.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace skh {

/// Stable 64-bit FNV-1a hash used to derive sub-stream seeds from names.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combine two 64-bit values through a splitmix64-style finalizer. The
/// building block of all seed derivation: stream forks, campaign splitting.
[[nodiscard]] constexpr std::uint64_t seed_mix(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  std::uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive the `index`-th campaign seed from one master seed. A pure
/// function of (master, index): campaign i receives the same seed no
/// matter how many campaigns run, on how many threads, or in what order —
/// the keystone of `runner::run_many`'s bit-identical parallelism.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t master,
                                                std::uint64_t index) noexcept {
  return seed_mix(master, seed_mix(0x53484b2d63616d70ULL /*"SHK-camp"*/,
                                   index));
}

/// Enumerate `n` decorrelated campaign seeds from one master seed.
[[nodiscard]] inline std::vector<std::uint64_t> split_seeds(
    std::uint64_t master, std::size_t n) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(split_seed(master, i));
  return seeds;
}

/// A self-contained PRNG stream with convenience distributions.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : base_seed_(seed), engine_(seed) {}

  /// Derive an independent child stream; same (seed, name) always yields the
  /// same stream regardless of how many draws happened on the parent.
  [[nodiscard]] RngStream fork(std::string_view name) const {
    return RngStream{seed_mix(base_seed_, fnv1a64(name))};
  }
  [[nodiscard]] RngStream fork(std::uint64_t index) const {
    return RngStream{seed_mix(base_seed_, 0x9e3779b97f4a7c15ULL ^ index)};
  }

  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>{rate}(engine_);
  }
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }
  /// Pick an index in [0, weights.size()) proportionally to weights.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::uint64_t base_seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace skh
