#include "common/pool.h"

#include <algorithm>
#include <utility>

namespace skh::common {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace skh::common
