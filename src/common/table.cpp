#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace skh {

TablePrinter::TablePrinter(std::vector<std::string> headers, std::ostream& os)
    : os_(os), headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os_ << std::left << std::setw(static_cast<int>(widths[c] + 2))
          << cells[c];
    }
    os_ << '\n';
  };
  print_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c], '-') + "  ";
  }
  os_ << sep << '\n';
  for (const auto& row : rows_) print_row(row);
  os_.flush();
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void print_banner(const std::string& title, std::ostream& os) {
  const std::string bar(title.size() + 4, '=');
  os << '\n' << bar << '\n' << "| " << title << " |\n" << bar << '\n';
}

}  // namespace skh
