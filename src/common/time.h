// Simulated-time representation.
//
// The whole system runs on a discrete-event clock measured in nanoseconds.
// RTT-scale quantities (RoCE targets < 20 us, §1) need sub-microsecond
// resolution; campaign-scale quantities span months, which still fits
// comfortably in a signed 64-bit nanosecond count (~292 years).
#pragma once

#include <compare>
#include <cstdint>

namespace skh {

/// A point or span on the simulation clock, in nanoseconds.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  [[nodiscard]] static constexpr SimTime nanos(std::int64_t n) noexcept {
    return SimTime{n};
  }
  [[nodiscard]] static constexpr SimTime micros(double us) noexcept {
    return SimTime{static_cast<std::int64_t>(us * 1e3)};
  }
  [[nodiscard]] static constexpr SimTime millis(double ms) noexcept {
    return SimTime{static_cast<std::int64_t>(ms * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr SimTime minutes(double m) noexcept {
    return seconds(m * 60.0);
  }
  [[nodiscard]] static constexpr SimTime hours(double h) noexcept {
    return seconds(h * 3600.0);
  }

  [[nodiscard]] constexpr std::int64_t raw_nanos() const noexcept {
    return ns_;
  }
  [[nodiscard]] constexpr double to_micros() const noexcept {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double to_millis() const noexcept {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(ns_) / 1e9;
  }
  [[nodiscard]] constexpr double to_minutes() const noexcept {
    return to_seconds() / 60.0;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

  constexpr SimTime& operator+=(SimTime o) noexcept {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) noexcept {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, double k) noexcept {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr SimTime operator*(double k, SimTime a) noexcept {
    return a * k;
  }
  friend constexpr double operator/(SimTime a, SimTime b) noexcept {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  constexpr explicit SimTime(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace skh
