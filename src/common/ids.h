// Strong identifier types shared across all SkeletonHunter modules.
//
// Every entity in the simulated infrastructure (hosts, RNICs, containers,
// switches, links, training tasks, tenants) is addressed by a small integer
// wrapped in a distinct type, so that e.g. a HostId can never be passed where
// a ContainerId is expected (C++ Core Guidelines I.4: make interfaces
// precisely and strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace skh {

/// CRTP-free strong integer id. `Tag` makes each instantiation a distinct
/// type; the underlying value is a dense index assigned by the owning
/// registry (topology, orchestrator, ...).
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  /// Sentinel for "no such entity"; default construction yields it.
  static constexpr value_type kInvalid = static_cast<value_type>(-1);

  constexpr Id() noexcept = default;
  constexpr explicit Id(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

 private:
  value_type value_ = kInvalid;
};

struct HostTag {};
struct RnicTag {};
struct GpuTag {};
struct ContainerTag {};
struct TaskTag {};
struct TenantTag {};
struct SwitchTag {};
struct LinkTag {};
struct VPortTag {};

using HostId = Id<HostTag>;
using RnicId = Id<RnicTag>;
using GpuId = Id<GpuTag>;
using ContainerId = Id<ContainerTag>;
using TaskId = Id<TaskTag>;
using TenantId = Id<TenantTag>;
using SwitchId = Id<SwitchTag>;
using LinkId = Id<LinkTag>;
using VPortId = Id<VPortTag>;

/// An endpoint is the bound pair of a container and one of its RNICs (§1 of
/// the paper). It is the unit of probing: ping lists are sets of
/// (source endpoint, destination endpoint) pairs.
struct Endpoint {
  ContainerId container;
  RnicId rnic;

  friend constexpr auto operator<=>(const Endpoint&,
                                    const Endpoint&) noexcept = default;
};

/// A directed source→destination endpoint pair, the key under which probe
/// results are aggregated by the analyzer.
struct EndpointPair {
  Endpoint src;
  Endpoint dst;

  friend constexpr auto operator<=>(const EndpointPair&,
                                    const EndpointPair&) noexcept = default;
};

[[nodiscard]] std::string to_string(Endpoint e);
[[nodiscard]] std::string to_string(const EndpointPair& p);

}  // namespace skh

namespace std {

template <typename Tag>
struct hash<skh::Id<Tag>> {
  size_t operator()(skh::Id<Tag> id) const noexcept {
    return std::hash<typename skh::Id<Tag>::value_type>{}(id.value());
  }
};

template <>
struct hash<skh::Endpoint> {
  size_t operator()(const skh::Endpoint& e) const noexcept {
    return (static_cast<size_t>(e.container.value()) << 32) ^
           static_cast<size_t>(e.rnic.value());
  }
};

template <>
struct hash<skh::EndpointPair> {
  size_t operator()(const skh::EndpointPair& p) const noexcept {
    const size_t h1 = std::hash<skh::Endpoint>{}(p.src);
    const size_t h2 = std::hash<skh::Endpoint>{}(p.dst);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

}  // namespace std
