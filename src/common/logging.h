// Minimal leveled logger, safe under concurrent campaign workers.
//
// The production system streams agent logs into a cloud log service (§6);
// here a process-wide sink with severities is enough. Logging is off by
// default in tests/benches and can be raised for debugging.
//
// Concurrency: `run_many` workers log from many threads at once, so the
// threshold is an atomic (racy reads would be UB) and the sink runs under a
// mutex — each message is formatted first and written as one unit, so lines
// never interleave. The sink itself is injectable: tests capture output
// instead of scraping stderr, and embedders can forward into their own
// logging stack.
#pragma once

#include <functional>
#include <sstream>
#include <string_view>

namespace skh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
[[nodiscard]] LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

/// Receives every accepted message, already leveled, under the sink mutex
/// (implementations need no further locking but must not log re-entrantly).
using LogSink =
    std::function<void(LogLevel, std::string_view component,
                       std::string_view message)>;

/// Replace the sink; an empty function restores the default (one formatted
/// line per message to std::clog).
void set_log_sink(LogSink sink);

void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, std::string_view component, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, component, os.str());
}
}  // namespace detail

#define SKH_LOG_DEBUG(component, ...) \
  ::skh::detail::log_fmt(::skh::LogLevel::kDebug, component, __VA_ARGS__)
#define SKH_LOG_INFO(component, ...) \
  ::skh::detail::log_fmt(::skh::LogLevel::kInfo, component, __VA_ARGS__)
#define SKH_LOG_WARN(component, ...) \
  ::skh::detail::log_fmt(::skh::LogLevel::kWarn, component, __VA_ARGS__)
#define SKH_LOG_ERROR(component, ...) \
  ::skh::detail::log_fmt(::skh::LogLevel::kError, component, __VA_ARGS__)

}  // namespace skh
