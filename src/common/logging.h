// Minimal leveled logger.
//
// The production system streams agent logs into a cloud log service (§6);
// here a process-wide sink with severities is enough. Logging is off by
// default in tests/benches and can be raised for debugging.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace skh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel& log_threshold() noexcept;

void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, std::string_view component, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, component, os.str());
}
}  // namespace detail

#define SKH_LOG_DEBUG(component, ...) \
  ::skh::detail::log_fmt(::skh::LogLevel::kDebug, component, __VA_ARGS__)
#define SKH_LOG_INFO(component, ...) \
  ::skh::detail::log_fmt(::skh::LogLevel::kInfo, component, __VA_ARGS__)
#define SKH_LOG_WARN(component, ...) \
  ::skh::detail::log_fmt(::skh::LogLevel::kWarn, component, __VA_ARGS__)
#define SKH_LOG_ERROR(component, ...) \
  ::skh::detail::log_fmt(::skh::LogLevel::kError, component, __VA_ARGS__)

}  // namespace skh
