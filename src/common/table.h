// Fixed-width console table printer used by the bench harnesses to emit the
// rows/series of each paper table and figure in a uniform, diffable format.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace skh {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::ostream& os = std::cout);

  /// Queue one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Print headers, separator, and all queued rows with per-column widths.
  void print() const;

  /// Format helper: fixed-precision double.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

 private:
  std::ostream& os_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner for a figure/table reproduction.
void print_banner(const std::string& title, std::ostream& os = std::cout);

}  // namespace skh
