// Fixed-size worker pool for CPU-bound fan-out.
//
// Each submitted job owns its entire working set (one simulated cluster,
// or one analyzer shard's batch), so workers never share mutable state and
// the pool needs no job-to-job ordering guarantees: determinism comes from
// jobs writing to pre-assigned result slots, not from scheduling. Kept
// deliberately minimal — submit, wait, join. Two users: the campaign
// runner fans whole campaigns across it (one job per seed), and the
// sharded analyzer drives its per-shard ingest batches on it (one job per
// shard per tick). It lives in common/ because core/ sits below runner/ in
// the link graph.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace skh::common {

class ThreadPool {
 public:
  /// Spin up `n_threads` workers; 0 means std::thread::hardware_concurrency
  /// (itself clamped to at least 1).
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs must not throw — wrap fallible work and capture
  /// the error (the campaign runner stashes an std::exception_ptr).
  void submit(std::function<void()> job);

  /// Block until every job submitted so far has finished executing.
  void wait();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_job_;   ///< signals workers: work or shutdown
  std::condition_variable cv_done_;  ///< signals wait(): all jobs drained
  std::size_t in_flight_ = 0;        ///< queued + currently executing
  bool stop_ = false;
};

}  // namespace skh::common
