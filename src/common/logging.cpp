#include "common/logging.h"

namespace skh {

LogLevel& log_threshold() noexcept {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  static constexpr std::string_view names[] = {"DEBUG", "INFO", "WARN",
                                               "ERROR"};
  const auto idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::clog << '[' << names[idx] << "] " << component << ": " << message
            << '\n';
}

}  // namespace skh
