#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>
#include <string>

namespace skh {

namespace {

// Function-local statics: initialized on first use, so logging works from
// any static initializer without order-of-initialization hazards.
std::atomic<LogLevel>& threshold_cell() noexcept {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}

std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_cell() {
  static LogSink sink;  // empty = default sink
  return sink;
}

void default_sink(LogLevel level, std::string_view component,
                  std::string_view message) {
  static constexpr std::string_view names[] = {"DEBUG", "INFO", "WARN",
                                               "ERROR"};
  // Format the full line first, then write it with a single stream insert:
  // concurrent loggers cannot interleave fragments of one line even if the
  // stream itself is shared with other writers.
  std::string line;
  line.reserve(16 + component.size() + message.size());
  line += '[';
  line += names[static_cast<int>(level)];
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  line += '\n';
  std::clog << line;
}

}  // namespace

LogLevel log_threshold() noexcept {
  return threshold_cell().load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_cell().store(level, std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  sink_cell() = std::move(sink);
}

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  const auto idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  const std::lock_guard<std::mutex> lock(sink_mutex());
  const LogSink& sink = sink_cell();
  if (sink) {
    sink(level, component, message);
  } else {
    default_sink(level, component, message);
  }
}

}  // namespace skh
