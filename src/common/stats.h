// Summary statistics, percentiles, and histograms.
//
// The analyzer describes each 30-second latency window by its
// {p25, p50, p75, min, mean, std, max} (§5.2); this header provides that
// summary plus the generic descriptive-statistics helpers used by the
// workload/trace synthesizers and the bench harnesses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace skh {

/// The seven-number summary the paper uses to describe a latency window.
struct WindowSummary {
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double min = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  /// Flatten into the feature vector consumed by the LOF detector.
  [[nodiscard]] std::vector<double> as_feature_vector() const {
    return {p25, p50, p75, min, mean, stddev, max};
  }
};

/// Sort up to 8 doubles in place with a branchless comparator network,
/// falling back to std::sort above that. Same ascending order as
/// std::sort for every input (exhaustively pinned via the 0/1 principle
/// in tests/common/test_stats.cpp), so callers may switch freely; the
/// point is the hot-window close, where std::sort's branchy insertion
/// loop mispredicts on random RTT jitter while 19 min/max pairs do not.
/// Not for NaN-bearing data (min/max ordering of NaN is unspecified).
inline void sort_small(double* v, std::size_t n) {
  if (n <= 1) return;
  if (n > 8) {
    std::sort(v, v + n);
    return;
  }
  // Pad to 8 with +inf (sorts past every finite sample and every +inf
  // already present) and run Batcher's odd-even merge network for 8.
  double b[8];
  std::size_t i = 0;
  for (; i < n; ++i) b[i] = v[i];
  for (; i < 8; ++i) b[i] = std::numeric_limits<double>::infinity();
  const auto cx = [&b](int x, int y) {
    const double lo = std::min(b[x], b[y]);
    b[y] = std::max(b[x], b[y]);
    b[x] = lo;
  };
  cx(0, 1); cx(2, 3); cx(4, 5); cx(6, 7);
  cx(0, 2); cx(1, 3); cx(4, 6); cx(5, 7);
  cx(1, 2); cx(5, 6);
  cx(0, 4); cx(1, 5); cx(2, 6); cx(3, 7);
  cx(2, 4); cx(3, 5);
  cx(1, 2); cx(3, 4); cx(5, 6);
  for (std::size_t j = 0; j < n; ++j) v[j] = b[j];
}

/// Linear-interpolated percentile of an unsorted sample, q in [0, 100].
/// Returns NaN on an empty sample.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// Percentile over a pre-sorted (ascending) sample; O(1).
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

[[nodiscard]] double mean_of(std::span<const double> sample);
[[nodiscard]] double stddev_of(std::span<const double> sample);

/// Compute the full seven-number summary of a sample in one pass + one sort.
[[nodiscard]] WindowSummary summarize(std::span<const double> sample);

/// Streaming mean/variance (Welford). Numerically stable; O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  /// Biased (1/n) variance — the MLE form the log-normal fit uses.
  [[nodiscard]] double population_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Streaming seven-number summarizer for one latency window: samples
/// append to an order-statistics buffer that is sorted lazily, once, when
/// the summary is asked for — not copied and re-sorted per close like
/// `summarize`, and not scanned per sample like a sorted insert. The
/// append touches only the buffer tail, which keeps the per-probe cache
/// footprint at one line when thousands of accumulators are swept
/// round-robin. Percentiles are bit-identical to `summarize`; mean/stddev
/// agree to floating-point rounding (sorted vs arrival summation order).
/// `reset` keeps the buffer capacity so a reused accumulator allocates
/// only until its largest window has been seen. Not thread-safe: the lazy
/// sort mutates the buffer under `const` accessors.
class WindowAccumulator {
 public:
  void add(double x) {
    buf_.push_back(x);
    dirty_ = true;
  }
  void reset() noexcept {
    buf_.clear();
    dirty_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return buf_.size(); }
  /// Samples so far, ascending.
  [[nodiscard]] std::span<const double> sorted() const noexcept {
    ensure_sorted();
    return buf_;
  }
  [[nodiscard]] WindowSummary summary() const;

 private:
  void ensure_sorted() const noexcept {
    if (dirty_) {
      std::sort(buf_.begin(), buf_.end());
      dirty_ = false;
    }
  }

  mutable std::vector<double> buf_;
  mutable bool dirty_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to the edge
/// bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  /// Fraction of samples at or below the upper edge of bin i.
  [[nodiscard]] double cdf_at(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical CDF evaluation: fraction of `sample` values <= x.
[[nodiscard]] double ecdf(std::span<const double> sorted_sample, double x);

}  // namespace skh
