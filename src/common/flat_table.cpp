#include "common/flat_table.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace skh::common {

namespace {

constexpr std::size_t kMinSlots = 64;  // one full state word at minimum
constexpr std::size_t kSlotsPerWord = 32;

/// Round `n` up to the next multiple of the 64-byte arena alignment, so
/// every section starts on its own cache line.
constexpr std::size_t cache_align(std::size_t n) noexcept {
  return (n + 63U) & ~std::size_t{63};
}

}  // namespace

FlatPairTable::FlatPairTable(FlatTableConfig cfg)
    : fullness_(std::clamp(cfg.fullness, 0.05, 0.95)) {
  if (cfg.capacity > 0) reserve(cfg.capacity);
}

std::size_t FlatPairTable::slots_for(std::size_t capacity) const noexcept {
  // ceil(capacity / fullness), so `capacity` keys sit at or below the
  // occupancy limit; then the next power of two for mask probing.
  const auto want = static_cast<std::size_t>(
      static_cast<double>(capacity) / fullness_) + 1;
  return std::bit_ceil(std::max(want, kMinSlots));
}

void FlatPairTable::rebuild(std::size_t new_slots) {
  assert(std::has_single_bit(new_slots) && new_slots >= kMinSlots);
  const std::size_t word_bytes =
      (new_slots / kSlotsPerWord) * sizeof(std::uint64_t);
  const std::size_t key_off = cache_align(word_bytes);
  const std::size_t id_off =
      cache_align(key_off + new_slots * sizeof(EndpointPair));
  const std::size_t total = cache_align(id_off + new_slots * sizeof(SlotId));

  std::vector<std::byte, ArenaAllocator<>> na(total, std::byte{0});
  auto* nwords = reinterpret_cast<std::uint64_t*>(na.data());
  auto* nkeys = reinterpret_cast<EndpointPair*>(na.data() + key_off);
  auto* nids = reinterpret_cast<SlotId*>(na.data() + id_off);

  // Re-place every live mapping; tombstones are dropped, ids are carried
  // verbatim (the whole point of the id indirection).
  const std::size_t mask = new_slots - 1;
  for (std::size_t s = 0; s < slots_; ++s) {
    if (state_of(s) != SlotState::kUsed) continue;
    const EndpointPair& key = keys()[s];
    std::size_t t = hash_key(key) & mask;
    while (((nwords[t >> 5] >> ((t & 31U) << 1)) & 3U) != 0) {
      t = (t + 1) & mask;
    }
    nwords[t >> 5] |= std::uint64_t{1} << ((t & 31U) << 1);
    nkeys[t] = key;
    nids[t] = ids()[s];
  }

  arena_ = std::move(na);
  slots_ = new_slots;
  key_off_ = key_off;
  id_off_ = id_off;
  tombstones_ = 0;
  occupancy_limit_ = static_cast<std::size_t>(
      static_cast<double>(new_slots) * fullness_);
}

void FlatPairTable::reserve(std::size_t capacity) {
  const std::size_t want = slots_for(capacity);
  if (want > slots_) rebuild(want);
}

FlatPairTable::InsertResult FlatPairTable::insert(const EndpointPair& key) {
  if (slots_ == 0) {
    rebuild(slots_for(1));
  } else if (used_ + tombstones_ + 1 > occupancy_limit_) {
    // Past the virtual capacity. If tombstones are the bulk of the
    // occupancy, a same-size purge restores headroom without growing;
    // otherwise the table is genuinely full and doubles. Either way ids
    // are untouched.
    if (tombstones_ >= used_ && used_ + 1 <= occupancy_limit_) {
      ++stats_.purges;
      rebuild(slots_);
    } else {
      ++stats_.grows;
      rebuild(slots_ * 2);
    }
  }

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const std::size_t mask = slots_ - 1;
  std::size_t s = hash_key(key) & mask;
  std::size_t first_deleted = kNone;
  std::size_t steps = 0;
  for (;; s = (s + 1) & mask, ++steps) {
    const SlotState st = state_of(s);
    if (st == SlotState::kEmpty) break;
    if (st == SlotState::kUsed) {
      if (keys()[s] == key) {
        stats_.probe_steps += steps;
        stats_.max_probe = std::max(stats_.max_probe,
                                    static_cast<std::uint64_t>(steps));
        return {ids()[s], false};
      }
    } else if (first_deleted == kNone) {
      first_deleted = s;
    }
  }
  stats_.probe_steps += steps;
  stats_.max_probe =
      std::max(stats_.max_probe, static_cast<std::uint64_t>(steps));

  std::size_t target = s;
  if (first_deleted != kNone) {
    target = first_deleted;  // tombstone reuse keeps chains short
    --tombstones_;
  }
  SlotId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    ++stats_.recycled_ids;
  } else {
    id = next_id_++;
  }
  set_state(target, SlotState::kUsed);
  keys()[target] = key;
  ids()[target] = id;
  ++used_;
  return {id, true};
}

bool FlatPairTable::erase(const EndpointPair& key) noexcept {
  if (used_ == 0) return false;
  const std::size_t mask = slots_ - 1;
  std::size_t s = hash_key(key) & mask;
  for (std::size_t step = 0; step <= mask; ++step, s = (s + 1) & mask) {
    const SlotState st = state_of(s);
    if (st == SlotState::kEmpty) return false;
    if (st == SlotState::kUsed && keys()[s] == key) {
      set_state(s, SlotState::kDeleted);
      ++tombstones_;
      --used_;
      return true;
    }
  }
  return false;
}

void FlatPairTable::free_id(SlotId id) {
  assert(id < next_id_);
  free_ids_.push_back(id);
}

}  // namespace skh::common
