#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace skh {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double pos =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> sample, double q) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

double mean_of(std::span<const double> sample) {
  if (sample.empty()) return std::numeric_limits<double>::quiet_NaN();
  double s = 0.0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

double stddev_of(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean_of(sample);
  double s2 = 0.0;
  for (double x : sample) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(sample.size() - 1));
}

WindowSummary summarize(std::span<const double> sample) {
  WindowSummary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 25.0);
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p75 = percentile_sorted(sorted, 75.0);
  s.mean = mean_of(sample);
  s.stddev = stddev_of(sample);
  return s;
}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::population_variance() const noexcept {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

WindowSummary WindowAccumulator::summary() const {
  WindowSummary s;
  s.count = buf_.size();
  if (buf_.empty()) return s;
  ensure_sorted();
  s.min = buf_.front();
  s.max = buf_.back();
  s.p25 = percentile_sorted(buf_, 25.0);
  s.p50 = percentile_sorted(buf_, 50.0);
  s.p75 = percentile_sorted(buf_, 75.0);
  // Two-pass moments over the sorted buffer: `summarize` computes them in
  // arrival order, so only addition order differs (FP rounding).
  s.mean = mean_of(buf_);
  s.stddev = stddev_of(buf_);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins>0 and hi>lo");
  }
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::cdf_at(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t b = 0; b <= i && b < counts_.size(); ++b) acc += counts_[b];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double ecdf(std::span<const double> sorted_sample, double x) {
  if (sorted_sample.empty()) return 0.0;
  const auto it =
      std::upper_bound(sorted_sample.begin(), sorted_sample.end(), x);
  return static_cast<double>(it - sorted_sample.begin()) /
         static_cast<double>(sorted_sample.size());
}

}  // namespace skh
