// Cache-resident fixed-capacity pair table for the ingest hot path.
//
// `FlatPairTable` maps an `EndpointPair` to a stable dense id using one
// arena-backed open-addressing slot array: 2-bit slot states (Empty /
// Used / Deleted) packed 32-per-word, the keys, and the ids all live in a
// single 64-byte-aligned allocation, probed with linear shifting (the
// probe sequence shifts one slot per step from the hash slot). The table
// is sized once at plan time — the pair count is known after skeleton
// inference — via the `fullness` knob: for a planned capacity C the slot
// array holds next_pow2(ceil(C / fullness)) slots, so the *virtual*
// capacity (`slots * fullness`, the occupancy at which a rebuild would
// trigger) is at least C and steady-state probe chains stay short. A
// correctly planned table therefore performs zero rehashes and zero
// allocations on the ingest path.
//
// Ids are NOT probe-slot indices. A probe slot moves when the table
// rebuilds (growth or tombstone purge); the id is allocated once per key
// from a bump counter + free list and never moves, so callers can index
// dense side arrays (hot state, sample strips) by id across rebuilds.
// `erase` only unmaps the key — the id stays allocated until the caller
// returns it with `free_id`, which is what lets the analyzer keep a
// retired pair's state alive until its final windows have been judged
// (see core/anomaly). The full layout and state-machine contract is
// documented in ARCHITECTURE.md ("Memory layout & hot path").
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "common/ids.h"

namespace skh::common {

/// 64-byte-aligned allocator for the slot arena (and for any side array
/// that wants cache-line-aligned rows, e.g. the detector's sample strips).
/// Alignment is a property of the allocator (not a runtime offset fix-up)
/// so that the section offsets computed at rebuild stay valid across value
/// copies — a copied table (e.g. inside a detector snapshot) reuses them
/// untouched.
template <typename T = std::byte>
struct ArenaAllocator {
  using value_type = T;

  template <typename U>
  struct rebind {
    using other = ArenaAllocator<U>;
  };

  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{64}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{64});
  }
  template <typename U>
  friend bool operator==(const ArenaAllocator&, const ArenaAllocator<U>&) {
    return true;
  }
};

struct FlatTableConfig {
  /// Planned live-key count; the slot array is sized so this many keys fit
  /// without a rebuild. 0 defers sizing to the first insert / `reserve`.
  std::size_t capacity = 0;
  /// Target occupied fraction of the slot array (clamped to [0.05, 0.95]).
  /// Lower = more slack slots, shorter probe chains, more memory.
  double fullness = 0.5;
};

class FlatPairTable {
 public:
  /// Stable dense id of a key; survives table rebuilds (see file header).
  using SlotId = std::uint32_t;
  static constexpr SlotId kNoSlot = static_cast<SlotId>(-1);

  /// 2-bit per-slot state machine. Empty terminates probe chains; Deleted
  /// (a tombstone) keeps chains walkable after an erase and is reclaimed
  /// by the first insert that probes across it or by a purge rebuild.
  enum class SlotState : std::uint8_t { kEmpty = 0, kUsed = 1, kDeleted = 2 };

  struct InsertResult {
    SlotId id;
    bool inserted;  ///< false: key already present, `id` is its mapping
  };

  struct Stats {
    std::uint64_t grows = 0;         ///< slot-array doublings
    std::uint64_t purges = 0;        ///< same-size rebuilds (tombstone GC)
    std::uint64_t probe_steps = 0;   ///< linear shifts beyond the hash slot
    std::uint64_t max_probe = 0;     ///< longest single insert chain
    std::uint64_t recycled_ids = 0;  ///< ids served from the free list
  };

  explicit FlatPairTable(FlatTableConfig cfg = {});

  /// Id of `key`, or kNoSlot. Zero allocation, at most one cache line of
  /// state words plus the probed key slots.
  [[nodiscard]] SlotId find(const EndpointPair& key) const noexcept {
    if (used_ == 0) return kNoSlot;
    const std::size_t mask = slots_ - 1;
    std::size_t s = hash_key(key) & mask;
    for (std::size_t step = 0; step <= mask; ++step, s = (s + 1) & mask) {
      const SlotState st = state_of(s);
      if (st == SlotState::kEmpty) return kNoSlot;
      if (st == SlotState::kUsed && keys()[s] == key) return ids()[s];
    }
    return kNoSlot;
  }

  /// Get-or-create the mapping for `key`. A new mapping takes the lowest
  /// tombstone on its probe chain (tombstone reuse) and an id from the
  /// free list, else from the bump counter. Rebuilds (purge or doubling)
  /// only when occupancy would exceed the virtual capacity — never on a
  /// correctly planned table.
  InsertResult insert(const EndpointPair& key);

  /// Unmap `key` (slot becomes a tombstone). The id stays allocated —
  /// side arrays indexed by it remain valid — until `free_id` returns it.
  bool erase(const EndpointPair& key) noexcept;

  /// Return an id (previously obtained from `insert`, whose key has been
  /// erased) to the free list for reuse by future inserts.
  void free_id(SlotId id);

  /// Ensure `capacity` keys fit without further rebuilds. Ids are stable
  /// across the rebuild; only probe-slot positions move.
  void reserve(std::size_t capacity);

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] std::size_t slot_count() const noexcept { return slots_; }
  [[nodiscard]] std::size_t tombstones() const noexcept { return tombstones_; }
  /// Occupancy (used + tombstones) at which the next insert rebuilds:
  /// floor(slot_count * fullness).
  [[nodiscard]] std::size_t virtual_capacity() const noexcept {
    return occupancy_limit_;
  }
  [[nodiscard]] double fullness() const noexcept { return fullness_; }
  /// One past the largest id ever allocated: the extent callers must size
  /// id-indexed side arrays to.
  [[nodiscard]] SlotId id_bound() const noexcept { return next_id_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] SlotState state_of(std::size_t slot) const noexcept {
    return static_cast<SlotState>(
        (words()[slot >> 5] >> ((slot & 31U) << 1)) & 3U);
  }

  /// Visit every live mapping as f(key, id), in slot order (deterministic
  /// for a given insert/erase history).
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t s = 0; s < slots_; ++s) {
      if (state_of(s) == SlotState::kUsed) f(keys()[s], ids()[s]);
    }
  }

 private:
  /// splitmix64 finalizer: full-avalanche mix of one 64-bit lane.
  [[nodiscard]] static constexpr std::uint64_t mix64(
      std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  /// Both 16 bytes of the pair feed the hash (two packed 64-bit lanes);
  /// the dense container/RNIC ids the simulator assigns are exactly the
  /// low-entropy keys a weaker mix would cluster under power-of-two masks.
  [[nodiscard]] static std::size_t hash_key(const EndpointPair& k) noexcept {
    const std::uint64_t lane0 =
        (static_cast<std::uint64_t>(k.src.container.value()) << 32) |
        k.src.rnic.value();
    const std::uint64_t lane1 =
        (static_cast<std::uint64_t>(k.dst.container.value()) << 32) |
        k.dst.rnic.value();
    return static_cast<std::size_t>(
        mix64(lane0 ^ mix64(lane1 ^ 0x9e3779b97f4a7c15ULL)));
  }

  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(arena_.data());
  }
  [[nodiscard]] std::uint64_t* words() noexcept {
    return reinterpret_cast<std::uint64_t*>(arena_.data());
  }
  [[nodiscard]] const EndpointPair* keys() const noexcept {
    return reinterpret_cast<const EndpointPair*>(arena_.data() + key_off_);
  }
  [[nodiscard]] EndpointPair* keys() noexcept {
    return reinterpret_cast<EndpointPair*>(arena_.data() + key_off_);
  }
  [[nodiscard]] const SlotId* ids() const noexcept {
    return reinterpret_cast<const SlotId*>(arena_.data() + id_off_);
  }
  [[nodiscard]] SlotId* ids() noexcept {
    return reinterpret_cast<SlotId*>(arena_.data() + id_off_);
  }

  void set_state(std::size_t slot, SlotState st) noexcept {
    const std::size_t sh = (slot & 31U) << 1;
    std::uint64_t& w = words()[slot >> 5];
    w = (w & ~(std::uint64_t{3} << sh))
        | (static_cast<std::uint64_t>(st) << sh);
  }

  /// Slot count that holds `capacity` keys at the configured fullness.
  [[nodiscard]] std::size_t slots_for(std::size_t capacity) const noexcept;
  /// Re-lay every live mapping into a fresh arena of `new_slots` slots.
  void rebuild(std::size_t new_slots);

  double fullness_;
  std::size_t slots_ = 0;
  std::size_t used_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t occupancy_limit_ = 0;
  std::size_t key_off_ = 0;  ///< byte offset of the key section
  std::size_t id_off_ = 0;   ///< byte offset of the id section
  SlotId next_id_ = 0;
  std::vector<std::byte, ArenaAllocator<>> arena_;
  std::vector<SlotId> free_ids_;
  Stats stats_;
};

}  // namespace skh::common
