#include "common/ids.h"

#include <sstream>

namespace skh {

std::string to_string(Endpoint e) {
  std::ostringstream os;
  os << "ep(c" << e.container.value() << ",r" << e.rnic.value() << ")";
  return os.str();
}

std::string to_string(const EndpointPair& p) {
  return to_string(p.src) + "->" + to_string(p.dst);
}

}  // namespace skh
