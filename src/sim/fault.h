// Fault model: the 19 production issue types of Table 1 plus the intra-host
// faults that §7.3 identifies as invisible to end-to-end probing.
//
// The injector is the experiment's ground truth: every injected fault names
// the component it degrades, and the accuracy bench scores SkeletonHunter's
// detections/localizations against that record.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "topo/topology.h"

namespace skh::sim {

/// The 19 issue types of Table 1, numbered as in the paper, plus the
/// intra-host NVLink fault class that probing cannot see (§7.3).
enum class IssueType : std::uint8_t {
  kCrcError = 1,                 // 1  physical fabric corrupts packets
  kSwitchPortDown = 2,           // 2  switch port unreachable
  kSwitchPortFlapping = 3,       // 3  switch port flapping
  kSwitchOffline = 4,            // 4  switch crash / maintenance
  kRnicHardwareFailure = 5,      // 5  RNIC hardware broken
  kRnicFirmwareNotResponding = 6,// 6  firmware bug: high latency flows
  kRnicPortDown = 7,             // 7  RNIC port consistently down
  kRnicPortFlapping = 8,         // 8  RNIC port periodically down
  kOffloadingFailure = 9,        // 9  en/de-cap not offloaded to RNIC
  kBondError = 10,               // 10 cannot bond RNIC ports
  kGidChange = 11,               // 11 OS network service restarted
  kPcieNicError = 12,            // 12 RNICs on one host cannot talk
  kGpuDirectRdmaError = 13,      // 13 GPU cannot reach RNIC directly
  kNotUsingRdma = 14,            // 14 flows fall back to TCP/UDP
  kRepetitiveFlowOffloading = 15,// 15 offloaded flows keep invalidating
  kSuboptimalFlowOffloading = 16,// 16 flows offloaded in wrong order
  kContainerCrash = 17,          // 17 container runtime defect
  kHugepageMisconfig = 18,       // 18 hugepage config inconsistent w/ RNIC
  kCongestionControlIssue = 19,  // 19 switch queue CC not enabled
  kNvlinkDegradation = 20,       // §7.3 GPU-GPU / GPU-PCIe, non-network
};

/// Observable symptom class (Table 1 "Symptoms" column).
enum class Symptom : std::uint8_t {
  kPacketLoss,
  kUnconnectivity,
  kHighLatency,
  kNone,  ///< invisible to end-to-end probing (intra-host faults)
};

/// Component taxonomy of Table 1 ("Components" column).
enum class ComponentClass : std::uint8_t {
  kInterHostNetwork,
  kRnic,
  kKernel,
  kHostBoard,
  kVirtualSwitch,
  kContainerRuntime,
  kConfiguration,
  kIntraHost,  ///< NVLink / GPU-PCIe; outside SkeletonHunter's scope
};

/// Which concrete simulated entity a fault (or a localization verdict)
/// points at.
enum class ComponentKind : std::uint8_t {
  kPhysicalLink,
  kPhysicalSwitch,
  kRnic,
  kHost,       // host board / kernel / configuration scope
  kVSwitch,    // the OVS instance on a host
  kContainer,  // container runtime scope
};

/// A concrete component instance: kind + dense index within that kind.
struct ComponentRef {
  ComponentKind kind = ComponentKind::kHost;
  std::uint32_t index = 0;

  friend constexpr auto operator<=>(const ComponentRef&,
                                    const ComponentRef&) noexcept = default;
};

[[nodiscard]] std::string_view to_string(IssueType t) noexcept;
[[nodiscard]] std::string_view to_string(Symptom s) noexcept;
[[nodiscard]] std::string_view to_string(ComponentClass c) noexcept;
[[nodiscard]] std::string_view to_string(ComponentKind k) noexcept;
[[nodiscard]] std::string to_string(ComponentRef r);

/// Static metadata of an issue type (Table 1 row).
struct IssueInfo {
  IssueType type;
  ComponentClass component_class;
  Symptom symptom;
  ComponentKind target_kind;  ///< what kind of entity this issue degrades
  std::string_view detail;
  bool probe_visible;  ///< false for intra-host faults (§7.3 false negatives)
};

/// Table-1 metadata for every issue type.
[[nodiscard]] const IssueInfo& issue_info(IssueType t);
[[nodiscard]] std::span<const IssueInfo> all_issue_infos();

/// Effect parameters a fault applies to traffic crossing its component.
struct FaultEffect {
  double loss_probability = 0.0;   ///< per-probe drop probability
  double extra_latency_us = 0.0;   ///< added RTT latency per traversal
  bool unreachable = false;        ///< hard connectivity break
  /// Flapping: effect only active while (t / period) has odd parity.
  std::optional<SimTime> flap_period;
};

/// Default symptom-faithful effect for an issue type: loss rates, latency
/// inflations, and flap periods chosen to reproduce the Table 1 symptoms
/// (e.g. the Fig. 18 case: 16us -> 120us plus <0.1% loss).
[[nodiscard]] FaultEffect default_effect(IssueType t);

/// One injected fault instance.
struct Fault {
  std::uint32_t id = 0;
  IssueType type = IssueType::kCrcError;
  ComponentRef target;
  FaultEffect effect;
  SimTime start;
  SimTime end;  ///< exclusive; use e.g. SimTime::hours(1e5) for "until fixed"
  /// False => a monitoring-system defect (e.g. a crashed sidecar agent,
  /// §7.3), which degrades probes like a real fault but is NOT a network
  /// failure: cases it triggers score as false positives.
  bool ground_truth = true;

  [[nodiscard]] bool active_at(SimTime t) const noexcept;
  /// Whether the degradation applies at `t` (accounts for flapping phase).
  [[nodiscard]] bool degrading_at(SimTime t) const noexcept;
};

// --- gray ECMP member faults -----------------------------------------------
//
// The hardest production gray case (SprayCheck): one member of an equal-cost
// group silently sheds packets while its siblings stay clean. Under static
// ECMP a flow either hashes onto the sick member (fully seen) or never
// touches it (structurally invisible); only spray/adaptive routing with
// per-path sub-series accounting can both see it AND pin it to the member.

/// A gray fault plan aimed at exactly one equal-cost member link.
struct GrayMemberPlan {
  ComponentRef target;      ///< the member's first switch-switch link
  std::uint32_t path_id = 0;  ///< which equal-cost member it sits on
  FaultEffect effect;       ///< partial loss, no latency tell, no flap
};

/// Pick the `member`-th equal-cost path of (src, dst) and target its first
/// switch-to-switch link (the ToR->spine hop that is unique to that member)
/// with a partial-loss gray effect. Inject via e.g.
/// `faults.inject(IssueType::kCrcError, plan.target, t0, t1, plan.effect)`.
/// Throws std::out_of_range when `member >= num_paths(src, dst)` and
/// std::invalid_argument for intra-host/same-ToR pairs (no member links).
[[nodiscard]] GrayMemberPlan make_gray_member_link(
    const topo::Topology& topo, RnicId src, RnicId dst, std::uint32_t member,
    double loss_probability = 0.25, double extra_latency_us = 0.0);

// --- mid-run churn scenarios -----------------------------------------------
//
// Container lifecycle churn (SHIFT: RDMA training failures are dominated by
// mid-run component churn) is NOT a network fault: a restart or migration is
// the control plane doing its job, and a monitoring system that alarms on it
// is raising false positives. These plans describe *when* churn hits *which
// container of a task*; the harness maps them onto orchestrator calls.

/// What happens to the container at a churn instant.
enum class ChurnKind : std::uint8_t {
  kRestart,     ///< restarted in place: deregister, then re-register
  kMigrate,     ///< re-placed on another host: endpoints (RNICs) change
  kCrash,       ///< data plane dies; control plane learns after a sync lag
  kAgentDeath,  ///< sidecar probe agent dies (§7.3 phantom, not the tenant)
};

[[nodiscard]] std::string_view to_string(ChurnKind k) noexcept;

/// One churn instant aimed at one container of the monitored task.
struct ChurnEvent {
  ChurnKind kind = ChurnKind::kRestart;
  std::uint32_t container_index = 0;  ///< index within the task
  SimTime at;
  /// Outage length for kAgentDeath (the phantom fault window); unused by
  /// the lifecycle kinds, whose duration is the startup delay itself.
  SimTime duration = SimTime::minutes(3);
};

/// Restart storm: `restarts` restart events spaced `spacing` apart from
/// `start`, victims drawn from `rng` over `n_containers`. Events come back
/// in time order; the plan is a pure function of the rng stream state.
[[nodiscard]] std::vector<ChurnEvent> make_restart_storm(
    std::uint32_t n_containers, std::size_t restarts, SimTime start,
    SimTime spacing, RngStream& rng);

/// Re-registration race: `restarts` distinct containers all restarting at
/// the same instant, so deregistrations and re-registrations interleave
/// across peers within one probe interval.
[[nodiscard]] std::vector<ChurnEvent> make_reregistration_race(
    std::uint32_t n_containers, std::size_t restarts, SimTime at);

/// Migration wave: like a restart storm but each victim is re-placed.
[[nodiscard]] std::vector<ChurnEvent> make_migration_wave(
    std::uint32_t n_containers, std::size_t migrations, SimTime start,
    SimTime spacing, RngStream& rng);

// --- gray telemetry: faults in the measurement plane itself ----------------
//
// SprayCheck's core observation: gray failures corrupt the very signals used
// to find them. These plans degrade SkeletonHunter's OWN telemetry — probe
// responses, traceroute replies, the analyzer process — while the network
// under test stays healthy (or faulty, independently). Pure data like the
// churn plans above: the hunter applies them via a named RNG fork.

/// What part of the measurement plane lies, and how.
enum class TelemetryFaultKind : std::uint8_t {
  kResponseLoss,      ///< probe responses dropped on the way to the analyzer
  kDuplication,       ///< probe responses delivered more than once
  kReordering,        ///< responses delayed a round, arriving out of order
  kClockSkew,         ///< sent_at timestamps skewed backwards (stale clock)
  kRttCorruption,     ///< RTT samples multiplied into absurd outliers
  kTracerouteHopLoss, ///< per-hop traceroute responses silently lost
  kAnalyzerBlackout,  ///< analyzer sees nothing; resumes from checkpoint
};

[[nodiscard]] std::string_view to_string(TelemetryFaultKind k) noexcept;

/// One telemetry fault episode. `magnitude` is kind-specific: a per-result
/// probability for kResponseLoss / kDuplication / kReordering /
/// kRttCorruption / kTracerouteHopLoss, seconds of backwards skew for
/// kClockSkew, and unused for kAnalyzerBlackout.
struct TelemetryFault {
  TelemetryFaultKind kind = TelemetryFaultKind::kResponseLoss;
  SimTime start;
  SimTime end;  ///< exclusive
  double magnitude = 0.0;

  [[nodiscard]] bool active_at(SimTime t) const noexcept {
    return t >= start && t < end;
  }
};

/// A full measurement-plane fault schedule. Pure data; empty == honest
/// telemetry (and the consumers draw zero random numbers, so existing
/// seeds replay bit-identically).
struct TelemetryFaultPlan {
  std::vector<TelemetryFault> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
  /// Largest magnitude among episodes of `kind` active at `t` (0 if none).
  [[nodiscard]] double magnitude_at(TelemetryFaultKind kind,
                                    SimTime t) const noexcept;
  /// Whether an analyzer blackout covers `t`.
  [[nodiscard]] bool blackout_at(SimTime t) const noexcept;
};

/// Telemetry storm: `episodes` fault episodes starting at `start`, spaced
/// `spacing` apart, each lasting `duration`, cycling through all telemetry
/// fault kinds in enum order. Magnitudes are drawn from `rng` around
/// kind-appropriate defaults; the plan is a pure function of the stream.
[[nodiscard]] TelemetryFaultPlan make_telemetry_storm(std::size_t episodes,
                                                      SimTime start,
                                                      SimTime spacing,
                                                      SimTime duration,
                                                      RngStream& rng);

// --- host-side collective faults -------------------------------------------
//
// The failures the probe mesh is structurally blind to (CCL-D's slow/hang
// taxonomy): an NCCL-level hang, a straggling rank, a slow host. These
// plans degrade the tenant's *collective steps* — never the FaultInjector,
// never a probed component — so by construction they produce zero
// probe-visible symptoms. Pure data like the churn/telemetry plans: the
// harness maps them onto the collective trace generator, and an empty plan
// draws zero RNG so existing seeds replay bit-identically.

/// How a host-side fault degrades its victim rank's collective steps.
enum class CollectiveFaultKind : std::uint8_t {
  kHang,          ///< the rank's current step never completes (NCCL hang)
  kStraggler,     ///< one rank's steps run `magnitude` times slower
  kHostSlowdown,  ///< milder whole-host slowdown (thermal, noisy neighbor)
};

[[nodiscard]] std::string_view to_string(CollectiveFaultKind k) noexcept;

/// One host-side fault episode aimed at one container of the task.
/// `magnitude` is the step-duration multiplier for the slow kinds and
/// unused for kHang.
struct CollectiveFault {
  CollectiveFaultKind kind = CollectiveFaultKind::kHang;
  std::uint32_t container_index = 0;  ///< index within the task
  SimTime start;
  SimTime end;  ///< exclusive
  double magnitude = 1.0;

  [[nodiscard]] bool active_at(SimTime t) const noexcept {
    return t >= start && t < end;
  }
};

/// A task's host-side fault schedule. Empty == healthy hosts (and zero
/// RNG draws anywhere downstream).
struct CollectiveFaultPlan {
  std::vector<CollectiveFault> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
  /// Whether a kHang episode covers (container, t).
  [[nodiscard]] bool hang_at(std::uint32_t container_index,
                             SimTime t) const noexcept;
  /// Largest slowdown multiplier active on (container, t); 1.0 if none.
  [[nodiscard]] double slowdown_at(std::uint32_t container_index,
                                   SimTime t) const noexcept;
};

/// An NCCL-level hang on one rank: its in-flight step never completes and
/// every dependent rank stalls behind it.
[[nodiscard]] CollectiveFault make_collective_hang(
    std::uint32_t container_index, SimTime start, SimTime duration);

/// One rank running `slowdown` times slower than its siblings (CCL-D's
/// "slow" class; sibling-relative timing is what exposes it).
[[nodiscard]] CollectiveFault make_straggler_rank(
    std::uint32_t container_index, SimTime start, SimTime duration,
    double slowdown = 8.0);

/// A milder whole-container slowdown (thermal throttling, noisy
/// neighbor): below the straggler ratio on any single step, visible only
/// through accumulated strikes.
[[nodiscard]] CollectiveFault make_host_slowdown(
    std::uint32_t container_index, SimTime start, SimTime duration,
    double slowdown = 3.5);

/// Host-side fault storm: `episodes` episodes from `start`, spaced
/// `spacing` apart, each lasting `duration`, cycling hang / straggler /
/// slowdown; victims drawn from `rng` over `n_containers`. The plan is a
/// pure function of the stream state.
[[nodiscard]] CollectiveFaultPlan make_collective_storm(
    std::uint32_t n_containers, std::size_t episodes, SimTime start,
    SimTime spacing, SimTime duration, RngStream& rng);

/// Registry of injected faults; the ground truth of every experiment.
class FaultInjector {
 public:
  /// Inject a fault with the issue type's default effect.
  std::uint32_t inject(IssueType type, ComponentRef target, SimTime start,
                       SimTime end);
  /// Inject with a custom effect (used by ablation benches).
  std::uint32_t inject(IssueType type, ComponentRef target, SimTime start,
                       SimTime end, const FaultEffect& effect);

  /// Inject a monitoring-system defect (ground_truth = false): probes
  /// toward `target` fail, but scoring treats resulting cases as false
  /// positives (§7.3's crashed-agent false detections).
  std::uint32_t inject_phantom(ComponentRef target, SimTime start,
                               SimTime end);

  /// Repair: the fault stops degrading from `at` onward. `at` is clamped
  /// into [start, end] — repairing before the fault began leaves a
  /// zero-length window (never a negative one), and repairing an already
  /// repaired fault again is idempotent (cannot re-extend it).
  void repair(std::uint32_t fault_id, SimTime at);

  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const Fault& fault(std::uint32_t id) const;

  /// All faults degrading component `c` at time `t`.
  [[nodiscard]] std::vector<const Fault*> active_on(ComponentRef c,
                                                    SimTime t) const;

  /// All faults active anywhere at time `t`.
  [[nodiscard]] std::vector<const Fault*> active_at(SimTime t) const;

 private:
  std::vector<Fault> faults_;
};

}  // namespace skh::sim

namespace std {
template <>
struct hash<skh::sim::ComponentRef> {
  size_t operator()(const skh::sim::ComponentRef& r) const noexcept {
    return (static_cast<size_t>(r.kind) << 32) ^ r.index;
  }
};
}  // namespace std
