#include "sim/fault.h"

#include <algorithm>
#include <array>
#include <iterator>
#include <sstream>
#include <stdexcept>

namespace skh::sim {

namespace {

// Table 1, one row per issue, in paper order. `target_kind` maps the
// paper's component column onto a concrete simulated entity kind.
constexpr std::array<IssueInfo, 20> kIssueTable{{
    {IssueType::kCrcError, ComponentClass::kInterHostNetwork,
     Symptom::kPacketLoss, ComponentKind::kPhysicalLink,
     "Physical fabric causes packet corruption.", true},
    {IssueType::kSwitchPortDown, ComponentClass::kInterHostNetwork,
     Symptom::kUnconnectivity, ComponentKind::kPhysicalLink,
     "The switch port is unreachable.", true},
    {IssueType::kSwitchPortFlapping, ComponentClass::kInterHostNetwork,
     Symptom::kPacketLoss, ComponentKind::kPhysicalLink,
     "The switch port is flapping.", true},
    {IssueType::kSwitchOffline, ComponentClass::kInterHostNetwork,
     Symptom::kUnconnectivity, ComponentKind::kPhysicalSwitch,
     "The switch crashes or is manually set to offline for upgrade.", true},
    {IssueType::kRnicHardwareFailure, ComponentClass::kRnic,
     Symptom::kUnconnectivity, ComponentKind::kRnic,
     "Hardware components of the RNIC are not working normally.", true},
    {IssueType::kRnicFirmwareNotResponding, ComponentClass::kRnic,
     Symptom::kHighLatency, ComponentKind::kRnic,
     "RNIC firmware bugs result in high latency of specific flows.", true},
    {IssueType::kRnicPortDown, ComponentClass::kRnic,
     Symptom::kUnconnectivity, ComponentKind::kRnic,
     "The RNIC port is consistently down.", true},
    {IssueType::kRnicPortFlapping, ComponentClass::kRnic,
     Symptom::kPacketLoss, ComponentKind::kRnic,
     "The RNIC port is periodically down.", true},
    {IssueType::kOffloadingFailure, ComponentClass::kRnic,
     Symptom::kHighLatency, ComponentKind::kRnic,
     "Packet en-/de-capsulation cannot be offloaded to the RNIC.", true},
    {IssueType::kBondError, ComponentClass::kRnic, Symptom::kUnconnectivity,
     ComponentKind::kRnic, "Unable to bond the ports of the RNIC.", true},
    {IssueType::kGidChange, ComponentClass::kKernel, Symptom::kUnconnectivity,
     ComponentKind::kHost,
     "The network service of the OS is restarted unexpectedly.", true},
    {IssueType::kPcieNicError, ComponentClass::kHostBoard,
     Symptom::kHighLatency, ComponentKind::kHost,
     "The RNICs in the same host cannot communicate with each other.", true},
    {IssueType::kGpuDirectRdmaError, ComponentClass::kHostBoard,
     Symptom::kHighLatency, ComponentKind::kHost,
     "The GPU cannot directly communicate with the RNIC in the container.",
     true},
    {IssueType::kNotUsingRdma, ComponentClass::kVirtualSwitch,
     Symptom::kHighLatency, ComponentKind::kVSwitch,
     "Flows that should be transmitted over RDMA actually use TCP/UDP.",
     true},
    {IssueType::kRepetitiveFlowOffloading, ComponentClass::kVirtualSwitch,
     Symptom::kHighLatency, ComponentKind::kVSwitch,
     "Offloaded flows are frequently invalidated in the RNIC.", true},
    {IssueType::kSuboptimalFlowOffloading, ComponentClass::kVirtualSwitch,
     Symptom::kHighLatency, ComponentKind::kVSwitch,
     "Flows are offloaded in incorrect orders; some flows see high latency.",
     true},
    {IssueType::kContainerCrash, ComponentClass::kContainerRuntime,
     Symptom::kUnconnectivity, ComponentKind::kContainer,
     "Containers crash shortly after creation due to runtime defects.", true},
    {IssueType::kHugepageMisconfig, ComponentClass::kConfiguration,
     Symptom::kHighLatency, ComponentKind::kHost,
     "The host's hugepage configuration is not consistent with the RNIC.",
     true},
    {IssueType::kCongestionControlIssue, ComponentClass::kConfiguration,
     Symptom::kHighLatency, ComponentKind::kPhysicalSwitch,
     "Congestion control of a specific switch queue is not enabled.", true},
    {IssueType::kNvlinkDegradation, ComponentClass::kIntraHost, Symptom::kNone,
     ComponentKind::kHost,
     "GPU-to-GPU / GPU-to-PCIe intra-host issue; invisible to probing.",
     false},
}};

}  // namespace

std::string_view to_string(IssueType t) noexcept {
  switch (t) {
    case IssueType::kCrcError: return "CRC error";
    case IssueType::kSwitchPortDown: return "Switch port down";
    case IssueType::kSwitchPortFlapping: return "Switch port flapping";
    case IssueType::kSwitchOffline: return "Switch offline";
    case IssueType::kRnicHardwareFailure: return "RNIC hardware failure";
    case IssueType::kRnicFirmwareNotResponding:
      return "RNIC firmware not responding";
    case IssueType::kRnicPortDown: return "RNIC port down";
    case IssueType::kRnicPortFlapping: return "RNIC port flapping";
    case IssueType::kOffloadingFailure: return "Offloading failure";
    case IssueType::kBondError: return "Bond error";
    case IssueType::kGidChange: return "GID change";
    case IssueType::kPcieNicError: return "PCIe-NIC error";
    case IssueType::kGpuDirectRdmaError: return "GPU direct RDMA error";
    case IssueType::kNotUsingRdma: return "Not using RDMA";
    case IssueType::kRepetitiveFlowOffloading:
      return "Repetitive flow offloading";
    case IssueType::kSuboptimalFlowOffloading:
      return "Suboptimal flow offloading";
    case IssueType::kContainerCrash: return "Container crash";
    case IssueType::kHugepageMisconfig: return "Hugepage misconfiguration";
    case IssueType::kCongestionControlIssue:
      return "Congestion control issue";
    case IssueType::kNvlinkDegradation: return "NVLink degradation";
  }
  return "unknown";
}

std::string_view to_string(Symptom s) noexcept {
  switch (s) {
    case Symptom::kPacketLoss: return "Packet Loss";
    case Symptom::kUnconnectivity: return "Unconnectivity";
    case Symptom::kHighLatency: return "High Latency";
    case Symptom::kNone: return "None";
  }
  return "unknown";
}

std::string_view to_string(ComponentClass c) noexcept {
  switch (c) {
    case ComponentClass::kInterHostNetwork: return "Inter-host Network";
    case ComponentClass::kRnic: return "RNIC";
    case ComponentClass::kKernel: return "Kernel";
    case ComponentClass::kHostBoard: return "Host Board";
    case ComponentClass::kVirtualSwitch: return "Virtual Switch";
    case ComponentClass::kContainerRuntime: return "Container Runtime";
    case ComponentClass::kConfiguration: return "Configuration";
    case ComponentClass::kIntraHost: return "Intra-host (NVLink/PCIe)";
  }
  return "unknown";
}

std::string_view to_string(ComponentKind k) noexcept {
  switch (k) {
    case ComponentKind::kPhysicalLink: return "link";
    case ComponentKind::kPhysicalSwitch: return "switch";
    case ComponentKind::kRnic: return "rnic";
    case ComponentKind::kHost: return "host";
    case ComponentKind::kVSwitch: return "vswitch";
    case ComponentKind::kContainer: return "container";
  }
  return "unknown";
}

std::string to_string(ComponentRef r) {
  std::ostringstream os;
  os << to_string(r.kind) << '#' << r.index;
  return os.str();
}

const IssueInfo& issue_info(IssueType t) {
  for (const auto& info : kIssueTable) {
    if (info.type == t) return info;
  }
  throw std::invalid_argument("issue_info: unknown issue type");
}

std::span<const IssueInfo> all_issue_infos() {
  return {kIssueTable.data(), kIssueTable.size()};
}

FaultEffect default_effect(IssueType t) {
  FaultEffect e;
  switch (issue_info(t).symptom) {
    case Symptom::kPacketLoss:
      e.loss_probability = 0.15;
      break;
    case Symptom::kUnconnectivity:
      e.unreachable = true;
      break;
    case Symptom::kHighLatency:
      // Fig. 18 case: latency jumps from ~16us to ~120us with <0.1% loss.
      e.extra_latency_us = 104.0;
      e.loss_probability = 0.0008;
      break;
    case Symptom::kNone:
      break;
  }
  switch (t) {
    case IssueType::kSwitchPortFlapping:
      e.flap_period = SimTime::seconds(5.0);
      e.loss_probability = 1.0;  // all-or-nothing per flap phase
      break;
    case IssueType::kRnicPortFlapping:
      e.flap_period = SimTime::seconds(8.0);
      e.loss_probability = 1.0;
      break;
    case IssueType::kCrcError:
      e.loss_probability = 0.08;  // corruption drops a fraction of packets
      break;
    case IssueType::kRepetitiveFlowOffloading:
      // Frequent re-offloading: moderate latency inflation, bursty.
      e.extra_latency_us = 60.0;
      break;
    case IssueType::kCongestionControlIssue:
      e.extra_latency_us = 45.0;
      break;
    default:
      break;
  }
  return e;
}

bool Fault::active_at(SimTime t) const noexcept {
  return t >= start && t < end;
}

bool Fault::degrading_at(SimTime t) const noexcept {
  if (!active_at(t)) return false;
  if (!effect.flap_period) return true;
  const auto period = effect.flap_period->raw_nanos();
  if (period <= 0) return true;
  const auto phase = (t - start).raw_nanos() / period;
  return (phase % 2) == 1;
}

GrayMemberPlan make_gray_member_link(const topo::Topology& topo, RnicId src,
                                     RnicId dst, std::uint32_t member,
                                     double loss_probability,
                                     double extra_latency_us) {
  const topo::Path path = topo.route_via(src, dst, member);  // checks member
  // links = [uplink(src), switch-switch hops..., uplink(dst)]; the first
  // switch-switch hop (ToR -> spine) is unique to this equal-cost member,
  // whereas the uplinks are shared by every member of the group.
  if (path.intra_host || path.links.size() < 3) {
    throw std::invalid_argument(
        "make_gray_member_link: pair has no member-distinct links");
  }
  GrayMemberPlan plan;
  plan.target = {ComponentKind::kPhysicalLink, path.links[1].value()};
  plan.path_id = member;
  plan.effect.loss_probability = loss_probability;
  plan.effect.extra_latency_us = extra_latency_us;
  return plan;
}

std::uint32_t FaultInjector::inject(IssueType type, ComponentRef target,
                                    SimTime start, SimTime end) {
  return inject(type, target, start, end, default_effect(type));
}

std::uint32_t FaultInjector::inject(IssueType type, ComponentRef target,
                                    SimTime start, SimTime end,
                                    const FaultEffect& effect) {
  Fault f;
  f.id = static_cast<std::uint32_t>(faults_.size());
  f.type = type;
  f.target = target;
  f.effect = effect;
  f.start = start;
  f.end = end;
  faults_.push_back(f);
  return f.id;
}

std::uint32_t FaultInjector::inject_phantom(ComponentRef target,
                                            SimTime start, SimTime end) {
  FaultEffect effect;
  effect.unreachable = true;  // a dead agent answers nothing
  const auto id =
      inject(IssueType::kContainerCrash, target, start, end, effect);
  faults_[id].ground_truth = false;
  return id;
}

void FaultInjector::repair(std::uint32_t fault_id, SimTime at) {
  if (fault_id >= faults_.size()) {
    throw std::out_of_range("FaultInjector::repair: bad id");
  }
  auto& f = faults_[fault_id];
  f.end = std::clamp(at, f.start, f.end);
}

std::string_view to_string(ChurnKind k) noexcept {
  switch (k) {
    case ChurnKind::kRestart: return "restart";
    case ChurnKind::kMigrate: return "migrate";
    case ChurnKind::kCrash: return "crash";
    case ChurnKind::kAgentDeath: return "agent-death";
  }
  return "unknown";
}

std::vector<ChurnEvent> make_restart_storm(std::uint32_t n_containers,
                                           std::size_t restarts, SimTime start,
                                           SimTime spacing, RngStream& rng) {
  std::vector<ChurnEvent> plan;
  plan.reserve(restarts);
  SimTime cursor = start;
  for (std::size_t i = 0; i < restarts; ++i) {
    ChurnEvent e;
    e.kind = ChurnKind::kRestart;
    e.container_index = n_containers == 0
                            ? 0
                            : static_cast<std::uint32_t>(rng.uniform_int(
                                  0, static_cast<std::int64_t>(n_containers) -
                                         1));
    e.at = cursor;
    plan.push_back(e);
    cursor += spacing;
  }
  return plan;
}

std::vector<ChurnEvent> make_reregistration_race(std::uint32_t n_containers,
                                                 std::size_t restarts,
                                                 SimTime at) {
  // Distinct victims, all at the same instant: round-robin over the task so
  // deregistration and re-registration callbacks interleave across peers.
  std::vector<ChurnEvent> plan;
  plan.reserve(restarts);
  for (std::size_t i = 0; i < restarts; ++i) {
    ChurnEvent e;
    e.kind = ChurnKind::kRestart;
    e.container_index =
        n_containers == 0
            ? 0
            : static_cast<std::uint32_t>(i % n_containers);
    e.at = at;
    plan.push_back(e);
  }
  return plan;
}

std::vector<ChurnEvent> make_migration_wave(std::uint32_t n_containers,
                                            std::size_t migrations,
                                            SimTime start, SimTime spacing,
                                            RngStream& rng) {
  auto plan = make_restart_storm(n_containers, migrations, start, spacing, rng);
  for (auto& e : plan) e.kind = ChurnKind::kMigrate;
  return plan;
}

std::string_view to_string(TelemetryFaultKind k) noexcept {
  switch (k) {
    case TelemetryFaultKind::kResponseLoss: return "response-loss";
    case TelemetryFaultKind::kDuplication: return "duplication";
    case TelemetryFaultKind::kReordering: return "reordering";
    case TelemetryFaultKind::kClockSkew: return "clock-skew";
    case TelemetryFaultKind::kRttCorruption: return "rtt-corruption";
    case TelemetryFaultKind::kTracerouteHopLoss: return "traceroute-hop-loss";
    case TelemetryFaultKind::kAnalyzerBlackout: return "analyzer-blackout";
  }
  return "unknown";
}

double TelemetryFaultPlan::magnitude_at(TelemetryFaultKind kind,
                                        SimTime t) const noexcept {
  double mag = 0.0;
  for (const auto& f : faults) {
    if (f.kind == kind && f.active_at(t)) mag = std::max(mag, f.magnitude);
  }
  return mag;
}

bool TelemetryFaultPlan::blackout_at(SimTime t) const noexcept {
  for (const auto& f : faults) {
    if (f.kind == TelemetryFaultKind::kAnalyzerBlackout && f.active_at(t)) {
      return true;
    }
  }
  return false;
}

TelemetryFaultPlan make_telemetry_storm(std::size_t episodes, SimTime start,
                                        SimTime spacing, SimTime duration,
                                        RngStream& rng) {
  // Kind-appropriate default magnitudes (probabilities, or seconds for
  // clock skew); each episode scales its default by a draw in [0.5, 1.0].
  struct KindDefault {
    TelemetryFaultKind kind;
    double magnitude;
  };
  static constexpr KindDefault kCycle[] = {
      {TelemetryFaultKind::kResponseLoss, 0.5},
      {TelemetryFaultKind::kDuplication, 0.3},
      {TelemetryFaultKind::kReordering, 0.25},
      {TelemetryFaultKind::kClockSkew, 2.0},
      {TelemetryFaultKind::kRttCorruption, 0.05},
      {TelemetryFaultKind::kTracerouteHopLoss, 0.3},
      {TelemetryFaultKind::kAnalyzerBlackout, 0.0},
  };
  TelemetryFaultPlan plan;
  plan.faults.reserve(episodes);
  SimTime cursor = start;
  for (std::size_t i = 0; i < episodes; ++i) {
    const auto& base = kCycle[i % std::size(kCycle)];
    TelemetryFault f;
    f.kind = base.kind;
    f.start = cursor;
    f.end = cursor + duration;
    f.magnitude = base.magnitude * rng.uniform(0.5, 1.0);
    plan.faults.push_back(f);
    cursor += spacing;
  }
  return plan;
}

std::string_view to_string(CollectiveFaultKind k) noexcept {
  switch (k) {
    case CollectiveFaultKind::kHang: return "collective-hang";
    case CollectiveFaultKind::kStraggler: return "straggler-rank";
    case CollectiveFaultKind::kHostSlowdown: return "host-slowdown";
  }
  return "unknown";
}

bool CollectiveFaultPlan::hang_at(std::uint32_t container_index,
                                  SimTime t) const noexcept {
  for (const auto& f : faults) {
    if (f.kind == CollectiveFaultKind::kHang &&
        f.container_index == container_index && f.active_at(t)) {
      return true;
    }
  }
  return false;
}

double CollectiveFaultPlan::slowdown_at(std::uint32_t container_index,
                                        SimTime t) const noexcept {
  double factor = 1.0;
  for (const auto& f : faults) {
    if (f.kind == CollectiveFaultKind::kHang) continue;
    if (f.container_index == container_index && f.active_at(t)) {
      factor = std::max(factor, f.magnitude);
    }
  }
  return factor;
}

CollectiveFault make_collective_hang(std::uint32_t container_index,
                                     SimTime start, SimTime duration) {
  return CollectiveFault{CollectiveFaultKind::kHang, container_index, start,
                         start + duration, 1.0};
}

CollectiveFault make_straggler_rank(std::uint32_t container_index,
                                    SimTime start, SimTime duration,
                                    double slowdown) {
  return CollectiveFault{CollectiveFaultKind::kStraggler, container_index,
                         start, start + duration, slowdown};
}

CollectiveFault make_host_slowdown(std::uint32_t container_index,
                                   SimTime start, SimTime duration,
                                   double slowdown) {
  return CollectiveFault{CollectiveFaultKind::kHostSlowdown, container_index,
                         start, start + duration, slowdown};
}

CollectiveFaultPlan make_collective_storm(std::uint32_t n_containers,
                                          std::size_t episodes, SimTime start,
                                          SimTime spacing, SimTime duration,
                                          RngStream& rng) {
  static constexpr CollectiveFaultKind kCycle[] = {
      CollectiveFaultKind::kHang,
      CollectiveFaultKind::kStraggler,
      CollectiveFaultKind::kHostSlowdown,
  };
  CollectiveFaultPlan plan;
  plan.faults.reserve(episodes);
  SimTime cursor = start;
  for (std::size_t i = 0; i < episodes; ++i) {
    const auto victim = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(n_containers) - 1));
    switch (kCycle[i % std::size(kCycle)]) {
      case CollectiveFaultKind::kHang:
        plan.faults.push_back(make_collective_hang(victim, cursor, duration));
        break;
      case CollectiveFaultKind::kStraggler:
        plan.faults.push_back(make_straggler_rank(
            victim, cursor, duration, 4.0 + 8.0 * rng.uniform()));
        break;
      case CollectiveFaultKind::kHostSlowdown:
        plan.faults.push_back(make_host_slowdown(
            victim, cursor, duration, 2.5 + 2.0 * rng.uniform()));
        break;
    }
    cursor += spacing;
  }
  return plan;
}

const Fault& FaultInjector::fault(std::uint32_t id) const {
  if (id >= faults_.size()) {
    throw std::out_of_range("FaultInjector::fault: bad id");
  }
  return faults_[id];
}

std::vector<const Fault*> FaultInjector::active_on(ComponentRef c,
                                                   SimTime t) const {
  std::vector<const Fault*> out;
  for (const auto& f : faults_) {
    if (f.target == c && f.degrading_at(t)) out.push_back(&f);
  }
  return out;
}

std::vector<const Fault*> FaultInjector::active_at(SimTime t) const {
  std::vector<const Fault*> out;
  for (const auto& f : faults_) {
    if (f.active_at(t)) out.push_back(&f);
  }
  return out;
}

}  // namespace skh::sim
