#include "sim/event_queue.h"

#include <utility>

namespace skh::sim {

void EventQueue::schedule_at(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  heap_.push(Entry{at, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_after(SimTime delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle instead (std::function copy is cheap enough
  // at simulation granularity).
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  e.cb();
  return true;
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.top().at <= until) step();
  if (now_ < until) now_ = until;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace skh::sim
