// Discrete-event simulation core.
//
// The cluster, probing, and fault subsystems all advance on one simulated
// clock: container startups, probe rounds, fault activation windows, and
// analyzer window closes are events on this queue. Events at equal times
// run in scheduling order (stable), keeping campaigns deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace skh::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute simulated time `at`. Scheduling in the past
  /// (before now()) is clamped to now(): the event runs on the next step.
  void schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` `delay` after the current time.
  void schedule_after(SimTime delay, Callback cb);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Run the earliest event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void run_until(SimTime until);

  /// Drain the queue completely.
  void run_all();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace skh::sim
