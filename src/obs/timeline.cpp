#include "obs/timeline.h"

#include <cstdio>

namespace skh::obs {

void CaseTimeline::add(SimTime at, const char* stage, std::string detail,
                       double value) {
  // Stages must read monotone in sim time. An analyzer warm-restore stamps
  // its "analyzer.restore" entry at restore time, while windows that were
  // open across the blackout still close at their nominal boundaries —
  // which lie *inside* the blackout, i.e. before the restore entry. Clamp
  // rather than reorder: the causal order (restore happened before those
  // closes were observed) is the truth an operator should read.
  if (!entries.empty() && at < entries.back().at) at = entries.back().at;
  TimelineEntry e;
  e.at = at;
  e.stage = stage;
  e.detail = std::move(detail);
  e.value = value;
  entries.push_back(std::move(e));
}

std::string CaseTimeline::to_string() const {
  std::string out;
  if (entries.empty()) return out;
  const SimTime t0 = entries.front().at;
  char buf[96];
  for (const auto& e : entries) {
    std::snprintf(buf, sizeof buf, "[+%10.3fs] %-18s ",
                  (e.at - t0).to_seconds(), e.stage);
    out += buf;
    out += e.detail;
    if (e.value != 0.0) {
      std::snprintf(buf, sizeof buf, "  (%.4g)", e.value);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace skh::obs
