#include "obs/exposition.h"

#include <cctype>
#include <cstdio>

namespace skh::obs {
namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// %.17g round-trips every finite double exactly, so equal values — which is
// what the merge rules guarantee across thread/shard counts — print equal
// bytes. Non-finite gauges (never produced by our components, but the
// format must not emit unparsable text) print as 0.
void append_f64(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v == v ? v : 0.0);
  out += buf;
}

void append_bound(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  out += buf;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "skh_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name;
    out.push_back(' ');
    append_u64(out, c.value);
    out.push_back('\n');
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name;
    out.push_back(' ');
    append_f64(out, g.value);
    out.push_back('\n');
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cum += h.counts[b];
      out += name + "_bucket{le=\"";
      if (b < h.bounds.size()) {
        append_bound(out, h.bounds[b]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      append_u64(out, cum);
      out.push_back('\n');
    }
    out += name + "_sum ";
    append_f64(out, h.sum);
    out.push_back('\n');
    out += name + "_count ";
    append_u64(out, h.count);
    out.push_back('\n');
    out += name + "_dropped ";
    append_u64(out, h.dropped);
    out.push_back('\n');
  }
  return out;
}

}  // namespace skh::obs
