// Unified metrics registry: named counters, gauges, and fixed-bucket
// histograms for every pipeline stage.
//
// The production system streams per-agent and per-window telemetry into a
// cloud log service (§6); this is the in-process equivalent. Design
// constraints, in order:
//
//  1. *Hot-path cost.* Recording through a bound handle is one predictable
//     null-check plus a plain add/store — the same instructions the old
//     hand-rolled `DetectorCounters` struct cost. Unbound handles (obs not
//     attached) are no-ops, so instrumentation can stay compiled in
//     everywhere.
//  2. *No cross-thread contention.* Each recording thread gets its own
//     shard; handles bind to the calling thread's shard cells once, at
//     setup, and all later recording is unsynchronized within that shard.
//  3. *Deterministic scrape.* `scrape()` merges shards and emits samples
//     sorted by metric name. Counter values and histogram bucket counts
//     are 64-bit integer sums — exact and order-independent — so a scrape
//     is bit-stable no matter how work was sharded across threads.
//     Floating-point aggregates (gauge values, histogram sums) are summed
//     in shard-creation order; they are bit-stable whenever a registry is
//     recorded from one thread (the `runner::run_many` usage: one registry
//     per campaign, merged across campaigns in seed order).
//
// Concurrency contract: registration and binding may happen from any
// thread at any time; recording is wait-free; `scrape()` and
// `counter_total()` are well-defined when no thread is concurrently
// recording (quiesce first — e.g. after ThreadPool::wait), which is how
// the campaign runner uses them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace skh::obs {

/// Bound counter handle: increments the owning thread's shard cell.
/// Default-constructed (unbound) handles drop every record.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (cell_ != nullptr) *cell_ += n;
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] bool bound() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  std::uint64_t* cell_ = nullptr;
};

/// Bound gauge handle (a settable level, e.g. active agents).
class Gauge {
 public:
  void set(double v) noexcept {
    if (cell_ != nullptr) *cell_ = v;
  }
  void add(double v) noexcept {
    if (cell_ != nullptr) *cell_ += v;
  }
  [[nodiscard]] bool bound() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  double* cell_ = nullptr;
};

/// Bound fixed-bucket histogram handle. Bucket i counts observations v
/// with bounds[i-1] < v <= bounds[i]; one implicit overflow bucket catches
/// v > bounds.back(), so there are bounds.size() + 1 buckets. Non-finite
/// observations (NaN / ±inf — e.g. a corrupted-RTT telemetry episode)
/// never reach a bucket: every `v > bound` comparison on a NaN is false,
/// which used to file the junk into bucket 0 and poison `sum`; they are
/// counted in `dropped` instead so a scrape still shows the plane lied.
class Histogram {
 public:
  void observe(double v) noexcept;
  [[nodiscard]] bool bound() const noexcept { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  struct Cells {
    std::vector<std::uint64_t> counts;  // bounds.size() + 1
    std::uint64_t count = 0;
    std::uint64_t dropped = 0;  ///< non-finite observations rejected
    double sum = 0.0;
  };
  Cells* cells_ = nullptr;
  const double* bounds_ = nullptr;  // registry-owned, stable
  std::size_t n_bounds_ = 0;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  friend bool operator==(const GaugeSample&, const GaugeSample&) = default;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  std::uint64_t dropped = 0;  ///< non-finite observations rejected
  double sum = 0.0;

  /// Estimated q-quantile (q in [0,1]): linear interpolation inside the
  /// first bucket whose cumulative count reaches q*count. The implicit
  /// overflow bucket has no upper bound, so estimates saturate at
  /// bounds.back(). Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  friend bool operator==(const HistogramSample&,
                         const HistogramSample&) = default;
};

/// Point-in-time scrape of one registry, or the name-keyed merge of many
/// (the fleet snapshot `run_many` builds across campaign seeds). Samples
/// are kept sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Name-keyed union: counters/histogram counts add, gauges add (a fleet
  /// gauge is the sum of per-deployment levels). Histograms with the same
  /// name must share bucket bounds.
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;

  /// Human-readable dump, one metric per line, name-sorted.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Merge many snapshots in input order (e.g. `run_many` seed order).
[[nodiscard]] MetricsSnapshot merge_snapshots(
    std::span<const MetricsSnapshot> snaps);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create a metric id. Re-registering the same name returns the
  /// existing id (components attached to one registry share the series).
  std::uint32_t counter_id(std::string_view name);
  std::uint32_t gauge_id(std::string_view name);
  /// `upper_bounds` must be strictly increasing; re-registration with
  /// different bounds keeps the original bounds.
  std::uint32_t histogram_id(std::string_view name,
                             std::span<const double> upper_bounds);

  /// Bind a handle to the calling thread's shard. Cells stay valid for the
  /// registry's lifetime; bind once at setup, record lock-free after.
  [[nodiscard]] Counter bind_counter(std::uint32_t id);
  [[nodiscard]] Gauge bind_gauge(std::uint32_t id);
  [[nodiscard]] Histogram bind_histogram(std::uint32_t id);

  /// Explicit-token binds: same semantics as the bind_* overloads above but
  /// keyed by a caller-supplied registration token instead of the calling
  /// thread's. Exists so tests can simulate OS thread-id reuse; production
  /// code uses the thread-keyed overloads, which route here with
  /// this_thread_token().
  [[nodiscard]] Counter bind_counter_for_token(std::uint32_t id,
                                               std::uint64_t token);
  [[nodiscard]] Gauge bind_gauge_for_token(std::uint32_t id,
                                           std::uint64_t token);
  [[nodiscard]] Histogram bind_histogram_for_token(std::uint32_t id,
                                                   std::uint64_t token);

  /// Process-wide monotone registration token for the calling thread.
  /// Shards are keyed by this, not by std::thread::id: the OS recycles
  /// thread ids, so a short-lived worker dying and a new thread inheriting
  /// its id used to silently alias the dead worker's shard. Tokens are
  /// issued once per thread from a monotone counter and never reused.
  [[nodiscard]] static std::uint64_t this_thread_token();

  /// Number of per-thread shards created so far (quiesced reads only).
  [[nodiscard]] std::size_t shard_count() const;

  /// Sum of one counter across all shards (quiesced reads only).
  [[nodiscard]] std::uint64_t counter_total(std::uint32_t id) const;

  /// Merge all shards into a name-sorted snapshot (quiesced reads only).
  [[nodiscard]] MetricsSnapshot scrape() const;

 private:
  // Cells live in deques so binding new metrics or threads never moves
  // already-bound cells.
  struct Shard {
    std::deque<std::uint64_t> counters;
    std::deque<double> gauges;
    std::deque<Histogram::Cells> hists;
  };
  struct HistogramInfo {
    std::string name;
    std::vector<double> bounds;
  };

  /// Locked: find-or-create the shard for `token` and size it to the
  /// current metric count.
  Shard& shard_for_token(std::uint64_t token);

  mutable std::mutex mu_;
  std::deque<std::string> counter_names_;
  std::deque<std::string> gauge_names_;
  std::deque<HistogramInfo> hists_;
  std::map<std::string, std::uint32_t, std::less<>> counter_index_;
  std::map<std::string, std::uint32_t, std::less<>> gauge_index_;
  std::map<std::string, std::uint32_t, std::less<>> hist_index_;
  // Shards in creation order (scrape iterates this), plus the per-token
  // lookup. Binding is the only locked step on the recording side.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::uint64_t, Shard*> shard_of_token_;
};

}  // namespace skh::obs
