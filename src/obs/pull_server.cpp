#include "obs/pull_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace skh::obs {
namespace {

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

PullServer::PullServer(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("PullServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("PullServer: bind/listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
}

PullServer::~PullServer() { close(); }

bool PullServer::serve_once() {
  if (listen_fd_ < 0) return false;
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return false;
  // Read the request head (we only care about the request line).
  std::string req;
  char buf[1024];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  const bool is_metrics = req.rfind("GET /metrics", 0) == 0;
  std::string body;
  std::string status;
  if (is_metrics && provider_) {
    body = provider_();
    status = "200 OK";
  } else {
    body = "not found\n";
    status = "404 Not Found";
  }
  std::string resp = "HTTP/1.0 " + status +
                     "\r\nContent-Type: text/plain; version=0.0.4"
                     "\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body;
  send_all(fd, resp);
  ::close(fd);
  return true;
}

void PullServer::serve(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!serve_once()) return;
  }
}

void PullServer::close() {
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace skh::obs
