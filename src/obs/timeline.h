// Per-failure-case causal timeline.
//
// §6 streams per-window verdicts into a cloud log service so an operator
// can reconstruct how a ticket came to be. The simulation equivalent: every
// `FailureCase` carries the ordered chain of stages that produced it —
// first anomalous window, each subsequent anomaly with its score, the
// close trigger, and the localization verdict — so a `score_campaign`
// mismatch can be replayed from the case artifact alone, without re-running
// the campaign or scraping a tracer that may have wrapped past the moment.
//
// Timelines are recorded unconditionally: entries occur at case granularity
// (a handful per incident), not probe granularity, so the cost is noise.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"

namespace skh::obs {

struct TimelineEntry {
  SimTime at;
  const char* stage = "";  ///< static string (e.g. "case.open", "anomaly")
  std::string detail;      ///< human-readable specifics
  double value = 0.0;      ///< stage-defined measure (score, culprits, ...)
};

struct CaseTimeline {
  std::vector<TimelineEntry> entries;

  /// Append a stage. Entries are kept monotone in sim time: an `at` earlier
  /// than the last entry (e.g. a window closing at its nominal in-blackout
  /// boundary after an analyzer warm-restore already stamped a later entry)
  /// is clamped up to the last entry's time.
  void add(SimTime at, const char* stage, std::string detail,
           double value = 0.0);

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }

  /// One line per entry: "[+123.000s] stage  detail  (value)". Offsets are
  /// relative to the first entry, matching how an operator reads a ticket.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace skh::obs
