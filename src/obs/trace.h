// Bounded sim-time span/event recorder.
//
// Every record is stamped on the simulation clock (`SimTime`), not the wall
// clock: campaign traces are a pure function of (config, seed) and can be
// diffed across machines and replays. The buffer is a fixed-capacity ring —
// recording never allocates and never blocks the hot path; once full, the
// oldest events are evicted (and counted in `dropped()`), never torn.
//
// Category and name fields are `const char*` by design: instrumentation
// sites pass string literals, so recording stores two pointers instead of
// copying strings. Traces export as Chrome trace-event JSON (open in
// chrome://tracing or Perfetto; one track per category) or as JSONL for
// ad-hoc grepping.
//
// A disabled tracer (the default) costs one branch per instrumentation
// site; `bench_obs_overhead` gates that cost at <1% of campaign runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/time.h"

namespace skh::obs {

enum class TraceKind : std::uint8_t {
  kInstant,  ///< a point on the sim clock (probe timeout, verdict, ...)
  kSpan,     ///< an interval [ts, ts+dur] (window, case lifetime, RTT)
};

struct TraceEvent {
  SimTime ts;
  SimTime dur;               ///< spans only; zero for instants
  const char* category = ""; ///< static string (e.g. "probe", "detector")
  const char* name = "";     ///< static string (e.g. "ack", "window.short")
  TraceKind kind = TraceKind::kInstant;
  std::uint64_t arg_a = 0;   ///< site-defined id (pair, container, case, ...)
  std::uint64_t arg_b = 0;
  double value = 0.0;        ///< site-defined measure (score, rtt_us, ...)
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 16384);

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void instant(const char* category, const char* name, SimTime ts,
               std::uint64_t arg_a = 0, std::uint64_t arg_b = 0,
               double value = 0.0);
  void span(const char* category, const char* name, SimTime start,
            SimTime end, std::uint64_t arg_a = 0, std::uint64_t arg_b = 0,
            double value = 0.0);

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Events evicted by ring wrap-around since construction / clear().
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear() noexcept;

 private:
  void push(const TraceEvent& e);

  std::vector<TraceEvent> buf_;  // fixed capacity ring
  std::size_t head_ = 0;         // index of the oldest event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = false;
};

/// Chrome trace-event JSON ({"traceEvents":[...]}); ts/dur in microseconds
/// of sim-time, one tid per category so tracks group by subsystem.
void export_chrome_trace(const Tracer& tracer, std::ostream& os);

/// One JSON object per line: {"ts_us":..,"dur_us":..,"cat":..,"name":..,
/// "kind":..,"a":..,"b":..,"value":..}.
void export_jsonl(const Tracer& tracer, std::ostream& os);

}  // namespace skh::obs
