// Minimal HTTP/1.0 pull server for the metrics exposition endpoint.
//
// Deliberately tiny: one blocking loopback (or any-interface) listener that
// answers `GET /metrics` with whatever the registered body provider returns
// and 404s everything else. No threads, no keep-alive, no TLS — the point
// is to make the exposition format (obs/exposition.h) reachable by a real
// scraper (`curl`, Prometheus) from `examples/metrics_server`, not to be a
// web server. POSIX sockets only.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace skh::obs {

class PullServer {
 public:
  /// Bind and listen on 127.0.0.1:`port` (0 = ephemeral, see `port()`).
  /// Throws std::runtime_error when the socket cannot be bound.
  explicit PullServer(std::uint16_t port = 0);
  ~PullServer();
  PullServer(const PullServer&) = delete;
  PullServer& operator=(const PullServer&) = delete;

  /// The bound port (resolves an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Provider for the `/metrics` response body (text/plain exposition).
  void set_body_provider(std::function<std::string()> provider) {
    provider_ = std::move(provider);
  }

  /// Block until one connection is served (or the listener fails).
  /// Returns false when accept fails (e.g. the socket was closed).
  bool serve_once();

  /// Serve `n` connections back to back.
  void serve(std::size_t n);

  /// Close the listening socket; a blocked serve_once() then returns false.
  void close();

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::function<std::string()> provider_;
};

}  // namespace skh::obs
