#include "obs/recorder.h"

#include <algorithm>

namespace skh::obs {

FlightRecorder::FlightRecorder(const RecorderConfig& cfg) : cfg_(cfg) {
  // Ring state is packed into per-pair bytes; a deeper ring than 255 would
  // overflow them and is far past any forensic need.
  cfg_.window_depth = std::clamp<std::size_t>(cfg_.window_depth, 1, 255);
  cfg_.event_capacity = std::max<std::size_t>(cfg_.event_capacity, 1);
  cfg_.vote_capacity = std::max<std::size_t>(cfg_.vote_capacity, 1);
  cfg_.bundle_capacity = std::max<std::size_t>(cfg_.bundle_capacity, 1);
  events_.resize(cfg_.event_capacity);
  votes_.resize(cfg_.vote_capacity);
}

void FlightRecorder::reserve_pairs(std::size_t n) {
  if (n <= cursor_.size()) return;
  windows_.resize(n * cfg_.window_depth);
  cursor_.resize(n, 0);
  count_.resize(n, 0);
}

void FlightRecorder::record_window(std::uint32_t gid, const WindowRecord& rec) {
  if (!cfg_.enabled) return;
  if (gid >= cursor_.size()) reserve_pairs(static_cast<std::size_t>(gid) + 1);
  const std::size_t base = static_cast<std::size_t>(gid) * cfg_.window_depth;
  const std::uint8_t cur = cursor_[gid];
  if (count_[gid] == cfg_.window_depth) {
    ++window_drops_;  // overwrites the oldest record for this pair
  } else {
    ++count_[gid];
  }
  windows_[base + cur] = rec;
  cursor_[gid] =
      static_cast<std::uint8_t>((cur + 1) % cfg_.window_depth);
}

void FlightRecorder::record_event(const EventRecord& rec) {
  if (!cfg_.enabled) return;
  if (event_count_ == events_.size()) {
    ++event_drops_;
  } else {
    ++event_count_;
  }
  events_[event_cursor_] = rec;
  event_cursor_ = (event_cursor_ + 1) % events_.size();
}

void FlightRecorder::record_vote(const VoteRecord& rec) {
  if (!cfg_.enabled) return;
  if (vote_count_ == votes_.size()) {
    ++vote_drops_;
  } else {
    ++vote_count_;
  }
  votes_[vote_cursor_] = rec;
  vote_cursor_ = (vote_cursor_ + 1) % votes_.size();
}

std::vector<WindowRecord> FlightRecorder::windows_of(
    std::uint32_t gid, const EndpointPair& pair) const {
  std::vector<WindowRecord> out;
  if (gid >= cursor_.size()) return out;
  const std::size_t depth = cfg_.window_depth;
  const std::size_t base = static_cast<std::size_t>(gid) * depth;
  const std::size_t n = count_[gid];
  // Oldest record sits at cursor when the ring is full, else at 0.
  const std::size_t first = n == depth ? cursor_[gid] : 0;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const WindowRecord& rec = windows_[base + (first + i) % depth];
    if (rec.pair == pair) out.push_back(rec);
  }
  return out;
}

std::vector<EventRecord> FlightRecorder::events() const {
  std::vector<EventRecord> out;
  const std::size_t cap = events_.size();
  const std::size_t first = event_count_ == cap ? event_cursor_ : 0;
  out.reserve(event_count_);
  for (std::size_t i = 0; i < event_count_; ++i) {
    out.push_back(events_[(first + i) % cap]);
  }
  return out;
}

std::vector<EventRecord> FlightRecorder::events_of(
    const EndpointPair& pair) const {
  std::vector<EventRecord> out;
  for (const EventRecord& e : events()) {
    if (e.pair == pair) out.push_back(e);
  }
  return out;
}

std::vector<VoteRecord> FlightRecorder::votes_of(std::uint32_t case_id) const {
  std::vector<VoteRecord> out;
  const std::size_t cap = votes_.size();
  const std::size_t first = vote_count_ == cap ? vote_cursor_ : 0;
  for (std::size_t i = 0; i < vote_count_; ++i) {
    const VoteRecord& v = votes_[(first + i) % cap];
    if (v.case_id == case_id) out.push_back(v);
  }
  return out;
}

void FlightRecorder::store_bundle(std::uint32_t case_id, std::string json) {
  for (auto& [id, body] : bundles_) {
    if (id == case_id) {
      body = std::move(json);
      return;
    }
  }
  bundles_.emplace_back(case_id, std::move(json));
  while (bundles_.size() > cfg_.bundle_capacity) {
    bundles_.pop_front();
    ++bundle_drops_;
  }
}

const std::string* FlightRecorder::bundle_of(std::uint32_t case_id) const {
  for (const auto& [id, body] : bundles_) {
    if (id == case_id) return &body;
  }
  return nullptr;
}

void FlightRecorder::clear() {
  std::fill(cursor_.begin(), cursor_.end(), std::uint8_t{0});
  std::fill(count_.begin(), count_.end(), std::uint8_t{0});
  event_cursor_ = event_count_ = 0;
  vote_cursor_ = vote_count_ = 0;
  bundles_.clear();
  window_drops_ = event_drops_ = vote_drops_ = bundle_drops_ = 0;
}

}  // namespace skh::obs
