#include "obs/json_lint.h"

#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdio>

namespace skh::obs {
namespace {

class Linter {
 public:
  explicit Linter(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Linter(text).valid(); }

void json_append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void json_append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace skh::obs
