#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace skh::obs {

void Histogram::observe(double v) noexcept {
  if (cells_ == nullptr) return;
  if (!std::isfinite(v)) {
    // NaN compares false against every bound, which would file it into
    // bucket 0 and poison sum; ±inf would land in a bucket but still
    // poison sum. Both are telemetry junk — count and drop.
    ++cells_->dropped;
    return;
  }
  std::size_t b = 0;
  while (b < n_bounds_ && v > bounds_[b]) ++b;
  ++cells_->counts[b];
  ++cells_->count;
  cells_->sum += v;
}

std::uint32_t MetricsRegistry::counter_id(std::string_view name) {
  std::scoped_lock lock(mu_);
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(counter_names_.size());
  counter_names_.emplace_back(name);
  counter_index_.emplace(std::string(name), id);
  return id;
}

std::uint32_t MetricsRegistry::gauge_id(std::string_view name) {
  std::scoped_lock lock(mu_);
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(gauge_names_.size());
  gauge_names_.emplace_back(name);
  gauge_index_.emplace(std::string(name), id);
  return id;
}

std::uint32_t MetricsRegistry::histogram_id(
    std::string_view name, std::span<const double> upper_bounds) {
  if (upper_bounds.empty()) {
    throw std::invalid_argument("histogram_id: at least one bucket bound");
  }
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    if (upper_bounds[i] <= upper_bounds[i - 1]) {
      throw std::invalid_argument(
          "histogram_id: bounds must be strictly increasing");
    }
  }
  std::scoped_lock lock(mu_);
  const auto it = hist_index_.find(name);
  if (it != hist_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(hists_.size());
  hists_.push_back(HistogramInfo{
      std::string(name),
      std::vector<double>(upper_bounds.begin(), upper_bounds.end())});
  hist_index_.emplace(std::string(name), id);
  return id;
}

std::uint64_t MetricsRegistry::this_thread_token() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t token =
      next.fetch_add(1, std::memory_order_relaxed);
  return token;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_token(std::uint64_t token) {
  // Caller holds mu_.
  const auto it = shard_of_token_.find(token);
  Shard* shard = nullptr;
  if (it != shard_of_token_.end()) {
    shard = it->second;
  } else {
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
    shard_of_token_.emplace(token, shard);
  }
  while (shard->counters.size() < counter_names_.size()) {
    shard->counters.push_back(0);
  }
  while (shard->gauges.size() < gauge_names_.size()) {
    shard->gauges.push_back(0.0);
  }
  while (shard->hists.size() < hists_.size()) {
    Histogram::Cells cells;
    cells.counts.assign(hists_[shard->hists.size()].bounds.size() + 1, 0);
    shard->hists.push_back(std::move(cells));
  }
  return *shard;
}

Counter MetricsRegistry::bind_counter(std::uint32_t id) {
  return bind_counter_for_token(id, this_thread_token());
}

Gauge MetricsRegistry::bind_gauge(std::uint32_t id) {
  return bind_gauge_for_token(id, this_thread_token());
}

Histogram MetricsRegistry::bind_histogram(std::uint32_t id) {
  return bind_histogram_for_token(id, this_thread_token());
}

Counter MetricsRegistry::bind_counter_for_token(std::uint32_t id,
                                                std::uint64_t token) {
  std::scoped_lock lock(mu_);
  if (id >= counter_names_.size()) {
    throw std::out_of_range("bind_counter: unknown id");
  }
  Counter c;
  c.cell_ = &shard_for_token(token).counters[id];
  return c;
}

Gauge MetricsRegistry::bind_gauge_for_token(std::uint32_t id,
                                            std::uint64_t token) {
  std::scoped_lock lock(mu_);
  if (id >= gauge_names_.size()) {
    throw std::out_of_range("bind_gauge: unknown id");
  }
  Gauge g;
  g.cell_ = &shard_for_token(token).gauges[id];
  return g;
}

Histogram MetricsRegistry::bind_histogram_for_token(std::uint32_t id,
                                                    std::uint64_t token) {
  std::scoped_lock lock(mu_);
  if (id >= hists_.size()) {
    throw std::out_of_range("bind_histogram: unknown id");
  }
  Histogram h;
  h.cells_ = &shard_for_token(token).hists[id];
  h.bounds_ = hists_[id].bounds.data();
  h.n_bounds_ = hists_[id].bounds.size();
  return h;
}

std::size_t MetricsRegistry::shard_count() const {
  std::scoped_lock lock(mu_);
  return shards_.size();
}

std::uint64_t MetricsRegistry::counter_total(std::uint32_t id) const {
  std::scoped_lock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (id < shard->counters.size()) total += shard->counters[id];
  }
  return total;
}

MetricsSnapshot MetricsRegistry::scrape() const {
  std::scoped_lock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::uint32_t id = 0; id < counter_names_.size(); ++id) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      if (id < shard->counters.size()) total += shard->counters[id];
    }
    snap.counters.push_back(CounterSample{counter_names_[id], total});
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::uint32_t id = 0; id < gauge_names_.size(); ++id) {
    double total = 0.0;
    for (const auto& shard : shards_) {
      if (id < shard->gauges.size()) total += shard->gauges[id];
    }
    snap.gauges.push_back(GaugeSample{gauge_names_[id], total});
  }
  snap.histograms.reserve(hists_.size());
  for (std::uint32_t id = 0; id < hists_.size(); ++id) {
    HistogramSample h;
    h.name = hists_[id].name;
    h.bounds = hists_[id].bounds;
    h.counts.assign(h.bounds.size() + 1, 0);
    for (const auto& shard : shards_) {
      if (id >= shard->hists.size()) continue;
      const auto& cells = shard->hists[id];
      for (std::size_t b = 0; b < cells.counts.size(); ++b) {
        h.counts[b] += cells.counts[b];
      }
      h.count += cells.count;
      h.dropped += cells.dropped;
      h.sum += cells.sum;
    }
    snap.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  for (const auto& c : other.counters) {
    const auto it = std::lower_bound(counters.begin(), counters.end(), c,
                                     by_name);
    if (it != counters.end() && it->name == c.name) {
      it->value += c.value;
    } else {
      counters.insert(it, c);
    }
  }
  for (const auto& g : other.gauges) {
    const auto it = std::lower_bound(gauges.begin(), gauges.end(), g, by_name);
    if (it != gauges.end() && it->name == g.name) {
      it->value += g.value;
    } else {
      gauges.insert(it, g);
    }
  }
  for (const auto& h : other.histograms) {
    const auto it =
        std::lower_bound(histograms.begin(), histograms.end(), h, by_name);
    if (it != histograms.end() && it->name == h.name) {
      if (it->bounds != h.bounds) {
        throw std::invalid_argument(
            "MetricsSnapshot::merge: histogram bounds mismatch for " + h.name);
      }
      for (std::size_t b = 0; b < it->counts.size(); ++b) {
        it->counts[b] += h.counts[b];
      }
      it->count += h.count;
      it->dropped += h.dropped;
      it->sum += h.sum;
    } else {
      histograms.insert(it, h);
    }
  }
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

double HistogramSample::quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  double lo = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    // The overflow bucket is unbounded above; saturate at the top bound.
    const double hi = b < bounds.size() ? bounds[b] : bounds.back();
    if (counts[b] > 0 &&
        static_cast<double>(cum + counts[b]) >= target) {
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += counts[b];
    lo = hi;
  }
  return bounds.back();
}

std::string MetricsSnapshot::to_string() const {
  std::string out;
  char buf[160];
  for (const auto& c : counters) {
    std::snprintf(buf, sizeof buf, "%-40s %llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const auto& g : gauges) {
    std::snprintf(buf, sizeof buf, "%-40s %.6g\n", g.name.c_str(), g.value);
    out += buf;
  }
  for (const auto& h : histograms) {
    std::snprintf(buf, sizeof buf,
                  "%-40s count=%llu dropped=%llu sum=%.6g buckets=[",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.dropped), h.sum);
    out += buf;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ' ';
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(h.counts[b]));
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

MetricsSnapshot merge_snapshots(std::span<const MetricsSnapshot> snaps) {
  MetricsSnapshot total;
  for (const auto& s : snaps) total.merge(s);
  return total;
}

}  // namespace skh::obs
