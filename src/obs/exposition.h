// Prometheus-style text exposition of a MetricsSnapshot.
//
// The scrape format is a *contract*: a future daemonized analyzer serves it
// live, so it must be deterministic — byte-identical for equal snapshots no
// matter how many threads or shards produced them. Format rules
// (documented in ARCHITECTURE.md → Observability → Exposition format):
//
//   * Metric names are sanitized (`[^a-zA-Z0-9_]` → `_`) and prefixed
//     `skh_`.
//   * Sections in order: counters, then gauges, then histograms; each
//     name-sorted (the snapshot's own invariant).
//   * Every series is preceded by a `# TYPE` line. Counters print as
//     unsigned integers; gauges and histogram sums as `%.17g` (exact
//     round-trip, so equal doubles print equal bytes).
//   * A histogram emits cumulative `_bucket{le="..."}` lines (upper bounds
//     printed with `%g`), a `_bucket{le="+Inf"}` line, `_sum`, `_count`,
//     and a non-standard `_dropped` line carrying the non-finite
//     observation count (the registry's lying-telemetry accounting).
#pragma once

#include <string>

#include "obs/metrics.h"

namespace skh::obs {

/// Render `snap` in the exposition format above.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snap);

/// `skh_` + name with every character outside [a-zA-Z0-9_] replaced by '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name);

}  // namespace skh::obs
