// The observability context every pipeline stage attaches to.
//
// One `Context` per simulated deployment (the `Experiment` owns it): a
// metrics registry all components register on plus one shared sim-time
// tracer. Components hold a nullable `Context*` and instrument through it;
// a null context (the default for directly-constructed components) makes
// every site a no-op, so unit tests and ablation benches pay nothing.
#pragma once

#include <cstddef>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace skh::obs {

struct ObsConfig {
  /// Attach the registry + instrumentation to the pipeline. Off = the
  /// pre-obs baseline: no context is wired at all (used by the overhead
  /// bench as its reference mode).
  bool metrics = true;
  /// Record trace events. Compiled in either way; disabled tracing costs
  /// one branch per site (gated <1% by bench_obs_overhead).
  bool tracing = false;
  std::size_t trace_capacity = 16384;
  /// Flight-recorder bounds (obs/recorder.h). Enabled by default — the
  /// <1% overhead gate runs with the recorder on.
  RecorderConfig recorder{};
};

struct Context {
  explicit Context(const ObsConfig& cfg = {})
      : tracer(cfg.trace_capacity), recorder(cfg.recorder) {
    tracer.set_enabled(cfg.tracing);
  }
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  MetricsRegistry registry;
  Tracer tracer;
  FlightRecorder recorder;
};

}  // namespace skh::obs
