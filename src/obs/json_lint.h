// Minimal JSON grammar checking and escaping, shared by every obs exporter.
//
// `json_valid` is the recursive-descent validator originally grown inside
// tests/obs/test_trace.cpp (PR 3); it is promoted here so production code —
// the forensic-bundle gate in particular — can assert well-formedness of the
// documents it emits without linking gtest. It checks grammar only (objects,
// arrays, strings with escapes, numbers, literals) and requires the full
// input to be consumed; it does not build a DOM.
//
// `json_append_escaped` is the one escaping routine all obs JSON writers
// share: `"` `\` and every control character below 0x20 are escaped, so any
// byte string (adversarial span names, pair labels, fault details) round-trips
// into a valid JSON string literal.
#pragma once

#include <string>
#include <string_view>

namespace skh::obs {

/// True iff `text` is exactly one well-formed JSON value (plus surrounding
/// whitespace). Rejects trailing garbage, raw control characters inside
/// strings, bad escapes, and truncated documents.
[[nodiscard]] bool json_valid(std::string_view text);

/// Append `s` to `out` as a quoted, fully escaped JSON string literal.
void json_append_escaped(std::string& out, std::string_view s);

/// Append a double as a valid JSON number. Non-finite values (which JSON
/// cannot represent) are emitted as `null`.
void json_append_number(std::string& out, double v);

}  // namespace skh::obs
