// Flight recorder: bounded, allocation-free rings of recent analyzer
// activity, so every verdict can be reconstructed after the fact without
// re-running the campaign.
//
// Three record planes, all fixed-capacity after `reserve_pairs`:
//
//   * per-pair window rings — the last `window_depth` closed-window
//     summaries of every probe pair, keyed by the detector's stable dense
//     pair id (gid). Records carry the EndpointPair identity so a recycled
//     gid (pair retired by churn, slot reused) never attributes a stale
//     window to the wrong pair: readers filter on identity.
//   * a global event ring — recent anomaly events as routed by the hunter.
//   * a global vote ring — localization votes (component, weight, source)
//     recorded when a case closes.
//
// Every ring counts the records it evicts or rejects (`*_drops`), so "the
// recorder wrapped" is always visible in the forensic bundle rather than
// silently truncating history. Memory is bounded by construction:
// pairs * window_depth * sizeof(WindowRecord) (~22 MB at the 97k-pair /
// depth-4 shard-gate scale) plus two small global rings.
//
// The recorder also stores the forensic bundles themselves (bounded,
// oldest-evicted): a case's bundle is built by the hunter at case open and
// finalized at case close, and can be fetched by case id afterwards.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace skh::obs {

/// One closed detection window as seen by the analyzer. Flags describe what
/// the window contributed (bitmask, see kWindow* below).
struct WindowRecord {
  EndpointPair pair;
  SimTime start;
  SimTime end;
  std::uint32_t sent = 0;
  std::uint32_t lost = 0;
  float p50_us = 0.0f;   ///< window median RTT (µs); 0 when no samples
  float score = 0.0f;    ///< LOF score (short) or |z| (long); valid iff kWindowScored
  std::uint32_t flags = 0;
};

inline constexpr std::uint32_t kWindowInsufficient = 1u << 0;  ///< quorum not met
inline constexpr std::uint32_t kWindowScored = 1u << 1;        ///< score field valid
inline constexpr std::uint32_t kWindowLossFired = 1u << 2;     ///< loss-rate event
inline constexpr std::uint32_t kWindowLofFired = 1u << 3;      ///< LOF event
inline constexpr std::uint32_t kWindowLong = 1u << 4;          ///< long-term window
inline constexpr std::uint32_t kWindowZFired = 1u << 5;        ///< Z-test event

/// One anomaly event as routed to case tracking.
struct EventRecord {
  EndpointPair pair;
  SimTime at;
  double score = 0.0;
  std::uint8_t kind = 0;  ///< raw core::AnomalyKind value
};

/// One localization vote: a component some evidence source implicated, with
/// its weight. `source` is a static string ("traceroute", "intersection",
/// or the localization method name).
struct VoteRecord {
  std::uint32_t case_id = 0;
  std::uint8_t component_kind = 0;  ///< raw sim::ComponentKind value
  std::uint32_t component_index = 0;
  float weight = 0.0f;
  const char* source = "";
};

struct RecorderConfig {
  bool enabled = true;
  std::size_t window_depth = 4;      ///< closed windows kept per pair
  std::size_t event_capacity = 4096; ///< global anomaly-event ring
  std::size_t vote_capacity = 1024;  ///< global localization-vote ring
  std::size_t bundle_capacity = 32;  ///< forensic bundles kept (oldest evicted)
};

class FlightRecorder {
 public:
  explicit FlightRecorder(const RecorderConfig& cfg = {});

  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }
  [[nodiscard]] const RecorderConfig& config() const noexcept { return cfg_; }

  /// Size the per-pair arena for at least `n` pairs. Amortized; no-op when
  /// already large enough. Recording to a gid beyond the reserved range
  /// grows the arena (the hunter mirrors the detector's own reservation, so
  /// steady-state recording allocates nothing).
  void reserve_pairs(std::size_t n);

  /// Number of pair slots currently reserved.
  [[nodiscard]] std::size_t pair_capacity() const noexcept {
    return cursor_.size();
  }

  void record_window(std::uint32_t gid, const WindowRecord& rec);
  void record_event(const EventRecord& rec);
  void record_vote(const VoteRecord& rec);

  /// Chronological (oldest-first) surviving window records for `gid` whose
  /// identity matches `pair` (recycled-slot records are skipped).
  [[nodiscard]] std::vector<WindowRecord> windows_of(
      std::uint32_t gid, const EndpointPair& pair) const;

  /// Chronological surviving events, optionally filtered to one pair.
  [[nodiscard]] std::vector<EventRecord> events() const;
  [[nodiscard]] std::vector<EventRecord> events_of(
      const EndpointPair& pair) const;

  /// Surviving votes for one case, in record order.
  [[nodiscard]] std::vector<VoteRecord> votes_of(std::uint32_t case_id) const;

  /// Store (or replace) the forensic bundle for a case. Evicts the oldest
  /// bundle beyond `bundle_capacity` and counts the eviction.
  void store_bundle(std::uint32_t case_id, std::string json);
  /// Bundle for `case_id`, or nullptr if never stored / already evicted.
  [[nodiscard]] const std::string* bundle_of(std::uint32_t case_id) const;
  [[nodiscard]] const std::deque<std::pair<std::uint32_t, std::string>>&
  bundles() const noexcept {
    return bundles_;
  }

  /// Dropped-record accounting: window/event/vote counts are records
  /// overwritten on ring wrap; bundle drops are evictions.
  [[nodiscard]] std::uint64_t window_drops() const noexcept { return window_drops_; }
  [[nodiscard]] std::uint64_t event_drops() const noexcept { return event_drops_; }
  [[nodiscard]] std::uint64_t vote_drops() const noexcept { return vote_drops_; }
  [[nodiscard]] std::uint64_t bundle_drops() const noexcept { return bundle_drops_; }

  void clear();

 private:
  RecorderConfig cfg_;
  // Per-pair rings, flattened: slot gid holds windows_[gid*depth ..
  // gid*depth+depth). cursor_/count_ pack the ring state per pair.
  std::vector<WindowRecord> windows_;
  std::vector<std::uint8_t> cursor_;
  std::vector<std::uint8_t> count_;

  std::vector<EventRecord> events_;
  std::size_t event_cursor_ = 0;
  std::size_t event_count_ = 0;

  std::vector<VoteRecord> votes_;
  std::size_t vote_cursor_ = 0;
  std::size_t vote_count_ = 0;

  std::deque<std::pair<std::uint32_t, std::string>> bundles_;

  std::uint64_t window_drops_ = 0;
  std::uint64_t event_drops_ = 0;
  std::uint64_t vote_drops_ = 0;
  std::uint64_t bundle_drops_ = 0;
};

}  // namespace skh::obs
