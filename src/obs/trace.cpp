#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <string_view>

namespace skh::obs {

Tracer::Tracer(std::size_t capacity) : buf_(std::max<std::size_t>(1, capacity)) {}

void Tracer::push(const TraceEvent& e) {
  if (size_ < buf_.size()) {
    buf_[(head_ + size_) % buf_.size()] = e;
    ++size_;
  } else {
    buf_[head_] = e;
    head_ = (head_ + 1) % buf_.size();
    ++dropped_;
  }
}

void Tracer::instant(const char* category, const char* name, SimTime ts,
                     std::uint64_t arg_a, std::uint64_t arg_b, double value) {
  if (!enabled_) return;
  TraceEvent e;
  e.ts = ts;
  e.category = category;
  e.name = name;
  e.kind = TraceKind::kInstant;
  e.arg_a = arg_a;
  e.arg_b = arg_b;
  e.value = value;
  push(e);
}

void Tracer::span(const char* category, const char* name, SimTime start,
                  SimTime end, std::uint64_t arg_a, std::uint64_t arg_b,
                  double value) {
  if (!enabled_) return;
  TraceEvent e;
  e.ts = start;
  e.dur = end - start;
  e.category = category;
  e.name = name;
  e.kind = TraceKind::kSpan;
  e.arg_a = arg_a;
  e.arg_b = arg_b;
  e.value = value;
  push(e);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

void Tracer::clear() noexcept {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

namespace {

/// Escape for a JSON string value. Category/name fields are static
/// literals in practice, but export must stay well-formed for any input.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  // JSON has no NaN/Infinity tokens; printf would emit "nan"/"inf" and
  // corrupt the document. A non-finite payload (e.g. a corrupted-RTT
  // telemetry episode traced verbatim) exports as null.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  os << buf;
}

}  // namespace

void export_chrome_trace(const Tracer& tracer, std::ostream& os) {
  // One tid per category (in first-seen order) so chrome://tracing /
  // Perfetto lays each subsystem out as its own track.
  std::map<std::string_view, int> tids;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : tracer.events()) {
    const auto [it, inserted] =
        tids.emplace(e.category, static_cast<int>(tids.size()));
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_json_string(os, e.name);
    os << ",\"cat\":";
    write_json_string(os, e.category);
    if (e.kind == TraceKind::kSpan) {
      os << ",\"ph\":\"X\",\"ts\":";
      write_number(os, e.ts.to_micros());
      os << ",\"dur\":";
      write_number(os, e.dur.to_micros());
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      write_number(os, e.ts.to_micros());
    }
    os << ",\"pid\":0,\"tid\":" << it->second << ",\"args\":{\"a\":" << e.arg_a
       << ",\"b\":" << e.arg_b << ",\"value\":";
    write_number(os, e.value);
    os << "}}";
  }
  os << "]}";
}

void export_jsonl(const Tracer& tracer, std::ostream& os) {
  for (const auto& e : tracer.events()) {
    os << "{\"ts_us\":";
    write_number(os, e.ts.to_micros());
    os << ",\"dur_us\":";
    write_number(os, e.dur.to_micros());
    os << ",\"cat\":";
    write_json_string(os, e.category);
    os << ",\"name\":";
    write_json_string(os, e.name);
    os << ",\"kind\":\""
       << (e.kind == TraceKind::kSpan ? "span" : "instant") << "\"";
    os << ",\"a\":" << e.arg_a << ",\"b\":" << e.arg_b << ",\"value\":";
    write_number(os, e.value);
    os << "}\n";
  }
}

}  // namespace skh::obs
