#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace skh::core {

bool fault_affects_pair(const sim::Fault& fault, const EndpointPair& pair,
                        const topo::Topology& topo) {
  const auto& t = fault.target;
  switch (t.kind) {
    case sim::ComponentKind::kRnic:
      return pair.src.rnic.value() == t.index ||
             pair.dst.rnic.value() == t.index;
    case sim::ComponentKind::kContainer:
      return pair.src.container.value() == t.index ||
             pair.dst.container.value() == t.index;
    case sim::ComponentKind::kHost:
    case sim::ComponentKind::kVSwitch:
      return topo.host_of(pair.src.rnic).value() == t.index ||
             topo.host_of(pair.dst.rnic).value() == t.index;
    case sim::ComponentKind::kPhysicalLink: {
      const auto path = topo.route(pair.src.rnic, pair.dst.rnic);
      return std::any_of(path.links.begin(), path.links.end(),
                         [&](LinkId l) { return l.value() == t.index; });
    }
    case sim::ComponentKind::kPhysicalSwitch: {
      const auto path = topo.route(pair.src.rnic, pair.dst.rnic);
      return std::any_of(path.switches.begin(), path.switches.end(),
                         [&](SwitchId s) { return s.value() == t.index; });
    }
  }
  return false;
}

namespace {

/// Is the case's verdict the fault's target? Accepts the uplink <-> RNIC
/// port aliasing in both directions (the two names denote one physical
/// port).
bool verdict_matches(const Localization& loc, const sim::Fault& fault,
                     const topo::Topology& topo) {
  for (const auto& c : loc.culprits) {
    if (c == fault.target) return true;
    if (c.kind == sim::ComponentKind::kRnic &&
        fault.target.kind == sim::ComponentKind::kPhysicalLink) {
      if (topo.uplink_of(RnicId{c.index}).value() == fault.target.index) {
        return true;
      }
    }
    if (c.kind == sim::ComponentKind::kPhysicalLink &&
        fault.target.kind == sim::ComponentKind::kRnic) {
      if (topo.uplink_of(RnicId{fault.target.index}).value() == c.index) {
        return true;
      }
    }
    // Repetitive flow offloading (Table 1 #16/#15 class): the virtual
    // switch keeps invalidating the RNIC's offloaded flows, so the RNIC
    // flow-table dump is the observable artifact; an RNIC verdict on the
    // fault's host denotes the same incident (the paper's Fig. 18 case was
    // first isolated at the RNIC and then root-caused to the control
    // plane).
    if (fault.type == sim::IssueType::kRepetitiveFlowOffloading &&
        fault.target.kind == sim::ComponentKind::kVSwitch &&
        c.kind == sim::ComponentKind::kRnic &&
        topo.host_of(RnicId{c.index}).value() == fault.target.index) {
      return true;
    }
  }
  return false;
}

bool time_overlaps(const FailureCase& c, const sim::Fault& f,
                   SimTime slack) {
  return c.last_event >= f.start && c.first_event <= f.end + slack;
}

}  // namespace

double CampaignScore::precision() const {
  return cases_total == 0 ? 1.0
                          : static_cast<double>(cases_true) /
                                static_cast<double>(cases_total);
}

double CampaignScore::recall() const {
  const std::size_t all = injected_visible + injected_invisible;
  return all == 0 ? 1.0
                  : static_cast<double>(detected_true) /
                        static_cast<double>(all);
}

double CampaignScore::localization_accuracy() const {
  return localized_total == 0
             ? 0.0
             : static_cast<double>(localized_correct) /
                   static_cast<double>(localized_total);
}

CampaignScore score_campaign(const std::vector<FailureCase>& cases,
                             const sim::FaultInjector& faults,
                             const topo::Topology& topo,
                             const ScoreConfig& cfg) {
  CampaignScore score;

  // Per-case: does it match any injected fault? Network-silent cases are
  // tallied apart — the probe-plane precision/recall frame does not apply
  // to them (no pairs, no probe-visible ground-truth fault to match).
  std::vector<bool> fault_detected(faults.faults().size(), false);
  std::vector<double> latencies;
  for (const auto& c : cases) {
    if (c.cls == CaseClass::kTenantVisibleNetworkSilent) {
      ++score.cases_network_silent;
      continue;
    }
    ++score.cases_total;
    bool matched = false;
    for (const auto& f : faults.faults()) {
      if (!f.ground_truth) continue;
      if (!sim::issue_info(f.type).probe_visible) continue;
      if (!time_overlaps(c, f, cfg.match_slack)) continue;
      const bool affects = std::any_of(
          c.pairs.begin(), c.pairs.end(), [&](const EndpointPair& p) {
            return fault_affects_pair(f, p, topo);
          });
      if (!affects) continue;
      matched = true;
      if (!fault_detected[f.id]) {
        fault_detected[f.id] = true;
        latencies.push_back((c.first_event - f.start).to_seconds());
      }
      if (c.localization.found()) {
        // A case may match several faults; credit the localization against
        // the fault it names, counting the case once.
      }
    }
    if (matched) {
      ++score.cases_true;
    } else {
      ++score.cases_false;
    }
  }
  // Localization accuracy: per matched case with a verdict, does the
  // verdict name any fault the case matches?
  for (const auto& c : cases) {
    if (c.cls == CaseClass::kTenantVisibleNetworkSilent) continue;
    bool matched_any = false;
    bool verdict_ok = false;
    for (const auto& f : faults.faults()) {
      if (!f.ground_truth) continue;
      if (!sim::issue_info(f.type).probe_visible) continue;
      if (!time_overlaps(c, f, cfg.match_slack)) continue;
      const bool affects = std::any_of(
          c.pairs.begin(), c.pairs.end(), [&](const EndpointPair& p) {
            return fault_affects_pair(f, p, topo);
          });
      if (!affects) continue;
      matched_any = true;
      if (c.localization.found() && verdict_matches(c.localization, f, topo)) {
        verdict_ok = true;
      }
    }
    if (matched_any) {
      ++score.localized_total;
      if (verdict_ok) ++score.localized_correct;
    }
  }

  for (const auto& f : faults.faults()) {
    if (!f.ground_truth) continue;
    if (sim::issue_info(f.type).probe_visible) {
      ++score.injected_visible;
    } else {
      ++score.injected_invisible;
    }
    if (fault_detected[f.id]) ++score.detected_true;
  }
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double l : latencies) sum += l;
    score.mean_detection_latency_s = sum / static_cast<double>(latencies.size());
  }
  return score;
}

double MetricSummary::ci95_halfwidth() const {
  if (count < 2) return 0.0;
  return 1.96 * stddev / std::sqrt(static_cast<double>(count));
}

namespace {

MetricSummary summarize_metric(const std::vector<double>& xs) {
  MetricSummary m;
  m.count = xs.size();
  if (!xs.empty()) {
    m.mean = mean_of(xs);
    m.stddev = stddev_of(xs);
  }
  return m;
}

}  // namespace

ScoreSummary summarize_scores(std::span<const CampaignScore> scores) {
  ScoreSummary s;
  s.runs = scores.size();
  std::vector<double> prec, rec, loc, lat;
  for (const auto& c : scores) {
    prec.push_back(c.precision());
    rec.push_back(c.recall());
    loc.push_back(c.localization_accuracy());
    if (c.detected_true > 0) lat.push_back(c.mean_detection_latency_s);
    s.total_cases += c.cases_total;
    s.total_cases_false += c.cases_false;
    s.total_injected_visible += c.injected_visible;
    s.total_injected_invisible += c.injected_invisible;
    s.total_detected += c.detected_true;
  }
  s.precision = summarize_metric(prec);
  s.recall = summarize_metric(rec);
  s.localization_accuracy = summarize_metric(loc);
  s.detection_latency_s = summarize_metric(lat);
  return s;
}

DetectorCounters merge_counters(std::span<const DetectorCounters> counters) {
  DetectorCounters total;
  for (const auto& c : counters) total += c;
  return total;
}

double lof_fast_path_ratio(const DetectorCounters& c) {
  const std::uint64_t scored = c.lof_fast_path + c.lof_fallback;
  if (scored == 0) return 1.0;
  return static_cast<double>(c.lof_fast_path) / static_cast<double>(scored);
}

}  // namespace skh::core
