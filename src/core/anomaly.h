// Connectivity anomaly detection (§5.2).
//
// Per endpoint pair, the analyzer maintains:
//  - an unreachability rule (a streak of undelivered probes),
//  - a per-window packet-loss rule,
//  - short-term latency analysis: each closed 30 s window becomes a
//    {p25, p50, p75, min, mean, std, max} point scored with LOF against a
//    five-minute look-back of windows,
//  - long-term latency analysis: a log-normal model fitted on the first
//    healthy 30-minute window, with later 30-minute windows Z-tested
//    against it (catches gradual drift the short-term LOF absorbs).
#pragma once

#include <deque>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "ml/lof.h"
#include "ml/stats_tests.h"
#include "probe/probe_types.h"

namespace skh::core {

enum class AnomalyKind : std::uint8_t {
  kUnreachable,      ///< consecutive probe losses (hard connectivity break)
  kPacketLoss,       ///< window loss rate above threshold
  kLatencyShortTerm, ///< LOF outlier window
  kLatencyLongTerm,  ///< Z-test rejection against the log-normal baseline
};

[[nodiscard]] std::string_view to_string(AnomalyKind k) noexcept;

struct AnomalyEvent {
  EndpointPair pair;
  SimTime detected_at;
  AnomalyKind kind = AnomalyKind::kUnreachable;
  double score = 0.0;  ///< LOF score / |z| / loss rate / streak length
};

struct DetectorConfig {
  SimTime short_window = SimTime::seconds(30);
  std::size_t lookback_windows = 10;  ///< 5 min of 30 s windows
  ml::LofConfig lof{3, 1.8};
  /// LOF is a *relative* density score: on a tight healthy population even
  /// microscopic deviations score high. A window is only anomalous when its
  /// LOF exceeds the threshold AND its median deviates from the look-back
  /// median by at least this fraction (transient-congestion filtering,
  /// §5.2: "filter out these transient latency spikes").
  double min_relative_shift = 0.15;
  SimTime long_window = SimTime::minutes(30);
  /// With thousands of (pair x window) tests per hour, the per-test alpha
  /// must price in multiple testing: 1e-6 keeps the campaign-level false-
  /// alarm expectation well below one.
  double z_alpha = 1e-6;
  /// Operational significance floor: a statistically significant but
  /// sub-5% median drift is not a failure worth a ticket.
  double long_term_min_shift = 0.05;
  double loss_rate_threshold = 0.05;
  /// A window alarms on loss only with at least this many drops: one
  /// unlucky drop among a handful of probes is statistically expected even
  /// on healthy paths with sub-0.1% loss.
  std::size_t min_lost_per_window = 2;
  std::size_t min_samples_per_window = 5;
  int unreachable_streak = 3;
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(DetectorConfig cfg = {});

  /// Feed one probe result. Window boundaries are detected from the result
  /// timestamps; events fired by this observation are returned.
  [[nodiscard]] std::vector<AnomalyEvent> ingest(const probe::ProbeResult& r);

  /// Force-close all open windows (end of campaign) and return any final
  /// events.
  [[nodiscard]] std::vector<AnomalyEvent> flush(SimTime now);

  [[nodiscard]] const DetectorConfig& config() const noexcept { return cfg_; }

 private:
  struct PairState {
    // Short-term window under construction.
    std::optional<SimTime> short_start;
    std::vector<double> short_rtts;
    std::size_t short_sent = 0;
    std::size_t short_lost = 0;
    // Look-back of closed-window feature vectors.
    std::deque<std::vector<double>> lookback;
    // Unreachability streak.
    int fail_streak = 0;
    bool unreachable_alarmed = false;
    // Long-term window under construction + fitted baseline.
    std::optional<SimTime> long_start;
    std::vector<double> long_rtts;
    std::optional<ml::LogNormalModel> baseline;
  };

  void close_short_window(const EndpointPair& pair, PairState& st,
                          SimTime at, std::vector<AnomalyEvent>& events);
  void close_long_window(const EndpointPair& pair, PairState& st, SimTime at,
                         std::vector<AnomalyEvent>& events);

  DetectorConfig cfg_;
  std::unordered_map<EndpointPair, PairState> pairs_;
};

}  // namespace skh::core
