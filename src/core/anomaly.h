// Connectivity anomaly detection (§5.2).
//
// Per endpoint pair, the analyzer maintains:
//  - an unreachability rule (a streak of undelivered probes),
//  - a per-window packet-loss rule,
//  - short-term latency analysis: each closed 30 s window becomes a
//    {p25, p50, p75, min, mean, std, max} point scored with LOF against a
//    five-minute look-back of windows,
//  - long-term latency analysis: a log-normal model fitted on the first
//    healthy 30-minute window, with later 30-minute windows Z-tested
//    against it (catches gradual drift the short-term LOF absorbs).
//
// Two compute paths produce those verdicts. The *streaming* path (default)
// is the production hot path: window summaries accumulate incrementally
// into per-pair sample strips, the LOF look-back model stays resident
// across window closes (`ml::StreamingLof`), and long windows keep only
// log-domain moments — no per-window copies, sorts, or refits. The *batch*
// path recomputes everything from retained samples at each close and
// serves as the reference implementation; both paths emit identical
// verdicts (equality pinned by tests/core and re-checked by
// bench_anomaly_throughput on campaign scenarios).
//
// Pair storage is cache-resident by construction: pair resolution rides a
// fixed-capacity `common::FlatPairTable` sized at plan time
// (`reserve_pairs`), and per-pair state is an SoA split indexed by the
// table's stable ids — a contiguous 64-byte-aligned `PairHot` array (one
// cache line per pair, all a rollover-free probe touches), a fixed-stride
// sample-strip arena, and a parallel cold array read only at window
// closes. The layout contract (slot states, probing, capacity math,
// handle stability across churn and snapshot/restore) is documented in
// ARCHITECTURE.md under "Memory layout & hot path".
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/flat_table.h"
#include "common/stats.h"
#include "common/time.h"
#include "ml/lof.h"
#include "ml/stats_tests.h"
#include "ml/streaming_lof.h"
#include "obs/context.h"
#include "probe/probe_types.h"

namespace skh::core {

enum class AnomalyKind : std::uint8_t {
  kUnreachable,      ///< consecutive probe losses (hard connectivity break)
  kPacketLoss,       ///< window loss rate above threshold
  kLatencyShortTerm, ///< LOF outlier window
  kLatencyLongTerm,  ///< Z-test rejection against the log-normal baseline
};

[[nodiscard]] std::string_view to_string(AnomalyKind k) noexcept;

struct AnomalyEvent {
  /// Events raised by whole-pair rules carry kAnyPath; per-path sub-series
  /// verdicts (sprayed pairs) carry the sick member's path id, which the
  /// localizer uses to vote only on that member's links.
  static constexpr std::uint32_t kAnyPath = 0xFFFFFFFFu;

  EndpointPair pair;
  SimTime detected_at;
  AnomalyKind kind = AnomalyKind::kUnreachable;
  double score = 0.0;  ///< LOF score / |z| / loss rate / streak length
  std::uint32_t path_id = kAnyPath;
};

/// Sort events into the canonical order (detected_at, pair, kind, path,
/// score) — a total order over everything an event carries, so any batch
/// holding the same event *set* sorts to the same sequence regardless of
/// how the producing work was sharded or interleaved. The case-tracking
/// layer keys its open/merge/suppress decisions off this order, which is
/// what makes verdicts shard-count-invariant.
void canonicalize_events(std::vector<AnomalyEvent>& events);

struct DetectorConfig {
  SimTime short_window = SimTime::seconds(30);
  std::size_t lookback_windows = 10;  ///< 5 min of 30 s windows
  ml::LofConfig lof{3, 1.8};
  /// LOF is a *relative* density score: on a tight healthy population even
  /// microscopic deviations score high. A window is only anomalous when its
  /// LOF exceeds the threshold AND its median deviates from the look-back
  /// median by at least this fraction (transient-congestion filtering,
  /// §5.2: "filter out these transient latency spikes").
  double min_relative_shift = 0.15;
  SimTime long_window = SimTime::minutes(30);
  /// With thousands of (pair x window) tests per hour, the per-test alpha
  /// must price in multiple testing: 1e-6 keeps the campaign-level false-
  /// alarm expectation well below one.
  double z_alpha = 1e-6;
  /// Operational significance floor: a statistically significant but
  /// sub-5% median drift is not a failure worth a ticket.
  double long_term_min_shift = 0.05;
  double loss_rate_threshold = 0.05;
  /// A window alarms on loss only with at least this many drops: one
  /// unlucky drop among a handful of probes is statistically expected even
  /// on healthy paths with sub-0.1% loss.
  std::size_t min_lost_per_window = 2;
  std::size_t min_samples_per_window = 5;
  int unreachable_streak = 3;
  /// Select the incremental compute path (see file header). The batch path
  /// is kept as the reference the streaming path is verified against.
  bool streaming = true;
  /// Gray-telemetry quorum: a short window that observed fewer than this
  /// many probes is *insufficient* — it gets no loss verdict, no LOF
  /// push/score, and its samples are not fed to the long-term Z-test
  /// (counted in detector.windows_insufficient). A measurement plane
  /// dropping responses must starve the detector, not feed it windows so
  /// sparse their statistics are noise. 0 disables the gate.
  std::size_t window_quorum = 0;
  /// Robust-scale clamp: before the LOF feature vector is built, samples
  /// above p75 + max(iqr_mult * IQR, band_frac * p50) of their own window
  /// are winsorized to that cap, so one corrupted RTT (a 50x bit-flip
  /// outlier) cannot poison the look-back's mean/std/max coordinates.
  /// Percentile coordinates and the long-term fold are untouched.
  /// iqr_mult 0 disables.
  double rtt_clamp_iqr_mult = 8.0;
  double rtt_clamp_band_frac = 0.5;
  /// Plan-time pair capacity: sizes the flat pair table (and with it the
  /// hot/cold/strip arenas' growth schedule) once, so ingest performs no
  /// rehash. The hunter sets this from its ping lists; 0 starts minimal
  /// and grows by doubling.
  std::size_t expected_pairs = 0;
  /// Occupied fraction the pair table is sized for (see FlatTableConfig).
  double pair_table_fullness = 0.5;
  /// Per-pair sample-strip stride (doubles) in the streaming arena — the
  /// per-window sample count that stays allocation-free. Windows with more
  /// delivered samples spill the excess to a per-pair cold vector; verdicts
  /// are unaffected. With 30 s windows at the 5 s campaign probe interval a
  /// window holds 6 samples, so the default 8 covers it with exactly one
  /// cache line per pair — a wider strip dilutes the arena across 4x the
  /// lines and measurably slows ingest (see ARCHITECTURE.md, "Memory
  /// layout & hot path").
  std::size_t window_sample_capacity = 8;
  /// Per-path sub-series for sprayed/adaptive pairs: each pair keeps a
  /// bounded table of per-member {sent, lost, rtt} accumulators keyed by
  /// ProbeResult.path_id, evaluated differentially at short-window closes
  /// (a member is anomalous relative to its siblings — the only way a gray
  /// ECMP member shows up when pair-level rates stay under threshold).
  /// Off by default: static ECMP sees one path per pair and pays nothing;
  /// the hunter turns it on when the engine routing mode is not static.
  bool track_paths = false;
};

/// Ingest-side observability counters, aggregated by `core/metrics` across
/// campaign fleets (defined here rather than in metrics.h because metrics
/// sits above the detector in the include graph).
struct DetectorCounters {
  std::uint64_t probes_ingested = 0;
  std::uint64_t samples_delivered = 0;
  std::uint64_t short_windows_closed = 0;
  std::uint64_t long_windows_closed = 0;
  std::uint64_t lof_fast_path = 0;  ///< streaming scores read from the
                                    ///< cached densities (incl. in-model
                                    ///< `last_score` reads)
  std::uint64_t lof_fallback = 0;   ///< streaming scores that needed the
                                    ///< virtual-insert recompute
  std::uint64_t lof_kdist_rebuilds = 0;  ///< k-distance candidate buffers
                                         ///< lazily rebuilt by a row scan
                                         ///< when a close actually scored
  std::uint64_t lof_gate_skips = 0;  ///< streaming closes where the O(1)
                                     ///< shift gate short-circuited scoring
  std::uint64_t events_emitted = 0;
  std::uint64_t windows_insufficient = 0;  ///< short windows below quorum
  std::uint64_t duplicates_rejected = 0;   ///< same (seq, sent_at) re-seen
  std::uint64_t stale_rejected = 0;        ///< reordered / skewed-backwards

  DetectorCounters& operator+=(const DetectorCounters& o) noexcept {
    probes_ingested += o.probes_ingested;
    samples_delivered += o.samples_delivered;
    short_windows_closed += o.short_windows_closed;
    long_windows_closed += o.long_windows_closed;
    lof_fast_path += o.lof_fast_path;
    lof_fallback += o.lof_fallback;
    lof_kdist_rebuilds += o.lof_kdist_rebuilds;
    lof_gate_skips += o.lof_gate_skips;
    events_emitted += o.events_emitted;
    windows_insufficient += o.windows_insufficient;
    duplicates_rejected += o.duplicates_rejected;
    stale_rejected += o.stale_rejected;
    return *this;
  }

  friend bool operator==(const DetectorCounters&,
                         const DetectorCounters&) = default;
};

class AnomalyDetector {
 public:
  /// Stable dense per-pair id from the flat pair table; resolve once via
  /// `handle_of`, then ingest without re-hashing the pair on every probe.
  /// Handles survive table rebuilds, churn retirement (until the retired
  /// slot is recycled at `flush`), and snapshot/restore.
  using PairHandle = common::FlatPairTable::SlotId;

  explicit AnomalyDetector(DetectorConfig cfg = {});

  /// Attach the observability context (nullptr reverts to the detector's
  /// private registry). The ingest counters become `detector.*` series on
  /// the context's registry; only counts recorded after the attach land
  /// there, so attach before the first ingest (the `Experiment` does).
  /// Binds on the calling thread — the thread that will drive `ingest`.
  void attach_obs(obs::Context* ctx);

  /// Enable/disable the closed-window log feeding the flight recorder and
  /// the window-residence latency histogram. Off by default; the sharded
  /// facade turns it on when an obs context is attached. The log is
  /// bounded (see `drain_window_log`), costs one bounded push per window
  /// close when on, and nothing when off.
  void set_window_logging(bool on);

  /// Move every logged closed-window record into `out` (appended) and
  /// clear the log. The log's capacity is sized at `reserve_pairs` so a
  /// full-fleet flush (at most two windows per pair) never drops; drops —
  /// possible only if the caller stops draining — are counted.
  void drain_window_log(std::vector<obs::WindowRecord>& out);
  [[nodiscard]] std::uint64_t window_log_drops() const noexcept {
    return window_log_drops_;
  }

  /// Get-or-create the handle for a pair.
  [[nodiscard]] PairHandle handle_of(const EndpointPair& pair);

  /// Pre-size the pair table (and the id-indexed state arrays) for
  /// `pairs` concurrent pairs. Called at plan/replan time, when the ping
  /// lists fix the pair population; ingest after a sufficient reserve
  /// performs zero rehashes and zero table allocations. Growth only.
  void reserve_pairs(std::size_t pairs);

  /// Hot path: feed one probe result under a pre-resolved handle. Events
  /// fired by this observation are appended to `out`; returns how many.
  /// `seq` is the agent-stamped per-pair sequence number (0 = unsequenced,
  /// which bypasses duplicate/reordering rejection): a result repeating the
  /// last (seq, sent_at) is a duplicated delivery and is dropped; a result
  /// whose seq AND timestamp both run backwards is a reordered straggler
  /// and is dropped; any result timestamped before the open short window
  /// (a skewed clock or a delivery delayed across a close) is stale and is
  /// dropped — late lies must not drag the window grid backwards.
  /// `path_id` is the equal-cost member the probe rode (ProbeResult
  /// semantics); only read when cfg.track_paths is on.
  std::size_t ingest(PairHandle h, std::uint64_t seq, SimTime sent_at,
                     bool delivered, double rtt_us, std::uint32_t path_id,
                     std::vector<AnomalyEvent>& out);

  /// Single-path convenience overload (path id 0).
  std::size_t ingest(PairHandle h, std::uint64_t seq, SimTime sent_at,
                     bool delivered, double rtt_us,
                     std::vector<AnomalyEvent>& out) {
    return ingest(h, seq, sent_at, delivered, rtt_us, 0, out);
  }

  /// Unsequenced convenience overload (seq = 0, no rejection rules).
  std::size_t ingest(PairHandle h, SimTime sent_at, bool delivered,
                     double rtt_us, std::vector<AnomalyEvent>& out) {
    return ingest(h, 0, sent_at, delivered, rtt_us, 0, out);
  }

  /// Feed one probe result. Window boundaries are detected from the result
  /// timestamps; events fired by this observation are returned.
  [[nodiscard]] std::vector<AnomalyEvent> ingest(const probe::ProbeResult& r);

  /// Churn integration: mark `pair` — whose endpoints vanished from the
  /// plan (container death, RNIC rebind on migration) — as retired. Its
  /// state stays resident and mapped, so a straggling in-flight result
  /// revives it with full continuity; state that is still retired at
  /// `flush` has its final windows judged exactly as a live pair's and its
  /// slot is then recycled for reuse. No-op if the pair is unknown.
  void retire_pair(const EndpointPair& pair);

  /// Force-close all open windows (end of campaign) and return any final
  /// events. Only windows that reached their nominal span are evaluated: a
  /// few-second partial window carries no evidence at window granularity
  /// and must not fire (e.g.) a 30-minute Z-test alarm. Afterwards,
  /// still-retired pairs (see `retire_pair`) are recycled: their handles
  /// and table ids return to the free lists and their slots reset.
  [[nodiscard]] std::vector<AnomalyEvent> flush(SimTime now);

  [[nodiscard]] const DetectorConfig& config() const noexcept { return cfg_; }

  /// Live (mapped) pairs, including retired-but-not-yet-recycled ones.
  [[nodiscard]] std::size_t pair_count() const noexcept {
    return index_.size();
  }
  /// Pairs currently parked by `retire_pair` awaiting the flush recycle.
  [[nodiscard]] std::size_t retired_count() const noexcept;
  /// The underlying pair table (capacity planning / layout telemetry).
  [[nodiscard]] const common::FlatPairTable& pair_table() const noexcept {
    return index_;
  }
  /// Visit every mapped pair as f(pair) — slot order, deterministic for a
  /// given ingest history. Used by the hunter's churn sweep.
  template <typename F>
  void for_each_pair(F&& f) const {
    index_.for_each([&f](const EndpointPair& p, PairHandle) { f(p); });
  }

  /// Ingest counters, including the per-pair streaming-LOF path split.
  [[nodiscard]] DetectorCounters counters() const;

  /// Opaque copy of the full per-pair analysis state (pair table, hot
  /// lines, sample strips, LOF look-back models, long-term baselines,
  /// sequence tracking, retirement parking). Every piece of pair state is
  /// value-semantic — the table arena and strip arena copy as flat bytes —
  /// so a plain copy IS the serialized form; restoring it and continuing
  /// is bit-identical to never having stopped, and handles resolved
  /// before the snapshot stay valid after a restore. Config and
  /// observability bindings are not part of the snapshot (they belong to
  /// the process, not the analysis).
  class Snapshot;
  [[nodiscard]] Snapshot snapshot() const;
  /// Overwrite the analysis state with `snap`. Counters are NOT rolled
  /// back: they are monotonic process telemetry, not analysis state.
  void restore(const Snapshot& snap);

  /// Movable container for one pair's complete analysis state: hot line,
  /// cold state (LOF look-back model, baselines, spill), sample strip,
  /// magnitude-gate strip, parked flag. The unit of shard rebalance: a
  /// pair extracted from one detector and adopted by another (with the
  /// same config geometry) continues its analysis bit-identically, as if
  /// it had lived there all along. LOF path counters travel inside the
  /// moved model, so fleet-summed counters are rebalance-invariant.
  class PairState;
  /// Remove `pair` and move its full state into `out`; the slot is
  /// recycled (handle freed, any parking annulled). Returns false (and
  /// leaves `out` untouched) if the pair is unknown.
  [[nodiscard]] bool extract_pair(const EndpointPair& pair, PairState& out);
  /// Insert a previously extracted pair. The pair must not already be
  /// mapped here and the state's strip geometry must match this detector's
  /// config (both throw std::logic_error — a rebalance that trips either
  /// is a routing bug, not a data condition). Returns the new handle.
  PairHandle adopt_pair(PairState&& st);

 private:
  // Per-pair state is split hot/cold (SoA by stable table id). `PairHot`
  // holds exactly what a probe with no window rollover touches — the
  // gray-telemetry rejection fields, boundary checks, counters, and the
  // streak rule — packed into one 64-byte cache line; delivered samples
  // land in the pair's fixed-stride strip of `samples_`. A fleet sweep
  // (every pair probed each round) therefore streams one hot line plus
  // one strip line per probe; everything else lives in `PairCold`, read
  // only at window closes (and by the batch reference path, which retains
  // raw samples). PairHot is trivially copyable on purpose: the snapshot
  // of a 100k-pair detector copies the hot array as one memmove.
  struct alignas(64) PairHot {
    // Short- and long-term windows under construction.
    SimTime short_start;
    SimTime long_start;
    // Last accepted (seq, sent_at), for duplicate/stale rejection: read
    // before any window state on every sequenced ingest, so they belong
    // on the same line.
    std::uint64_t last_seq = 0;
    SimTime last_sent;
    std::uint32_t short_sent = 0;
    std::uint32_t short_lost = 0;
    std::uint32_t short_count = 0;  ///< delivered samples (strip + spill)
    std::int32_t fail_streak = 0;
    bool short_open = false;
    bool long_open = false;
    bool unreachable_alarmed = false;
    bool parked = false;  ///< retired by churn, awaiting flush recycle
  };
  static_assert(sizeof(PairHot) == 64,
                "PairHot must stay a single cache line");
  static_assert(std::is_trivially_copyable_v<PairHot>,
                "PairHot must snapshot as flat bytes");

  struct PairCold {
    EndpointPair pair;
    std::vector<double> short_rtts;  // batch path
    std::vector<double> spill;  // streaming path: strip overflow samples
    // Look-back of closed-window feature vectors.
    std::optional<ml::StreamingLof> lof;       // streaming path
    std::deque<std::vector<double>> lookback;  // batch path
    // Feature scratch inline (not a heap vector): a window close is
    // latency-bound on dependent line fetches, and the feature write is on
    // its critical path every close.
    std::array<double, 7> feature{};  // streaming path: reused scratch
    // Long-term accumulators + fitted baseline.
    RunningStats long_log;          // streaming path: moments of ln(rtt)
    std::size_t long_seen = 0;      // streaming path: delivered samples
    std::vector<double> long_rtts;  // batch path
    std::optional<ml::LogNormalModel> baseline;
  };

  // Per-path sub-series slot (track_paths only): cumulative loss/RTT
  // accumulators for one equal-cost member of one pair. 16 bytes x
  // kPathSlots = two cache lines per pair, in their own arena so the
  // static-ECMP hot path never touches them. Trivially copyable for the
  // same snapshot-as-memmove reason as PairHot.
  struct PathSlot {
    std::uint32_t key = 0;  ///< path_id + 1; 0 = empty slot
    std::uint32_t sent = 0;
    std::uint32_t lost = 0;
    float rtt_sum = 0.0f;  ///< sum over delivered samples
  };
  static_assert(sizeof(PathSlot) == 16, "PathSlot layout");
  static_assert(std::is_trivially_copyable_v<PathSlot>,
                "PathSlot must snapshot as flat bytes");
  /// Members tracked per pair. Spray fans over at most spray_ways (default
  /// 8) members, so 8 slots cover it; an overflowing distinct member
  /// steals the least-sampled slot (deterministic: lowest index wins ties).
  static constexpr std::uint32_t kPathSlots = 8;

  void note_path(PairHandle h, std::uint32_t path_id, bool delivered,
                 double rtt_us);
  /// Differential member check at short-window close: a member with enough
  /// cumulative samples whose loss rate (or mean RTT) stands out against
  /// the pooled rest of the members fires a path-scoped event and resets
  /// its accumulators.
  void evaluate_paths(PairHandle h, SimTime at,
                      std::vector<AnomalyEvent>& events);

  void close_short_window(PairHandle h, SimTime at,
                          std::vector<AnomalyEvent>& events);
  void close_long_window(PairHandle h, SimTime at,
                         std::vector<AnomalyEvent>& events);
  /// Sorted view of the open short window's delivered samples: the strip
  /// sorted in place (the common, allocation-free case) or merged with the
  /// spill into reused scratch. Valid until the next ingest/close.
  [[nodiscard]] std::span<const double> window_sorted(PairHandle h);
  /// Reset a recycled slot to freshly-constructed state, folding the
  /// per-pair LOF path counters into the carry so `counters()` stays
  /// monotonic across recycling.
  void recycle(PairHandle h);
  /// (Re)bind the counter handles onto `r` and remember the ids so
  /// `counters()` can read totals back.
  void bind_metrics(obs::MetricsRegistry& r);
  /// Append one closed-window record to the bounded log (no-op when
  /// logging is off; counts a drop when the log is full).
  void log_window(const EndpointPair& pair, SimTime start, SimTime end,
                  std::uint32_t sent, std::uint32_t lost, float p50_us,
                  float score, std::uint32_t flags);

  DetectorConfig cfg_;
  std::uint32_t stride_;  ///< sample-strip stride (window_sample_capacity)
  common::FlatPairTable index_;
  // Dense, indexed by stable table id; hot_[h], cold_[h], and the strip
  // samples_[h * stride_ ..] describe one pair.
  std::vector<PairHot> hot_;
  std::vector<PairCold> cold_;
  /// Strip arena, 64-byte aligned so that with the default stride of 8
  /// doubles every pair's strip is exactly one cache line — a probe dirties
  /// one hot line and one strip line, nothing else.
  std::vector<double, common::ArenaAllocator<double>> samples_;
  /// Magnitude-gate look-back medians, one fixed-stride strip per pair:
  /// the sorted ring (O(1) reference median) in the strip's first
  /// `p50_cap_` doubles, the same values in window order (for eviction) in
  /// the next `p50_cap_`. A strip holds at most `lookback_windows + 1`
  /// live entries — exactly `cold_[h].lof->size()`, maintained in
  /// lock-step, so it carries no count of its own. Central arena rather
  /// than two vectors per pair for the same reason as `samples_`: a close
  /// reaches the gate through a computed address instead of two pointer
  /// chases into per-pair heap blocks.
  std::vector<double, common::ArenaAllocator<double>> p50_;
  std::uint32_t p50_cap_;     ///< entries per region (lookback + slack)
  std::uint32_t p50_stride_;  ///< doubles per pair (2 regions, line-rounded)
  /// Per-path sub-series arena: kPathSlots slots per pair, allocated only
  /// when cfg.track_paths (empty otherwise, so the single-path deployment
  /// pays no memory and no cache traffic for the feature).
  std::vector<PathSlot, common::ArenaAllocator<PathSlot>> paths_;
  /// Ids parked by retire_pair, recycled at flush (entries whose `parked`
  /// flag was cleared by a reviving probe are skipped).
  std::vector<PairHandle> parked_;
  std::vector<double> sort_scratch_;  ///< spill-merge buffer, reused
  // Closed-window log (flight-recorder feed). Not analysis state: excluded
  // from Snapshot, like the counters. Capacity tracks reserve_pairs so a
  // full-fleet flush (≤2 windows per pair) never drops.
  bool log_windows_ = false;
  std::vector<obs::WindowRecord> window_log_;
  std::size_t window_log_cap_ = 4096;
  std::uint64_t window_log_drops_ = 0;
  // LOF path counters of recycled pairs, carried so totals never regress.
  std::uint64_t lof_fast_carry_ = 0;
  std::uint64_t lof_fallback_carry_ = 0;
  std::uint64_t lof_rebuild_carry_ = 0;

  // The ingest counters live on a MetricsRegistry — the attached context's
  // when present, otherwise this private one — so `counters()` and a
  // registry scrape always agree. Handles stay bound (never null) either
  // way, keeping the hot path at one predictable indirect increment.
  obs::Context* obs_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::uint32_t id_probes_ = 0, id_delivered_ = 0, id_short_closed_ = 0,
                id_long_closed_ = 0, id_gate_skips_ = 0, id_events_ = 0,
                id_insufficient_ = 0, id_dup_rejected_ = 0,
                id_stale_rejected_ = 0;
  obs::Counter m_probes_, m_delivered_, m_short_closed_, m_long_closed_,
      m_gate_skips_, m_events_, m_insufficient_, m_dup_rejected_,
      m_stale_rejected_;

 public:
  // Defined after the private pair-state types it copies; nested classes
  // have access to them regardless of this section's access specifier.
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class AnomalyDetector;
    std::uint32_t stride_ = 0;  ///< strip geometry travels with the strips
    common::FlatPairTable index_;
    std::vector<PairHot> hot_;
    std::vector<PairCold> cold_;
    std::vector<double, common::ArenaAllocator<double>> samples_;
    std::vector<double, common::ArenaAllocator<double>> p50_;
    std::vector<PathSlot, common::ArenaAllocator<PathSlot>> paths_;
    std::vector<PairHandle> parked_;
  };

  class PairState {
   public:
    PairState() = default;
    PairState(PairState&&) = default;
    PairState& operator=(PairState&&) = default;

    /// The migrating pair (valid only after a successful extract).
    [[nodiscard]] const EndpointPair& pair() const noexcept {
      return cold_.pair;
    }

   private:
    friend class AnomalyDetector;
    std::uint32_t stride_ = 0;      ///< sample-strip geometry checks
    std::uint32_t p50_stride_ = 0;  ///< magnitude-gate strip geometry
    PairHot hot_{};
    PairCold cold_;
    std::vector<double> samples_;  ///< the pair's strip, stride_ doubles
    std::vector<double> p50_;      ///< the pair's gate strip
    std::vector<PathSlot> paths_;  ///< kPathSlots slots iff track_paths
  };
};

}  // namespace skh::core
