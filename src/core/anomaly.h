// Connectivity anomaly detection (§5.2).
//
// Per endpoint pair, the analyzer maintains:
//  - an unreachability rule (a streak of undelivered probes),
//  - a per-window packet-loss rule,
//  - short-term latency analysis: each closed 30 s window becomes a
//    {p25, p50, p75, min, mean, std, max} point scored with LOF against a
//    five-minute look-back of windows,
//  - long-term latency analysis: a log-normal model fitted on the first
//    healthy 30-minute window, with later 30-minute windows Z-tested
//    against it (catches gradual drift the short-term LOF absorbs).
//
// Two compute paths produce those verdicts. The *streaming* path (default)
// is the production hot path: window summaries accumulate incrementally
// (`WindowAccumulator`), the LOF look-back model stays resident across
// window closes (`ml::StreamingLof`), and long windows keep only log-domain
// moments — no per-window copies, sorts, or refits. The *batch* path
// recomputes everything from retained samples at each close and serves as
// the reference implementation; both paths emit identical verdicts
// (equality pinned by tests/core and re-checked by
// bench_anomaly_throughput on campaign scenarios).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "ml/lof.h"
#include "ml/stats_tests.h"
#include "ml/streaming_lof.h"
#include "obs/context.h"
#include "probe/probe_types.h"

namespace skh::core {

enum class AnomalyKind : std::uint8_t {
  kUnreachable,      ///< consecutive probe losses (hard connectivity break)
  kPacketLoss,       ///< window loss rate above threshold
  kLatencyShortTerm, ///< LOF outlier window
  kLatencyLongTerm,  ///< Z-test rejection against the log-normal baseline
};

[[nodiscard]] std::string_view to_string(AnomalyKind k) noexcept;

struct AnomalyEvent {
  EndpointPair pair;
  SimTime detected_at;
  AnomalyKind kind = AnomalyKind::kUnreachable;
  double score = 0.0;  ///< LOF score / |z| / loss rate / streak length
};

struct DetectorConfig {
  SimTime short_window = SimTime::seconds(30);
  std::size_t lookback_windows = 10;  ///< 5 min of 30 s windows
  ml::LofConfig lof{3, 1.8};
  /// LOF is a *relative* density score: on a tight healthy population even
  /// microscopic deviations score high. A window is only anomalous when its
  /// LOF exceeds the threshold AND its median deviates from the look-back
  /// median by at least this fraction (transient-congestion filtering,
  /// §5.2: "filter out these transient latency spikes").
  double min_relative_shift = 0.15;
  SimTime long_window = SimTime::minutes(30);
  /// With thousands of (pair x window) tests per hour, the per-test alpha
  /// must price in multiple testing: 1e-6 keeps the campaign-level false-
  /// alarm expectation well below one.
  double z_alpha = 1e-6;
  /// Operational significance floor: a statistically significant but
  /// sub-5% median drift is not a failure worth a ticket.
  double long_term_min_shift = 0.05;
  double loss_rate_threshold = 0.05;
  /// A window alarms on loss only with at least this many drops: one
  /// unlucky drop among a handful of probes is statistically expected even
  /// on healthy paths with sub-0.1% loss.
  std::size_t min_lost_per_window = 2;
  std::size_t min_samples_per_window = 5;
  int unreachable_streak = 3;
  /// Select the incremental compute path (see file header). The batch path
  /// is kept as the reference the streaming path is verified against.
  bool streaming = true;
  /// Gray-telemetry quorum: a short window that observed fewer than this
  /// many probes is *insufficient* — it gets no loss verdict, no LOF
  /// push/score, and its samples are not fed to the long-term Z-test
  /// (counted in detector.windows_insufficient). A measurement plane
  /// dropping responses must starve the detector, not feed it windows so
  /// sparse their statistics are noise. 0 disables the gate.
  std::size_t window_quorum = 0;
  /// Robust-scale clamp: before the LOF feature vector is built, samples
  /// above p75 + max(iqr_mult * IQR, band_frac * p50) of their own window
  /// are winsorized to that cap, so one corrupted RTT (a 50x bit-flip
  /// outlier) cannot poison the look-back's mean/std/max coordinates.
  /// Percentile coordinates and the long-term fold are untouched.
  /// iqr_mult 0 disables.
  double rtt_clamp_iqr_mult = 8.0;
  double rtt_clamp_band_frac = 0.5;
};

/// Ingest-side observability counters, aggregated by `core/metrics` across
/// campaign fleets (defined here rather than in metrics.h because metrics
/// sits above the detector in the include graph).
struct DetectorCounters {
  std::uint64_t probes_ingested = 0;
  std::uint64_t samples_delivered = 0;
  std::uint64_t short_windows_closed = 0;
  std::uint64_t long_windows_closed = 0;
  std::uint64_t lof_fast_path = 0;  ///< streaming scores read from the
                                    ///< cached densities (incl. in-model
                                    ///< `last_score` reads)
  std::uint64_t lof_fallback = 0;   ///< streaming scores that needed the
                                    ///< virtual-insert recompute
  std::uint64_t lof_kdist_rebuilds = 0;  ///< drained k-distance candidate
                                         ///< buffers rebuilt by a row scan
  std::uint64_t lof_gate_skips = 0;  ///< streaming closes where the O(1)
                                     ///< shift gate short-circuited scoring
  std::uint64_t events_emitted = 0;
  std::uint64_t windows_insufficient = 0;  ///< short windows below quorum
  std::uint64_t duplicates_rejected = 0;   ///< same (seq, sent_at) re-seen
  std::uint64_t stale_rejected = 0;        ///< reordered / skewed-backwards

  DetectorCounters& operator+=(const DetectorCounters& o) noexcept {
    probes_ingested += o.probes_ingested;
    samples_delivered += o.samples_delivered;
    short_windows_closed += o.short_windows_closed;
    long_windows_closed += o.long_windows_closed;
    lof_fast_path += o.lof_fast_path;
    lof_fallback += o.lof_fallback;
    lof_kdist_rebuilds += o.lof_kdist_rebuilds;
    lof_gate_skips += o.lof_gate_skips;
    events_emitted += o.events_emitted;
    windows_insufficient += o.windows_insufficient;
    duplicates_rejected += o.duplicates_rejected;
    stale_rejected += o.stale_rejected;
    return *this;
  }
};

class AnomalyDetector {
 public:
  /// Dense per-pair index; resolve once via `handle_of`, then ingest
  /// without re-hashing the pair on every probe.
  using PairHandle = std::uint32_t;

  explicit AnomalyDetector(DetectorConfig cfg = {});

  /// Attach the observability context (nullptr reverts to the detector's
  /// private registry). The ingest counters become `detector.*` series on
  /// the context's registry; only counts recorded after the attach land
  /// there, so attach before the first ingest (the `Experiment` does).
  /// Binds on the calling thread — the thread that will drive `ingest`.
  void attach_obs(obs::Context* ctx);

  /// Get-or-create the handle for a pair.
  [[nodiscard]] PairHandle handle_of(const EndpointPair& pair);

  /// Hot path: feed one probe result under a pre-resolved handle. Events
  /// fired by this observation are appended to `out`; returns how many.
  /// `seq` is the agent-stamped per-pair sequence number (0 = unsequenced,
  /// which bypasses duplicate/reordering rejection): a result repeating the
  /// last (seq, sent_at) is a duplicated delivery and is dropped; a result
  /// whose seq AND timestamp both run backwards is a reordered straggler
  /// and is dropped; any result timestamped before the open short window
  /// (a skewed clock or a delivery delayed across a close) is stale and is
  /// dropped — late lies must not drag the window grid backwards.
  std::size_t ingest(PairHandle h, std::uint64_t seq, SimTime sent_at,
                     bool delivered, double rtt_us,
                     std::vector<AnomalyEvent>& out);

  /// Unsequenced convenience overload (seq = 0, no rejection rules).
  std::size_t ingest(PairHandle h, SimTime sent_at, bool delivered,
                     double rtt_us, std::vector<AnomalyEvent>& out) {
    return ingest(h, 0, sent_at, delivered, rtt_us, out);
  }

  /// Feed one probe result. Window boundaries are detected from the result
  /// timestamps; events fired by this observation are returned.
  [[nodiscard]] std::vector<AnomalyEvent> ingest(const probe::ProbeResult& r);

  /// Force-close all open windows (end of campaign) and return any final
  /// events. Only windows that reached their nominal span are evaluated: a
  /// few-second partial window carries no evidence at window granularity
  /// and must not fire (e.g.) a 30-minute Z-test alarm.
  [[nodiscard]] std::vector<AnomalyEvent> flush(SimTime now);

  [[nodiscard]] const DetectorConfig& config() const noexcept { return cfg_; }

  /// Ingest counters, including the per-pair streaming-LOF path split.
  [[nodiscard]] DetectorCounters counters() const;

  /// Opaque copy of the full per-pair analysis state (windows, streaks,
  /// LOF look-back models, long-term baselines, sequence tracking). Every
  /// piece of pair state is value-semantic, so a plain copy IS the
  /// serialized form; restoring it and continuing is bit-identical to
  /// never having stopped. Config and observability bindings are not part
  /// of the snapshot (they belong to the process, not the analysis).
  class Snapshot;
  [[nodiscard]] Snapshot snapshot() const;
  /// Overwrite the analysis state with `snap`. Counters are NOT rolled
  /// back: they are monotonic process telemetry, not analysis state.
  void restore(const Snapshot& snap);

 private:
  // Per-pair state is split hot/cold. `PairHot` holds exactly what a
  // probe with no window rollover touches — boundary checks, counters,
  // the streak rule, and the streaming sample buffer — packed into one
  // 64-byte cache line. A fleet sweep (every pair probed each round)
  // therefore streams 64 contiguous bytes per probe; with the multi-
  // hundred-byte combined struct the same sweep dragged the whole state
  // (resident LOF model included) through the cache and the pair table
  // fell out of L2 at 10k pairs. Everything else lives in `PairCold`,
  // read only at window closes (and by the batch reference path, which
  // retains raw samples).
  struct alignas(64) PairHot {
    // Short- and long-term windows under construction.
    SimTime short_start;
    SimTime long_start;
    std::uint32_t short_sent = 0;
    std::uint32_t short_lost = 0;
    int fail_streak = 0;
    bool short_open = false;
    bool long_open = false;
    bool unreachable_alarmed = false;
    WindowAccumulator short_win;  // streaming path
  };
  static_assert(sizeof(PairHot) == 64,
                "PairHot must stay a single cache line");

  struct PairCold {
    EndpointPair pair;
    std::vector<double> short_rtts;  // batch path
    // Look-back of closed-window feature vectors.
    std::optional<ml::StreamingLof> lof;       // streaming path
    std::vector<double> p50_sorted;            // streaming magnitude gate
    std::vector<double> p50_fifo;              //   (window order, for evict)
    std::deque<std::vector<double>> lookback;  // batch path
    std::vector<double> feature;               // reused scratch
    // Long-term accumulators + fitted baseline.
    RunningStats long_log;          // streaming path: moments of ln(rtt)
    std::size_t long_seen = 0;      // streaming path: delivered samples
    std::vector<double> long_rtts;  // batch path
    std::optional<ml::LogNormalModel> baseline;
  };

  void close_short_window(PairHot& hot, PairCold& cold, SimTime at,
                          std::vector<AnomalyEvent>& events);
  void close_long_window(PairHot& hot, PairCold& cold, SimTime at,
                         std::vector<AnomalyEvent>& events);
  /// (Re)bind the counter handles onto `r` and remember the ids so
  /// `counters()` can read totals back.
  void bind_metrics(obs::MetricsRegistry& r);

  /// Last accepted (seq, sent_at) per pair, for duplicate/stale rejection.
  /// Parallel to hot_ rather than inside PairHot: the hot struct is a full
  /// cache line already, and rejection only reads these 16 bytes before
  /// deciding whether to touch the window state at all.
  struct SeqState {
    std::uint64_t last_seq = 0;
    SimTime last_sent;
  };

  DetectorConfig cfg_;
  std::unordered_map<EndpointPair, PairHandle> index_;
  // Dense, indexed by handle; hot_[h] and cold_[h] describe one pair.
  std::vector<PairHot> hot_;
  std::vector<PairCold> cold_;
  std::vector<SeqState> seq_;

  // The ingest counters live on a MetricsRegistry — the attached context's
  // when present, otherwise this private one — so `counters()` and a
  // registry scrape always agree. Handles stay bound (never null) either
  // way, keeping the hot path at one predictable indirect increment.
  obs::Context* obs_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::uint32_t id_probes_ = 0, id_delivered_ = 0, id_short_closed_ = 0,
                id_long_closed_ = 0, id_gate_skips_ = 0, id_events_ = 0,
                id_insufficient_ = 0, id_dup_rejected_ = 0,
                id_stale_rejected_ = 0;
  obs::Counter m_probes_, m_delivered_, m_short_closed_, m_long_closed_,
      m_gate_skips_, m_events_, m_insufficient_, m_dup_rejected_,
      m_stale_rejected_;

 public:
  // Defined after the private pair-state types it copies; nested classes
  // have access to them regardless of this section's access specifier.
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class AnomalyDetector;
    std::unordered_map<EndpointPair, PairHandle> index_;
    std::vector<PairHot> hot_;
    std::vector<PairCold> cold_;
    std::vector<SeqState> seq_;
  };
};

}  // namespace skh::core
