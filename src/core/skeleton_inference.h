// Traffic-skeleton inference (§5.1, runtime phase).
//
// A CSP cannot see a tenant's parallelism strategy, but it can see each
// RNIC's throughput counters. SkeletonHunter converts every endpoint's burst
// series to STFT features, clusters them under the Eq. 1-3 constraints to
// recover the DP position groups ("same position across different DP
// replicas"), counts distinct burst time-shift levels to recover the number
// of pipeline stages, and finally rebuilds the set of endpoint pairs the
// training traffic actually traverses: ring + double-binary-tree all-reduce
// partners inside each position group (ordered by CSP-visible container
// index, which fixes the ring order), and pipeline neighbors across
// adjacent-stage groups on the same RNIC rank.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "dsp/stft.h"
#include "ml/clustering.h"

namespace skh::core {

/// CSP-visible facts about one endpoint of the monitored task.
struct EndpointObservation {
  Endpoint endpoint;
  std::uint32_t host = 0;             ///< host index (Eq. 3 constraint)
  std::uint32_t container_index = 0;  ///< index of the container in the task
  std::uint32_t rnic_rank = 0;        ///< rank of the RNIC within container
  std::vector<double> throughput;     ///< burst series (1 Hz Gbps samples)
};

struct InferenceConfig {
  dsp::StftConfig stft{};
  /// Candidate DP degrees; empty = all divisors of N giving >= 2 groups.
  std::vector<std::uint32_t> candidate_dp;
  /// Lags within this many samples collapse into one pipeline-stage level.
  int lag_merge_tolerance = 2;
  /// Include the double-binary-tree all-reduce partners in the skeleton.
  bool include_tree_edges = true;
};

struct InferredSkeleton {
  std::uint32_t dp = 0;        ///< inferred data-parallel degree (|c-bar|)
  std::uint32_t num_groups = 0;  ///< k = TP x PP position groups
  std::uint32_t pp = 0;        ///< inferred pipeline depth (lag levels)
  /// position_groups[g] = indices into the observation vector, sorted by
  /// container index (the inferred DP-rank order).
  std::vector<std::vector<std::size_t>> position_groups;
  /// stage_of_group[g] = inferred pipeline-stage level of group g.
  std::vector<std::uint32_t> stage_of_group;
  /// The inferred skeleton: unordered endpoint pairs to probe.
  std::vector<EndpointPair> pairs;
};

/// Median of a lag sample. Even sizes take the LOWER of the two middle
/// elements: a deterministic choice that does not bias stage assignment
/// toward later stages at the tolerance boundary (the upper element would).
[[nodiscard]] int median_lag(std::vector<int> lags);

/// Collapse burst lags into pipeline-stage levels. Each level is anchored at
/// its first (smallest) lag: a lag joins the current level iff it is within
/// `tolerance` of that *anchor*, not of the previous member, so a chain of
/// small steps (e.g. {0, 2, 4, 6} with tolerance 2) yields two levels
/// ({0, 2} and {4, 6}) instead of collapsing transitively into one and
/// undercounting PP depth. Returns the anchor lag of each level, ascending.
[[nodiscard]] std::vector<int> merge_lag_levels(std::vector<int> lags,
                                                int tolerance);

/// Run the full inference. Returns nullopt when clustering finds no feasible
/// grouping (irregular workload, §7.3 limitation) — callers then fall back
/// to the basic ping list.
[[nodiscard]] std::optional<InferredSkeleton> infer_skeleton(
    const std::vector<EndpointObservation>& observations,
    const InferenceConfig& cfg = {});

/// Quality of an inferred skeleton against the ground-truth pair set:
/// coverage = |inferred AND truth| / |truth| (missed pairs create blind
/// spots), excess = |inferred \ truth| / |inferred| (wasted probes).
struct SkeletonQuality {
  double coverage = 0.0;
  double excess = 0.0;
  std::size_t inferred_pairs = 0;
  std::size_t true_pairs = 0;
};

[[nodiscard]] SkeletonQuality evaluate_skeleton(
    const std::vector<EndpointPair>& inferred,
    const std::vector<EndpointPair>& truth);

}  // namespace skh::core
