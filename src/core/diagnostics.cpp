#include "core/diagnostics.h"

namespace skh::core {

DiagnosticsOracle::DiagnosticsOracle(const sim::FaultInjector& faults,
                                     RngStream rng, OracleConfig cfg)
    : faults_(faults), rng_(std::move(rng)), cfg_(cfg) {}

double DiagnosticsOracle::confidence_for(sim::ComponentKind kind) const {
  switch (kind) {
    case sim::ComponentKind::kPhysicalLink: return cfg_.link_log_confidence;
    case sim::ComponentKind::kPhysicalSwitch:
      return cfg_.switch_log_confidence;
    case sim::ComponentKind::kRnic: return cfg_.rnic_check_confidence;
    case sim::ComponentKind::kVSwitch: return cfg_.vswitch_check_confidence;
    case sim::ComponentKind::kHost: return cfg_.host_check_confidence;
    case sim::ComponentKind::kContainer: return cfg_.host_check_confidence;
  }
  return 0.0;
}

bool DiagnosticsOracle::confirms(sim::ComponentRef ref, SimTime t) {
  for (const sim::Fault* f : faults_.active_on(ref, t)) {
    if (!f->ground_truth) continue;  // phantom faults leave no diagnostics
    const auto it = decided_.find(f->id);
    if (it != decided_.end()) {
      if (it->second) return true;
      continue;
    }
    const bool confirmed = rng_.bernoulli(confidence_for(ref.kind));
    decided_.emplace(f->id, confirmed);
    if (confirmed) return true;
  }
  // Flapping faults are inactive half the time but their logs persist: check
  // the enclosing active window too.
  for (const sim::Fault& f : faults_.faults()) {
    if (f.target == ref && f.active_at(t) && f.effect.flap_period &&
        f.ground_truth) {
      const auto it = decided_.find(f.id);
      if (it != decided_.end()) {
        if (it->second) return true;
        continue;
      }
      const bool confirmed = rng_.bernoulli(confidence_for(ref.kind));
      decided_.emplace(f.id, confirmed);
      if (confirmed) return true;
    }
  }
  return false;
}

}  // namespace skh::core
