// Traffic-skeleton fidelity validation (§7.3).
//
// Inference can go wrong when a tenant's workload does not follow standard
// collective-communication patterns (debug clusters, novel parallelism).
// The paper's proposed mitigation: "validate whether the traffic skeleton
// persistently aligns with the actual traffic bursts" before trusting it.
// This checker scores an inferred skeleton against the observed burst
// series: endpoints paired by the skeleton should show correlated burst
// activity, and no strongly-bursting endpoint should be left isolated.
#pragma once

#include <vector>

#include "core/skeleton_inference.h"

namespace skh::core {

struct FidelityConfig {
  /// An endpoint counts as "actively training" when its peak throughput
  /// reaches this level (idle/debug endpoints never leave noise range)...
  double min_peak_gbps = 5.0;
  /// ...and its peak/mean ratio shows burst structure rather than a flat
  /// constant load.
  double min_burstiness = 2.0;
  /// Minimum cross-correlation (at the best lag) between paired endpoints'
  /// series for the pair to count as aligned.
  double min_pair_correlation = 0.35;
  /// Overall fidelity threshold under which the skeleton should not be
  /// trusted (callers fall back to the basic ping list).
  double accept_threshold = 0.7;
};

struct FidelityReport {
  /// Fraction of skeleton pairs whose endpoints' bursts are correlated.
  double pair_alignment = 0.0;
  /// Fraction of actively-bursting endpoints covered by >= 1 skeleton pair.
  double active_coverage = 0.0;
  /// Fraction of endpoints that are actively bursting at all. Near-zero
  /// means an idle/debug cluster where inference has nothing to work with.
  double active_fraction = 0.0;
  /// min(pair_alignment, active_coverage), gated on there being activity.
  double score = 0.0;

  [[nodiscard]] bool acceptable(const FidelityConfig& cfg) const {
    return score >= cfg.accept_threshold;
  }
};

/// Peak-to-mean burstiness of a throughput series (0 for a flat/empty one).
[[nodiscard]] double burstiness(std::span<const double> series);

/// Normalized cross-correlation of two series at their best alignment,
/// in [-1, 1].
[[nodiscard]] double best_correlation(std::span<const double> a,
                                      std::span<const double> b);

/// Score an inferred skeleton against the observations it was derived from
/// (or fresher ones — the paper suggests *persistent* validation).
[[nodiscard]] FidelityReport validate_skeleton(
    const std::vector<EndpointPair>& skeleton_pairs,
    const std::vector<EndpointObservation>& observations,
    const FidelityConfig& cfg = {});

}  // namespace skh::core
