#include "core/forensic.h"

#include <cstdio>

#include "common/flat_table.h"
#include "obs/json_lint.h"
#include "sim/fault.h"

namespace skh::core {

namespace {

void append_key(std::string& out, const char* key) {
  out += '"';
  out += key;
  out += "\":";
}

// json_append_escaped emits the surrounding quotes itself.
void append_string(std::string& out, std::string_view s) {
  obs::json_append_escaped(out, s);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_time(std::string& out, SimTime t) {
  obs::json_append_number(out, t.to_seconds());
}

void append_window(std::string& out, const obs::WindowRecord& w) {
  out += "{\"start\":";
  append_time(out, w.start);
  out += ",\"end\":";
  append_time(out, w.end);
  out += ",\"sent\":";
  append_u64(out, w.sent);
  out += ",\"lost\":";
  append_u64(out, w.lost);
  out += ",\"p50_us\":";
  obs::json_append_number(out, w.p50_us);
  out += ",\"score\":";
  obs::json_append_number(out, w.score);
  out += ",\"flags\":";
  append_u64(out, w.flags);
  out += '}';
}

}  // namespace

std::string forensic_bundle_json(const FailureCase& c,
                                 const ShardedDetector& detector,
                                 const obs::FlightRecorder* recorder,
                                 const obs::MetricsSnapshot* metrics) {
  std::string out;
  out.reserve(4096);

  // --- case identity & verdict ---------------------------------------------
  out += "{\"case\":{\"id\":";
  append_u64(out, c.id);
  out += ",\"task\":";
  append_u64(out, c.task.value());
  out += ",\"first_event\":";
  append_time(out, c.first_event);
  out += ",\"last_event\":";
  append_time(out, c.last_event);
  out += ",\"closed\":";
  out += c.closed ? "true" : "false";
  out += ",\"closed_at\":";
  append_time(out, c.closed ? c.closed_at : c.last_event);
  out += ",\"class\":";
  append_string(out, to_string(c.cls));
  out += ",\"method\":";
  append_string(out, to_string(c.localization.method));
  out += ",\"confidence\":";
  obs::json_append_number(out, c.localization.confidence);
  out += ",\"culprits\":[";
  for (std::size_t i = 0; i < c.localization.culprits.size(); ++i) {
    if (i > 0) out += ',';
    append_string(out, sim::to_string(c.localization.culprits[i]));
  }
  out += "],\"pairs\":[";
  {
    bool first = true;
    for (const auto& p : c.pairs) {
      if (!first) out += ',';
      first = false;
      append_string(out, skh::to_string(p));
    }
  }
  out += "]},";

  // --- causal timeline ------------------------------------------------------
  append_key(out, "timeline");
  out += '[';
  for (std::size_t i = 0; i < c.timeline.entries.size(); ++i) {
    const auto& e = c.timeline.entries[i];
    if (i > 0) out += ',';
    out += "{\"at\":";
    append_time(out, e.at);
    out += ",\"stage\":";
    append_string(out, e.stage);
    out += ",\"detail\":";
    append_string(out, e.detail);
    out += ",\"value\":";
    obs::json_append_number(out, e.value);
    out += '}';
  }
  out += "],";

  // --- anomaly events that fed the case ------------------------------------
  append_key(out, "events");
  out += '[';
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    const auto& e = c.events[i];
    if (i > 0) out += ',';
    out += "{\"pair\":";
    append_string(out, skh::to_string(e.pair));
    out += ",\"at\":";
    append_time(out, e.detected_at);
    out += ",\"kind\":";
    append_string(out, to_string(e.kind));
    out += ",\"score\":";
    obs::json_append_number(out, e.score);
    out += '}';
  }
  out += "],";

  // --- collective signal plane evidence -------------------------------------
  // The verdicts themselves for a network-silent case, cross-plane
  // corroboration for a probe-plane case (agreements > 0 then).
  append_key(out, "collective");
  out += "{\"agreements\":";
  append_u64(out, c.collective_agreements);
  out += ",\"verdicts\":[";
  for (std::size_t i = 0; i < c.collective_evidence.size(); ++i) {
    const auto& v = c.collective_evidence[i];
    if (i > 0) out += ',';
    out += "{\"kind\":";
    append_string(out, collective::to_string(v.kind));
    out += ",\"group\":";
    append_u64(out, v.group);
    out += ",\"iteration\":";
    append_u64(out, v.iteration);
    out += ",\"step\":";
    append_u64(out, v.step);
    out += ",\"root_rank\":";
    append_u64(out, v.root_rank);
    out += ",\"root\":";
    append_string(out, skh::to_string(v.root));
    out += ",\"waiters\":[";
    for (std::size_t j = 0; j < v.waiters.size(); ++j) {
      if (j > 0) out += ',';
      append_string(out, skh::to_string(v.waiters[j]));
    }
    out += "],\"at\":";
    append_time(out, v.detected_at);
    out += ",\"severity\":";
    obs::json_append_number(out, v.severity);
    out += '}';
  }
  out += "]},";

  // --- per-pair recent windows from the flight recorder ---------------------
  append_key(out, "windows");
  out += '{';
  if (recorder != nullptr) {
    bool first_pair = true;
    for (const auto& p : c.pairs) {
      const auto gid = detector.find_handle(p);
      std::vector<obs::WindowRecord> ws;
      if (gid != common::FlatPairTable::kNoSlot) {
        ws = recorder->windows_of(gid, p);
      }
      if (!first_pair) out += ',';
      first_pair = false;
      append_string(out, skh::to_string(p));
      out += ":[";
      for (std::size_t i = 0; i < ws.size(); ++i) {
        if (i > 0) out += ',';
        append_window(out, ws[i]);
      }
      out += ']';
    }
  }
  out += "},";

  // --- localization votes ---------------------------------------------------
  append_key(out, "votes");
  out += '[';
  {
    std::vector<obs::VoteRecord> votes;
    if (recorder != nullptr) votes = recorder->votes_of(c.id);
    if (votes.empty()) {
      // Case not yet closed (bundle built at open) or recorder off: fall
      // back to the verdict's own tally so the section is never misleading.
      for (std::size_t i = 0; i < c.localization.votes.size(); ++i) {
        const auto& v = c.localization.votes[i];
        if (i > 0) out += ',';
        out += "{\"component\":";
        append_string(out, sim::to_string(v.component));
        out += ",\"weight\":";
        obs::json_append_number(out, v.weight);
        out += ",\"source\":";
        append_string(out, v.source);
        out += '}';
      }
    } else {
      for (std::size_t i = 0; i < votes.size(); ++i) {
        const auto& v = votes[i];
        if (i > 0) out += ',';
        const sim::ComponentRef ref{
            static_cast<sim::ComponentKind>(v.component_kind),
            v.component_index};
        out += "{\"component\":";
        append_string(out, sim::to_string(ref));
        out += ",\"weight\":";
        obs::json_append_number(out, v.weight);
        out += ",\"source\":";
        append_string(out, v.source);
        out += '}';
      }
    }
  }
  out += "],";

  // --- recorder drop accounting ---------------------------------------------
  append_key(out, "recorder");
  out += "{\"enabled\":";
  out += (recorder != nullptr && recorder->enabled()) ? "true" : "false";
  if (recorder != nullptr) {
    out += ",\"window_drops\":";
    append_u64(out, recorder->window_drops());
    out += ",\"event_drops\":";
    append_u64(out, recorder->event_drops());
    out += ",\"vote_drops\":";
    append_u64(out, recorder->vote_drops());
    out += ",\"bundle_drops\":";
    append_u64(out, recorder->bundle_drops());
  }
  out += "},";

  // --- registry snapshot (counters + gauges; histograms live in the scrape) -
  append_key(out, "metrics");
  out += "{\"counters\":{";
  if (metrics != nullptr) {
    for (std::size_t i = 0; i < metrics->counters.size(); ++i) {
      if (i > 0) out += ',';
      append_string(out, metrics->counters[i].name);
      out += ':';
      append_u64(out, metrics->counters[i].value);
    }
  }
  out += "},\"gauges\":{";
  if (metrics != nullptr) {
    for (std::size_t i = 0; i < metrics->gauges.size(); ++i) {
      if (i > 0) out += ',';
      append_string(out, metrics->gauges[i].name);
      out += ':';
      obs::json_append_number(out, metrics->gauges[i].value);
    }
  }
  out += "}}}";
  return out;
}

}  // namespace skh::core
