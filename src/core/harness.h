// Experiment harness: a fully wired simulated deployment in one object.
//
// Examples and benches (and downstream users reproducing the paper's
// experiments) need the same boilerplate: build a rail-optimized topology,
// wire overlay + orchestrator + fault injector + SkeletonHunter onto one
// event queue, launch tasks, and derive the workload observations that
// skeleton inference consumes. This header packages that plumbing.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/orchestrator.h"
#include "core/skeleton_hunter.h"
#include "core/skeleton_inference.h"
#include "obs/context.h"
#include "sim/fault.h"
#include "workload/collective_trace.h"
#include "workload/traffic.h"

namespace skh::core {

/// Wiring knobs for the collective signal plane on one task.
struct CollectivePlaneConfig {
  workload::CollectiveTraceConfig trace{};
  /// One training iteration's step trace is emitted (and the previous
  /// iteration's ingested) every this often. Must exceed the hang timeout
  /// (`SkeletonHunterConfig::collective.hang_timeout`) for stalls to age
  /// past it by the time their batch is judged.
  SimTime iteration_period = SimTime::seconds(30);
  /// Couple probe-visible ground-truth network faults on the endpoints'
  /// RNIC/uplink/host/container into step durations (the cross-plane
  /// agreement channel). Phantom faults never couple — a dead sidecar is
  /// invisible to the tenant's collectives by definition.
  bool couple_network = true;
};

struct ExperimentConfig {
  topo::TopologyConfig topology{};
  SkeletonHunterConfig hunter{};
  std::uint64_t seed = 42;
  /// Observability wiring: with `obs.metrics` the deployment's registry and
  /// tracer attach to the orchestrator and the whole detection pipeline;
  /// without it no context is attached anywhere (the pre-obs baseline).
  obs::ObsConfig obs{};
};

/// One simulated deployment: topology, overlay, orchestrator, fault
/// injector, and a SkeletonHunter instance sharing an event queue.
class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& cfg);

  // Non-copyable, non-movable: subsystems hold references to each other.
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Submit a task and register it with SkeletonHunter (preload phase).
  /// Returns nullopt when the cluster lacks capacity.
  [[nodiscard]] std::optional<TaskId> launch_task(
      const cluster::TaskRequest& req);

  /// Advance simulated time until all containers of `task` are Running.
  void run_to_running(TaskId task,
                      SimTime max_wait = SimTime::minutes(12));

  /// Build the task's layout under `par` (or a default derived from shape).
  [[nodiscard]] workload::TaskLayout layout_of(
      TaskId task,
      std::optional<workload::ParallelismConfig> par = std::nullopt) const;

  /// Synthesize the per-endpoint burst observations of a layout.
  [[nodiscard]] std::vector<EndpointObservation> observations_for(
      const workload::TaskLayout& layout,
      const workload::BurstConfig& bcfg = {}) const;

  /// Convenience: infer + apply the runtime skeleton for a task.
  std::optional<InferredSkeleton> apply_skeleton(
      TaskId task, const workload::TaskLayout& layout,
      const workload::BurstConfig& bcfg = {});

  /// Map a churn plan (see sim/fault.h) onto orchestrator calls, scheduled
  /// on the event queue at each event's instant: kRestart ->
  /// restart_container, kMigrate -> migrate_container, kCrash ->
  /// crash_container, kAgentDeath -> a phantom fault on the victim's
  /// container component for the event's duration (§7.3: the sidecar dies,
  /// not the tenant). Events aimed past the task's container count are
  /// ignored.
  void schedule_churn(TaskId task, const std::vector<sim::ChurnEvent>& plan);

  /// Turn on the collective signal plane for a task: build its
  /// communicators from `layout`, register them with the hunter, and
  /// schedule per-iteration step-trace emission until `until`. `plan`
  /// holds the host-side faults (hangs, stragglers, slow hosts) — failures
  /// the probe mesh cannot see; pass an empty plan for a healthy-host run
  /// (zero RNG draws, so pre-collective seeds replay unchanged).
  void enable_collective_plane(TaskId task, const workload::TaskLayout& layout,
                               const sim::CollectiveFaultPlan& plan,
                               SimTime until, CollectivePlaneConfig cfg = {});

  /// Chained FNV-1a fold over every step record emitted by every enabled
  /// plane, in emission order — the byte-identity witness for the trace
  /// determinism gates.
  [[nodiscard]] std::uint64_t collective_fingerprint() const noexcept {
    return collective_fp_;
  }

  /// RNIC rank of an endpoint within its container.
  [[nodiscard]] std::uint32_t rank_of(const Endpoint& ep) const;

  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] overlay::OverlayNetwork& overlay() noexcept {
    return overlay_;
  }
  [[nodiscard]] sim::EventQueue& events() noexcept { return events_; }
  [[nodiscard]] sim::FaultInjector& faults() noexcept { return faults_; }
  [[nodiscard]] cluster::Orchestrator& orchestrator() noexcept {
    return orch_;
  }
  [[nodiscard]] SkeletonHunter& hunter() noexcept { return hunter_; }
  [[nodiscard]] RngStream& rng() noexcept { return rng_; }
  /// The deployment's observability context (registry + tracer). Valid
  /// whether or not it is attached to the pipeline (`cfg.obs.metrics`).
  [[nodiscard]] obs::Context& obs() noexcept { return obs_; }
  [[nodiscard]] const obs::Context& obs() const noexcept { return obs_; }

 private:
  /// One enabled plane: the generator plus the batch emitted last tick,
  /// held until the next tick has aged it past the hang timeout.
  struct CollectivePlaneState {
    workload::CollectiveTraceGenerator gen;
    TaskId task;
    std::uint32_t next_iteration = 0;
    std::vector<workload::StepRecord> pending;
  };
  /// Ingest the pending batch, emit the next iteration, reschedule.
  void collective_tick(CollectivePlaneState* st, SimTime until,
                       SimTime period);

  RngStream rng_;
  topo::Topology topo_;
  overlay::OverlayNetwork overlay_;
  sim::EventQueue events_;
  sim::FaultInjector faults_;
  obs::Context obs_;
  cluster::Orchestrator orch_;
  SkeletonHunter hunter_;
  /// Stable addresses: event-queue lambdas capture raw pointers into these.
  std::vector<std::unique_ptr<CollectivePlaneState>> collective_planes_;
  std::uint64_t collective_fp_ = 0xcbf29ce484222325ull;
};

}  // namespace skh::core
