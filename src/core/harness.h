// Experiment harness: a fully wired simulated deployment in one object.
//
// Examples and benches (and downstream users reproducing the paper's
// experiments) need the same boilerplate: build a rail-optimized topology,
// wire overlay + orchestrator + fault injector + SkeletonHunter onto one
// event queue, launch tasks, and derive the workload observations that
// skeleton inference consumes. This header packages that plumbing.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/orchestrator.h"
#include "core/skeleton_hunter.h"
#include "core/skeleton_inference.h"
#include "obs/context.h"
#include "sim/fault.h"
#include "workload/traffic.h"

namespace skh::core {

struct ExperimentConfig {
  topo::TopologyConfig topology{};
  SkeletonHunterConfig hunter{};
  std::uint64_t seed = 42;
  /// Observability wiring: with `obs.metrics` the deployment's registry and
  /// tracer attach to the orchestrator and the whole detection pipeline;
  /// without it no context is attached anywhere (the pre-obs baseline).
  obs::ObsConfig obs{};
};

/// One simulated deployment: topology, overlay, orchestrator, fault
/// injector, and a SkeletonHunter instance sharing an event queue.
class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& cfg);

  // Non-copyable, non-movable: subsystems hold references to each other.
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Submit a task and register it with SkeletonHunter (preload phase).
  /// Returns nullopt when the cluster lacks capacity.
  [[nodiscard]] std::optional<TaskId> launch_task(
      const cluster::TaskRequest& req);

  /// Advance simulated time until all containers of `task` are Running.
  void run_to_running(TaskId task,
                      SimTime max_wait = SimTime::minutes(12));

  /// Build the task's layout under `par` (or a default derived from shape).
  [[nodiscard]] workload::TaskLayout layout_of(
      TaskId task,
      std::optional<workload::ParallelismConfig> par = std::nullopt) const;

  /// Synthesize the per-endpoint burst observations of a layout.
  [[nodiscard]] std::vector<EndpointObservation> observations_for(
      const workload::TaskLayout& layout,
      const workload::BurstConfig& bcfg = {}) const;

  /// Convenience: infer + apply the runtime skeleton for a task.
  std::optional<InferredSkeleton> apply_skeleton(
      TaskId task, const workload::TaskLayout& layout,
      const workload::BurstConfig& bcfg = {});

  /// Map a churn plan (see sim/fault.h) onto orchestrator calls, scheduled
  /// on the event queue at each event's instant: kRestart ->
  /// restart_container, kMigrate -> migrate_container, kCrash ->
  /// crash_container, kAgentDeath -> a phantom fault on the victim's
  /// container component for the event's duration (§7.3: the sidecar dies,
  /// not the tenant). Events aimed past the task's container count are
  /// ignored.
  void schedule_churn(TaskId task, const std::vector<sim::ChurnEvent>& plan);

  /// RNIC rank of an endpoint within its container.
  [[nodiscard]] std::uint32_t rank_of(const Endpoint& ep) const;

  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] overlay::OverlayNetwork& overlay() noexcept {
    return overlay_;
  }
  [[nodiscard]] sim::EventQueue& events() noexcept { return events_; }
  [[nodiscard]] sim::FaultInjector& faults() noexcept { return faults_; }
  [[nodiscard]] cluster::Orchestrator& orchestrator() noexcept {
    return orch_;
  }
  [[nodiscard]] SkeletonHunter& hunter() noexcept { return hunter_; }
  [[nodiscard]] RngStream& rng() noexcept { return rng_; }
  /// The deployment's observability context (registry + tracer). Valid
  /// whether or not it is attached to the pipeline (`cfg.obs.metrics`).
  [[nodiscard]] obs::Context& obs() noexcept { return obs_; }
  [[nodiscard]] const obs::Context& obs() const noexcept { return obs_; }

 private:
  RngStream rng_;
  topo::Topology topo_;
  overlay::OverlayNetwork overlay_;
  sim::EventQueue events_;
  sim::FaultInjector faults_;
  obs::Context obs_;
  cluster::Orchestrator orch_;
  SkeletonHunter hunter_;
};

}  // namespace skh::core
